// Package repro is a Go reproduction of "Increasing the Performance of
// CDNs Using Replication and Caching: A Hybrid Approach" (Bakiras &
// Loukopoulos, IPDPS/IPPS 2005).
//
// The package is a thin facade over the implementation:
//
//   - internal/lrumodel — the analytical LRU hit-ratio model (§3.2)
//   - internal/placement — greedy-global, hybrid (Figure 2) and ad-hoc
//     replica placement algorithms (§4)
//   - internal/scenario — transit–stub topology + SURGE workload assembly
//     (§5.1)
//   - internal/sim — the trace-driven CDN simulator (§5)
//   - internal/experiments — the Figure 3–6 and §5.2 summary runners
//
// Quick start:
//
//	sc := repro.MustBuildScenario(repro.DefaultScenario())
//	pl, _ := repro.Place(sc, repro.PlacementConfig{Strategy: repro.StrategyHybrid})
//	m := repro.MustSimulate(context.Background(), sc, pl, repro.DefaultSim(), 1)
//	fmt.Println(m.MeanRTMs)
//
// or regenerate a whole figure:
//
//	panels, _ := repro.Figure3(context.Background(), repro.DefaultOptions())
//	fmt.Println(repro.FormatPanel(panels[0]))
package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/lrumodel"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Re-exported configuration and result types. See the internal packages
// for full documentation of each.
type (
	// ScenarioConfig sizes a full experiment instance (§5.1).
	ScenarioConfig = scenario.Config
	// Scenario is a built instance: topology, workload, cost model.
	Scenario = scenario.Scenario
	// SimConfig controls the trace-driven simulator (§5).
	SimConfig = sim.Config
	// Metrics is one simulation run's measured results.
	Metrics = sim.Metrics
	// Placement is the replication state X plus SN tables (§3.1).
	Placement = core.Placement
	// PlacementResult couples a placement with its predicted cost.
	PlacementResult = placement.Result
	// Options scales the figure runners.
	Options = experiments.Options
	// Panel is one sub-figure of Figures 3–5.
	Panel = experiments.Panel
	// Fig6Row is one predicted-vs-actual pair of Figure 6.
	Fig6Row = experiments.Fig6Row
	// GainRow is one line of the §5.2 headline summary.
	GainRow = experiments.GainRow
	// Mechanism names a content-delivery configuration.
	Mechanism = experiments.Mechanism
)

// The compared mechanisms.
const (
	MechReplication = experiments.MechReplication
	MechCaching     = experiments.MechCaching
	MechHybrid      = experiments.MechHybrid
)

// DefaultScenario returns the paper's §5.1 setup (50 servers, 20 sites,
// ~560-node transit–stub topology, 5% capacity).
func DefaultScenario() ScenarioConfig { return scenario.Default() }

// DefaultSim returns the paper's latency parameters (20 ms first hop,
// 20 ms/hop) with a 500k-request measured phase.
func DefaultSim() SimConfig { return sim.DefaultConfig() }

// DefaultOptions returns paper-scale figure-runner options.
func DefaultOptions() Options { return experiments.DefaultOptions() }

// QuickOptions returns reduced-scale options for smoke runs.
func QuickOptions() Options { return experiments.QuickOptions() }

// Rand is the deterministic random source used throughout the library.
type Rand = xrand.Source

// NewRand returns a deterministic random source (for request streams and
// samplers).
func NewRand(seed uint64) *Rand { return xrand.New(seed) }

// BuildScenario deterministically assembles an experiment instance.
func BuildScenario(cfg ScenarioConfig) (*Scenario, error) { return scenario.Build(cfg) }

// MustBuildScenario is BuildScenario for known-good configurations.
func MustBuildScenario(cfg ScenarioConfig) *Scenario { return scenario.MustBuild(cfg) }

// PlacementStep records one replica-creation decision of an algorithm.
type PlacementStep = placement.Step

// Strategy selects the placement algorithm Place runs — the §5.2
// mechanisms as one enumeration instead of one constructor each.
type Strategy string

// The placement strategies.
const (
	// StrategyHybrid is the paper's Figure 2 algorithm: replicas where
	// the LRU model says they beat caching, free storage left as cache.
	StrategyHybrid Strategy = "hybrid"
	// StrategyReplication is the greedy-global baseline (no caching).
	StrategyReplication Strategy = "replication"
	// StrategyCaching places no replicas: all storage is cache.
	StrategyCaching Strategy = "caching"
	// StrategyAdHoc reserves PlacementConfig.CacheFrac of storage for
	// caching and fills the rest with greedy-global replicas (§5.2's
	// fixed-split strawman).
	StrategyAdHoc Strategy = "adhoc"
)

// PlacementConfig parameterizes Place.
type PlacementConfig struct {
	// Strategy selects the algorithm; the zero value is StrategyHybrid.
	Strategy Strategy
	// CacheFrac is the cache share for StrategyAdHoc (ignored
	// otherwise).
	CacheFrac float64
	// Model selects the analytical hit-ratio model the hybrid optimizes
	// with ("eq1", "che", "closedform", "random"); empty means eq1, the
	// paper's own model (StrategyHybrid only; ignored by the others).
	Model string
	// Observer, when non-nil, is invoked after every replica creation —
	// the iteration-by-iteration view of the placement loop
	// (StrategyHybrid only; ignored by the others).
	Observer func(PlacementStep)
	// Parallelism fans out the hybrid benefit-matrix computation
	// (0 = all cores).
	Parallelism int
}

// Place runs the selected placement strategy on the scenario. It is the
// single entry point replacing the per-strategy constructors
// (HybridPlacement, ReplicationPlacement, CachingPlacement,
// AdHocPlacement), which survive as deprecated wrappers.
func Place(sc *Scenario, cfg PlacementConfig) (*PlacementResult, error) {
	switch cfg.Strategy {
	case StrategyHybrid, "":
		return placement.Hybrid(sc.Sys, placement.HybridConfig{
			Specs:          sc.Work.Specs(),
			AvgObjectBytes: sc.Work.AvgObjectBytes,
			Model:          cfg.Model,
			Observer:       cfg.Observer,
			Parallelism:    cfg.Parallelism,
		})
	case StrategyReplication:
		return placement.GreedyGlobalOpts(sc.Sys, placement.GreedyConfig{
			Parallelism: cfg.Parallelism,
		}), nil
	case StrategyCaching:
		return placement.None(sc.Sys), nil
	case StrategyAdHoc:
		return placement.AdHoc(sc.Sys, cfg.CacheFrac)
	default:
		return nil, fmt.Errorf("repro: unknown placement strategy %q", cfg.Strategy)
	}
}

// HybridPlacement runs the paper's Figure 2 algorithm on the scenario.
//
// Deprecated: use Place(sc, PlacementConfig{Strategy: StrategyHybrid}).
func HybridPlacement(sc *Scenario) (*PlacementResult, error) {
	return Place(sc, PlacementConfig{Strategy: StrategyHybrid})
}

// HybridPlacementWithObserver is HybridPlacement with a callback invoked
// after every replica creation.
//
// Deprecated: use Place with PlacementConfig.Observer.
func HybridPlacementWithObserver(sc *Scenario, obs func(PlacementStep)) (*PlacementResult, error) {
	return Place(sc, PlacementConfig{Strategy: StrategyHybrid, Observer: obs})
}

// ReplicationPlacement runs the greedy-global baseline (no caching).
//
// Deprecated: use Place(sc, PlacementConfig{Strategy: StrategyReplication}).
func ReplicationPlacement(sc *Scenario) *PlacementResult {
	res, err := Place(sc, PlacementConfig{Strategy: StrategyReplication})
	if err != nil {
		panic(err) // unreachable: the replication strategy cannot fail
	}
	return res
}

// CachingPlacement returns the pure-caching configuration (no replicas).
//
// Deprecated: use Place(sc, PlacementConfig{Strategy: StrategyCaching}).
func CachingPlacement(sc *Scenario) *PlacementResult {
	res, err := Place(sc, PlacementConfig{Strategy: StrategyCaching})
	if err != nil {
		panic(err) // unreachable: the caching strategy cannot fail
	}
	return res
}

// AdHocPlacement reserves cacheFrac of storage for caching and fills the
// rest with greedy-global replicas.
//
// Deprecated: use Place(sc, PlacementConfig{Strategy: StrategyAdHoc,
// CacheFrac: cacheFrac}).
func AdHocPlacement(sc *Scenario, cacheFrac float64) (*PlacementResult, error) {
	return Place(sc, PlacementConfig{Strategy: StrategyAdHoc, CacheFrac: cacheFrac})
}

// Simulate runs the trace-driven simulator; seed fixes the request trace
// so different placements can be compared on identical traffic. The run
// shards across cfg.Parallelism workers (0 = all cores) and is
// bit-identical to a sequential run of the same seed. Cancelling ctx
// aborts between request batches with ctx.Err().
func Simulate(ctx context.Context, sc *Scenario, p *Placement, cfg SimConfig, seed uint64) (*Metrics, error) {
	return sim.RunParallel(ctx, sc, p, cfg, xrand.New(seed))
}

// MustSimulate is Simulate for known-good configurations.
func MustSimulate(ctx context.Context, sc *Scenario, p *Placement, cfg SimConfig, seed uint64) *Metrics {
	return sim.MustRunParallel(ctx, sc, p, cfg, xrand.New(seed))
}

// Figure3 regenerates the λ=0 mechanism-comparison CDFs (5% and 10%
// capacity panels).
func Figure3(ctx context.Context, opts Options) ([]Panel, error) {
	return experiments.Figure3(ctx, opts)
}

// Figure4 regenerates the λ=0.1 (strong-consistency) comparison.
func Figure4(ctx context.Context, opts Options) ([]Panel, error) {
	return experiments.Figure4(ctx, opts)
}

// Figure5 regenerates the hybrid vs ad-hoc fixed-split comparison.
func Figure5(ctx context.Context, opts Options) ([]Panel, error) {
	return experiments.Figure5(ctx, opts)
}

// Figure6 regenerates the model-accuracy rows (predicted vs actual cost
// per request).
func Figure6(ctx context.Context, opts Options) ([]Fig6Row, error) {
	return experiments.Figure6(ctx, opts)
}

// Summary computes the §5.2 headline latency gains.
func Summary(ctx context.Context, opts Options) ([]GainRow, error) {
	return experiments.Summary(ctx, opts)
}

// Trace recording and replay: a recorded request trace replays through
// the simulator bit-identically (internal/trace).
type (
	TraceHeader = trace.Header
	TraceWriter = trace.Writer
	TraceReader = trace.Reader
	// Request is one synthetic HTTP request of the workload.
	Request = workload.Request
)

// NewTraceWriter starts writing a binary request trace.
func NewTraceWriter(w io.Writer, h TraceHeader) (*TraceWriter, error) {
	return trace.NewWriter(w, h)
}

// NewTraceReader opens a binary request trace.
func NewTraceReader(r io.Reader) (*TraceReader, error) { return trace.NewReader(r) }

// Observability layer (internal/obs): atomic counters, gauges and
// latency histograms in a Registry rendering Prometheus text format and
// expvar-style JSON, plus the per-request JSONL event tracer shared by
// the simulator (SimConfig.Tracer/Metrics) and the HTTP cluster.
type (
	Registry = obs.Registry
	Tracer   = obs.Tracer
	// TraceEvent is one JSONL record of the shared request schema.
	TraceEvent = obs.Event
)

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewTracer starts a JSONL event tracer writing to w; Flush it before
// reading the output.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// ReadTraceEvents parses a JSONL trace back into events.
func ReadTraceEvents(r io.Reader) ([]TraceEvent, error) { return obs.ReadEvents(r) }

// SimulateTrace replays a recorded trace through the simulator.
func SimulateTrace(ctx context.Context, sc *Scenario, p *Placement, cfg SimConfig, tr *TraceReader) (*Metrics, error) {
	return sim.RunSource(ctx, sc, p, cfg, tr)
}

// The analytical hit-ratio models (§3.2 and beyond), usable stand-alone:
// SiteSpec describes a site's object statistics and HitModel predicts
// per-site hit ratios at one server for any cache size under the
// selected model kind.
type (
	SiteSpec     = lrumodel.SiteSpec
	LRUPredictor = lrumodel.Predictor
	// HitModel is the pluggable hit-ratio surface the placement stack
	// consumes (eq1, che, closedform or random behind one interface).
	HitModel = lrumodel.Model
	// HitModelConfig configures NewHitModel.
	HitModelConfig = lrumodel.ModelConfig
)

// NewHitModel builds an analytical hit-ratio model for one server under
// the selected kind; invalid configuration (including an unknown model
// name) is reported as an error listing the valid names.
func NewHitModel(cfg HitModelConfig) (HitModel, error) { return lrumodel.New(cfg) }

// HitModelNames lists the valid model names for flag validation and
// help text.
func HitModelNames() []string {
	kinds := lrumodel.ModelKinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = string(k)
	}
	return names
}

// NewLRUPredictor builds the §3.2 model for one server: weights[j] is the
// server's request rate for site j, avgObjectBytes is ō, and
// maxCacheBytes bounds the cache sizes that will be queried.
//
// Deprecated: use NewHitModel, which selects among all model kinds and
// reports invalid input as an error. This wrapper keeps the original
// panic-on-bad-input contract.
func NewLRUPredictor(specs []SiteSpec, weights []float64, avgObjectBytes float64, maxCacheBytes int64) *LRUPredictor {
	m, err := NewHitModel(HitModelConfig{
		Specs:          specs,
		Weights:        weights,
		AvgObjectBytes: avgObjectBytes,
		MaxCacheBytes:  maxCacheBytes,
	})
	if err != nil {
		panic(err.Error())
	}
	return m.(*lrumodel.Predictor)
}

// Ablation rows (beyond the paper; see DESIGN.md §5).
type (
	PolicyRow    = experiments.PolicyRow
	ThetaRow     = experiments.ThetaRow
	PlacementRow = experiments.PlacementRow
	ClusterRow   = experiments.ClusterRow
	// ConsistencyRow and AvailabilityRow ground the paper's §3.3 λ
	// abstraction and §1 availability argument respectively.
	ConsistencyRow  = experiments.ConsistencyRow
	AvailabilityRow = experiments.AvailabilityRow
)

// ConsistencyComparison runs real cache-consistency mechanisms (strong
// invalidation, TTLs) under the hybrid placement and reports the
// effective λ each induces.
func ConsistencyComparison(ctx context.Context, opts Options) ([]ConsistencyRow, error) {
	return experiments.ConsistencyComparison(ctx, opts)
}

// AvailabilityComparison crashes origins (and optionally servers) after
// cache warm-up and measures how much traffic each mechanism still
// serves.
func AvailabilityComparison(ctx context.Context, opts Options, originFailures []int, failedServers int) ([]AvailabilityRow, error) {
	return experiments.AvailabilityComparison(ctx, opts, originFailures, failedServers)
}

// FormatConsistencyRows and FormatAvailabilityRows render the grounding
// experiments.
func FormatConsistencyRows(rows []ConsistencyRow) string {
	return experiments.FormatConsistencyRows(rows)
}

// FormatAvailabilityRows renders the availability comparison.
func FormatAvailabilityRows(rows []AvailabilityRow) string {
	return experiments.FormatAvailabilityRows(rows)
}

// Failure-aware simulation (internal/fault + sim.RunWithSchedule): a
// deterministic schedule of crash / recover / slow events over virtual
// time (the global request index), driven through the simulator with
// per-phase availability accounting.
type (
	// FaultEvent is one scheduled state change of a server or origin.
	FaultEvent = fault.Event
	// FaultSchedule is a validated, time-ordered event list.
	FaultSchedule = fault.Schedule
	// PhaseMetrics is one inter-event window's measured results.
	PhaseMetrics = sim.PhaseMetrics
	// ScheduleMetrics aggregates a churn run: overall failure metrics
	// plus the per-phase breakdown.
	ScheduleMetrics = sim.ScheduleMetrics
)

// Fault event components and kinds, for building schedules by hand.
const (
	FaultServer  = fault.Server
	FaultOrigin  = fault.Origin
	FaultCrash   = fault.Crash
	FaultRecover = fault.Recover
	FaultSlow    = fault.Slow
)

// NewFaultSchedule validates and time-orders a fault event list.
func NewFaultSchedule(events ...FaultEvent) (*FaultSchedule, error) {
	return fault.NewSchedule(events...)
}

// SimulateWithSchedule runs the trace-driven simulator while applying the
// fault schedule as virtual time passes, re-resolving redirection around
// dead components as events fire. The run is sequential and
// deterministic for a fixed seed.
func SimulateWithSchedule(ctx context.Context, sc *Scenario, p *Placement, cfg SimConfig, sched *FaultSchedule, seed uint64) (*ScheduleMetrics, error) {
	return sim.RunWithSchedule(ctx, sc, p, cfg, sched, xrand.New(seed))
}

// Availability-under-churn experiment types.
type (
	ChurnRow    = experiments.ChurnRow
	ChurnConfig = experiments.ChurnConfig
)

// DefaultChurn returns the default churn shape (a fifth of the servers
// and one origin crash, each down for a quarter of the measured phase).
func DefaultChurn() ChurnConfig { return experiments.DefaultChurn() }

// ChurnComparison runs every mechanism through one shared deterministic
// fault schedule — crashes and recoveries mid-measurement — and reports
// overall and worst-phase served fractions.
func ChurnComparison(ctx context.Context, opts Options, cfg ChurnConfig) ([]ChurnRow, error) {
	return experiments.ChurnComparison(ctx, opts, cfg)
}

// FormatChurnRows renders the availability-under-churn comparison.
func FormatChurnRows(rows []ChurnRow) string { return experiments.FormatChurnRows(rows) }

// ScaleRow is one growth factor of the scale sweep.
type ScaleRow = experiments.ScaleRow

// ScaleScenario grows a scenario configuration by an integer factor:
// servers, sites and transit domains ×factor, per-server capacity held
// constant in site-equivalents.
func ScaleScenario(cfg ScenarioConfig, factor int) ScenarioConfig {
	return scenario.Scale(cfg, factor)
}

// ScaleComparison re-runs the Figure 3 mechanism comparison at each
// growth factor and measures scenario-build time, hybrid placement time
// and simulator throughput alongside, showing whether the hybrid's
// advantage (and the engines' practicality) hold away from paper scale.
func ScaleComparison(ctx context.Context, opts Options, factors []int) ([]ScaleRow, error) {
	return experiments.ScaleComparison(ctx, opts, factors)
}

// FormatScaleRows renders the scale sweep.
func FormatScaleRows(rows []ScaleRow) string { return experiments.FormatScaleRows(rows) }

// Drift experiment types (§2.1 grounded: static placements vs drifting
// popularity).
type (
	DriftRow      = experiments.DriftRow
	DriftConfig   = dynamic.Config
	DriftStrategy = dynamic.Strategy
)

// DefaultDriftConfig returns the default drifting-workload setup.
func DefaultDriftConfig() DriftConfig { return dynamic.DefaultConfig() }

// DriftComparison runs all replica-management strategies over an
// identical drifting workload and reports latency and transfer volume.
func DriftComparison(ctx context.Context, opts Options, cfg DriftConfig) ([]DriftRow, error) {
	return experiments.DriftComparison(ctx, opts, cfg)
}

// FormatDriftRows renders the drift comparison.
func FormatDriftRows(rows []DriftRow, cfg DriftConfig) string {
	return experiments.FormatDriftRows(rows, cfg)
}

// Dynamic-catalog experiment types: publish/perish churn, flash crowds
// and segment chains over a fixed slot space (internal/workload's
// DynamicStream), compared across mechanisms including the
// staleness-aware control plane.
type (
	DynamicRow            = experiments.DynamicRow
	DynamicCatalogOptions = experiments.DynamicOptions
	// DynamicWorkloadConfig parameterizes the churning stream itself,
	// for driving the simulator or daemons directly.
	DynamicWorkloadConfig = workload.DynamicConfig
)

// MechControlled is the online control plane over a churning catalog
// (the fourth mechanism of the dynamic-catalog comparison).
const MechControlled = experiments.MechControlled

// DefaultDynamicCatalogOptions returns the default churn sweep (three
// rates, flash crowds and segment chains on).
func DefaultDynamicCatalogOptions() DynamicCatalogOptions {
	return experiments.DefaultDynamicOptions()
}

// DynamicComparison runs caching, replication, hybrid and
// controlled-hybrid on the static catalog and at each churn rate, on
// identical stream seeds.
func DynamicComparison(ctx context.Context, opts Options, dyn DynamicCatalogOptions) ([]DynamicRow, error) {
	return experiments.DynamicComparison(ctx, opts, dyn)
}

// FormatDynamicRows renders the dynamic-catalog comparison.
func FormatDynamicRows(rows []DynamicRow) string { return experiments.FormatDynamicRows(rows) }

// Redirection-policy and k-median quality experiment rows (§2.2's other
// design axes, grounded).
type (
	RedirectRow = experiments.RedirectRow
	KMedianRow  = experiments.KMedianRow
)

// RedirectionComparison compares nearest / load-aware / blind-rotation
// server selection under constrained server capacity.
func RedirectionComparison(ctx context.Context, opts Options) ([]RedirectRow, error) {
	return experiments.RedirectionComparison(ctx, opts)
}

// KMedianQuality measures greedy and swap placement heuristics against
// the exact per-site k-median optimum.
func KMedianQuality(ctx context.Context, opts Options, ks []int) ([]KMedianRow, error) {
	return experiments.KMedianQuality(ctx, opts, ks)
}

// FormatRedirectRows and FormatKMedianRows render those experiments.
func FormatRedirectRows(rows []RedirectRow) string { return experiments.FormatRedirectRows(rows) }
func FormatKMedianRows(rows []KMedianRow) string   { return experiments.FormatKMedianRows(rows) }

// Model-science experiment rows: the Eq.(1)/(2)-vs-Che-vs-closed-form
// ablation, the RANDOM/FIFO policy validation and the IRM-assumption
// stress test.
type (
	ModelCompareRow = experiments.ModelCompareRow
	PolicyModelRow  = experiments.PolicyModelRow
	RobustnessRow   = experiments.RobustnessRow
)

// ModelComparison sweeps cache sizes and compares the paper's model,
// Che's approximation and the Laoutaris closed form against a simulated
// LRU.
func ModelComparison(ctx context.Context, opts Options, slotFracs []float64) ([]ModelCompareRow, error) {
	return experiments.ModelComparison(ctx, opts, slotFracs)
}

// ModelPolicyComparison validates the analytical RANDOM/FIFO model
// against the simulated FIFO and RANDOM cache variants.
func ModelPolicyComparison(ctx context.Context, opts Options, slotFracs []float64) ([]PolicyModelRow, error) {
	return experiments.ModelPolicyComparison(ctx, opts, slotFracs)
}

// ModelRobustness measures prediction error as the workload gains
// temporal locality the IRM-based model does not know about.
func ModelRobustness(ctx context.Context, opts Options, probs []float64) ([]RobustnessRow, error) {
	return experiments.ModelRobustness(ctx, opts, probs)
}

// FormatModelCompareRows, FormatPolicyModelRows and FormatRobustnessRows
// render those sweeps.
func FormatModelCompareRows(rows []ModelCompareRow) string {
	return experiments.FormatModelCompareRows(rows)
}

// FormatPolicyModelRows renders the RANDOM/FIFO validation sweep.
func FormatPolicyModelRows(rows []PolicyModelRow) string {
	return experiments.FormatPolicyModelRows(rows)
}

// FormatRobustnessRows renders the IRM stress test.
func FormatRobustnessRows(rows []RobustnessRow) string {
	return experiments.FormatRobustnessRows(rows)
}

// UpdateRow is one write-intensity level of the read+update sweep.
type UpdateRow = experiments.UpdateRow

// UpdateSweep extends the placement objective with update-propagation
// costs ([19, 28]) and sweeps the write intensity.
func UpdateSweep(ctx context.Context, opts Options, ratios []float64) ([]UpdateRow, error) {
	return experiments.UpdateSweep(ctx, opts, ratios)
}

// FormatUpdateRows renders the read+update sweep.
func FormatUpdateRows(rows []UpdateRow) string { return experiments.FormatUpdateRows(rows) }

// HeterogeneityRow is one capacity-spread level of the robustness sweep.
type HeterogeneityRow = experiments.HeterogeneityRow

// HeterogeneityComparison relaxes the homogeneous-capacity assumption
// and re-runs the mechanism comparison.
func HeterogeneityComparison(ctx context.Context, opts Options, spreads []float64) ([]HeterogeneityRow, error) {
	return experiments.HeterogeneityComparison(ctx, opts, spreads)
}

// FormatHeterogeneityRows renders the heterogeneity sweep.
func FormatHeterogeneityRows(rows []HeterogeneityRow) string {
	return experiments.FormatHeterogeneityRows(rows)
}

// GainStats aggregates the headline gains over several scenario seeds.
type GainStats = experiments.GainStats

// SummaryOverSeeds repeats the §5.2 summary over multiple scenario seeds
// and reports mean ± std of the gains.
func SummaryOverSeeds(ctx context.Context, opts Options, seeds []uint64) ([]GainStats, error) {
	return experiments.SummaryOverSeeds(ctx, opts, seeds)
}

// FormatGainStats renders the multi-seed summary.
func FormatGainStats(rows []GainStats) string { return experiments.FormatGainStats(rows) }

// ClusterComparison settles the paper's §5.3 future-work claim by
// comparing per-site replication, per-cluster replication ([6]-style
// popularity bands), pure caching, and the hybrid algorithm at both
// granularities on one trace.
func ClusterComparison(ctx context.Context, opts Options, clustersPerSite int) ([]ClusterRow, error) {
	return experiments.ClusterComparison(ctx, opts, clustersPerSite)
}

// FormatClusterRows renders the per-cluster comparison.
func FormatClusterRows(rows []ClusterRow, clustersPerSite int) string {
	return experiments.FormatClusterRows(rows, clustersPerSite)
}

// CachePolicyAblation compares LRU against FIFO, LFU and delayed-LRU
// under the hybrid placement on identical traces.
func CachePolicyAblation(ctx context.Context, opts Options) ([]PolicyRow, error) {
	return experiments.CachePolicyAblation(ctx, opts)
}

// ThetaSweep quantifies the §5.2 remark that ad-hoc splits are sensitive
// to the Zipf parameter while the hybrid adapts.
func ThetaSweep(ctx context.Context, opts Options, thetas []float64) ([]ThetaRow, error) {
	return experiments.ThetaSweep(ctx, opts, thetas)
}

// PlacementAblation compares placement heuristics with caching enabled
// everywhere.
func PlacementAblation(ctx context.Context, opts Options) ([]PlacementRow, error) {
	return experiments.PlacementAblation(ctx, opts)
}

// FormatPanel, FormatFig6, FormatSummary and the ablation formatters
// render results as the text tables the paper's figures correspond to.
func FormatPanel(p Panel) string { return experiments.FormatPanel(p) }

// FormatPanelPlot renders a panel's CDF curves as an ASCII chart — the
// terminal rendition of the paper's Figures 3–5.
func FormatPanelPlot(p Panel) string           { return experiments.FormatPanelPlot(p) }
func FormatFig6(rows []Fig6Row) string         { return experiments.FormatFig6(rows) }
func FormatSummary(rows []GainRow) string      { return experiments.FormatSummary(rows) }
func FormatPolicyRows(rows []PolicyRow) string { return experiments.FormatPolicyRows(rows) }
func FormatThetaRows(rows []ThetaRow) string   { return experiments.FormatThetaRows(rows) }
func FormatPlacementRows(rows []PlacementRow) string {
	return experiments.FormatPlacementRows(rows)
}
