// Command tracegen records and inspects synthetic CDN request traces in
// the repository's binary format (internal/trace). A recorded trace can
// be replayed through the simulator so that different placements are
// compared on byte-identical traffic, or handed to other tooling.
//
// Usage:
//
//	tracegen -out trace.bin -requests 1500000 -seed 1 -trace 99
//	tracegen -stats trace.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/xrand"
)

func main() {
	var (
		out      = flag.String("out", "", "record a trace to this file")
		statsIn  = flag.String("stats", "", "summarize an existing trace file")
		requests = flag.Int("requests", 1500000, "records to write")
		seed     = flag.Uint64("seed", 1, "scenario seed")
		traceSd  = flag.Uint64("trace", 99, "request sampling seed")
		quick    = flag.Bool("quick", false, "reduced-scale scenario")
		lambda   = flag.Float64("lambda", 0, "uncacheable request fraction")
	)
	flag.Parse()

	switch {
	case *out != "":
		if err := record(*out, *requests, *seed, *traceSd, *quick, *lambda); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	case *statsIn != "":
		if err := summarize(*statsIn); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "tracegen: need -out FILE or -stats FILE")
		os.Exit(2)
	}
}

func record(path string, requests int, seed, traceSeed uint64, quick bool, lambda float64) error {
	cfg := scenario.Default()
	if quick {
		cfg.Topology.TransitDomains = 1
		cfg.Topology.TransitNodesPerDomain = 2
		cfg.Topology.StubsPerTransitNode = 3
		cfg.Topology.StubNodesPerStub = 5
		cfg.Workload.Servers = 10
		cfg.Workload.LowSites, cfg.Workload.MediumSites, cfg.Workload.HighSites = 4, 8, 4
		cfg.Workload.ObjectsPerSite = 120
	}
	cfg.Seed = seed
	cfg.Workload.Lambda = lambda
	sc, err := scenario.Build(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f, trace.Header{
		Servers:        sc.Sys.N(),
		Sites:          sc.Sys.M(),
		ObjectsPerSite: cfg.Workload.ObjectsPerSite,
	})
	if err != nil {
		return err
	}
	stream := sc.Stream(xrand.New(traceSeed))
	for i := 0; i < requests; i++ {
		if err := w.Write(stream.Next()); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d records (%d servers, %d sites) to %s\n",
		w.Count(), sc.Sys.N(), sc.Sys.M(), path)
	return f.Close()
}

func summarize(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	h := r.Header()
	perServer := make([]int64, h.Servers)
	perSite := make([]int64, h.Sites)
	var total, uncacheable int64
	for {
		req, ok := r.Next()
		if !ok {
			break
		}
		total++
		perServer[req.Server]++
		perSite[req.Site]++
		if !req.Cacheable {
			uncacheable++
		}
	}
	fmt.Printf("trace: %d records, %d servers, %d sites, L=%d\n",
		total, h.Servers, h.Sites, h.ObjectsPerSite)
	if total == 0 {
		return nil
	}
	fmt.Printf("uncacheable fraction: %.4f\n", float64(uncacheable)/float64(total))
	fmt.Println("requests per site:")
	for j, c := range perSite {
		fmt.Printf("  site %2d: %8d (%.4f)\n", j, c, float64(c)/float64(total))
	}
	var minS, maxS int64 = 1 << 62, 0
	for _, c := range perServer {
		if c < minS {
			minS = c
		}
		if c > maxS {
			maxS = c
		}
	}
	fmt.Printf("per-server records: min %d, max %d\n", minS, maxS)
	return nil
}
