// Command cdnorigin is the cluster deployment's standalone origin: one
// process serving the primary copy of every site at /obj/{site}/{object}
// with conditional-GET support. It fetches the deployment scenario from
// the control plane, rebuilds it deterministically, registers, and
// serves until signalled.
//
// Chaos hooks: POST /admin/fault?mode=error|latency|blackhole injects a
// fault (the endpoint itself stays reachable so faults are always
// reversible); POST /admin/modify?site=&object= bumps an object version
// to exercise cache revalidation.
//
// Usage:
//
//	cdnorigin -addr 127.0.0.1:9301 -control http://127.0.0.1:9300
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/clusterd"
	"repro/internal/serverutil"
)

func main() {
	cfg := clusterd.OriginConfig{}
	addr := flag.String("addr", "127.0.0.1:9301", "listen address")
	control := flag.String("control", "http://127.0.0.1:9300", "control plane base URL")
	wait := flag.Duration("wait", 30*time.Second, "how long to wait for the control plane to come up")
	flag.Int64Var(&cfg.MaxObjectBytes, "max-object-bytes", 0, "cap synthetic payload sizes (0 = 64 KiB)")
	quiet := flag.Bool("quiet", false, "suppress log output")
	flag.Parse()

	cfg.Addr = *addr
	if !*quiet {
		logger := log.New(os.Stderr, "cdnorigin: ", log.LstdFlags|log.Lmsgprefix)
		cfg.Logf = logger.Printf
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *control, *wait, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "cdnorigin:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, control string, wait time.Duration, cfg clusterd.OriginConfig) error {
	if err := serverutil.WaitReady(ctx, nil, control+"/cluster/config", wait); err != nil {
		return fmt.Errorf("control plane at %s: %w", control, err)
	}
	params, err := clusterd.FetchParams(ctx, nil, control)
	if err != nil {
		return err
	}
	o, err := clusterd.StartOrigin(params, cfg)
	if err != nil {
		return err
	}
	if err := o.Register(ctx, nil, control); err != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		o.Shutdown(sctx)
		return err
	}
	if cfg.Logf != nil {
		cfg.Logf("serving %d-edge scenario (seed %d) at %s", params.Edges, params.Seed, o.URL())
	}
	<-ctx.Done()
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	return o.Shutdown(sctx)
}
