// Command cdnedge is one standalone edge server of the cluster
// deployment. It serves /obj/{site}/{object} with the same discipline
// as the in-process httpcdn cluster — pinned replica, then LRU cache,
// then cheapest healthy replica-holding peer, then origin — counts
// per-site demand locally and flushes deltas to the control plane,
// and accepts placement swaps at /admin/placement (push) while pulling
// catch-up documents when a report reply shows it is behind.
//
// Chaos hook: POST /admin/fault?mode=... (always reachable, even
// blackholed). Debug: /metrics, /debug/health (peer/origin trackers).
//
// Usage:
//
//	cdnedge -id 0 -addr 127.0.0.1:9310 -control http://127.0.0.1:9300
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/clusterd"
	"repro/internal/obs"
	"repro/internal/serverutil"
)

func main() {
	cfg := clusterd.EdgeConfig{}
	addr := flag.String("addr", "127.0.0.1:9310", "listen address")
	control := flag.String("control", "http://127.0.0.1:9300", "control plane base URL")
	wait := flag.Duration("wait", 30*time.Second, "how long to wait for the control plane to come up")
	tracePath := flag.String("trace", "", "write the JSONL span stream to this file (cdntrace reads it)")
	flag.IntVar(&cfg.ID, "id", 0, "edge id in 0..edges-1")
	flag.DurationVar(&cfg.PerHopDelay, "per-hop-delay", 0, "artificial latency per upstream hop")
	flag.Int64Var(&cfg.MaxObjectBytes, "max-object-bytes", 0, "cap synthetic payload sizes (0 = 64 KiB)")
	flag.IntVar(&cfg.FailThreshold, "fail-threshold", 0, "consecutive upstream failures before ejection (0 = default)")
	flag.DurationVar(&cfg.EjectFor, "eject-for", 0, "upstream ejection backoff (0 = default)")
	quiet := flag.Bool("quiet", false, "suppress log output")
	flag.Parse()

	cfg.Addr = *addr
	if !*quiet {
		logger := log.New(os.Stderr, fmt.Sprintf("cdnedge[%d]: ", cfg.ID), log.LstdFlags|log.Lmsgprefix)
		cfg.Logf = logger.Printf
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *control, *wait, *tracePath, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "cdnedge:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, control string, wait time.Duration, tracePath string, cfg clusterd.EdgeConfig) error {
	if err := serverutil.WaitReady(ctx, nil, control+"/cluster/config", wait); err != nil {
		return fmt.Errorf("control plane at %s: %w", control, err)
	}
	params, err := clusterd.FetchParams(ctx, nil, control)
	if err != nil {
		return err
	}

	var tracer *obs.Tracer
	if tracePath != "" {
		tf, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer tf.Close()
		tracer = obs.NewTracer(tf)
		cfg.Tracer = tracer
	}

	e, err := clusterd.StartEdge(params, cfg)
	if err != nil {
		return err
	}
	if err := e.Register(ctx, control); err != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Shutdown(sctx)
		return err
	}
	if cfg.Logf != nil {
		cfg.Logf("serving at %s (scenario: %d edges, seed %d)", e.URL(), params.Edges, params.Seed)
	}
	<-ctx.Done()
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	err = e.Shutdown(sctx)
	if tracer != nil {
		if ferr := tracer.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	return err
}
