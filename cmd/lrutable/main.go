// Command lrutable builds, inspects and queries the paper's §4
// pre-computed hit-ratio tables: h(p, K) for one site shape (L objects,
// Zipf θ) on a (p, K) grid, stored in a compact binary file. A placement
// controller loads the table once and answers every hit-ratio query in
// O(1), exactly as the paper's implementation notes describe.
//
// Usage:
//
//	lrutable -build table.bin -objects 2000 -theta 1.0
//	lrutable -info table.bin
//	lrutable -query table.bin -p 0.05 -k 750
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lrumodel"
)

func main() {
	var (
		build   = flag.String("build", "", "write a table to this file")
		info    = flag.String("info", "", "describe an existing table file")
		query   = flag.String("query", "", "query an existing table file")
		objects = flag.Int("objects", 2000, "objects per site (L)")
		theta   = flag.Float64("theta", 1.0, "Zipf parameter θ")
		pStep   = flag.Float64("pstep", 1e-3, "popularity granularity (the paper uses 1e-5)")
		pMax    = flag.Float64("pmax", 1.0, "popularity upper bound")
		kStep   = flag.Float64("kstep", 5, "K granularity in time slots (the paper's value)")
		kMax    = flag.Float64("kmax", 50000, "K upper bound")
		p       = flag.Float64("p", 0.05, "query: site popularity")
		k       = flag.Float64("k", 500, "query: eviction horizon K")
	)
	flag.Parse()
	if err := run(*build, *info, *query, *objects, *theta, *pStep, *pMax, *kStep, *kMax, *p, *k); err != nil {
		fmt.Fprintln(os.Stderr, "lrutable:", err)
		os.Exit(1)
	}
}

func run(build, info, query string, objects int, theta, pStep, pMax, kStep, kMax, p, k float64) error {
	switch {
	case build != "":
		tab := lrumodel.BuildTable(objects, theta, pStep, pMax, kStep, kMax)
		f, err := os.Create(build)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := tab.WriteTo(f)
		if err != nil {
			return err
		}
		fmt.Printf("wrote table (L=%d, θ=%.2f, %d KB) to %s\n",
			objects, theta, n>>10, build)
		return f.Close()
	case info != "":
		tab, err := load(info)
		if err != nil {
			return err
		}
		fmt.Printf("table: L=%d θ=%.2f\n", tab.Objects, tab.Theta)
		fmt.Printf("grid:  p ∈ [0, %g] step %g, K ∈ [0, %g] step %g\n",
			tab.PMax, tab.PStep, tab.KMax, tab.KStep)
		fmt.Println("sample surface h(p, K):")
		fmt.Printf("%8s", "p\\K")
		ks := []float64{tab.KMax / 100, tab.KMax / 20, tab.KMax / 4, tab.KMax}
		for _, kk := range ks {
			fmt.Printf("%10.0f", kk)
		}
		fmt.Println()
		for _, pp := range []float64{0.01, 0.05, 0.2, 0.5, 1.0} {
			fmt.Printf("%8.2f", pp)
			for _, kk := range ks {
				fmt.Printf("%10.4f", tab.Lookup(pp, kk))
			}
			fmt.Println()
		}
		return nil
	case query != "":
		tab, err := load(query)
		if err != nil {
			return err
		}
		fmt.Printf("h(p=%g, K=%g) = %.6f\n", p, k, tab.Lookup(p, k))
		return nil
	default:
		return fmt.Errorf("need -build FILE, -info FILE or -query FILE")
	}
}

func load(path string) (*lrumodel.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return lrumodel.ReadTable(f)
}
