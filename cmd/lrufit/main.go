// Command lrufit validates an analytical hit-ratio model against a real
// cache driven by an IRM request stream, sweeping the cache size — the
// stand-alone counterpart of Figure 6. The -model flag selects which
// model to validate (eq1, che, closedform or random); the simulated
// cache's replacement policy follows the model (LRU for the LRU models,
// the random-replacement variant for the RANDOM/FIFO model).
//
// Usage:
//
//	lrufit                          # one Zipf(1.0) site of 2000 objects
//	lrufit -sites 4 -theta 0.8 -objects 1000 -requests 2000000
//	lrufit -model closedform        # Laoutaris closed form vs LRU
//	lrufit -model random            # RANDOM/FIFO model vs random cache
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/cache"
	"repro/internal/lrumodel"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func main() {
	var (
		sites    = flag.Int("sites", 1, "number of sites sharing the cache")
		objects  = flag.Int("objects", 2000, "objects per site (L)")
		theta    = flag.Float64("theta", 1.0, "Zipf parameter θ")
		requests = flag.Int("requests", 1000000, "simulated requests per cache size")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		model    = flag.String("model", "", "analytical model to validate: eq1 (default), che, closedform or random")
	)
	flag.Parse()
	if *sites < 1 || *objects < 1 || *requests < 1 {
		fmt.Fprintln(os.Stderr, "lrufit: sites, objects and requests must be positive")
		os.Exit(1)
	}
	kind, err := lrumodel.ParseModelKind(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrufit: -model:", err)
		os.Exit(1)
	}

	specs := make([]lrumodel.SiteSpec, *sites)
	weights := make([]float64, *sites)
	for j := range specs {
		specs[j] = lrumodel.SiteSpec{Objects: *objects, Theta: *theta}
		weights[j] = float64(uint(1) << uint(*sites-1-j)) // 2^k popularity ladder
	}
	totalObjects := *sites * *objects
	pred, err := lrumodel.New(lrumodel.ModelConfig{
		Kind:           kind,
		Specs:          specs,
		Weights:        weights,
		AvgObjectBytes: 1,
		MaxCacheBytes:  int64(totalObjects),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrufit:", err)
		os.Exit(1)
	}
	policy := cache.PolicyLRU
	if kind == lrumodel.ModelRandom {
		policy = cache.PolicyRandom
	}

	fmt.Printf("%s model vs simulated %s cache — %d site(s), L=%d, θ=%.2f, %d requests/point\n\n",
		kind, policy, *sites, *objects, *theta, *requests)
	fmt.Printf("%10s %12s %12s %10s\n", "slots B", "predicted", "simulated", "err")

	worst := 0.0
	for _, frac := range []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.4} {
		b := int64(frac * float64(totalObjects))
		if b < 1 {
			continue
		}
		predicted := pred.OverallHitRatio(b)
		simulated := simulate(policy, specs, weights, int(b), *requests, xrand.New(*seed))
		err := predicted - simulated
		if math.Abs(err) > math.Abs(worst) {
			worst = err
		}
		fmt.Printf("%10d %12.4f %12.4f %+10.4f\n", b, predicted, simulated, err)
	}
	fmt.Printf("\nworst absolute error: %.4f (the paper reports < 7%% overall)\n", math.Abs(worst))
}

// simulate drives a real cache of the given policy with unit-size
// objects under the independent reference model and returns the overall
// hit ratio after a 20% warm-up.
func simulate(policy cache.Policy, specs []lrumodel.SiteSpec, weights []float64, slots, requests int, r *xrand.Source) float64 {
	c := cache.New(policy, int64(slots))
	zipfs := make([]*stats.Zipf, len(specs))
	for j, s := range specs {
		zipfs[j] = stats.NewZipf(s.Objects, s.Theta)
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	cdf := make([]float64, len(weights))
	cum := 0.0
	for j, w := range weights {
		cum += w / total
		cdf[j] = cum
	}
	warm := requests / 5
	var hits, lookups float64
	for i := 0; i < requests; i++ {
		u := r.Float64()
		site := 0
		for site < len(cdf)-1 && u > cdf[site] {
			site++
		}
		key := cache.Key{Site: site, Object: zipfs[site].Sample(r)}
		hit := c.Get(key)
		if !hit {
			c.Put(key, 1)
		}
		if i >= warm {
			lookups++
			if hit {
				hits++
			}
		}
	}
	if lookups == 0 {
		return 0
	}
	return hits / lookups
}
