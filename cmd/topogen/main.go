// Command topogen generates and describes the GT-ITM-style transit–stub
// topologies of §5.1: node/edge counts, hop-count diameter, degree
// distribution, and the stub-domain structure the CDN servers and primary
// sites are placed into.
//
// Usage:
//
//	topogen                      # the paper's ~560-node default
//	topogen -transit 2 -stubs 4 -stubnodes 8 -seed 7
//	topogen -place 50            # also sample 50 server locations
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/topology"
	"repro/internal/xrand"
)

func main() {
	def := topology.DefaultConfig()
	var (
		transit      = flag.Int("transit", def.TransitDomains, "transit domains")
		transitNodes = flag.Int("transitnodes", def.TransitNodesPerDomain, "nodes per transit domain")
		stubs        = flag.Int("stubs", def.StubsPerTransitNode, "stub domains per transit node")
		stubNodes    = flag.Int("stubnodes", def.StubNodesPerStub, "nodes per stub domain")
		extraProb    = flag.Float64("extraprob", def.ExtraEdgeProb, "extra intra-domain edge probability")
		seed         = flag.Uint64("seed", 1, "generator seed")
		place        = flag.Int("place", 0, "sample this many stub placements (servers/origins)")
		dot          = flag.String("dot", "", "write the topology in Graphviz DOT format to this file")
	)
	flag.Parse()

	cfg := topology.Config{
		TransitDomains:        *transit,
		TransitNodesPerDomain: *transitNodes,
		StubsPerTransitNode:   *stubs,
		StubNodesPerStub:      *stubNodes,
		ExtraEdgeProb:         *extraProb,
		ExtraTransitEdges:     def.ExtraTransitEdges,
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	r := xrand.New(*seed)
	topo := topology.Generate(cfg, r)

	fmt.Printf("transit-stub topology (seed %d)\n", *seed)
	fmt.Printf("  nodes:        %d (%d transit, %d stub)\n",
		topo.G.N(), len(topo.TransitNodes), topo.G.N()-len(topo.TransitNodes))
	fmt.Printf("  edges:        %d\n", topo.G.M())
	fmt.Printf("  stub domains: %d x %d nodes\n", len(topo.StubDomains), cfg.StubNodesPerStub)
	fmt.Printf("  connected:    %v\n", topo.G.Connected())
	fmt.Printf("  diameter:     %.0f hops\n", topo.G.Diameter())

	// Degree histogram.
	maxDeg := 0
	for v := 0; v < topo.G.N(); v++ {
		if d := topo.G.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int, maxDeg+1)
	for v := 0; v < topo.G.N(); v++ {
		counts[topo.G.Degree(v)]++
	}
	fmt.Println("  degree histogram:")
	for d, c := range counts {
		if c > 0 {
			fmt.Printf("    deg %2d: %4d nodes\n", d, c)
		}
	}

	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(1)
		}
		if err := topo.WriteDOT(f); err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote DOT graph to %s (render with: dot -Tsvg)\n", *dot)
	}

	if *place > 0 {
		nodes := topo.PlaceInStubs(*place, r.Split("placement"))
		fmt.Printf("\nplaced %d nodes in stub domains:\n", *place)
		for i, n := range nodes {
			fmt.Printf("  #%-3d node %-4d (stub domain %d)\n", i, n, topo.StubOf[n])
		}
	}
}
