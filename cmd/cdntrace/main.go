// Command cdntrace analyzes the JSONL trace streams that cdnd -trace
// and cdnsim -trace emit (internal/obs Events and Spans on one stream)
// and the decision-audit pages the control plane serves at
// /debug/control/audit.
//
// For span streams it prints per-kind latency quantiles, the
// retry/failover breakdown of the serving path, and the critical path
// of the N slowest request trees — including multi-hop requests
// stitched across edges by the Traceparent header. With -audit it
// summarizes the controller's reconcile records: what each round saw,
// proposed and decided. With -check it validates every span against
// the schema and exits non-zero on any violation, which is how CI
// keeps the trace format honest.
//
// Usage:
//
//	cdnd -trace run.jsonl ... && cdntrace run.jsonl
//	cdntrace -slowest 5 run.jsonl sim.jsonl
//	cdntrace -check run.jsonl
//	curl -s http://127.0.0.1:8080/debug/control/audit > audit.json
//	cdntrace -audit audit.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/control"
	"repro/internal/traceanalysis"
)

func main() {
	var (
		slowest = flag.Int("slowest", 3, "print the critical path of the N slowest traces")
		audit   = flag.String("audit", "", "summarize a /debug/control/audit JSON document")
		check   = flag.Bool("check", false, "validate span schema and parent links; exit 1 on violations")
	)
	flag.Parse()

	if *audit == "" && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "cdntrace: need trace JSONL files (or - for stdin), or -audit FILE")
		os.Exit(2)
	}
	if err := run(flag.Args(), *slowest, *audit, *check); err != nil {
		fmt.Fprintln(os.Stderr, "cdntrace:", err)
		os.Exit(1)
	}
}

func run(paths []string, slowest int, auditPath string, check bool) error {
	var c traceanalysis.Corpus
	for _, path := range paths {
		if err := load(&c, path); err != nil {
			return err
		}
	}
	if len(paths) > 0 {
		fmt.Printf("loaded %d events, %d spans from %s\n",
			len(c.Events), len(c.Spans), strings.Join(paths, ", "))
		if check {
			if errs := c.Check(); len(errs) > 0 {
				for _, err := range errs {
					fmt.Fprintln(os.Stderr, "cdntrace: check:", err)
				}
				return fmt.Errorf("%d schema violations", len(errs))
			}
			fmt.Println("check: all spans valid, all parents resolved")
		}
		report(&c, slowest)
	}
	if auditPath != "" {
		if err := reportAudit(auditPath); err != nil {
			return err
		}
	}
	return nil
}

func load(c *traceanalysis.Corpus, path string) error {
	if path == "-" {
		return c.Load(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.Load(f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func report(c *traceanalysis.Corpus, slowest int) {
	stats := c.StatsByKind()
	if len(stats) == 0 {
		fmt.Println("\nno spans in the stream (was the run traced with spans enabled?)")
		return
	}
	fmt.Println("\nspan latency by kind (ms):")
	fmt.Println("kind        count      p50      p90      p99      max")
	for _, st := range stats {
		fmt.Printf("%-9s %7d %8.2f %8.2f %8.2f %8.2f\n",
			st.Kind, st.Count, st.P50Ms, st.P90Ms, st.P99Ms, st.MaxMs)
	}

	rt := c.Retry()
	if rt.UpstreamAttempts > 0 {
		fmt.Printf("\nupstream attempts: %d", rt.UpstreamAttempts)
		if rt.AttemptTagged > 0 {
			fmt.Printf(" (%.1f%% succeeded first try)", 100*float64(rt.FirstAttemptOK)/float64(rt.AttemptTagged))
		}
		fmt.Println()
		fmt.Printf("retry backoffs: %d, %.2f ms total wait on the serving path\n",
			rt.Retries, rt.RetryWaitMs)
		hops := make([]string, 0, len(rt.FailoverHops))
		for h := range rt.FailoverHops {
			hops = append(hops, h)
		}
		sort.Strings(hops)
		for _, h := range hops {
			label := "failover hop"
			if h == "0" {
				label = "preferred source"
			}
			fmt.Printf("  %s %s: %d fetches\n", label, h, rt.FailoverHops[h])
		}
		if rt.SkippedEjected > 0 {
			fmt.Printf("  health: %d ejected candidates skipped during source selection\n",
				rt.SkippedEjected)
		}
	}

	traces := c.BuildTraces()
	multiHop := 0
	for _, tr := range traces {
		if hasRemoteServe(tr.Root, tr.Root.Edge) {
			multiHop++
		}
	}
	fmt.Printf("\n%d traces (%d stitched across multiple components)\n", len(traces), multiHop)
	if slowest > len(traces) {
		slowest = len(traces)
	}
	for i := 0; i < slowest; i++ {
		tr := traces[i]
		fmt.Printf("\nslowest #%d: trace %s — %.2f ms, %d spans", i+1, tr.ID,
			float64(tr.Root.DurUs)/1000, tr.Spans)
		if tr.Orphans > 0 {
			fmt.Printf(" (%d orphaned)", tr.Orphans)
		}
		fmt.Println()
		for depth, n := range tr.CriticalPath() {
			fmt.Printf("  %s%s\n", strings.Repeat("  ", depth), describe(n))
		}
	}
}

// hasRemoteServe reports whether any non-root span in the tree was
// recorded by a different component than the root — the signature of a
// request stitched across servers.
func hasRemoteServe(n *traceanalysis.Node, rootEdge int) bool {
	for _, ch := range n.Children {
		if ch.Edge != rootEdge || hasRemoteServe(ch, rootEdge) {
			return true
		}
	}
	return false
}

func describe(n *traceanalysis.Node) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8.2f ms  edge=%d site=%d obj=%d",
		n.Kind, float64(n.DurUs)/1000, n.Edge, n.Site, n.Object)
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, n.Attrs[k])
	}
	return b.String()
}

func reportAudit(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var page control.AuditPage
	if err := json.NewDecoder(f).Decode(&page); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("\ncontrol audit: %d reconcile records\n", len(page.Records))
	counts := map[control.Outcome]int{}
	for _, rec := range page.Records {
		counts[rec.Outcome]++
	}
	for _, o := range []control.Outcome{control.OutcomeApplied, control.OutcomeSkipped,
		control.OutcomeNoop, control.OutcomeNoSignal} {
		if counts[o] > 0 {
			fmt.Printf("  %-10s %d\n", o, counts[o])
		}
	}
	for _, rec := range page.Records {
		fmt.Printf("\nround %d @ %s (%.1f ms, window %d reqs", rec.Round, rec.When,
			rec.DurationMs, rec.WindowRequests)
		if rec.DemandHash != "" {
			fmt.Printf(", demand %s", rec.DemandHash)
		}
		fmt.Println(")")
		fmt.Printf("  %s\n", rec.Verdict)
		if len(rec.Proposed) > 0 {
			fmt.Printf("  proposed %d creations; top benefits:\n", len(rec.Proposed))
			for i, p := range rec.Proposed {
				if i == 3 {
					fmt.Printf("    ... %d more\n", len(rec.Proposed)-i)
					break
				}
				fmt.Printf("    site %d → edge %d (benefit %.4f)\n", p.Site, p.Server, p.Benefit)
			}
		}
		if len(rec.FrozenSites) > 0 {
			fmt.Printf("  frozen sites (cooldown): %v\n", rec.FrozenSites)
		}
		if len(rec.ExcludedEdges) > 0 {
			fmt.Printf("  excluded edges (health): %v\n", rec.ExcludedEdges)
		}
		if rec.CreatesDeferred > 0 {
			fmt.Printf("  %d creations deferred for capacity\n", rec.CreatesDeferred)
		}
		if len(rec.EngineSteps) > 0 {
			pops, stale := 0, 0
			for _, st := range rec.EngineSteps {
				pops += st.HeapPops
				stale += st.StaleReevals
			}
			fmt.Printf("  engine: %d steps, %d heap pops, %d stale re-evaluations\n",
				len(rec.EngineSteps), pops, stale)
		}
	}
	return nil
}
