// Command cdncontrol is the cluster deployment's control plane: it owns
// the deployment scenario, admits edges and the origin into the roster
// (POST /cluster/register), ingests demand reports into a sharded EWMA
// estimator, reconciles placement on a timer against the aggregated
// estimate, actively probes member health, and pushes placement swaps
// to the edges.
//
// Usage:
//
//	cdncontrol -addr 127.0.0.1:9300 -edges 2 -seed 1 -interval 2s
//
// Debug endpoints: /debug/control (status), /debug/control/audit,
// /debug/control/shards (per-shard estimator state, cdnctl shards),
// /debug/health (probe-driven member view), /metrics, /cluster/members.
//
// SIGINT/SIGTERM drain in-flight requests and exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/clusterd"
	"repro/internal/lrumodel"
)

func main() {
	params := clusterd.DefaultParams()
	cfg := clusterd.ControlConfig{}
	addr := flag.String("addr", "127.0.0.1:9300", "listen address")
	flag.IntVar(&params.Edges, "edges", params.Edges, "number of edge servers the scenario expects")
	flag.Uint64Var(&params.Seed, "seed", params.Seed, "scenario seed (topology, workload, capacities)")
	flag.Float64Var(&params.CapacityFrac, "capacity", params.CapacityFrac, "per-edge storage as a fraction of total content bytes")
	flag.IntVar(&cfg.Shards, "shards", clusterd.DefaultShards, "estimator shard count")
	flag.DurationVar(&cfg.Interval, "interval", 2*time.Second, "reconcile cadence")
	flag.DurationVar(&cfg.ReportEvery, "report-every", clusterd.DefaultReportEvery, "demand-report cadence handed to edges")
	flag.DurationVar(&cfg.ProbeEvery, "probe-every", clusterd.DefaultProbeEvery, "active health probe cadence")
	flag.DurationVar(&cfg.ProbeTimeout, "probe-timeout", clusterd.DefaultProbeTimeout, "per-probe timeout")
	flag.IntVar(&cfg.FailThreshold, "fail-threshold", 3, "consecutive probe failures before ejection")
	flag.DurationVar(&cfg.EjectFor, "eject-for", 2*time.Second, "tracker backoff window after ejection")
	flag.Float64Var(&cfg.Hysteresis, "hysteresis", 0, "reconcile hysteresis (<0 disables)")
	flag.IntVar(&cfg.CooldownRounds, "cooldown", 0, "reconcile cooldown rounds (<0 disables)")
	flag.Float64Var(&cfg.Epsilon, "epsilon", 0, "ε for the approximate placement engine (0 = exact)")
	flag.StringVar(&cfg.Model, "model", "", "analytical hit-ratio model placement optimizes with: eq1 (default), che, closedform or random")
	quiet := flag.Bool("quiet", false, "suppress log output")
	flag.Parse()

	if _, err := lrumodel.ParseModelKind(cfg.Model); err != nil {
		fmt.Fprintln(os.Stderr, "cdncontrol: -model:", err)
		os.Exit(2)
	}
	cfg.Addr = *addr
	if !*quiet {
		logger := log.New(os.Stderr, "cdncontrol: ", log.LstdFlags|log.Lmsgprefix)
		cfg.Logf = logger.Printf
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, params, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "cdncontrol:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, params clusterd.Params, cfg clusterd.ControlConfig) error {
	cp, err := clusterd.StartControl(params, cfg)
	if err != nil {
		return err
	}
	if cfg.Logf != nil {
		cfg.Logf("serving %d-edge scenario (seed %d) at %s", params.Edges, params.Seed, cp.URL())
	}
	<-ctx.Done()
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	return cp.Shutdown(sctx)
}
