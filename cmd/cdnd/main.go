// Command cdnd runs the hybrid CDN as a real HTTP system on loopback:
// one origin server per hosted site, one edge server per CDN node, the
// hybrid algorithm deciding each edge's replica/cache split, and a
// client load generator drawing from the SURGE-like workload. It prints
// a per-source latency summary of where requests were served from.
//
// With -metrics the full observability surface is served while the
// load runs: /metrics (Prometheus text format, per-edge hit/miss/
// eviction counters and per-source latency histograms), /debug/vars
// (expvar-style JSON) and /debug/pprof/ (runtime profiles).
//
// Usage:
//
//	cdnd                              # default: 6 edges, 8 sites, 2000 requests
//	cdnd -requests 5000 -hopdelay 2ms -capacity 0.15
//	cdnd -metrics 127.0.0.1:0 -linger 30s
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/httpcdn"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func main() {
	var (
		requests    = flag.Int("requests", 2000, "client requests to issue")
		seed        = flag.Uint64("seed", 1, "scenario seed")
		hopDelay    = flag.Duration("hopdelay", time.Millisecond, "artificial delay per topology hop")
		capacity    = flag.Float64("capacity", 0.15, "per-edge storage as a fraction of total content bytes")
		edges       = flag.Int("edges", 6, "number of CDN edge servers")
		metricsAddr = flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof/ on this address (e.g. 127.0.0.1:0)")
		linger      = flag.Duration("linger", 0, "keep the metrics endpoint up this long after the run (requires -metrics)")
	)
	flag.Parse()
	if err := run(*requests, *seed, *hopDelay, *capacity, *edges, *metricsAddr, *linger); err != nil {
		fmt.Fprintln(os.Stderr, "cdnd:", err)
		os.Exit(1)
	}
}

func run(requests int, seed uint64, hopDelay time.Duration, capacity float64, edges int, metricsAddr string, linger time.Duration) error {
	w := workload.DefaultConfig()
	w.Servers = edges
	w.LowSites, w.MediumSites, w.HighSites = 2, 4, 2
	w.ObjectsPerSite = 60
	cfg := scenario.Config{
		Topology: topology.Config{
			TransitDomains:        1,
			TransitNodesPerDomain: 2,
			StubsPerTransitNode:   3,
			StubNodesPerStub:      4,
			ExtraEdgeProb:         0.3,
		},
		Workload:     w,
		CapacityFrac: capacity,
		Seed:         seed,
	}
	sc, err := scenario.Build(cfg)
	if err != nil {
		return err
	}
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		fmt.Printf("observability at http://%s/metrics (also /debug/vars, /debug/pprof/)\n", ln.Addr())
		go func() { _ = http.Serve(ln, reg.DebugMux()) }()
	}

	fmt.Printf("starting %d origin + %d edge HTTP servers on loopback\n",
		sc.Sys.M(), sc.Sys.N())
	fmt.Printf("hybrid placement: %d replicas, predicted cost %.3f hops/request\n\n",
		res.Placement.Replicas(), res.PredictedCost)

	hcfg := httpcdn.DefaultConfig()
	hcfg.PerHopDelay = hopDelay
	hcfg.Metrics = reg
	cl, err := httpcdn.Start(sc, res.Placement, hcfg)
	if err != nil {
		return err
	}
	defer cl.Close()

	for i := 0; i < sc.Sys.N(); i++ {
		var sites []int
		for j := 0; j < sc.Sys.M(); j++ {
			if res.Placement.Has(i, j) {
				sites = append(sites, j)
			}
		}
		fmt.Printf("edge %d at %s — replicas %v, cache %d MB\n",
			i, cl.EdgeURL(i), sites, res.Placement.Free(i)>>20)
	}

	// Client-side per-source latency histograms: the same buckets the
	// edges record server-side, measured from the client's clock.
	latency := make(map[string]*obs.Histogram, len(obs.Sources))
	for _, src := range obs.Sources {
		latency[src] = reg.Histogram("cdnd_client_latency_ms",
			"Client-observed request latency by serving source, milliseconds.",
			obs.Labels{"source": src}, obs.DefaultLatencyBuckets())
	}
	failed := reg.Counter("cdnd_client_errors_total", "Client requests that failed.", nil)

	fmt.Printf("\nissuing %d client requests...\n", requests)
	stream := sc.Stream(xrand.New(seed + 1000))
	start := time.Now()
	for k := 0; k < requests; k++ {
		req := stream.Next()
		fr, err := cl.Fetch(req.Server, req.Site, req.Object)
		if err != nil {
			if failed.Value() < 5 {
				fmt.Fprintf(os.Stderr, "cdnd: request %d failed: %v\n", k, err)
			}
			failed.Inc()
			continue
		}
		latency[fr.Source].Observe(float64(fr.Latency) / float64(time.Millisecond))
	}
	elapsed := time.Since(start)

	fmt.Printf("\n%d requests in %v (%.0f req/s), %d failed\n",
		requests, elapsed.Round(time.Millisecond),
		float64(requests)/elapsed.Seconds(), failed.Value())
	fmt.Println("source      count  share     p50ms    p95ms    p99ms")
	var total int64
	for _, src := range obs.Sources {
		total += latency[src].Count()
	}
	for _, src := range obs.Sources {
		h := latency[src]
		share := 0.0
		if total > 0 {
			share = 100 * float64(h.Count()) / float64(total)
		}
		fmt.Printf("%-8s %8d %5.1f%%  %8.2f %8.2f %8.2f\n",
			src, h.Count(), share,
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	}

	local := latency[httpcdn.SourceReplica].Count() + latency[httpcdn.SourceCache].Count()
	if total > 0 {
		fmt.Printf("\nfirst-hop locality: %.1f%% of requests never left their edge —\n",
			100*float64(local)/float64(total))
		fmt.Println("the hybrid split at work over real HTTP.")
	}

	if linger > 0 && metricsAddr != "" {
		fmt.Printf("\nlingering %v for metrics scrapes...\n", linger)
		time.Sleep(linger)
	}
	if n := failed.Value(); n > 0 {
		return fmt.Errorf("%d of %d requests failed", n, requests)
	}
	return nil
}
