// Command cdnd runs the hybrid CDN as a real HTTP system on loopback:
// one origin server per hosted site, one edge server per CDN node, the
// hybrid algorithm deciding each edge's replica/cache split, and a
// client load generator drawing from the SURGE-like workload. It prints
// a per-source latency summary of where requests were served from.
//
// With -metrics the full observability surface is served while the
// load runs: /metrics (Prometheus text format, per-edge hit/miss/
// eviction counters and per-source latency histograms), /debug/vars
// (expvar-style JSON) and /debug/pprof/ (runtime profiles).
//
// With -control-interval the online control plane runs alongside the
// load: every edge request feeds the demand estimator, and every
// interval the controller re-runs the hybrid placement against the
// estimate and live-swaps the routing tables when the plan clears
// hysteresis. Its state is served at /debug/control on the -metrics
// address (cdnctl is the client).
//
// With -fault-mode a fault injector degrades a set of edges for a window
// of the load (-fault-edges, -fault-from, -fault-to): requests to those
// edges fail, stall, or hang, the passive health tracker ejects them,
// redirection routes around them, and — with the control loop on — the
// controller reconciles placement without the dead edges. Health state
// is served at /debug/health on the -metrics address.
//
// With -trace every request is recorded to a JSONL file as an event
// plus a span tree (serve/health/failover/upstream/retry/origin, with
// multi-hop fetches stitched into one trace by the Traceparent
// header); cmd/cdntrace analyzes the file. Records dropped on write
// errors are counted in cdn_trace_dropped_total and the shutdown
// summary.
//
// SIGINT/SIGTERM stop the load generator, drain the metrics endpoint
// and shut the cluster down cleanly.
//
// Usage:
//
//	cdnd                              # default: 6 edges, 8 sites, 2000 requests
//	cdnd -requests 5000 -hopdelay 2ms -capacity 0.15
//	cdnd -metrics 127.0.0.1:0 -linger 30s
//	cdnd -metrics 127.0.0.1:8080 -control-interval 5s -linger 10m
//	cdnd -fault-mode error -fault-edges 0,1 -fault-from 500 -fault-to 1500
//	cdnd -trace run.jsonl && cdntrace run.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/control"
	"repro/internal/fault"
	"repro/internal/httpcdn"
	"repro/internal/lrumodel"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/serverutil"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/internal/xrand"
)

type options struct {
	requests     int
	seed         uint64
	hopDelay     time.Duration
	capacity     float64
	edges        int
	model        string
	metricsAddr  string
	tracePath    string
	linger       time.Duration
	ctrlInterval time.Duration
	ctrlHyst     float64
	ctrlCooldown int
	ctrlEpsilon  float64
	ctrlCold     bool
	ctrlDrift    float64
	faultMode    string
	faultEdges   string
	faultLatency time.Duration
	faultFrom    int
	faultTo      int
	churn        float64
}

func main() {
	var opt options
	flag.IntVar(&opt.requests, "requests", 2000, "client requests to issue")
	flag.Uint64Var(&opt.seed, "seed", 1, "scenario seed")
	flag.DurationVar(&opt.hopDelay, "hopdelay", time.Millisecond, "artificial delay per topology hop")
	flag.Float64Var(&opt.capacity, "capacity", 0.15, "per-edge storage as a fraction of total content bytes")
	flag.IntVar(&opt.edges, "edges", 6, "number of CDN edge servers")
	flag.StringVar(&opt.model, "model", "", "analytical hit-ratio model placement and the control loop optimize with: eq1 (default), che, closedform or random")
	flag.StringVar(&opt.metricsAddr, "metrics", "", "serve /metrics, /debug/vars, /debug/pprof/ and /debug/control on this address (e.g. 127.0.0.1:0)")
	flag.StringVar(&opt.tracePath, "trace", "", "write a JSONL event+span trace to this file (analyze with cdntrace)")
	flag.DurationVar(&opt.linger, "linger", 0, "keep the metrics endpoint up this long after the run (requires -metrics)")
	flag.DurationVar(&opt.ctrlInterval, "control-interval", 0, "run the online control loop, reconciling at this interval (0 disables)")
	flag.Float64Var(&opt.ctrlHyst, "control-hysteresis", 0, "minimum net benefit, as a fraction of current predicted cost, before a plan applies (0 = default, negative = off)")
	flag.IntVar(&opt.ctrlCooldown, "control-cooldown", 0, "reconcile rounds a just-changed site stays frozen (0 = default, negative = off)")
	flag.Float64Var(&opt.ctrlEpsilon, "control-epsilon", 0, "approximate placement drift budget: final predicted cost stays within this fraction of the exact engine's (0 = exact)")
	flag.BoolVar(&opt.ctrlCold, "control-cold", false, "disable warm-start incremental re-placement (re-solve cold every reconcile)")
	flag.Float64Var(&opt.ctrlDrift, "control-warm-drift", 0, "per-server demand drift above which warm-start rebuilds the row exactly (0 = default)")
	flag.StringVar(&opt.faultMode, "fault-mode", "off", "fault to inject into -fault-edges: off, error, latency or blackhole")
	flag.StringVar(&opt.faultEdges, "fault-edges", "0", "comma-separated edge ids the injector degrades")
	flag.DurationVar(&opt.faultLatency, "fault-latency", 200*time.Millisecond, "added delay per request in latency mode")
	flag.IntVar(&opt.faultFrom, "fault-from", 0, "client request index at which the fault starts")
	flag.IntVar(&opt.faultTo, "fault-to", 0, "client request index at which the fault clears (0 = never)")
	flag.Float64Var(&opt.churn, "churn", 0, "per-live-site perish probability per request: clients draw from a churning catalog, and requests for perished sites become client-side 404s (0 = static catalog)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opt); err != nil {
		fmt.Fprintln(os.Stderr, "cdnd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, opt options) error {
	modelKind, err := lrumodel.ParseModelKind(opt.model)
	if err != nil {
		return fmt.Errorf("-model: %w", err)
	}
	if opt.churn < 0 {
		return fmt.Errorf("-churn %v: perish rate must be >= 0", opt.churn)
	}
	w := workload.DefaultConfig()
	w.Servers = opt.edges
	w.LowSites, w.MediumSites, w.HighSites = 2, 4, 2
	w.ObjectsPerSite = 60
	cfg := scenario.Config{
		Topology: topology.Config{
			TransitDomains:        1,
			TransitNodesPerDomain: 2,
			StubsPerTransitNode:   3,
			StubNodesPerStub:      4,
			ExtraEdgeProb:         0.3,
		},
		Workload:     w,
		CapacityFrac: opt.capacity,
		Seed:         opt.seed,
	}
	sc, err := scenario.Build(cfg)
	if err != nil {
		return err
	}
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
		Model:          string(modelKind),
	})
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()

	// The tracer writes the mixed event+span JSONL stream cdntrace
	// consumes; a dying disk shows up as cdn_trace_dropped_total in
	// /metrics and in the shutdown summary rather than as a silently
	// truncated file.
	var tracer *obs.Tracer
	if opt.tracePath != "" {
		tf, err := os.Create(opt.tracePath)
		if err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
		defer tf.Close()
		tracer = obs.NewTracer(tf)
		tracer.CountDrops(reg.Counter("cdn_trace_dropped_total",
			"Trace records discarded after a write error.", nil))
	}

	// The estimator exists before the cluster so the request tap can feed
	// it; the controller itself needs the running cluster as its target.
	var est *control.Estimator
	if opt.ctrlInterval > 0 {
		est, err = control.NewEstimator(control.EstimatorConfig{
			Servers: sc.Sys.N(),
			Sites:   sc.Sys.M(),
		})
		if err != nil {
			return err
		}
	}

	fmt.Printf("starting %d origin + %d edge HTTP servers on loopback\n",
		sc.Sys.M(), sc.Sys.N())
	fmt.Printf("hybrid placement (%s model): %d replicas, predicted cost %.3f hops/request\n\n",
		modelKind, res.Placement.Replicas(), res.PredictedCost)

	// The controller is created after the cluster (it needs the running
	// cluster as target and health view), so the health callback reaches
	// it through an atomic pointer.
	var ctrlRef atomic.Pointer[control.Controller]
	hcfg := httpcdn.DefaultConfig()
	hcfg.PerHopDelay = opt.hopDelay
	hcfg.Metrics = reg
	if tracer != nil {
		hcfg.Tracer = tracer
		hcfg.TraceSpans = true
	}
	if est != nil {
		hcfg.RequestTap = est.Observe
	}
	hcfg.OnHealthChange = func(kind string, id int, ejected bool) {
		if ejected {
			fmt.Printf("health: %s %d ejected\n", kind, id)
		} else {
			fmt.Printf("health: %s %d readmitted\n", kind, id)
		}
		if c := ctrlRef.Load(); c != nil && kind == "edge" {
			if !ejected {
				// A recovered edge may deserve its replicas back
				// immediately; clear placement cooldowns first.
				c.Unfreeze()
			}
			c.Kick()
		}
	}
	cl, err := httpcdn.Start(sc, res.Placement, hcfg)
	if err != nil {
		return err
	}
	defer cl.Close()

	faultMode, ok := fault.ParseMode(opt.faultMode)
	if !ok {
		return fmt.Errorf("bad -fault-mode %q (want off, error, latency or blackhole)", opt.faultMode)
	}
	var faultEdges []int
	if faultMode != fault.ModeOff {
		for _, f := range strings.Split(opt.faultEdges, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || id < 0 || id >= sc.Sys.N() {
				return fmt.Errorf("bad -fault-edges entry %q", f)
			}
			faultEdges = append(faultEdges, id)
		}
	}
	setFault := func(m fault.Mode) {
		for _, id := range faultEdges {
			cl.EdgeInjector(id).Set(m, opt.faultLatency)
		}
	}

	var ctrl *control.Controller
	if opt.ctrlInterval > 0 {
		ctrl, err = control.New(control.Config{
			Base:               sc.Sys,
			Specs:              sc.Work.Specs(),
			AvgObjectBytes:     sc.Work.AvgObjectBytes,
			Model:              string(modelKind),
			Target:             cl,
			Estimator:          est,
			Health:             cl,
			Interval:           opt.ctrlInterval,
			Hysteresis:         opt.ctrlHyst,
			CooldownRounds:     opt.ctrlCooldown,
			Epsilon:            opt.ctrlEpsilon,
			DisableWarmStart:   opt.ctrlCold,
			WarmDriftThreshold: opt.ctrlDrift,
			Metrics:            reg,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		ctrlRef.Store(ctrl)
		go ctrl.Run(ctx)
		fmt.Printf("control loop: reconciling every %v\n", opt.ctrlInterval)
	}

	if opt.metricsAddr != "" {
		mux := serverutil.DebugMux(reg)
		mux.Handle("/debug/health", cl.HealthHandler())
		if ctrl != nil {
			h := control.Handler(ctrl)
			mux.Handle("/debug/control", h)
			mux.Handle("/debug/control/audit", h)
			mux.Handle("/debug/control/reconcile", h)
		}
		srv, err := serverutil.Start(serverutil.Config{
			Addr: opt.metricsAddr, Handler: mux, DrainTimeout: 5 * time.Second,
		})
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Printf("observability at %s/metrics (also /debug/vars, /debug/pprof/, /debug/health", srv.URL())
		if ctrl != nil {
			fmt.Print(", /debug/control")
		}
		fmt.Println(")")
		defer func() {
			// Drain in-flight scrapes instead of snapping connections.
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
		}()
	}

	for i := 0; i < sc.Sys.N(); i++ {
		var sites []int
		for j := 0; j < sc.Sys.M(); j++ {
			if res.Placement.Has(i, j) {
				sites = append(sites, j)
			}
		}
		fmt.Printf("edge %d at %s — replicas %v, cache %d MB\n",
			i, cl.EdgeURL(i), sites, res.Placement.Free(i)>>20)
	}

	// Client-side per-source latency histograms: the same buckets the
	// edges record server-side, measured from the client's clock.
	latency := make(map[string]*obs.Histogram, len(obs.Sources))
	for _, src := range obs.Sources {
		latency[src] = reg.Histogram("cdnd_client_latency_ms",
			"Client-observed request latency by serving source, milliseconds.",
			obs.Labels{"source": src}, obs.DefaultLatencyBuckets())
	}
	failed := reg.Counter("cdnd_client_errors_total", "Client requests that failed.", nil)
	steered := reg.Counter("cdnd_client_steered_total",
		"Client requests redirected away from an unhealthy first-hop edge.", nil)

	// pickHop plays the redirector's part: a client assigned to an edge
	// the health tracker has ejected is steered to the cheapest healthy
	// edge instead (the DNS-level move a real CDN would make). An edge
	// whose half-open probe window is open ("probing") stays eligible —
	// the one client request it receives is the probe that readmits it.
	pickHop := func(want int, avoid int) int {
		down := make(map[int]bool)
		for _, e := range cl.Health().Edges {
			if e.State == "ejected" {
				down[e.ID] = true
			}
		}
		if want != avoid && !down[want] {
			return want
		}
		best, bestCost := -1, 0.0
		for k := 0; k < sc.Sys.N(); k++ {
			if k == avoid || down[k] {
				continue
			}
			if cost := sc.Sys.CostServer[want][k]; best < 0 || cost < bestCost {
				best, bestCost = k, cost
			}
		}
		if best < 0 {
			return want
		}
		return best
	}

	fmt.Printf("\nissuing %d client requests...\n", opt.requests)
	// With -churn the clients draw from a churning catalog: sites
	// publish and perish as the load runs. The HTTP cluster's catalog is
	// static, so a request for a perished site is resolved client-side —
	// the link is dead, the client sees a 404 and moves on.
	var nextReq func() workload.Request
	var dynStream *workload.DynamicStream
	if opt.churn > 0 {
		dynStream, err = workload.NewDynamicStream(sc.Work, workload.DynamicConfig{
			PublishRate: opt.churn * float64(sc.Sys.M()),
			PerishRate:  opt.churn,
		}, xrand.New(opt.seed+1000))
		if err != nil {
			return fmt.Errorf("-churn: %w", err)
		}
		nextReq = dynStream.Next
		fmt.Printf("catalog churn: perish rate %v per live site per request\n", opt.churn)
	} else {
		stream := sc.Stream(xrand.New(opt.seed + 1000))
		nextReq = stream.Next
	}
	staleLinks := reg.Counter("cdnd_client_stale_links_total",
		"Client requests for perished sites, answered 404 without a fetch.", nil)
	start := time.Now()
	issued := 0
	for k := 0; k < opt.requests; k++ {
		if ctx.Err() != nil {
			fmt.Printf("\ninterrupted after %d requests, shutting down\n", issued)
			break
		}
		if faultMode != fault.ModeOff && k == opt.faultFrom {
			fmt.Printf("fault: %s on edges %v\n", faultMode, faultEdges)
			setFault(faultMode)
		}
		if faultMode != fault.ModeOff && opt.faultTo > opt.faultFrom && k == opt.faultTo {
			fmt.Printf("fault: cleared on edges %v\n", faultEdges)
			setFault(fault.ModeOff)
		}
		req := nextReq()
		if req.Perished {
			staleLinks.Inc()
			issued++
			continue
		}
		hop := pickHop(req.Server, -1)
		if hop != req.Server {
			steered.Inc()
		}
		fr, err := cl.Fetch(ctx, hop, req.Site, req.Object)
		// Failover: each failed fetch fed the health tracker, so walk the
		// remaining edges (nearest healthy first) before giving up — a
		// request is lost only when every edge fails it.
		for tried := map[int]bool{hop: true}; err != nil && ctx.Err() == nil && len(tried) < sc.Sys.N(); {
			alt := pickHop(req.Server, hop)
			if tried[alt] {
				// pickHop converged on an edge that already failed; scan
				// for any untried one.
				alt = -1
				for k := 0; k < sc.Sys.N(); k++ {
					if !tried[k] {
						alt = k
						break
					}
				}
				if alt < 0 {
					break
				}
			}
			tried[alt] = true
			steered.Inc()
			fr, err = cl.Fetch(ctx, alt, req.Site, req.Object)
		}
		issued++
		if err != nil {
			if failed.Value() < 5 {
				fmt.Fprintf(os.Stderr, "cdnd: request %d failed: %v\n", k, err)
			}
			failed.Inc()
			continue
		}
		latency[fr.Source].Observe(float64(fr.Latency) / float64(time.Millisecond))
	}
	elapsed := time.Since(start)

	fmt.Printf("\n%d requests in %v (%.0f req/s), %d failed, %d steered around unhealthy edges\n",
		issued, elapsed.Round(time.Millisecond),
		float64(issued)/elapsed.Seconds(), failed.Value(), steered.Value())
	if dynStream != nil {
		fmt.Printf("catalog churn: %d sites published, %d perished, %d stale-link 404s\n",
			dynStream.Publishes(), dynStream.Perishes(), staleLinks.Value())
	}
	fmt.Println("source      count  share     p50ms    p95ms    p99ms")
	var total int64
	for _, src := range obs.Sources {
		total += latency[src].Count()
	}
	for _, src := range obs.Sources {
		h := latency[src]
		share := 0.0
		if total > 0 {
			share = 100 * float64(h.Count()) / float64(total)
		}
		fmt.Printf("%-8s %8d %5.1f%%  %8.2f %8.2f %8.2f\n",
			src, h.Count(), share,
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	}

	local := latency[httpcdn.SourceReplica].Count() + latency[httpcdn.SourceCache].Count()
	if total > 0 {
		fmt.Printf("\nfirst-hop locality: %.1f%% of requests never left their edge —\n",
			100*float64(local)/float64(total))
		fmt.Println("the hybrid split at work over real HTTP.")
	}
	if ctrl != nil {
		st := ctrl.Status()
		fmt.Printf("\ncontrol: %d rounds (%d applied, %d skipped, %d noop, %d no-signal), %d replicas live\n",
			st.Rounds, st.Applied, st.Skipped, st.Noops, st.NoSignal, st.Replicas)
	}
	if tracer != nil {
		err := tracer.Flush()
		fmt.Printf("\ntrace: wrote %s (%d records dropped)\n", opt.tracePath, tracer.Dropped())
		if err != nil {
			return fmt.Errorf("trace %s: %w", opt.tracePath, err)
		}
	}

	if opt.linger > 0 && opt.metricsAddr != "" && ctx.Err() == nil {
		fmt.Printf("\nlingering %v for metrics scrapes (ctrl-c to stop)...\n", opt.linger)
		select {
		case <-time.After(opt.linger):
		case <-ctx.Done():
		}
	}
	if n := failed.Value(); n > 0 {
		return fmt.Errorf("%d of %d requests failed", n, issued)
	}
	return nil
}
