// Command cdnd runs the hybrid CDN as a real HTTP system on loopback:
// one origin server per hosted site, one edge server per CDN node, the
// hybrid algorithm deciding each edge's replica/cache split, and a
// client load generator drawing from the SURGE-like workload. It prints
// where each request was served from and the measured latencies.
//
// Usage:
//
//	cdnd                      # default: 6 edges, 8 sites, 2000 requests
//	cdnd -requests 5000 -hopdelay 2ms -capacity 0.15
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/httpcdn"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func main() {
	var (
		requests = flag.Int("requests", 2000, "client requests to issue")
		seed     = flag.Uint64("seed", 1, "scenario seed")
		hopDelay = flag.Duration("hopdelay", time.Millisecond, "artificial delay per topology hop")
		capacity = flag.Float64("capacity", 0.15, "per-edge storage as a fraction of total content bytes")
		edges    = flag.Int("edges", 6, "number of CDN edge servers")
	)
	flag.Parse()
	if err := run(*requests, *seed, *hopDelay, *capacity, *edges); err != nil {
		fmt.Fprintln(os.Stderr, "cdnd:", err)
		os.Exit(1)
	}
}

func run(requests int, seed uint64, hopDelay time.Duration, capacity float64, edges int) error {
	w := workload.DefaultConfig()
	w.Servers = edges
	w.LowSites, w.MediumSites, w.HighSites = 2, 4, 2
	w.ObjectsPerSite = 60
	cfg := scenario.Config{
		Topology: topology.Config{
			TransitDomains:        1,
			TransitNodesPerDomain: 2,
			StubsPerTransitNode:   3,
			StubNodesPerStub:      4,
			ExtraEdgeProb:         0.3,
		},
		Workload:     w,
		CapacityFrac: capacity,
		Seed:         seed,
	}
	sc, err := scenario.Build(cfg)
	if err != nil {
		return err
	}
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		return err
	}

	fmt.Printf("starting %d origin + %d edge HTTP servers on loopback\n",
		sc.Sys.M(), sc.Sys.N())
	fmt.Printf("hybrid placement: %d replicas, predicted cost %.3f hops/request\n\n",
		res.Placement.Replicas(), res.PredictedCost)

	hcfg := httpcdn.DefaultConfig()
	hcfg.PerHopDelay = hopDelay
	cl, err := httpcdn.Start(sc, res.Placement, hcfg)
	if err != nil {
		return err
	}
	defer cl.Close()

	for i := 0; i < sc.Sys.N(); i++ {
		var sites []int
		for j := 0; j < sc.Sys.M(); j++ {
			if res.Placement.Has(i, j) {
				sites = append(sites, j)
			}
		}
		fmt.Printf("edge %d at %s — replicas %v, cache %d MB\n",
			i, cl.EdgeURL(i), sites, res.Placement.Free(i)>>20)
	}

	fmt.Printf("\nissuing %d client requests...\n", requests)
	stream := sc.Stream(xrand.New(seed + 1000))
	sources := map[string]int{}
	var latencies []float64
	start := time.Now()
	for k := 0; k < requests; k++ {
		req := stream.Next()
		fr, err := cl.Fetch(req.Server, req.Site, req.Object)
		if err != nil {
			return fmt.Errorf("request %d: %w", k, err)
		}
		sources[fr.Source]++
		latencies = append(latencies, float64(fr.Latency.Microseconds())/1000)
	}
	elapsed := time.Since(start)

	fmt.Printf("\n%d requests in %v (%.0f req/s)\n",
		requests, elapsed.Round(time.Millisecond), float64(requests)/elapsed.Seconds())
	fmt.Println("served from:")
	for _, src := range []string{httpcdn.SourceReplica, httpcdn.SourceCache, httpcdn.SourcePeer, httpcdn.SourceOrigin} {
		fmt.Printf("  %-8s %6d (%.1f%%)\n", src, sources[src],
			100*float64(sources[src])/float64(requests))
	}
	sort.Float64s(latencies)
	fmt.Printf("latency ms: p50 %.2f  p90 %.2f  p99 %.2f\n",
		latencies[len(latencies)/2],
		latencies[len(latencies)*9/10],
		latencies[len(latencies)*99/100])

	local := sources[httpcdn.SourceReplica] + sources[httpcdn.SourceCache]
	fmt.Printf("\nfirst-hop locality: %.1f%% of requests never left their edge —\n",
		100*float64(local)/float64(requests))
	fmt.Println("the hybrid split at work over real HTTP.")
	return nil
}
