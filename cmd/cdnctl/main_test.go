package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/control"
	"repro/internal/httpcdn"
	"repro/internal/placement"
)

// stubControlServer serves the three debug endpoints cdnctl talks to,
// with canned payloads shaped like a real cdnd's.
func stubControlServer(t *testing.T) string {
	t.Helper()
	st := control.Status{
		Rounds:    4,
		Applied:   2,
		Replicas:  5,
		Observed:  12345,
		Placement: [][]int{{0, 2}, {1}},
		Last: &control.Report{
			Round:    4,
			Outcome:  control.OutcomeApplied,
			Excluded: []int{1, 3},
			Diff: placement.DiffResult{
				Created: []placement.Replica{{Server: 0, Site: 2}},
			},
		},
	}
	rep := control.Report{
		Round:          5,
		Outcome:        control.OutcomeNoop,
		WindowRequests: 678,
		Excluded:       []int{2},
	}
	hr := httpcdn.HealthReport{
		Edges: []httpcdn.HealthStatus{
			{Kind: "edge", ID: 0, State: "healthy"},
			{Kind: "edge", ID: 1, State: "ejected", ConsecutiveFailures: 3,
				Ejections: 1, RetryInMs: 1500},
		},
		Origins: []httpcdn.HealthStatus{
			{Kind: "origin", ID: 0, State: "healthy", Readmissions: 1},
		},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/control", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("/debug/control/reconcile", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		json.NewEncoder(w).Encode(rep)
	})
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(hr)
	})
	sh := control.ShardsPage{
		VNodes:   64,
		KeySpace: 16,
		Shards: []control.ShardStatus{
			{Shard: 0, Keys: 9, Observed: 900, Rolls: 3, RatePerWindow: 300.5},
			{Shard: 1, Keys: 7, Observed: 100, Rolls: 3, RatePerWindow: 33.1},
		},
	}
	mux.HandleFunc("/debug/control/shards", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(sh)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestStatusCommand(t *testing.T) {
	addr := stubControlServer(t)
	var out bytes.Buffer
	if err := run([]string{"-addr", addr, "status"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"rounds     4 (applied 2,",
		"observed   12345 requests",
		"replicas   5",
		"edge 0: [0 2]",
		"last round 4: applied, +1/-0 replicas",
		"excluded unhealthy edges [1 3]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("status output missing %q:\n%s", want, text)
		}
	}
}

func TestReconcileCommand(t *testing.T) {
	addr := stubControlServer(t)
	var out bytes.Buffer
	if err := run([]string{"-addr", addr, "reconcile"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"round 5: noop",
		"window     678 requests",
		"excluded   unhealthy edges [2]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("reconcile output missing %q:\n%s", want, text)
		}
	}
}

func TestHealthCommand(t *testing.T) {
	addr := stubControlServer(t)
	var out bytes.Buffer
	if err := run([]string{"-addr", addr, "health"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"edge        0  healthy",
		"ejected  fails=3 ejections=1",
		"retry-in=1500ms",
		"origin      0  healthy",
		"readmissions=1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("health output missing %q:\n%s", want, text)
		}
	}
}

func TestShardsCommand(t *testing.T) {
	addr := stubControlServer(t)
	var out bytes.Buffer
	if err := run([]string{"-addr", addr, "shards"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"2 shards x 64 vnodes over 16 (edge, site) keys",
		"shard  0  keys=9",
		"observed=900",
		"( 90.0%)",
		"rate/window=300.5",
		"shard  1  keys=7",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("shards output missing %q:\n%s", want, text)
		}
	}
}

func TestJSONPassthrough(t *testing.T) {
	addr := stubControlServer(t)
	for _, cmd := range []string{"status", "reconcile", "health", "shards"} {
		var out bytes.Buffer
		if err := run([]string{"-addr", addr, "-json", cmd}, &out); err != nil {
			t.Fatal(err)
		}
		if !json.Valid(out.Bytes()) {
			t.Errorf("%s -json emitted invalid JSON: %s", cmd, out.String())
		}
	}
	// The raw status round-trips back into the typed struct.
	var out bytes.Buffer
	if err := run([]string{"-addr", addr, "-json", "status"}, &out); err != nil {
		t.Fatal(err)
	}
	var st control.Status
	if err := json.Unmarshal(out.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 4 || st.Last == nil || len(st.Last.Excluded) != 2 {
		t.Fatalf("raw status decoded to %+v", st)
	}
}

func TestUsageAndErrors(t *testing.T) {
	addr := stubControlServer(t)
	var out bytes.Buffer
	if err := run([]string{"-addr", addr, "explode"}, &out); err == nil ||
		!strings.Contains(err.Error(), "unknown command") {
		t.Errorf("unknown command: %v", err)
	}
	if err := run([]string{"-addr", addr}, &out); err == nil ||
		!strings.HasPrefix(err.Error(), "usage:") {
		t.Errorf("missing command: %v", err)
	}
	if err := run([]string{"-addr", addr, "status", "extra"}, &out); err == nil ||
		!strings.HasPrefix(err.Error(), "usage:") {
		t.Errorf("extra argument: %v", err)
	}
	// An unreachable server is a plain error, not a usage error.
	if err := run([]string{"-addr", "127.0.0.1:1", "-timeout", "200ms", "health"}, &out); err == nil ||
		strings.HasPrefix(err.Error(), "usage:") {
		t.Errorf("unreachable server: %v", err)
	}
}
