// Command cdnctl is the control-plane client: it talks to the
// /debug/control and /debug/health endpoints, which both cdnd (on its
// -metrics address) and the standalone cdncontrol (on its -addr) serve.
//
// Usage:
//
//	cdnctl -addr 127.0.0.1:8080 status      # controller state snapshot
//	cdnctl -addr 127.0.0.1:8080 reconcile   # force one reconcile round
//	cdnctl -addr 127.0.0.1:8080 health      # edge/origin health states
//	cdnctl -addr 127.0.0.1:9300 shards      # per-shard estimator state
//
// status prints a human summary (add -json for the raw Status);
// reconcile prints the round's report; health prints the health
// tracker's view of every edge and origin (passive trackers on cdnd,
// the active prober on cdncontrol); shards prints the sharded
// estimator's per-shard key/observation counts (cdncontrol only —
// cdnd's single estimator has no shards).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/control"
	"repro/internal/httpcdn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		code := 1
		if err == flag.ErrHelp || strings.HasPrefix(err.Error(), "usage:") {
			code = 2
		}
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "cdnctl:", err)
		}
		os.Exit(code)
	}
}

// run is the whole CLI behind a testable seam: args are the command-line
// arguments after the program name, out receives all normal output.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cdnctl", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:8080", "address serving /debug/control (cdnd -metrics or cdncontrol -addr)")
		raw     = fs.Bool("json", false, "print the raw JSON response")
		timeout = fs.Duration("timeout", 10*time.Second, "HTTP timeout")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cdnctl [flags] status|reconcile|health|shards\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("usage: expected exactly one command")
	}
	client := &http.Client{Timeout: *timeout}
	switch cmd := fs.Arg(0); cmd {
	case "status":
		return status(client, *addr, *raw, out)
	case "reconcile":
		return reconcile(client, *addr, *raw, out)
	case "health":
		return health(client, *addr, *raw, out)
	case "shards":
		return shards(client, *addr, *raw, out)
	default:
		return fmt.Errorf("unknown command %q (want status, reconcile, health or shards)", cmd)
	}
}

// fetch requests url and decodes the JSON body into v, keeping the raw
// bytes for -json passthrough.
func fetch(client *http.Client, method, url string, v any) ([]byte, error) {
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s %s: %s: %s", method, url, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, json.Unmarshal(body, v)
}

func status(client *http.Client, addr string, raw bool, out io.Writer) error {
	var st control.Status
	body, err := fetch(client, http.MethodGet, "http://"+addr+"/debug/control", &st)
	if err != nil {
		return err
	}
	if raw {
		out.Write(body)
		return nil
	}
	fmt.Fprintf(out, "rounds     %d (applied %d, skipped %d, noop %d, no-signal %d)\n",
		st.Rounds, st.Applied, st.Skipped, st.Noops, st.NoSignal)
	fmt.Fprintf(out, "observed   %d requests\n", st.Observed)
	if st.Model != "" {
		fmt.Fprintf(out, "model      %s\n", st.Model)
	}
	fmt.Fprintf(out, "replicas   %d\n", st.Replicas)
	if st.ChurnRate > 0 || st.StalePlacementFrac > 0 {
		fmt.Fprintf(out, "churn      rate %.4f births+deaths/site/window, %.1f%% of replicated sites stale\n",
			st.ChurnRate, 100*st.StalePlacementFrac)
	}
	for i, sites := range st.Placement {
		fmt.Fprintf(out, "  edge %d: %v\n", i, sites)
	}
	if st.Last != nil {
		fmt.Fprintf(out, "last round %d: %s, +%d/-%d replicas, net benefit %.4f (old %.4f → new %.4f)\n",
			st.Last.Round, st.Last.Outcome,
			len(st.Last.Diff.Created), len(st.Last.Diff.Dropped),
			st.Last.NetBenefit, st.Last.OldCost, st.Last.NewCost)
		if st.Last.Engine != "" {
			fmt.Fprintf(out, "           engine %s, placement %.1f ms\n",
				st.Last.Engine, st.Last.PlacementMs)
		}
		if len(st.Last.Excluded) > 0 {
			fmt.Fprintf(out, "           excluded unhealthy edges %v\n", st.Last.Excluded)
		}
	}
	if st.Pending != nil {
		fmt.Fprintf(out, "pending    +%d/-%d replicas withheld by hysteresis (%.3f GB·hops)\n",
			len(st.Pending.Created), len(st.Pending.Dropped), st.Pending.TransferGBHops)
	}
	return nil
}

func reconcile(client *http.Client, addr string, raw bool, out io.Writer) error {
	var rep control.Report
	body, err := fetch(client, http.MethodPost, "http://"+addr+"/debug/control/reconcile", &rep)
	if err != nil {
		return err
	}
	if raw {
		out.Write(body)
		return nil
	}
	fmt.Fprintf(out, "round %d: %s\n", rep.Round, rep.Outcome)
	fmt.Fprintf(out, "  window     %d requests\n", rep.WindowRequests)
	fmt.Fprintf(out, "  plan       +%d/-%d replicas, %.3f GB·hops transfer, %d deferred\n",
		len(rep.Diff.Created), len(rep.Diff.Dropped), rep.Diff.TransferGBHops, rep.CreatesDeferred)
	fmt.Fprintf(out, "  objective  %.4f → %.4f hops/request (net benefit %.4f)\n",
		rep.OldCost, rep.NewCost, rep.NetBenefit)
	if rep.Engine != "" {
		fmt.Fprintf(out, "  engine     %s (%.1f ms placement)\n", rep.Engine, rep.PlacementMs)
	}
	if rep.Model != "" {
		fmt.Fprintf(out, "  model      %s\n", rep.Model)
	}
	if len(rep.Excluded) > 0 {
		fmt.Fprintf(out, "  excluded   unhealthy edges %v\n", rep.Excluded)
	}
	return nil
}

func health(client *http.Client, addr string, raw bool, out io.Writer) error {
	var hr httpcdn.HealthReport
	body, err := fetch(client, http.MethodGet, "http://"+addr+"/debug/health", &hr)
	if err != nil {
		return err
	}
	if raw {
		out.Write(body)
		return nil
	}
	print := func(ss []httpcdn.HealthStatus) {
		for _, s := range ss {
			fmt.Fprintf(out, "%-8s %4d  %-8s fails=%d ejections=%d readmissions=%d",
				s.Kind, s.ID, s.State, s.ConsecutiveFailures, s.Ejections, s.Readmissions)
			if s.RetryInMs > 0 {
				fmt.Fprintf(out, " retry-in=%dms", s.RetryInMs)
			}
			fmt.Fprintln(out)
		}
	}
	print(hr.Edges)
	print(hr.Origins)
	return nil
}

func shards(client *http.Client, addr string, raw bool, out io.Writer) error {
	var page control.ShardsPage
	body, err := fetch(client, http.MethodGet, "http://"+addr+"/debug/control/shards", &page)
	if err != nil {
		return err
	}
	if raw {
		out.Write(body)
		return nil
	}
	fmt.Fprintf(out, "%d shards x %d vnodes over %d (edge, site) keys\n",
		len(page.Shards), page.VNodes, page.KeySpace)
	var observed int64
	for _, sh := range page.Shards {
		observed += sh.Observed
	}
	for _, sh := range page.Shards {
		pct := 0.0
		if observed > 0 {
			pct = 100 * float64(sh.Observed) / float64(observed)
		}
		fmt.Fprintf(out, "shard %2d  keys=%-5d observed=%-10d (%5.1f%%) rolls=%-6d rate/window=%.1f\n",
			sh.Shard, sh.Keys, sh.Observed, pct, sh.Rolls, sh.RatePerWindow)
	}
	return nil
}
