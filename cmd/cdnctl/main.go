// Command cdnctl is the control-plane client for a running cdnd: it
// talks to the /debug/control endpoint that cdnd serves on its -metrics
// address when -control-interval is set.
//
// Usage:
//
//	cdnctl -addr 127.0.0.1:8080 status      # controller state snapshot
//	cdnctl -addr 127.0.0.1:8080 reconcile   # force one reconcile round
//
// status prints a human summary (add -json for the raw Status);
// reconcile prints the round's report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/control"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "cdnd metrics address serving /debug/control")
		raw     = flag.Bool("json", false, "print the raw JSON response")
		timeout = flag.Duration("timeout", 10*time.Second, "HTTP timeout")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cdnctl [flags] status|reconcile\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}
	var err error
	switch cmd := flag.Arg(0); cmd {
	case "status":
		err = status(client, *addr, *raw)
	case "reconcile":
		err = reconcile(client, *addr, *raw)
	default:
		err = fmt.Errorf("unknown command %q (want status or reconcile)", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdnctl:", err)
		os.Exit(1)
	}
}

// get fetches url and decodes the JSON body into v, keeping the raw
// bytes for -json passthrough.
func fetch(client *http.Client, method, url string, v any) ([]byte, error) {
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s %s: %s: %s", method, url, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, json.Unmarshal(body, v)
}

func status(client *http.Client, addr string, raw bool) error {
	var st control.Status
	body, err := fetch(client, http.MethodGet, "http://"+addr+"/debug/control", &st)
	if err != nil {
		return err
	}
	if raw {
		os.Stdout.Write(body)
		return nil
	}
	fmt.Printf("rounds     %d (applied %d, skipped %d, noop %d, no-signal %d)\n",
		st.Rounds, st.Applied, st.Skipped, st.Noops, st.NoSignal)
	fmt.Printf("observed   %d requests\n", st.Observed)
	fmt.Printf("replicas   %d\n", st.Replicas)
	for i, sites := range st.Placement {
		fmt.Printf("  edge %d: %v\n", i, sites)
	}
	if st.Last != nil {
		fmt.Printf("last round %d: %s, +%d/-%d replicas, net benefit %.4f (old %.4f → new %.4f)\n",
			st.Last.Round, st.Last.Outcome,
			len(st.Last.Diff.Created), len(st.Last.Diff.Dropped),
			st.Last.NetBenefit, st.Last.OldCost, st.Last.NewCost)
	}
	if st.Pending != nil {
		fmt.Printf("pending    +%d/-%d replicas withheld by hysteresis (%.3f GB·hops)\n",
			len(st.Pending.Created), len(st.Pending.Dropped), st.Pending.TransferGBHops)
	}
	return nil
}

func reconcile(client *http.Client, addr string, raw bool) error {
	var rep control.Report
	body, err := fetch(client, http.MethodPost, "http://"+addr+"/debug/control/reconcile", &rep)
	if err != nil {
		return err
	}
	if raw {
		os.Stdout.Write(body)
		return nil
	}
	fmt.Printf("round %d: %s\n", rep.Round, rep.Outcome)
	fmt.Printf("  window     %d requests\n", rep.WindowRequests)
	fmt.Printf("  plan       +%d/-%d replicas, %.3f GB·hops transfer, %d deferred\n",
		len(rep.Diff.Created), len(rep.Diff.Dropped), rep.Diff.TransferGBHops, rep.CreatesDeferred)
	fmt.Printf("  objective  %.4f → %.4f hops/request (net benefit %.4f)\n",
		rep.OldCost, rep.NewCost, rep.NetBenefit)
	return nil
}
