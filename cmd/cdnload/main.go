// Command cdnload is the cluster deployment's load generator. It
// bootstraps the edge roster from the control plane, drives
// Zipf-popular requests from concurrent workers over persistent
// connections — each request aimed at the edge its simulated client is
// nearest to, with cheapest-first failover across the rest — verifies
// every payload against the deterministic pattern, and writes the
// measured throughput/latency report (BENCH_cluster.json schema).
//
// The chaos drill is built in: -fault-edge/-fault-mode/-fault-at/
// -clear-at inject and clear a fault on one edge at fixed points in the
// request sequence. The drill passes when the error count stays zero —
// clients steer around the dead edge — which is also the exit code:
// cdnload exits 1 if any request was lost.
//
// Usage:
//
//	cdnload -control http://127.0.0.1:9300 -requests 5000 -workers 8 \
//	        -fault-edge 1 -fault-mode error -fault-at 1500 -clear-at 3500 \
//	        -out BENCH_cluster.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/clusterd"
)

func main() {
	cfg := clusterd.LoadConfig{}
	control := flag.String("control", "http://127.0.0.1:9300", "control plane base URL")
	out := flag.String("out", "-", "write the JSON report here (- = stdout)")
	wait := flag.Duration("wait", 30*time.Second, "how long to wait for the full cluster to come up")
	flag.IntVar(&cfg.Requests, "requests", 5000, "total request count")
	flag.IntVar(&cfg.Workers, "workers", 8, "concurrent client workers")
	flag.Uint64Var(&cfg.Seed, "seed", 42, "request-stream seed (independent of the scenario seed)")
	flag.IntVar(&cfg.FaultEdge, "fault-edge", -1, "edge id to fault mid-run (-1 = no chaos)")
	flag.StringVar(&cfg.FaultMode, "fault-mode", "error", "fault mode: error, latency or blackhole")
	flag.IntVar(&cfg.FaultAt, "fault-at", 0, "request index at which the fault is injected")
	flag.IntVar(&cfg.ClearAt, "clear-at", 0, "request index at which the fault clears")
	flag.Float64Var(&cfg.StaleLinkFrac, "stale-links", 0, "fraction of requests aimed at out-of-catalog sites (must 404; counted in not_found)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	cfg.ControlURL = *control
	if !*quiet {
		logger := log.New(os.Stderr, "cdnload: ", log.LstdFlags|log.Lmsgprefix)
		cfg.Logf = logger.Printf
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *wait, *out, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "cdnload:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, wait time.Duration, out string, cfg clusterd.LoadConfig) error {
	wctx, cancel := context.WithTimeout(ctx, wait)
	defer cancel()
	if _, err := clusterd.WaitMembers(wctx, nil, cfg.ControlURL); err != nil {
		return err
	}
	if cfg.Logf != nil {
		cfg.Logf("cluster up, driving %d requests from %d workers", cfg.Requests, cfg.Workers)
	}
	res, err := clusterd.RunLoad(ctx, cfg)
	if err != nil {
		return err
	}
	if err := clusterd.WriteReport(out, res); err != nil {
		return err
	}
	if cfg.Logf != nil {
		cfg.Logf("%d requests in %.0f ms: %.0f req/s, p50 %.2f ms, p99 %.2f ms, %d errors, %d steered, %d stale 404s",
			res.Requests, res.DurationMs, res.ReqPerSec, res.Latency.P50, res.Latency.P99, res.Errors, res.Steered, res.NotFound)
	}
	if res.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", res.Errors, res.Requests)
	}
	return nil
}
