package main

import (
	"context"
	"fmt"
	"os"

	"repro"
	"repro/internal/lrumodel"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// runTraced is the `-trace out.jsonl` mode: one hybrid-placement
// simulation with the per-request JSONL tracer attached, followed by an
// end-of-run snapshot that reconciles each server's *measured* cache
// hit ratio against the LRU model's (Eqs. (1)–(2)) prediction — the
// §5/Figure 6 model-vs-system comparison at per-edge granularity.
func runTraced(ctx context.Context, opts repro.Options, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tracer := obs.NewTracer(f)

	sc, err := repro.BuildScenario(opts.Base)
	if err != nil {
		return err
	}
	res, err := repro.Place(sc, repro.PlacementConfig{
		Strategy: repro.StrategyHybrid,
		Model:    opts.Model,
	})
	if err != nil {
		return err
	}

	cfg := opts.Sim
	cfg.Tracer = tracer
	cfg.TraceSpans = true
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	m, err := sim.RunParallel(ctx, sc, res.Placement, cfg, xrand.New(opts.TraceSeed))
	if err != nil {
		return err
	}
	if err := tracer.Flush(); err != nil {
		return fmt.Errorf("trace %s: %w", path, err)
	}

	fmt.Printf("wrote %d trace events (with virtual-time spans) to %s — analyze with cdntrace\n\n",
		m.Requests, path)
	fmt.Printf("hybrid placement: %d replicas, predicted cost %.3f hops/request\n",
		res.Placement.Replicas(), res.PredictedCost)
	fmt.Printf("measured: mean %.1f ms, %.3f hops/request, local %.1f%%, aggregate hit ratio %.3f\n\n",
		m.MeanRTMs, m.MeanHops, 100*m.LocalFraction(), m.HitRatio())

	fmt.Println("per-edge cache hit ratio, measured vs model prediction:")
	fmt.Println("edge   lookups   measured  predicted       err")
	predicted, err := predictedHitRatios(sc, res.Placement, opts.Model)
	if err != nil {
		return err
	}
	for i := 0; i < sc.Sys.N(); i++ {
		fmt.Printf("%4d  %8d     %6.3f     %6.3f   %+7.3f\n",
			i, m.PerServerLookups[i], m.PerServerHitRatio[i], predicted[i],
			m.PerServerHitRatio[i]-predicted[i])
	}
	fmt.Println("\nend-of-run metrics snapshot (/metrics format):")
	return reg.WritePrometheus(os.Stdout)
}

// predictedHitRatios evaluates the selected analytical model per
// server: each server's expected hit ratio over its cacheable,
// non-replicated traffic given its placement's free cache bytes —
// directly comparable to sim.Metrics.PerServerHitRatio.
func predictedHitRatios(sc *repro.Scenario, p *repro.Placement, model string) ([]float64, error) {
	specs := sc.Work.Specs()
	n := sc.Sys.N()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		pred, err := lrumodel.New(lrumodel.ModelConfig{
			Kind:           lrumodel.ModelKind(model),
			Specs:          specs,
			Weights:        sc.Sys.Demand[i],
			AvgObjectBytes: sc.Work.AvgObjectBytes,
			MaxCacheBytes:  sc.Sys.Capacity[i],
		})
		if err != nil {
			return nil, err
		}
		visible := make([]bool, sc.Sys.M())
		for j := range visible {
			visible[j] = !p.Has(i, j)
		}
		h := pred.HitRatiosCond(visible, p.Free(i))
		// h[j] is λ-adjusted (hits over *all* of site j's requests);
		// the measured ratio is over cacheable lookups only, so weigh
		// the denominator by each visible site's cacheable share.
		var num, den float64
		for j := range visible {
			if !visible[j] {
				continue
			}
			pop := pred.SitePopularity(j)
			num += pop * h[j]
			den += pop * (1 - specs[j].Lambda)
		}
		if den > 0 {
			out[i] = num / den
		}
	}
	return out, nil
}
