// Command cdnsim regenerates the paper's evaluation (§5): the
// response-time CDFs of Figures 3–5, the model-accuracy comparison of
// Figure 6 and the §5.2 headline latency-gain summary — plus the
// beyond-the-paper figures of DESIGN.md §5 (ablations, clusters,
// consistency, availability, churn, drift, redirection, kmedian,
// model, updates, heterogeneity, seeds) and the scale sweep of
// DESIGN.md §10 (-figure scale re-runs the mechanism comparison at
// ×1/×2/×4/×10 paper size; it is deliberately not part of "all").
//
// Usage:
//
//	cdnsim -figure 3            # Figure 3 at paper scale
//	cdnsim -figure all -quick   # everything at reduced scale
//	cdnsim -figure 6 -requests 200000 -seed 7 -traceseed 3
//	cdnsim -figure scale -quick # scale sweep, ×1/×2 only
//
// With -trace it instead runs one hybrid-placement simulation that
// writes a JSONL event per measured request (the obs.Event schema) and
// prints an end-of-run metrics snapshot reconciling measured per-edge
// hit ratios against the LRU model's predictions:
//
//	cdnsim -trace out.jsonl -quick
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	"repro"
	"repro/internal/lrumodel"
)

func main() {
	os.Exit(realMain())
}

// realMain carries the exit code back to main so the profile-writing
// defers run before os.Exit.
func realMain() int {
	var (
		figure   = flag.String("figure", "all", "which output to regenerate: 3, 4, 5, 6, summary, ablations, clusters, consistency, availability, churn, drift, dynamic, redirection, kmedian, model, updates, heterogeneity, seeds, scale or all (scale sweeps ×1..×10 paper size and is not part of all)")
		quick    = flag.Bool("quick", false, "use the reduced-scale configuration (fast smoke run)")
		seed     = flag.Uint64("seed", 1, "scenario seed (topology, workload, placement)")
		trace    = flag.Uint64("traceseed", 99, "request-trace seed")
		requests = flag.Int("requests", 0, "override the measured request count")
		warmup   = flag.Int("warmup", 0, "override the cache warm-up request count")
		objects  = flag.Int("objects", 0, "override L, the objects per site")
		theta    = flag.Float64("theta", 0, "override the Zipf parameter θ")
		model    = flag.String("model", "", "analytical hit-ratio model the hybrid placement optimizes with: eq1 (default), che, closedform or random")
		plot     = flag.Bool("plot", false, "render CDF panels as ASCII charts instead of tables")
		tracePth = flag.String("trace", "", "write a per-request JSONL trace of one hybrid run to this file and print a metrics snapshot (skips -figure)")
		par      = flag.Int("parallelism", 0, "simulator worker count (0 = all cores, 1 = sequential); results are identical at any value")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	renderPlots = *plot
	quickRun = *quick

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdnsim:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cdnsim:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cdnsim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cdnsim:", err)
			}
		}()
	}

	opts := repro.DefaultOptions()
	if *quick {
		opts = repro.QuickOptions()
	}
	opts.Base.Seed = *seed
	opts.TraceSeed = *trace
	opts.Sim.Parallelism = *par
	if *requests > 0 {
		opts.Sim.Requests = *requests
	}
	if *warmup > 0 {
		opts.Sim.Warmup = *warmup
	}
	if *objects > 0 {
		opts.Base.Workload.ObjectsPerSite = *objects
	}
	if *theta > 0 {
		opts.Base.Workload.Theta = *theta
	}
	if _, err := lrumodel.ParseModelKind(*model); err != nil {
		fmt.Fprintln(os.Stderr, "cdnsim: -model:", err)
		return 1
	}
	opts.Model = *model

	// Ctrl-C cancels the run between request batches instead of killing
	// the process mid-figure (profiles still get written).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var err error
	if *tracePth != "" {
		err = runTraced(ctx, opts, *tracePth)
	} else {
		err = run(ctx, *figure, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdnsim:", err)
		return 1
	}
	return 0
}

// renderPlots switches the CDF panels from tables to ASCII charts.
var renderPlots bool

// quickRun records -quick so figure-specific sweeps (scale) can shrink.
var quickRun bool

func run(ctx context.Context, figure string, opts repro.Options) error {
	printPanels := func(panels []repro.Panel, err error) error {
		if err != nil {
			return err
		}
		for _, p := range panels {
			if renderPlots {
				fmt.Println(repro.FormatPanelPlot(p))
			} else {
				fmt.Println(repro.FormatPanel(p))
			}
		}
		return nil
	}
	switch figure {
	case "3":
		return printPanels(repro.Figure3(ctx, opts))
	case "4":
		return printPanels(repro.Figure4(ctx, opts))
	case "5":
		return printPanels(repro.Figure5(ctx, opts))
	case "6":
		rows, err := repro.Figure6(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatFig6(rows))
		return nil
	case "summary":
		rows, err := repro.Summary(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatSummary(rows))
		return nil
	case "clusters":
		for _, n := range []int{2, 4, 8} {
			rows, err := repro.ClusterComparison(ctx, opts, n)
			if err != nil {
				return err
			}
			fmt.Println(repro.FormatClusterRows(rows, n))
		}
		return nil
	case "consistency":
		rows, err := repro.ConsistencyComparison(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatConsistencyRows(rows))
		return nil
	case "availability":
		rows, err := repro.AvailabilityComparison(ctx, opts, []int{0, 2, 5, 10}, 2)
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatAvailabilityRows(rows))
		return nil
	case "redirection":
		rows, err := repro.RedirectionComparison(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatRedirectRows(rows))
		return nil
	case "kmedian":
		rows, err := repro.KMedianQuality(ctx, opts, []int{1, 2, 3})
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatKMedianRows(rows))
		return nil
	case "model":
		rows, err := repro.ModelComparison(ctx, opts, []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.4})
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatModelCompareRows(rows))
		policy, err := repro.ModelPolicyComparison(ctx, opts, []float64{0.02, 0.05, 0.1, 0.2})
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatPolicyModelRows(policy))
		robust, err := repro.ModelRobustness(ctx, opts, []float64{0, 0.2, 0.4, 0.6})
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatRobustnessRows(robust))
		return nil
	case "updates":
		rows, err := repro.UpdateSweep(ctx, opts, []float64{0, 0.1, 0.25, 0.5, 1.0})
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatUpdateRows(rows))
		return nil
	case "seeds":
		rows, err := repro.SummaryOverSeeds(ctx, opts, []uint64{1, 2, 3, 4, 5})
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatGainStats(rows))
		return nil
	case "heterogeneity":
		rows, err := repro.HeterogeneityComparison(ctx, opts, []float64{0, 0.4, 0.8, 1.2})
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatHeterogeneityRows(rows))
		return nil
	case "drift":
		cfg := repro.DefaultDriftConfig()
		rows, err := repro.DriftComparison(ctx, opts, cfg)
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatDriftRows(rows, cfg))
		return nil
	case "dynamic":
		rows, err := repro.DynamicComparison(ctx, opts, repro.DefaultDynamicCatalogOptions())
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatDynamicRows(rows))
		return nil
	case "ablations":
		policy, err := repro.CachePolicyAblation(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatPolicyRows(policy))
		theta, err := repro.ThetaSweep(ctx, opts, []float64{0.6, 0.8, 1.0, 1.2, 1.4})
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatThetaRows(theta))
		pl, err := repro.PlacementAblation(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatPlacementRows(pl))
		return nil
	case "churn":
		rows, err := repro.ChurnComparison(ctx, opts, repro.DefaultChurn())
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatChurnRows(rows))
		return nil
	case "scale":
		factors := []int{1, 2, 4, 10}
		if quickRun {
			factors = []int{1, 2}
		}
		rows, err := repro.ScaleComparison(ctx, opts, factors)
		if err != nil {
			return err
		}
		fmt.Println(repro.FormatScaleRows(rows))
		return nil
	case "all":
		for _, f := range []string{"3", "4", "5", "6", "summary", "ablations", "clusters", "consistency", "availability", "churn", "drift", "dynamic", "redirection", "kmedian", "model", "updates", "heterogeneity"} {
			if err := run(ctx, f, opts); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown -figure %q (want 3, 4, 5, 6, summary, ablations, clusters, consistency, availability, churn, drift, dynamic, redirection, kmedian, model, updates, heterogeneity, seeds, scale or all)", figure)
	}
}
