package repro_test

import (
	"bytes"
	"context"
	"fmt"

	"repro"
)

// The analytical model used stand-alone, as §3.2 intends: predict the
// LRU hit ratio of a 2000-object Zipf(1.0) site at several cache sizes.
func ExampleNewLRUPredictor() {
	pred := repro.NewLRUPredictor(
		[]repro.SiteSpec{{Objects: 2000, Theta: 1.0}},
		[]float64{1}, // request weights (single site)
		1,            // average object size: unit => bytes == slots
		2000,         // largest cache that will be queried
	)
	for _, slots := range []int64{100, 400, 1600} {
		fmt.Printf("B=%-5d h=%.2f\n", slots, pred.SiteHitRatio(0, slots))
	}
	// Output:
	// B=100   h=0.50
	// B=400   h=0.70
	// B=1600  h=0.91
}

// Building a scenario and running the paper's three mechanisms on one
// trace. Mean latencies vary with the scenario; the ordering is the
// paper's headline result.
func ExampleHybridPlacement() {
	cfg := repro.QuickOptions().Base
	cfg.CapacityFrac = 0.10
	sc := repro.MustBuildScenario(cfg)

	hybrid, err := repro.HybridPlacement(sc)
	if err != nil {
		fmt.Println(err)
		return
	}
	replication := repro.ReplicationPlacement(sc)
	caching := repro.CachingPlacement(sc)

	simCfg := repro.DefaultSim()
	simCfg.Requests, simCfg.Warmup = 60000, 60000

	mHybrid := repro.MustSimulate(context.Background(), sc, hybrid.Placement, simCfg, 1)
	simCfg.UseCache = false
	mRepl := repro.MustSimulate(context.Background(), sc, replication.Placement, simCfg, 1)
	simCfg.UseCache = true
	mCache := repro.MustSimulate(context.Background(), sc, caching.Placement, simCfg, 1)

	fmt.Println("hybrid beats replication:", mHybrid.MeanRTMs < mRepl.MeanRTMs)
	fmt.Println("hybrid beats caching:", mHybrid.MeanRTMs < mCache.MeanRTMs)
	fmt.Println("hybrid placed replicas:", hybrid.Placement.Replicas() > 0)
	// Output:
	// hybrid beats replication: true
	// hybrid beats caching: true
	// hybrid placed replicas: true
}

// Recording a trace and replaying it produces bit-identical metrics.
func ExampleSimulateTrace() {
	cfg := repro.QuickOptions().Base
	sc := repro.MustBuildScenario(cfg)
	p := repro.CachingPlacement(sc)

	simCfg := repro.DefaultSim()
	simCfg.Requests, simCfg.Warmup = 30000, 10000

	live := repro.MustSimulate(context.Background(), sc, p.Placement, simCfg, 7)

	// Record the same stream, then replay it.
	var buf bytes.Buffer
	w, _ := repro.NewTraceWriter(&buf, repro.TraceHeader{
		Servers:        sc.Sys.N(),
		Sites:          sc.Sys.M(),
		ObjectsPerSite: cfg.Workload.ObjectsPerSite,
	})
	stream := sc.Stream(repro.NewRand(7))
	for i := 0; i < simCfg.Requests+simCfg.Warmup; i++ {
		if err := w.Write(stream.Next()); err != nil {
			fmt.Println(err)
			return
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Println(err)
		return
	}
	r, _ := repro.NewTraceReader(&buf)
	replay, err := repro.SimulateTrace(context.Background(), sc, p.Placement, simCfg, r)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("identical mean RT:", live.MeanRTMs == replay.MeanRTMs)
	fmt.Println("identical hits:", live.CacheHits == replay.CacheHits)
	// Output:
	// identical mean RT: true
	// identical hits: true
}
