// tracereplay: record a synthetic request trace once, then replay the
// identical traffic against different placements. This is how the
// paper's §5 comparisons are meaningful — "for reasons of fairness"
// every mechanism must see the same requests — and how a real CDN log,
// converted to the trace format, could drive the whole evaluation in
// place of the SURGE model.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.QuickOptions().Base
	cfg.CapacityFrac = 0.10
	sc, err := repro.BuildScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}

	simCfg := repro.DefaultSim()
	simCfg.Requests = 120000
	simCfg.Warmup = 60000
	total := simCfg.Requests + simCfg.Warmup

	// Record the trace once.
	var buf bytes.Buffer
	w, err := repro.NewTraceWriter(&buf, repro.TraceHeader{
		Servers:        sc.Sys.N(),
		Sites:          sc.Sys.M(),
		ObjectsPerSite: cfg.Workload.ObjectsPerSite,
	})
	if err != nil {
		log.Fatal(err)
	}
	stream := sc.Stream(repro.NewRand(7))
	for i := 0; i < total; i++ {
		if err := w.Write(stream.Next()); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d requests (%d bytes, %.1f bytes/record)\n\n",
		w.Count(), buf.Len(), float64(buf.Len())/float64(w.Count()))

	// Replay the identical traffic against three placements.
	data := buf.Bytes()
	replay := func(name string, p *repro.Placement, useCache bool) {
		r, err := repro.NewTraceReader(bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		c := simCfg
		c.UseCache = useCache
		m, err := repro.SimulateTrace(context.Background(), sc, p, c, r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s mean RT %7.2f ms | cost %5.3f hops | local %5.1f%%\n",
			name, m.MeanRTMs, m.MeanHops, 100*m.LocalFraction())
	}

	hybrid, err := repro.HybridPlacement(sc)
	if err != nil {
		log.Fatal(err)
	}
	replay("replication", repro.ReplicationPlacement(sc).Placement, false)
	replay("caching", repro.CachingPlacement(sc).Placement, true)
	replay("hybrid", hybrid.Placement, true)

	fmt.Println("\nEvery mechanism saw the byte-identical request sequence; the")
	fmt.Println("differences above are placement policy, nothing else.")
}
