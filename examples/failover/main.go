// failover: the availability argument of the paper's introduction, made
// concrete. "A generic caching scheme offers no guarantees on content
// availability. While this is of no concern for proxies, it is less than
// acceptable for a CDN that wants to provide QoS guarantees."
//
// The example warms up each mechanism, then crashes a growing number of
// origin servers plus two CDN servers, and shows how much traffic each
// mechanism can still serve — and at what latency.
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	opts := repro.QuickOptions()
	opts.Base.CapacityFrac = 0.10
	opts.Sim.Requests = 100000
	opts.Sim.Warmup = 100000

	fmt.Println("availability under failures — 10 servers, 16 sites, 10% capacity")
	fmt.Println("(2 CDN servers down in every scenario; origins crash progressively)")
	fmt.Println()

	rows, err := repro.AvailabilityComparison(context.Background(), opts, []int{0, 2, 4, 8}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(repro.FormatAvailabilityRows(rows))

	fmt.Println("Reading the table:")
	fmt.Println(" - pure caching loses the most traffic when origins die: only the")
	fmt.Println("   objects that happen to sit in some LRU cache survive, and those")
	fmt.Println("   are served at stale risk (no origin left to validate against).")
	fmt.Println(" - replication and the hybrid keep every replicated site fully")
	fmt.Println("   available; the hybrid additionally serves popular pages of")
	fmt.Println("   unreplicated sites from its caches.")
	fmt.Println(" - this is why the paper insists a CDN cannot rely on caching")
	fmt.Println("   alone, however good its hit ratio (§1, §2.2).")
}
