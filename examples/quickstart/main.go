// Quickstart: build one paper-scale CDN scenario, place replicas three
// ways (pure replication, pure caching, hybrid), simulate the identical
// request trace against each, and print the comparison of §5.2.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A reduced-scale scenario so the example finishes in ~1 s; swap
	// in repro.DefaultScenario() for the full §5.1 setup.
	cfg := repro.QuickOptions().Base
	cfg.CapacityFrac = 0.10
	sc, err := repro.BuildScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %d servers, %d sites, %d-node topology, capacity %.0f%% of %d MB total\n\n",
		sc.Sys.N(), sc.Sys.M(), sc.Topo.G.N(),
		100*cfg.CapacityFrac, sc.Work.TotalBytes>>20)

	hybrid, err := repro.HybridPlacement(sc)
	if err != nil {
		log.Fatal(err)
	}
	replication := repro.ReplicationPlacement(sc)
	caching := repro.CachingPlacement(sc)

	simCfg := repro.DefaultSim()
	simCfg.Requests = 200000
	simCfg.Warmup = 100000

	const traceSeed = 42
	run := func(name string, p *repro.Placement, useCache bool) {
		c := simCfg
		c.UseCache = useCache
		m := repro.MustSimulate(context.Background(), sc, p, c, traceSeed)
		fmt.Printf("%-12s mean RT %7.2f ms | mean cost %5.3f hops | local %5.1f%% | replicas %d\n",
			name, m.MeanRTMs, m.MeanHops, 100*m.LocalFraction(), p.Replicas())
	}
	run("replication", replication.Placement, false)
	run("caching", caching.Placement, true)
	run("hybrid", hybrid.Placement, true)

	fmt.Println("\nThe hybrid scheme should show the lowest mean response time:")
	fmt.Println("it keeps enough replicas to bound the worst case while the cache")
	fmt.Println("absorbs the most popular pages of every site at the first hop.")
}
