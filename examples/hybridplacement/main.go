// hybridplacement: watch the Figure 2 algorithm work, iteration by
// iteration. Each line is one replica creation: the chosen (server, site)
// pair, the model-estimated net benefit (redirection cost removed minus
// the cache hit ratio sacrificed), and the predicted objective D after
// the step.
//
//	go run ./examples/hybridplacement
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.QuickOptions().Base
	cfg.CapacityFrac = 0.10
	sc, err := repro.BuildScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hybrid placement on %d servers / %d sites, 10%% capacity\n",
		sc.Sys.N(), sc.Sys.M())
	fmt.Println("(the algorithm starts from all-storage-is-cache and adds replicas")
	fmt.Println(" while their benefit exceeds the cache space they consume)")
	fmt.Println()
	fmt.Printf("%4s %7s %5s %6s %12s %14s\n",
		"step", "server", "site", "class", "benefit", "predicted D")

	step := 0
	res, err := repro.HybridPlacementWithObserver(sc, func(s repro.PlacementStep) {
		step++
		site := sc.Work.Sites[s.Site]
		fmt.Printf("%4d %7d %5d %6s %12.5f %14.5f\n",
			step, s.Server, s.Site, site.Class, s.Benefit, s.PredictedCost)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("created %d replicas; final predicted cost %.5f hops/request\n",
		res.Placement.Replicas(), res.PredictedCost)

	// Show where the storage went on a few servers.
	fmt.Println()
	fmt.Println("per-server storage split (first 5 servers):")
	for i := 0; i < 5 && i < sc.Sys.N(); i++ {
		total := sc.Sys.Capacity[i]
		cache := res.Placement.Free(i)
		var sites []int
		for j := 0; j < sc.Sys.M(); j++ {
			if res.Placement.Has(i, j) {
				sites = append(sites, j)
			}
		}
		fmt.Printf("  server %2d: %3.0f%% replicas %v, %3.0f%% cache\n",
			i, 100*float64(total-cache)/float64(total), sites,
			100*float64(cache)/float64(total))
	}

	// The early replicas should overwhelmingly be high-popularity sites.
	counts := map[string]int{}
	for _, s := range res.Steps {
		counts[sc.Work.Sites[s.Site].Class.String()]++
	}
	fmt.Printf("\nreplicas by site class: %v\n", counts)
}
