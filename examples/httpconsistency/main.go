// httpconsistency: the §3.3 consistency discussion over real HTTP. The
// example starts the CDN as live servers, caches an object at an edge,
// modifies it at the origin, and fetches it again under both consistency
// modes: weak (serve cached, possibly stale) and strong (revalidate with
// If-None-Match, serve only validated bodies).
//
//	go run ./examples/httpconsistency
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/httpcdn"
	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	w := workload.DefaultConfig()
	w.Servers = 3
	w.LowSites, w.MediumSites, w.HighSites = 1, 1, 1
	w.ObjectsPerSite = 20
	sc := scenario.MustBuild(scenario.Config{
		Topology: topology.Config{
			TransitDomains:        1,
			TransitNodesPerDomain: 1,
			StubsPerTransitNode:   2,
			StubNodesPerStub:      4,
			ExtraEdgeProb:         0.3,
		},
		Workload:     w,
		CapacityFrac: 0.3,
		Seed:         1,
	})
	// No replicas: every object flows through the edge caches.
	p := core.NewPlacement(sc.Sys)

	for _, mode := range []struct {
		name       string
		revalidate bool
	}{
		{"weak consistency (serve cached unconditionally)", false},
		{"strong consistency (If-None-Match revalidation)", true},
	} {
		cfg := httpcdn.DefaultConfig()
		cfg.RevalidateOnHit = mode.revalidate
		cl, err := httpcdn.Start(sc, p, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", mode.name)

		const edge, site, object = 0, 0, 1
		step := func(label string) {
			res, err := cl.Fetch(context.Background(), edge, site, object)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-28s source=%-8s version=%d\n", label, res.Source, res.Version)
		}
		step("first fetch (cold):")
		step("second fetch (cached):")
		fmt.Println("  -> origin modifies the object (version 0 -> 1)")
		cl.ModifyObject(site, object)
		step("third fetch:")

		stats := cl.EdgeStats(edge)
		fmt.Printf("edge stats: hits=%d revalidations=%d 304s=%d\n\n",
			stats.CacheHit, stats.Revalidations, stats.NotModified)
		cl.Close()
	}

	fmt.Println("Weak consistency served version 0 after the modification — the")
	fmt.Println("stale copy the paper's λ fraction models. Strong consistency paid")
	fmt.Println("a conditional GET per hit (mostly cheap 304s) and never lied.")
}
