// drift: why the paper combines caching with replication instead of
// just re-running placement. "The placement decisions should remain
// fairly static for a considerable time period... replica creation and
// migration incurs a high transfer cost. [...] Caching operates on a per
// page level and is inherently dynamic." (§2.1)
//
// The example drifts site popularities over several epochs and shows,
// for each replica-management strategy, the latency trajectory and the
// bytes hauled around the network to maintain it.
//
//	go run ./examples/drift
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	opts := repro.QuickOptions()
	opts.Base.CapacityFrac = 0.10

	cfg := repro.DefaultDriftConfig()
	cfg.Epochs = 6
	cfg.RequestsPerEpoch = 80000
	cfg.Warmup = 80000
	cfg.Drift = 0.7

	fmt.Printf("popularity drift over %d epochs (σ=%.1f) — 10 servers, 16 sites, 10%% capacity\n\n",
		cfg.Epochs, cfg.Drift)

	rows, err := repro.DriftComparison(context.Background(), opts, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(repro.FormatDriftRows(rows, cfg))

	fmt.Println("Reading the table:")
	fmt.Println(" - 'caching' and the '*-hybrid' strategies absorb drift through")
	fmt.Println("   their LRU caches: their epoch-N latency stays close to epoch-0.")
	fmt.Println(" - 'adaptive-*' strategies track the drift by re-placing replicas,")
	fmt.Println("   but every improvement is bought with GB·hops of replica traffic.")
	fmt.Println(" - 'static-replication' has neither escape hatch — exactly the")
	fmt.Println("   failure mode §2.1 uses to motivate the hybrid design.")
}
