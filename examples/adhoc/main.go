// adhoc: the Figure 5 scenario — is a fixed storage split between
// caching and replication good enough, or does the hybrid algorithm's
// model-driven split matter?
//
// The example sweeps ad-hoc cache fractions from 0% (pure greedy-global
// replication) to 100% (pure caching) and compares each against the
// hybrid algorithm on the same request trace.
//
//	go run ./examples/adhoc
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.QuickOptions().Base
	cfg.CapacityFrac = 0.05
	sc, err := repro.BuildScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}

	simCfg := repro.DefaultSim()
	simCfg.Requests = 150000
	simCfg.Warmup = 75000
	const traceSeed = 11

	fmt.Printf("ad-hoc cache splits vs hybrid — %d servers, %d sites, 5%% capacity\n\n",
		sc.Sys.N(), sc.Sys.M())
	fmt.Printf("%-14s %12s %12s %10s\n", "mechanism", "mean RT (ms)", "cost (hops)", "replicas")

	for _, frac := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		res, err := repro.AdHocPlacement(sc, frac)
		if err != nil {
			log.Fatal(err)
		}
		c := simCfg
		c.UseCache = frac > 0
		m := repro.MustSimulate(context.Background(), sc, res.Placement, c, traceSeed)
		fmt.Printf("cache=%3.0f%%     %12.2f %12.3f %10d\n",
			100*frac, m.MeanRTMs, m.MeanHops, res.Placement.Replicas())
	}

	hyb, err := repro.HybridPlacement(sc)
	if err != nil {
		log.Fatal(err)
	}
	m := repro.MustSimulate(context.Background(), sc, hyb.Placement, simCfg, traceSeed)
	fmt.Printf("%-14s %12.2f %12.3f %10d\n", "hybrid", m.MeanRTMs, m.MeanHops, hyb.Placement.Replicas())

	fmt.Println()
	fmt.Println("The hybrid line should be at or below every fixed split: the model")
	fmt.Println("sizes each server's cache from the measured Zipf parameter instead")
	fmt.Println("of guessing one global fraction (§5.2, Figure 5).")
}
