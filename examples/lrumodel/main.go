// lrumodel: use the paper's analytical LRU hit-ratio model (§3.2) as a
// stand-alone tool — the authors note "the model itself ... can be used
// as stand-alone mechanism whenever such estimations are required."
//
// The example models one CDN server that caches four web sites of equal
// catalog size but different popularity, prints the model's per-site hit
// ratios across a range of cache sizes, and shows how the K approximation
// of Equation (2) grows with the buffer.
//
//	go run ./examples/lrumodel
package main

import (
	"fmt"

	"repro"
)

func main() {
	// Four sites, 2000 objects each, Zipf θ=1.0 object popularity.
	// Request rates 8:4:2:1 — the "hot site" effect of [22].
	specs := []repro.SiteSpec{
		{Objects: 2000, Theta: 1.0},
		{Objects: 2000, Theta: 1.0},
		{Objects: 2000, Theta: 1.0},
		{Objects: 2000, Theta: 1.0},
	}
	weights := []float64{8, 4, 2, 1}

	// Unit-sized objects: cache bytes == LRU slots (B = c/ō with ō=1).
	const maxCache = 4000
	pred := repro.NewLRUPredictor(specs, weights, 1, maxCache)

	fmt.Println("Analytical LRU model (Equations 1 and 2 of the paper)")
	fmt.Println("four sites, L=2000 objects each, θ=1.0, request rates 8:4:2:1")
	fmt.Println()
	fmt.Printf("%8s %10s %8s %8s %8s %8s %9s\n",
		"slots B", "K (Eq.2)", "h site0", "h site1", "h site2", "h site3", "overall")
	for _, b := range []int64{50, 100, 200, 400, 800, 1600, 3200} {
		fmt.Printf("%8d %10.0f", b, pred.K(b))
		for j := range specs {
			fmt.Printf(" %8.3f", pred.SiteHitRatio(j, b))
		}
		fmt.Printf(" %9.3f\n", pred.OverallHitRatio(b))
	}

	fmt.Println()
	fmt.Println("Reading the table:")
	fmt.Println(" - K >= B always: an untouched object survives at least one full")
	fmt.Println("   pass of the buffer, longer when popular objects keep hitting.")
	fmt.Println(" - the hottest site (site0) enjoys the best hit ratio at every")
	fmt.Println("   size — its objects are re-referenced before they reach the")
	fmt.Println("   LRU position. This asymmetry is what the hybrid placement")
	fmt.Println("   algorithm exploits when deciding which sites deserve replicas.")

	// The λ adjustment of §3.3: 20% uncacheable requests scale the
	// usable hit ratio by 0.8.
	stale := make([]repro.SiteSpec, len(specs))
	copy(stale, specs)
	for j := range stale {
		stale[j].Lambda = 0.2
	}
	predStale := repro.NewLRUPredictor(stale, weights, 1, maxCache)
	fmt.Println()
	fmt.Printf("with λ=0.2 uncacheable requests: overall hit ratio at B=800 drops %.3f -> %.3f\n",
		pred.OverallHitRatio(800), predStale.OverallHitRatio(800))
}
