package repro

import (
	"strings"
	"testing"
)

// TestFormattersTolerateEmptyInput pins down that every facade formatter
// renders a header even with no rows — the CLI prints these directly.
func TestFormattersTolerateEmptyInput(t *testing.T) {
	outputs := map[string]string{
		"fig6":          FormatFig6(nil),
		"summary":       FormatSummary(nil),
		"policy":        FormatPolicyRows(nil),
		"theta":         FormatThetaRows(nil),
		"placement":     FormatPlacementRows(nil),
		"cluster":       FormatClusterRows(nil, 4),
		"consistency":   FormatConsistencyRows(nil),
		"availability":  FormatAvailabilityRows(nil),
		"drift":         FormatDriftRows(nil, DefaultDriftConfig()),
		"redirect":      FormatRedirectRows(nil),
		"kmedian":       FormatKMedianRows(nil),
		"modelcompare":  FormatModelCompareRows(nil),
		"robustness":    FormatRobustnessRows(nil),
		"updates":       FormatUpdateRows(nil),
		"heterogeneity": FormatHeterogeneityRows(nil),
	}
	for name, out := range outputs {
		if strings.TrimSpace(out) == "" {
			t.Errorf("%s: empty output for empty rows", name)
		}
		if !strings.Contains(out, "\n") {
			t.Errorf("%s: missing header line", name)
		}
	}
}

// TestLRUPredictorFacade exercises the stand-alone model entry point the
// README shows.
func TestLRUPredictorFacade(t *testing.T) {
	pred := NewLRUPredictor(
		[]SiteSpec{{Objects: 2000, Theta: 1.0}},
		[]float64{1}, 1, 2000)
	h := pred.SiteHitRatio(0, 500)
	if h <= 0 || h >= 1 {
		t.Fatalf("hit ratio %v", h)
	}
	if k := pred.K(500); k < 500 {
		t.Fatalf("K %v below B", k)
	}
	if che := pred.CheSiteHitRatio(0, 500); che < h-0.01 {
		t.Fatalf("Che %v below the paper model %v", che, h)
	}
}

// TestRandFacade checks the exported deterministic source.
func TestRandFacade(t *testing.T) {
	a, b := NewRand(5), NewRand(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("facade Rand not deterministic")
		}
	}
}
