#!/bin/sh
# cluster-smoke boots the full multi-process deployment — control plane,
# origin, two edges — on loopback, runs the load generator's chaos drill
# (fault edge 1 mid-run, require zero lost requests), and prints the
# control plane's shard and status views. The measured report lands in
# BENCH_cluster.json (override with OUT=...).
#
# Any component crashing, the drill losing a request, or the cluster
# failing to come up fails the script. CI runs this as `make
# cluster-smoke`; locally it needs only the Go toolchain.
set -eu

CONTROL_PORT="${CONTROL_PORT:-9300}"
ORIGIN_PORT="${ORIGIN_PORT:-9301}"
EDGE0_PORT="${EDGE0_PORT:-9310}"
EDGE1_PORT="${EDGE1_PORT:-9311}"
CONTROL="http://127.0.0.1:${CONTROL_PORT}"
OUT="${OUT:-BENCH_cluster.json}"
REQUESTS="${REQUESTS:-5000}"
WORKERS="${WORKERS:-8}"
BIN="${BIN:-./bin}"

echo "== building binaries into ${BIN}"
go build -o "${BIN}/" ./cmd/cdncontrol ./cmd/cdnorigin ./cmd/cdnedge ./cmd/cdnload ./cmd/cdnctl

PIDS=""
cleanup() {
    # Kill the whole deployment; components drain on SIGTERM.
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in $PIDS; do
        wait "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT INT TERM

echo "== booting control plane + origin + 2 edges"
"${BIN}/cdncontrol" -addr "127.0.0.1:${CONTROL_PORT}" -edges 2 \
    -interval 500ms -report-every 100ms -probe-every 100ms \
    -probe-timeout 500ms -fail-threshold 2 -eject-for 500ms \
    -hysteresis=-1 -cooldown=-1 &
PIDS="$PIDS $!"
"${BIN}/cdnorigin" -addr "127.0.0.1:${ORIGIN_PORT}" -control "$CONTROL" &
PIDS="$PIDS $!"
"${BIN}/cdnedge" -id 0 -addr "127.0.0.1:${EDGE0_PORT}" -control "$CONTROL" &
PIDS="$PIDS $!"
"${BIN}/cdnedge" -id 1 -addr "127.0.0.1:${EDGE1_PORT}" -control "$CONTROL" &
PIDS="$PIDS $!"

echo "== chaos drill: ${REQUESTS} requests, fault edge 1 mid-run"
# cdnload waits for the full roster, drives the load, injects an error
# fault into edge 1 for the middle ~40% of the run, and exits non-zero
# if any request was lost.
"${BIN}/cdnload" -control "$CONTROL" \
    -requests "$REQUESTS" -workers "$WORKERS" \
    -fault-edge 1 -fault-mode error \
    -fault-at "$((REQUESTS / 4))" -clear-at "$((REQUESTS * 3 / 5))" \
    -out "$OUT"

echo "== estimator shards"
"${BIN}/cdnctl" -addr "127.0.0.1:${CONTROL_PORT}" shards
echo "== controller status"
"${BIN}/cdnctl" -addr "127.0.0.1:${CONTROL_PORT}" status
echo "== member health"
"${BIN}/cdnctl" -addr "127.0.0.1:${CONTROL_PORT}" health

echo "== report written to ${OUT}"
