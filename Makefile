# Build, test and hygiene targets. `make check` is the pre-commit gate
# referenced from README.md: vet + formatting + race tests over the
# instrumented packages.

GO ?= go

.PHONY: all build test check race chaos cluster-smoke bench bench-json bench-scale bench-scale-smoke bench-scale-check bench-approx bench-models bench-models-check bench-dynamic fmt vet lint

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check runs the hygiene gate: go vet, gofmt -l (fails on any unformatted
# file) and the race detector over the observability-instrumented
# packages.
check: vet fmt race

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./internal/obs/... ./internal/httpcdn/... ./internal/sim/... ./internal/placement/... ./internal/control/...

# chaos runs the failure drill under the race detector: the fault
# injector kills two live edges mid-load, the health tracker ejects
# them, the controller re-places around them, and every client request
# must still be served (see TestChaosEdgeChurn).
chaos:
	$(GO) test -race -count=1 -run TestChaosEdgeChurn -v ./internal/httpcdn/

# cluster-smoke exercises the multi-process deployment end to end:
# first the in-process chaos drill under the race detector (fault an
# edge mid-load; zero lost requests; the control plane's audit ring
# records the exclusion and readmission), then the real thing — four
# separate processes booted by scripts/cluster-smoke.sh, the load
# generator's drill against them, and BENCH_cluster.json written from
# measured throughput/latency.
cluster-smoke:
	$(GO) test -race -count=1 -run TestClusterChaosDrill -v ./internal/clusterd/
	sh scripts/cluster-smoke.sh

# lint runs staticcheck and govulncheck when they are installed and
# skips them otherwise (CI installs both; offline dev machines may not
# have them, and this repo adds no module dependencies).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# bench runs the observability-overhead benchmarks (<100ns/op budget).
bench:
	$(GO) test -bench=. -run=NONE ./internal/obs/ ./internal/cache/

# bench-json regenerates BENCH_sim.json: sequential vs parallel
# simulator and placement timings with the hardware context recorded.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_sim.json

# bench-scale regenerates BENCH_scale.json: scenario build, lazy vs
# scanning placement, the ε-approximate engine, the cold/warm reconcile
# pair and simulator throughput at paper size ×{1,4,10}. The scanning
# engine is skipped above ×4 (it is the point of the sweep that it
# stops being practical). Budget ~15 minutes on one core.
bench-scale:
	$(GO) run ./cmd/benchjson -suite scale -out BENCH_scale.json

# bench-scale-smoke is the CI-sized sweep: small factors, fewer
# requests, same JSON schema, written to a separate file so the
# committed baseline survives as the -compare reference. It exists to
# catch scaling regressions on every push without paying for the ×10
# run.
bench-scale-smoke:
	$(GO) run ./cmd/benchjson -suite scale -factors 1,2 -scanmax 2 -requests 50000 -out BENCH_scale_smoke.json

# bench-scale-check runs the smoke sweep and gates it against the
# committed BENCH_scale.json: any placement benchmark more than 15%
# slower fails, unless the hardware context differs (a different
# machine downgrades the gate to a warning — timings across machines
# are not a regression signal).
bench-scale-check: bench-scale-smoke
	$(GO) run ./cmd/benchjson -compare BENCH_scale.json -fail-above 15 BENCH_scale_smoke.json

# bench-approx regenerates BENCH_approx.json: the ε-approximate
# engine's quality-versus-time sweep (ε ∈ {0, 1e-3, 1e-2} against the
# exact lazy baseline) plus the cold/warm incremental-reconcile pair.
bench-approx:
	$(GO) run ./cmd/benchjson -suite approx -factors 1,4 -out BENCH_approx.json

# bench-models regenerates BENCH_models.json: a cold hybrid placement
# solve timed under each analytical hit-ratio model (eq1, che,
# closedform, random) on a large per-site catalog, with speedup and
# final-cost delta against the eq1 baseline. Budget ~1 minute (the Che
# fixed point dominates).
bench-models:
	$(GO) run ./cmd/benchjson -suite models -out BENCH_models.json

# bench-dynamic regenerates BENCH_dynamic.json: simulator throughput
# against a frozen hybrid placement while the catalog churns at
# per-site perish rates {0, 5e-05, 2.5e-04}, with each run's
# stale-placement fraction.
bench-dynamic:
	$(GO) run ./cmd/benchjson -suite dynamic -out BENCH_dynamic.json

# bench-models-check runs the models suite into a fresh file and gates
# it against the committed BENCH_models.json: any model row more than
# 15% slower fails, unless the hardware context differs (cross-machine
# timings downgrade the gate to a warning).
bench-models-check:
	$(GO) run ./cmd/benchjson -suite models -out BENCH_models_smoke.json
	$(GO) run ./cmd/benchjson -compare BENCH_models.json -fail-above 15 BENCH_models_smoke.json
