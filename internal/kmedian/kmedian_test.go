package kmedian

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// lineInstance puts n nodes on a line with unit spacing, the root at
// position -rootDist from node 0, and the given demands.
func lineInstance(n int, rootDist float64, demand []float64) *Instance {
	in := &Instance{
		Cost:     make([][]float64, n),
		RootCost: make([]float64, n),
		Demand:   demand,
	}
	for i := 0; i < n; i++ {
		in.Cost[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			in.Cost[i][j] = math.Abs(float64(i - j))
		}
		in.RootCost[i] = rootDist + float64(i)
	}
	return in
}

func randomInstance(r *xrand.Source, n int) *Instance {
	pos := make([]float64, n)
	for i := range pos {
		pos[i] = r.Float64() * 30
	}
	rootPos := r.Float64() * 30
	in := &Instance{
		Cost:     make([][]float64, n),
		RootCost: make([]float64, n),
		Demand:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		in.Cost[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			in.Cost[i][j] = math.Abs(pos[i] - pos[j])
		}
		in.RootCost[i] = math.Abs(pos[i]-rootPos) + 1
		in.Demand[i] = r.Float64()
	}
	return in
}

func TestValidate(t *testing.T) {
	in := lineInstance(4, 5, []float64{1, 1, 1, 1})
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := lineInstance(4, 5, []float64{1, 1, 1, -1})
	if bad.Validate() == nil {
		t.Fatal("negative demand accepted")
	}
	empty := &Instance{}
	if empty.Validate() == nil {
		t.Fatal("empty instance accepted")
	}
}

func TestCostOfNoFacilities(t *testing.T) {
	in := lineInstance(3, 10, []float64{1, 2, 3})
	// All traffic goes to the root: 1*10 + 2*11 + 3*12 = 68.
	if got := in.CostOf(nil); got != 68 {
		t.Fatalf("cost %v, want 68", got)
	}
}

func TestCostOfWithFacility(t *testing.T) {
	in := lineInstance(3, 10, []float64{1, 2, 3})
	// Facility at node 1: dists {1,0,1} all < root.
	if got := in.CostOf([]int{1}); got != 1*1+0+3*1 {
		t.Fatalf("cost %v, want 4", got)
	}
}

func TestGreedyPicksWeightedMedian(t *testing.T) {
	// Node 2 has overwhelming demand; the first greedy facility must
	// land there.
	in := lineInstance(5, 100, []float64{1, 1, 50, 1, 1})
	chosen, _ := in.Greedy(1)
	if len(chosen) != 1 || chosen[0] != 2 {
		t.Fatalf("greedy chose %v, want [2]", chosen)
	}
}

func TestGreedyStopsWhenNoGain(t *testing.T) {
	// Root at distance 0 from everyone: facilities cannot help.
	in := &Instance{
		Cost:     [][]float64{{0, 5}, {5, 0}},
		RootCost: []float64{0, 0},
		Demand:   []float64{1, 1},
	}
	chosen, cost := in.Greedy(2)
	if len(chosen) != 0 || cost != 0 {
		t.Fatalf("greedy chose %v at cost %v, want none at 0", chosen, cost)
	}
}

func TestBruteForceSmall(t *testing.T) {
	in := lineInstance(6, 20, []float64{1, 1, 1, 1, 1, 1})
	set, cost, err := in.BruteForce(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("optimal set %v", set)
	}
	// Check optimality by full re-enumeration with CostOf.
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			if c := in.CostOf([]int{a, b}); c < cost-1e-12 {
				t.Fatalf("found better set {%d,%d}: %v < %v", a, b, c, cost)
			}
		}
	}
}

func TestBruteForceBudget(t *testing.T) {
	in := randomInstance(xrand.New(1), 40)
	if _, _, err := in.BruteForce(10, 1000); err == nil {
		t.Fatal("enumeration budget not enforced")
	}
	if _, _, err := in.BruteForce(-1, 0); err == nil {
		t.Fatal("negative k accepted")
	}
}

func TestBruteForceZeroK(t *testing.T) {
	in := lineInstance(3, 10, []float64{1, 1, 1})
	set, cost, err := in.BruteForce(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 0 || cost != in.CostOf(nil) {
		t.Fatalf("k=0 gave %v at %v", set, cost)
	}
}

func TestGreedyNeverBeatsOptimal(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		in := randomInstance(xrand.New(seed), 14)
		for k := 1; k <= 3; k++ {
			_, gCost := in.Greedy(k)
			_, oCost, err := in.BruteForce(k, 0)
			if err != nil {
				t.Fatal(err)
			}
			if gCost < oCost-1e-9 {
				t.Fatalf("seed %d k=%d: greedy %v below optimal %v", seed, k, gCost, oCost)
			}
		}
	}
}

func TestGreedyNearOptimalOnAverage(t *testing.T) {
	// [14]'s observation: greedy achieves very good solution quality.
	// Individual 1-D instances can trip greedy (myopic first pick), so
	// assert the average ratio is small and the worst case bounded.
	worst, sum, count := 1.0, 0.0, 0
	for seed := uint64(0); seed < 15; seed++ {
		in := randomInstance(xrand.New(seed), 16)
		for k := 1; k <= 3; k++ {
			_, gCost := in.Greedy(k)
			_, oCost, err := in.BruteForce(k, 0)
			if err != nil {
				t.Fatal(err)
			}
			if oCost > 0 {
				ratio := gCost / oCost
				sum += ratio
				count++
				if ratio > worst {
					worst = ratio
				}
			}
		}
	}
	if avg := sum / float64(count); avg > 1.15 {
		t.Fatalf("greedy averaged %.3fx optimal — far beyond the literature's observations", avg)
	}
	if worst > 2.0 {
		t.Fatalf("greedy strayed %.2fx from optimal on some instance", worst)
	}
}

func TestSwapOnlyImproves(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		in := randomInstance(r, 12)
		k := 1 + r.Intn(3)
		g, gCost := in.Greedy(k)
		if len(g) == 0 {
			return true
		}
		s, sCost := in.Swap(g)
		if sCost > gCost+1e-9 {
			return false
		}
		return math.Abs(in.CostOf(s)-sCost) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSwapReachesOptimalOftenEnough(t *testing.T) {
	// Swap is a constant-factor local search; on small instances it
	// lands on the exact optimum most of the time.
	hits, trials := 0, 0
	for seed := uint64(100); seed < 112; seed++ {
		in := randomInstance(xrand.New(seed), 12)
		g, _ := in.Greedy(2)
		if len(g) < 2 {
			continue
		}
		_, sCost := in.Swap(g)
		_, oCost, err := in.BruteForce(2, 0)
		if err != nil {
			t.Fatal(err)
		}
		trials++
		if sCost <= oCost+1e-9 {
			hits++
		}
	}
	if trials == 0 {
		t.Skip("no usable instances")
	}
	if hits*2 < trials {
		t.Fatalf("swap matched the optimum only %d/%d times", hits, trials)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{5, 2, 10}, {50, 3, 19600}, {10, 0, 1}, {10, 10, 1}, {4, 5, 0},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("C(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
	if binomial(200, 100) != -1 {
		t.Error("overflow not detected")
	}
}
