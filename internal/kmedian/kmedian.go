// Package kmedian implements the k-median formulation of replica
// placement discussed in §2.2 of the paper: "given a graph with weights
// on the nodes representing number of requests, and lengths on the
// edges, place k servers on the nodes, in order to minimize the total
// network cost". The paper's related work compares greedy heuristics
// [23], greedy with back-tracking/exchange [12] and exact methods [17];
// this package provides
//
//   - Greedy: the [23]-style greedy that adds the facility with the
//     largest marginal gain k times;
//   - Swap: local search by single-facility exchange, the classical
//     5-approximation that subsumes [12]'s back-tracking greedy;
//   - BruteForce: the exact optimum by enumeration, feasible for the
//     paper's N = 50 with small k;
//
// so the repository can measure how far the greedy placements used in
// the main experiments sit from optimal.
//
// An instance places replicas of ONE object: clients at node i issue
// Demand[i] requests, a non-replica node fetches from its cheapest
// facility or from the always-present root (the primary copy) at
// RootCost[i].
package kmedian

import (
	"fmt"
	"math"
)

// Instance is one k-median problem.
type Instance struct {
	// Cost[i][k] is the metric distance between candidate sites.
	Cost [][]float64
	// RootCost[i] is the distance to the primary copy, which always
	// serves as a fallback facility.
	RootCost []float64
	// Demand[i] is the request weight of node i.
	Demand []float64
}

// N returns the number of nodes.
func (in *Instance) N() int { return len(in.Demand) }

// Validate reports a structural error, or nil.
func (in *Instance) Validate() error {
	n := in.N()
	if n == 0 {
		return fmt.Errorf("kmedian: empty instance")
	}
	if len(in.Cost) != n || len(in.RootCost) != n {
		return fmt.Errorf("kmedian: dimension mismatch")
	}
	for i := 0; i < n; i++ {
		if len(in.Cost[i]) != n {
			return fmt.Errorf("kmedian: Cost[%d] has %d entries", i, len(in.Cost[i]))
		}
		if in.Demand[i] < 0 || in.RootCost[i] < 0 {
			return fmt.Errorf("kmedian: negative demand or root cost at %d", i)
		}
	}
	return nil
}

// CostOf evaluates the objective for a facility set: every node is
// served by its cheapest facility or the root.
func (in *Instance) CostOf(facilities []int) float64 {
	total := 0.0
	for i := 0; i < in.N(); i++ {
		best := in.RootCost[i]
		for _, f := range facilities {
			if c := in.Cost[i][f]; c < best {
				best = c
			}
		}
		total += in.Demand[i] * best
	}
	return total
}

// Greedy picks k facilities, each maximizing the marginal cost
// reduction; ties break toward the lower index. It returns the chosen
// facilities and the final cost. Choosing fewer than k facilities
// happens only when additional ones cannot reduce the cost.
func (in *Instance) Greedy(k int) ([]int, float64) {
	serve := append([]float64(nil), in.RootCost...)
	var chosen []int
	picked := make([]bool, in.N())
	for len(chosen) < k {
		bestGain, bestF := 0.0, -1
		for f := 0; f < in.N(); f++ {
			if picked[f] {
				continue
			}
			gain := 0.0
			for i := 0; i < in.N(); i++ {
				if c := in.Cost[i][f]; c < serve[i] {
					gain += in.Demand[i] * (serve[i] - c)
				}
			}
			if gain > bestGain {
				bestGain, bestF = gain, f
			}
		}
		if bestF < 0 {
			break
		}
		picked[bestF] = true
		chosen = append(chosen, bestF)
		for i := 0; i < in.N(); i++ {
			if c := in.Cost[i][bestF]; c < serve[i] {
				serve[i] = c
			}
		}
	}
	return chosen, in.CostOf(chosen)
}

// Swap improves a facility set by single exchanges (replace one chosen
// facility with one unchosen) until no exchange helps; the classical
// local search. It returns the improved set and cost.
func (in *Instance) Swap(facilities []int) ([]int, float64) {
	cur := append([]int(nil), facilities...)
	curCost := in.CostOf(cur)
	for improved := true; improved; {
		improved = false
		inSet := make([]bool, in.N())
		for _, f := range cur {
			inSet[f] = true
		}
		for ci := 0; ci < len(cur) && !improved; ci++ {
			for f := 0; f < in.N() && !improved; f++ {
				if inSet[f] {
					continue
				}
				old := cur[ci]
				cur[ci] = f
				if c := in.CostOf(cur); c < curCost-1e-12 {
					curCost = c
					improved = true
				} else {
					cur[ci] = old
				}
			}
		}
	}
	return cur, curCost
}

// BruteForce returns the exact optimal k-facility set by enumeration.
// It refuses instances where C(n, k) exceeds maxCombos (default 10M when
// maxCombos <= 0) to keep runtime bounded.
func (in *Instance) BruteForce(k int, maxCombos int64) ([]int, float64, error) {
	n := in.N()
	if k < 0 || k > n {
		return nil, 0, fmt.Errorf("kmedian: k = %d with n = %d", k, n)
	}
	if maxCombos <= 0 {
		maxCombos = 10_000_000
	}
	if c := binomial(n, k); c < 0 || c > maxCombos {
		return nil, 0, fmt.Errorf("kmedian: C(%d,%d) exceeds enumeration budget %d", n, k, maxCombos)
	}
	best := math.Inf(1)
	var bestSet []int
	comb := make([]int, k)
	for i := range comb {
		comb[i] = i
	}
	for {
		if c := in.CostOf(comb); c < best {
			best = c
			bestSet = append(bestSet[:0], comb...)
		}
		// Next combination in lexicographic order.
		i := k - 1
		for i >= 0 && comb[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		comb[i]++
		for j := i + 1; j < k; j++ {
			comb[j] = comb[j-1] + 1
		}
	}
	if k == 0 {
		return nil, in.CostOf(nil), nil
	}
	return bestSet, best, nil
}

// binomial returns C(n, k), or -1 on overflow.
func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := 0; i < k; i++ {
		if c > math.MaxInt64/int64(n-i) {
			return -1
		}
		c = c * int64(n-i) / int64(i+1)
	}
	return c
}
