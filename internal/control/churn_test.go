package control

import (
	"testing"

	"repro/internal/placement"
)

// rollWithSites feeds one request per listed site (at server 0) and
// closes the window — one "round" of traffic shape for churn tests.
func rollWithSites(t *testing.T, e *Estimator, sites ...int) {
	t.Helper()
	for _, j := range sites {
		e.Observe(0, j)
	}
	e.Roll()
}

func TestChurnColdStartReportsZero(t *testing.T) {
	e, err := NewEstimator(EstimatorConfig{Servers: 2, Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < DefaultChurnWindow; r++ {
		rollWithSites(t, e, 0, 1, 2, 3)
		st := e.SiteChurn()
		if st.Rate != 0 || st.Births != 0 || st.Deaths != 0 {
			t.Fatalf("roll %d (cold start): churn %+v, want zeros", r+1, st)
		}
		if e.SiteAges() != nil {
			t.Fatalf("roll %d (cold start): SiteAges non-nil", r+1)
		}
	}
}

func TestChurnBirthsAndDeaths(t *testing.T) {
	e, err := NewEstimator(EstimatorConfig{Servers: 2, Sites: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Sites 0-2 active from the start; enough history to exit cold start.
	for r := 0; r < DefaultChurnWindow+2; r++ {
		rollWithSites(t, e, 0, 1, 2)
	}
	st := e.SiteChurn()
	if st.Active != 3 || st.Births != 0 || st.Deaths != 0 || st.Rate != 0 {
		t.Fatalf("steady state: %+v, want 3 active, zero churn", st)
	}

	// Site 3 is born; site 2 goes quiet.
	for r := 0; r < DefaultChurnWindow; r++ {
		rollWithSites(t, e, 0, 1, 3)
	}
	st = e.SiteChurn()
	if st.Births != 1 {
		t.Fatalf("births = %d, want 1 (site 3)", st.Births)
	}
	if st.Deaths != 1 {
		t.Fatalf("deaths = %d, want 1 (site 2, quiet for exactly one window)", st.Deaths)
	}
	if want := 2.0 / 4.0; st.Rate != want {
		t.Fatalf("rate = %v, want %v (2 events over 4 sites ever seen)", st.Rate, want)
	}

	ages := e.SiteAges()
	if ages == nil {
		t.Fatal("SiteAges nil after warm-up")
	}
	if ages[0] != 0 || ages[3] != 0 {
		t.Fatalf("active sites aged: ages = %v", ages)
	}
	if ages[2] != int64(DefaultChurnWindow) {
		t.Fatalf("site 2 age = %d, want %d", ages[2], DefaultChurnWindow)
	}
	if ages[4] != -1 || ages[5] != -1 {
		t.Fatalf("never-seen sites: ages = %v, want -1", ages)
	}

	// Long-dead sites stop counting toward the rate (they are stale
	// placement, not ongoing churn).
	for r := 0; r < 2*DefaultChurnWindow; r++ {
		rollWithSites(t, e, 0, 1, 3)
	}
	st = e.SiteChurn()
	if st.Deaths != 0 || st.Births != 0 {
		t.Fatalf("long-stable traffic still reports churn: %+v", st)
	}
}

// TestShardedChurnMatchesSingle pins the merge: a sharded estimator fed
// the same traffic reports the same churn stats and ages as a single
// one, regardless of which shards own which keys.
func TestShardedChurnMatchesSingle(t *testing.T) {
	cfg := EstimatorConfig{Servers: 4, Sites: 8}
	single, err := NewEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedEstimator(cfg, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	phase := [][]int{
		{0, 1, 2, 3, 4}, {0, 1, 2, 3, 4}, {0, 1, 2, 3, 4},
		{0, 1, 2, 3, 4}, {0, 1, 2, 3, 4},
		{0, 1, 2, 5}, {0, 1, 2, 5}, {0, 1, 2, 5, 6},
	}
	for _, sites := range phase {
		for _, j := range sites {
			for i := 0; i < cfg.Servers; i++ {
				single.Observe(i, j)
				sharded.Observe(i, j)
			}
		}
		single.Roll()
		sharded.Roll()
		a, b := single.SiteChurn(), sharded.SiteChurn()
		if a != b {
			t.Fatalf("churn stats diverged: single %+v, sharded %+v", a, b)
		}
	}
	sa, ba := single.SiteAges(), sharded.SiteAges()
	if len(sa) != len(ba) {
		t.Fatalf("ages length: %d vs %d", len(sa), len(ba))
	}
	for j := range sa {
		if sa[j] != ba[j] {
			t.Fatalf("site %d age: single %d, sharded %d", j, sa[j], ba[j])
		}
	}
}

func TestStalePlacementFrac(t *testing.T) {
	sc := testScenario(t)
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Placement
	replicated := 0
	firstReplicated := -1
	for j := 0; j < sc.Sys.M(); j++ {
		for i := 0; i < sc.Sys.N(); i++ {
			if p.Has(i, j) {
				replicated++
				if firstReplicated < 0 {
					firstReplicated = j
				}
				break
			}
		}
	}
	if replicated == 0 {
		t.Fatal("hybrid placed nothing")
	}

	// All sites fresh: zero staleness.
	ages := make([]int64, sc.Sys.M())
	if got := stalePlacementFrac(p, ages, DefaultChurnWindow); got != 0 {
		t.Fatalf("all-fresh staleness = %v, want 0", got)
	}
	// One replicated site quiet for a full window.
	ages[firstReplicated] = DefaultChurnWindow
	want := 1.0 / float64(replicated)
	if got := stalePlacementFrac(p, ages, DefaultChurnWindow); got != want {
		t.Fatalf("staleness = %v, want %v", got, want)
	}
	// Never-seen counts as stale too.
	ages[firstReplicated] = -1
	if got := stalePlacementFrac(p, ages, DefaultChurnWindow); got != want {
		t.Fatalf("never-seen staleness = %v, want %v", got, want)
	}
	// No replicas at all: defined as zero.
	none := placement.None(sc.Sys).Placement
	if got := stalePlacementFrac(none, ages, DefaultChurnWindow); got != 0 {
		t.Fatalf("empty placement staleness = %v, want 0", got)
	}
}

// TestChurnKickForcesPlan pins the override: with a high hysteresis bar
// a beneficial plan is skipped, but the same plan applies once the
// demand source reports churn at or above ChurnKick — and the audit
// record says so.
func TestChurnKickForcesPlan(t *testing.T) {
	sc := testScenario(t)

	run := func(kick float64, churnRolls bool) (Outcome, bool) {
		target := NewModelTarget(placement.None(sc.Sys).Placement)
		ctrl := newTestController(t, sc, target, func(c *Config) {
			c.Hysteresis = 0.99 // bar nothing demand-driven can clear
			c.ChurnKick = kick
		})
		e := ctrl.Estimator()
		if churnRolls {
			// Manufacture heavy churn history: rotate the active site set
			// so the estimator sees births and deaths every window.
			for r := 0; r < 4*DefaultChurnWindow; r++ {
				feedExact(e, sc.Sys)
				e.Observe(0, r%sc.Sys.M())
				e.Roll()
			}
			// Shift traffic entirely: half the catalog goes quiet. No
			// fresh feed before the reconcile — feeding every site again
			// would mark the dead half alive and erase the deaths.
			for r := 0; r < DefaultChurnWindow; r++ {
				for i := 0; i < sc.Sys.N(); i++ {
					for j := 0; j < sc.Sys.M()/2; j++ {
						e.ObserveN(i, j, 1000)
					}
				}
				e.Roll()
			}
		} else {
			feedExact(e, sc.Sys)
		}
		rep, err := ctrl.Reconcile()
		if err != nil {
			t.Fatal(err)
		}
		recs := ctrl.Audit()
		last := recs[len(recs)-1]
		return rep.Outcome, last.ChurnForced
	}

	// Without churn history the bar holds.
	if out, forced := run(0.05, false); out != OutcomeSkipped || forced {
		t.Fatalf("no churn: outcome %v forced=%v, want skipped/false", out, forced)
	}
	// With churn above the kick threshold the plan is forced through.
	if out, forced := run(0.05, true); out != OutcomeApplied || !forced {
		t.Fatalf("churning: outcome %v forced=%v, want applied/true", out, forced)
	}
	// ChurnKick = 0 disables the override even under churn.
	if out, forced := run(0, true); out != OutcomeSkipped || forced {
		t.Fatalf("kick disabled: outcome %v forced=%v, want skipped/false", out, forced)
	}
}

// TestStatusSurfacesChurn checks /debug/control's new fields end to
// end: a placement pinned to sites that went quiet shows a non-zero
// stale fraction and churn rate in Status.
func TestStatusSurfacesChurn(t *testing.T) {
	sc := testScenario(t)
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	target := NewModelTarget(res.Placement)
	ctrl := newTestController(t, sc, target, nil)
	e := ctrl.Estimator()
	// Traffic everywhere, then everything but site 0 goes quiet.
	for r := 0; r < DefaultChurnWindow+1; r++ {
		feedExact(e, sc.Sys)
		e.Roll()
	}
	for r := 0; r < DefaultChurnWindow; r++ {
		e.ObserveN(0, 0, 1000)
		e.Roll()
	}
	st := ctrl.Status()
	if st.StalePlacementFrac <= 0 {
		t.Fatalf("stale placement frac = %v after mass quiescence, want > 0", st.StalePlacementFrac)
	}
	if st.ChurnRate <= 0 {
		t.Fatalf("churn rate = %v after mass quiescence, want > 0", st.ChurnRate)
	}
}

// TestChurnIdlePrefixIsNotBirths pins the genesis baseline: an
// estimator that rolls while the system idles (cluster booting, load
// not yet started) must not report the whole catalog as newborn once
// traffic begins — the churn clock starts at first observed traffic,
// not at construction.
func TestChurnIdlePrefixIsNotBirths(t *testing.T) {
	e, err := NewEstimator(EstimatorConfig{Servers: 2, Sites: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Idle for several windows before any request arrives.
	for r := 0; r < 3*DefaultChurnWindow; r++ {
		e.Roll()
	}
	// Static traffic starts: no site is ever born or dies after this.
	for r := 0; r < DefaultChurnWindow+2; r++ {
		rollWithSites(t, e, 0, 1, 2, 3)
		if st := e.SiteChurn(); st.Births != 0 || st.Deaths != 0 || st.Rate != 0 {
			t.Fatalf("roll %d after idle prefix: churn %+v, want zeros", r+1, st)
		}
	}
	// The signal still works once real history exists: a site whose
	// first-ever traffic arrives after the genesis window is a birth.
	for r := 0; r < DefaultChurnWindow; r++ {
		rollWithSites(t, e, 0, 1, 2, 3, 4)
	}
	if st := e.SiteChurn(); st.Births != 1 {
		t.Fatalf("births = %d after site 4's first traffic, want 1", st.Births)
	}
}
