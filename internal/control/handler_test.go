package control

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/placement"
)

func TestHandlerStatusAndForceReconcile(t *testing.T) {
	sc := testScenario(t)
	target := NewModelTarget(placement.None(sc.Sys).Placement)
	ctrl := newTestController(t, sc, target, nil)
	srv := httptest.NewServer(Handler(ctrl))
	defer srv.Close()

	// Status before any traffic.
	resp, err := http.Get(srv.URL + "/debug/control")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Rounds != 0 || st.Replicas != 0 {
		t.Fatalf("fresh status: %+v", st)
	}

	// Forced reconcile after traffic applies the first plan.
	feedExact(ctrl.Estimator(), sc.Sys)
	resp, err = http.Post(srv.URL+"/debug/control/reconcile", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rep.Outcome != OutcomeApplied || len(rep.Diff.Created) == 0 {
		t.Fatalf("forced reconcile: %+v", rep)
	}
	if target.Placement().Replicas() != len(rep.Diff.Created) {
		t.Fatal("report does not match the applied placement")
	}

	// Wrong methods are rejected.
	resp, err = http.Post(srv.URL+"/debug/control", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /debug/control = %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/debug/control/reconcile", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /debug/control/reconcile = %d", resp.StatusCode)
	}
}
