package control

import (
	"math"
	"testing"

	"repro/internal/placement"
)

// TestShardedMatchesSingle pins the aggregation law: a sharded
// estimator fed the same observations as a single estimator produces
// the same demand estimate (up to float summation order), because the
// per-cell EWMA is independent of which shard holds the cell.
func TestShardedMatchesSingle(t *testing.T) {
	cfg := EstimatorConfig{Servers: 6, Sites: 8}
	single, err := NewEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedEstimator(cfg, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(round int) {
		for i := 0; i < 6; i++ {
			for j := 0; j < 8; j++ {
				k := int64((i*8+j+round)%5 + 1)
				single.ObserveN(i, j, k)
				sharded.ObserveN(i, j, k)
			}
		}
	}
	for round := 0; round < 3; round++ {
		feed(round)
		st, sht := single.Roll(), sharded.Roll()
		if st != sht {
			t.Fatalf("round %d: window totals %d (single) vs %d (sharded)", round, st, sht)
		}
	}
	if single.Observed() != sharded.Observed() {
		t.Fatalf("observed %d vs %d", single.Observed(), sharded.Observed())
	}
	d1, ok1 := single.Demand()
	d2, ok2 := sharded.Demand()
	if !ok1 || !ok2 {
		t.Fatal("no demand signal")
	}
	for i := range d1 {
		for j := range d1[i] {
			if math.Abs(d1[i][j]-d2[i][j]) > 1e-12 {
				t.Fatalf("demand[%d][%d] = %v (single) vs %v (sharded)", i, j, d1[i][j], d2[i][j])
			}
		}
	}
	for i, v := range single.ServerRates() {
		if math.Abs(v-sharded.ServerRates()[i]) > 1e-9 {
			t.Fatalf("server rate %d differs", i)
		}
	}
	for j, v := range single.SiteRates() {
		if math.Abs(v-sharded.SiteRates()[j]) > 1e-9 {
			t.Fatalf("site rate %d differs", j)
		}
	}
	w1, w2 := single.WindowTotals(), sharded.WindowTotals()
	if len(w1) != len(w2) {
		t.Fatalf("window rings %d vs %d entries", len(w1), len(w2))
	}
	for k := range w1 {
		if w1[k] != w2[k] {
			t.Fatalf("window[%d] = %d vs %d", k, w1[k], w2[k])
		}
	}
}

// TestShardedOwnershipBalance: with default vnodes no shard is starved
// and the key counts in Status sum to the key space.
func TestShardedOwnershipBalance(t *testing.T) {
	cfg := EstimatorConfig{Servers: 50, Sites: 20}
	s, err := NewShardedEstimator(cfg, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	page := s.Status()
	if page.KeySpace != 1000 || len(page.Shards) != 4 {
		t.Fatalf("key space %d, shards %d", page.KeySpace, len(page.Shards))
	}
	total := 0
	for _, sh := range page.Shards {
		total += sh.Keys
		if sh.Keys == 0 {
			t.Fatalf("shard %d owns zero keys", sh.Shard)
		}
		// A perfectly even split is 250; consistent hashing is allowed
		// to wobble, but an order-of-magnitude skew means the ring is
		// broken.
		if sh.Keys < 50 || sh.Keys > 600 {
			t.Fatalf("shard %d owns %d of 1000 keys — ring badly skewed", sh.Shard, sh.Keys)
		}
	}
	if total != 1000 {
		t.Fatalf("shard key counts sum to %d, want 1000", total)
	}
}

// TestShardedConsistentResharding pins the property that justifies the
// ring: growing S shards to S+1 moves roughly 1/(S+1) of the keys, not
// all of them (key mod S would reshuffle nearly everything).
func TestShardedConsistentResharding(t *testing.T) {
	cfg := EstimatorConfig{Servers: 50, Sites: 20}
	s4, err := NewShardedEstimator(cfg, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	s5, err := NewShardedEstimator(cfg, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for edge := 0; edge < 50; edge++ {
		for site := 0; site < 20; site++ {
			if s4.Owner(edge, site) != s5.Owner(edge, site) {
				moved++
			}
		}
	}
	frac := float64(moved) / 1000
	if frac == 0 {
		t.Fatal("no key moved when adding a shard — ring ignores shard count")
	}
	// Ideal is 1/5 = 0.20; allow generous wobble but fail well before
	// the ~0.8 a mod-S scheme would produce.
	if frac > 0.45 {
		t.Fatalf("adding one shard moved %.0f%% of keys — not consistent hashing", 100*frac)
	}
}

// TestControllerWithShardedSource: the controller reconciles against a
// ShardedEstimator through Config.Source exactly as it does against a
// plain Estimator.
func TestControllerWithShardedSource(t *testing.T) {
	sc := testScenario(t)
	sharded, err := NewShardedEstimator(EstimatorConfig{
		Servers: sc.Sys.N(), Sites: sc.Sys.M(),
	}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	target := NewModelTarget(placement.None(sc.Sys).Placement)
	ctrl, err := New(Config{
		Base:           sc.Sys,
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
		Target:         target,
		Source:         sharded,
		Hysteresis:     -1,
		CooldownRounds: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Estimator() != nil {
		t.Fatal("Estimator() must be nil for a custom Source")
	}
	// Feed the scenario's true demand through the sharded tap.
	for i := 0; i < sc.Sys.N(); i++ {
		for j := 0; j < sc.Sys.M(); j++ {
			sharded.ObserveN(i, j, int64(1+sc.Sys.Demand[i][j]*1e6))
		}
	}
	rep, err := ctrl.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != OutcomeApplied {
		t.Fatalf("outcome %s, want applied", rep.Outcome)
	}
	if target.Placement().Replicas() == 0 {
		t.Fatal("no replicas placed from sharded demand")
	}
	// Both estimator paths must refuse to coexist.
	if _, err := New(Config{
		Base: sc.Sys, Specs: sc.Work.Specs(), AvgObjectBytes: sc.Work.AvgObjectBytes,
		Target: target, Source: sharded, Estimator: ctrl.Estimator(),
	}); err == nil {
		// ctrl.Estimator() is nil here so that config is actually legal;
		// build a real one to exercise the conflict.
		est, _ := NewEstimator(EstimatorConfig{Servers: sc.Sys.N(), Sites: sc.Sys.M()})
		if _, err := New(Config{
			Base: sc.Sys, Specs: sc.Work.Specs(), AvgObjectBytes: sc.Work.AvgObjectBytes,
			Target: target, Source: sharded, Estimator: est,
		}); err == nil {
			t.Fatal("Source+Estimator accepted")
		}
	}
}
