package control

import (
	"encoding/json"
	"net/http"
)

// Handler serves the controller's debug surface:
//
//	GET  /debug/control           — Status as JSON
//	GET  /debug/control/audit     — AuditPage: the retained
//	                                ReconcileRecords, oldest first
//	POST /debug/control/reconcile — force a reconcile round, reply with
//	                                its Report as JSON
//
// cmd/cdnd mounts it on the -metrics mux next to /metrics and
// /debug/vars; cmd/cdnctl is its client.
func Handler(c *Controller) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/control", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, c.Status())
	})
	mux.HandleFunc("/debug/control/audit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, AuditPage{Records: c.Audit()})
	})
	mux.HandleFunc("/debug/control/reconcile", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rep, err := c.Reconcile()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, rep)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
