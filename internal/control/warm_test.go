package control

import (
	"testing"

	"repro/internal/placement"
)

// TestWarmReconcileConvergence is the warm-start convergence criterion:
// under stationary demand a warm round must reproduce the cold round's
// placement exactly and settle into noops, with the audit trail showing
// the engine transition cold → warm.
func TestWarmReconcileConvergence(t *testing.T) {
	sc := testScenario(t)
	target := NewModelTarget(placement.None(sc.Sys).Placement)
	ctrl := newTestController(t, sc, target, nil)

	feedExact(ctrl.Estimator(), sc.Sys)
	rep1, err := ctrl.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Outcome != OutcomeApplied {
		t.Fatalf("round 1 outcome %s, want applied", rep1.Outcome)
	}
	if rep1.Engine != "lazy" && rep1.Engine != "approx" {
		t.Fatalf("round 1 engine %q, want a cold solve", rep1.Engine)
	}
	applied := target.Placement()

	// Stationary demand: subsequent rounds must repair warm and change
	// nothing.
	for round := 2; round <= 4; round++ {
		feedExact(ctrl.Estimator(), sc.Sys)
		rep, err := ctrl.Reconcile()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Outcome != OutcomeNoop {
			t.Fatalf("round %d outcome %s, want noop", round, rep.Outcome)
		}
		if rep.Engine != "warm" {
			t.Fatalf("round %d engine %q, want warm", round, rep.Engine)
		}
		if got := target.Placement(); got != applied {
			t.Fatalf("round %d swapped the placement on a noop", round)
		}
	}

	// The warm rounds' audit records must carry the incremental stats.
	audit := ctrl.Audit()
	if len(audit) != 4 {
		t.Fatalf("%d audit records, want 4", len(audit))
	}
	for _, rec := range audit[1:] {
		if rec.Warm == nil || !rec.Warm.Warm {
			t.Fatalf("round %d audit lacks warm stats: %+v", rec.Round, rec.Warm)
		}
		if rec.Warm.DirtyRows != 0 {
			t.Fatalf("round %d: stationary demand dirtied %d rows", rec.Round, rec.Warm.DirtyRows)
		}
		if rec.Warm.StepsAdded != 0 {
			t.Fatalf("round %d: stationary demand added %d steps", rec.Round, rec.Warm.StepsAdded)
		}
	}
	if audit[0].Warm == nil || audit[0].Warm.Warm || audit[0].Warm.Reason != "cold-start" {
		t.Fatalf("round 1 audit: %+v, want cold-start", audit[0].Warm)
	}
}

// TestWarmDisabledMatchesWarm: DisableWarmStart must converge to the
// same placement (the warm path is an optimization, not a behavior
// change), with every round reporting a cold engine.
func TestWarmDisabledMatchesWarm(t *testing.T) {
	sc := testScenario(t)

	run := func(disable bool) *placement.Result {
		t.Helper()
		target := NewModelTarget(placement.None(sc.Sys).Placement)
		ctrl := newTestController(t, sc, target, func(cfg *Config) {
			cfg.DisableWarmStart = disable
		})
		for round := 0; round < 3; round++ {
			feedExact(ctrl.Estimator(), sc.Sys)
			rep, err := ctrl.Reconcile()
			if err != nil {
				t.Fatal(err)
			}
			if disable && rep.Engine == "warm" {
				t.Fatalf("warm engine ran with warm start disabled")
			}
		}
		return &placement.Result{Placement: target.Placement()}
	}

	warm := run(false)
	cold := run(true)
	sys := sc.Sys
	for i := 0; i < sys.N(); i++ {
		for j := 0; j < sys.M(); j++ {
			if warm.Placement.Has(i, j) != cold.Placement.Has(i, j) {
				t.Fatalf("placements diverge at (%d,%d)", i, j)
			}
		}
	}
}

// TestWarmMaxRoundsForcesCold: the periodic cold re-solve bound must
// trigger after the configured number of consecutive warm repairs.
func TestWarmMaxRoundsForcesCold(t *testing.T) {
	sc := testScenario(t)
	target := NewModelTarget(placement.None(sc.Sys).Placement)
	ctrl := newTestController(t, sc, target, func(cfg *Config) {
		cfg.WarmMaxRounds = 2
	})
	engines := []string{}
	for round := 0; round < 5; round++ {
		feedExact(ctrl.Estimator(), sc.Sys)
		rep, err := ctrl.Reconcile()
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, rep.Engine)
	}
	// cold, warm, warm, forced cold, warm.
	want := []string{"lazy", "warm", "warm", "lazy", "warm"}
	for k := range want {
		if engines[k] != want[k] {
			t.Fatalf("engine sequence %v, want %v", engines, want)
		}
	}
}

// TestWarmEpsilonPlumbed: an ε budget configured on the controller must
// reach the placement engine and show up in the audit record.
func TestWarmEpsilonPlumbed(t *testing.T) {
	sc := testScenario(t)
	target := NewModelTarget(placement.None(sc.Sys).Placement)
	ctrl := newTestController(t, sc, target, func(cfg *Config) {
		cfg.Epsilon = 1e-2
	})
	feedExact(ctrl.Estimator(), sc.Sys)
	rep, err := ctrl.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != "approx" {
		t.Fatalf("round 1 engine %q, want approx", rep.Engine)
	}
	audit := ctrl.Audit()
	if len(audit) != 1 || audit[0].Epsilon != 1e-2 {
		t.Fatalf("audit epsilon not recorded: %+v", audit)
	}
	for _, s := range audit[0].EngineSteps {
		if s.Engine != "approx" {
			t.Fatalf("engine step label %q, want approx", s.Engine)
		}
	}
}
