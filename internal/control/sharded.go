package control

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ShardedEstimator partitions the (edge, site) demand-key space across
// independent Estimator shards with a consistent-hash ring. It exists
// for the multi-process control plane (cmd/cdncontrol): edge report
// batches land on per-shard locks instead of one global estimator
// mutex, the per-shard state is small enough to hand to a separate
// aggregator process later, and — because ownership is a consistent
// hash, not key mod S — growing the shard count moves only ~1/(S+1) of
// the keys, so EWMA history survives a resharding mostly intact.
//
// Every shard is a full-shape Estimator (N×M) that only ever sees the
// cells the ring assigns to it; aggregation sums the shard-local raw
// EWMA rate matrices (Estimator.RateMatrix) and normalizes globally,
// which is exactly the single-estimator Demand() by linearity of the
// per-cell EWMA. ShardedEstimator satisfies DemandSource, so the
// Controller reconciles against it unchanged.
type ShardedEstimator struct {
	n, m   int
	vnodes int
	// ring is the sorted vnode hash ring; ringShard[k] is the shard
	// owning ring[k]. owner caches the resolved shard per cell
	// (row-major n*m), so Observe pays one slice index, not a ring
	// lookup.
	ring      []uint64
	ringShard []int
	owner     []int
	shards    []*Estimator
}

// DefaultVNodes is the virtual-node count per shard on the hash ring;
// more vnodes smooth the key distribution across shards.
const DefaultVNodes = 64

// NewShardedEstimator builds a sharded estimator: cfg fixes the matrix
// shape and EWMA parameters of every shard, shards the shard count
// (≥ 1), vnodes the virtual nodes per shard (0 selects DefaultVNodes).
func NewShardedEstimator(cfg EstimatorConfig, shards, vnodes int) (*ShardedEstimator, error) {
	if shards < 1 {
		return nil, fmt.Errorf("control: %d estimator shards", shards)
	}
	if vnodes == 0 {
		vnodes = DefaultVNodes
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("control: %d vnodes per shard", vnodes)
	}
	s := &ShardedEstimator{
		n:      cfg.Servers,
		m:      cfg.Sites,
		vnodes: vnodes,
	}
	for i := 0; i < shards; i++ {
		est, err := NewEstimator(cfg)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, est)
		for v := 0; v < vnodes; v++ {
			s.ring = append(s.ring, hash64(fmt.Sprintf("shard:%d:vnode:%d", i, v)))
			s.ringShard = append(s.ringShard, i)
		}
	}
	// Sort the ring keeping the shard labels aligned.
	idx := make([]int, len(s.ring))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.ring[idx[a]] < s.ring[idx[b]] })
	ring := make([]uint64, len(idx))
	ringShard := make([]int, len(idx))
	for k, i := range idx {
		ring[k], ringShard[k] = s.ring[i], s.ringShard[i]
	}
	s.ring, s.ringShard = ring, ringShard
	// Resolve every cell's owner once.
	s.owner = make([]int, s.n*s.m)
	for edge := 0; edge < s.n; edge++ {
		for site := 0; site < s.m; site++ {
			s.owner[edge*s.m+site] = s.locate(keyHash(edge, site))
		}
	}
	return s, nil
}

// hash64 is FNV-1a over the string.
func hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// keyHash is the ring position of demand key (edge, site).
func keyHash(edge, site int) uint64 {
	return hash64(fmt.Sprintf("e%d:s%d", edge, site))
}

// locate walks the ring clockwise from h to the first vnode.
func (s *ShardedEstimator) locate(h uint64) int {
	k := sort.Search(len(s.ring), func(i int) bool { return s.ring[i] >= h })
	if k == len(s.ring) {
		k = 0
	}
	return s.ringShard[k]
}

// Shards returns the shard count.
func (s *ShardedEstimator) Shards() int { return len(s.shards) }

// Owner returns the shard owning demand key (edge, site) — exported for
// tests and the shards debug endpoint.
func (s *ShardedEstimator) Owner(edge, site int) int {
	if edge < 0 || edge >= s.n || site < 0 || site >= s.m {
		return -1
	}
	return s.owner[edge*s.m+site]
}

// Observe records one request at (edge, site) on the owning shard.
// Lock-free within the shard (one atomic add), like Estimator.Observe.
func (s *ShardedEstimator) Observe(edge, site int) { s.ObserveN(edge, site, 1) }

// ObserveN records k requests at once. Out-of-range keys are dropped.
func (s *ShardedEstimator) ObserveN(edge, site int, k int64) {
	if edge < 0 || edge >= s.n || site < 0 || site >= s.m || k <= 0 {
		return
	}
	s.shards[s.owner[edge*s.m+site]].ObserveN(edge, site, k)
}

// Roll closes the counting window on every shard and returns the total
// requests across shards — DemandSource's per-round window close.
func (s *ShardedEstimator) Roll() int64 {
	var total int64
	for _, sh := range s.shards {
		total += sh.Roll()
	}
	return total
}

// Observed returns the total requests ever observed across shards.
func (s *ShardedEstimator) Observed() int64 {
	var total int64
	for _, sh := range s.shards {
		total += sh.Observed()
	}
	return total
}

// Demand aggregates the shard-local raw EWMA matrices and normalizes to
// ΣΣ = 1. ok is false while no shard has folded in any request.
func (s *ShardedEstimator) Demand() (demand [][]float64, ok bool) {
	demand = make([][]float64, s.n)
	for i := range demand {
		demand[i] = make([]float64, s.m)
	}
	sum := 0.0
	for _, sh := range s.shards {
		rates := sh.RateMatrix()
		for i := 0; i < s.n; i++ {
			for j := 0; j < s.m; j++ {
				demand[i][j] += rates[i][j]
				sum += rates[i][j]
			}
		}
	}
	if sum <= 0 {
		return nil, false
	}
	for i := range demand {
		for j := range demand[i] {
			demand[i][j] /= sum
		}
	}
	return demand, true
}

// ServerRates returns each edge's aggregated EWMA requests/window.
func (s *ShardedEstimator) ServerRates() []float64 {
	out := make([]float64, s.n)
	for _, sh := range s.shards {
		for i, v := range sh.ServerRates() {
			out[i] += v
		}
	}
	return out
}

// SiteRates returns each site's aggregated EWMA requests/window.
func (s *ShardedEstimator) SiteRates() []float64 {
	out := make([]float64, s.m)
	for _, sh := range s.shards {
		for j, v := range sh.SiteRates() {
			out[j] += v
		}
	}
	return out
}

// WindowTotals returns the elementwise sum of the shards' sliding
// window rings (every shard rolls in the same Roll call, so the rings
// stay aligned), oldest first.
func (s *ShardedEstimator) WindowTotals() []int64 {
	var out []int64
	for _, sh := range s.shards {
		w := sh.WindowTotals()
		if len(w) > len(out) {
			grown := make([]int64, len(w))
			copy(grown[len(w)-len(out):], out)
			out = grown
		}
		for k := 0; k < len(w); k++ {
			out[len(out)-len(w)+k] += w[k]
		}
	}
	return out
}

// SiteChurn implements ChurnSource: the shard-local first/last-seen
// vectors merge by min/max (a site's traffic may land on any shard
// depending on which edges issued it; the earliest first-seen and the
// latest last-seen are the global truth), and every shard rolls in the
// same Roll call, so any shard's roll count is the global one.
func (s *ShardedEstimator) SiteChurn() ChurnStats {
	first, last, rolls := s.mergeSeen()
	return churnStats(first, last, rolls)
}

// SiteAges implements ChurnSource.
func (s *ShardedEstimator) SiteAges() []int64 {
	_, last, rolls := s.mergeSeen()
	return siteAges(last, rolls)
}

// mergeSeen aggregates the shards' per-site seen history.
func (s *ShardedEstimator) mergeSeen() (first, last []int64, rolls int64) {
	first = make([]int64, s.m)
	last = make([]int64, s.m)
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.rolls > rolls {
			rolls = sh.rolls
		}
		for j := 0; j < s.m; j++ {
			if f := sh.firstSeen[j]; f > 0 && (first[j] == 0 || f < first[j]) {
				first[j] = f
			}
			if l := sh.lastSeen[j]; l > last[j] {
				last[j] = l
			}
		}
		sh.mu.Unlock()
	}
	return first, last, rolls
}

// ShardStatus is one shard's view for the /debug/control/shards page.
type ShardStatus struct {
	Shard int `json:"shard"`
	// Keys is how many of the N×M demand keys the ring assigns to this
	// shard.
	Keys int `json:"keys"`
	// Observed is the shard's all-time observed request count; Rolls its
	// completed windows; RatePerWindow the shard's current aggregate
	// EWMA rate.
	Observed      int64   `json:"observed"`
	Rolls         int64   `json:"rolls"`
	RatePerWindow float64 `json:"rate_per_window"`
}

// ShardsPage is the /debug/control/shards payload.
type ShardsPage struct {
	Shards []ShardStatus `json:"shards"`
	// VNodes is the virtual-node count per shard on the hash ring;
	// KeySpace the total number of demand keys (N×M).
	VNodes   int `json:"vnodes"`
	KeySpace int `json:"key_space"`
}

// Status snapshots every shard for the debug endpoint.
func (s *ShardedEstimator) Status() ShardsPage {
	page := ShardsPage{VNodes: s.vnodes, KeySpace: s.n * s.m}
	keys := make([]int, len(s.shards))
	for _, owner := range s.owner {
		keys[owner]++
	}
	for i, sh := range s.shards {
		rate := 0.0
		for _, v := range sh.ServerRates() {
			rate += v
		}
		page.Shards = append(page.Shards, ShardStatus{
			Shard:         i,
			Keys:          keys[i],
			Observed:      sh.Observed(),
			Rolls:         sh.Rolls(),
			RatePerWindow: rate,
		})
	}
	return page
}
