package control

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// testScenario is a small deployment where the hybrid placement clearly
// beats pure caching, so plans clear hysteresis.
func testScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	w := workload.DefaultConfig()
	w.Servers = 6
	w.LowSites, w.MediumSites, w.HighSites = 2, 4, 2
	w.ObjectsPerSite = 60
	sc, err := scenario.Build(scenario.Config{
		Topology: topology.Config{
			TransitDomains:        1,
			TransitNodesPerDomain: 2,
			StubsPerTransitNode:   3,
			StubNodesPerStub:      4,
			ExtraEdgeProb:         0.3,
		},
		Workload:     w,
		CapacityFrac: 0.15,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func newTestController(t *testing.T, sc *scenario.Scenario, target Target, mutate func(*Config)) *Controller {
	t.Helper()
	cfg := Config{
		Base:           sc.Sys,
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
		Target:         target,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// feedExact feeds the estimator integer counts proportional to the
// scenario's true demand matrix — the stationary-demand limit.
func feedExact(e *Estimator, sys *core.System) {
	for i := 0; i < sys.N(); i++ {
		for j := 0; j < sys.M(); j++ {
			if k := int64(sys.Demand[i][j] * 1e7); k > 0 {
				e.ObserveN(i, j, k)
			}
		}
	}
}

// TestStationaryConvergesToOfflineHybrid is the acceptance criterion:
// under stationary demand the controller's steady-state placement
// equals the offline placement.Hybrid result for the same scenario, and
// at most one reconcile round creates replicas.
func TestStationaryConvergesToOfflineHybrid(t *testing.T) {
	sc := testScenario(t)
	offline, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if offline.Placement.Replicas() == 0 {
		t.Fatal("offline hybrid placed nothing; scenario too easy")
	}

	target := NewModelTarget(placement.None(sc.Sys).Placement)
	ctrl := newTestController(t, sc, target, nil)

	creatingRounds := 0
	for round := 0; round < 6; round++ {
		feedExact(ctrl.Estimator(), sc.Sys)
		rep, err := ctrl.Reconcile()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Diff.Created) > 0 {
			creatingRounds++
		}
	}
	if d := placement.Diff(offline.Placement, target.Placement()); !d.Empty() {
		t.Fatalf("steady state differs from offline hybrid: +%d -%d", len(d.Created), len(d.Dropped))
	}
	if creatingRounds > 1 {
		t.Fatalf("%d reconcile rounds created replicas under stationary demand, want <= 1", creatingRounds)
	}
	st := ctrl.Status()
	if st.Applied != 1 || st.Rounds != 6 {
		t.Fatalf("status: applied %d of %d rounds, want exactly 1 of 6", st.Applied, st.Rounds)
	}
}

// TestStationarySampledStreamStabilizes drives the estimator from the
// actual request stream (sampling noise included): the controller must
// reach a stable placement whose predicted cost matches the offline
// hybrid's within a few percent, and stop churning replicas.
func TestStationarySampledStreamStabilizes(t *testing.T) {
	sc := testScenario(t)
	offline, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	offlineCost := placement.PredictCost(offline.Placement, sc.Work.Specs(), sc.Work.AvgObjectBytes)

	target := NewModelTarget(placement.None(sc.Sys).Placement)
	ctrl := newTestController(t, sc, target, nil)

	stream := sc.Stream(xrand.New(42))
	creatingRounds := 0
	var lastOutcome Outcome
	for round := 0; round < 8; round++ {
		for k := 0; k < 20000; k++ {
			req := stream.Next()
			ctrl.Estimator().Observe(req.Server, req.Site)
		}
		rep, err := ctrl.Reconcile()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Diff.Created) > 0 && rep.Outcome == OutcomeApplied {
			creatingRounds++
		}
		lastOutcome = rep.Outcome
	}
	if lastOutcome == OutcomeApplied {
		t.Fatalf("still applying plans after 8 stationary rounds")
	}
	if creatingRounds > 1 {
		t.Fatalf("%d applied rounds created replicas under stationary sampled demand, want <= 1", creatingRounds)
	}
	steady, err := target.Placement().RebuildOn(sc.Sys)
	if err != nil {
		t.Fatal(err)
	}
	steadyCost := placement.PredictCost(steady, sc.Work.Specs(), sc.Work.AvgObjectBytes)
	if steadyCost > offlineCost*1.05 {
		t.Fatalf("steady-state predicted cost %.4f, offline hybrid %.4f", steadyCost, offlineCost)
	}
}

// TestNoSignalBeforeTraffic pins the no-signal path.
func TestNoSignalBeforeTraffic(t *testing.T) {
	sc := testScenario(t)
	target := NewModelTarget(placement.None(sc.Sys).Placement)
	ctrl := newTestController(t, sc, target, nil)
	rep, err := ctrl.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != OutcomeNoSignal {
		t.Fatalf("outcome %q before any traffic", rep.Outcome)
	}
	if target.Placement().Replicas() != 0 {
		t.Fatal("no-signal round changed the placement")
	}
}

// TestHysteresisSkipsMarginalPlans: with a prohibitive threshold every
// non-empty plan is withheld and surfaces as the pending plan.
func TestHysteresisSkipsMarginalPlans(t *testing.T) {
	sc := testScenario(t)
	target := NewModelTarget(placement.None(sc.Sys).Placement)
	ctrl := newTestController(t, sc, target, func(cfg *Config) {
		cfg.Hysteresis = 10 // require a 1000% improvement: impossible
	})
	feedExact(ctrl.Estimator(), sc.Sys)
	rep, err := ctrl.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != OutcomeSkipped {
		t.Fatalf("outcome %q under prohibitive hysteresis", rep.Outcome)
	}
	if len(rep.Diff.Created) == 0 {
		t.Fatal("skipped round reports an empty plan")
	}
	if target.Placement().Replicas() != 0 {
		t.Fatal("skipped plan was applied anyway")
	}
	st := ctrl.Status()
	if st.Pending == nil || len(st.Pending.Created) != len(rep.Diff.Created) {
		t.Fatalf("pending plan not surfaced: %+v", st.Pending)
	}
}

// TestCooldownFreezesChangedSites: after an applied plan, a drastic
// demand flip cannot move the just-changed sites' replicas until the
// cool-down expires.
func TestCooldownFreezesChangedSites(t *testing.T) {
	sc := testScenario(t)
	target := NewModelTarget(placement.None(sc.Sys).Placement)
	ctrl := newTestController(t, sc, target, func(cfg *Config) {
		cfg.CooldownRounds = 3
		cfg.Hysteresis = -1 // isolate the cool-down mechanism
	})

	feedExact(ctrl.Estimator(), sc.Sys)
	rep1, err := ctrl.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Outcome != OutcomeApplied || len(rep1.Diff.Created) == 0 {
		t.Fatalf("round 1: %q, +%d", rep1.Outcome, len(rep1.Diff.Created))
	}
	changed := make(map[int]bool)
	for _, r := range rep1.Diff.Created {
		changed[r.Site] = true
	}
	before := target.Placement()

	// Flip all demand onto one changed site: the proposal would love to
	// re-place it everywhere, but the cool-down must hold it still.
	var hot int
	for j := range changed {
		hot = j
		break
	}
	for r := 0; r < 2; r++ {
		ctrl.Estimator().ObserveN(0, hot, 1e7)
		rep, err := ctrl.Reconcile()
		if err != nil {
			t.Fatal(err)
		}
		for _, cr := range rep.Diff.Created {
			if changed[cr.Site] {
				t.Fatalf("round %d created a replica of cooled-down site %d", r+2, cr.Site)
			}
		}
		for _, dr := range rep.Diff.Dropped {
			if changed[dr.Site] {
				t.Fatalf("round %d dropped a replica of cooled-down site %d", r+2, dr.Site)
			}
		}
	}
	// Frozen sites kept their replica columns exactly.
	after := target.Placement()
	for i := 0; i < sc.Sys.N(); i++ {
		for j := range changed {
			if before.Has(i, j) != after.Has(i, j) {
				t.Fatalf("cooled-down site %d moved at server %d", j, i)
			}
		}
	}
}

// TestControllerMetrics checks the obs wiring end to end.
func TestControllerMetrics(t *testing.T) {
	sc := testScenario(t)
	reg := obs.NewRegistry()
	target := NewModelTarget(placement.None(sc.Sys).Placement)
	ctrl := newTestController(t, sc, target, func(cfg *Config) {
		cfg.Metrics = reg
	})
	feedExact(ctrl.Estimator(), sc.Sys)
	if _, err := ctrl.Reconcile(); err != nil {
		t.Fatal(err)
	}
	applied := reg.Counter("control_reconciles_total", "", obs.Labels{"outcome": "applied"})
	if applied.Value() != 1 {
		t.Fatalf("control_reconciles_total{applied} = %d", applied.Value())
	}
	created := reg.Counter("control_replicas_created_total", "", nil)
	if created.Value() == 0 {
		t.Fatal("no created replicas counted")
	}
}
