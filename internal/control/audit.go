package control

import (
	"fmt"
	"math"

	"repro/internal/placement"
)

// auditRing is how many reconcile records the controller retains; old
// records are overwritten FIFO. 64 rounds at a 10s interval is ~10
// minutes of decision history.
const auditRing = 64

// auditEngineStepsCap bounds the per-record engine explain trail so a
// large proposal cannot bloat the ring.
const auditEngineStepsCap = 256

// auditProposedCap bounds the recorded candidate plan for the same
// reason (the full proposal reappears next round anyway).
const auditProposedCap = 128

// PlanStep is one proposed replica creation and the marginal benefit
// the optimizer assigned it — the per-site price/benefit column of the
// audit record.
type PlanStep struct {
	Server  int     `json:"server"`
	Site    int     `json:"site"`
	Benefit float64 `json:"benefit"`
}

// ReconcileRecord explains one reconcile round end to end: what the
// controller saw (demand hash, window, exclusions), what the optimizer
// proposed (candidate plan, engine explain trail), how the plan was
// priced (costs, transfer, hysteresis bar) and what was decided
// (verdict). Served at /debug/control/audit, newest last.
type ReconcileRecord struct {
	Round      int64   `json:"round"`
	When       string  `json:"when"` // RFC3339Nano, UTC
	DurationMs float64 `json:"duration_ms"`
	Outcome    Outcome `json:"outcome"`
	// Verdict is the human-readable why behind Outcome, with the
	// numbers that decided it.
	Verdict string `json:"verdict"`
	// DemandHash fingerprints the demand estimate the round optimized
	// against (FNV-1a over the matrix's float bits): identical hashes
	// across rounds mean the estimator saw no movement.
	DemandHash     string  `json:"demand_hash,omitempty"`
	WindowRequests int64   `json:"window_requests"`
	OldCost        float64 `json:"old_cost"`
	NewCost        float64 `json:"new_cost"`
	NetBenefit     float64 `json:"net_benefit"`
	TransferGBHops float64 `json:"transfer_gb_hops"`
	// HysteresisBar is the net benefit the plan had to clear
	// (Hysteresis × OldCost; 0 when hysteresis is disabled or the round
	// ended before pricing).
	HysteresisBar float64 `json:"hysteresis_bar"`
	// Proposed is the optimizer's creation sequence with benefits,
	// capped at auditProposedCap entries.
	Proposed []PlanStep `json:"proposed,omitempty"`
	// Created and Dropped are the diff the round evaluated (and, when
	// applied, executed).
	Created []placement.Replica `json:"created,omitempty"`
	Dropped []placement.Replica `json:"dropped,omitempty"`
	// FrozenSites lists sites excluded from movement by cool-down;
	// ExcludedEdges the edges the health view reported ejected.
	FrozenSites     []int `json:"frozen_sites,omitempty"`
	ExcludedEdges   []int `json:"excluded_edges,omitempty"`
	CreatesDeferred int   `json:"creates_deferred"`
	// EngineSteps is the placement engine's per-step explain trail
	// (heap pops, stale re-evaluations, ...), capped at
	// auditEngineStepsCap entries.
	EngineSteps []placement.ExplainStep `json:"engine_steps,omitempty"`
	// Engine labels the placement engine the round ran: "warm" for an
	// incremental repair, "lazy"/"approx"/"scan" for a cold solve.
	Engine string `json:"engine,omitempty"`
	// Model is the hit-ratio model the round's proposal and cost
	// probes were evaluated under ("eq1", "che", "closedform",
	// "random").
	Model string `json:"model,omitempty"`
	// PlacementMs is the optimizer's wall time within the round — the
	// number the warm-vs-cold speedup claims are audited against.
	PlacementMs float64 `json:"placement_ms"`
	// Epsilon is the approximate engine's configured drift budget
	// (0 = exact).
	Epsilon float64 `json:"epsilon,omitempty"`
	// StalePlacementFrac is the fraction of replicated sites whose
	// demand had been quiet for a full churn window when the round
	// started; ChurnRate the demand source's per-window site turnover
	// fraction. ChurnForced marks a round the churn signal pushed past
	// the hysteresis bar (see Config.ChurnKick).
	StalePlacementFrac float64 `json:"stale_placement_frac"`
	ChurnRate          float64 `json:"churn_rate"`
	ChurnForced        bool    `json:"churn_forced,omitempty"`
	// Warm details the warm-start decision: dirty-row counts, measured
	// drift, fallback reason. Nil when warm start is disabled.
	Warm *placement.IncrementalStats `json:"warm,omitempty"`
}

// AuditPage is the JSON document served at /debug/control/audit.
type AuditPage struct {
	// Records holds up to auditRing reconcile records, oldest first.
	Records []ReconcileRecord `json:"records"`
}

// demandHash fingerprints a demand matrix: FNV-1a over the row-major
// float64 bit patterns, rendered as 16 hex digits.
func demandHash(demand [][]float64) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, row := range demand {
		for _, v := range row {
			bits := math.Float64bits(v)
			for s := 0; s < 64; s += 8 {
				h ^= (bits >> s) & 0xff
				h *= prime64
			}
		}
	}
	return fmt.Sprintf("%016x", h)
}

// recordAudit pushes one record into the ring; caller holds c.mu.
func (c *Controller) recordAudit(rec ReconcileRecord) {
	if len(c.auditLog) < auditRing {
		c.auditLog = append(c.auditLog, rec)
		return
	}
	c.auditLog[c.auditNext] = rec
	c.auditNext = (c.auditNext + 1) % auditRing
}

// Audit snapshots the retained reconcile records, oldest first.
func (c *Controller) Audit() []ReconcileRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ReconcileRecord, 0, len(c.auditLog))
	out = append(out, c.auditLog[c.auditNext:]...)
	out = append(out, c.auditLog[:c.auditNext]...)
	return out
}

// verdict renders the human-readable decision line for an outcome.
func (rec *ReconcileRecord) verdict(o Outcome) string {
	switch o {
	case OutcomeApplied:
		if rec.ChurnForced {
			return fmt.Sprintf("applied: catalog churn %.3f forced the plan past the hysteresis bar %.4f (net benefit %.4f, +%d/-%d replicas, %.3f GB·hops transfer)",
				rec.ChurnRate, rec.HysteresisBar, rec.NetBenefit, len(rec.Created), len(rec.Dropped), rec.TransferGBHops)
		}
		return fmt.Sprintf("applied: net benefit %.4f cleared the hysteresis bar %.4f (+%d/-%d replicas, %.3f GB·hops transfer)",
			rec.NetBenefit, rec.HysteresisBar, len(rec.Created), len(rec.Dropped), rec.TransferGBHops)
	case OutcomeSkipped:
		return fmt.Sprintf("rejected: net benefit %.4f below the hysteresis bar %.4f; plan kept pending",
			rec.NetBenefit, rec.HysteresisBar)
	case OutcomeNoop:
		return "noop: proposal matches the live placement"
	case OutcomeNoSignal:
		return "no-signal: no requests observed yet"
	}
	return string(o)
}
