package control

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/lrumodel"
	"repro/internal/obs"
	"repro/internal/placement"
	"sync"
)

// Target is a running deployment the controller can re-place: the live
// httpcdn.Cluster in the daemon, a ModelTarget in simulations and tests.
type Target interface {
	// Placement returns the placement currently routing requests.
	Placement() *core.Placement
	// SwapPlacement atomically replaces it; in-flight requests finish
	// against the snapshot they loaded.
	SwapPlacement(*core.Placement) error
}

// ModelTarget is the trivial in-memory Target used by the simulation
// harness and tests: a placement behind a mutex, no HTTP involved.
type ModelTarget struct {
	mu sync.Mutex
	p  *core.Placement
}

// NewModelTarget starts a model target at the given placement.
func NewModelTarget(p *core.Placement) *ModelTarget { return &ModelTarget{p: p} }

// Placement implements Target.
func (t *ModelTarget) Placement() *core.Placement {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.p
}

// SwapPlacement implements Target.
func (t *ModelTarget) SwapPlacement(p *core.Placement) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p = p
	return nil
}

// Controller defaults.
const (
	// DefaultHysteresis: a plan must improve the predicted objective by
	// at least 2% (net of transfer) before it is applied.
	DefaultHysteresis = 0.02
	// DefaultCooldownRounds: a site whose replicas just moved is frozen
	// for this many subsequent reconcile rounds.
	DefaultCooldownRounds = 2
	// DefaultTransferWeight prices replica movement into the objective:
	// hauling 1 GB·hop costs this many predicted hops/request of
	// sustained benefit before a plan breaks even.
	DefaultTransferWeight = 0.05
	// DefaultWarmMaxRounds: a cold re-solve is forced after this many
	// consecutive warm repairs, bounding how far the monotone warm
	// path can lag a shifting optimum.
	DefaultWarmMaxRounds = 32
)

// DemandSource is the estimator-shaped dependency the controller
// reconciles against. *Estimator is the single-process implementation;
// *ShardedEstimator (the control-plane binary's consistent-hash-sharded
// variant) is the other. Roll closes the counting window once per
// reconcile round; Demand returns the normalized estimate.
type DemandSource interface {
	Roll() int64
	Demand() (demand [][]float64, ok bool)
	Observed() int64
	ServerRates() []float64
	SiteRates() []float64
	WindowTotals() []int64
}

// HealthView is the failure signal a deployment exposes to the
// controller: which edge servers are currently ejected by the passive
// health tracker. httpcdn.Cluster satisfies it structurally, so neither
// package imports the other.
type HealthView interface {
	EjectedEdges() []int
}

// Config parameterizes a Controller.
type Config struct {
	// Base supplies the deployment's costs, capacities and site sizes;
	// its demand matrix is never read — estimated demand replaces it on
	// every reconcile (core.System.WithDemand).
	Base *core.System
	// Specs and AvgObjectBytes feed placement.Hybrid's analytical cache
	// model; both are demand-independent, so they stay valid as the
	// estimate evolves.
	Specs          []lrumodel.SiteSpec
	AvgObjectBytes float64
	// Model selects the analytical hit-ratio model every proposal and
	// cost probe is evaluated under ("eq1", "che", "closedform",
	// "random"; empty = eq1). Validated by New; the normalized name is
	// surfaced in Status, Report and the reconcile audit ring.
	Model string
	// Target is the deployment to re-place.
	Target Target
	// Estimator supplies the demand estimate. Leave nil to have the
	// controller build one (EstimatorConfig defaults) — reachable via
	// Estimator() for wiring into a request tap.
	Estimator *Estimator
	// Source, when non-nil, replaces Estimator entirely with an
	// arbitrary DemandSource (the sharded estimator in cdncontrol).
	// Estimator() returns nil in that case.
	Source DemandSource
	// Interval is the Run loop's reconcile cadence. Non-positive means
	// no periodic rounds: Run still serves Kick-triggered ones.
	Interval time.Duration
	// Health, when non-nil, is consulted at the start of every reconcile:
	// ejected edges are excluded from the placement proposal (their
	// capacity is zeroed in the optimizer's view and their replicas are
	// dropped from the applied placement), so demand shifts onto live
	// servers until the health tracker readmits them.
	Health HealthView
	// Hysteresis is the minimum net benefit — as a fraction of the
	// current placement's predicted cost — a plan needs before it is
	// applied. 0 selects DefaultHysteresis; negative disables (every
	// non-empty plan applies).
	Hysteresis float64
	// CooldownRounds freezes a site's replicas for this many reconcile
	// rounds after a plan changed them, so estimate noise cannot bounce
	// the same replica in and out. 0 selects DefaultCooldownRounds;
	// negative disables.
	CooldownRounds int
	// TransferWeight converts a plan's transfer volume (GB·hops) into
	// objective units (predicted hops/request) when computing its net
	// benefit. 0 selects DefaultTransferWeight; negative disables
	// transfer pricing.
	TransferWeight float64
	// ChurnKick, when > 0, lets the catalog-churn signal force a
	// positive-benefit plan past the hysteresis bar: a round whose
	// demand source reports a site churn rate at or above this fraction
	// applies any plan with net benefit > 0, bar or no bar. Under a
	// dynamic catalog the placement staleness the churn causes is real
	// drift, not estimate noise — the thing hysteresis exists to damp.
	// 0 disables (the static-catalog behavior).
	ChurnKick float64
	// Parallelism is passed through to placement.Hybrid's benefit
	// matrix fan-out (0 = GOMAXPROCS).
	Parallelism int
	// Epsilon enables the approximate ε-lazy placement engine: the
	// optimizer may accept drift-stale candidates as long as the final
	// predicted cost stays within Epsilon (relative) of the exact
	// engine's. 0 keeps the exact engine.
	Epsilon float64
	// DisableWarmStart turns off warm-start incremental re-placement
	// and re-solves cold every round (the pre-warm behavior). By
	// default each reconcile repairs the previous round's solver state
	// in place, falling back to a cold solve on large demand drift or
	// topology change.
	DisableWarmStart bool
	// WarmDriftThreshold and WarmMaxDirtyFrac tune the warm path (0
	// selects placement.DefaultWarmDriftThreshold /
	// DefaultWarmMaxDirtyFrac): a server row whose demand moved more
	// than the threshold since its model state was built is rebuilt
	// exactly, and when more than the dirty fraction of rows moved the
	// whole round re-solves cold.
	WarmDriftThreshold float64
	WarmMaxDirtyFrac   float64
	// WarmMaxRounds bounds how long warm repairs may chain before a
	// forced cold re-solve (greedy repair only ever adds replicas, so
	// a periodic cold round is what removes placements the demand no
	// longer justifies). 0 selects DefaultWarmMaxRounds; negative
	// disables the bound.
	WarmMaxRounds int
	// Metrics, when non-nil, receives the control_* series (reconcile
	// outcomes, replica churn, last benefit/transfer).
	Metrics *obs.Registry
	// Logf, when non-nil, receives one line per reconcile round.
	Logf func(format string, args ...any)
}

// Outcome classifies a reconcile round.
type Outcome string

// Reconcile outcomes.
const (
	// OutcomeApplied: the plan cleared hysteresis and was swapped in.
	OutcomeApplied Outcome = "applied"
	// OutcomeSkipped: a non-empty plan existed but its net benefit was
	// below the hysteresis threshold; it is kept as the pending plan.
	OutcomeSkipped Outcome = "skipped"
	// OutcomeNoop: the proposal matches the live placement.
	OutcomeNoop Outcome = "noop"
	// OutcomeNoSignal: no request has ever been observed; nothing to
	// estimate from.
	OutcomeNoSignal Outcome = "no-signal"
)

// Report describes one reconcile round.
type Report struct {
	Round          int64                `json:"round"`
	Outcome        Outcome              `json:"outcome"`
	WindowRequests int64                `json:"window_requests"`
	OldCost        float64              `json:"old_cost"`
	NewCost        float64              `json:"new_cost"`
	NetBenefit     float64              `json:"net_benefit"`
	Diff           placement.DiffResult `json:"diff"`
	// CreatesDeferred counts proposed creations withheld this round by
	// a site cool-down or by capacity after partial application.
	CreatesDeferred int `json:"creates_deferred"`
	// Engine labels the placement engine the round ran ("warm" for an
	// incremental repair); Model the hit-ratio model the proposal and
	// cost probes used; PlacementMs is the optimizer's wall time.
	Engine      string  `json:"engine,omitempty"`
	Model       string  `json:"model,omitempty"`
	PlacementMs float64 `json:"placement_ms"`
	// Excluded lists the edges the health view reported ejected, which
	// this round's proposal therefore placed nothing on.
	Excluded []int `json:"excluded,omitempty"`
}

// Status is the controller state snapshot served at /debug/control.
type Status struct {
	Rounds   int64 `json:"rounds"`
	Applied  int64 `json:"applied"`
	Skipped  int64 `json:"skipped"`
	Noops    int64 `json:"noops"`
	NoSignal int64 `json:"no_signal"`
	Replicas int   `json:"replicas"`
	Observed int64 `json:"observed_requests"`
	// Model is the configured hit-ratio model (normalized; "eq1" when
	// the config left it empty).
	Model string `json:"model,omitempty"`
	// Placement lists the sites replicated at each server, the live
	// routing state.
	Placement [][]int `json:"placement"`
	// Last is the most recent reconcile report, nil before the first.
	Last *Report `json:"last,omitempty"`
	// Pending is the most recent plan withheld by hysteresis, nil when
	// the last non-noop round applied.
	Pending *placement.DiffResult `json:"pending,omitempty"`
	// EdgeRates and SiteRates are EWMA requests/window.
	EdgeRates    []float64 `json:"edge_rates"`
	SiteRates    []float64 `json:"site_rates"`
	WindowTotals []int64   `json:"window_totals"`
	// StalePlacementFrac is the fraction of replicated sites whose
	// demand has been quiet for a full churn window — placement capacity
	// pinned to content the catalog has likely withdrawn. ChurnRate is
	// the demand source's per-window site birth+death fraction. Both are
	// zero when the source does not implement ChurnSource or has too
	// little roll history.
	StalePlacementFrac float64 `json:"stale_placement_frac"`
	ChurnRate          float64 `json:"churn_rate"`
}

// Controller closes the estimation → placement → swap loop.
type Controller struct {
	cfg Config
	est DemandSource
	// estConcrete is est when it is a plain *Estimator (the Estimator()
	// accessor's return; nil when cfg.Source supplied something else).
	estConcrete *Estimator
	kick        chan struct{}

	mu            sync.Mutex
	round         int64
	cooldownUntil []int64 // per site: round until which it is frozen
	last          *Report
	pending       *placement.DiffResult
	counts        map[Outcome]int64

	// warm is the solver state carried between reconcile rounds
	// (warm-start incremental re-placement); warmRounds counts the
	// consecutive warm repairs since the last cold solve.
	warm       *placement.WarmState
	warmRounds int

	// auditLog is the decision-audit ring (see audit.go): up to
	// auditRing ReconcileRecords, auditNext the overwrite cursor.
	auditLog  []ReconcileRecord
	auditNext int

	// costShared memoizes hit-ratio grid evaluations across the
	// PredictCost probes of every reconcile round (the controller
	// prices two placements per non-noop round; without it each probe
	// re-memoized from scratch).
	costShared *lrumodel.SharedTable

	// metric handles, nil when cfg.Metrics is unset
	reconciles map[Outcome]*obs.Counter
	created    *obs.Counter
	dropped    *obs.Counter
	transfer   *obs.Counter // milli-GB·hops paid, integer counter
	placeWarm  *obs.Counter // rounds served by warm incremental repair
	placeCold  *obs.Counter // rounds that ran a cold solve
}

// New validates cfg and builds a controller (not yet running; use Run,
// or call Reconcile directly from a harness).
func New(cfg Config) (*Controller, error) {
	if cfg.Base == nil {
		return nil, fmt.Errorf("control: nil base system")
	}
	if cfg.Target == nil {
		return nil, fmt.Errorf("control: nil target")
	}
	if len(cfg.Specs) != cfg.Base.M() {
		return nil, fmt.Errorf("control: %d specs for %d sites", len(cfg.Specs), cfg.Base.M())
	}
	if cfg.AvgObjectBytes <= 0 {
		return nil, fmt.Errorf("control: AvgObjectBytes = %v", cfg.AvgObjectBytes)
	}
	kind, err := lrumodel.ParseModelKind(cfg.Model)
	if err != nil {
		return nil, err
	}
	cfg.Model = string(kind) // normalize "" to "eq1" for display
	if cfg.Hysteresis == 0 {
		cfg.Hysteresis = DefaultHysteresis
	}
	if cfg.CooldownRounds == 0 {
		cfg.CooldownRounds = DefaultCooldownRounds
	}
	if cfg.TransferWeight == 0 {
		cfg.TransferWeight = DefaultTransferWeight
	}
	if cfg.WarmMaxRounds == 0 {
		cfg.WarmMaxRounds = DefaultWarmMaxRounds
	}
	var est DemandSource
	concrete := cfg.Estimator
	if cfg.Source != nil {
		if concrete != nil {
			return nil, fmt.Errorf("control: both Estimator and Source set")
		}
		est = cfg.Source
	} else {
		if concrete == nil {
			var err error
			concrete, err = NewEstimator(EstimatorConfig{Servers: cfg.Base.N(), Sites: cfg.Base.M()})
			if err != nil {
				return nil, err
			}
		}
		est = concrete
	}
	c := &Controller{
		cfg:           cfg,
		est:           est,
		estConcrete:   concrete,
		kick:          make(chan struct{}, 1),
		cooldownUntil: make([]int64, cfg.Base.M()),
		counts:        make(map[Outcome]int64),
		costShared:    lrumodel.NewSharedTable(),
	}
	if reg := cfg.Metrics; reg != nil {
		c.reconciles = make(map[Outcome]*obs.Counter)
		for _, o := range []Outcome{OutcomeApplied, OutcomeSkipped, OutcomeNoop, OutcomeNoSignal} {
			c.reconciles[o] = reg.Counter("control_reconciles_total",
				"Reconcile rounds by outcome.", obs.Labels{"outcome": string(o)})
		}
		c.created = reg.Counter("control_replicas_created_total",
			"Replicas created by applied plans.", nil)
		c.dropped = reg.Counter("control_replicas_dropped_total",
			"Replicas dropped by applied plans.", nil)
		c.transfer = reg.Counter("control_transfer_milli_gbhops_total",
			"Transfer volume paid by applied plans, in 1/1000 GB·hops.", nil)
		c.placeWarm = reg.Counter("control_placement_rounds_total",
			"Placement rounds by engine path.", obs.Labels{"path": "warm"})
		c.placeCold = reg.Counter("control_placement_rounds_total",
			"Placement rounds by engine path.", obs.Labels{"path": "cold"})
		reg.GaugeFunc("control_replicas", "Replicas in the live placement.", nil,
			func() float64 { return float64(cfg.Target.Placement().Replicas()) })
		reg.GaugeFunc("control_last_net_benefit", "Net benefit of the last evaluated plan.", nil,
			func() float64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				if c.last == nil {
					return 0
				}
				return c.last.NetBenefit
			})
	}
	return c, nil
}

// Estimator returns the estimator feeding this controller; wire its
// Observe into the deployment's request tap. It returns nil when the
// controller was built on a custom Config.Source — feed that source
// directly instead.
func (c *Controller) Estimator() *Estimator { return c.estConcrete }

// Run reconciles on cfg.Interval — and immediately on every Kick —
// until ctx is cancelled. With a non-positive interval the loop is
// kick-driven only.
func (c *Controller) Run(ctx context.Context) {
	var tick <-chan time.Time
	if c.cfg.Interval > 0 {
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
		case <-c.kick:
		}
		if _, err := c.Reconcile(); err != nil && c.cfg.Logf != nil {
			c.cfg.Logf("control: reconcile failed: %v", err)
		}
	}
}

// Kick requests an out-of-band reconcile from the Run loop without
// waiting for the next tick — the failure-reactive path: wire it to the
// deployment's health-change hook so an ejection re-places immediately.
// Kicks coalesce; Kick never blocks. Without a running Run loop a kick
// sits until one starts (call Reconcile directly in harnesses).
func (c *Controller) Kick() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Unfreeze clears every site cool-down so the next reconcile may move
// anything. Call it when a component recovers: the cool-downs exist to
// damp estimate noise, and a real topology change should not wait them
// out.
func (c *Controller) Unfreeze() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for j := range c.cooldownUntil {
		c.cooldownUntil[j] = 0
	}
}

// Reconcile runs one control round: close the estimation window,
// re-place against the estimate, diff, price, and apply if the plan
// clears hysteresis. Safe for concurrent use (rounds serialize).
func (c *Controller) Reconcile() (*Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	c.round++
	rep := &Report{Round: c.round, WindowRequests: c.est.Roll()}
	rec := ReconcileRecord{
		Round:          c.round,
		When:           start.UTC().Format(time.RFC3339Nano),
		WindowRequests: rep.WindowRequests,
		Model:          c.cfg.Model,
	}

	demand, ok := c.est.Demand()
	if !ok {
		return c.finish(rep, rec, start, OutcomeNoSignal), nil
	}
	rec.DemandHash = demandHash(demand)
	// Catalog-churn signal: how fast sites are being born and dying in
	// the demand source's view, and what fraction of the live placement
	// is pinned to sites that have gone quiet.
	if cs, ok := c.est.(ChurnSource); ok {
		st := cs.SiteChurn()
		rec.ChurnRate = st.Rate
		if ages := cs.SiteAges(); ages != nil {
			rec.StalePlacementFrac = stalePlacementFrac(c.cfg.Target.Placement(), ages, st.Window)
		}
	}
	sys, err := c.cfg.Base.WithDemand(demand)
	if err != nil {
		c.round--
		return nil, err
	}

	// Health exclusion: the optimizer sees ejected edges with zero
	// capacity (so their demand is redistributed), while the applied
	// placement is still built on the capacity-correct system — the
	// target's SwapPlacement checks capacities against the deployment.
	var down []bool
	if c.cfg.Health != nil {
		if ejected := c.cfg.Health.EjectedEdges(); len(ejected) > 0 {
			down = make([]bool, sys.N())
			for _, i := range ejected {
				if i >= 0 && i < len(down) {
					down[i] = true
					rep.Excluded = append(rep.Excluded, i)
				}
			}
		}
	}
	view := sys
	if down != nil {
		view, err = sys.WithServersDown(down)
		if err != nil {
			c.round--
			return nil, err
		}
	}
	prop, err := c.propose(view, &rec)
	if err != nil {
		c.round--
		return nil, err
	}
	for _, s := range prop.Steps {
		if len(rec.Proposed) == auditProposedCap {
			break
		}
		rec.Proposed = append(rec.Proposed, PlanStep{Server: s.Server, Site: s.Site, Benefit: s.Benefit})
	}

	cur := c.cfg.Target.Placement()
	next, deferred, frozen, err := c.plan(sys, cur, prop, down)
	if err != nil {
		c.round--
		return nil, err
	}
	rep.CreatesDeferred = deferred
	rec.FrozenSites = frozen
	diff := placement.Diff(cur, next)
	if diff.Empty() {
		return c.finish(rep, rec, start, OutcomeNoop), nil
	}
	rep.Diff = diff

	curOn, err := cur.RebuildOn(sys)
	if err != nil {
		c.round--
		return nil, err
	}
	// Both probes share the controller's persistent memo table (and
	// each other's grid points): pricing a candidate placement costs
	// only the grid points no earlier round has evaluated.
	costOpts := placement.CostOptions{
		Specs:          c.cfg.Specs,
		AvgObjectBytes: c.cfg.AvgObjectBytes,
		Model:          c.cfg.Model,
		Shared:         c.costShared,
	}
	rep.OldCost, err = placement.PredictCostOpts(curOn, costOpts)
	if err != nil {
		c.round--
		return nil, err
	}
	rep.NewCost, err = placement.PredictCostOpts(next, costOpts)
	if err != nil {
		c.round--
		return nil, err
	}
	rep.NetBenefit = rep.OldCost - rep.NewCost
	if c.cfg.TransferWeight > 0 {
		rep.NetBenefit -= c.cfg.TransferWeight * diff.TransferGBHops
	}
	if c.cfg.Hysteresis > 0 {
		rec.HysteresisBar = c.cfg.Hysteresis * rep.OldCost
	}
	if c.cfg.Hysteresis > 0 && rep.NetBenefit < rec.HysteresisBar {
		// Churn override: when the catalog is turning over fast enough,
		// the staleness behind this plan is real drift rather than the
		// estimate noise hysteresis exists to damp — apply any plan that
		// is an improvement at all.
		if c.cfg.ChurnKick > 0 && rec.ChurnRate >= c.cfg.ChurnKick && rep.NetBenefit > 0 {
			rec.ChurnForced = true
		} else {
			c.pending = &diff
			return c.finish(rep, rec, start, OutcomeSkipped), nil
		}
	}

	if err := c.cfg.Target.SwapPlacement(next); err != nil {
		c.round--
		return nil, err
	}
	if c.cfg.CooldownRounds > 0 {
		until := c.round + int64(c.cfg.CooldownRounds)
		for _, r := range diff.Created {
			c.cooldownUntil[r.Site] = until
		}
		for _, r := range diff.Dropped {
			c.cooldownUntil[r.Site] = until
		}
	}
	c.pending = nil
	if c.created != nil {
		c.created.Add(int64(len(diff.Created)))
		c.dropped.Add(int64(len(diff.Dropped)))
		c.transfer.Add(int64(diff.TransferGBHops * 1000))
	}
	return c.finish(rep, rec, start, OutcomeApplied), nil
}

// propose runs the placement optimizer for one round — warm-start
// incremental by default, cold Hybrid when disabled — and fills the
// audit record's engine fields. Caller holds c.mu.
func (c *Controller) propose(view *core.System, rec *ReconcileRecord) (*placement.Result, error) {
	hcfg := placement.HybridConfig{
		Specs:          c.cfg.Specs,
		AvgObjectBytes: c.cfg.AvgObjectBytes,
		Model:          c.cfg.Model,
		Parallelism:    c.cfg.Parallelism,
		Epsilon:        c.cfg.Epsilon,
		Explain: func(e placement.ExplainStep) {
			if len(rec.EngineSteps) < auditEngineStepsCap {
				rec.EngineSteps = append(rec.EngineSteps, e)
			}
		},
	}
	rec.Epsilon = c.cfg.Epsilon
	start := time.Now()

	if c.cfg.DisableWarmStart {
		prop, err := placement.Hybrid(view, hcfg)
		if err != nil {
			return nil, err
		}
		rec.PlacementMs = float64(time.Since(start)) / float64(time.Millisecond)
		rec.Engine = hcfg.ResolveEngineLabel(view.N(), view.M())
		if c.placeCold != nil {
			c.placeCold.Inc()
		}
		return prop, nil
	}

	prev := c.warm
	if prev != nil && c.cfg.WarmMaxRounds > 0 && c.warmRounds >= c.cfg.WarmMaxRounds {
		prev = nil // force a periodic cold re-solve; the shared model table still carries over
		c.warm = nil
	}
	prop, warm, stats, err := placement.Incremental(prev, view, placement.IncrementalConfig{
		HybridConfig:   hcfg,
		DriftThreshold: c.cfg.WarmDriftThreshold,
		MaxDirtyFrac:   c.cfg.WarmMaxDirtyFrac,
	})
	if err != nil {
		c.warm = nil // prev was consumed; do not reuse half-repaired state
		return nil, err
	}
	c.warm = warm
	rec.PlacementMs = float64(time.Since(start)) / float64(time.Millisecond)
	rec.Warm = &stats
	if stats.Warm {
		c.warmRounds++
		rec.Engine = "warm"
		if c.placeWarm != nil {
			c.placeWarm.Inc()
		}
	} else {
		c.warmRounds = 0
		if c.cfg.Epsilon > 0 {
			rec.Engine = placement.EngineApprox.String()
		} else {
			rec.Engine = placement.EngineLazy.String()
		}
		if c.placeCold != nil {
			c.placeCold.Inc()
		}
	}
	return prop, nil
}

// finish records the round's outcome and its audit record under the
// held mutex.
func (c *Controller) finish(rep *Report, rec ReconcileRecord, start time.Time, o Outcome) *Report {
	rep.Outcome = o
	rep.Engine = rec.Engine
	rep.Model = rec.Model
	rep.PlacementMs = rec.PlacementMs
	c.last = rep
	c.counts[o]++
	rec.Outcome = o
	rec.DurationMs = float64(time.Since(start)) / float64(time.Millisecond)
	rec.OldCost = rep.OldCost
	rec.NewCost = rep.NewCost
	rec.NetBenefit = rep.NetBenefit
	rec.TransferGBHops = rep.Diff.TransferGBHops
	rec.Created = rep.Diff.Created
	rec.Dropped = rep.Diff.Dropped
	rec.ExcludedEdges = rep.Excluded
	rec.CreatesDeferred = rep.CreatesDeferred
	rec.Verdict = rec.verdict(o)
	c.recordAudit(rec)
	if c.reconciles != nil {
		c.reconciles[o].Inc()
	}
	if c.cfg.Logf != nil {
		c.cfg.Logf("control: round %d %s: +%d/-%d replicas, net benefit %.4f (old %.4f → new %.4f), transfer %.3f GB·hops",
			rep.Round, o, len(rep.Diff.Created), len(rep.Diff.Dropped),
			rep.NetBenefit, rep.OldCost, rep.NewCost, rep.Diff.TransferGBHops)
	}
	return rep
}

// plan turns the hybrid proposal into the placement to apply: sites in
// cool-down keep their current replica column, everything else follows
// the proposal. Survivors are placed first (always feasible — they are
// a subset of the current placement), then proposed creations in the
// algorithm's own benefit order, skipping any that no longer fit the
// mixed column's capacity; skipped creations are deferred to a later
// round, never silently forgotten (they reappear in the next proposal).
// Nothing is placed on a down server, cool-down or not: its replicas
// are unreachable, and dropping them lets Nearest route around it.
// frozenSites lists the sites cool-down excluded from movement this
// round, for the audit record.
func (c *Controller) plan(sys *core.System, cur *core.Placement, prop *placement.Result, down []bool) (p *core.Placement, deferred int, frozenSites []int, err error) {
	n, m := sys.N(), sys.M()
	frozen := make([]bool, m)
	for j := 0; j < m; j++ {
		frozen[j] = c.cfg.CooldownRounds > 0 && c.round <= c.cooldownUntil[j]
		if frozen[j] {
			frozenSites = append(frozenSites, j)
		}
	}
	next := core.NewPlacement(sys)
	for i := 0; i < n; i++ {
		if down != nil && down[i] {
			continue
		}
		for j := 0; j < m; j++ {
			if !cur.Has(i, j) {
				continue
			}
			if frozen[j] || prop.Placement.Has(i, j) {
				if err := next.Replicate(i, j); err != nil {
					return nil, 0, nil, fmt.Errorf("control: survivor (%d,%d): %w", i, j, err)
				}
			}
		}
	}
	for _, s := range prop.Steps {
		if down != nil && down[s.Server] {
			continue
		}
		if frozen[s.Site] {
			deferred++
			continue
		}
		if next.Has(s.Server, s.Site) {
			continue // survivor, already placed
		}
		if !next.CanReplicate(s.Server, s.Site) {
			deferred++
			continue
		}
		if err := next.Replicate(s.Server, s.Site); err != nil {
			return nil, 0, nil, fmt.Errorf("control: create (%d,%d): %w", s.Server, s.Site, err)
		}
	}
	return next, deferred, frozenSites, nil
}

// Status snapshots the controller for the debug endpoint.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.cfg.Target.Placement()
	sites := make([][]int, c.cfg.Base.N())
	for i := range sites {
		sites[i] = []int{}
		for j := 0; j < c.cfg.Base.M(); j++ {
			if p.Has(i, j) {
				sites[i] = append(sites[i], j)
			}
		}
	}
	var churnRate, staleFrac float64
	if cs, ok := c.est.(ChurnSource); ok {
		st := cs.SiteChurn()
		churnRate = st.Rate
		if ages := cs.SiteAges(); ages != nil {
			staleFrac = stalePlacementFrac(p, ages, st.Window)
		}
	}
	return Status{
		Rounds:             c.round,
		Applied:            c.counts[OutcomeApplied],
		Skipped:            c.counts[OutcomeSkipped],
		Noops:              c.counts[OutcomeNoop],
		NoSignal:           c.counts[OutcomeNoSignal],
		Replicas:           p.Replicas(),
		Observed:           c.est.Observed(),
		Model:              c.cfg.Model,
		Placement:          sites,
		Last:               c.last,
		Pending:            c.pending,
		EdgeRates:          c.est.ServerRates(),
		SiteRates:          c.est.SiteRates(),
		WindowTotals:       c.est.WindowTotals(),
		StalePlacementFrac: staleFrac,
		ChurnRate:          churnRate,
	}
}

// stalePlacementFrac is the staleness metric: of the sites holding at
// least one replica in p, the fraction whose demand has been quiet (or
// never observed) for at least window closed rolls. Those replicas pin
// storage and placement decisions to content the catalog has likely
// withdrawn — the dead weight a dynamic catalog accumulates.
func stalePlacementFrac(p *core.Placement, ages []int64, window int) float64 {
	n, m := p.System().N(), p.System().M()
	replicated, stale := 0, 0
	for j := 0; j < m; j++ {
		has := false
		for i := 0; i < n; i++ {
			if p.Has(i, j) {
				has = true
				break
			}
		}
		if !has {
			continue
		}
		replicated++
		if j >= len(ages) || ages[j] < 0 || ages[j] >= int64(window) {
			stale++
		}
	}
	if replicated == 0 {
		return 0
	}
	return float64(stale) / float64(replicated)
}
