// Package control is the online control plane of the CDN: it closes the
// loop between the live request stream and the hybrid placement
// algorithm. The paper argues (§2.1) that replica placement "should
// remain fairly static" because migration is expensive while caching
// adapts for free — which is exactly why a running deployment needs a
// controller rather than a one-shot offline computation: demand drifts,
// and somebody has to decide when the drift has grown large enough that
// paying the transfer cost of a re-placement beats serving the old one.
//
// The loop has three parts:
//
//   - an Estimator that turns per-request taps (httpcdn's
//     Config.RequestTap, or any other feed) into a smoothed per-server ×
//     per-site demand estimate — sliding-window counters folded into an
//     EWMA at every reconcile round;
//   - a Controller that periodically re-runs placement.Hybrid against
//     the estimated demand, diffs the proposal against the live
//     placement (placement.Diff), prices the replica transfers, and
//     applies the plan only when its net benefit clears a hysteresis
//     threshold — with a per-site cool-down so placements never thrash;
//   - a debug surface: obs metrics and the /debug/control endpoint
//     (Handler), which cmd/cdnctl queries.
//
// Applying a plan is an atomic swap of the routing tables
// (httpcdn.Cluster.SwapPlacement) while requests are in flight.
package control

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// EstimatorConfig sizes an Estimator.
type EstimatorConfig struct {
	// Servers (N) and Sites (M) fix the demand matrix shape.
	Servers, Sites int
	// Alpha is the EWMA weight of the newest window in (0, 1]: after a
	// roll, rate = Alpha·window + (1−Alpha)·rate. Higher alpha adapts
	// faster but passes more sampling noise into the placement run.
	// 0 selects DefaultAlpha.
	Alpha float64
	// Windows is the length of the sliding-window ring kept for the
	// requests-per-window view in Status. 0 selects DefaultWindows.
	Windows int
}

// Estimator defaults.
const (
	DefaultAlpha   = 0.5
	DefaultWindows = 8
	// DefaultChurnWindow is how many recent rolls the churn signal looks
	// at: a site first seen inside the window is a birth, a site seen
	// before but quiet for the whole window is a death.
	DefaultChurnWindow = 4
)

// ChurnStats is the per-site catalog-activity signal a demand source
// derives from its roll history. Under a dynamic catalog (see
// workload.DynamicStream) sites appear and fall silent; the controller
// uses the rate to decide when placement staleness outweighs estimate
// noise.
type ChurnStats struct {
	// Births counts sites whose first-ever traffic arrived within the
	// last Window rolls; Deaths counts sites seen before the window with
	// no traffic inside it; Active counts sites with any traffic inside
	// it.
	Births, Deaths, Active int
	// Rate is (Births+Deaths) / sites ever seen — the per-window catalog
	// turnover fraction. Zero until more than Window rolls of history
	// exist (a cold estimator sees every site as newborn).
	Rate float64
	// Window is the roll horizon the stats were computed over.
	Window int
}

// ChurnSource is the optional interface a DemandSource implements when
// it tracks per-site activity history. Both *Estimator and
// *ShardedEstimator implement it; the controller type-asserts and
// degrades gracefully when the source does not.
type ChurnSource interface {
	// SiteChurn computes birth/death stats over the default churn
	// window.
	SiteChurn() ChurnStats
	// SiteAges returns, per site, the number of closed rolls since the
	// site last had traffic: 0 = active in the latest window, -1 = never
	// seen.
	SiteAges() []int64
}

// Estimator estimates the per-server × per-site request-rate matrix
// r_j^(i) from a live request stream. Observe is lock-free (one atomic
// add) and safe to call from every serving goroutine; Roll folds the
// current window into the EWMA and is called by the controller once per
// reconcile round.
type Estimator struct {
	n, m    int
	alpha   float64
	counts  []atomic.Int64 // current window, n*m row-major
	observe atomic.Int64   // requests ever observed

	mu      sync.Mutex
	rates   []float64 // EWMA requests/window per cell, n*m
	window  []int64   // ring of recent window totals
	rolls   int64     // completed Roll calls
	rateSum float64   // Σ rates, maintained at roll time
	// firstSeen/lastSeen record, per site, the 1-based roll index of the
	// first and most recent window with any traffic (0 = never) — the
	// birth/last-seen tracking behind the churn signal.
	firstSeen, lastSeen []int64
	siteTot             []int64 // per-roll scratch, reused
}

// NewEstimator builds an estimator for an N-server, M-site deployment.
func NewEstimator(cfg EstimatorConfig) (*Estimator, error) {
	if cfg.Servers < 1 || cfg.Sites < 1 {
		return nil, fmt.Errorf("control: estimator for %d servers, %d sites", cfg.Servers, cfg.Sites)
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("control: estimator alpha = %v", cfg.Alpha)
	}
	if cfg.Windows < 0 {
		return nil, fmt.Errorf("control: estimator windows = %d", cfg.Windows)
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	windows := cfg.Windows
	if windows == 0 {
		windows = DefaultWindows
	}
	return &Estimator{
		n:         cfg.Servers,
		m:         cfg.Sites,
		alpha:     alpha,
		counts:    make([]atomic.Int64, cfg.Servers*cfg.Sites),
		rates:     make([]float64, cfg.Servers*cfg.Sites),
		window:    make([]int64, 0, windows),
		firstSeen: make([]int64, cfg.Sites),
		lastSeen:  make([]int64, cfg.Sites),
		siteTot:   make([]int64, cfg.Sites),
	}, nil
}

// Observe records one request issued at server for site. Out-of-range
// indices are dropped (a tap must never crash the serving path).
func (e *Estimator) Observe(server, site int) { e.ObserveN(server, site, 1) }

// ObserveN records k requests at once (batch feeds, tests).
func (e *Estimator) ObserveN(server, site int, k int64) {
	if server < 0 || server >= e.n || site < 0 || site >= e.m || k <= 0 {
		return
	}
	e.counts[server*e.m+site].Add(k)
	e.observe.Add(k)
}

// Observed returns the total requests ever observed.
func (e *Estimator) Observed() int64 { return e.observe.Load() }

// Roll closes the current counting window: every cell's count is folded
// into its EWMA rate and the window total is pushed onto the sliding
// ring. The first roll seeds the EWMA with the raw window (no cold-start
// bias toward zero). It returns the closed window's request total.
func (e *Estimator) Roll() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	var total int64
	sum := 0.0
	first := e.rolls == 0
	for j := range e.siteTot {
		e.siteTot[j] = 0
	}
	for c := range e.counts {
		v := e.counts[c].Swap(0)
		total += v
		e.siteTot[c%e.m] += v
		if first {
			e.rates[c] = float64(v)
		} else {
			e.rates[c] = e.alpha*float64(v) + (1-e.alpha)*e.rates[c]
		}
		sum += e.rates[c]
	}
	e.rateSum = sum
	e.rolls++
	for j, v := range e.siteTot {
		if v > 0 {
			if e.firstSeen[j] == 0 {
				e.firstSeen[j] = e.rolls
			}
			e.lastSeen[j] = e.rolls
		}
	}
	if cap(e.window) > 0 {
		if len(e.window) == cap(e.window) {
			copy(e.window, e.window[1:])
			e.window = e.window[:len(e.window)-1]
		}
		e.window = append(e.window, total)
	}
	return total
}

// Rolls returns the number of completed windows.
func (e *Estimator) Rolls() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rolls
}

// Demand returns the EWMA rate matrix normalized to ΣΣ = 1 — the shape
// core.System.Demand expects. ok is false while no request has ever
// been folded in (the controller skips reconciling on no signal).
func (e *Estimator) Demand() (demand [][]float64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rateSum <= 0 {
		return nil, false
	}
	demand = make([][]float64, e.n)
	for i := 0; i < e.n; i++ {
		row := make([]float64, e.m)
		copy(row, e.rates[i*e.m:(i+1)*e.m])
		for j := range row {
			row[j] /= e.rateSum
		}
		demand[i] = row
	}
	return demand, true
}

// RateMatrix returns a copy of the raw (unnormalized) EWMA rate matrix,
// requests/window per (server, site) cell. The sharded estimator
// aggregates shard-local matrices through this accessor: per-shard
// Demand() values normalize over the shard's own keys only and cannot
// be summed, while raw rates can.
func (e *Estimator) RateMatrix() [][]float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([][]float64, e.n)
	for i := 0; i < e.n; i++ {
		row := make([]float64, e.m)
		copy(row, e.rates[i*e.m:(i+1)*e.m])
		out[i] = row
	}
	return out
}

// ServerRates returns each server's EWMA requests/window — the per-edge
// rate view Status exposes.
func (e *Estimator) ServerRates() []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]float64, e.n)
	for i := 0; i < e.n; i++ {
		for j := 0; j < e.m; j++ {
			out[i] += e.rates[i*e.m+j]
		}
	}
	return out
}

// SiteRates returns each site's EWMA requests/window.
func (e *Estimator) SiteRates() []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]float64, e.m)
	for i := 0; i < e.n; i++ {
		for j := 0; j < e.m; j++ {
			out[j] += e.rates[i*e.m+j]
		}
	}
	return out
}

// WindowTotals returns the sliding ring of recent per-window request
// totals, oldest first.
func (e *Estimator) WindowTotals() []int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]int64(nil), e.window...)
}

// SiteChurn implements ChurnSource: birth/death stats over the default
// churn window.
func (e *Estimator) SiteChurn() ChurnStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return churnStats(e.firstSeen, e.lastSeen, e.rolls)
}

// SiteAges implements ChurnSource: rolls since each site's last traffic
// (0 = active in the latest window, -1 = never seen). It returns nil
// until more than one churn window of roll history exists — a cold
// estimator cannot distinguish a dead site from one it has not watched
// long enough.
func (e *Estimator) SiteAges() []int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return siteAges(e.lastSeen, e.rolls)
}

// churnStats derives ChurnStats from first/last-seen roll indices; also
// the aggregation kernel of the sharded estimator.
func churnStats(first, last []int64, rolls int64) ChurnStats {
	st := ChurnStats{Window: DefaultChurnWindow}
	if rolls <= DefaultChurnWindow {
		// Cold start: with less history than one window, every site
		// looks newborn; report zero churn rather than an artifact.
		return st
	}
	// Genesis is the roll traffic first arrived anywhere. An estimator
	// that rolled while the system idled (cluster booting, load not
	// started) would otherwise count the whole catalog as newborn once
	// the window slides past the idle prefix — the clock that matters
	// is rolls since first traffic, not rolls since construction.
	genesis := int64(0)
	for _, f := range first {
		if f > 0 && (genesis == 0 || f < genesis) {
			genesis = f
		}
	}
	if genesis == 0 || rolls-genesis <= DefaultChurnWindow {
		return st
	}
	horizon := rolls - DefaultChurnWindow
	ever := 0
	for j := range first {
		if first[j] == 0 {
			continue
		}
		ever++
		switch {
		case last[j] > horizon:
			st.Active++
			if first[j] > horizon {
				st.Births++
			}
		case last[j] > horizon-DefaultChurnWindow:
			// Went quiet within the previous window: a recent death.
			// Sites dead longer than that stop counting toward the rate
			// (they are stale placement, not ongoing churn).
			st.Deaths++
		}
	}
	if ever > 0 {
		st.Rate = float64(st.Births+st.Deaths) / float64(ever)
	}
	return st
}

// siteAges converts last-seen roll indices into ages relative to rolls;
// nil during the cold-start window (see Estimator.SiteAges).
func siteAges(last []int64, rolls int64) []int64 {
	if rolls <= DefaultChurnWindow {
		return nil
	}
	out := make([]int64, len(last))
	for j, l := range last {
		if l == 0 {
			out[j] = -1
			continue
		}
		out[j] = rolls - l
	}
	return out
}
