package control

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"repro/internal/placement"
)

// The /debug/control and /debug/control/audit documents are consumed
// by cdnctl, cdntrace -audit and external dashboards; these golden key
// sets pin the wire schema so a field rename is a visible, deliberate
// break instead of a silent one.

// checkKeys asserts obj carries every required key and nothing outside
// required ∪ optional.
func checkKeys(t *testing.T, what string, obj map[string]json.RawMessage, required, optional []string) {
	t.Helper()
	allowed := map[string]bool{}
	for _, k := range required {
		if _, ok := obj[k]; !ok {
			t.Errorf("%s: required key %q missing", what, k)
		}
		allowed[k] = true
	}
	for _, k := range optional {
		allowed[k] = true
	}
	var extra []string
	for k := range obj {
		if !allowed[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	if len(extra) > 0 {
		t.Errorf("%s: unexpected keys %v — extend the golden schema test if this is deliberate", what, extra)
	}
}

func getJSON(t *testing.T, url string) map[string]json.RawMessage {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	var obj map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&obj); err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestControlStatusSchema(t *testing.T) {
	sc := testScenario(t)
	target := NewModelTarget(placement.None(sc.Sys).Placement)
	ctrl := newTestController(t, sc, target, nil)
	feedExact(ctrl.Estimator(), sc.Sys)
	if _, err := ctrl.Reconcile(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(ctrl))
	defer srv.Close()

	status := getJSON(t, srv.URL+"/debug/control")
	checkKeys(t, "/debug/control", status,
		[]string{"rounds", "applied", "skipped", "noops", "no_signal", "replicas",
			"observed_requests", "placement", "edge_rates", "site_rates", "window_totals",
			"last", "model", "stale_placement_frac", "churn_rate"},
		[]string{"pending"})
	var model string
	if err := json.Unmarshal(status["model"], &model); err != nil {
		t.Fatal(err)
	}
	if model != "eq1" {
		t.Errorf("status model = %q, want the normalized default %q", model, "eq1")
	}

	var last map[string]json.RawMessage
	if err := json.Unmarshal(status["last"], &last); err != nil {
		t.Fatal(err)
	}
	checkKeys(t, "/debug/control last report", last,
		[]string{"round", "outcome", "window_requests", "old_cost", "new_cost",
			"net_benefit", "diff", "creates_deferred", "placement_ms"},
		[]string{"excluded", "engine", "model"})

	var diff map[string]json.RawMessage
	if err := json.Unmarshal(last["diff"], &diff); err != nil {
		t.Fatal(err)
	}
	checkKeys(t, "/debug/control last diff", diff,
		[]string{"created", "dropped", "transfer_gb_hops"}, nil)
}

func TestControlAuditSchema(t *testing.T) {
	sc := testScenario(t)
	target := NewModelTarget(placement.None(sc.Sys).Placement)
	ctrl := newTestController(t, sc, target, nil)
	feedExact(ctrl.Estimator(), sc.Sys)
	if _, err := ctrl.Reconcile(); err != nil { // applied: full record
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(ctrl))
	defer srv.Close()

	page := getJSON(t, srv.URL+"/debug/control/audit")
	checkKeys(t, "/debug/control/audit", page, []string{"records"}, nil)

	var records []map[string]json.RawMessage
	if err := json.Unmarshal(page["records"], &records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Fatalf("%d audit records, want 1", len(records))
	}
	checkKeys(t, "audit record", records[0],
		[]string{"round", "when", "duration_ms", "outcome", "verdict", "demand_hash",
			"window_requests", "old_cost", "new_cost", "net_benefit", "transfer_gb_hops",
			"hysteresis_bar", "proposed", "created", "engine_steps", "creates_deferred",
			"placement_ms", "stale_placement_frac", "churn_rate"},
		[]string{"dropped", "frozen_sites", "excluded_edges", "engine", "model", "epsilon",
			"warm", "churn_forced"})

	var warm map[string]json.RawMessage
	if err := json.Unmarshal(records[0]["warm"], &warm); err != nil {
		t.Fatal(err)
	}
	checkKeys(t, "audit warm stats", warm,
		[]string{"warm", "dirty_rows", "total_rows", "max_row_drift",
			"predictors_reused", "steps_added", "shared"},
		[]string{"reason"})

	var proposed []map[string]json.RawMessage
	if err := json.Unmarshal(records[0]["proposed"], &proposed); err != nil {
		t.Fatal(err)
	}
	if len(proposed) == 0 {
		t.Fatal("applied audit record has no proposed steps")
	}
	checkKeys(t, "audit proposed step", proposed[0],
		[]string{"server", "site", "benefit"}, nil)

	var steps []map[string]json.RawMessage
	if err := json.Unmarshal(records[0]["engine_steps"], &steps); err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("applied audit record has no engine steps")
	}
	checkKeys(t, "audit engine step", steps[0],
		[]string{"iter", "server", "site", "benefit", "predicted_cost"},
		[]string{"heap_pops", "stale_reevals", "superseded", "infeasible", "engine", "model",
			"rows_deferred", "rows_caught_up", "drift_accepts", "drift_budget_used"})
}

// ExampleHandler_audit is compile-time documentation that the audit
// page decodes with the exported types, the path cdntrace -audit uses.
func ExampleHandler_audit() {
	var page AuditPage
	_ = json.Unmarshal([]byte(`{"records":[]}`), &page)
	fmt.Println(len(page.Records))
	// Output: 0
}
