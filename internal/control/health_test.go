package control

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/placement"
)

// fakeHealth is a mutable HealthView for tests.
type fakeHealth struct {
	mu      sync.Mutex
	ejected []int
}

func (h *fakeHealth) set(ids ...int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ejected = ids
}

func (h *fakeHealth) EjectedEdges() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]int(nil), h.ejected...)
}

// TestReconcileExcludesEjectedEdges: with a health view reporting dead
// edges, the reconcile reports them in Excluded, drops their replicas,
// and places nothing new on them; once health clears, a later round
// repopulates them.
func TestReconcileExcludesEjectedEdges(t *testing.T) {
	sc := testScenario(t)
	target := NewModelTarget(placement.None(sc.Sys).Placement)
	health := &fakeHealth{}
	ctrl := newTestController(t, sc, target, func(cfg *Config) {
		cfg.Health = health
		cfg.Hysteresis = -1
		cfg.CooldownRounds = -1
	})

	// Healthy baseline round.
	feedExact(ctrl.Estimator(), sc.Sys)
	rep, err := ctrl.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Excluded) != 0 {
		t.Fatalf("healthy round excluded %v", rep.Excluded)
	}
	// Pick a server the baseline actually uses, so the exclusion has bite.
	down := -1
	base := target.Placement()
	for i := 0; i < sc.Sys.N() && down < 0; i++ {
		for j := 0; j < sc.Sys.M(); j++ {
			if base.Has(i, j) {
				down = i
				break
			}
		}
	}
	if down < 0 {
		t.Fatal("baseline placed no replicas; scenario too easy")
	}

	health.set(down)
	feedExact(ctrl.Estimator(), sc.Sys)
	rep, err = ctrl.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Excluded) != 1 || rep.Excluded[0] != down {
		t.Fatalf("Excluded = %v, want [%d]", rep.Excluded, down)
	}
	if len(rep.Diff.Dropped) == 0 {
		t.Fatal("no replicas dropped from the dead server")
	}
	after := target.Placement()
	for j := 0; j < sc.Sys.M(); j++ {
		if after.Has(down, j) {
			t.Fatalf("site %d still placed on excluded server %d", j, down)
		}
	}

	// Recovery: the exclusion lifts and the server is repopulated.
	health.set()
	feedExact(ctrl.Estimator(), sc.Sys)
	rep, err = ctrl.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Excluded) != 0 {
		t.Fatalf("post-recovery round excluded %v", rep.Excluded)
	}
	repopulated := false
	for j := 0; j < sc.Sys.M(); j++ {
		if target.Placement().Has(down, j) {
			repopulated = true
		}
	}
	if !repopulated {
		t.Fatalf("recovered server %d never repopulated", down)
	}
}

// TestKickDrivesRunLoop: with no interval, Run reconciles only on Kick,
// and kicks coalesce instead of queueing.
func TestKickDrivesRunLoop(t *testing.T) {
	sc := testScenario(t)
	target := NewModelTarget(placement.None(sc.Sys).Placement)
	ctrl := newTestController(t, sc, target, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); ctrl.Run(ctx) }()

	waitRounds := func(n int64) {
		t.Helper()
		for end := time.Now().Add(5 * time.Second); time.Now().Before(end); {
			if ctrl.Status().Rounds >= n {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("Run never reached %d rounds", n)
	}

	ctrl.Kick()
	waitRounds(1)
	// A burst of kicks coalesces to at most a couple of rounds, not one
	// round per kick.
	for i := 0; i < 50; i++ {
		ctrl.Kick()
	}
	waitRounds(2)
	cancel()
	<-done
	if got := ctrl.Status().Rounds; got > 4 {
		t.Fatalf("50 kicks produced %d rounds; they should coalesce", got)
	}
}

// TestUnfreezeClearsCooldowns: an applied plan freezes its sites; a
// recovery-driven Unfreeze lifts every freeze immediately.
func TestUnfreezeClearsCooldowns(t *testing.T) {
	sc := testScenario(t)
	target := NewModelTarget(placement.None(sc.Sys).Placement)
	ctrl := newTestController(t, sc, target, func(cfg *Config) {
		cfg.CooldownRounds = 5
		cfg.Hysteresis = -1
	})
	feedExact(ctrl.Estimator(), sc.Sys)
	rep, err := ctrl.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != OutcomeApplied || len(rep.Diff.Created) == 0 {
		t.Fatalf("setup round: %q, +%d", rep.Outcome, len(rep.Diff.Created))
	}
	frozen := 0
	ctrl.mu.Lock()
	for _, until := range ctrl.cooldownUntil {
		if until > 0 {
			frozen++
		}
	}
	ctrl.mu.Unlock()
	if frozen == 0 {
		t.Fatal("applied plan set no cool-downs")
	}
	ctrl.Unfreeze()
	ctrl.mu.Lock()
	for j, until := range ctrl.cooldownUntil {
		if until != 0 {
			ctrl.mu.Unlock()
			t.Fatalf("site %d still frozen after Unfreeze", j)
		}
	}
	ctrl.mu.Unlock()
}
