package control

import (
	"math"
	"sync"
	"testing"
)

func TestEstimatorDemandNormalized(t *testing.T) {
	e, err := NewEstimator(EstimatorConfig{Servers: 3, Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Demand(); ok {
		t.Fatal("demand available before any observation")
	}
	e.ObserveN(0, 0, 10)
	e.ObserveN(1, 1, 30)
	e.ObserveN(2, 0, 60)
	if got := e.Roll(); got != 100 {
		t.Fatalf("window total %d, want 100", got)
	}
	d, ok := e.Demand()
	if !ok {
		t.Fatal("no demand after roll")
	}
	sum := 0.0
	for i := range d {
		for j := range d[i] {
			sum += d[i][j]
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("demand sums to %v", sum)
	}
	if math.Abs(d[0][0]-0.1) > 1e-12 || math.Abs(d[1][1]-0.3) > 1e-12 || math.Abs(d[2][0]-0.6) > 1e-12 {
		t.Fatalf("demand %v", d)
	}
}

func TestEstimatorEWMAConverges(t *testing.T) {
	e, err := NewEstimator(EstimatorConfig{Servers: 1, Sites: 2, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Seed with a wrong split, then feed the true 3:1 split; the EWMA
	// must converge geometrically.
	e.ObserveN(0, 0, 100)
	e.Roll()
	for r := 0; r < 20; r++ {
		e.ObserveN(0, 0, 300)
		e.ObserveN(0, 1, 100)
		e.Roll()
	}
	d, _ := e.Demand()
	if math.Abs(d[0][0]-0.75) > 1e-4 || math.Abs(d[0][1]-0.25) > 1e-4 {
		t.Fatalf("EWMA did not converge: %v", d)
	}
}

func TestEstimatorFirstRollSeedsEWMA(t *testing.T) {
	e, err := NewEstimator(EstimatorConfig{Servers: 1, Sites: 2, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// With cold-start bias (rate starting at 0), alpha 0.1 would put
	// the first window's estimate at a tenth of its true rate; seeding
	// makes one window enough.
	e.ObserveN(0, 0, 80)
	e.ObserveN(0, 1, 20)
	e.Roll()
	d, _ := e.Demand()
	if math.Abs(d[0][0]-0.8) > 1e-12 {
		t.Fatalf("first-roll demand %v, want [0.8 0.2]", d)
	}
}

func TestEstimatorSlidingWindowRing(t *testing.T) {
	e, err := NewEstimator(EstimatorConfig{Servers: 1, Sites: 1, Windows: 3})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 5; r++ {
		e.ObserveN(0, 0, int64(r))
		e.Roll()
	}
	got := e.WindowTotals()
	want := []int64{3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("ring %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ring %v, want %v", got, want)
		}
	}
	if e.Rolls() != 5 {
		t.Fatalf("rolls %d", e.Rolls())
	}
}

func TestEstimatorDropsOutOfRange(t *testing.T) {
	e, err := NewEstimator(EstimatorConfig{Servers: 2, Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(-1, 0)
	e.Observe(0, -1)
	e.Observe(2, 0)
	e.Observe(0, 2)
	e.ObserveN(0, 0, -5)
	if e.Observed() != 0 {
		t.Fatalf("out-of-range observations counted: %d", e.Observed())
	}
}

func TestEstimatorConcurrentObserve(t *testing.T) {
	e, err := NewEstimator(EstimatorConfig{Servers: 4, Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				e.Observe(g%4, k%4)
			}
		}(g)
	}
	wg.Wait()
	if got := e.Roll(); got != 8000 {
		t.Fatalf("concurrent observes lost: %d of 8000", got)
	}
}
