package control

import (
	"testing"

	"repro/internal/placement"
)

func TestAuditExplainsEveryRound(t *testing.T) {
	sc := testScenario(t)
	target := NewModelTarget(placement.None(sc.Sys).Placement)
	ctrl := newTestController(t, sc, target, nil)

	// Round 1: no traffic yet → no-signal.
	if _, err := ctrl.Reconcile(); err != nil {
		t.Fatal(err)
	}
	// Round 2: exact demand → the first plan applies.
	feedExact(ctrl.Estimator(), sc.Sys)
	if _, err := ctrl.Reconcile(); err != nil {
		t.Fatal(err)
	}
	// Round 3: same demand → noop or a skipped marginal plan.
	feedExact(ctrl.Estimator(), sc.Sys)
	if _, err := ctrl.Reconcile(); err != nil {
		t.Fatal(err)
	}

	recs := ctrl.Audit()
	if len(recs) != 3 {
		t.Fatalf("%d audit records for 3 rounds", len(recs))
	}
	if recs[0].Outcome != OutcomeNoSignal {
		t.Fatalf("round 1 outcome %q, want no-signal", recs[0].Outcome)
	}
	if recs[0].Verdict == "" || recs[0].When == "" {
		t.Fatalf("round 1 record incomplete: %+v", recs[0])
	}

	applied := recs[1]
	if applied.Outcome != OutcomeApplied {
		t.Fatalf("round 2 outcome %q, want applied", applied.Outcome)
	}
	if applied.DemandHash == "" || len(applied.DemandHash) != 16 {
		t.Fatalf("round 2 demand hash %q", applied.DemandHash)
	}
	if len(applied.Proposed) == 0 || applied.Proposed[0].Benefit <= 0 {
		t.Fatalf("applied round has no priced proposal: %+v", applied.Proposed)
	}
	if len(applied.Created) == 0 {
		t.Fatal("applied round records no created replicas")
	}
	if len(applied.EngineSteps) == 0 {
		t.Fatal("applied round has no engine explain trail")
	}
	if applied.EngineSteps[0].HeapPops == 0 {
		t.Fatalf("engine steps carry no heap-pop counters: %+v", applied.EngineSteps[0])
	}
	if applied.Verdict == "" || applied.NetBenefit <= 0 {
		t.Fatalf("applied verdict incomplete: %+v", applied)
	}

	// Every round — applied, rejected or noop — must carry a verdict,
	// and rounds 2 and 3 saw the same demand fingerprint.
	for _, r := range recs {
		if r.Verdict == "" {
			t.Fatalf("round %d has no verdict", r.Round)
		}
	}
	if recs[1].DemandHash != recs[2].DemandHash {
		t.Fatalf("identical demand hashed differently: %q vs %q",
			recs[1].DemandHash, recs[2].DemandHash)
	}
}

func TestAuditRingOverwritesOldest(t *testing.T) {
	sc := testScenario(t)
	target := NewModelTarget(placement.None(sc.Sys).Placement)
	ctrl := newTestController(t, sc, target, nil)
	rounds := auditRing + 10
	for i := 0; i < rounds; i++ {
		if _, err := ctrl.Reconcile(); err != nil {
			t.Fatal(err)
		}
	}
	recs := ctrl.Audit()
	if len(recs) != auditRing {
		t.Fatalf("%d records retained, want %d", len(recs), auditRing)
	}
	if got := recs[0].Round; got != int64(rounds-auditRing+1) {
		t.Fatalf("oldest retained round %d, want %d", got, rounds-auditRing+1)
	}
	if got := recs[len(recs)-1].Round; got != int64(rounds) {
		t.Fatalf("newest retained round %d, want %d", got, rounds)
	}
	for k := 1; k < len(recs); k++ {
		if recs[k].Round != recs[k-1].Round+1 {
			t.Fatalf("audit records out of order at %d: %d then %d",
				k, recs[k-1].Round, recs[k].Round)
		}
	}
}
