// Package dynamic grounds the paper's second motivation (§2.1): "the
// placement decisions should remain fairly static for a considerable
// time period... due to the fact that replica creation and migration
// incurs a high transfer cost", while caching "operates on a per page
// level and is inherently dynamic".
//
// It simulates a workload whose site popularities drift between epochs
// (hot sites cool down, cold sites heat up — a multiplicative random
// walk) and compares replica-placement strategies over time:
//
//   - static strategies place replicas once, on the first epoch's
//     demand, and never move them;
//   - adaptive strategies re-run their placement algorithm at every
//     epoch boundary and pay the transfer cost of every replica they
//     create (o_j bytes hauled over C(i, SP_j) hops from the primary);
//   - caches persist across epochs and adapt for free, which is exactly
//     the property the hybrid scheme banks on.
package dynamic

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Strategy names a replica management policy over time.
type Strategy string

// The compared strategies.
const (
	// Caching never places replicas; only the LRU caches adapt.
	Caching Strategy = "caching"
	// StaticReplication places greedy-global replicas on the first
	// epoch's demand and keeps them, with no caches.
	StaticReplication Strategy = "static-replication"
	// StaticHybrid runs the hybrid algorithm once on the first epoch's
	// demand; its caches keep adapting afterwards.
	StaticHybrid Strategy = "static-hybrid"
	// AdaptiveReplication re-runs greedy-global every epoch, paying
	// transfer costs, with no caches.
	AdaptiveReplication Strategy = "adaptive-replication"
	// AdaptiveHybrid re-runs the hybrid algorithm every epoch, paying
	// transfer costs; caches are resized to the new free space.
	AdaptiveHybrid Strategy = "adaptive-hybrid"
	// Controlled runs the online control plane (internal/control) over
	// the drifting workload: an initial hybrid placement, then a
	// controller that estimates demand from the observed request stream
	// (it never sees the true drifted demand matrix) and re-places at
	// epoch boundaries with hysteresis, cool-down and transfer pricing.
	// This is the causal counterpart of the clairvoyant AdaptiveHybrid.
	Controlled Strategy = "controlled-hybrid"
)

// Config controls a drift simulation.
type Config struct {
	// Epochs is the number of demand epochs.
	Epochs int
	// RequestsPerEpoch is the measured request count per epoch.
	RequestsPerEpoch int
	// Warmup is the unmeasured cache warm-up before the first epoch.
	Warmup int
	// Drift is the per-epoch log-normal popularity shock σ: site
	// weights evolve w' = w·exp(σ·ξ), ξ ~ N(0,1), then renormalize.
	// 0 freezes the workload; 0.5 reshuffles noticeably per epoch.
	Drift float64
	// FirstHopMs / PerHopMs mirror sim.Config.
	FirstHopMs, PerHopMs float64
	// ControlHysteresis, ControlCooldownRounds and ControlTransferWeight
	// tune the Controlled strategy's controller; zero selects the
	// control package defaults, negative disables the mechanism.
	ControlHysteresis     float64
	ControlCooldownRounds int
	ControlTransferWeight float64
}

// DefaultConfig drifts noticeably over 8 epochs.
func DefaultConfig() Config {
	return Config{
		Epochs:           8,
		RequestsPerEpoch: 200000,
		Warmup:           200000,
		Drift:            0.6,
		FirstHopMs:       20,
		PerHopMs:         20,
	}
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.Epochs < 1:
		return fmt.Errorf("dynamic: Epochs = %d", c.Epochs)
	case c.RequestsPerEpoch < 1:
		return fmt.Errorf("dynamic: RequestsPerEpoch = %d", c.RequestsPerEpoch)
	case c.Warmup < 0:
		return fmt.Errorf("dynamic: Warmup = %d", c.Warmup)
	case c.Drift < 0:
		return fmt.Errorf("dynamic: Drift = %v", c.Drift)
	case c.FirstHopMs < 0 || c.PerHopMs < 0:
		return fmt.Errorf("dynamic: negative delay")
	}
	return nil
}

// EpochResult is one epoch's measurement for one strategy.
type EpochResult struct {
	Epoch    int
	MeanRTMs float64
	// TransferGBHops is the replica-movement volume paid at this
	// epoch's boundary: Σ o_j·C(i, SP_j) over created replicas, in
	// GB·hops.
	TransferGBHops float64
	Replicas       int
}

// Result aggregates a strategy's run.
type Result struct {
	Strategy Strategy
	Epochs   []EpochResult
	// MeanRTMs is the request-weighted mean over all epochs.
	MeanRTMs float64
	// TotalTransferGBHops sums the boundary transfer volumes.
	TotalTransferGBHops float64
	// Requests is the total measured request count.
	Requests int
}

// TotalCostMs folds response time and replica movement into one number:
// the summed response time of every measured request plus the transfer
// volume priced at msPerGBHop. This is the "total cost including paid
// transfer costs" the strategies compete on.
func (r *Result) TotalCostMs(msPerGBHop float64) float64 {
	return r.MeanRTMs*float64(r.Requests) + msPerGBHop*r.TotalTransferGBHops
}

// Run simulates the strategy over the drifting workload. The demand
// drift sequence is derived from seed alone, so every strategy sees the
// identical sequence of workloads and request traces. Cancelling ctx
// aborts between request batches with ctx.Err().
func Run(ctx context.Context, sc *scenario.Scenario, strat Strategy, cfg Config, seed uint64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := xrand.New(seed)
	driftRand := root.Split("drift")

	// Per-epoch site weights, starting from the scenario's own.
	weights := make([]float64, sc.Sys.M())
	for j, s := range sc.Work.Sites {
		weights[j] = s.Weight
	}
	// The per-server spread stays fixed; demand columns scale with the
	// drifting weights (§5.1's truncated-normal spread is a property of
	// client geography, not of site popularity).
	spread := make([][]float64, sc.Sys.N())
	for i := range spread {
		spread[i] = make([]float64, sc.Sys.M())
		for j := range spread[i] {
			if sc.Work.Sites[j].Weight > 0 {
				spread[i][j] = sc.Sys.Demand[i][j] / sc.Work.Sites[j].Weight
			}
		}
	}

	res := &Result{Strategy: strat}
	var p *core.Placement
	var caches []cache.Cache
	useCache := strat == Caching || strat == StaticHybrid || strat == AdaptiveHybrid || strat == Controlled
	var totalRT float64
	var totalReq int

	// The Controlled strategy closes the loop through the online
	// controller: a model target holds the live placement and the
	// estimator only ever sees the request stream.
	var ctrl *control.Controller
	var target *control.ModelTarget

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		sys := systemWithWeights(sc, spread, weights)
		w := workloadWithWeights(sc, spread, weights)

		// (Re)place replicas according to the strategy.
		var transfer float64
		replaceNow := epoch == 0 || strat == AdaptiveReplication || strat == AdaptiveHybrid || strat == Controlled
		if replaceNow {
			var newP *core.Placement
			if strat == Controlled && epoch > 0 {
				// Epoch boundary: one reconcile round against the
				// demand estimated from the previous epoch's requests.
				rep, err := ctrl.Reconcile()
				if err != nil {
					return nil, err
				}
				if rep.Outcome == control.OutcomeApplied {
					transfer = rep.Diff.TransferGBHops
				}
				newP = target.Placement()
			} else {
				var err error
				newP, err = place(strat, sys, sc, w)
				if err != nil {
					return nil, err
				}
				transfer = placement.Diff(p, newP).TransferGBHops
				if strat == Controlled {
					target = control.NewModelTarget(newP)
					ctrl, err = control.New(control.Config{
						Base:           sc.Sys,
						Specs:          sc.Work.Specs(),
						AvgObjectBytes: sc.Work.AvgObjectBytes,
						Target:         target,
						Hysteresis:     cfg.ControlHysteresis,
						CooldownRounds: cfg.ControlCooldownRounds,
						TransferWeight: cfg.ControlTransferWeight,
					})
					if err != nil {
						return nil, err
					}
				}
			}
			p = newP
			if useCache {
				if caches == nil {
					caches = make([]cache.Cache, sc.Sys.N())
					for i := range caches {
						caches[i] = cache.NewLRU(p.Free(i))
					}
				} else {
					for i := range caches {
						caches[i].Resize(p.Free(i))
					}
				}
			}
		}

		// Simulate the epoch on the drifted workload.
		stream := workload.NewStream(w, root.Split(fmt.Sprintf("trace-%d", epoch)))
		warm := 0
		if epoch == 0 {
			warm = cfg.Warmup
		}
		er := EpochResult{Epoch: epoch, TransferGBHops: transfer, Replicas: p.Replicas()}
		var rtSum float64
		for t := 0; t < warm+cfg.RequestsPerEpoch; t++ {
			if t%4096 == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			req := stream.Next()
			i, j := req.Server, req.Site
			if ctrl != nil {
				ctrl.Estimator().Observe(i, j)
			}
			var hops float64
			switch {
			case p.Has(i, j):
				hops = 0
			case useCache:
				key := cache.Key{Site: j, Object: req.Object}
				if caches[i].Get(key) {
					hops = 0
				} else {
					hops = p.NearestCost(i, j)
					caches[i].Put(key, sc.Work.Size(j, req.Object))
				}
			default:
				hops = p.NearestCost(i, j)
			}
			if t >= warm {
				rtSum += cfg.FirstHopMs + cfg.PerHopMs*hops
			}
		}
		er.MeanRTMs = rtSum / float64(cfg.RequestsPerEpoch)
		res.Epochs = append(res.Epochs, er)
		totalRT += rtSum
		totalReq += cfg.RequestsPerEpoch
		res.TotalTransferGBHops += transfer

		// Drift the weights for the next epoch.
		if epoch < cfg.Epochs-1 {
			sum := 0.0
			for j := range weights {
				weights[j] *= math.Exp(cfg.Drift * driftRand.NormFloat64())
				sum += weights[j]
			}
			for j := range weights {
				weights[j] /= sum
			}
		}
	}
	res.MeanRTMs = totalRT / float64(totalReq)
	res.Requests = totalReq
	return res, nil
}

// place builds the strategy's placement on the epoch's demand.
func place(strat Strategy, sys *core.System, sc *scenario.Scenario, w *workload.Workload) (*core.Placement, error) {
	switch strat {
	case Caching:
		return core.NewPlacement(sys), nil
	case StaticReplication, AdaptiveReplication:
		return placement.GreedyGlobal(sys).Placement, nil
	case StaticHybrid, AdaptiveHybrid, Controlled:
		res, err := placement.Hybrid(sys, placement.HybridConfig{
			Specs:          w.Specs(),
			AvgObjectBytes: sc.Work.AvgObjectBytes,
		})
		if err != nil {
			return nil, err
		}
		return res.Placement, nil
	default:
		return nil, fmt.Errorf("dynamic: unknown strategy %q", strat)
	}
}

// systemWithWeights derives the epoch's core.System: shared costs and
// capacities, demand scaled to the drifted weights.
func systemWithWeights(sc *scenario.Scenario, spread [][]float64, weights []float64) *core.System {
	demand := make([][]float64, sc.Sys.N())
	for i := range demand {
		demand[i] = make([]float64, sc.Sys.M())
		for j := range demand[i] {
			demand[i][j] = spread[i][j] * weights[j]
		}
	}
	sys, err := sc.Sys.WithDemand(demand)
	if err != nil {
		panic(err) // unreachable: demand is well-shaped and non-negative
	}
	return sys
}

// workloadWithWeights derives the epoch's workload view (shared catalogs,
// drifted demand) for stream generation and the hybrid's model inputs.
func workloadWithWeights(sc *scenario.Scenario, spread [][]float64, weights []float64) *workload.Workload {
	w := *sc.Work
	w.Demand = make([][]float64, len(sc.Work.Demand))
	for i := range w.Demand {
		w.Demand[i] = make([]float64, len(weights))
		for j := range w.Demand[i] {
			w.Demand[i][j] = spread[i][j] * weights[j]
		}
	}
	return &w
}
