package dynamic

import (
	"context"
	"testing"

	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/workload"
)

func smallScenario() *scenario.Scenario {
	w := workload.DefaultConfig()
	w.Servers = 8
	w.LowSites, w.MediumSites, w.HighSites = 4, 8, 4
	w.ObjectsPerSite = 100
	return scenario.MustBuild(scenario.Config{
		Topology: topology.Config{
			TransitDomains:        1,
			TransitNodesPerDomain: 2,
			StubsPerTransitNode:   3,
			StubNodesPerStub:      5,
			ExtraEdgeProb:         0.3,
		},
		Workload:     w,
		CapacityFrac: 0.10,
		Seed:         1,
	})
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Epochs = 5
	cfg.RequestsPerEpoch = 30000
	cfg.Warmup = 30000
	return cfg
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.RequestsPerEpoch = 0 },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.Drift = -0.1 },
		func(c *Config) { c.PerHopMs = -1 },
	}
	for i, m := range mutations {
		c := DefaultConfig()
		m(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCachingPaysNoTransfer(t *testing.T) {
	sc := smallScenario()
	res, err := Run(context.Background(), sc, Caching, fastConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTransferGBHops != 0 {
		t.Fatalf("caching paid %v GB·hops of transfer", res.TotalTransferGBHops)
	}
	if len(res.Epochs) != 5 {
		t.Fatalf("%d epochs", len(res.Epochs))
	}
	for _, e := range res.Epochs {
		if e.Replicas != 0 {
			t.Fatal("caching created replicas")
		}
		if e.MeanRTMs <= 0 {
			t.Fatal("empty epoch")
		}
	}
}

func TestStaticStrategiesTransferOnce(t *testing.T) {
	sc := smallScenario()
	for _, strat := range []Strategy{StaticReplication, StaticHybrid} {
		res, err := Run(context.Background(), sc, strat, fastConfig(), 7)
		if err != nil {
			t.Fatal(err)
		}
		if res.Epochs[0].TransferGBHops <= 0 {
			t.Fatalf("%s: no initial placement transfer", strat)
		}
		for _, e := range res.Epochs[1:] {
			if e.TransferGBHops != 0 {
				t.Fatalf("%s: static strategy moved replicas at epoch %d", strat, e.Epoch)
			}
		}
	}
}

func TestAdaptiveKeepsMoving(t *testing.T) {
	sc := smallScenario()
	res, err := Run(context.Background(), sc, AdaptiveHybrid, fastConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0.0
	for _, e := range res.Epochs[1:] {
		moved += e.TransferGBHops
	}
	if moved <= 0 {
		t.Fatal("adaptive strategy never moved a replica under drift")
	}
	// Adaptive re-placement must also pay more transfer in total than
	// the one-shot static placement.
	static, err := Run(context.Background(), sc, StaticHybrid, fastConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTransferGBHops <= static.TotalTransferGBHops {
		t.Fatalf("adaptive transfer %v not above static %v",
			res.TotalTransferGBHops, static.TotalTransferGBHops)
	}
}

func TestDriftHurtsStaticReplicationMost(t *testing.T) {
	// The paper's motivation: under drift, a static pure-replication
	// deployment decays, while strategies with caches adapt. A single
	// drift draw can randomly favor either side, so compare the decay
	// (later-epoch RT minus first-epoch RT) averaged over seeds.
	sc := smallScenario()
	cfg := fastConfig()
	cfg.Drift = 0.8
	var declineR, declineH float64
	for seed := uint64(11); seed < 17; seed++ {
		repl, err := Run(context.Background(), sc, StaticReplication, cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		hyb, err := Run(context.Background(), sc, StaticHybrid, cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		for e := 1; e < len(repl.Epochs); e++ {
			declineR += repl.Epochs[e].MeanRTMs - repl.Epochs[0].MeanRTMs
			declineH += hyb.Epochs[e].MeanRTMs - hyb.Epochs[0].MeanRTMs
		}
		// Per seed, the hybrid stays ahead overall.
		if hyb.MeanRTMs >= repl.MeanRTMs {
			t.Errorf("seed %d: static hybrid %.2f not better than static replication %.2f",
				seed, hyb.MeanRTMs, repl.MeanRTMs)
		}
	}
	if declineH >= declineR {
		t.Errorf("avg decay: hybrid %.2f ms, replication %.2f ms: caching did not cushion drift",
			declineH, declineR)
	}
}

func TestZeroDriftStaticMatchesAdaptiveRT(t *testing.T) {
	// Without drift, re-placing every epoch cannot improve latency;
	// the adaptive strategy only pays (zero additional) transfer.
	sc := smallScenario()
	cfg := fastConfig()
	cfg.Drift = 0
	static, err := Run(context.Background(), sc, StaticHybrid, cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Run(context.Background(), sc, AdaptiveHybrid, cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.TotalTransferGBHops != static.TotalTransferGBHops {
		t.Fatalf("zero drift but adaptive transferred %v vs static %v",
			adaptive.TotalTransferGBHops, static.TotalTransferGBHops)
	}
	diff := adaptive.MeanRTMs - static.MeanRTMs
	if diff < -1 || diff > 1 {
		t.Fatalf("zero-drift RT differs: static %.2f vs adaptive %.2f",
			static.MeanRTMs, adaptive.MeanRTMs)
	}
}

func TestDeterministic(t *testing.T) {
	sc := smallScenario()
	a, err := Run(context.Background(), sc, AdaptiveHybrid, fastConfig(), 17)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), sc, AdaptiveHybrid, fastConfig(), 17)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanRTMs != b.MeanRTMs || a.TotalTransferGBHops != b.TotalTransferGBHops {
		t.Fatal("identical seeds diverged")
	}
}

func TestUnknownStrategy(t *testing.T) {
	sc := smallScenario()
	if _, err := Run(context.Background(), sc, Strategy("bogus"), fastConfig(), 1); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
