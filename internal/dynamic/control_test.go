package dynamic

import (
	"context"
	"testing"
)

// msPerGBHop prices replica movement for the total-cost comparisons.
// At 20 ms per hop and ~1 MB objects, hauling a GB over one hop costs
// on the order of a thousand object round-trips; 1000 ms/GB·hop keeps
// the transfer term material without dwarfing the response-time term.
const msPerGBHop = 1000

// TestControlledBeatsStaticUnderDrift is the acceptance criterion:
// under the drift workload the controller-managed strategy's total
// cost — response time plus paid transfer — beats the static
// replication baseline, even though the controller only ever sees the
// request stream, never the true demand matrix.
func TestControlledBeatsStaticUnderDrift(t *testing.T) {
	sc := smallScenario()
	cfg := fastConfig()
	cfg.Epochs = 8

	controlled, err := Run(context.Background(), sc, Controlled, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Run(context.Background(), sc, StaticReplication, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}

	cc := controlled.TotalCostMs(msPerGBHop)
	sc2 := static.TotalCostMs(msPerGBHop)
	if cc >= sc2 {
		t.Fatalf("controlled total cost %.0f ms >= static %.0f ms", cc, sc2)
	}
	if controlled.Requests != static.Requests {
		t.Fatalf("request counts differ: %d vs %d", controlled.Requests, static.Requests)
	}
}

// TestControlledPaysBoundedTransfer: hysteresis and cool-down must keep
// the controller from re-placing at every boundary — its paid transfer
// stays below the clairvoyant adaptive hybrid's, which re-places
// unconditionally each epoch.
func TestControlledPaysBoundedTransfer(t *testing.T) {
	sc := smallScenario()
	cfg := fastConfig()

	controlled, err := Run(context.Background(), sc, Controlled, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Run(context.Background(), sc, AdaptiveHybrid, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if controlled.TotalTransferGBHops > adaptive.TotalTransferGBHops {
		t.Fatalf("controlled hauled %.2f GB·hops, clairvoyant adaptive %.2f",
			controlled.TotalTransferGBHops, adaptive.TotalTransferGBHops)
	}
	// The initial placement is paid for like everyone else's.
	if len(controlled.Epochs) == 0 || controlled.Epochs[0].TransferGBHops == 0 {
		t.Fatal("controlled strategy got its initial placement for free")
	}
}

// TestControlledStationaryDoesNotChurn: with drift frozen the
// controller must not keep moving replicas after the initial placement
// settles.
func TestControlledStationaryDoesNotChurn(t *testing.T) {
	sc := smallScenario()
	cfg := fastConfig()
	cfg.Drift = 0

	res, err := Run(context.Background(), sc, Controlled, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, e := range res.Epochs[2:] {
		if e.TransferGBHops > 0 {
			moved++
		}
	}
	if moved > 0 {
		t.Fatalf("%d late epochs still paid transfer under frozen demand", moved)
	}
}
