package fault

import (
	"net/http"
	"sync/atomic"
	"time"
)

// Mode is an Injector failure mode.
type Mode int32

// The injector modes.
const (
	// ModeOff passes requests through untouched.
	ModeOff Mode = iota
	// ModeError answers every request with 503 Service Unavailable
	// without invoking the wrapped handler.
	ModeError
	// ModeLatency delays every request by the configured duration, then
	// serves it normally — a "slow" component.
	ModeLatency
	// ModeBlackhole never answers: the handler parks until the client
	// gives up (request context cancellation / timeout). This is the
	// hung-edge case that motivates per-hop timeouts — without them a
	// blackholed peer stalls the whole serving path forever.
	ModeBlackhole
)

// String renders the mode (the -fault-mode flag values).
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeError:
		return "error"
	case ModeLatency:
		return "latency"
	case ModeBlackhole:
		return "blackhole"
	default:
		return "unknown"
	}
}

// ParseMode parses a -fault-mode flag value.
func ParseMode(s string) (Mode, bool) {
	switch s {
	case "off":
		return ModeOff, true
	case "error":
		return ModeError, true
	case "latency":
		return ModeLatency, true
	case "blackhole":
		return ModeBlackhole, true
	}
	return ModeOff, false
}

// Injector is a runtime-togglable failure middleware for one HTTP
// component. The zero value is a pass-through; Set flips the mode
// atomically, so injection can be driven from a load loop or a test
// while requests are in flight.
type Injector struct {
	mode      atomic.Int32
	latencyNs atomic.Int64
}

// NewInjector returns a pass-through injector.
func NewInjector() *Injector { return &Injector{} }

// Set switches the failure mode; latency applies to ModeLatency only.
func (in *Injector) Set(m Mode, latency time.Duration) {
	in.latencyNs.Store(int64(latency))
	in.mode.Store(int32(m))
}

// Mode returns the current mode.
func (in *Injector) Mode() Mode { return Mode(in.mode.Load()) }

// Wrap returns next behind the injector.
func (in *Injector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch in.Mode() {
		case ModeError:
			w.Header().Set("X-Cdn-Fault", "error")
			http.Error(w, "fault injected", http.StatusServiceUnavailable)
			return
		case ModeLatency:
			d := time.Duration(in.latencyNs.Load())
			if d > 0 {
				select {
				case <-time.After(d):
				case <-r.Context().Done():
					return
				}
			}
		case ModeBlackhole:
			<-r.Context().Done()
			return
		}
		next.ServeHTTP(w, r)
	})
}
