// Package fault models component failures for the CDN, in both worlds
// the repository runs in:
//
//   - Schedule is a deterministic, seedable sequence of crash / recover /
//     slow events over virtual time (request indices) that the simulator
//     replays (sim.RunWithSchedule). It replaces the static FailureSet
//     "dead before the run starts" model with mid-run churn, the regime
//     the paper's availability argument (§5, Figure 6) is actually
//     about: caches re-absorb demand when replicas vanish.
//
//   - Injector is an HTTP middleware with error / latency / blackhole
//     modes, togglable at runtime, that chaos-tests the live httpcdn
//     cluster: kill an edge mid-load and watch health-checked
//     redirection route around it.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/xrand"
)

// Component identifies what an event acts on.
type Component uint8

// The failable components.
const (
	// Server is a CDN edge server: its replicas and cache vanish while
	// crashed and its client population is re-dispatched to the nearest
	// surviving server.
	Server Component = iota
	// Origin is a site's primary server: while crashed the site is
	// reachable only through surviving replicas or (stale-risk) cached
	// copies.
	Origin
)

// String renders the component for error messages and tables.
func (c Component) String() string {
	switch c {
	case Server:
		return "server"
	case Origin:
		return "origin"
	default:
		return fmt.Sprintf("component(%d)", uint8(c))
	}
}

// Kind is the event type.
type Kind uint8

// The event kinds.
const (
	// Crash takes the component down at the event time.
	Crash Kind = iota
	// Recover brings a crashed component back. A recovered server
	// returns with an empty cache (its storage was lost), which is why
	// availability dips again briefly until the cache re-warms.
	Recover
	// Slow keeps the component up but adds ExtraMs of processing delay
	// to every request it handles, until a later Recover clears it.
	Slow
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	case Slow:
		return "slow"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one state change of one component at one virtual time.
type Event struct {
	// At is the virtual time in request indices, counted from the first
	// warm-up request of the run (so cfg.Warmup is the first measured
	// request).
	At int
	// Comp and ID name the component.
	Comp Component
	ID   int
	// Kind is what happens.
	Kind Kind
	// ExtraMs is the added per-request delay for Slow events.
	ExtraMs float64
}

// Schedule is an immutable, time-ordered event sequence. Events at equal
// times keep their construction order (stable sort), so a schedule is a
// pure function of its input — the determinism RunWithSchedule builds on.
type Schedule struct {
	events []Event
}

// NewSchedule validates and time-orders the events.
func NewSchedule(events ...Event) (*Schedule, error) {
	es := append([]Event(nil), events...)
	for _, e := range es {
		if e.At < 0 {
			return nil, fmt.Errorf("fault: event at negative time %d", e.At)
		}
		if e.ID < 0 {
			return nil, fmt.Errorf("fault: %s id %d out of range", e.Comp, e.ID)
		}
		switch e.Kind {
		case Crash, Recover:
			if e.ExtraMs != 0 {
				return nil, fmt.Errorf("fault: %s event with ExtraMs %v", e.Kind, e.ExtraMs)
			}
		case Slow:
			if e.ExtraMs <= 0 {
				return nil, fmt.Errorf("fault: slow event with ExtraMs %v", e.ExtraMs)
			}
		default:
			return nil, fmt.Errorf("fault: unknown event kind %d", e.Kind)
		}
	}
	sort.SliceStable(es, func(i, j int) bool { return es[i].At < es[j].At })
	return &Schedule{events: es}, nil
}

// MustSchedule is NewSchedule for known-good event lists.
func MustSchedule(events ...Event) *Schedule {
	s, err := NewSchedule(events...)
	if err != nil {
		panic(err)
	}
	return s
}

// Events returns the time-ordered events. Callers must not modify the
// returned slice.
func (s *Schedule) Events() []Event { return s.events }

// Len is the event count.
func (s *Schedule) Len() int { return len(s.events) }

// MaxID returns the largest component id referenced for comp, or -1.
func (s *Schedule) MaxID(comp Component) int {
	max := -1
	for _, e := range s.events {
		if e.Comp == comp && e.ID > max {
			max = e.ID
		}
	}
	return max
}

// Crashes builds the degenerate schedule equivalent to the static
// FailureSet model: every listed component crashes at time at and never
// recovers. RunWithSchedule over Crashes(warmup, ...) reproduces
// RunWithFailures exactly.
func Crashes(at int, servers, origins []int) *Schedule {
	var events []Event
	for _, i := range servers {
		events = append(events, Event{At: at, Comp: Server, ID: i, Kind: Crash})
	}
	for _, j := range origins {
		events = append(events, Event{At: at, Comp: Origin, ID: j, Kind: Crash})
	}
	return MustSchedule(events...)
}

// RandomConfig parameterizes a random churn draw.
type RandomConfig struct {
	// Servers and Origins are the population sizes.
	Servers, Origins int
	// ServerCrashes / OriginCrashes are how many distinct components of
	// each kind crash.
	ServerCrashes, OriginCrashes int
	// CrashFrom/CrashTo bound the uniform crash-time window (virtual
	// time, inclusive-exclusive).
	CrashFrom, CrashTo int
	// Downtime is how long a crashed component stays down before its
	// Recover event; 0 means it never recovers.
	Downtime int
}

// Random draws a churn schedule deterministically from r: which
// components crash (distinct, via Perm) and when (uniform in the crash
// window). Equal seeds give bit-identical schedules.
func Random(cfg RandomConfig, r *xrand.Source) (*Schedule, error) {
	switch {
	case cfg.ServerCrashes < 0 || cfg.OriginCrashes < 0 || cfg.Downtime < 0:
		return nil, fmt.Errorf("fault: negative churn parameter")
	case cfg.ServerCrashes > cfg.Servers:
		return nil, fmt.Errorf("fault: %d server crashes among %d servers", cfg.ServerCrashes, cfg.Servers)
	case cfg.OriginCrashes > cfg.Origins:
		return nil, fmt.Errorf("fault: %d origin crashes among %d origins", cfg.OriginCrashes, cfg.Origins)
	case cfg.CrashFrom < 0 || cfg.CrashTo < cfg.CrashFrom:
		return nil, fmt.Errorf("fault: crash window [%d,%d)", cfg.CrashFrom, cfg.CrashTo)
	}
	at := func() int {
		if cfg.CrashTo == cfg.CrashFrom {
			return cfg.CrashFrom
		}
		return cfg.CrashFrom + r.Intn(cfg.CrashTo-cfg.CrashFrom)
	}
	var events []Event
	add := func(comp Component, id int) {
		t := at()
		events = append(events, Event{At: t, Comp: comp, ID: id, Kind: Crash})
		if cfg.Downtime > 0 {
			events = append(events, Event{At: t + cfg.Downtime, Comp: comp, ID: id, Kind: Recover})
		}
	}
	if cfg.ServerCrashes > 0 {
		perm := r.Perm(cfg.Servers)
		for _, i := range perm[:cfg.ServerCrashes] {
			add(Server, i)
		}
	}
	if cfg.OriginCrashes > 0 {
		perm := r.Perm(cfg.Origins)
		for _, j := range perm[:cfg.OriginCrashes] {
			add(Origin, j)
		}
	}
	return NewSchedule(events...)
}
