package fault

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/xrand"
)

func TestNewScheduleValidatesAndOrders(t *testing.T) {
	bad := []Event{
		{At: -1, Comp: Server, ID: 0, Kind: Crash},
		{At: 0, Comp: Server, ID: -1, Kind: Crash},
		{At: 0, Comp: Server, ID: 0, Kind: Crash, ExtraMs: 5},
		{At: 0, Comp: Server, ID: 0, Kind: Recover, ExtraMs: 5},
		{At: 0, Comp: Server, ID: 0, Kind: Slow},
		{At: 0, Comp: Server, ID: 0, Kind: Slow, ExtraMs: -1},
		{At: 0, Comp: Server, ID: 0, Kind: Kind(99)},
	}
	for _, e := range bad {
		if _, err := NewSchedule(e); err == nil {
			t.Errorf("NewSchedule(%+v): want error", e)
		}
	}

	s, err := NewSchedule(
		Event{At: 30, Comp: Origin, ID: 1, Kind: Crash},
		Event{At: 10, Comp: Server, ID: 2, Kind: Crash},
		Event{At: 30, Comp: Origin, ID: 1, Kind: Recover}, // same time: construction order kept
		Event{At: 20, Comp: Server, ID: 2, Kind: Recover},
	)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Events()
	for i := 1; i < len(got); i++ {
		if got[i].At < got[i-1].At {
			t.Fatalf("events not time-ordered: %+v", got)
		}
	}
	if got[2].Kind != Crash || got[3].Kind != Recover {
		t.Fatalf("equal-time events reordered: %+v", got[2:])
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.MaxID(Server) != 2 || s.MaxID(Origin) != 1 {
		t.Fatalf("MaxID = (%d, %d), want (2, 1)", s.MaxID(Server), s.MaxID(Origin))
	}
	if empty := MustSchedule(); empty.MaxID(Server) != -1 {
		t.Fatalf("empty MaxID = %d, want -1", empty.MaxID(Server))
	}
}

func TestCrashesDegenerateSchedule(t *testing.T) {
	s := Crashes(100, []int{3, 1}, []int{0})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, e := range s.Events() {
		if e.At != 100 || e.Kind != Crash {
			t.Fatalf("unexpected event %+v", e)
		}
	}
}

func TestRandomDeterministicAndBounded(t *testing.T) {
	cfg := RandomConfig{
		Servers: 20, Origins: 8,
		ServerCrashes: 5, OriginCrashes: 2,
		CrashFrom: 50, CrashTo: 150, Downtime: 40,
	}
	a, err := Random(cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("equal seeds produced different schedules")
	}
	crashed := map[Component]map[int]bool{Server: {}, Origin: {}}
	for _, e := range a.Events() {
		switch e.Kind {
		case Crash:
			if e.At < cfg.CrashFrom || e.At >= cfg.CrashTo {
				t.Fatalf("crash at %d outside [%d,%d)", e.At, cfg.CrashFrom, cfg.CrashTo)
			}
			if crashed[e.Comp][e.ID] {
				t.Fatalf("%s %d crashed twice", e.Comp, e.ID)
			}
			crashed[e.Comp][e.ID] = true
		case Recover:
		default:
			t.Fatalf("unexpected kind %v", e.Kind)
		}
	}
	if len(crashed[Server]) != 5 || len(crashed[Origin]) != 2 {
		t.Fatalf("crashed %d servers, %d origins; want 5, 2",
			len(crashed[Server]), len(crashed[Origin]))
	}

	for _, bad := range []RandomConfig{
		{Servers: 2, ServerCrashes: 3},
		{Origins: 1, OriginCrashes: 2},
		{Servers: 1, ServerCrashes: -1},
		{CrashFrom: 10, CrashTo: 5},
	} {
		if _, err := Random(bad, xrand.New(1)); err == nil {
			t.Errorf("Random(%+v): want error", bad)
		}
	}
}

func TestInjectorModes(t *testing.T) {
	inj := NewInjector()
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	h := inj.Wrap(ok)

	get := func() *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/x", nil))
		return w
	}

	if w := get(); w.Code != http.StatusOK {
		t.Fatalf("pass-through: code %d", w.Code)
	}
	inj.Set(ModeError, 0)
	if w := get(); w.Code != http.StatusServiceUnavailable || w.Header().Get("X-Cdn-Fault") == "" {
		t.Fatalf("error mode: code %d, fault header %q", w.Code, w.Header().Get("X-Cdn-Fault"))
	}
	inj.Set(ModeLatency, 5*time.Millisecond)
	start := time.Now()
	if w := get(); w.Code != http.StatusOK {
		t.Fatalf("latency mode: code %d", w.Code)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("latency mode returned after %v, want >= 5ms", d)
	}
	inj.Set(ModeOff, 0)
	if w := get(); w.Code != http.StatusOK {
		t.Fatalf("off again: code %d", w.Code)
	}
}

func TestParseMode(t *testing.T) {
	for _, m := range []Mode{ModeOff, ModeError, ModeLatency, ModeBlackhole} {
		got, ok := ParseMode(m.String())
		if !ok || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, ok)
		}
	}
	if _, ok := ParseMode("bogus"); ok {
		t.Fatal("ParseMode accepted bogus mode")
	}
}
