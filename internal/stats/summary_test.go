package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("empty summary N = %d", s.N)
	}
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("std %v, want sqrt(2)", s.Std)
	}
	if s.P50 != 3 {
		t.Fatalf("median %v, want 3", s.P50)
	}
}

func TestQuantileEdges(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if Quantile(xs, 0) != 10 || Quantile(xs, 1) != 40 {
		t.Fatal("quantile endpoints wrong")
	}
	if got := Quantile(xs, 0.5); got != 25 {
		t.Fatalf("median of 4 points = %v, want 25 (interpolated)", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("quantile of empty sample should be NaN")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		xs := append([]float64(nil), raw...)
		sort.Float64s(xs)
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{20, 20, 40, 60, 60, 60, 100, 120, 140, 200})
	if got := c.At(19); got != 0 {
		t.Errorf("At(19) = %v, want 0", got)
	}
	if got := c.At(20); got != 0.2 {
		t.Errorf("At(20) = %v, want 0.2", got)
	}
	if got := c.At(60); got != 0.6 {
		t.Errorf("At(60) = %v, want 0.6", got)
	}
	if got := c.At(1e9); got != 1 {
		t.Errorf("At(inf) = %v, want 1", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	c := NewCDF([]float64{5, 3, 8, 8, 1, 9, 2, 2, 7})
	prev := 0.0
	for _, p := range c.Points {
		if p.Frac < prev {
			t.Fatalf("CDF decreases at %v", p.X)
		}
		prev = p.Frac
	}
	if prev != 1 {
		t.Fatalf("CDF tops out at %v, want 1", prev)
	}
}

func TestCDFGrid(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30})
	g := c.Grid(30, 3)
	if len(g) != 4 {
		t.Fatalf("grid has %d points, want 4", len(g))
	}
	wantX := []float64{0, 10, 20, 30}
	wantF := []float64{0, 1.0 / 3, 2.0 / 3, 1}
	for i := range g {
		if g[i].X != wantX[i] || math.Abs(g[i].Frac-wantF[i]) > 1e-12 {
			t.Errorf("grid[%d] = %+v, want {%v %v}", i, g[i], wantX[i], wantF[i])
		}
	}
}

func TestCDFGridPreservesMonotonicityProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Abs(v))
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		g := c.Grid(1000, 20)
		for i := 1; i < len(g); i++ {
			if g[i].Frac < g[i-1].Frac {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-5, 0, 9.99, 10, 25, 49, 50, 1000} {
		h.Add(x)
	}
	if h.Total != 8 {
		t.Fatalf("total %d, want 8", h.Total)
	}
	if h.Counts[0] != 3 { // -5 (clamped), 0, 9.99
		t.Errorf("bin 0 count %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 3 { // 49 is bin 4; 50 and 1000 clamp to bin 4
		t.Errorf("bin 4 count %d, want 3", h.Counts[4])
	}
	if got := h.Frac(0); got != 3.0/8 {
		t.Errorf("Frac(0) = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 0, 5) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Fatalf("Mean = %v, want 4", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}
