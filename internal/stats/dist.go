// Package stats provides the probability distributions and descriptive
// statistics used throughout the reproduction: the Zipf-like object
// popularity of §3.2, the truncated-normal per-server site weights and the
// SURGE-style heavy-tailed object sizes of §5.1, and the response-time CDF
// machinery of §5.2.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xrand"
)

// Zipf is a Zipf-like distribution over L consecutive global ranks
// starting at Start (normally 1), with exponent theta:
//
//	P(local rank k) = alpha / (Start+k-1)^theta,
//	alpha = 1 / sum_{k=1..L} (Start+k-1)^-theta.
//
// With Start = 1 this is exactly the distribution of Equation (1) in the
// paper. Start > 1 gives the conditional distribution of a popularity
// band — the tail clusters of the per-cluster replication extension
// (Chen et al. [6]). The type precomputes the normalization constant and
// the CDF so that point-mass queries are O(1) and sampling is O(log L).
type Zipf struct {
	L     int
	Start int
	Theta float64
	alpha float64
	pmf   []float64 // pmf[k-1] = P(local rank k), precomputed
	cdf   []float64 // cdf[k-1] = P(local rank <= k)
}

// NewZipf builds a Zipf-like distribution over ranks 1..L. It panics if
// L < 1 or theta < 0: both indicate a configuration bug upstream.
func NewZipf(L int, theta float64) *Zipf {
	return NewZipfRange(1, L, theta)
}

// NewZipfRange builds the conditional Zipf-like distribution over the L
// global ranks start..start+L-1. It panics on invalid parameters.
func NewZipfRange(start, L int, theta float64) *Zipf {
	if start < 1 {
		panic(fmt.Sprintf("stats: NewZipfRange with start=%d", start))
	}
	if L < 1 {
		panic(fmt.Sprintf("stats: NewZipfRange with L=%d", L))
	}
	if theta < 0 {
		panic(fmt.Sprintf("stats: NewZipfRange with theta=%v", theta))
	}
	z := &Zipf{L: L, Start: start, Theta: theta}
	sum := 0.0
	z.pmf = make([]float64, L)
	z.cdf = make([]float64, L)
	for k := 1; k <= L; k++ {
		z.pmf[k-1] = math.Pow(float64(start+k-1), -theta)
		sum += z.pmf[k-1]
		z.cdf[k-1] = sum
	}
	z.alpha = 1 / sum
	for i := range z.cdf {
		z.pmf[i] *= z.alpha
		z.cdf[i] *= z.alpha
	}
	// Guard against floating-point drift: the last CDF entry must be 1.
	z.cdf[L-1] = 1
	return z
}

// Alpha returns the normalization constant alpha of Equation (1).
func (z *Zipf) Alpha() float64 { return z.alpha }

// PMF returns P(local rank k), for k in 1..L. It is a table lookup: the
// model's inner loops call it billions of times.
func (z *Zipf) PMF(k int) float64 {
	if k < 1 || k > z.L {
		return 0
	}
	return z.pmf[k-1]
}

// CDF returns P(rank <= k). CDF(0) = 0 and CDF(k>=L) = 1.
func (z *Zipf) CDF(k int) float64 {
	switch {
	case k <= 0:
		return 0
	case k >= z.L:
		return 1
	default:
		return z.cdf[k-1]
	}
}

// TopMass returns the cumulative probability of the n most popular ranks,
// i.e. CDF(n). It is the p_B quantity of Equation (2) when the cache holds
// objects of a single site.
func (z *Zipf) TopMass(n int) float64 { return z.CDF(n) }

// Sample draws a rank in 1..L by inverse-CDF binary search.
func (z *Zipf) Sample(r *xrand.Source) int {
	u := r.Float64()
	// sort.SearchFloat64s finds the first index with cdf[i] >= u.
	return sort.SearchFloat64s(z.cdf, u) + 1
}

// TruncNormal samples from a normal distribution with the given mean and
// standard deviation, truncated (by rejection) to [mean-3*sigma,
// mean+3*sigma] as prescribed for per-server site popularity in §5.1.
type TruncNormal struct {
	Mean, Sigma float64
}

// Sample draws one truncated-normal variate. With a ±3σ window the
// acceptance probability is ~99.7%, so rejection terminates quickly.
func (t TruncNormal) Sample(r *xrand.Source) float64 {
	if t.Sigma <= 0 {
		return t.Mean
	}
	lo, hi := t.Mean-3*t.Sigma, t.Mean+3*t.Sigma
	for {
		v := t.Mean + t.Sigma*r.NormFloat64()
		if v >= lo && v <= hi {
			return v
		}
	}
}

// Lognormal is the SURGE body distribution for web object sizes.
// Mu and Sigma parameterize the underlying normal of ln(X).
type Lognormal struct {
	Mu, Sigma float64
}

// Sample draws one lognormal variate.
func (l Lognormal) Sample(r *xrand.Source) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean returns the analytic mean exp(mu + sigma^2/2).
func (l Lognormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// BoundedPareto is the SURGE tail distribution for web object sizes:
// a Pareto with shape Alpha and scale K, truncated above at H so that the
// synthetic site sizes have finite variance and reproducible sums.
type BoundedPareto struct {
	K, H  float64 // lower and upper bounds, K < H
	Alpha float64 // shape, > 0
}

// Sample draws one bounded-Pareto variate by inverse transform.
func (p BoundedPareto) Sample(r *xrand.Source) float64 {
	u := r.Float64()
	ka := math.Pow(p.K, p.Alpha)
	ha := math.Pow(p.H, p.Alpha)
	// Inverse CDF of the bounded Pareto.
	x := math.Pow(-(u*ha-u*ka-ha)/(ha*ka), -1/p.Alpha)
	if x < p.K {
		x = p.K
	}
	if x > p.H {
		x = p.H
	}
	return x
}

// Mean returns the analytic mean of the bounded Pareto.
func (p BoundedPareto) Mean() float64 {
	if p.Alpha == 1 {
		ka := p.K
		ha := p.H
		return ka * ha / (ha - ka) * math.Log(ha/ka)
	}
	a := p.Alpha
	ka := math.Pow(p.K, a)
	num := ka / (1 - math.Pow(p.K/p.H, a))
	return num * a / (a - 1) * (math.Pow(p.K, 1-a) - math.Pow(p.H, 1-a))
}
