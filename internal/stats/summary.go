package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	n := float64(len(xs))
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance < 0 {
		variance = 0
	}
	s.Std = math.Sqrt(variance)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Quantile(sorted, 0.50)
	s.P90 = Quantile(sorted, 0.90)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample using linear interpolation between closest ranks.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution function over a sample,
// evaluated on a fixed grid of points. It is the representation the
// paper's Figures 3-5 plot: fraction of requests satisfied within a delay.
type CDF struct {
	Points []CDFPoint
}

// CDFPoint is one (x, F(x)) pair of an empirical CDF.
type CDFPoint struct {
	X    float64 // value (e.g. response time in ms)
	Frac float64 // fraction of samples <= X
}

// NewCDF builds an empirical CDF of xs evaluated at each distinct sample
// value. The input is not modified.
func NewCDF(xs []float64) CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var c CDF
	n := float64(len(sorted))
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		c.Points = append(c.Points, CDFPoint{X: sorted[i], Frac: float64(j) / n})
		i = j
	}
	return c
}

// At returns F(x): the fraction of samples <= x.
func (c CDF) At(x float64) float64 {
	// Binary search for the last point with X <= x.
	lo, hi := 0, len(c.Points)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.Points[mid].X <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return c.Points[lo-1].Frac
}

// Grid resamples the CDF onto evenly spaced x values from 0 to max,
// inclusive, producing steps+1 points. This is how the experiment harness
// prints comparable curves for the three content-delivery mechanisms.
func (c CDF) Grid(max float64, steps int) []CDFPoint {
	if steps < 1 {
		steps = 1
	}
	out := make([]CDFPoint, 0, steps+1)
	for i := 0; i <= steps; i++ {
		x := max * float64(i) / float64(steps)
		out = append(out, CDFPoint{X: x, Frac: c.At(x)})
	}
	return out
}

// String renders the CDF points as "x:frac" pairs, mainly for debugging.
func (c CDF) String() string {
	var b strings.Builder
	for i, p := range c.Points {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.0f:%.3f", p.X, p.Frac)
	}
	return b.String()
}

// Histogram counts samples into fixed-width bins; used by the CLI tools to
// sketch distributions without plotting.
type Histogram struct {
	Lo, Width float64
	Counts    []int
	Total     int
}

// NewHistogram builds a histogram with nbins bins of the given width
// starting at lo. Samples below lo clamp to the first bin; samples at or
// beyond the last edge clamp to the last bin.
func NewHistogram(lo, width float64, nbins int) *Histogram {
	if nbins < 1 {
		panic("stats: NewHistogram with nbins < 1")
	}
	if width <= 0 {
		panic("stats: NewHistogram with non-positive width")
	}
	return &Histogram{Lo: lo, Width: width, Counts: make([]int, nbins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / h.Width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.Total++
}

// Frac returns the fraction of samples in bin i.
func (h *Histogram) Frac(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// Mean of a sample; NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
