package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestZipfPMFSumsToOne(t *testing.T) {
	for _, tc := range []struct {
		L     int
		theta float64
	}{{1, 1}, {10, 0}, {100, 0.7}, {1000, 1.0}, {5000, 1.2}} {
		z := NewZipf(tc.L, tc.theta)
		sum := 0.0
		for k := 1; k <= tc.L; k++ {
			sum += z.PMF(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("L=%d theta=%v: PMF sums to %v", tc.L, tc.theta, sum)
		}
	}
}

func TestZipfPMFMonotone(t *testing.T) {
	z := NewZipf(500, 0.9)
	for k := 2; k <= 500; k++ {
		if z.PMF(k) > z.PMF(k-1) {
			t.Fatalf("PMF increased at rank %d", k)
		}
	}
}

func TestZipfCDFProperties(t *testing.T) {
	z := NewZipf(100, 1.0)
	if z.CDF(0) != 0 {
		t.Error("CDF(0) != 0")
	}
	if z.CDF(100) != 1 {
		t.Error("CDF(L) != 1")
	}
	if z.CDF(200) != 1 {
		t.Error("CDF(>L) != 1")
	}
	for k := 1; k <= 100; k++ {
		if z.CDF(k) < z.CDF(k-1) {
			t.Fatalf("CDF decreased at %d", k)
		}
		want := z.CDF(k-1) + z.PMF(k)
		if math.Abs(z.CDF(k)-want) > 1e-9 {
			t.Fatalf("CDF(%d)=%v inconsistent with PMF (want %v)", k, z.CDF(k), want)
		}
	}
}

func TestZipfThetaZeroIsUniform(t *testing.T) {
	z := NewZipf(50, 0)
	for k := 1; k <= 50; k++ {
		if math.Abs(z.PMF(k)-0.02) > 1e-12 {
			t.Fatalf("theta=0 PMF(%d)=%v, want 0.02", k, z.PMF(k))
		}
	}
}

func TestZipfSampleMatchesPMF(t *testing.T) {
	z := NewZipf(20, 1.0)
	r := xrand.New(42)
	const n = 200000
	counts := make([]int, 21)
	for i := 0; i < n; i++ {
		k := z.Sample(r)
		if k < 1 || k > 20 {
			t.Fatalf("sample %d out of range", k)
		}
		counts[k]++
	}
	for k := 1; k <= 20; k++ {
		got := float64(counts[k]) / n
		want := z.PMF(k)
		// 5-sigma binomial tolerance.
		tol := 5 * math.Sqrt(want*(1-want)/n)
		if math.Abs(got-want) > tol {
			t.Errorf("rank %d: empirical %v vs pmf %v (tol %v)", k, got, want, tol)
		}
	}
}

func TestZipfTopMass(t *testing.T) {
	z := NewZipf(100, 1.0)
	if got := z.TopMass(100); got != 1 {
		t.Errorf("TopMass(L) = %v, want 1", got)
	}
	if z.TopMass(10) <= z.TopMass(5) {
		t.Error("TopMass not increasing")
	}
	// For theta=1, the top 10% of ranks should hold well over 10% of mass.
	if z.TopMass(10) < 0.4 {
		t.Errorf("TopMass(10) = %v, suspiciously small for theta=1", z.TopMass(10))
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(10, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTruncNormalBounds(t *testing.T) {
	tn := TruncNormal{Mean: 0.02, Sigma: 0.005}
	r := xrand.New(7)
	for i := 0; i < 50000; i++ {
		v := tn.Sample(r)
		if v < 0.02-3*0.005-1e-12 || v > 0.02+3*0.005+1e-12 {
			t.Fatalf("sample %v outside mu±3sigma", v)
		}
	}
}

func TestTruncNormalMean(t *testing.T) {
	tn := TruncNormal{Mean: 1.0, Sigma: 0.25}
	r := xrand.New(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += tn.Sample(r)
	}
	if mean := sum / n; math.Abs(mean-1.0) > 0.01 {
		t.Fatalf("truncated normal mean %v, want ~1.0", mean)
	}
}

func TestTruncNormalZeroSigma(t *testing.T) {
	tn := TruncNormal{Mean: 5, Sigma: 0}
	if v := tn.Sample(xrand.New(1)); v != 5 {
		t.Fatalf("zero-sigma sample %v, want 5", v)
	}
}

func TestLognormalMean(t *testing.T) {
	l := Lognormal{Mu: 9.357, Sigma: 1.318} // SURGE body parameters
	r := xrand.New(21)
	sum := 0.0
	const n = 400000
	for i := 0; i < n; i++ {
		sum += l.Sample(r)
	}
	got := sum / n
	want := l.Mean()
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("lognormal empirical mean %v vs analytic %v", got, want)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	p := BoundedPareto{K: 133000, H: 1e8, Alpha: 1.1}
	r := xrand.New(33)
	for i := 0; i < 100000; i++ {
		v := p.Sample(r)
		if v < p.K || v > p.H {
			t.Fatalf("bounded Pareto sample %v outside [%v,%v]", v, p.K, p.H)
		}
	}
}

func TestBoundedParetoMean(t *testing.T) {
	p := BoundedPareto{K: 1000, H: 1e6, Alpha: 1.5}
	r := xrand.New(35)
	sum := 0.0
	const n = 400000
	for i := 0; i < n; i++ {
		sum += p.Sample(r)
	}
	got := sum / n
	want := p.Mean()
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("bounded Pareto empirical mean %v vs analytic %v", got, want)
	}
}

func TestBoundedParetoHeavyTail(t *testing.T) {
	// The tail should produce values far above the median — that is its
	// entire role in SURGE size modelling.
	p := BoundedPareto{K: 133000, H: 1e9, Alpha: 1.1}
	r := xrand.New(37)
	over := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if p.Sample(r) > 10*p.K {
			over++
		}
	}
	if over == 0 {
		t.Fatal("no samples beyond 10x the scale: tail too light")
	}
	if over > n/2 {
		t.Fatalf("%d/%d samples beyond 10x the scale: tail too heavy", over, n)
	}
}

func TestZipfRangeNormalized(t *testing.T) {
	z := NewZipfRange(101, 50, 1.0)
	sum := 0.0
	for k := 1; k <= 50; k++ {
		sum += z.PMF(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("range PMF sums to %v", sum)
	}
	if z.Start != 101 || z.L != 50 {
		t.Fatalf("range fields %d/%d", z.Start, z.L)
	}
}

func TestZipfRangeMatchesConditional(t *testing.T) {
	// The band distribution must equal the full distribution
	// conditioned on the band: PMF_range(k) = PMF(start+k-1)/bandMass.
	full := NewZipf(200, 1.1)
	band := NewZipfRange(51, 50, 1.1)
	bandMass := full.CDF(100) - full.CDF(50)
	for k := 1; k <= 50; k++ {
		want := full.PMF(50+k) / bandMass
		if got := band.PMF(k); math.Abs(got-want) > 1e-12 {
			t.Fatalf("band PMF(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestZipfRangeTailFlatterThanHead(t *testing.T) {
	head := NewZipfRange(1, 100, 1.0)
	tail := NewZipfRange(901, 100, 1.0)
	// Within the tail band, popularity is nearly uniform: the ratio of
	// first to last PMF is far smaller than in the head band.
	headRatio := head.PMF(1) / head.PMF(100)
	tailRatio := tail.PMF(1) / tail.PMF(100)
	if tailRatio >= headRatio/10 {
		t.Fatalf("tail band ratio %v not much flatter than head %v", tailRatio, headRatio)
	}
}

func TestZipfRangeSampling(t *testing.T) {
	z := NewZipfRange(11, 20, 1.0)
	r := xrand.New(3)
	for i := 0; i < 10000; i++ {
		k := z.Sample(r)
		if k < 1 || k > 20 {
			t.Fatalf("sample %d out of range", k)
		}
	}
}

func TestZipfRangePanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewZipfRange(0, 10, 1) },
		func() { NewZipfRange(1, 0, 1) },
		func() { NewZipfRange(1, 10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestZipfSampleInRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		z := NewZipf(1+r.Intn(300), float64(r.Intn(20))/10)
		for i := 0; i < 100; i++ {
			k := z.Sample(r)
			if k < 1 || k > z.L {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
