package graph

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestBasicEdges(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("N=%d M=%d, want 4/2", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge missing a direction")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge")
	}
	if g.Degree(1) != 2 {
		t.Fatalf("degree(1)=%d, want 2", g.Degree(1))
	}
}

func TestParallelEdgeKeepsCheapest(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 5)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 1, 9)
	if g.M() != 1 {
		t.Fatalf("M=%d, want 1 after collapsing parallels", g.M())
	}
	if d := g.Dijkstra(0)[1]; d != 2 {
		t.Fatalf("dist=%v, want 2 (cheapest parallel edge)", d)
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []func(){
		func() { New(3).AddEdge(1, 1, 1) },
		func() { New(3).AddEdge(0, 3, 1) },
		func() { New(3).AddEdge(-1, 0, 1) },
		func() { New(3).AddEdge(0, 1, 0) },
		func() { New(3).AddEdge(0, 1, -2) },
		func() { New(3).AddEdge(0, 1, math.NaN()) },
		func() { New(-1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDijkstraLine(t *testing.T) {
	// 0-1-2-3 line with unit weights: dist(0,k) = k.
	g := New(4)
	for i := 0; i < 3; i++ {
		g.AddEdge(i, i+1, 1)
	}
	d := g.Dijkstra(0)
	for k := 0; k < 4; k++ {
		if d[k] != float64(k) {
			t.Fatalf("dist(0,%d)=%v, want %d", k, d[k], k)
		}
	}
}

func TestDijkstraPrefersLightPath(t *testing.T) {
	// Direct heavy edge vs two-hop light path.
	g := New(3)
	g.AddEdge(0, 2, 10)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	if d := g.Dijkstra(0)[2]; d != 2 {
		t.Fatalf("dist=%v, want 2", d)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	d := g.Dijkstra(0)
	if !math.IsInf(d[2], 1) {
		t.Fatalf("dist to isolated node = %v, want +Inf", d[2])
	}
}

func TestConnected(t *testing.T) {
	g := New(3)
	if g.Connected() {
		t.Fatal("edgeless 3-node graph reported connected")
	}
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	if !g.Connected() {
		t.Fatal("path graph reported disconnected")
	}
	if !New(0).Connected() || !New(1).Connected() {
		t.Fatal("trivial graphs should be connected")
	}
}

func TestShortestPathsSymmetric(t *testing.T) {
	// C(i,j) = C(j,i) is assumed by the paper (§3); verify on a random
	// connected graph.
	r := xrand.New(4)
	g := randomConnected(r, 40, 80)
	d := g.ShortestPaths()
	for i := 0; i < g.N(); i++ {
		if d[i][i] != 0 {
			t.Fatalf("d[%d][%d]=%v, want 0", i, i, d[i][i])
		}
		for j := 0; j < g.N(); j++ {
			if d[i][j] != d[j][i] {
				t.Fatalf("asymmetry: d[%d][%d]=%v d[%d][%d]=%v", i, j, d[i][j], j, i, d[j][i])
			}
		}
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 5 + r.Intn(30)
		g := randomConnected(r, n, 2*n)
		d := g.ShortestPaths()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					if d[i][j] > d[i][k]+d[k][j]+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraMatchesBellmanFordProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 4 + r.Intn(25)
		g := randomConnected(r, n, 3*n)
		want := bellmanFord(g, 0)
		got := g.Dijkstra(0)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestShortestPathsFrom(t *testing.T) {
	g := New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1, 1)
	}
	rows := g.ShortestPathsFrom([]int{2, 4})
	if rows[0][0] != 2 || rows[1][0] != 4 {
		t.Fatalf("rows mismatch: %v", rows)
	}
}

func TestDiameter(t *testing.T) {
	g := New(4)
	for i := 0; i < 3; i++ {
		g.AddEdge(i, i+1, 1)
	}
	if d := g.Diameter(); d != 3 {
		t.Fatalf("diameter %v, want 3", d)
	}
	disc := New(3)
	disc.AddEdge(0, 1, 1)
	if d := disc.Diameter(); !math.IsInf(d, 1) {
		t.Fatalf("disconnected diameter %v, want +Inf", d)
	}
	if d := New(1).Diameter(); d != 0 {
		t.Fatalf("singleton diameter %v, want 0", d)
	}
}

// randomConnected builds a random connected graph: a random spanning tree
// plus extra random edges, with weights in {1..4}.
func randomConnected(r *xrand.Source, n, extra int) *Graph {
	g := New(n)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		w := float64(1 + r.Intn(4))
		g.AddEdge(perm[i], perm[r.Intn(i)], w)
	}
	for e := 0; e < extra; e++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(u, v, float64(1+r.Intn(4)))
		}
	}
	return g
}

// bellmanFord is an O(VE) reference implementation for cross-checking.
func bellmanFord(g *Graph, src int) []float64 {
	dist := make([]float64, g.N())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < g.N(); iter++ {
		changed := false
		for u := 0; u < g.N(); u++ {
			for _, e := range g.Neighbors(u) {
				if nd := dist[u] + e.Weight; nd < dist[e.To] {
					dist[e.To] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func BenchmarkDijkstra560(b *testing.B) {
	r := xrand.New(1)
	g := randomConnected(r, 560, 1200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(i % g.N())
	}
}

// TestBFSMatchesDijkstra pins the unit-weight fast path: on a hop-count
// graph the BFS branch of shortestFrom must produce bitwise the same
// distances as the Dijkstra branch. The test builds random unit-weight
// graphs and runs both branches on the same graph by toggling the
// nonUnit counter, which is exactly the dispatch condition.
func TestBFSMatchesDijkstra(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		g := New(n)
		// Random spanning tree plus extra edges, all weight 1.
		for v := 1; v < n; v++ {
			g.AddEdge(v, rng.Intn(v), 1)
		}
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1)
			}
		}
		if !g.UnitWeight() {
			t.Fatal("unit-weight graph reports UnitWeight() == false")
		}
		for src := 0; src < n; src++ {
			bfs := g.Dijkstra(src)
			g.nonUnit = 1 // force the heap branch on the same adjacency
			dij := g.Dijkstra(src)
			g.nonUnit = 0
			for v := range bfs {
				if bfs[v] != dij[v] {
					t.Fatalf("trial %d src %d node %d: BFS %v != Dijkstra %v", trial, src, v, bfs[v], dij[v])
				}
			}
		}
	}
}

// TestUnitWeightTracking exercises the nonUnit bookkeeping through
// inserts and parallel-edge weight updates.
func TestUnitWeightTracking(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	if !g.UnitWeight() {
		t.Fatal("all-unit graph not recognized")
	}
	g.AddEdge(2, 3, 2.5)
	if g.UnitWeight() {
		t.Fatal("weight-2.5 edge not counted")
	}
	// Parallel re-add with a smaller non-unit weight keeps it non-unit.
	g.AddEdge(2, 3, 2)
	if g.UnitWeight() {
		t.Fatal("weight-2 edge not counted")
	}
	// Lowering the edge to weight 1 restores the hop-count invariant.
	g.AddEdge(3, 2, 1)
	if !g.UnitWeight() {
		t.Fatal("edge lowered to 1 still counted as non-unit")
	}
	// Re-adding with a *larger* weight must not disturb the count.
	g.AddEdge(0, 1, 5)
	if !g.UnitWeight() {
		t.Fatal("losing parallel insert disturbed the unit-weight count")
	}
}
