// Package graph implements the undirected weighted graphs and the
// shortest-path machinery the CDN model is built on. The paper's
// communication cost C(i, j) between two nodes is "the cumulative cost of
// the shortest path between the two nodes (e.g., the total number of
// hops)" (§3); we compute it once with Dijkstra from every node of
// interest, exactly as the authors do for their GT-ITM topology.
package graph

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Graph is an undirected weighted graph over nodes 0..N-1 stored as
// adjacency lists. Parallel edges are collapsed to the cheapest one;
// self-loops are rejected.
type Graph struct {
	n   int
	adj [][]Edge
	// nonUnit counts directed edge halves whose weight differs from 1.
	// When it is zero the graph is a pure hop-count graph and every
	// shortest-path query takes the BFS fast path, which produces
	// bit-identical distances to Dijkstra (both accumulate exact
	// integer-valued float64 sums) in O(V+E) without a priority queue.
	nonUnit int
}

// Edge is one directed half of an undirected edge.
type Edge struct {
	To     int
	Weight float64
}

// New creates a graph with n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: New(%d)", n))
	}
	return &Graph{n: n, adj: make([][]Edge, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total / 2
}

// AddEdge inserts an undirected edge {u, v} with the given positive
// weight. If the edge already exists, the smaller weight wins. It panics
// on self-loops, out-of-range endpoints or non-positive weights — all of
// which indicate topology-generator bugs.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n))
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("graph: edge {%d,%d} has invalid weight %v", u, v, w))
	}
	if g.updateIfExists(u, v, w) {
		g.updateIfExists(v, u, w)
		return
	}
	if w != 1 {
		g.nonUnit += 2
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Weight: w})
	g.adj[v] = append(g.adj[v], Edge{To: u, Weight: w})
}

func (g *Graph) updateIfExists(u, v int, w float64) bool {
	for i := range g.adj[u] {
		if g.adj[u][i].To == v {
			if w < g.adj[u][i].Weight {
				if g.adj[u][i].Weight != 1 {
					g.nonUnit--
				}
				if w != 1 {
					g.nonUnit++
				}
				g.adj[u][i].Weight = w
			}
			return true
		}
	}
	return false
}

// UnitWeight reports whether every edge has weight exactly 1, i.e. the
// graph measures pure hop counts.
func (g *Graph) UnitWeight() bool { return g.nonUnit == 0 }

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	for _, e := range g.adj[u] {
		if e.To == v {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of u. The slice is shared; callers
// must not modify it.
func (g *Graph) Neighbors(u int) []Edge { return g.adj[u] }

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Connected reports whether the graph is connected (true for empty and
// single-node graphs).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == g.n
}

// Dijkstra computes single-source shortest-path distances from src.
// Unreachable nodes get +Inf. Edge weights are the graph's weights; for
// hop counts build the graph with unit weights. Pure hop-count graphs
// take a BFS fast path with bit-identical results (both algorithms
// accumulate the same exact integer-valued float64 distances).
func (g *Graph) Dijkstra(src int) []float64 {
	var s spScratch
	return g.shortestFrom(src, &s)
}

// spScratch holds the reusable per-worker state of a shortest-path
// sweep: the BFS queue or the Dijkstra priority queue. The distance row
// itself is always freshly allocated because callers keep it.
type spScratch struct {
	queue []int32
	pq    nodeHeap
}

func (g *Graph) shortestFrom(src int, s *spScratch) []float64 {
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	if g.nonUnit == 0 {
		q := append(s.queue[:0], int32(src))
		for head := 0; head < len(q); head++ {
			u := int(q[head])
			nd := dist[u] + 1
			for _, e := range g.adj[u] {
				if math.IsInf(dist[e.To], 1) {
					dist[e.To] = nd
					q = append(q, int32(e.To))
				}
			}
		}
		s.queue = q
		return dist
	}
	pq := append(s.pq[:0], nodeItem{node: src, dist: 0})
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(nodeItem)
		if it.dist > dist[it.node] {
			continue // stale entry
		}
		for _, e := range g.adj[it.node] {
			if nd := it.dist + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(&pq, nodeItem{node: e.To, dist: nd})
			}
		}
	}
	s.pq = pq
	return dist
}

// ShortestPaths computes the full all-pairs distance matrix by running
// Dijkstra from every node, fanned out across CPU cores (each source's
// search is independent and the graph is read-only during the sweep).
func (g *Graph) ShortestPaths() [][]float64 {
	sources := make([]int, g.n)
	for i := range sources {
		sources[i] = i
	}
	return g.ShortestPathsFrom(sources)
}

// ShortestPathsFrom computes the distance rows only for the given source
// nodes, returned in the same order, in parallel. The CDN model only
// needs rows for servers and origins, not for every router.
func (g *Graph) ShortestPathsFrom(sources []int) [][]float64 {
	d := make([][]float64, len(sources))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers <= 1 {
		var s spScratch
		for i, src := range sources {
			d[i] = g.shortestFrom(src, &s)
		}
		return d
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s spScratch
			for i := range next {
				d[i] = g.shortestFrom(sources[i], &s)
			}
		}()
	}
	for i := range sources {
		next <- i
	}
	close(next)
	wg.Wait()
	return d
}

// Diameter returns the largest finite pairwise distance, or +Inf if the
// graph is disconnected, or 0 for graphs with fewer than 2 nodes.
func (g *Graph) Diameter() float64 {
	if g.n < 2 {
		return 0
	}
	max := 0.0
	var s spScratch
	for i := 0; i < g.n; i++ {
		for _, d := range g.shortestFrom(i, &s) {
			if math.IsInf(d, 1) {
				return math.Inf(1)
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// nodeItem / nodeHeap implement the priority queue for Dijkstra.
type nodeItem struct {
	node int
	dist float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
