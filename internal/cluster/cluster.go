// Package cluster implements per-cluster replication, the paper's stated
// future-work comparison (§5.3): "against a per-cluster replication
// scheme hybrid will again be the winner with the latency reduction
// varying in between the per-site replication and the caching case...
// Proving the validity of the above claim is left for future work."
//
// Following Chen et al. [6]'s popularity-based clustering, each site's
// objects are split into clusters of consecutive popularity ranks. A
// cluster becomes an independent placement unit: it has its own byte
// size, its own share of the site's demand (the popularity mass of its
// rank band), and its own origin (the site's primary copy). Placement
// algorithms then run unchanged on a derived core.System whose columns
// are clusters instead of whole sites, and the simulator maps each
// request to the cluster that owns its object.
package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lrumodel"
	"repro/internal/workload"
)

// Unit is one placement unit: a band of consecutive popularity ranks of
// one site.
type Unit struct {
	ID       int
	Site     int
	FromRank int // 1-based, inclusive
	ToRank   int // inclusive
	Bytes    int64
	// Mass is the within-site popularity mass of the band: the
	// fraction of the site's requests that hit this cluster.
	Mass float64
}

// Objects returns the number of objects in the unit.
func (u Unit) Objects() int { return u.ToRank - u.FromRank + 1 }

// Clustering is a partition of every site's catalog into units.
type Clustering struct {
	Units []Unit
	// unitOf[site] maps object rank-1 to the owning unit's ID.
	unitOf [][]int
}

// PopularityClusters partitions each site of w into perSite clusters of
// (nearly) equal object count by consecutive popularity rank — the
// "popularity band" clustering of [6]. perSite = 1 degenerates to
// per-site replication.
func PopularityClusters(w *workload.Workload, perSite int) (*Clustering, error) {
	if perSite < 1 {
		return nil, fmt.Errorf("cluster: perSite = %d", perSite)
	}
	c := &Clustering{unitOf: make([][]int, len(w.Sites))}
	for si, site := range w.Sites {
		L := len(site.Objects)
		n := perSite
		if n > L {
			n = L
		}
		c.unitOf[si] = make([]int, L)
		for ci := 0; ci < n; ci++ {
			from := ci*L/n + 1
			to := (ci + 1) * L / n
			u := Unit{
				ID:       len(c.Units),
				Site:     si,
				FromRank: from,
				ToRank:   to,
				Mass:     site.Zipf.CDF(to) - site.Zipf.CDF(from-1),
			}
			for k := from; k <= to; k++ {
				u.Bytes += site.Objects[k-1]
				c.unitOf[si][k-1] = u.ID
			}
			c.Units = append(c.Units, u)
		}
	}
	return c, nil
}

// UnitOf returns the ID of the unit owning the given object (1-based
// rank) of the given site.
func (c *Clustering) UnitOf(site, object int) int {
	return c.unitOf[site][object-1]
}

// DeriveSystem builds the placement problem over clusters: a core.System
// with one column per unit. Server costs and capacities carry over;
// demand and origin costs are inherited from the unit's site, demand
// scaled by the unit's popularity mass.
func (c *Clustering) DeriveSystem(sys *core.System) *core.System {
	n := sys.N()
	m := len(c.Units)
	d := &core.System{
		CostServer: sys.CostServer,
		CostOrigin: make([][]float64, n),
		SiteBytes:  make([]int64, m),
		Capacity:   sys.Capacity,
		Demand:     make([][]float64, n),
	}
	for _, u := range c.Units {
		d.SiteBytes[u.ID] = u.Bytes
	}
	for i := 0; i < n; i++ {
		d.CostOrigin[i] = make([]float64, m)
		d.Demand[i] = make([]float64, m)
		for _, u := range c.Units {
			d.CostOrigin[i][u.ID] = sys.CostOrigin[i][u.Site]
			d.Demand[i][u.ID] = sys.Demand[i][u.Site] * u.Mass
		}
	}
	return d
}

// Specs returns the analytical-model description of every unit: a
// truncated Zipf band (RankOffset = FromRank-1) with the site's θ and the
// given λ. Used to run the hybrid algorithm at cluster granularity.
func (c *Clustering) Specs(w *workload.Workload, lambda float64) []lrumodel.SiteSpec {
	specs := make([]lrumodel.SiteSpec, len(c.Units))
	for _, u := range c.Units {
		specs[u.ID] = lrumodel.SiteSpec{
			Objects:    u.Objects(),
			Theta:      w.Sites[u.Site].Zipf.Theta,
			Lambda:     lambda,
			RankOffset: u.FromRank - 1,
		}
	}
	return specs
}
