package cluster

import (
	"math"
	"testing"

	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/workload"
)

func testWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Servers = 6
	cfg.LowSites, cfg.MediumSites, cfg.HighSites = 2, 2, 2
	cfg.ObjectsPerSite = 100
	return workload.MustGenerate(cfg, xrandNew(1))
}

func TestPopularityClustersPartition(t *testing.T) {
	w := testWorkload(t)
	c, err := PopularityClusters(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Units) != 6*4 {
		t.Fatalf("%d units, want 24", len(c.Units))
	}
	for si, site := range w.Sites {
		var bytes int64
		var mass float64
		objects := 0
		prevTo := 0
		for _, u := range c.Units {
			if u.Site != si {
				continue
			}
			if u.FromRank != prevTo+1 {
				t.Fatalf("site %d: cluster starts at %d, want %d", si, u.FromRank, prevTo+1)
			}
			prevTo = u.ToRank
			bytes += u.Bytes
			mass += u.Mass
			objects += u.Objects()
		}
		if prevTo != len(site.Objects) {
			t.Fatalf("site %d: clusters end at %d of %d", si, prevTo, len(site.Objects))
		}
		if bytes != site.Bytes {
			t.Fatalf("site %d: cluster bytes %d != site bytes %d", si, bytes, site.Bytes)
		}
		if objects != len(site.Objects) {
			t.Fatalf("site %d: %d clustered objects", si, objects)
		}
		if math.Abs(mass-1) > 1e-9 {
			t.Fatalf("site %d: cluster mass sums to %v", si, mass)
		}
	}
}

func TestHeadClusterIsHottest(t *testing.T) {
	w := testWorkload(t)
	c, err := PopularityClusters(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Within each site, the first cluster (top ranks) must carry the
	// most popularity mass per object — that is the entire point of
	// popularity clustering.
	for si := range w.Sites {
		var units []Unit
		for _, u := range c.Units {
			if u.Site == si {
				units = append(units, u)
			}
		}
		for k := 1; k < len(units); k++ {
			if units[k].Mass > units[k-1].Mass {
				t.Fatalf("site %d: cluster %d hotter than %d", si, k, k-1)
			}
		}
		// With θ=1 and 4 equal bands over 100 objects the head band
		// holds well over half the site's mass.
		if units[0].Mass < 0.5 {
			t.Fatalf("site %d: head cluster mass %v suspiciously small", si, units[0].Mass)
		}
	}
}

func TestUnitOfConsistent(t *testing.T) {
	w := testWorkload(t)
	c, err := PopularityClusters(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	for si, site := range w.Sites {
		for k := 1; k <= len(site.Objects); k++ {
			u := c.Units[c.UnitOf(si, k)]
			if u.Site != si || k < u.FromRank || k > u.ToRank {
				t.Fatalf("UnitOf(%d,%d) = unit %+v", si, k, u)
			}
		}
	}
}

func TestSingleClusterEqualsSites(t *testing.T) {
	w := testWorkload(t)
	c, err := PopularityClusters(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Units) != len(w.Sites) {
		t.Fatalf("%d units for %d sites", len(c.Units), len(w.Sites))
	}
	for j, u := range c.Units {
		if u.Site != j || u.Bytes != w.Sites[j].Bytes || math.Abs(u.Mass-1) > 1e-9 {
			t.Fatalf("unit %d: %+v", j, u)
		}
	}
}

func TestMoreClustersThanObjectsClamps(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Servers = 2
	cfg.LowSites, cfg.MediumSites, cfg.HighSites = 1, 0, 1
	cfg.ObjectsPerSite = 3
	w := workload.MustGenerate(cfg, xrandNew(2))
	c, err := PopularityClusters(w, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Units) != 6 { // 3 per site
		t.Fatalf("%d units, want 6", len(c.Units))
	}
}

func TestPopularityClustersRejectsBadCount(t *testing.T) {
	w := testWorkload(t)
	if _, err := PopularityClusters(w, 0); err == nil {
		t.Fatal("perSite=0 accepted")
	}
}

func TestDeriveSystemValid(t *testing.T) {
	sc := buildScenario(t)
	c, err := PopularityClusters(sc.Work, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := c.DeriveSystem(sc.Sys)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.M() != len(c.Units) || d.N() != sc.Sys.N() {
		t.Fatalf("derived dims %dx%d", d.N(), d.M())
	}
	// Demand must be conserved: summing unit demand recovers site
	// demand and the global total of 1.
	total := 0.0
	for i := range d.Demand {
		for _, u := range c.Units {
			total += d.Demand[i][u.ID]
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("derived demand sums to %v", total)
	}
	// Origin cost is inherited from the unit's site.
	for _, u := range c.Units {
		if d.CostOrigin[0][u.ID] != sc.Sys.CostOrigin[0][u.Site] {
			t.Fatalf("unit %d origin cost mismatch", u.ID)
		}
	}
}

func TestSpecs(t *testing.T) {
	sc := buildScenario(t)
	c, err := PopularityClusters(sc.Work, 4)
	if err != nil {
		t.Fatal(err)
	}
	specs := c.Specs(sc.Work, 0.1)
	for _, u := range c.Units {
		s := specs[u.ID]
		if s.Objects != u.Objects() || s.RankOffset != u.FromRank-1 || s.Lambda != 0.1 {
			t.Fatalf("unit %d spec %+v vs unit %+v", u.ID, s, u)
		}
	}
}

func buildScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	w := workload.DefaultConfig()
	w.Servers = 6
	w.LowSites, w.MediumSites, w.HighSites = 2, 2, 2
	w.ObjectsPerSite = 100
	return scenario.MustBuild(scenario.Config{
		Topology: topology.Config{
			TransitDomains:        1,
			TransitNodesPerDomain: 2,
			StubsPerTransitNode:   2,
			StubNodesPerStub:      4,
			ExtraEdgeProb:         0.3,
		},
		Workload:     w,
		CapacityFrac: 0.15,
		Seed:         3,
	})
}
