package cluster

import (
	"context"
	"math"
	"testing"

	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// TestClusterModelPredictsSimulatedCost extends the paper's Figure 6
// validation to cluster granularity: the hybrid algorithm's predicted
// cost over cluster units must track the trace-driven simulation, with
// the truncated-Zipf (RankOffset) specs feeding the model.
func TestClusterModelPredictsSimulatedCost(t *testing.T) {
	sc := buildScenario(t)
	c, err := PopularityClusters(sc.Work, 4)
	if err != nil {
		t.Fatal(err)
	}
	unitSys := c.DeriveSystem(sc.Sys)
	res, err := placement.Hybrid(unitSys, placement.HybridConfig{
		Specs:          c.Specs(sc.Work, 0),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Requests = 150000
	cfg.Warmup = 150000
	cfg.KeepResponseTimes = false
	cfg.UnitOf = c.UnitOf
	m, err := sim.Run(context.Background(), sc, res.Placement, cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanHops <= 0 {
		t.Skip("degenerate: everything served locally")
	}
	relErr := math.Abs(res.PredictedCost-m.MeanHops) / m.MeanHops
	if relErr > 0.25 {
		t.Fatalf("cluster-granularity model: predicted %.4f vs simulated %.4f (err %.0f%%)",
			res.PredictedCost, m.MeanHops, 100*relErr)
	}
}

// TestClusterSimAccounting verifies that simulating with UnitOf keeps the
// request accounting identity intact.
func TestClusterSimAccounting(t *testing.T) {
	sc := buildScenario(t)
	c, err := PopularityClusters(sc.Work, 3)
	if err != nil {
		t.Fatal(err)
	}
	unitSys := c.DeriveSystem(sc.Sys)
	res := placement.GreedyGlobal(unitSys)
	cfg := sim.DefaultConfig()
	cfg.Requests = 60000
	cfg.Warmup = 20000
	cfg.UseCache = false
	cfg.KeepResponseTimes = false
	cfg.UnitOf = c.UnitOf
	m, err := sim.Run(context.Background(), sc, res.Placement, cfg, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if m.LocalReplica == 0 {
		t.Fatal("no cluster replica ever served locally")
	}
	sum := m.LocalReplica + m.CacheHits + m.CacheMisses + m.Bypass + m.RemoteServer + m.OriginFetch
	// Redirected requests are double-counted (remote/origin split), so
	// reconstruct: local + redirected = requests.
	redirected := m.RemoteServer + m.OriginFetch
	if m.LocalReplica+redirected != int64(m.Requests) {
		t.Fatalf("accounting: local %d + redirected %d != %d (raw sum %d)",
			m.LocalReplica, redirected, m.Requests, sum)
	}
}
