package cluster

import "repro/internal/xrand"

// xrandNew keeps the test files terse.
func xrandNew(seed uint64) *xrand.Source { return xrand.New(seed) }
