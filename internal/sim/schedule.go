package sim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/scenario"
	"repro/internal/xrand"
)

// PhaseMetrics aggregates the measured requests of one inter-event
// interval. Every fault event that fires inside the measured window
// opens a new phase, so the per-phase rows show availability and
// response time degrading as components crash and re-converging as they
// recover — the time axis the static FailureSet model collapses.
type PhaseMetrics struct {
	// From/To bound the phase in virtual time (request indices,
	// inclusive-exclusive). The first phase starts at cfg.Warmup.
	From, To int
	// Requests is the measured request count in the phase.
	Requests int
	// Unavailable / StaleRisk are as in FailureMetrics, phase-local.
	Unavailable int64
	StaleRisk   int64
	// MeanRTMs is the mean response time over the phase's available
	// requests.
	MeanRTMs float64
}

// Availability is the fraction of the phase's requests that were served.
func (p *PhaseMetrics) Availability() float64 {
	if p.Requests == 0 {
		return 1
	}
	return 1 - float64(p.Unavailable)/float64(p.Requests)
}

// ScheduleMetrics aggregates a churn run: the run-wide counters of the
// static model plus the per-phase timeline.
type ScheduleMetrics struct {
	FailureMetrics
	// Phases partitions the measured window at event times, in order.
	Phases []PhaseMetrics
	// EventsApplied counts schedule events that fired before the run
	// ended (events at or beyond Warmup+Requests never fire).
	EventsApplied int
}

// scheduleState is the mutable component state a schedule drives.
type scheduleState struct {
	downServer []bool
	downOrigin []bool
	// slowServer / slowOrigin are the per-component extra milliseconds
	// from an active Slow event (0 = full speed).
	slowServer []float64
	slowOrigin []float64
}

// srcEntry is one (first-hop server, site) routing decision: the serving
// node, its hop cost and its slow penalty, with eff = +Inf when no
// surviving source exists.
type srcEntry struct {
	srv     int
	cost    float64
	extraMs float64
	eff     float64
}

// RunWithSchedule replays the workload while the fault schedule fires:
// components crash, recover and slow down at their event times, and the
// nearest-live-replica routing is re-resolved after every event. It
// generalizes RunWithFailures from "dead at the measurement boundary,
// forever" to mid-run churn; given the degenerate schedule
// fault.Crashes(cfg.Warmup, servers, origins) it reproduces
// RunWithFailures bit-for-bit (same seed, same metrics).
//
// Semantics per event kind:
//
//   - Crash(server): replicas unreachable, cache storage lost, clients
//     re-dispatched to the nearest surviving server with detour cost.
//   - Recover(server): back in rotation with an *empty* cache — the
//     availability dip after recovery, until the cache re-warms, is real
//     and the per-phase rows show it.
//   - Crash(origin)/Recover(origin): the site is reachable only through
//     replicas or (StaleRisk) cached copies while down.
//   - Slow(c, extra): the component stays up but adds extra ms to every
//     request it serves; routing prefers a fast source over a slow one
//     when the effective latency says so. Recover clears the penalty.
//
// Virtual time is the global request index counted from the first
// warm-up request, so cfg.Warmup is the first measured request. Events
// during warm-up shape cache state but no metrics; events in the
// measured window additionally open a new PhaseMetrics row. The run is
// a pure function of (scenario, placement, cfg, schedule, seed).
func RunWithSchedule(ctx context.Context, sc *scenario.Scenario, p *core.Placement, cfg Config, sched *fault.Schedule, r *xrand.Source) (*ScheduleMetrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Parallelism > 1 {
		// Same argument as RunWithFailures: churn makes the run a
		// time-ordered global event stream, not shardable by server.
		return nil, fmt.Errorf("sim: RunWithSchedule is inherently sequential (Parallelism = %d)", cfg.Parallelism)
	}
	if p.System() != sc.Sys {
		return nil, fmt.Errorf("sim: placement belongs to a different system")
	}
	if sched == nil {
		sched = fault.MustSchedule()
	}
	n, mSites := sc.Sys.N(), sc.Sys.M()
	if id := sched.MaxID(fault.Server); id >= n {
		return nil, fmt.Errorf("sim: schedule references server %d of %d", id, n)
	}
	if id := sched.MaxID(fault.Origin); id >= mSites {
		return nil, fmt.Errorf("sim: schedule references origin %d of %d", id, mSites)
	}

	st := &scheduleState{
		downServer: make([]bool, n),
		downOrigin: make([]bool, mSites),
		slowServer: make([]float64, n),
		slowOrigin: make([]float64, mSites),
	}
	var caches []cache.Cache
	if cfg.UseCache {
		caches = make([]cache.Cache, n)
		for i := 0; i < n; i++ {
			caches[i] = cache.New(cfg.Policy, p.Free(i))
		}
	}

	// Routing tables, recomputed after every event batch.
	handler := make([]int, n)
	detour := make([]float64, n)
	nearest := make([][]srcEntry, n)
	for i := range nearest {
		nearest[i] = make([]srcEntry, mSites)
	}
	resolve := func() {
		for i := 0; i < n; i++ {
			if !st.downServer[i] {
				handler[i], detour[i] = i, 0
				continue
			}
			best, bestCost := -1, math.Inf(1)
			for k := 0; k < n; k++ {
				if !st.downServer[k] && sc.Sys.CostServer[i][k] < bestCost {
					best, bestCost = k, sc.Sys.CostServer[i][k]
				}
			}
			handler[i], detour[i] = best, bestCost
		}
		for i := 0; i < n; i++ {
			for j := 0; j < mSites; j++ {
				e := srcEntry{srv: core.Origin, eff: math.Inf(1)}
				if !st.downOrigin[j] {
					e.cost = sc.Sys.CostOrigin[i][j]
					e.extraMs = st.slowOrigin[j]
					e.eff = cfg.PerHopMs*e.cost + e.extraMs
				}
				for k := 0; k < n; k++ {
					if st.downServer[k] || !p.Has(k, j) {
						continue
					}
					eff := cfg.PerHopMs*sc.Sys.CostServer[i][k] + st.slowServer[k]
					if eff < e.eff {
						e = srcEntry{srv: k, cost: sc.Sys.CostServer[i][k], extraMs: st.slowServer[k], eff: eff}
					}
				}
				nearest[i][j] = e
			}
		}
	}
	apply := func(e fault.Event) {
		switch e.Comp {
		case fault.Server:
			switch e.Kind {
			case fault.Crash:
				st.downServer[e.ID] = true
				st.slowServer[e.ID] = 0
				if caches != nil {
					// Storage is lost with the server; a later Recover
					// starts cold.
					caches[e.ID] = cache.New(cfg.Policy, p.Free(e.ID))
				}
			case fault.Recover:
				st.downServer[e.ID] = false
				st.slowServer[e.ID] = 0
			case fault.Slow:
				st.slowServer[e.ID] = e.ExtraMs
			}
		case fault.Origin:
			switch e.Kind {
			case fault.Crash:
				st.downOrigin[e.ID] = true
				st.slowOrigin[e.ID] = 0
			case fault.Recover:
				st.downOrigin[e.ID] = false
				st.slowOrigin[e.ID] = 0
			case fault.Slow:
				st.slowOrigin[e.ID] = e.ExtraMs
			}
		}
	}
	resolve()

	m := &ScheduleMetrics{}
	events := sched.Events()
	next := 0
	stream := sc.Stream(r)
	var totalRT float64

	// Phase accounting: the current phase and its running sums.
	phaseStart := cfg.Warmup
	var phReq int
	var phUnavail, phStale int64
	var phRT float64
	closePhase := func(to int) {
		if to <= phaseStart {
			return
		}
		ph := PhaseMetrics{
			From:        phaseStart,
			To:          to,
			Requests:    phReq,
			Unavailable: phUnavail,
			StaleRisk:   phStale,
		}
		if avail := int64(phReq) - phUnavail; avail > 0 {
			ph.MeanRTMs = phRT / float64(avail)
		}
		m.Phases = append(m.Phases, ph)
		phaseStart, phReq, phUnavail, phStale, phRT = to, 0, 0, 0, 0
	}

	total := cfg.Warmup + cfg.Requests
	for t := 0; t < total; t++ {
		if t%cancelEvery == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if next < len(events) && events[next].At <= t {
			if t >= cfg.Warmup {
				closePhase(t)
			}
			for next < len(events) && events[next].At <= t {
				apply(events[next])
				next++
				m.EventsApplied++
			}
			resolve()
		}
		req := stream.Next()
		measured := t >= cfg.Warmup
		origin, j := req.Server, req.Site

		i := handler[origin]
		if !measured {
			// Warm-up: shape cache state with the same dispatch, no
			// accounting. With a healthy system this reduces to the
			// cache-warming of RunWithFailures.
			if i < 0 {
				continue
			}
			switch {
			case p.Has(i, j):
			case caches != nil && req.Cacheable:
				key := cache.Key{Site: j, Object: req.Object}
				if !caches[i].Get(key) && !math.IsInf(nearest[i][j].eff, 1) {
					caches[i].Put(key, sc.Work.Size(j, req.Object))
				}
			}
			continue
		}

		m.Requests++
		phReq++
		if i != origin {
			m.Rerouted++
		}
		if i < 0 {
			// Every server down: nothing can even accept the request.
			m.Unavailable++
			phUnavail++
			continue
		}

		firstHop := cfg.FirstHopMs + cfg.PerHopMs*detour[origin] + st.slowServer[i]
		var rt float64
		served := true
		switch {
		case p.Has(i, j):
			rt = firstHop
			m.LocalReplica++
		case caches != nil && req.Cacheable && caches[i].Get(cache.Key{Site: j, Object: req.Object}):
			rt = firstHop
			m.CacheHits++
			if st.downOrigin[j] {
				m.StaleRisk++
				phStale++
			}
		case math.IsInf(nearest[i][j].eff, 1):
			served = false
			m.Unavailable++
			phUnavail++
		default:
			src := nearest[i][j]
			rt = firstHop + cfg.PerHopMs*src.cost + src.extraMs
			if caches != nil && req.Cacheable {
				caches[i].Put(cache.Key{Site: j, Object: req.Object}, sc.Work.Size(j, req.Object))
				m.CacheMisses++
			}
		}
		if served {
			totalRT += rt
			phRT += rt
		}
	}
	closePhase(total)
	if availCount := int64(m.Requests) - m.Unavailable; availCount > 0 {
		m.MeanRTMs = totalRT / float64(availCount)
	}
	return m, nil
}
