package sim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/xrand"
)

// FailureSet lists crashed components for an availability experiment.
// The paper motivates replication over caching with availability ("a
// generic caching scheme offers no guarantees on content availability...
// less than acceptable for a CDN that wants to provide QoS guarantees",
// §1); this simulator path quantifies that argument.
type FailureSet struct {
	// Servers are failed CDN servers: their replicas and caches are
	// gone and their client populations are re-dispatched to the
	// nearest surviving server.
	Servers []int
	// Origins are failed primary sites: their content is reachable
	// only through surviving replicas, or — best effort, possibly
	// stale — through surviving cached copies.
	Origins []int
}

// FailureMetrics aggregates an availability run.
type FailureMetrics struct {
	Requests int
	// Unavailable counts requests that no surviving replica, origin or
	// cached copy could serve.
	Unavailable int64
	// StaleRisk counts requests served from a cache whose origin is
	// dead: available, but with no way to validate freshness.
	StaleRisk int64
	// MeanRTMs is the mean response time over *available* requests.
	MeanRTMs float64
	// Rerouted counts requests whose first-hop server was down.
	Rerouted                             int64
	LocalReplica, CacheHits, CacheMisses int64
}

// Unavailability is the fraction of requests that could not be served.
func (m *FailureMetrics) Unavailability() float64 {
	if m.Requests == 0 {
		return 0
	}
	return float64(m.Unavailable) / float64(m.Requests)
}

// RunWithFailures replays the workload against a placement in which the
// given components have crashed. Caches are warmed before the failures
// are injected (cfg.Warmup requests with everything alive), so the run
// answers: "the system was in steady state, then k components died —
// what do clients see?"
//
// Failures here are static — dead at the measurement boundary, forever.
// RunWithSchedule generalizes this to crash/recover/slow events at
// arbitrary virtual times; Crashes(cfg.Warmup, servers, origins) is the
// degenerate schedule reproducing this function exactly.
func RunWithFailures(ctx context.Context, sc *scenario.Scenario, p *core.Placement, cfg Config, fail FailureSet, r *xrand.Source) (*FailureMetrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Parallelism > 1 {
		// Unlike Run, this path is not shardable by server: the
		// warm-then-fail schedule and the client re-dispatch to
		// surviving servers make it a time-ordered global event
		// stream. Reject rather than silently interleave wrongly.
		return nil, fmt.Errorf("sim: RunWithFailures is inherently sequential (Parallelism = %d)", cfg.Parallelism)
	}
	if p.System() != sc.Sys {
		return nil, fmt.Errorf("sim: placement belongs to a different system")
	}
	n, mSites := sc.Sys.N(), sc.Sys.M()
	downServer := make([]bool, n)
	for _, s := range fail.Servers {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("sim: failed server %d out of range", s)
		}
		downServer[s] = true
	}
	alive := 0
	for i := 0; i < n; i++ {
		if !downServer[i] {
			alive++
		}
	}
	if alive == 0 {
		return nil, fmt.Errorf("sim: all servers failed")
	}
	downOrigin := make([]bool, mSites)
	for _, o := range fail.Origins {
		if o < 0 || o >= mSites {
			return nil, fmt.Errorf("sim: failed origin %d out of range", o)
		}
		downOrigin[o] = true
	}

	// handler[i]: the surviving server that takes over server i's
	// clients (itself when alive), plus the detour cost.
	handler := make([]int, n)
	detour := make([]float64, n)
	for i := 0; i < n; i++ {
		if !downServer[i] {
			handler[i] = i
			continue
		}
		best, bestCost := -1, math.Inf(1)
		for k := 0; k < n; k++ {
			if !downServer[k] && sc.Sys.CostServer[i][k] < bestCost {
				best, bestCost = k, sc.Sys.CostServer[i][k]
			}
		}
		handler[i] = best
		detour[i] = bestCost
	}

	// nearest[i][j]: cheapest surviving source of site j from server i
	// (+Inf when none survives).
	nearest := make([][]float64, n)
	for i := 0; i < n; i++ {
		nearest[i] = make([]float64, mSites)
		for j := 0; j < mSites; j++ {
			cost := math.Inf(1)
			if !downOrigin[j] {
				cost = sc.Sys.CostOrigin[i][j]
			}
			for k := 0; k < n; k++ {
				if !downServer[k] && p.Has(k, j) && sc.Sys.CostServer[i][k] < cost {
					cost = sc.Sys.CostServer[i][k]
				}
			}
			nearest[i][j] = cost
		}
	}

	var caches []cache.Cache
	if cfg.UseCache {
		caches = make([]cache.Cache, n)
		for i := 0; i < n; i++ {
			caches[i] = cache.New(cfg.Policy, p.Free(i))
		}
	}

	m := &FailureMetrics{}
	stream := sc.Stream(r)
	var totalRT float64
	total := cfg.Warmup + cfg.Requests
	for t := 0; t < total; t++ {
		if t%cancelEvery == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		req := stream.Next()
		measured := t >= cfg.Warmup
		origin, j := req.Server, req.Site

		if !measured {
			// Warm-up phase: the system is healthy; use the normal
			// dispatch so caches reach their steady state.
			if !p.Has(origin, j) && caches != nil && req.Cacheable {
				key := cache.Key{Site: j, Object: req.Object}
				if !caches[origin].Get(key) {
					caches[origin].Put(key, sc.Work.Size(j, req.Object))
				}
			}
			continue
		}

		i := handler[origin]
		firstHop := cfg.FirstHopMs + cfg.PerHopMs*detour[origin]
		m.Requests++
		if i != origin {
			m.Rerouted++
		}

		var rt float64
		served := true
		switch {
		case p.Has(i, j):
			rt = firstHop
			m.LocalReplica++
		case caches != nil && req.Cacheable && caches[i].Get(cache.Key{Site: j, Object: req.Object}):
			rt = firstHop
			m.CacheHits++
			if downOrigin[j] {
				m.StaleRisk++
			}
		case math.IsInf(nearest[i][j], 1):
			served = false
			m.Unavailable++
		default:
			rt = firstHop + cfg.PerHopMs*nearest[i][j]
			if caches != nil && req.Cacheable {
				caches[i].Put(cache.Key{Site: j, Object: req.Object}, sc.Work.Size(j, req.Object))
				m.CacheMisses++
			}
		}
		if served {
			totalRT += rt
		}
	}
	if availCount := int64(m.Requests) - m.Unavailable; availCount > 0 {
		m.MeanRTMs = totalRT / float64(availCount)
	}
	return m, nil
}

// RandomFailures draws k distinct failed origins and s distinct failed
// servers, deterministically from r.
func RandomFailures(sc *scenario.Scenario, servers, origins int, r *xrand.Source) FailureSet {
	var f FailureSet
	if servers > 0 {
		perm := r.Perm(sc.Sys.N())
		f.Servers = append(f.Servers, perm[:servers]...)
	}
	if origins > 0 {
		perm := r.Perm(sc.Sys.M())
		f.Origins = append(f.Origins, perm[:origins]...)
	}
	return f
}
