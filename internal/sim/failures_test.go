package sim

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/xrand"
)

func TestNoFailuresMatchesHealthyAccounting(t *testing.T) {
	sc := smallScenario(31, 0)
	p := core.NewPlacement(sc.Sys)
	cfg := fastConfig(true)
	cfg.KeepResponseTimes = false
	m, err := RunWithFailures(context.Background(), sc, p, cfg, FailureSet{}, xrand.New(32))
	if err != nil {
		t.Fatal(err)
	}
	if m.Unavailable != 0 || m.Rerouted != 0 || m.StaleRisk != 0 {
		t.Fatalf("healthy run reported failures: %+v", m)
	}
	if m.Requests != cfg.Requests {
		t.Fatalf("measured %d requests", m.Requests)
	}
}

func TestFailedServerReroutes(t *testing.T) {
	sc := smallScenario(33, 0)
	p := core.NewPlacement(sc.Sys)
	cfg := fastConfig(true)
	m, err := RunWithFailures(context.Background(), sc, p, cfg, FailureSet{Servers: []int{0, 1}}, xrand.New(34))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rerouted == 0 {
		t.Fatal("no requests rerouted despite failed first-hop servers")
	}
	if m.Unavailable != 0 {
		t.Fatal("server failures alone should not make content unavailable (origins alive)")
	}
}

func TestFailedOriginUnavailabilityOrdering(t *testing.T) {
	// The paper's availability argument: with dead origins, replication
	// keeps replicated sites fully available while caching can only
	// serve what happens to be cached. Unavailability(replication+cache
	// hybrid) <= Unavailability(pure caching).
	sc := smallScenario(35, 0)
	fail := RandomFailures(sc, 0, 3, xrand.New(36))

	hyb, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	pure := placement.None(sc.Sys)

	cfg := fastConfig(true)
	mHyb, err := RunWithFailures(context.Background(), sc, hyb.Placement, cfg, fail, xrand.New(37))
	if err != nil {
		t.Fatal(err)
	}
	mPure, err := RunWithFailures(context.Background(), sc, pure.Placement, cfg, fail, xrand.New(37))
	if err != nil {
		t.Fatal(err)
	}
	if mPure.Unavailable == 0 {
		t.Fatal("pure caching fully available with dead origins (suspicious)")
	}
	if mHyb.Unavailability() > mPure.Unavailability() {
		t.Errorf("hybrid unavailability %.4f worse than caching %.4f",
			mHyb.Unavailability(), mPure.Unavailability())
	}
	// Cached copies of dead-origin sites are served at stale risk.
	if mPure.StaleRisk == 0 {
		t.Error("caching never served dead-origin content from cache")
	}
}

func TestAllServersFailedRejected(t *testing.T) {
	sc := smallScenario(39, 0)
	p := core.NewPlacement(sc.Sys)
	all := make([]int, sc.Sys.N())
	for i := range all {
		all[i] = i
	}
	if _, err := RunWithFailures(context.Background(), sc, p, fastConfig(true), FailureSet{Servers: all}, xrand.New(40)); err == nil {
		t.Fatal("total outage accepted")
	}
}

func TestFailureSetValidation(t *testing.T) {
	sc := smallScenario(41, 0)
	p := core.NewPlacement(sc.Sys)
	if _, err := RunWithFailures(context.Background(), sc, p, fastConfig(true), FailureSet{Servers: []int{-1}}, xrand.New(1)); err == nil {
		t.Fatal("negative server index accepted")
	}
	if _, err := RunWithFailures(context.Background(), sc, p, fastConfig(true), FailureSet{Origins: []int{999}}, xrand.New(1)); err == nil {
		t.Fatal("out-of-range origin accepted")
	}
}

func TestRandomFailuresDistinct(t *testing.T) {
	sc := smallScenario(43, 0)
	f := RandomFailures(sc, 3, 4, xrand.New(44))
	if len(f.Servers) != 3 || len(f.Origins) != 4 {
		t.Fatalf("drew %d servers, %d origins", len(f.Servers), len(f.Origins))
	}
	seen := map[int]bool{}
	for _, s := range f.Servers {
		if seen[s] {
			t.Fatal("duplicate failed server")
		}
		seen[s] = true
	}
}
