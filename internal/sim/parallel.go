package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// The parallel runner exploits the structural independence of the §5
// simulation: per-server LRU caches and per-server counters depend only
// on the subsequence of requests destined to that server, so the request
// stream can be partitioned by destination server and simulated on a
// worker pool with no synchronization on the hot path. Request sampling
// itself consumes a single sequential RNG stream and therefore stays on
// one goroutine (the producer), pipelined against the workers; metrics
// are reassembled by global request index afterwards, which makes
// RunParallel bit-identical to Run — including the order of
// ResponseTimesMs, the float summation order behind MeanRTMs/MeanHops,
// and the JSONL trace — for equal seeds.

// parallelBatch is the producer→worker handoff granularity: large enough
// to amortize channel operations over thousands of requests, small
// enough to keep the pipeline full at quick-run scales.
const parallelBatch = 4096

// shardItem carries one sampled request plus its global index t, from
// which workers derive the measured flag and the merge position.
type shardItem struct {
	t   int
	req workload.Request
}

// reqRecord is one measured request's contribution, written by exactly
// one worker at its global measured index and folded in order during the
// merge phase.
type reqRecord struct {
	rt, hops float64
}

// RunParallel is Run executed on cfg.Parallelism workers (0 =
// runtime.GOMAXPROCS). The result is bit-identical to Run with the same
// seed; see the package comment above for why sharding is exact.
func RunParallel(ctx context.Context, sc *scenario.Scenario, p *core.Placement, cfg Config, r *xrand.Source) (*Metrics, error) {
	return RunSourceParallel(ctx, sc, p, cfg, streamSource{sc.Stream(r)})
}

// MustRunParallel is RunParallel for known-good configurations.
func MustRunParallel(ctx context.Context, sc *scenario.Scenario, p *core.Placement, cfg Config, r *xrand.Source) *Metrics {
	m, err := RunParallel(ctx, sc, p, cfg, r)
	if err != nil {
		panic(err)
	}
	return m
}

// RunSourceParallel is RunSource executed on cfg.Parallelism workers.
// The source is drained sequentially by a producer goroutine (request
// sampling owns a single RNG stream), so any Source works unchanged.
// Cancelling ctx aborts the producer between batches; the workers drain
// what was already queued and the call returns ctx.Err().
func RunSourceParallel(ctx context.Context, sc *scenario.Scenario, p *core.Placement, cfg Config, src Source) (*Metrics, error) {
	if err := validateRun(sc, p, cfg); err != nil {
		return nil, err
	}
	n := sc.Sys.N()
	workers := cfg.Parallelism
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return RunSource(ctx, sc, p, cfg, src)
	}

	// Register the response-time histogram before simulating, exactly as
	// the sequential path does, so the metric family exists even for a
	// run with zero observations.
	var rtHist *obs.Histogram
	if cfg.Metrics != nil {
		rtHist = cfg.Metrics.Histogram("sim_response_time_ms",
			"Modelled response time of measured requests, milliseconds.",
			nil, obs.DefaultLatencyBuckets())
	}

	// records[k] is measured request k's (rt, hops); each index is
	// written by exactly one worker (server ownership is a partition),
	// so the slices are shared without locks.
	records := make([]reqRecord, cfg.Requests)
	var events []obs.Event
	if cfg.Tracer != nil {
		events = make([]obs.Event, cfg.Requests)
	}

	shards := make([]*shard, workers)
	queues := make([]chan []shardItem, workers)
	for w := 0; w < workers; w++ {
		w := w
		shards[w] = newShard(sc, p, &cfg, func(i int) bool { return i%workers == w })
		queues[w] = make(chan []shardItem, 4)
	}
	// Recycle drained batches back to the producer instead of
	// allocating ~(total/parallelBatch) slices per run.
	pool := sync.Pool{New: func() any {
		s := make([]shardItem, 0, parallelBatch)
		return &s
	}}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			sh := shards[w]
			for batch := range queues[w] {
				for _, it := range batch {
					measured := it.t >= cfg.Warmup
					hops, source := sh.step(it.req, measured)
					if measured {
						k := it.t - cfg.Warmup
						rt := cfg.FirstHopMs + cfg.PerHopMs*hops
						records[k] = reqRecord{rt: rt, hops: hops}
						if events != nil {
							events[k] = obs.Event{
								Edge:      it.req.Server,
								Site:      it.req.Site,
								Object:    it.req.Object,
								Source:    source,
								Hops:      hops,
								LatencyMs: rt,
							}
						}
					}
				}
				batch = batch[:0]
				pool.Put(&batch)
			}
		}(w)
	}

	// Producer: drain the source in order, routing each request to the
	// worker owning its destination server. Sampling overlaps with
	// simulation, so the sequential fraction is the sampling cost alone.
	var srcErr error
	buf := make([][]shardItem, workers)
	for w := range buf {
		buf[w] = *(pool.Get().(*[]shardItem))
	}
	total := cfg.Warmup + cfg.Requests
	for t := 0; t < total; t++ {
		if t%cancelEvery == 0 && ctx.Err() != nil {
			srcErr = ctx.Err()
			break
		}
		req, ok := src.Next()
		if !ok {
			srcErr = fmt.Errorf("sim: request source exhausted after %d of %d requests", t, total)
			break
		}
		w := req.Server % workers
		buf[w] = append(buf[w], shardItem{t: t, req: req})
		if len(buf[w]) == parallelBatch {
			queues[w] <- buf[w]
			buf[w] = *(pool.Get().(*[]shardItem))
		}
	}
	for w := 0; w < workers; w++ {
		if len(buf[w]) > 0 {
			queues[w] <- buf[w]
		}
		close(queues[w])
	}
	wg.Wait()
	if srcErr != nil {
		return nil, srcErr
	}

	// Merge. Integer counters are order-independent sums over the
	// disjoint shards; the float accumulators and the trace are replayed
	// in global request order so they match the sequential run exactly.
	m := &Metrics{
		Requests:          cfg.Requests,
		PerServerHitRatio: make([]float64, n),
		PerServerHits:     make([]int64, n),
		PerServerLookups:  make([]int64, n),
	}
	for _, sh := range shards {
		m.LocalReplica += sh.m.LocalReplica
		m.CacheHits += sh.m.CacheHits
		m.CacheMisses += sh.m.CacheMisses
		m.Bypass += sh.m.Bypass
		m.RemoteServer += sh.m.RemoteServer
		m.OriginFetch += sh.m.OriginFetch
		m.Perished += sh.m.Perished
		m.StaleReplica += sh.m.StaleReplica
		m.UnknownSite += sh.m.UnknownSite
		for i := 0; i < n; i++ {
			m.PerServerHits[i] += sh.m.PerServerHits[i]
			m.PerServerLookups[i] += sh.m.PerServerLookups[i]
		}
	}
	var totalRT, totalHops float64
	for k := range records {
		totalRT += records[k].rt
		totalHops += records[k].hops
		if rtHist != nil {
			rtHist.Observe(records[k].rt)
		}
		if cfg.Tracer != nil {
			ev := events[k]
			ev.Req = cfg.Tracer.NextID()
			cfg.Tracer.Emit(ev)
			if cfg.TraceSpans {
				emitSimSpans(&cfg, k, ev)
			}
		}
	}
	if cfg.KeepResponseTimes {
		m.ResponseTimesMs = make([]float64, cfg.Requests)
		for k := range records {
			m.ResponseTimesMs[k] = records[k].rt
		}
	}
	m.finalize(&cfg, totalRT, totalHops)
	return m, nil
}
