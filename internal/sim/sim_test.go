package sim

import (
	"context"
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// smallScenario mirrors the scenario test helper: 22-node topology,
// 8 servers, 8 sites of 100 objects, 15% capacity.
func smallScenario(seed uint64, lambda float64) *scenario.Scenario {
	w := workload.DefaultConfig()
	w.Servers = 8
	w.LowSites, w.MediumSites, w.HighSites = 2, 4, 2
	w.ObjectsPerSite = 100
	w.Lambda = lambda
	return scenario.MustBuild(scenario.Config{
		Topology: topology.Config{
			TransitDomains:        1,
			TransitNodesPerDomain: 2,
			StubsPerTransitNode:   2,
			StubNodesPerStub:      5,
			ExtraEdgeProb:         0.3,
		},
		Workload:     w,
		CapacityFrac: 0.15,
		Seed:         seed,
	})
}

func fastConfig(useCache bool) Config {
	cfg := DefaultConfig()
	cfg.Requests = 60000
	cfg.Warmup = 30000
	cfg.UseCache = useCache
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, m := range []func(*Config){
		func(c *Config) { c.Requests = 0 },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.FirstHopMs = -1 },
		func(c *Config) { c.PerHopMs = -1 },
	} {
		c := DefaultConfig()
		m(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRunRejectsForeignPlacement(t *testing.T) {
	a := smallScenario(1, 0)
	b := smallScenario(2, 0)
	p := core.NewPlacement(b.Sys)
	if _, err := Run(context.Background(), a, p, fastConfig(true), xrand.New(1)); err == nil {
		t.Fatal("placement from another system accepted")
	}
}

func TestFullReplicationAllLocal(t *testing.T) {
	sc := smallScenario(3, 0)
	// Give servers unbounded storage and replicate everything.
	for i := range sc.Sys.Capacity {
		sc.Sys.Capacity[i] = sc.Work.TotalBytes * 2
	}
	p := core.NewPlacement(sc.Sys)
	for i := 0; i < sc.Sys.N(); i++ {
		for j := 0; j < sc.Sys.M(); j++ {
			if err := p.Replicate(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	m := MustRun(context.Background(), sc, p, fastConfig(false), xrand.New(4))
	if m.LocalReplica != int64(m.Requests) {
		t.Fatalf("local %d of %d requests", m.LocalReplica, m.Requests)
	}
	if m.MeanHops != 0 {
		t.Fatalf("mean hops %v, want 0", m.MeanHops)
	}
	if m.MeanRTMs != 20 {
		t.Fatalf("mean RT %v ms, want exactly the 20 ms first hop", m.MeanRTMs)
	}
	if m.LocalFraction() != 1 {
		t.Fatalf("local fraction %v, want 1", m.LocalFraction())
	}
}

func TestPureReplicationNoCacheEvents(t *testing.T) {
	sc := smallScenario(5, 0)
	res := placement.GreedyGlobal(sc.Sys)
	m := MustRun(context.Background(), sc, res.Placement, fastConfig(false), xrand.New(6))
	if m.CacheHits != 0 || m.CacheMisses != 0 {
		t.Fatal("cache events recorded with UseCache=false")
	}
	if m.Requests != 60000 {
		t.Fatalf("measured %d requests, want 60000", m.Requests)
	}
	if m.MeanHops <= 0 {
		t.Fatal("pure replication at 15% capacity should still redirect some requests")
	}
}

func TestPureCachingHasHitsAndMisses(t *testing.T) {
	sc := smallScenario(7, 0)
	p := core.NewPlacement(sc.Sys) // no replicas: pure caching
	m := MustRun(context.Background(), sc, p, fastConfig(true), xrand.New(8))
	if m.CacheHits == 0 || m.CacheMisses == 0 {
		t.Fatalf("hits=%d misses=%d: expected both nonzero", m.CacheHits, m.CacheMisses)
	}
	hr := m.HitRatio()
	if hr <= 0.05 || hr >= 0.999 {
		t.Fatalf("hit ratio %v implausible", hr)
	}
	if m.LocalReplica != 0 {
		t.Fatal("replica hits without replicas")
	}
	// The CDF must jump at the 20 ms first-hop latency — the caching
	// signature of Figure 3.
	cdf := m.CDF()
	if at20 := cdf.At(20); math.Abs(at20-hr) > 0.02 {
		t.Fatalf("CDF at 20 ms = %v, want ~hit ratio %v", at20, hr)
	}
}

func TestResponseTimesQuantized(t *testing.T) {
	sc := smallScenario(9, 0)
	p := core.NewPlacement(sc.Sys)
	m := MustRun(context.Background(), sc, p, fastConfig(true), xrand.New(10))
	if len(m.ResponseTimesMs) != m.Requests {
		t.Fatalf("%d response times for %d requests", len(m.ResponseTimesMs), m.Requests)
	}
	for _, rt := range m.ResponseTimesMs {
		if rt < 20 {
			t.Fatalf("response time %v below the first-hop minimum", rt)
		}
		if r := math.Mod(rt, 20); r > 1e-9 && r < 20-1e-9 {
			t.Fatalf("response time %v not a multiple of the 20 ms hop delay", rt)
		}
	}
}

func TestKeepResponseTimesOff(t *testing.T) {
	sc := smallScenario(11, 0)
	cfg := fastConfig(true)
	cfg.KeepResponseTimes = false
	m := MustRun(context.Background(), sc, core.NewPlacement(sc.Sys), cfg, xrand.New(12))
	if m.ResponseTimesMs != nil {
		t.Fatal("response times retained despite KeepResponseTimes=false")
	}
	if m.MeanRTMs <= 0 {
		t.Fatal("mean RT missing")
	}
}

func TestLambdaBypass(t *testing.T) {
	sc := smallScenario(13, 0.2)
	p := core.NewPlacement(sc.Sys)
	m := MustRun(context.Background(), sc, p, fastConfig(true), xrand.New(14))
	frac := float64(m.Bypass) / float64(m.Requests)
	if math.Abs(frac-0.2) > 0.02 {
		t.Fatalf("bypass fraction %v, want ~0.2", frac)
	}
	// Bypass traffic must depress the local fraction versus λ=0.
	sc0 := smallScenario(13, 0)
	m0 := MustRun(context.Background(), sc0, core.NewPlacement(sc0.Sys), fastConfig(true), xrand.New(14))
	if m.LocalFraction() >= m0.LocalFraction() {
		t.Fatalf("local fraction with λ=0.2 (%v) not below λ=0 (%v)",
			m.LocalFraction(), m0.LocalFraction())
	}
}

func TestDeterministicRuns(t *testing.T) {
	sc := smallScenario(15, 0.1)
	p := core.NewPlacement(sc.Sys)
	a := MustRun(context.Background(), sc, p, fastConfig(true), xrand.New(16))
	b := MustRun(context.Background(), sc, p, fastConfig(true), xrand.New(16))
	if a.MeanRTMs != b.MeanRTMs || a.CacheHits != b.CacheHits || a.MeanHops != b.MeanHops {
		t.Fatal("identical seeds produced different metrics")
	}
}

func TestRemoteVsOriginAccounting(t *testing.T) {
	sc := smallScenario(17, 0)
	res := placement.GreedyGlobal(sc.Sys)
	m := MustRun(context.Background(), sc, res.Placement, fastConfig(false), xrand.New(18))
	redirected := int64(m.Requests) - m.LocalReplica
	if m.RemoteServer+m.OriginFetch != redirected {
		t.Fatalf("remote %d + origin %d != redirected %d",
			m.RemoteServer, m.OriginFetch, redirected)
	}
}

// TestHybridBeatsBothStandalones is the paper's headline result (§5.2):
// the hybrid mechanism outperforms both pure replication and pure caching
// in user-perceived latency.
func TestHybridBeatsBothStandalones(t *testing.T) {
	sc := smallScenario(19, 0)
	specs := sc.Work.Specs()

	repl := placement.GreedyGlobal(sc.Sys)
	pure := placement.None(sc.Sys)
	hyb, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          specs,
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}

	cfg := fastConfig(true)
	cfgNoCache := fastConfig(false)
	mRepl := MustRun(context.Background(), sc, repl.Placement, cfgNoCache, xrand.New(20))
	mPure := MustRun(context.Background(), sc, pure.Placement, cfg, xrand.New(20))
	mHyb := MustRun(context.Background(), sc, hyb.Placement, cfg, xrand.New(20))

	if mHyb.MeanRTMs >= mRepl.MeanRTMs {
		t.Errorf("hybrid %.2f ms not better than replication %.2f ms",
			mHyb.MeanRTMs, mRepl.MeanRTMs)
	}
	if mHyb.MeanRTMs >= mPure.MeanRTMs {
		t.Errorf("hybrid %.2f ms not better than caching %.2f ms",
			mHyb.MeanRTMs, mPure.MeanRTMs)
	}
}

// TestModelPredictsSimulatedCost is the Figure 6 validation: the greedy
// algorithm's model-predicted cost per request must track the trace-driven
// simulation within a small margin (the paper reports < 7% error).
func TestModelPredictsSimulatedCost(t *testing.T) {
	sc := smallScenario(21, 0)
	specs := sc.Work.Specs()
	hyb, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          specs,
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(true)
	cfg.Requests = 150000
	cfg.Warmup = 80000
	m := MustRun(context.Background(), sc, hyb.Placement, cfg, xrand.New(22))
	predicted := hyb.PredictedCost // hops per request: demand sums to 1
	actual := m.MeanHops
	if actual == 0 {
		t.Skip("degenerate scenario: no redirected traffic")
	}
	relErr := math.Abs(predicted-actual) / actual
	if relErr > 0.15 {
		t.Fatalf("predicted %.4f vs simulated %.4f hops/request (err %.1f%%)",
			predicted, actual, 100*relErr)
	}
}

func TestCachePolicyVariantsRun(t *testing.T) {
	sc := smallScenario(23, 0)
	p := core.NewPlacement(sc.Sys)
	for _, pol := range []cache.Policy{cache.PolicyLRU, cache.PolicyFIFO, cache.PolicyLFU, cache.PolicyDelayedLRU} {
		cfg := fastConfig(true)
		cfg.Policy = pol
		m := MustRun(context.Background(), sc, p, cfg, xrand.New(24))
		if m.Requests != cfg.Requests {
			t.Fatalf("%s: measured %d requests", pol, m.Requests)
		}
		if m.CacheHits == 0 {
			t.Fatalf("%s: no cache hits", pol)
		}
	}
}

func BenchmarkSimulate(b *testing.B) {
	sc := smallScenario(25, 0)
	p := core.NewPlacement(sc.Sys)
	cfg := fastConfig(true)
	cfg.KeepResponseTimes = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustRun(context.Background(), sc, p, cfg, xrand.New(uint64(i)))
	}
}
