package sim

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// tracedConfig is fastConfig with span tracing into a fresh buffer.
func tracedConfig(buf *bytes.Buffer) Config {
	cfg := fastConfig(true)
	cfg.Requests = 3000
	cfg.Warmup = 1000
	cfg.Tracer = obs.NewTracer(buf)
	cfg.TraceSpans = true
	return cfg
}

func TestSimSpansVirtualTimeSchema(t *testing.T) {
	sc := smallScenario(1, 0.05)
	p := hybridPlacementFor(sc)
	var buf bytes.Buffer
	cfg := tracedConfig(&buf)
	m, err := Run(context.Background(), sc, p, cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	events, spans, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != m.Requests {
		t.Fatalf("%d events for %d measured requests", len(events), m.Requests)
	}
	serves, upstreams := 0, 0
	for _, s := range spans {
		if err := obs.ValidateSpan(s); err != nil {
			t.Fatalf("invalid span: %v", err)
		}
		switch s.Kind {
		case obs.SpanServe:
			serves++
			if s.Parent != "" {
				t.Fatalf("sim serve span %s has a parent", s.Span)
			}
		case obs.SpanUpstream:
			upstreams++
			if s.Parent == "" {
				t.Fatalf("sim upstream span %s has no parent", s.Span)
			}
		default:
			t.Fatalf("unexpected sim span kind %q", s.Kind)
		}
	}
	if serves != m.Requests {
		t.Fatalf("%d serve spans for %d measured requests", serves, m.Requests)
	}
	// Every redirected request (counted by destination) grew exactly one
	// upstream child.
	if want := int(m.OriginFetch + m.RemoteServer); upstreams != want {
		t.Fatalf("%d upstream spans for %d redirected requests", upstreams, want)
	}
	// Virtual time: request k's serve span starts at k ms.
	if spans[0].StartUs != 0 {
		t.Fatalf("first serve span starts at %d µs, want 0", spans[0].StartUs)
	}
}

func TestSimSpansParallelIdentical(t *testing.T) {
	sc := smallScenario(2, 0.05)
	p := hybridPlacementFor(sc)

	var seq bytes.Buffer
	cfgSeq := tracedConfig(&seq)
	if _, err := Run(context.Background(), sc, p, cfgSeq, xrand.New(11)); err != nil {
		t.Fatal(err)
	}
	if err := cfgSeq.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	var par bytes.Buffer
	cfgPar := tracedConfig(&par)
	cfgPar.Parallelism = 4
	if _, err := RunParallel(context.Background(), sc, p, cfgPar, xrand.New(11)); err != nil {
		t.Fatal(err)
	}
	if err := cfgPar.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatal("parallel traced run is not byte-identical to sequential")
	}
}

// TestStepDisabledTracingZeroAllocs pins the disabled-span path: with no
// tracer the measured hot loop (shard.step plus the span guard) must not
// allocate. Guards the satellite acceptance criterion alongside
// BenchmarkStepDisabledTracing.
func TestStepDisabledTracingZeroAllocs(t *testing.T) {
	sc := smallScenario(3, 0)
	p := hybridPlacementFor(sc)
	cfg := fastConfig(true)
	sh := newShard(sc, p, &cfg, nil)
	stream := sc.Stream(xrand.New(5))
	// Warm the caches so steady-state stepping dominates.
	for i := 0; i < 20000; i++ {
		sh.step(stream.Next(), false)
	}
	reqs := make([]workload.Request, 1024)
	for i := range reqs {
		reqs[i] = stream.Next()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, req := range reqs {
			hops, source := sh.step(req, true)
			if cfg.Tracer != nil && cfg.TraceSpans {
				emitSimSpans(&cfg, 0, obs.Event{Source: source, Hops: hops})
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled-tracing hot loop allocates %.1f per 1024 steps, want 0", allocs)
	}
}

// BenchmarkStepDisabledTracing measures the per-request cost of the hot
// loop with tracing compiled in but disabled (run with -benchmem: the
// criterion is 0 allocs/op).
func BenchmarkStepDisabledTracing(b *testing.B) {
	sc := smallScenario(3, 0)
	p := hybridPlacementFor(sc)
	cfg := fastConfig(true)
	sh := newShard(sc, p, &cfg, nil)
	stream := sc.Stream(xrand.New(5))
	for i := 0; i < 20000; i++ {
		sh.step(stream.Next(), false)
	}
	reqs := make([]workload.Request, 4096)
	for i := range reqs {
		reqs[i] = stream.Next()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := reqs[i%len(reqs)]
		hops, source := sh.step(req, true)
		if cfg.Tracer != nil && cfg.TraceSpans {
			emitSimSpans(&cfg, 0, obs.Event{Source: source, Hops: hops})
		}
	}
}
