package sim

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/placement"
	"repro/internal/xrand"
)

func TestScheduleDeterministicForFixedSeed(t *testing.T) {
	sc := smallScenario(51, 0)
	p := core.NewPlacement(sc.Sys)
	cfg := fastConfig(true)
	sched := fault.MustSchedule(
		fault.Event{At: cfg.Warmup + 1000, Comp: fault.Server, ID: 0, Kind: fault.Crash},
		fault.Event{At: cfg.Warmup + 9000, Comp: fault.Server, ID: 0, Kind: fault.Recover},
		fault.Event{At: cfg.Warmup + 4000, Comp: fault.Origin, ID: 1, Kind: fault.Crash},
		fault.Event{At: cfg.Warmup + 5000, Comp: fault.Server, ID: 2, Kind: fault.Slow, ExtraMs: 40},
	)
	a, err := RunWithSchedule(context.Background(), sc, p, cfg, sched, xrand.New(52))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWithSchedule(context.Background(), sc, p, cfg, sched, xrand.New(52))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different metrics:\n%+v\n%+v", a, b)
	}
	if a.EventsApplied != 4 {
		t.Fatalf("EventsApplied = %d, want 4", a.EventsApplied)
	}
	// 4 measured-window events at distinct times → 5 phases.
	if len(a.Phases) != 5 {
		t.Fatalf("got %d phases, want 5: %+v", len(a.Phases), a.Phases)
	}
	// Phases tile [Warmup, Warmup+Requests) exactly and their counters
	// sum to the run-wide ones.
	var reqs int
	var unavail int64
	from := cfg.Warmup
	for _, ph := range a.Phases {
		if ph.From != from {
			t.Fatalf("phase gap: From %d, want %d", ph.From, from)
		}
		from = ph.To
		reqs += ph.Requests
		unavail += ph.Unavailable
	}
	if from != cfg.Warmup+cfg.Requests {
		t.Fatalf("phases end at %d, want %d", from, cfg.Warmup+cfg.Requests)
	}
	if reqs != a.Requests || unavail != a.Unavailable {
		t.Fatalf("phase sums (%d, %d) != totals (%d, %d)", reqs, unavail, a.Requests, a.Unavailable)
	}
}

func TestScheduleDegenerateReproducesRunWithFailures(t *testing.T) {
	sc := smallScenario(53, 0)
	hyb, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, useCache := range []bool{true, false} {
		cfg := fastConfig(useCache)
		cfg.KeepResponseTimes = false
		fail := RandomFailures(sc, 2, 3, xrand.New(54))
		want, err := RunWithFailures(context.Background(), sc, hyb.Placement, cfg, fail, xrand.New(55))
		if err != nil {
			t.Fatal(err)
		}
		sched := fault.Crashes(cfg.Warmup, fail.Servers, fail.Origins)
		got, err := RunWithSchedule(context.Background(), sc, hyb.Placement, cfg, sched, xrand.New(55))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.FailureMetrics, *want) {
			t.Errorf("useCache=%v: degenerate schedule diverged from RunWithFailures:\nschedule: %+v\nstatic:   %+v",
				useCache, got.FailureMetrics, *want)
		}
	}
}

func TestScheduleHealthyMatchesEmptySchedule(t *testing.T) {
	sc := smallScenario(57, 0)
	p := core.NewPlacement(sc.Sys)
	cfg := fastConfig(true)
	cfg.KeepResponseTimes = false
	want, err := RunWithFailures(context.Background(), sc, p, cfg, FailureSet{}, xrand.New(58))
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunWithSchedule(context.Background(), sc, p, cfg, nil, xrand.New(58))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.FailureMetrics, *want) {
		t.Fatalf("nil schedule diverged from healthy RunWithFailures:\n%+v\n%+v", got.FailureMetrics, *want)
	}
	if len(got.Phases) != 1 || got.EventsApplied != 0 {
		t.Fatalf("healthy run: %d phases, %d events", len(got.Phases), got.EventsApplied)
	}
}

func TestScheduleCrashRecoverTimeline(t *testing.T) {
	sc := smallScenario(59, 0)
	p := core.NewPlacement(sc.Sys)
	cfg := fastConfig(true)
	crashAt := cfg.Warmup + cfg.Requests/4
	recoverAt := cfg.Warmup + cfg.Requests/2
	sched := fault.MustSchedule(
		fault.Event{At: crashAt, Comp: fault.Origin, ID: 0, Kind: fault.Crash},
		fault.Event{At: crashAt, Comp: fault.Origin, ID: 1, Kind: fault.Crash},
		fault.Event{At: recoverAt, Comp: fault.Origin, ID: 0, Kind: fault.Recover},
		fault.Event{At: recoverAt, Comp: fault.Origin, ID: 1, Kind: fault.Recover},
	)
	m, err := RunWithSchedule(context.Background(), sc, p, cfg, sched, xrand.New(60))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Phases) != 3 {
		t.Fatalf("got %d phases, want 3: %+v", len(m.Phases), m.Phases)
	}
	healthy, degraded, healed := m.Phases[0], m.Phases[1], m.Phases[2]
	if healthy.Unavailable != 0 {
		t.Fatalf("pre-crash phase lost %d requests", healthy.Unavailable)
	}
	if degraded.Unavailable == 0 {
		t.Fatal("no unavailability with two origins down and no replicas")
	}
	if degraded.Availability() >= healthy.Availability() {
		t.Fatalf("crash did not dent availability: %.4f vs %.4f",
			degraded.Availability(), healthy.Availability())
	}
	if healed.Availability() <= degraded.Availability() {
		t.Fatalf("recovery did not restore availability: %.4f vs %.4f",
			healed.Availability(), degraded.Availability())
	}
	if healed.Unavailable != 0 {
		t.Fatalf("post-recovery phase still lost %d requests", healed.Unavailable)
	}
}

func TestScheduleSlowServerRaisesResponseTime(t *testing.T) {
	sc := smallScenario(61, 0)
	// Full replication everywhere: every request is local, so slowing
	// every server shows up purely in response time.
	p := core.NewPlacement(sc.Sys)
	cfg := fastConfig(false)
	cfg.KeepResponseTimes = false
	base, err := RunWithSchedule(context.Background(), sc, p, cfg, nil, xrand.New(62))
	if err != nil {
		t.Fatal(err)
	}
	var events []fault.Event
	for i := 0; i < sc.Sys.N(); i++ {
		events = append(events, fault.Event{At: 0, Comp: fault.Server, ID: i, Kind: fault.Slow, ExtraMs: 25})
	}
	slow, err := RunWithSchedule(context.Background(), sc, p, cfg, fault.MustSchedule(events...), xrand.New(62))
	if err != nil {
		t.Fatal(err)
	}
	if slow.MeanRTMs <= base.MeanRTMs {
		t.Fatalf("slow servers did not raise mean RT: %.2f vs %.2f", slow.MeanRTMs, base.MeanRTMs)
	}
	if got := slow.MeanRTMs - base.MeanRTMs; got < 20 || got > 30 {
		t.Fatalf("uniform 25ms slowdown shifted mean by %.2f ms", got)
	}
}

func TestScheduleValidation(t *testing.T) {
	sc := smallScenario(63, 0)
	p := core.NewPlacement(sc.Sys)
	cfg := fastConfig(true)

	tooBig := fault.MustSchedule(fault.Event{At: 0, Comp: fault.Server, ID: sc.Sys.N(), Kind: fault.Crash})
	if _, err := RunWithSchedule(context.Background(), sc, p, cfg, tooBig, xrand.New(1)); err == nil {
		t.Fatal("out-of-range server id accepted")
	}
	badOrigin := fault.MustSchedule(fault.Event{At: 0, Comp: fault.Origin, ID: sc.Sys.M(), Kind: fault.Crash})
	if _, err := RunWithSchedule(context.Background(), sc, p, cfg, badOrigin, xrand.New(1)); err == nil {
		t.Fatal("out-of-range origin id accepted")
	}
	par := cfg
	par.Parallelism = 4
	if _, err := RunWithSchedule(context.Background(), sc, p, par, nil, xrand.New(1)); err == nil {
		t.Fatal("parallel churn run accepted")
	}
}

func TestScheduleCancellation(t *testing.T) {
	sc := smallScenario(65, 0)
	p := core.NewPlacement(sc.Sys)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunWithSchedule(ctx, sc, p, fastConfig(true), nil, xrand.New(66)); err != context.Canceled {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if _, err := RunWithFailures(ctx, sc, p, fastConfig(true), FailureSet{}, xrand.New(66)); err != context.Canceled {
		t.Fatalf("cancelled RunWithFailures returned %v, want context.Canceled", err)
	}
	if _, err := Run(ctx, sc, p, fastConfig(true), xrand.New(66)); err != context.Canceled {
		t.Fatalf("cancelled Run returned %v, want context.Canceled", err)
	}
	par := fastConfig(true)
	par.Parallelism = 4
	if _, err := RunParallel(ctx, sc, p, par, xrand.New(66)); err != context.Canceled {
		t.Fatalf("cancelled RunParallel returned %v, want context.Canceled", err)
	}
}
