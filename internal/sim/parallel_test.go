package sim

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// gridConfig is a trimmed run for the determinism grids: large enough to
// exercise evictions and every dispatch arm, small enough to run the
// full grid in well under a second.
func gridConfig(useCache bool) Config {
	cfg := fastConfig(useCache)
	cfg.Requests = 20000
	cfg.Warmup = 8000
	return cfg
}

// hybridPlacementFor builds the Figure 2 placement the parallel tests
// simulate against (it leaves both replicas and cache space in play).
func hybridPlacementFor(sc *scenario.Scenario) *core.Placement {
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		panic(err)
	}
	return res.Placement
}

func requireIdentical(t *testing.T, label string, seq, par *Metrics) {
	t.Helper()
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("%s: parallel metrics differ from sequential\nseq: %+v\npar: %+v", label, seq, par)
	}
}

// TestRunParallelMatchesRun is the tentpole determinism guarantee:
// RunParallel produces bit-identical Metrics — counters, per-server
// arrays, means (float summation order) and ResponseTimesMs order — for
// every seed and worker count.
func TestRunParallelMatchesRun(t *testing.T) {
	for _, seed := range []uint64{1, 2, 7} {
		sc := smallScenario(seed, 0)
		p := hybridPlacementFor(sc)
		cfg := gridConfig(true)
		seq, err := Run(context.Background(), sc, p, cfg, xrand.New(seed*100+9))
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 2, 3, 8} {
			cfgP := cfg
			cfgP.Parallelism = par
			got, err := RunParallel(context.Background(), sc, p, cfgP, xrand.New(seed*100+9))
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, fmt.Sprintf("seed=%d parallelism=%d", seed, par), seq, got)
		}
	}
}

// TestRunParallelMatchesRunAllPolicies repeats the check across every
// cache replacement policy and the no-cache (pure replication) path.
func TestRunParallelMatchesRunAllPolicies(t *testing.T) {
	sc := smallScenario(4, 0)
	p := hybridPlacementFor(sc)
	for _, pol := range []cache.Policy{cache.PolicyLRU, cache.PolicyFIFO, cache.PolicyLFU, cache.PolicyDelayedLRU} {
		cfg := gridConfig(true)
		cfg.Policy = pol
		seq, err := Run(context.Background(), sc, p, cfg, xrand.New(11))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Parallelism = 4
		got, err := RunParallel(context.Background(), sc, p, cfg, xrand.New(11))
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, string(pol), seq, got)
	}

	cfg := gridConfig(false) // pure replication: no caches at all
	seq, err := Run(context.Background(), sc, p, cfg, xrand.New(12))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4
	got, err := RunParallel(context.Background(), sc, p, cfg, xrand.New(12))
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "no-cache", seq, got)
}

// TestRunParallelMatchesRunLambda covers the λ (uncacheable/stale)
// bypass arm under strong consistency.
func TestRunParallelMatchesRunLambda(t *testing.T) {
	sc := smallScenario(5, 0.1)
	p := hybridPlacementFor(sc)
	cfg := gridConfig(true)
	seq, err := Run(context.Background(), sc, p, cfg, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	got, err := RunParallel(context.Background(), sc, p, cfg, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "lambda=0.1", seq, got)
}

// TestRunParallelTraceAndRegistry asserts the observability outputs are
// byte-identical too: the JSONL trace (event order and request ids) and
// the metrics registry snapshot.
func TestRunParallelTraceAndRegistry(t *testing.T) {
	sc := smallScenario(6, 0)
	p := hybridPlacementFor(sc)

	run := func(parallelism int) (string, string) {
		var traceBuf bytes.Buffer
		reg := obs.NewRegistry()
		cfg := gridConfig(true)
		cfg.Requests = 5000
		cfg.Warmup = 2000
		cfg.Tracer = obs.NewTracer(&traceBuf)
		cfg.Metrics = reg
		cfg.Parallelism = parallelism
		var err error
		if parallelism == 0 {
			_, err = Run(context.Background(), sc, p, cfg, xrand.New(33))
		} else {
			_, err = RunParallel(context.Background(), sc, p, cfg, xrand.New(33))
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Tracer.Flush(); err != nil {
			t.Fatal(err)
		}
		var promBuf bytes.Buffer
		if err := reg.WritePrometheus(&promBuf); err != nil {
			t.Fatal(err)
		}
		return traceBuf.String(), promBuf.String()
	}

	seqTrace, seqProm := run(0)
	parTrace, parProm := run(4)
	if seqTrace != parTrace {
		t.Errorf("JSONL traces differ (%d vs %d bytes)", len(seqTrace), len(parTrace))
	}
	if seqProm != parProm {
		t.Errorf("registry snapshots differ:\nseq:\n%s\npar:\n%s", seqProm, parProm)
	}
}

// sliceSource replays a fixed request slice; used to hit the
// exhausted-source error path.
type sliceSource struct {
	reqs []workload.Request
	i    int
}

func (s *sliceSource) Next() (workload.Request, bool) {
	if s.i >= len(s.reqs) {
		return workload.Request{}, false
	}
	r := s.reqs[s.i]
	s.i++
	return r, true
}

// TestRunSourceParallelExhausted asserts the parallel runner reports the
// same exhaustion error as the sequential one.
func TestRunSourceParallelExhausted(t *testing.T) {
	sc := smallScenario(8, 0)
	p := hybridPlacementFor(sc)
	cfg := gridConfig(true)
	cfg.Requests = 1000
	cfg.Warmup = 0

	mk := func() Source {
		reqs := make([]workload.Request, 100)
		stream := sc.Stream(xrand.New(3))
		for i := range reqs {
			reqs[i] = stream.Next()
		}
		return &sliceSource{reqs: reqs}
	}
	_, seqErr := RunSource(context.Background(), sc, p, cfg, mk())
	cfg.Parallelism = 4
	_, parErr := RunSourceParallel(context.Background(), sc, p, cfg, mk())
	if seqErr == nil || parErr == nil {
		t.Fatalf("expected exhaustion errors, got seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Errorf("error texts differ:\nseq: %v\npar: %v", seqErr, parErr)
	}
}

// TestParallelismValidation covers the config surface: negative values
// are rejected, and the failure-injection path refuses explicit
// parallelism (its event stream is time-ordered).
func TestParallelismValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = -1
	if cfg.Validate() == nil {
		t.Error("negative Parallelism accepted")
	}

	sc := smallScenario(9, 0)
	p := hybridPlacementFor(sc)
	fcfg := gridConfig(true)
	fcfg.Parallelism = 4
	_, err := RunWithFailures(context.Background(), sc, p, fcfg, FailureSet{}, xrand.New(1))
	if err == nil || !strings.Contains(err.Error(), "sequential") {
		t.Errorf("RunWithFailures with Parallelism=4: got %v, want explicit sequential-only error", err)
	}
	// Parallelism 0 (auto) must keep working: the failure path simply
	// stays sequential.
	fcfg.Parallelism = 0
	if _, err := RunWithFailures(context.Background(), sc, p, fcfg, FailureSet{}, xrand.New(1)); err != nil {
		t.Errorf("RunWithFailures with Parallelism=0: %v", err)
	}
}
