// Package sim is the trace-driven CDN simulator of §5.
//
// Each synthetic request arrives at its first-hop server (the client's
// DNS-nearest CDN server). If the requested site is replicated there, or
// the object is in the server's cache, the request is satisfied locally
// at the first-hop latency. Otherwise the server redirects to the nearest
// replicator SN (possibly the origin), paying the configured per-hop
// delay for the shortest path — 20 ms/hop in the paper — on top of the
// first-hop delay. Uncacheable or stale requests (the λ fraction, §3.3 /
// the strong-consistency experiment of §5.2) always travel to SN and
// bypass the cache.
//
// The simulator measures, after a cache warm-up period, the response-time
// distribution (Figures 3–5) and the mean redirection cost per request in
// hops (Figure 6).
package sim

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Config controls one simulation run.
type Config struct {
	// Requests is the number of measured requests (after warm-up).
	Requests int
	// Warmup is the number of unmeasured requests used to bring the
	// caches to steady state ("we allowed an appropriate warm-up
	// period ... in order for the caches to reach their steady-state",
	// §5.2).
	Warmup int
	// UseCache enables the per-server caches over the free storage.
	// The pure-replication mechanism of §5.2 runs with this off.
	UseCache bool
	// Policy selects the replacement policy (LRU in the paper).
	Policy cache.Policy
	// FirstHopMs is the client-to-first-hop-server latency; the
	// paper's CDFs show locally satisfied requests at 20 ms.
	FirstHopMs float64
	// PerHopMs is the propagation+queueing+processing delay per core
	// hop (20 ms in §5.1).
	PerHopMs float64
	// KeepResponseTimes retains every measured response time for CDF
	// construction; disable for pure-throughput benchmarks.
	KeepResponseTimes bool
	// Parallelism is the worker count RunParallel shards the request
	// stream across: 0 means runtime.GOMAXPROCS(0), 1 forces the
	// sequential path. Sharding is by destination server — caches and
	// per-server counters are independent across servers — so parallel
	// runs are bit-identical to sequential ones, not approximations.
	// Run and RunSource ignore this field; RunWithFailures rejects
	// values above 1 (its warm-then-fail schedule is a time-ordered
	// global event stream).
	Parallelism int
	// UnitOf, when non-nil, maps a request (site, 1-based object rank)
	// to the placement column that owns it — the per-cluster
	// replication extension, where the placement's "sites" are
	// popularity clusters rather than whole web sites. The placement
	// must then belong to the derived cluster system. Nil means
	// columns are sites (the paper's granularity).
	UnitOf func(site, object int) int
	// Tracer, when non-nil, receives one obs.Event per *measured*
	// request — the same JSONL schema the HTTP cluster emits, so
	// simulated and real traffic diff directly. Warm-up requests are
	// not traced.
	Tracer *obs.Tracer
	// TraceSpans additionally emits obs.Span records per measured
	// request in virtual time (request k starts at k ms; durations are
	// the latency model's), the same schema the HTTP cluster emits, so
	// one cdntrace invocation analyses either. IDs are derived from the
	// request id: sequential and parallel runs emit identical bytes.
	// Ignored when Tracer is nil.
	TraceSpans bool
	// Metrics, when non-nil, receives an end-of-run snapshot of the
	// per-server hit/miss counters and the modelled response-time
	// histogram (publishing after the run keeps the hot loop free of
	// registry lookups).
	Metrics *obs.Registry
	// PlacedGeneration, when non-nil, is the catalog generation whose
	// content each placement column's replicas hold (dynamic-catalog
	// runs; see workload.DynamicStream). A request whose Generation
	// exceeds its column's placed generation cannot be served by
	// replicas or remote servers — they hold a perished predecessor's
	// bytes — and is redirected to the origin, counted in
	// Metrics.StaleReplica. Nil means generation 0 everywhere: the
	// static catalog.
	PlacedGeneration []int
}

// DefaultConfig returns the paper's latency parameters with a
// 500k-request measurement after a 1M-request warm-up (large caches —
// 20% capacity is ~8000 object slots per server — need tens of thousands
// of per-server requests to reach LRU steady state).
func DefaultConfig() Config {
	return Config{
		Requests:          500000,
		Warmup:            1000000,
		UseCache:          true,
		Policy:            cache.PolicyLRU,
		FirstHopMs:        20,
		PerHopMs:          20,
		KeepResponseTimes: true,
	}
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.Requests < 1:
		return fmt.Errorf("sim: Requests = %d", c.Requests)
	case c.Warmup < 0:
		return fmt.Errorf("sim: Warmup = %d", c.Warmup)
	case c.FirstHopMs < 0 || c.PerHopMs < 0:
		return fmt.Errorf("sim: negative delay")
	case c.Parallelism < 0:
		return fmt.Errorf("sim: Parallelism = %d", c.Parallelism)
	}
	return nil
}

// Metrics aggregates one run's measured phase.
type Metrics struct {
	Requests int
	// ResponseTimesMs holds every measured response time when
	// Config.KeepResponseTimes is set.
	ResponseTimesMs []float64
	// MeanRTMs is the mean response time in milliseconds.
	MeanRTMs float64
	// MeanHops is the mean redirection cost per request in hops,
	// the paper's Figure 6 metric (0 for locally served requests;
	// the first hop to the CDN server is not counted, matching the
	// objective D).
	MeanHops float64
	// LocalReplica counts requests served by a local site replica.
	LocalReplica int64
	// CacheHits / CacheMisses count cacheable requests for
	// non-replicated sites.
	CacheHits, CacheMisses int64
	// Bypass counts uncacheable/stale requests that had to travel.
	Bypass int64
	// RemoteServer / OriginFetch split the redirected requests by
	// destination type.
	RemoteServer, OriginFetch int64
	// PerServerHitRatio is each server's cache hit ratio over its
	// cacheable, non-replicated traffic (NaN-free: 0 when unused).
	PerServerHitRatio []float64
	// PerServerHits / PerServerLookups are the raw counters behind
	// PerServerHitRatio, exported so measured per-edge curves can be
	// reconciled against the LRU model's predictions (and published to
	// an obs.Registry).
	PerServerHits, PerServerLookups []int64
	// Dynamic-catalog outcomes (zero on static runs). Perished counts
	// requests for withdrawn content: a 404 answered by the origin,
	// never cached and never attributed to the cache or replica
	// counters. StaleReplica counts requests redirected to the origin
	// because every replica of their column holds an older catalog
	// generation (placement dead weight). UnknownSite counts requests
	// whose site index is outside the catalog entirely (stale client,
	// corrupt trace): answered 404 at the first hop without indexing
	// into placement or size tables.
	Perished, StaleReplica, UnknownSite int64
}

// LocalFraction is the share of measured requests satisfied at the
// first-hop server.
func (m *Metrics) LocalFraction() float64 {
	if m.Requests == 0 {
		return 0
	}
	return float64(m.LocalReplica+m.CacheHits) / float64(m.Requests)
}

// HitRatio is the aggregate cache hit ratio over cacheable requests for
// non-replicated sites.
func (m *Metrics) HitRatio() float64 {
	total := m.CacheHits + m.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(m.CacheHits) / float64(total)
}

// CDF builds the response-time CDF (requires KeepResponseTimes).
func (m *Metrics) CDF() stats.CDF { return stats.NewCDF(m.ResponseTimesMs) }

// Summary summarizes the response times.
func (m *Metrics) Summary() stats.Summary { return stats.Summarize(m.ResponseTimesMs) }

// Source yields the request sequence a simulation consumes. The
// workload's IRM stream is the usual source; a recorded trace
// (trace.Reader) is the other. ok = false means the source is exhausted.
type Source interface {
	Next() (req workload.Request, ok bool)
}

// streamSource adapts the endless synthetic stream to Source.
type streamSource struct{ s *workload.Stream }

func (ss streamSource) Next() (workload.Request, bool) { return ss.s.Next(), true }

// EndlessSource adapts any endless request stream — workload.Stream,
// workload.DynamicStream — to Source (ok is always true).
type EndlessSource struct {
	S interface{ Next() workload.Request }
}

// Next implements Source.
func (e EndlessSource) Next() (workload.Request, bool) { return e.S.Next(), true }

// cancelEvery is how often the request loops poll ctx between batches:
// frequent enough that cancellation lands within microseconds at any
// scale, rare enough to stay invisible on the hot path.
const cancelEvery = 4096

// Run simulates cfg.Warmup+cfg.Requests requests drawn from the
// scenario's workload against placement p, and returns the measured-phase
// metrics. r drives request sampling only, so runs with equal seeds are
// identical for every placement being compared — the paper's mechanisms
// all see the same trace. Cancelling ctx aborts the run between request
// batches with ctx.Err().
func Run(ctx context.Context, sc *scenario.Scenario, p *core.Placement, cfg Config, r *xrand.Source) (*Metrics, error) {
	return RunSource(ctx, sc, p, cfg, streamSource{sc.Stream(r)})
}

// validateRun checks the configuration and the placement/scenario pairing
// shared by the sequential and parallel runners.
func validateRun(sc *scenario.Scenario, p *core.Placement, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.UnitOf == nil {
		if p.System() != sc.Sys {
			return fmt.Errorf("sim: placement belongs to a different system")
		}
	} else if p.System().N() != sc.Sys.N() {
		return fmt.Errorf("sim: cluster placement has %d servers, scenario %d",
			p.System().N(), sc.Sys.N())
	}
	return nil
}

// shard owns the simulation state of a subset of servers: their caches
// and a private Metrics accumulating their counters. Shards over
// disjoint server sets share no mutable state — the property that makes
// the parallel runner exact rather than approximate.
type shard struct {
	sc  *scenario.Scenario
	p   *core.Placement
	cfg *Config
	// caches is indexed by server; entries are nil for servers the
	// shard does not own or when caching is off.
	caches []cache.Cache
	m      *Metrics
}

// newShard builds the state for the servers selected by owns (nil =
// all). The Metrics always carries full-length per-server arrays; only
// owned indices are ever touched.
func newShard(sc *scenario.Scenario, p *core.Placement, cfg *Config, owns func(i int) bool) *shard {
	n := sc.Sys.N()
	s := &shard{
		sc:  sc,
		p:   p,
		cfg: cfg,
		m: &Metrics{
			PerServerHitRatio: make([]float64, n),
			PerServerHits:     make([]int64, n),
			PerServerLookups:  make([]int64, n),
		},
	}
	if cfg.UseCache {
		s.caches = make([]cache.Cache, n)
		for i := 0; i < n; i++ {
			if owns == nil || owns(i) {
				s.caches[i] = cache.New(cfg.Policy, p.Free(i))
			}
		}
	}
	return s
}

// step dispatches one request exactly as §5 describes, accumulating the
// shard's counters when measured, and returns the redirection cost in
// hops plus the canonical serving-source label.
func (s *shard) step(req workload.Request, measured bool) (hops float64, source string) {
	i, j := req.Server, req.Site
	p, m := s.p, s.m
	// A dynamic catalog (or a corrupt trace) can reference a site the
	// scenario does not know: answer the 404 at the first hop instead
	// of panicking on the placement and size lookups.
	if j < 0 || j >= len(s.sc.Work.Sites) {
		if measured {
			m.UnknownSite++
			source = obs.SourceOrigin
		}
		return 0, source
	}
	if req.Perished {
		// Withdrawn content: only the origin can answer — with a 404 —
		// so the request pays the full origin trip and bypasses the
		// cache (negative responses are not cached).
		if measured {
			m.Perished++
			m.OriginFetch++
			source = obs.SourceOrigin
		}
		return s.sc.Sys.CostOrigin[i][j], source
	}
	// col is the placement column owning this request: the site
	// itself, or its popularity cluster under UnitOf.
	col := j
	if s.cfg.UnitOf != nil {
		col = s.cfg.UnitOf(j, req.Object)
	}
	// A stale column's replicas — local and remote alike — hold a
	// perished generation's bytes and cannot serve this request; only
	// the generation-keyed cache or the origin can.
	stale := false
	if req.Generation > 0 {
		gen := 0
		if s.cfg.PlacedGeneration != nil {
			gen = s.cfg.PlacedGeneration[col]
		}
		stale = req.Generation > gen
	}
	switch {
	case p.Has(i, col) && !stale:
		// Served by the local replica. Replicas are always
		// consistent (§5.2), so even stale/uncacheable
		// requests stay local.
		hops = 0
		if measured {
			m.LocalReplica++
			source = obs.SourceReplica
		}
	case s.caches != nil && !req.Cacheable:
		// λ fraction: travels to SN, bypasses the cache.
		if stale {
			hops = s.sc.Sys.CostOrigin[i][j]
			if measured {
				m.Bypass++
				m.StaleReplica++
				m.OriginFetch++
				source = obs.SourceOrigin
			}
			break
		}
		hops = p.NearestCost(i, col)
		if measured {
			m.Bypass++
			source = m.countRemote(p, i, col)
		}
	case s.caches != nil:
		// The generation is folded into the cache key's high bits so a
		// republished site's fresh objects never alias its
		// predecessor's cached bytes (64-bit int assumed, as elsewhere).
		key := cache.Key{Site: j, Object: req.Object + req.Generation<<32}
		if s.caches[i].Get(key) {
			hops = 0
			if measured {
				m.CacheHits++
				m.PerServerHits[i]++
				m.PerServerLookups[i]++
				source = obs.SourceCache
			}
		} else {
			if stale {
				hops = s.sc.Sys.CostOrigin[i][j]
			} else {
				hops = p.NearestCost(i, col)
			}
			s.caches[i].Put(key, s.sc.Work.Size(j, req.Object))
			if measured {
				m.CacheMisses++
				m.PerServerLookups[i]++
				if stale {
					m.StaleReplica++
					m.OriginFetch++
					source = obs.SourceOrigin
				} else {
					source = m.countRemote(p, i, col)
				}
			}
		}
	default:
		// Pure replication: no cache, straight to SN.
		if stale {
			hops = s.sc.Sys.CostOrigin[i][j]
			if measured {
				if !req.Cacheable {
					m.Bypass++
				}
				m.StaleReplica++
				m.OriginFetch++
				source = obs.SourceOrigin
			}
			break
		}
		hops = p.NearestCost(i, col)
		if measured {
			if !req.Cacheable {
				m.Bypass++
			}
			source = m.countRemote(p, i, col)
		}
	}
	return hops, source
}

// finalize computes the derived metrics and publishes the snapshot; the
// running sums must have been accumulated in global request order so
// that sequential and parallel runs agree bit-for-bit.
func (m *Metrics) finalize(cfg *Config, totalRT, totalHops float64) {
	if m.Requests > 0 {
		m.MeanRTMs = totalRT / float64(m.Requests)
		m.MeanHops = totalHops / float64(m.Requests)
	}
	for i := range m.PerServerHitRatio {
		if m.PerServerLookups[i] > 0 {
			m.PerServerHitRatio[i] = float64(m.PerServerHits[i]) / float64(m.PerServerLookups[i])
		}
	}
	if cfg.Metrics != nil {
		m.publish(cfg.Metrics)
	}
}

// RunSource is Run driven by an explicit request source (e.g. a recorded
// trace). It fails if the source is exhausted before warm-up plus
// measurement completes.
func RunSource(ctx context.Context, sc *scenario.Scenario, p *core.Placement, cfg Config, src Source) (*Metrics, error) {
	if err := validateRun(sc, p, cfg); err != nil {
		return nil, err
	}
	sh := newShard(sc, p, &cfg, nil)
	m := sh.m
	if cfg.KeepResponseTimes {
		m.ResponseTimesMs = make([]float64, 0, cfg.Requests)
	}
	var rtHist *obs.Histogram
	if cfg.Metrics != nil {
		rtHist = cfg.Metrics.Histogram("sim_response_time_ms",
			"Modelled response time of measured requests, milliseconds.",
			nil, obs.DefaultLatencyBuckets())
	}

	var totalRT, totalHops float64
	total := cfg.Warmup + cfg.Requests
	for t := 0; t < total; t++ {
		if t%cancelEvery == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		req, ok := src.Next()
		if !ok {
			return nil, fmt.Errorf("sim: request source exhausted after %d of %d requests", t, total)
		}
		measured := t >= cfg.Warmup
		hops, source := sh.step(req, measured)

		if measured {
			rt := cfg.FirstHopMs + cfg.PerHopMs*hops
			totalRT += rt
			totalHops += hops
			m.Requests++
			if cfg.KeepResponseTimes {
				m.ResponseTimesMs = append(m.ResponseTimesMs, rt)
			}
			if rtHist != nil {
				rtHist.Observe(rt)
			}
			if cfg.Tracer != nil {
				ev := obs.Event{
					Req:       cfg.Tracer.NextID(),
					Edge:      req.Server,
					Site:      req.Site,
					Object:    req.Object,
					Source:    source,
					Hops:      hops,
					LatencyMs: rt,
				}
				cfg.Tracer.Emit(ev)
				if cfg.TraceSpans {
					emitSimSpans(&cfg, t-cfg.Warmup, ev)
				}
			}
		}
	}

	m.finalize(&cfg, totalRT, totalHops)
	return m, nil
}

// publish snapshots the run's counters into reg under the sim_*
// namespace — the same shape the HTTP cluster maintains live, done
// once after the run so the simulation loop stays registry-free.
func (m *Metrics) publish(reg *obs.Registry) {
	bySource := map[string]int64{
		obs.SourceReplica: m.LocalReplica,
		obs.SourceCache:   m.CacheHits,
		obs.SourcePeer:    m.RemoteServer,
		obs.SourceOrigin:  m.OriginFetch,
	}
	for _, src := range obs.Sources {
		reg.Counter("sim_requests_total",
			"Measured simulated requests by serving source.",
			obs.Labels{"source": src}).Add(bySource[src])
	}
	for i := range m.PerServerLookups {
		edge := obs.Labels{"edge": strconv.Itoa(i)}
		reg.Counter("sim_edge_cache_hits_total",
			"Cache hits at a simulated server.", edge).Add(m.PerServerHits[i])
		reg.Counter("sim_edge_cache_misses_total",
			"Cache misses at a simulated server.", edge).
			Add(m.PerServerLookups[i] - m.PerServerHits[i])
	}
}

// countRemote attributes one redirected request to its destination and
// returns the canonical source value.
func (m *Metrics) countRemote(p *core.Placement, i, j int) string {
	if srv, _ := p.Nearest(i, j); srv == core.Origin {
		m.OriginFetch++
		return obs.SourceOrigin
	}
	m.RemoteServer++
	return obs.SourcePeer
}

// MustRun is Run for known-good configurations.
func MustRun(ctx context.Context, sc *scenario.Scenario, p *core.Placement, cfg Config, r *xrand.Source) *Metrics {
	m, err := Run(ctx, sc, p, cfg, r)
	if err != nil {
		panic(err)
	}
	return m
}
