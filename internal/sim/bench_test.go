package sim

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/xrand"
)

// benchSetup builds one scenario + hybrid placement pair shared by the
// simulator benchmarks, with a request volume large enough that the
// per-request hot loop dominates setup. KeepResponseTimes is off so the
// allocation numbers reflect the loop itself, not the result slice.
func benchSetup(b *testing.B) (run func(parallelism int)) {
	b.Helper()
	sc := smallScenario(1, 0)
	p := hybridPlacementFor(sc)
	cfg := fastConfig(true)
	cfg.Requests = 200000
	cfg.Warmup = 50000
	cfg.KeepResponseTimes = false
	return func(parallelism int) {
		cfg.Parallelism = parallelism
		var err error
		if parallelism == 0 {
			_, err = Run(context.Background(), sc, p, cfg, xrand.New(9))
		} else {
			_, err = RunParallel(context.Background(), sc, p, cfg, xrand.New(9))
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunSequential is the baseline the parallel variants are
// judged against (run with -benchmem to see the allocation diet).
func BenchmarkRunSequential(b *testing.B) {
	run := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(0)
	}
}

// BenchmarkRunParallel measures the sharded runner at several worker
// counts; results are bit-identical to the sequential baseline.
func BenchmarkRunParallel(b *testing.B) {
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", par), func(b *testing.B) {
			run := benchSetup(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run(par)
			}
		})
	}
}
