package sim

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/xrand"
)

// TestPerServerHitRatioZeroLookupsIsZero is the NaN-guard regression
// test: servers whose caches never see a lookup (here: every server,
// because everything is replicated) must report hit ratio 0, not NaN.
func TestPerServerHitRatioZeroLookupsIsZero(t *testing.T) {
	sc := smallScenario(11, 0)
	for i := range sc.Sys.Capacity {
		sc.Sys.Capacity[i] = sc.Work.TotalBytes * 2
	}
	p := core.NewPlacement(sc.Sys)
	for i := 0; i < sc.Sys.N(); i++ {
		for j := 0; j < sc.Sys.M(); j++ {
			if err := p.Replicate(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	m := MustRun(context.Background(), sc, p, fastConfig(true), xrand.New(12))
	for i, r := range m.PerServerHitRatio {
		if math.IsNaN(r) || r != 0 {
			t.Errorf("server %d: hit ratio %v with %d lookups, want 0",
				i, r, m.PerServerLookups[i])
		}
		if m.PerServerLookups[i] != 0 || m.PerServerHits[i] != 0 {
			t.Errorf("server %d: lookups=%d hits=%d under full replication",
				i, m.PerServerLookups[i], m.PerServerHits[i])
		}
	}
	if math.IsNaN(m.HitRatio()) {
		t.Error("aggregate HitRatio is NaN with zero lookups")
	}
}

// TestTracerEmitsSchemaAndReconciles drives a hybrid run with the
// JSONL tracer attached and checks that (a) exactly one event per
// measured request is written, (b) every event carries a canonical
// source, and (c) the per-edge hit counts recovered from the trace
// equal the run's counters — the model-vs-measured diffing contract.
func TestTracerEmitsSchemaAndReconciles(t *testing.T) {
	sc := smallScenario(13, 0.1)
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := fastConfig(true)
	cfg.Requests = 20000
	cfg.Warmup = 10000
	cfg.Tracer = obs.NewTracer(&buf)
	m := MustRun(context.Background(), sc, res.Placement, cfg, xrand.New(14))
	if err := cfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != m.Requests {
		t.Fatalf("%d events for %d measured requests", len(events), m.Requests)
	}

	valid := map[string]bool{
		obs.SourceReplica: true, obs.SourceCache: true,
		obs.SourcePeer: true, obs.SourceOrigin: true,
	}
	perEdgeHits := make([]int64, sc.Sys.N())
	bySource := map[string]int64{}
	for _, e := range events {
		if !valid[e.Source] {
			t.Fatalf("event %d: invalid source %q", e.Req, e.Source)
		}
		bySource[e.Source]++
		if e.Source == obs.SourceCache {
			perEdgeHits[e.Edge]++
			if e.Hops != 0 {
				t.Fatalf("cache hit with %v hops", e.Hops)
			}
		}
		if e.LatencyMs != cfg.FirstHopMs+cfg.PerHopMs*e.Hops {
			t.Fatalf("event %d: latency %v != %v + %v*%v",
				e.Req, e.LatencyMs, cfg.FirstHopMs, cfg.PerHopMs, e.Hops)
		}
	}
	if bySource[obs.SourceReplica] != m.LocalReplica ||
		bySource[obs.SourceCache] != m.CacheHits ||
		bySource[obs.SourcePeer] != m.RemoteServer ||
		bySource[obs.SourceOrigin] != m.OriginFetch {
		t.Fatalf("trace source counts %v disagree with metrics %+v", bySource, m)
	}
	for i := range perEdgeHits {
		if perEdgeHits[i] != m.PerServerHits[i] {
			t.Errorf("edge %d: %d traced hits, counters say %d",
				i, perEdgeHits[i], m.PerServerHits[i])
		}
	}
}

// TestMetricsPublished checks the end-of-run registry snapshot.
func TestMetricsPublished(t *testing.T) {
	sc := smallScenario(15, 0)
	p := core.NewPlacement(sc.Sys) // pure caching: hits and misses happen
	cfg := fastConfig(true)
	cfg.Metrics = obs.NewRegistry()
	m := MustRun(context.Background(), sc, p, cfg, xrand.New(16))

	var total int64
	for _, src := range obs.Sources {
		total += cfg.Metrics.Counter("sim_requests_total", "", obs.Labels{"source": src}).Value()
	}
	if total != int64(m.Requests) {
		t.Errorf("sim_requests_total sums to %d, want %d", total, m.Requests)
	}
	hist := cfg.Metrics.Histogram("sim_response_time_ms", "", nil, obs.DefaultLatencyBuckets())
	if hist.Count() != int64(m.Requests) {
		t.Errorf("histogram count %d, want %d", hist.Count(), m.Requests)
	}
	if math.Abs(hist.Mean()-m.MeanRTMs) > 1e-6 {
		t.Errorf("histogram mean %v, metrics mean %v", hist.Mean(), m.MeanRTMs)
	}

	var b strings.Builder
	if err := cfg.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"sim_requests_total{source=\"cache\"}",
		"sim_edge_cache_hits_total{edge=\"0\"}",
		"sim_edge_cache_misses_total{edge=\"0\"}",
		"sim_response_time_ms_bucket",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("/metrics output missing %s", want)
		}
	}
}
