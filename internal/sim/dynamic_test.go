package sim

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/workload"
	"repro/internal/xrand"
)

// dynConfig drives steady publish/perish churn through the small
// scenario's 8 sites within a short run.
func dynConfig() workload.DynamicConfig {
	return workload.DynamicConfig{
		PublishRate: 0.004,
		PerishRate:  0.0005,
	}
}

// TestUnknownSiteNoPanic pins the bugfix: a request whose site index is
// outside the catalog (stale client, corrupt trace) must be answered at
// the first hop and counted, not crash the placement or size lookups.
func TestUnknownSiteNoPanic(t *testing.T) {
	sc := smallScenario(4, 0)
	p := hybridPlacementFor(sc)
	stream := sc.Stream(xrand.New(3))
	reqs := make([]workload.Request, 3000)
	unknown := 0
	for i := range reqs {
		reqs[i] = stream.Next()
		switch i % 5 {
		case 1:
			reqs[i].Site = len(sc.Work.Sites) + 3 // past the catalog
			unknown++
		case 3:
			reqs[i].Site = -1
			unknown++
		}
	}
	cfg := fastConfig(true)
	cfg.Requests = len(reqs)
	cfg.Warmup = 0
	m, err := RunSource(context.Background(), sc, p, cfg, &sliceSource{reqs: reqs})
	if err != nil {
		t.Fatal(err)
	}
	if m.UnknownSite != int64(unknown) {
		t.Fatalf("UnknownSite = %d, want %d", m.UnknownSite, unknown)
	}
	// Unknown sites are 404s answered locally: zero hops, and no leak
	// into the replica/cache/origin attribution.
	if got := m.LocalReplica + m.CacheHits + m.CacheMisses + m.Bypass; got != int64(len(reqs)-unknown) {
		t.Fatalf("served attribution covers %d requests, want %d", got, len(reqs)-unknown)
	}
}

// TestPerishedServedAtOrigin pins the perished-request semantics: a 404
// for withdrawn content pays the full origin trip, bypasses the cache,
// and lands only in the Perished/OriginFetch counters.
func TestPerishedServedAtOrigin(t *testing.T) {
	sc := smallScenario(4, 0)
	p := hybridPlacementFor(sc)
	stream := sc.Stream(xrand.New(3))
	reqs := make([]workload.Request, 2000)
	perished := 0
	var wantHops float64
	for i := range reqs {
		reqs[i] = stream.Next()
		if i%4 == 0 {
			reqs[i].Perished = true
			reqs[i].Generation = 1
			perished++
			wantHops += sc.Sys.CostOrigin[reqs[i].Server][reqs[i].Site]
		}
	}
	cfg := fastConfig(true)
	cfg.Requests = len(reqs)
	cfg.Warmup = 0
	m, err := RunSource(context.Background(), sc, p, cfg, &sliceSource{reqs: reqs})
	if err != nil {
		t.Fatal(err)
	}
	if m.Perished != int64(perished) {
		t.Fatalf("Perished = %d, want %d", m.Perished, perished)
	}
	if m.OriginFetch < int64(perished) {
		t.Fatalf("OriginFetch = %d, want >= %d (every perished request is an origin trip)",
			m.OriginFetch, perished)
	}
	if m.StaleReplica != 0 {
		t.Fatalf("StaleReplica = %d on perished-only traffic", m.StaleReplica)
	}
}

// TestStaleReplicaRedirects pins the stale-column rule: when a request's
// generation exceeds its column's placed generation, local and remote
// replicas are unusable and cache misses go to the origin — unless
// PlacedGeneration says the replicas were refreshed.
func TestStaleReplicaRedirects(t *testing.T) {
	sc := smallScenario(4, 0)
	p := hybridPlacementFor(sc)
	// Find a replicated (server, site) pair to make stale.
	var ri, rj = -1, -1
	for i := 0; i < sc.Sys.N() && ri < 0; i++ {
		for j := 0; j < sc.Sys.M(); j++ {
			if p.Has(i, j) {
				ri, rj = i, j
				break
			}
		}
	}
	if ri < 0 {
		t.Fatal("hybrid placement placed no replicas")
	}
	mk := func(gen int) []workload.Request {
		reqs := make([]workload.Request, 1000)
		for k := range reqs {
			reqs[k] = workload.Request{
				Server: ri, Site: rj, Object: 1 + k%10,
				Cacheable: true, Generation: gen,
			}
		}
		return reqs
	}
	cfg := fastConfig(true)
	cfg.Requests = 1000
	cfg.Warmup = 0

	// Generation 1 against a generation-0 placement: every miss is an
	// origin redirect; the local replica never serves.
	m, err := RunSource(context.Background(), sc, p, cfg, &sliceSource{reqs: mk(1)})
	if err != nil {
		t.Fatal(err)
	}
	if m.LocalReplica != 0 {
		t.Fatalf("stale column served %d requests from the local replica", m.LocalReplica)
	}
	if m.StaleReplica == 0 {
		t.Fatal("no StaleReplica redirects recorded")
	}
	if m.StaleReplica != m.OriginFetch {
		t.Fatalf("StaleReplica = %d but OriginFetch = %d; stale misses must go to the origin",
			m.StaleReplica, m.OriginFetch)
	}
	// The generation-keyed cache still works: 10 distinct objects over
	// 1000 requests is hit-dominated.
	if m.CacheHits <= m.CacheMisses {
		t.Fatalf("stale column cache ineffective: %d hits, %d misses", m.CacheHits, m.CacheMisses)
	}

	// Refreshed placement (PlacedGeneration[rj] = 1): local replica
	// serves everything again.
	cfg.PlacedGeneration = make([]int, sc.Sys.M())
	cfg.PlacedGeneration[rj] = 1
	m, err = RunSource(context.Background(), sc, p, cfg, &sliceSource{reqs: mk(1)})
	if err != nil {
		t.Fatal(err)
	}
	if m.LocalReplica != 1000 || m.StaleReplica != 0 {
		t.Fatalf("refreshed column: LocalReplica = %d, StaleReplica = %d; want 1000, 0",
			m.LocalReplica, m.StaleReplica)
	}
}

// TestDynamicSeqVsParallelIdentical extends the bit-identity guarantee
// to dynamic-catalog runs: the churning stream is drained by a single
// producer, so sharded execution must reproduce the sequential run
// exactly, new counters included.
func TestDynamicSeqVsParallelIdentical(t *testing.T) {
	sc := smallScenario(4, 0.05)
	p := hybridPlacementFor(sc)
	cfg := fastConfig(true)
	cfg.Requests = 40000
	cfg.Warmup = 20000
	cfg.KeepResponseTimes = true

	mk := func() Source {
		return EndlessSource{S: workload.MustNewDynamicStream(sc.Work, dynConfig(), xrand.New(11))}
	}
	seq, err := RunSource(context.Background(), sc, p, cfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4
	par, err := RunSourceParallel(context.Background(), sc, p, cfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	if seq.Perished == 0 || seq.StaleReplica == 0 {
		t.Fatalf("run exercised no dynamic outcomes (perished=%d stale=%d); raise the churn rate",
			seq.Perished, seq.StaleReplica)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("sequential and parallel dynamic runs differ:\nseq: %+v\npar: %+v", seq, par)
	}
}
