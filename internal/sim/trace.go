package sim

import (
	"strconv"

	"repro/internal/obs"
)

// emitSimSpans renders measured request k as a virtual-time span tree in
// the same schema the HTTP cluster emits, so cmd/cdntrace reads both: a
// serve root covering the modelled response time, plus an upstream child
// covering the redirect hops when the request travelled. Virtual time
// places request k at k ms (StartUs = k*1000); durations are the latency
// model's, in microseconds. All IDs derive from the request id, so the
// sequential and parallel runners — which assign ids in the same global
// order — emit byte-identical spans.
//
// Callers gate on cfg.Tracer != nil && cfg.TraceSpans, keeping the hot
// loop allocation-free when tracing is off.
func emitSimSpans(cfg *Config, k int, ev obs.Event) {
	seed := uint64(ev.Req)
	trace := obs.DeterministicTraceID(seed)
	root := obs.DeterministicSpanID(2 * seed)
	startUs := int64(k) * 1000
	cfg.Tracer.EmitSpan(obs.Span{
		Trace: trace, Span: root, Kind: obs.SpanServe,
		Edge: ev.Edge, Site: ev.Site, Object: ev.Object,
		StartUs: startUs,
		DurUs:   int64(ev.LatencyMs * 1000),
		Attrs:   map[string]string{"source": ev.Source, "outcome": "ok"},
	})
	if ev.Hops > 0 {
		// The redirected fraction: the upstream fetch begins after the
		// first hop and lasts the per-hop delay times the path length.
		cfg.Tracer.EmitSpan(obs.Span{
			Trace: trace, Span: obs.DeterministicSpanID(2*seed + 1), Parent: root,
			Kind: obs.SpanUpstream,
			Edge: ev.Edge, Site: ev.Site, Object: ev.Object,
			StartUs: startUs + int64(cfg.FirstHopMs*1000),
			DurUs:   int64(cfg.PerHopMs * ev.Hops * 1000),
			Attrs: map[string]string{
				"target":  ev.Source,
				"hops":    strconv.FormatFloat(ev.Hops, 'g', -1, 64),
				"outcome": "ok",
			},
		})
	}
}
