package sim

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// zeroCapacityScenario: servers with no storage at all — every mechanism
// degenerates to origin fetches.
func zeroCapacityScenario() *scenario.Scenario {
	w := workload.DefaultConfig()
	w.Servers = 6
	w.LowSites, w.MediumSites, w.HighSites = 2, 2, 2
	w.ObjectsPerSite = 50
	return scenario.MustBuild(scenario.Config{
		Topology: topology.Config{
			TransitDomains:        1,
			TransitNodesPerDomain: 2,
			StubsPerTransitNode:   2,
			StubNodesPerStub:      4,
			ExtraEdgeProb:         0.3,
		},
		Workload:     w,
		CapacityFrac: 0,
		Seed:         1,
	})
}

func TestZeroCapacityAllMechanismsEqual(t *testing.T) {
	sc := zeroCapacityScenario()

	repl := placement.GreedyGlobal(sc.Sys)
	if repl.Placement.Replicas() != 0 {
		t.Fatal("replicas created with zero capacity")
	}
	hyb, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hyb.Placement.Replicas() != 0 {
		t.Fatal("hybrid created replicas with zero capacity")
	}

	cfg := DefaultConfig()
	cfg.Requests = 30000
	cfg.Warmup = 5000
	mRepl := MustRun(context.Background(), sc, repl.Placement, noCache(cfg), xrand.New(2))
	mHyb := MustRun(context.Background(), sc, hyb.Placement, cfg, xrand.New(2))
	// Zero-byte caches cannot hold anything: identical behaviour.
	if mRepl.MeanRTMs != mHyb.MeanRTMs {
		t.Fatalf("zero-capacity mechanisms diverge: %v vs %v", mRepl.MeanRTMs, mHyb.MeanRTMs)
	}
	if mHyb.CacheHits != 0 {
		t.Fatal("cache hits with zero-byte caches")
	}
	if mHyb.LocalReplica != 0 {
		t.Fatal("local replica hits without replicas")
	}
}

func noCache(c Config) Config {
	c.UseCache = false
	return c
}

func TestZeroWarmup(t *testing.T) {
	sc := zeroCapacityScenario()
	cfg := DefaultConfig()
	cfg.Requests = 5000
	cfg.Warmup = 0
	m := MustRun(context.Background(), sc, core.NewPlacement(sc.Sys), cfg, xrand.New(3))
	if m.Requests != 5000 {
		t.Fatalf("measured %d requests", m.Requests)
	}
}

func TestPerServerHitRatioBounds(t *testing.T) {
	w := workload.DefaultConfig()
	w.Servers = 6
	w.LowSites, w.MediumSites, w.HighSites = 2, 2, 2
	w.ObjectsPerSite = 80
	sc := scenario.MustBuild(scenario.Config{
		Topology: topology.Config{
			TransitDomains:        1,
			TransitNodesPerDomain: 2,
			StubsPerTransitNode:   2,
			StubNodesPerStub:      4,
			ExtraEdgeProb:         0.3,
		},
		Workload:     w,
		CapacityFrac: 0.2,
		Seed:         5,
	})
	cfg := DefaultConfig()
	cfg.Requests = 40000
	cfg.Warmup = 20000
	m := MustRun(context.Background(), sc, core.NewPlacement(sc.Sys), cfg, xrand.New(6))
	if len(m.PerServerHitRatio) != sc.Sys.N() {
		t.Fatalf("%d per-server ratios", len(m.PerServerHitRatio))
	}
	for i, h := range m.PerServerHitRatio {
		if h < 0 || h > 1 {
			t.Fatalf("server %d hit ratio %v", i, h)
		}
	}
}

func TestAccountingIdentity(t *testing.T) {
	// Every measured request is exactly one of: local replica, cache
	// hit, cache miss, or bypass (when caches are on).
	sc := zeroCapacityScenario()
	w := workload.DefaultConfig()
	w.Servers = 6
	w.LowSites, w.MediumSites, w.HighSites = 2, 2, 2
	w.ObjectsPerSite = 50
	w.Lambda = 0.15
	sc = scenario.MustBuild(scenario.Config{
		Topology:     sc.Cfg.Topology,
		Workload:     w,
		CapacityFrac: 0.25,
		Seed:         7,
	})
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Requests = 50000
	cfg.Warmup = 20000
	m := MustRun(context.Background(), sc, res.Placement, cfg, xrand.New(8))
	sum := m.LocalReplica + m.CacheHits + m.CacheMisses + m.Bypass
	if sum != int64(m.Requests) {
		t.Fatalf("accounting: %d+%d+%d+%d = %d != %d requests",
			m.LocalReplica, m.CacheHits, m.CacheMisses, m.Bypass, sum, m.Requests)
	}
}
