package traceanalysis

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// corpusFor builds a corpus of two traces: a fast local hit and a slow
// multi-hop miss with health/failover/upstream/retry children.
func corpusFor(t *testing.T) *Corpus {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	tr.Emit(obs.Event{Req: 1, Edge: 0, Site: 0, Object: 1, Source: "replica", LatencyMs: 1})

	fast := obs.DeterministicTraceID(1)
	tr.EmitSpan(obs.Span{
		Trace: fast, Span: obs.DeterministicSpanID(10), Kind: obs.SpanServe,
		Edge: 0, Site: 0, Object: 1, StartUs: 0, DurUs: 1000,
		Attrs: map[string]string{"source": "replica", "outcome": "ok"},
	})

	slow := obs.DeterministicTraceID(2)
	root := obs.DeterministicSpanID(20)
	health := obs.DeterministicSpanID(21)
	fail := obs.DeterministicSpanID(22)
	up1 := obs.DeterministicSpanID(23)
	retry := obs.DeterministicSpanID(24)
	up2 := obs.DeterministicSpanID(25)
	remote := obs.DeterministicSpanID(26)
	tr.EmitSpan(obs.Span{Trace: slow, Span: root, Kind: obs.SpanServe,
		Edge: 1, Site: 2, Object: 3, StartUs: 0, DurUs: 9000,
		Attrs: map[string]string{"source": "peer", "outcome": "ok"}})
	tr.EmitSpan(obs.Span{Trace: slow, Span: health, Parent: root, Kind: obs.SpanHealth,
		Edge: 1, Site: 2, Object: 3, StartUs: 10, DurUs: 5,
		Attrs: map[string]string{"candidates": "2", "skipped_ejected": "1"}})
	tr.EmitSpan(obs.Span{Trace: slow, Span: fail, Parent: root, Kind: obs.SpanFailover,
		Edge: 1, Site: 2, Object: 3, StartUs: 20, DurUs: 8900,
		Attrs: map[string]string{"hop": "0", "target": "edge:2", "outcome": "ok"}})
	tr.EmitSpan(obs.Span{Trace: slow, Span: up1, Parent: fail, Kind: obs.SpanUpstream,
		Edge: 1, Site: 2, Object: 3, StartUs: 30, DurUs: 2000,
		Attrs: map[string]string{"attempt": "1", "target": "edge:2", "outcome": "error:unreachable"}})
	tr.EmitSpan(obs.Span{Trace: slow, Span: retry, Parent: fail, Kind: obs.SpanRetry,
		Edge: 1, Site: 2, Object: 3, StartUs: 2040, DurUs: 1000,
		Attrs: map[string]string{"after_attempt": "1"}})
	tr.EmitSpan(obs.Span{Trace: slow, Span: up2, Parent: fail, Kind: obs.SpanUpstream,
		Edge: 1, Site: 2, Object: 3, StartUs: 3050, DurUs: 5800,
		Attrs: map[string]string{"attempt": "2", "target": "edge:2", "outcome": "ok"}})
	// The remote edge's serve span, stitched under the upstream attempt
	// via the traceparent header.
	tr.EmitSpan(obs.Span{Trace: slow, Span: remote, Parent: up2, Kind: obs.SpanServe,
		Edge: 2, Site: 2, Object: 3, StartUs: 3100, DurUs: 5600,
		Attrs: map[string]string{"source": "replica", "outcome": "ok"}})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	var c Corpus
	if err := c.Load(&buf); err != nil {
		t.Fatal(err)
	}
	return &c
}

func TestStatsByKind(t *testing.T) {
	c := corpusFor(t)
	stats := c.StatsByKind()
	byKind := map[string]KindStats{}
	for _, st := range stats {
		byKind[st.Kind] = st
	}
	if st := byKind[obs.SpanServe]; st.Count != 3 || st.MaxMs != 9 {
		t.Fatalf("serve stats %+v", st)
	}
	if st := byKind[obs.SpanUpstream]; st.Count != 2 || st.MaxMs != 5.8 {
		t.Fatalf("upstream stats %+v", st)
	}
	if st := byKind[obs.SpanRetry]; st.Count != 1 || st.P50Ms != 1 {
		t.Fatalf("retry stats %+v", st)
	}
	// Canonical display order is preserved.
	if stats[0].Kind != obs.SpanServe {
		t.Fatalf("first kind %q, want serve", stats[0].Kind)
	}
}

func TestBuildTracesAndCriticalPath(t *testing.T) {
	c := corpusFor(t)
	traces := c.BuildTraces()
	if len(traces) != 2 {
		t.Fatalf("%d traces, want 2", len(traces))
	}
	slow := traces[0]
	if slow.Root.Kind != obs.SpanServe || slow.Root.DurUs != 9000 {
		t.Fatalf("slowest trace root %+v", slow.Root.Span)
	}
	if slow.Spans != 7 || slow.Orphans != 0 {
		t.Fatalf("slow trace spans=%d orphans=%d", slow.Spans, slow.Orphans)
	}
	// serve → failover → upstream(attempt 2) → remote serve.
	path := slow.CriticalPath()
	kinds := make([]string, len(path))
	for i, n := range path {
		kinds[i] = n.Kind
	}
	want := "serve failover upstream serve"
	if got := strings.Join(kinds, " "); got != want {
		t.Fatalf("critical path %q, want %q", got, want)
	}
	if path[2].Attrs["attempt"] != "2" {
		t.Fatalf("critical path picked attempt %q, want the slow retry", path[2].Attrs["attempt"])
	}
	if traces[1].Spans != 1 {
		t.Fatalf("fast trace spans=%d", traces[1].Spans)
	}
}

func TestRetryStats(t *testing.T) {
	c := corpusFor(t)
	st := c.Retry()
	if st.UpstreamAttempts != 2 || st.AttemptTagged != 2 || st.FirstAttemptOK != 0 {
		t.Fatalf("upstream attempts %+v", st)
	}
	if st.Retries != 1 || st.RetryWaitMs != 1 {
		t.Fatalf("retry stats %+v", st)
	}
	if st.FailoverHops["0"] != 1 {
		t.Fatalf("failover hops %+v", st.FailoverHops)
	}
	if st.SkippedEjected != 1 {
		t.Fatalf("skipped ejected %d", st.SkippedEjected)
	}
}

func TestCheckCleanCorpus(t *testing.T) {
	c := corpusFor(t)
	if errs := c.Check(); len(errs) != 0 {
		t.Fatalf("clean corpus fails check: %v", errs)
	}
}

func TestCheckFindsViolations(t *testing.T) {
	c := corpusFor(t)
	c.Spans = append(c.Spans,
		obs.Span{Trace: c.Spans[0].Trace, Span: obs.DeterministicSpanID(99),
			Parent: "feedfeedfeedfeed", Kind: obs.SpanServe},
		obs.Span{Trace: "nothex", Span: obs.DeterministicSpanID(98), Kind: obs.SpanServe},
		obs.Span{Trace: c.Spans[0].Trace, Span: obs.DeterministicSpanID(97), Kind: "bogus"},
	)
	errs := c.Check()
	if len(errs) != 3 {
		t.Fatalf("%d violations, want 3: %v", len(errs), errs)
	}
}

func TestBuildTraceSurvivesLostRoot(t *testing.T) {
	c := corpusFor(t)
	// Drop the slow trace's root span; the earliest orphan is promoted.
	slowID := obs.DeterministicTraceID(2)
	var kept []obs.Span
	for _, s := range c.Spans {
		if s.Trace == slowID && s.Parent == "" {
			continue
		}
		kept = append(kept, s)
	}
	c.Spans = kept
	for _, tr := range c.BuildTraces() {
		if tr.ID != slowID {
			continue
		}
		if tr.Root == nil || tr.Spans != 6 {
			t.Fatalf("lost-root trace %+v", tr)
		}
		if tr.Orphans == 0 {
			t.Fatal("lost root produced no orphans")
		}
		return
	}
	t.Fatal("slow trace vanished")
}
