// Package traceanalysis turns a JSONL span/event stream (internal/obs
// schema) into the aggregates cmd/cdntrace prints: per-kind latency
// quantiles, reconstructed trace trees, critical paths of the slowest
// requests, and retry/failover breakdowns. It also hosts the schema
// checks behind cdntrace -check.
package traceanalysis

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// Corpus is one loaded trace stream: the events and spans of a run,
// in file order.
type Corpus struct {
	Events []obs.Event
	Spans  []obs.Span
}

// Load parses one mixed JSONL stream and appends it to the corpus, so
// multiple files (e.g. a cdnd trace plus a cdnsim trace) can be
// analyzed together.
func (c *Corpus) Load(r io.Reader) error {
	events, spans, err := obs.ReadTrace(r)
	c.Events = append(c.Events, events...)
	c.Spans = append(c.Spans, spans...)
	return err
}

// KindStats summarizes the durations of all spans of one kind.
type KindStats struct {
	Kind  string
	Count int
	// P50Ms..MaxMs are duration quantiles in milliseconds.
	P50Ms, P90Ms, P99Ms, MaxMs float64
}

// StatsByKind computes duration quantiles per span kind, in the
// canonical SpanKinds order; kinds with no spans are omitted. Unknown
// kinds (schema violations, surfaced separately by Check) sort after
// the canonical ones.
func (c *Corpus) StatsByKind() []KindStats {
	byKind := map[string][]float64{}
	for _, s := range c.Spans {
		byKind[s.Kind] = append(byKind[s.Kind], float64(s.DurUs)/1000)
	}
	var out []KindStats
	appendKind := func(kind string) {
		durs := byKind[kind]
		if len(durs) == 0 {
			return
		}
		sort.Float64s(durs)
		out = append(out, KindStats{
			Kind:  kind,
			Count: len(durs),
			P50Ms: quantile(durs, 0.50),
			P90Ms: quantile(durs, 0.90),
			P99Ms: quantile(durs, 0.99),
			MaxMs: durs[len(durs)-1],
		})
		delete(byKind, kind)
	}
	for _, kind := range obs.SpanKinds {
		appendKind(kind)
	}
	rest := make([]string, 0, len(byKind))
	for kind := range byKind {
		rest = append(rest, kind)
	}
	sort.Strings(rest)
	for _, kind := range rest {
		appendKind(kind)
	}
	return out
}

// quantile reads the q-quantile from an ascending slice by
// nearest-rank, matching obs.Histogram's convention closely enough for
// a report.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Trace is one reconstructed request tree.
type Trace struct {
	ID string
	// Root is the tree's root span (parentless, or the earliest span
	// when the root record was lost).
	Root *Node
	// Spans counts all spans in the tree; Hops counts the distinct
	// components (edge/site IDs per kind-class) that recorded them.
	Spans int
	// Orphans are spans whose parent ID resolves to no span in the
	// trace — zero in a well-formed trace.
	Orphans int
}

// Node is one span with its children, children sorted by start time.
type Node struct {
	obs.Span
	Children []*Node
}

// BuildTraces reconstructs trace trees from the corpus, grouped by
// trace ID. Traces are returned sorted by root duration, slowest
// first. A span whose parent is missing from the stream counts as an
// orphan and is attached under the root so it still shows up.
func (c *Corpus) BuildTraces() []*Trace {
	group := map[string][]obs.Span{}
	for _, s := range c.Spans {
		group[s.Trace] = append(group[s.Trace], s)
	}
	out := make([]*Trace, 0, len(group))
	for id, spans := range group {
		out = append(out, buildTrace(id, spans))
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Root.DurUs != out[k].Root.DurUs {
			return out[i].Root.DurUs > out[k].Root.DurUs
		}
		return out[i].ID < out[k].ID
	})
	return out
}

func buildTrace(id string, spans []obs.Span) *Trace {
	nodes := make(map[string]*Node, len(spans))
	for _, s := range spans {
		nodes[s.Span] = &Node{Span: s}
	}
	tr := &Trace{ID: id, Spans: len(spans)}
	var root *Node
	var orphans []*Node
	for _, n := range nodes {
		switch {
		case n.Parent == "":
			// Prefer the earliest-starting root if several are
			// parentless (should be exactly one in a healthy trace).
			if root == nil || n.StartUs < root.StartUs {
				if root != nil {
					orphans = append(orphans, root)
				}
				root = n
			} else {
				orphans = append(orphans, n)
			}
		case nodes[n.Parent] != nil:
			p := nodes[n.Parent]
			p.Children = append(p.Children, n)
		default:
			orphans = append(orphans, n)
			tr.Orphans++
		}
	}
	if root == nil {
		// Root record lost (e.g. a dropped write): promote the earliest
		// orphan so the trace still renders.
		sort.Slice(orphans, func(i, k int) bool { return orphans[i].StartUs < orphans[k].StartUs })
		if len(orphans) > 0 {
			root, orphans = orphans[0], orphans[1:]
		} else {
			root = &Node{Span: obs.Span{Trace: id}}
		}
	}
	for _, o := range orphans {
		root.Children = append(root.Children, o)
	}
	var sortChildren func(n *Node)
	sortChildren = func(n *Node) {
		sort.Slice(n.Children, func(i, k int) bool {
			a, b := n.Children[i], n.Children[k]
			if a.StartUs != b.StartUs {
				return a.StartUs < b.StartUs
			}
			return a.Span.Span < b.Span.Span
		})
		for _, ch := range n.Children {
			sortChildren(ch)
		}
	}
	sortChildren(root)
	tr.Root = root
	return tr
}

// CriticalPath walks from the root into the largest-duration child at
// each level — the chain of operations that bounded the request's
// latency.
func (t *Trace) CriticalPath() []*Node {
	var path []*Node
	for n := t.Root; n != nil; {
		path = append(path, n)
		var next *Node
		for _, ch := range n.Children {
			if next == nil || ch.DurUs > next.DurUs {
				next = ch
			}
		}
		n = next
	}
	return path
}

// RetryStats aggregates the retry/failover behaviour visible in a
// corpus: how much work the serving path spent beyond the first
// attempt at the first upstream.
type RetryStats struct {
	// UpstreamAttempts counts upstream spans; AttemptTagged those
	// carrying an attempt attribute (the HTTP cluster's retried
	// fetches — the simulator's virtual fetches are untagged) and
	// FirstAttemptOK the tagged ones that were attempt 1 and ended
	// "ok".
	UpstreamAttempts int
	AttemptTagged    int
	FirstAttemptOK   int
	// Retries counts retry (backoff) spans and RetryWaitMs their total
	// duration — pure added latency.
	Retries     int
	RetryWaitMs float64
	// FailoverHops histograms failover spans by their hop attribute:
	// FailoverHops[0] is preferred-source tries, higher indices are
	// failovers after a source died.
	FailoverHops map[string]int
	// SkippedEjected sums the health spans' skipped_ejected counts —
	// how often routing steered around a tracker-ejected component.
	SkippedEjected int
}

// Retry computes the corpus's retry/failover breakdown.
func (c *Corpus) Retry() RetryStats {
	st := RetryStats{FailoverHops: map[string]int{}}
	for _, s := range c.Spans {
		switch s.Kind {
		case obs.SpanUpstream:
			st.UpstreamAttempts++
			if s.Attrs["attempt"] != "" {
				st.AttemptTagged++
				if s.Attrs["attempt"] == "1" && s.Attrs["outcome"] == "ok" {
					st.FirstAttemptOK++
				}
			}
		case obs.SpanRetry:
			st.Retries++
			st.RetryWaitMs += float64(s.DurUs) / 1000
		case obs.SpanFailover:
			hop := s.Attrs["hop"]
			if hop == "" {
				hop = "?"
			}
			st.FailoverHops[hop]++
		case obs.SpanHealth:
			var n int
			fmt.Sscanf(s.Attrs["skipped_ejected"], "%d", &n)
			st.SkippedEjected += n
		}
	}
	return st
}

// Check runs every span through the obs schema validator and verifies
// parent links resolve within their trace, returning all violations
// (capped at 20 so a rotten file doesn't flood the terminal).
func (c *Corpus) Check() []error {
	const maxErrs = 20
	var errs []error
	add := func(err error) bool {
		if len(errs) < maxErrs {
			errs = append(errs, err)
		}
		return len(errs) < maxErrs
	}
	byTrace := map[string]map[string]bool{}
	for _, s := range c.Spans {
		ids := byTrace[s.Trace]
		if ids == nil {
			ids = map[string]bool{}
			byTrace[s.Trace] = ids
		}
		ids[s.Span] = true
	}
	for _, s := range c.Spans {
		if err := obs.ValidateSpan(s); err != nil {
			if !add(err) {
				return errs
			}
			continue
		}
		if s.Parent != "" && !byTrace[s.Trace][s.Parent] {
			if !add(fmt.Errorf("span %s (kind %s) has unresolved parent %s in trace %s",
				s.Span, s.Kind, s.Parent, s.Trace)) {
				return errs
			}
		}
	}
	return errs
}
