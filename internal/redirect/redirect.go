// Package redirect implements the CDN's second design axis (§2.2):
// "where to redirect a client request (i.e., which server)". The main
// simulator always follows the paper's SN table — the nearest replicator
// — which is optimal for an uncongested network. This package adds a
// processing-load model and alternative server-selection policies in the
// spirit of [9] (response-time-aware server selection) and [24]
// (load-balancing replica systems):
//
//   - Nearest: the paper's SN redirection;
//   - LoadAware: among candidate replicators within SlackHops of the
//     nearest, pick the one minimizing network delay plus an M/M/1-style
//     queueing penalty from its current load;
//   - Spread: deterministic rotation over the same slack set,
//     load-oblivious (the DNS round-robin strawman).
//
// Load is tracked per server as a lazily-decayed EWMA of served
// requests, and every serve — local or remote — charges the serving
// node. The queueing penalty at utilization ρ is ServiceMs/(1−ρ),
// clamped, so overloaded replica holders become visibly slow.
package redirect

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/xrand"
)

// Policy selects the serving node among candidates.
type Policy string

// The implemented redirection policies.
const (
	Nearest   Policy = "nearest"
	LoadAware Policy = "load-aware"
	Spread    Policy = "spread"
)

// Config controls a redirection simulation.
type Config struct {
	Policy   Policy
	Requests int
	Warmup   int
	// FirstHopMs / PerHopMs mirror sim.Config (§5.1: 20 ms each).
	FirstHopMs, PerHopMs float64
	// ServiceMs is the base processing time of a serve at ρ = 0.
	ServiceMs float64
	// CapacityFactor scales server capacity relative to a fair share
	// of the request rate: 1 means the system saturates if any server
	// handles more than 1/N of all traffic; the paper's homogeneous
	// servers get the same factor.
	CapacityFactor float64
	// Window is the EWMA horizon in requests for load tracking.
	Window float64
	// SlackHops bounds how much farther than the nearest candidate a
	// policy may redirect to shed load.
	SlackHops float64
	// UseCache enables first-hop LRU caches (hybrid operation).
	UseCache bool
}

// DefaultConfig returns a configuration where hotspots matter: servers
// have 4x a fair share of capacity and policies may detour up to 3 hops.
func DefaultConfig() Config {
	return Config{
		Policy:         Nearest,
		Requests:       300000,
		Warmup:         300000,
		FirstHopMs:     20,
		PerHopMs:       20,
		ServiceMs:      5,
		CapacityFactor: 4,
		Window:         5000,
		SlackHops:      3,
		UseCache:       true,
	}
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.Policy != Nearest && c.Policy != LoadAware && c.Policy != Spread:
		return fmt.Errorf("redirect: unknown policy %q", c.Policy)
	case c.Requests < 1 || c.Warmup < 0:
		return fmt.Errorf("redirect: Requests=%d Warmup=%d", c.Requests, c.Warmup)
	case c.FirstHopMs < 0 || c.PerHopMs < 0 || c.ServiceMs < 0:
		return fmt.Errorf("redirect: negative delay")
	case c.CapacityFactor <= 0:
		return fmt.Errorf("redirect: CapacityFactor = %v", c.CapacityFactor)
	case c.Window <= 0:
		return fmt.Errorf("redirect: Window = %v", c.Window)
	case c.SlackHops < 0:
		return fmt.Errorf("redirect: SlackHops = %v", c.SlackHops)
	}
	return nil
}

// Metrics aggregates one redirection run.
type Metrics struct {
	Requests int
	MeanRTMs float64
	// MeanQueueMs is the mean queueing penalty per request.
	MeanQueueMs float64
	// MeanHops is the mean redirection distance.
	MeanHops float64
	// ServeShare[k] is the fraction of serves handled by server k.
	ServeShare []float64
	// MaxShare and ShareCV summarize load imbalance.
	MaxShare, ShareCV float64
	// Detours counts redirections that skipped the nearest candidate.
	Detours int64
}

// loadTracker is a lazily decayed EWMA of per-server serve counts.
type loadTracker struct {
	load   []float64
	last   []int64
	window float64
}

func newLoadTracker(n int, window float64) *loadTracker {
	return &loadTracker{load: make([]float64, n), last: make([]int64, n), window: window}
}

// at returns server k's decayed load at tick t.
func (lt *loadTracker) at(k int, t int64) float64 {
	if dt := t - lt.last[k]; dt > 0 {
		lt.load[k] *= math.Exp(-float64(dt) / lt.window)
		lt.last[k] = t
	}
	return lt.load[k]
}

// add charges one serve to server k at tick t.
func (lt *loadTracker) add(k int, t int64) {
	lt.load[k] = lt.at(k, t) + 1
	lt.last[k] = t
}

// Run simulates the redirection policy over the scenario and placement.
func Run(sc *scenario.Scenario, p *core.Placement, cfg Config, r *xrand.Source) (*Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if p.System() != sc.Sys {
		return nil, fmt.Errorf("redirect: placement belongs to a different system")
	}
	n := sc.Sys.N()

	// Candidate replicator lists per site.
	holders := make([][]int, sc.Sys.M())
	for j := 0; j < sc.Sys.M(); j++ {
		for k := 0; k < n; k++ {
			if p.Has(k, j) {
				holders[j] = append(holders[j], k)
			}
		}
	}

	var caches []cache.Cache
	if cfg.UseCache {
		caches = make([]cache.Cache, n)
		for i := 0; i < n; i++ {
			caches[i] = cache.New(cache.PolicyLRU, p.Free(i))
		}
	}

	lt := newLoadTracker(n, cfg.Window)
	// fairShare is the expected steady-state EWMA load of a server
	// handling exactly 1/N of the traffic.
	fairShare := cfg.Window / float64(n)
	capacity := fairShare * cfg.CapacityFactor
	penalty := func(k int, t int64) float64 {
		rho := lt.at(k, t) / capacity
		if rho > 0.95 {
			rho = 0.95
		}
		return cfg.ServiceMs / (1 - rho)
	}

	served := make([]int64, n)
	var rotate int64
	m := &Metrics{}
	stream := sc.Stream(r)
	var totalRT, totalQueue, totalHops float64
	total := int64(cfg.Warmup + cfg.Requests)
	for t := int64(0); t < total; t++ {
		req := stream.Next()
		i, j := req.Server, req.Site
		measured := t >= int64(cfg.Warmup)

		// The first-hop server processes every request.
		var rt, queue, hops float64
		serveLocal := func() {
			lt.add(i, t)
			served[i]++
			queue = penalty(i, t)
			rt = cfg.FirstHopMs + queue
		}
		switch {
		case p.Has(i, j):
			serveLocal()
		case caches != nil && req.Cacheable && caches[i].Get(cache.Key{Site: j, Object: req.Object}):
			serveLocal()
		default:
			// Redirect: choose among replica holders and the origin.
			target, targetHops, detour := choose(cfg, sc, lt, holders[j], i, j, t, &rotate, penalty)
			hops = targetHops
			if target >= 0 {
				lt.add(target, t)
				served[target]++
				queue = penalty(target, t)
			} else {
				queue = cfg.ServiceMs // uncongested origin
			}
			rt = cfg.FirstHopMs + cfg.PerHopMs*hops + queue
			if detour && measured {
				m.Detours++
			}
			if caches != nil && req.Cacheable {
				caches[i].Put(cache.Key{Site: j, Object: req.Object}, sc.Work.Size(j, req.Object))
			}
		}

		if measured {
			m.Requests++
			totalRT += rt
			totalQueue += queue
			totalHops += hops
		}
	}

	m.MeanRTMs = totalRT / float64(m.Requests)
	m.MeanQueueMs = totalQueue / float64(m.Requests)
	m.MeanHops = totalHops / float64(m.Requests)
	m.ServeShare = make([]float64, n)
	var totalServed int64
	for _, s := range served {
		totalServed += s
	}
	var mean, sumSq float64
	for k, s := range served {
		m.ServeShare[k] = float64(s) / float64(totalServed)
		if m.ServeShare[k] > m.MaxShare {
			m.MaxShare = m.ServeShare[k]
		}
		mean += m.ServeShare[k]
	}
	mean /= float64(n)
	for _, s := range m.ServeShare {
		sumSq += (s - mean) * (s - mean)
	}
	if mean > 0 {
		m.ShareCV = math.Sqrt(sumSq/float64(n)) / mean
	}
	return m, nil
}

// choose picks the serving node for a redirected request. It returns the
// chosen server (or -1 for the origin), its hop distance, and whether the
// choice skipped a strictly nearer candidate.
func choose(cfg Config, sc *scenario.Scenario, lt *loadTracker, holders []int, i, j int, t int64, rotate *int64, penalty func(int, int64) float64) (int, float64, bool) {
	// Establish the nearest candidate (the paper's SN).
	bestSrv, bestHops := -1, sc.Sys.CostOrigin[i][j]
	for _, k := range holders {
		if c := sc.Sys.CostServer[i][k]; c < bestHops {
			bestSrv, bestHops = k, c
		}
	}
	if cfg.Policy == Nearest || len(holders) == 0 {
		return bestSrv, bestHops, false
	}

	// Slack set: candidates within SlackHops of the nearest.
	type cand struct {
		srv  int
		hops float64
	}
	var cands []cand
	for _, k := range holders {
		if c := sc.Sys.CostServer[i][k]; c <= bestHops+cfg.SlackHops {
			cands = append(cands, cand{k, c})
		}
	}
	if c := sc.Sys.CostOrigin[i][j]; c <= bestHops+cfg.SlackHops {
		cands = append(cands, cand{-1, c})
	}
	if len(cands) <= 1 {
		return bestSrv, bestHops, false
	}

	switch cfg.Policy {
	case Spread:
		*rotate++
		pick := cands[int(*rotate)%len(cands)]
		return pick.srv, pick.hops, pick.hops > bestHops
	default: // LoadAware
		bestCost := math.Inf(1)
		pick := cand{bestSrv, bestHops}
		for _, c := range cands {
			cost := cfg.PerHopMs * c.hops
			if c.srv >= 0 {
				cost += penalty(c.srv, t)
			} else {
				cost += cfg.ServiceMs
			}
			if cost < bestCost {
				bestCost = cost
				pick = c
			}
		}
		return pick.srv, pick.hops, pick.hops > bestHops
	}
}
