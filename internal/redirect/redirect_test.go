package redirect

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func smallScenario() *scenario.Scenario {
	w := workload.DefaultConfig()
	w.Servers = 8
	w.LowSites, w.MediumSites, w.HighSites = 4, 8, 4
	w.ObjectsPerSite = 100
	return scenario.MustBuild(scenario.Config{
		Topology: topology.Config{
			TransitDomains:        1,
			TransitNodesPerDomain: 2,
			StubsPerTransitNode:   3,
			StubNodesPerStub:      5,
			ExtraEdgeProb:         0.3,
		},
		Workload:     w,
		CapacityFrac: 0.10,
		Seed:         1,
	})
}

func hybridPlacement(t *testing.T, sc *scenario.Scenario) *core.Placement {
	t.Helper()
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Placement
}

func fastConfig(p Policy) Config {
	cfg := DefaultConfig()
	cfg.Policy = p
	cfg.Requests = 60000
	cfg.Warmup = 40000
	return cfg
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Policy = "bogus" },
		func(c *Config) { c.Requests = 0 },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.ServiceMs = -1 },
		func(c *Config) { c.CapacityFactor = 0 },
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.SlackHops = -1 },
	}
	for i, m := range mutations {
		c := DefaultConfig()
		m(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestLoadTracker(t *testing.T) {
	lt := newLoadTracker(2, 100)
	lt.add(0, 0)
	lt.add(0, 0)
	if got := lt.at(0, 0); math.Abs(got-2) > 1e-12 {
		t.Fatalf("load %v, want 2", got)
	}
	// One window later the load has decayed by e^-1.
	want := 2 * math.Exp(-1)
	if got := lt.at(0, 100); math.Abs(got-want) > 1e-9 {
		t.Fatalf("decayed load %v, want %v", got, want)
	}
	if got := lt.at(1, 100); got != 0 {
		t.Fatalf("untouched server has load %v", got)
	}
}

func TestNearestMatchesSNDistances(t *testing.T) {
	sc := smallScenario()
	p := hybridPlacement(t, sc)
	m, err := Run(sc, p, fastConfig(Nearest), xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Detours != 0 {
		t.Fatalf("nearest policy detoured %d times", m.Detours)
	}
	if m.MeanRTMs <= 0 || m.MeanHops < 0 {
		t.Fatal("degenerate metrics")
	}
	// Serve shares sum to 1.
	sum := 0.0
	for _, s := range m.ServeShare {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("serve shares sum to %v", sum)
	}
}

func TestLoadAwareReducesImbalance(t *testing.T) {
	sc := smallScenario()
	// A replica-rich deployment (greedy-global fills all storage) gives
	// the redirection policy real alternatives; tight capacity makes
	// hotspots expensive, so the load-aware policy has an incentive to
	// detour.
	p := placement.GreedyGlobal(sc.Sys).Placement
	mk := func(pol Policy) *Metrics {
		cfg := fastConfig(pol)
		cfg.CapacityFactor = 1.0
		cfg.ServiceMs = 10
		cfg.SlackHops = 6
		cfg.UseCache = false
		m, err := Run(sc, p, cfg, xrand.New(3))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	near := mk(Nearest)
	aware := mk(LoadAware)
	if aware.Detours == 0 {
		t.Fatal("load-aware policy never detoured")
	}
	if aware.ShareCV >= near.ShareCV {
		t.Errorf("load-aware CV %.3f not below nearest %.3f", aware.ShareCV, near.ShareCV)
	}
	if aware.MeanQueueMs >= near.MeanQueueMs {
		t.Errorf("load-aware queueing %.2f not below nearest %.2f",
			aware.MeanQueueMs, near.MeanQueueMs)
	}
	// Detours trade hops for queueing: mean hops may rise, total RT
	// must not be (much) worse.
	if aware.MeanRTMs > near.MeanRTMs*1.02 {
		t.Errorf("load-aware RT %.2f worse than nearest %.2f", aware.MeanRTMs, near.MeanRTMs)
	}
}

func TestSpreadDetoursBlindly(t *testing.T) {
	sc := smallScenario()
	p := hybridPlacement(t, sc)
	m, err := Run(sc, p, fastConfig(Spread), xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if m.Detours == 0 {
		t.Fatal("spread policy never rotated away from the nearest candidate")
	}
	near, err := Run(sc, p, fastConfig(Nearest), xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Load-oblivious rotation pays more hops than nearest.
	if m.MeanHops <= near.MeanHops {
		t.Errorf("spread hops %.3f not above nearest %.3f", m.MeanHops, near.MeanHops)
	}
}

func TestDeterministic(t *testing.T) {
	sc := smallScenario()
	p := hybridPlacement(t, sc)
	a, err := Run(sc, p, fastConfig(LoadAware), xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, p, fastConfig(LoadAware), xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanRTMs != b.MeanRTMs || a.Detours != b.Detours {
		t.Fatal("identical seeds diverged")
	}
}

func TestForeignPlacementRejected(t *testing.T) {
	a := smallScenario()
	b := scenario.MustBuild(scenario.Config{
		Topology:     a.Cfg.Topology,
		Workload:     a.Cfg.Workload,
		CapacityFrac: a.Cfg.CapacityFrac,
		Seed:         42,
	})
	if _, err := Run(a, core.NewPlacement(b.Sys), fastConfig(Nearest), xrand.New(1)); err == nil {
		t.Fatal("foreign placement accepted")
	}
}
