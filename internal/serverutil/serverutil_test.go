package serverutil

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestStartAddrAndURL(t *testing.T) {
	s, err := Start(Config{
		Addr: "127.0.0.1:0",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, "pong")
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !strings.HasPrefix(s.URL(), "http://127.0.0.1:") {
		t.Fatalf("URL = %q", s.URL())
	}
	resp, err := http.Get(s.URL() + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("body = %q", body)
	}
}

// TestShutdownDrainsInFlight pins the drain discipline: requests
// accepted before Shutdown complete with their real status — no 5xx
// from the shutdown itself — while connections arriving after drain
// starts are refused.
func TestShutdownDrainsInFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var served atomic.Int64
	s, err := Start(Config{
		Addr: "127.0.0.1:0",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			started <- struct{}{}
			<-release
			served.Add(1)
			io.WriteString(w, "slow-ok")
		}),
		DrainTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	url := s.URL()

	var wg sync.WaitGroup
	wg.Add(1)
	status := make(chan int, 1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(url + "/slow")
		if err != nil {
			status <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	<-started // the slow request is in flight

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()

	// Give Shutdown a moment to close the listener, then release the
	// in-flight request.
	time.Sleep(50 * time.Millisecond)
	close(release)

	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if got := <-status; got != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", got)
	}
	if served.Load() != 1 {
		t.Fatalf("served = %d", served.Load())
	}
	// New connections must now be refused.
	c := &http.Client{Timeout: 500 * time.Millisecond}
	if _, err := c.Get(url + "/after"); err == nil {
		t.Fatal("request after shutdown succeeded")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	s, err := Start(Config{Addr: "127.0.0.1:0", Handler: http.NewServeMux()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServeUntil(t *testing.T) {
	s, err := Start(Config{Addr: "127.0.0.1:0", Handler: http.NewServeMux()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ServeUntil(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeUntil did not return after cancel")
	}
}

func TestDebugMux(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("serverutil_test_total", "test", nil).Inc()
	s, err := Start(Config{Addr: "127.0.0.1:0", Handler: DebugMux(reg)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, path := range []string{"/metrics", "/debug/vars"} {
		resp, err := http.Get(s.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "serverutil_test_total") {
			t.Fatalf("%s missing registered metric", path)
		}
	}
	// nil registry still yields a usable mux.
	if DebugMux(nil) == nil {
		t.Fatal("DebugMux(nil) = nil")
	}
}

func TestWaitReady(t *testing.T) {
	s, err := Start(Config{Addr: "127.0.0.1:0", Handler: http.NewServeMux()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := WaitReady(context.Background(), nil, s.URL()+"/", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// An address nothing listens on times out with the dial error wrapped.
	err = WaitReady(context.Background(), nil, "http://127.0.0.1:1/", 200*time.Millisecond)
	if err == nil {
		t.Fatal("WaitReady succeeded against a dead address")
	}
}
