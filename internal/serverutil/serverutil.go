// Package serverutil holds the HTTP-daemon boilerplate shared by every
// binary in this repo that runs a long-lived server: bind a listener
// (supporting the ":0 pick a port" idiom), serve a handler in the
// background, expose the observability surface (/metrics, /debug/vars,
// /debug/pprof/) from an obs.Registry, and drain in-flight requests on
// shutdown instead of snapping connections.
//
// cmd/cdnd grew this logic first; cmd/cdnedge, cmd/cdnorigin and
// cmd/cdncontrol share it from here instead of copy-pasting it four
// times. The drain discipline is what the graceful-shutdown tests pin:
// after Shutdown begins, requests already accepted complete with their
// real status (zero 5xx from the shutdown itself) while new connections
// are refused.
package serverutil

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultDrainTimeout bounds how long Shutdown waits for in-flight
// requests before giving up and closing connections hard.
const DefaultDrainTimeout = 10 * time.Second

// Config describes one component HTTP server.
type Config struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port).
	Addr string
	// Handler serves every request. Required.
	Handler http.Handler
	// DrainTimeout bounds Shutdown's wait for in-flight requests;
	// 0 selects DefaultDrainTimeout.
	DrainTimeout time.Duration
	// Logf, when non-nil, receives serve-loop errors (a closed listener
	// during shutdown is not reported).
	Logf func(format string, args ...any)
}

// Server is a running HTTP server bound to a concrete address.
type Server struct {
	cfg Config
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// Start binds cfg.Addr and serves cfg.Handler in the background. Always
// Shutdown (or Close) a started server.
func Start(cfg Config) (*Server, error) {
	if cfg.Handler == nil {
		return nil, fmt.Errorf("serverutil: nil handler")
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("serverutil: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:  cfg,
		ln:   ln,
		srv:  &http.Server{Handler: cfg.Handler},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			if cfg.Logf != nil {
				cfg.Logf("serverutil: serve %s: %v", ln.Addr(), err)
			}
		}
	}()
	return s, nil
}

// Addr returns the bound address (the real port when Addr was ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the http:// base URL of the server.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Shutdown stops accepting connections and waits — up to the drain
// timeout, or until ctx is done, whichever is sooner — for in-flight
// requests to complete. It is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	dctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	err := s.srv.Shutdown(dctx)
	<-s.done
	return err
}

// Close shuts down with a background-context drain — the deferred-close
// idiom for mains and tests.
func (s *Server) Close() error { return s.Shutdown(context.Background()) }

// ServeUntil blocks until ctx is cancelled, then drains and returns the
// shutdown error. It is the whole lifecycle of a daemon listener:
//
//	srv, err := serverutil.Start(cfg)
//	...
//	return srv.ServeUntil(ctx) // SIGINT/SIGTERM cancels ctx
func (s *Server) ServeUntil(ctx context.Context) error {
	<-ctx.Done()
	return s.Shutdown(context.Background())
}

// DebugMux returns the standard observability mux for a component:
// /metrics, /debug/vars and /debug/pprof/ from reg (nil reg yields an
// empty mux to mount component endpoints on).
func DebugMux(reg *obs.Registry) *http.ServeMux {
	if reg == nil {
		return http.NewServeMux()
	}
	return reg.DebugMux()
}

// WaitReady polls url with GET until it answers any HTTP status or the
// deadline passes — the "is the control plane up yet" loop every
// cluster binary runs at startup before registering.
func WaitReady(ctx context.Context, client *http.Client, url string, timeout time.Duration) error {
	if client == nil {
		client = &http.Client{Timeout: time.Second}
	}
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
			return nil
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
	return fmt.Errorf("serverutil: %s not ready after %v: %w", url, timeout, lastErr)
}
