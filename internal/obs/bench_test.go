package obs

import (
	"sync/atomic"
	"testing"
)

// The instrumentation contract is that counters and histograms are
// cheap enough (<100 ns/op) to stay always-on in the serving and
// simulation hot paths. `go test -bench=. ./internal/obs` verifies it;
// BenchmarkUninstrumentedBaseline is the raw-atomic floor to compare
// against.

func BenchmarkUninstrumentedBaseline(b *testing.B) {
	var v atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v.Add(1)
		}
	})
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	var g Gauge
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			g.Set(42)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefaultLatencyBuckets())
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i % 1000))
			i++
		}
	})
}

// BenchmarkHistogramObserveSerial is the single-goroutine cost — the
// number the <100ns/op instrumentation budget is stated against.
func BenchmarkHistogramObserveSerial(b *testing.B) {
	h := NewHistogram(DefaultLatencyBuckets())
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

func BenchmarkCounterIncSerial(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
