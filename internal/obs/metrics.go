package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("obs: Counter.Add(%d): counters only go up", delta))
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. bytes resident in a
// cache). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with atomic bucket counters,
// suitable for always-on latency measurement. Buckets follow the
// Prometheus convention: bucket i counts observations v <= bounds[i],
// plus an implicit +Inf overflow bucket. All methods are safe for
// concurrent use; Observe is a binary search plus three atomic adds.
type Histogram struct {
	bounds []float64      // strictly increasing upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is +Inf overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds. An empty bounds slice panics: a histogram with only the
// overflow bucket cannot estimate anything.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: NewHistogram with no bucket bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v <= %v",
				i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// DefaultLatencyBuckets spans 50µs to 10s when observations are in
// milliseconds — wide enough for both the loopback HTTP cluster
// (sub-millisecond) and the simulator's 20 ms/hop model latencies.
func DefaultLatencyBuckets() []float64 {
	return []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
}

// ExponentialBuckets returns n bounds starting at start, each factor
// times the previous. start must be positive and factor > 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: ExponentialBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n bounds starting at start, each width apart.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic(fmt.Sprintf("obs: LinearBuckets(%v, %v, %d)", start, width, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound >= v, i.e. the smallest bucket whose upper bound
	// admits v; len(bounds) = the +Inf overflow bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns the mean observation, or 0 before any observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns a snapshot of the per-bucket (non-cumulative)
// counts; the last entry is the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the bucket containing the target rank, the same
// estimate Prometheus's histogram_quantile computes. The first bucket
// interpolates from 0; observations landing in the +Inf overflow
// bucket clamp to the highest finite bound. Returns 0 before any
// observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.bounds {
		n := float64(h.counts[i].Load())
		if cum+n >= rank && n > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			return lo + (hi-lo)*(rank-cum)/n
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}
