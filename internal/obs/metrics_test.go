package obs

import (
	"math"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value() = %d, want 7", got)
	}
}

// TestHistogramBucketBoundaries pins the le (less-or-equal) bucket
// convention: a value exactly on a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 5, 6} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1, 1} // le=1: {0.5, 1}; le=2: {1.5, 2}; le=5: {5}; +Inf: {6}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BucketCounts() = %v, want %v", got, want)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("Count() = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-16) > 1e-9 {
		t.Fatalf("Sum() = %v, want 16", h.Sum())
	}
}

// TestHistogramQuantileUniform checks the interpolation against a known
// uniform distribution: values 1..1000 into 10-wide buckets must give
// quantiles exact to within one bucket width.
func TestHistogramQuantileUniform(t *testing.T) {
	h := NewHistogram(LinearBuckets(10, 10, 100))
	for v := 1; v <= 1000; v++ {
		h.Observe(float64(v))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 500}, {0.90, 900}, {0.95, 950}, {0.99, 990}, {1.0, 1000},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 10 {
			t.Errorf("Quantile(%v) = %v, want %v ± 10", tc.q, got, tc.want)
		}
	}
	if got := h.Mean(); math.Abs(got-500.5) > 1e-9 {
		t.Errorf("Mean() = %v, want 500.5", got)
	}
}

// TestHistogramQuantileZipf checks a skewed distribution: most mass in
// the lowest bucket must pull p50 down while p99 stays in the tail.
func TestHistogramQuantileZipf(t *testing.T) {
	h := NewHistogram(ExponentialBuckets(1, 2, 12)) // 1, 2, 4, ..., 2048
	// 900 observations at 0.5, 90 at 100, 10 at 1500.
	for i := 0; i < 900; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1500)
	}
	if p50 := h.Quantile(0.50); p50 > 1 {
		t.Errorf("p50 = %v, want <= 1 (lowest bucket)", p50)
	}
	if p95 := h.Quantile(0.95); p95 < 64 || p95 > 128 {
		t.Errorf("p95 = %v, want within (64, 128] bucket", p95)
	}
	if p999 := h.Quantile(0.999); p999 < 1024 || p999 > 2048 {
		t.Errorf("p99.9 = %v, want within (1024, 2048] bucket", p999)
	}
}

func TestHistogramQuantileEmptyAndOverflow(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	h.Observe(100) // lands in +Inf: quantile clamps to highest bound
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("overflow Quantile = %v, want 2 (highest finite bound)", got)
	}
}

func TestHistogramValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty bounds":      func() { NewHistogram(nil) },
		"non-increasing":    func() { NewHistogram([]float64{1, 1}) },
		"exp bad factor":    func() { ExponentialBuckets(1, 1, 3) },
		"linear bad width":  func() { LinearBuckets(0, 0, 3) },
		"linear zero count": func() { LinearBuckets(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExponentialBuckets(1, 2, 4)
	for i, want := range []float64{1, 2, 4, 8} {
		if exp[i] != want {
			t.Fatalf("ExponentialBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(10, 5, 3)
	for i, want := range []float64{10, 15, 20} {
		if lin[i] != want {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
}
