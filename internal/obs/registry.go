package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels is one metric's label set (e.g. {"edge": "3", "source":
// "cache"}). Rendered sorted by key, so equal maps identify the same
// series.
type Labels map[string]string

// render formats labels as `{k="v",...}` with sorted keys, or "" when
// empty.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// series is one registered (name, labels) pair with exactly one of the
// metric fields set.
type series struct {
	name    string
	labels  string // rendered
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups every series of one metric name under a shared HELP and
// TYPE line.
type family struct {
	name string
	help string
	typ  string // counter | gauge | histogram
}

// Registry holds named metrics and renders them as Prometheus text
// exposition format or expvar-style JSON. The zero value is not usable;
// call NewRegistry. Get-or-create accessors and rendering are safe for
// concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	series   map[string]*series // key: name + rendered labels
	order    []*series          // registration order, sorted at render time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		series:   make(map[string]*series),
	}
}

// lookup returns the series for (name, labels), creating it via mk on
// first use, and panics when the name is already registered with a
// different metric type.
func (r *Registry) lookup(name, help, typ string, labels Labels, mk func() *series) *series {
	rendered := labels.render()
	key := name + rendered
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
		}
	} else {
		r.families[name] = &family{name: name, help: help, typ: typ}
	}
	if s, ok := r.series[key]; ok {
		return s
	}
	s := mk()
	s.name = name
	s.labels = rendered
	r.series[key] = s
	r.order = append(r.order, s)
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use. help is recorded on the first registration of the name.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.lookup(name, help, "counter", labels, func() *series {
		return &series{counter: &Counter{}}
	}).counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.lookup(name, help, "gauge", labels, func() *series {
		return &series{gauge: &Gauge{}}
	}).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at render
// time (e.g. bytes resident in a cache). fn must be safe to call
// concurrently. Re-registering the same (name, labels) keeps the first
// function.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.lookup(name, help, "gauge", labels, func() *series {
		return &series{gaugeFn: fn}
	})
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket bounds on first use (later calls keep the first
// bounds).
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	return r.lookup(name, help, "histogram", labels, func() *series {
		return &series{hist: NewHistogram(bounds)}
	}).hist
}

// snapshot returns the series sorted by (name, labels) plus the family
// table, under the read lock.
func (r *Registry) snapshot() ([]*series, map[string]*family) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]*series(nil), r.order...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	fams := make(map[string]*family, len(r.families))
	for k, v := range r.families {
		fams[k] = v
	}
	return out, fams
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4), families sorted by name, series
// sorted by label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ordered, fams := r.snapshot()
	var b strings.Builder
	lastFamily := ""
	for _, s := range ordered {
		if s.name != lastFamily {
			f := fams[s.name]
			if f.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
			lastFamily = s.name
		}
		switch {
		case s.counter != nil:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, s.labels, s.counter.Value())
		case s.gauge != nil:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, s.labels, s.gauge.Value())
		case s.gaugeFn != nil:
			fmt.Fprintf(&b, "%s%s %s\n", s.name, s.labels, formatFloat(s.gaugeFn()))
		case s.hist != nil:
			writePrometheusHistogram(&b, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePrometheusHistogram renders one histogram series: cumulative
// `_bucket` lines with `le` labels, then `_sum` and `_count`.
func writePrometheusHistogram(b *strings.Builder, s *series) {
	h := s.hist
	counts := h.BucketCounts()
	bounds := h.bounds
	var cum int64
	for i, bound := range bounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", s.name, withLabel(s.labels, "le", formatFloat(bound)), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(b, "%s_bucket%s %d\n", s.name, withLabel(s.labels, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", s.name, s.labels, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", s.name, s.labels, h.Count())
}

// withLabel splices one extra label into an already-rendered label set.
func withLabel(rendered, key, value string) string {
	extra := key + `="` + escapeLabelValue(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders an expvar-style JSON object: one top-level key per
// series (name plus rendered labels); counters and gauges as numbers,
// histograms as {count, sum, p50, p90, p99}.
func (r *Registry) WriteJSON(w io.Writer) error {
	ordered, _ := r.snapshot()
	out := make(map[string]any, len(ordered))
	for _, s := range ordered {
		key := s.name + s.labels
		switch {
		case s.counter != nil:
			out[key] = s.counter.Value()
		case s.gauge != nil:
			out[key] = s.gauge.Value()
		case s.gaugeFn != nil:
			out[key] = s.gaugeFn()
		case s.hist != nil:
			out[key] = map[string]any{
				"count": s.hist.Count(),
				"sum":   s.hist.Sum(),
				"p50":   s.hist.Quantile(0.50),
				"p90":   s.hist.Quantile(0.90),
				"p99":   s.hist.Quantile(0.99),
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler serves the Prometheus text format (for /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves the expvar-style JSON (for /debug/vars).
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}

// DebugMux returns an http.ServeMux serving the full observability
// surface: /metrics (Prometheus text), /debug/vars (JSON) and
// /debug/pprof/ (the standard runtime profiles) — the endpoint set
// `cdnd -metrics` exposes.
func (r *Registry) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", r.JSONHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
