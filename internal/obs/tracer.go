package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Event is one per-request trace record, the schema shared by the HTTP
// CDN and the trace-driven simulator so measured behaviour can be
// diffed directly against the model's predictions. Serialized as one
// JSON object per line (JSONL).
type Event struct {
	// Req is the request id: the measured-phase sequence number in the
	// simulator, the client request number in the HTTP cluster.
	Req int64 `json:"req"`
	// Edge is the first-hop CDN server that handled the request.
	Edge int `json:"edge"`
	// Site and Object identify the requested web object.
	Site   int `json:"site"`
	Object int `json:"object"`
	// Source is where the request was served from: one of
	// SourceReplica, SourceCache, SourcePeer, SourceOrigin.
	Source string `json:"source"`
	// Hops is the redirection cost in topology hops (0 when served at
	// the first-hop server) — the paper's objective D unit.
	Hops float64 `json:"hops"`
	// LatencyMs is the measured (HTTP) or modelled (simulator)
	// response time in milliseconds.
	LatencyMs float64 `json:"latency_ms"`
}

// Tracer writes Events (and Spans) as JSONL. Safe for concurrent use;
// the first write error is sticky and subsequent emits are dropped —
// visibly: Dropped counts them, and CountDrops mirrors the count into a
// registry counter so a dying disk shows up in /metrics instead of
// silently truncating the trace. Always Flush (or Close) a tracer
// before reading its output.
type Tracer struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	enc     *json.Encoder
	err     error
	seq     atomic.Int64
	dropped atomic.Int64
	dropCtr *Counter // optional registry mirror, set by CountDrops
}

// NewTracer returns a tracer writing JSONL to w.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &Tracer{bw: bw, enc: json.NewEncoder(bw)}
}

// NextID returns a fresh request id (1, 2, 3, ...).
func (t *Tracer) NextID() int64 { return t.seq.Add(1) }

// CountDrops registers a counter (typically cdn_trace_dropped_total in
// the deployment's registry) that is incremented for every record
// discarded after a write error.
func (t *Tracer) CountDrops(c *Counter) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropCtr = c
	if n := t.dropped.Load(); n > 0 && c != nil {
		c.Add(n) // drops recorded before the counter was attached
	}
}

// Dropped reports how many records were discarded because of a write
// error (including the record whose write failed).
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// Emit appends one event.
func (t *Tracer) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(e)
}

// emitLocked encodes one record under the held mutex, counting it as
// dropped when the stream is already broken or this write breaks it.
func (t *Tracer) emitLocked(v any) {
	if t.err == nil {
		t.err = t.enc.Encode(v)
		if t.err == nil {
			return
		}
	}
	t.dropped.Add(1)
	if t.dropCtr != nil {
		t.dropCtr.Inc()
	}
}

// Flush pushes buffered events to the underlying writer and returns
// the sticky error, if any.
func (t *Tracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Err returns the sticky write error, if any.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// ReadEvents parses a JSONL trace back into events — the inverse of
// Emit, for tests and offline analysis.
func ReadEvents(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, e)
	}
}
