// Package obs is the repo's dependency-free observability layer:
// atomic counters, gauges and fixed-bucket latency histograms collected
// in a Registry that renders both the Prometheus text exposition format
// (/metrics) and expvar-style JSON (/debug/vars), plus a structured
// per-request JSONL tracer shared by the HTTP CDN and the trace-driven
// simulator.
//
// The paper's evaluation (§5–6) rests on comparing the hybrid
// placement's *predicted* cost and hit ratios (Eqs. (1)–(2)) against
// what a system actually serves. The simulator and the HTTP cluster
// therefore emit the same per-request event schema (request id,
// site/object, edge, source, hop count, latency) so measured per-edge
// hit-ratio curves can be diffed directly against the LRU model's
// predictions, and every metric is cheap enough (single atomic op) to
// stay always-on in the hot path.
//
// Only the standard library is used; nothing here pulls in a
// third-party dependency.
package obs

// Canonical request-source values shared by the HTTP CDN, the simulator
// and the JSONL trace schema.
const (
	SourceReplica = "replica" // served by a local site replica
	SourceCache   = "cache"   // served from the edge's LRU cache
	SourcePeer    = "peer"    // fetched from another CDN server (SN)
	SourceOrigin  = "origin"  // fetched from the site's origin server
)

// Sources lists the canonical source values in display order.
var Sources = []string{SourceReplica, SourceCache, SourcePeer, SourceOrigin}
