package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestSpanRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	root := Span{
		Trace: NewTraceID(), Span: NewSpanID(), Kind: SpanServe,
		Edge: 2, Site: 1, Object: 7, StartUs: 1000, DurUs: 2500,
		Attrs: map[string]string{"source": "cache"},
	}
	child := Span{
		Trace: root.Trace, Span: NewSpanID(), Parent: root.Span,
		Kind: SpanUpstream, Edge: 2, Site: 1, Object: 7,
		StartUs: 1200, DurUs: 800,
	}
	tr.EmitSpan(root)
	tr.Emit(Event{Req: 1, Edge: 2, Site: 1, Object: 7, Source: SourceCache, LatencyMs: 2.5})
	tr.EmitSpan(child)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	events, spans, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || len(spans) != 2 {
		t.Fatalf("got %d events, %d spans; want 1, 2", len(events), len(spans))
	}
	if spans[0].Kind != SpanServe || spans[1].Parent != root.Span {
		t.Fatalf("spans did not round-trip: %+v", spans)
	}
	if spans[0].Attrs["source"] != "cache" {
		t.Fatalf("attrs did not round-trip: %+v", spans[0].Attrs)
	}
	if spans[1].EndUs() != 2000 {
		t.Fatalf("EndUs = %d, want 2000", spans[1].EndUs())
	}
	for _, s := range spans {
		if err := ValidateSpan(s); err != nil {
			t.Fatalf("valid span rejected: %v", err)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	trace, span := NewTraceID(), NewSpanID()
	if len(trace) != 32 || len(span) != 16 {
		t.Fatalf("ID lengths: trace %d, span %d", len(trace), len(span))
	}
	hdr := Traceparent(trace, span)
	gotTrace, gotSpan, ok := ParseTraceparent(hdr)
	if !ok || gotTrace != trace || gotSpan != span {
		t.Fatalf("ParseTraceparent(%q) = %q, %q, %v", hdr, gotTrace, gotSpan, ok)
	}
	for _, bad := range []string{
		"", "00-zz-yy-01", hdr[:54], hdr + "0",
		"00-" + strings.ToUpper(trace) + "-" + span + "-01",
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("ParseTraceparent accepted %q", bad)
		}
	}
}

func TestDeterministicIDs(t *testing.T) {
	if DeterministicTraceID(42) != DeterministicTraceID(42) {
		t.Fatal("DeterministicTraceID is not deterministic")
	}
	if DeterministicTraceID(1) == DeterministicTraceID(2) {
		t.Fatal("DeterministicTraceID collides on adjacent seeds")
	}
	if id := DeterministicSpanID(7); len(id) != 16 || !isHex(id) {
		t.Fatalf("DeterministicSpanID(7) = %q", id)
	}
	if NewTraceID() == NewTraceID() {
		t.Fatal("NewTraceID returned the same ID twice")
	}
}

func TestValidateSpanRejects(t *testing.T) {
	good := Span{Trace: NewTraceID(), Span: NewSpanID(), Kind: SpanServe}
	cases := map[string]Span{
		"short trace":  {Trace: "abc", Span: good.Span, Kind: SpanServe},
		"short span":   {Trace: good.Trace, Span: "12", Kind: SpanServe},
		"bad parent":   {Trace: good.Trace, Span: good.Span, Parent: "xyz", Kind: SpanServe},
		"no kind":      {Trace: good.Trace, Span: good.Span},
		"unknown kind": {Trace: good.Trace, Span: good.Span, Kind: "coffee"},
		"negative dur": {Trace: good.Trace, Span: good.Span, Kind: SpanServe, DurUs: -1},
	}
	if err := ValidateSpan(good); err != nil {
		t.Fatalf("good span rejected: %v", err)
	}
	for name, s := range cases {
		if ValidateSpan(s) == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// failAfter fails every write after the first n bytes.
type failAfter struct {
	n       int
	written int
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errors.New("disk full")
	}
	w.written += len(p)
	return len(p), nil
}

func TestTracerCountsDrops(t *testing.T) {
	// A tiny buffered writer would hide the failure until Flush; force
	// flushing through by writing more than the 64 KiB buffer.
	tr := NewTracer(&failAfter{n: 1 << 16})
	reg := NewRegistry()
	ctr := reg.Counter("cdn_trace_dropped_total",
		"Trace records dropped after a write error.", nil)
	tr.CountDrops(ctr)

	big := Event{Req: 1, Source: strings.Repeat("x", 4096)}
	for i := 0; i < 64; i++ {
		tr.Emit(big)
	}
	tr.EmitSpan(Span{Trace: NewTraceID(), Span: NewSpanID(), Kind: SpanServe})
	if tr.Err() == nil {
		t.Fatal("write error did not stick")
	}
	if tr.Dropped() == 0 {
		t.Fatal("no drops counted after a write error")
	}
	if ctr.Value() != tr.Dropped() {
		t.Fatalf("registry counter %d != Dropped %d", ctr.Value(), tr.Dropped())
	}
}

func TestTracerCountDropsAttachLate(t *testing.T) {
	tr := NewTracer(&failAfter{n: 0})
	for i := 0; i < 32; i++ {
		tr.Emit(Event{Req: int64(i), Source: strings.Repeat("y", 4096)})
	}
	if tr.Dropped() == 0 {
		t.Fatal("no drops before attach")
	}
	var ctr Counter
	tr.CountDrops(&ctr)
	if ctr.Value() != tr.Dropped() {
		t.Fatalf("late-attached counter %d != Dropped %d", ctr.Value(), tr.Dropped())
	}
}
