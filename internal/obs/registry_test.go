package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// buildTestRegistry populates a registry with one of each metric kind.
func buildTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("test_requests_total", "Total requests.", Labels{"edge": "0", "source": "cache"}).Add(3)
	reg.Counter("test_requests_total", "ignored on re-registration", Labels{"edge": "1", "source": "origin"}).Inc()
	reg.Gauge("test_resident_bytes", "Resident bytes.", nil).Set(42)
	h := reg.Histogram("test_latency_ms", "Latency.", nil, []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	return reg
}

// TestWritePrometheusGolden pins the exact text exposition output:
// families sorted by name, series sorted by label set, cumulative
// histogram buckets with le labels.
func TestWritePrometheusGolden(t *testing.T) {
	const want = `# HELP test_latency_ms Latency.
# TYPE test_latency_ms histogram
test_latency_ms_bucket{le="1"} 1
test_latency_ms_bucket{le="2"} 2
test_latency_ms_bucket{le="+Inf"} 3
test_latency_ms_sum 5
test_latency_ms_count 3
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total{edge="0",source="cache"} 3
test_requests_total{edge="1",source="origin"} 1
# HELP test_resident_bytes Resident bytes.
# TYPE test_resident_bytes gauge
test_resident_bytes 42
`
	var b strings.Builder
	if err := buildTestRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Errorf("WritePrometheus mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := buildTestRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if got := out[`test_requests_total{edge="0",source="cache"}`]; got != float64(3) {
		t.Errorf("counter = %v, want 3", got)
	}
	hist, ok := out["test_latency_ms"].(map[string]any)
	if !ok {
		t.Fatalf("histogram entry missing: %v", out)
	}
	if hist["count"] != float64(3) {
		t.Errorf("histogram count = %v, want 3", hist["count"])
	}
}

func TestGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	v := 1.5
	reg.GaugeFunc("test_fn", "Computed.", nil, func() float64 { return v })
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "test_fn 1.5\n") {
		t.Errorf("GaugeFunc output missing:\n%s", b.String())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c", "", Labels{"x": "1"})
	b := reg.Counter("c", "", Labels{"x": "1"})
	if a != b {
		t.Fatal("same (name, labels) returned different counters")
	}
	if c := reg.Counter("c", "", Labels{"x": "2"}); c == a {
		t.Fatal("different labels returned the same counter")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge after counter did not panic")
		}
	}()
	reg.Gauge("m", "", nil)
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "", Labels{"path": `a"b\c` + "\n"}).Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{path="a\"b\\c\n"} 1`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	reg := buildTestRegistry()
	srv := httptest.NewServer(reg.DebugMux())
	defer srv.Close()
	for path, contains := range map[string]string{
		"/metrics":      "test_requests_total",
		"/debug/vars":   "test_latency_ms",
		"/debug/pprof/": "profiles",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body := make([]byte, 1<<16)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body[:n]), contains) {
			t.Errorf("%s: body does not contain %q", path, contains)
		}
	}
}
