package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	events := []Event{
		{Req: tr.NextID(), Edge: 0, Site: 3, Object: 7, Source: SourceReplica, Hops: 0, LatencyMs: 20},
		{Req: tr.NextID(), Edge: 2, Site: 1, Object: 1, Source: SourceOrigin, Hops: 4.5, LatencyMs: 110},
	}
	for _, e := range events {
		tr.Emit(e)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	// Each line must be one standalone JSON object (valid JSONL).
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(events) {
		t.Fatalf("%d lines, want %d", len(lines), len(events))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		for _, field := range []string{"req", "edge", "site", "object", "source", "hops", "latency_ms"} {
			if _, ok := m[field]; !ok {
				t.Errorf("line %q missing field %q", line, field)
			}
		}
	}

	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("ReadEvents returned %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestTracerNextIDSequence(t *testing.T) {
	tr := NewTracer(&bytes.Buffer{})
	for want := int64(1); want <= 3; want++ {
		if got := tr.NextID(); got != want {
			t.Fatalf("NextID() = %d, want %d", got, want)
		}
	}
}

// failingWriter errors after the buffered writer flushes.
type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestTracerStickyError(t *testing.T) {
	tr := NewTracer(failingWriter{})
	tr.Emit(Event{Req: 1})
	if err := tr.Flush(); err == nil {
		t.Fatal("Flush() = nil, want error")
	}
	tr.Emit(Event{Req: 2}) // must not panic; dropped
	if tr.Err() == nil {
		t.Fatal("Err() = nil after failed flush")
	}
}
