package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Span kinds emitted by the HTTP CDN and the simulator. A span's kind
// names the operation it timed; cmd/cdntrace aggregates latency
// quantiles per kind and reconstructs trace trees from the parent
// links.
const (
	// SpanServe is the root span of one request at an edge server
	// (internal edge-to-edge fetches open their own serve span as a
	// child of the calling edge's upstream span, stitching multi-hop
	// requests into one trace).
	SpanServe = "serve"
	// SpanHealth is the upstream-selection consult: which candidate
	// sources the passive health tracker offered and which ejected
	// components were skipped.
	SpanHealth = "health"
	// SpanFailover is one candidate source tried on a miss fetch — the
	// whole bounded-retry interaction with that one upstream. Hop 0 is
	// the preferred source; hops ≥ 1 are failovers after its failure.
	SpanFailover = "failover"
	// SpanUpstream is one HTTP attempt against an upstream (a single
	// round-trip under the per-attempt timeout).
	SpanUpstream = "upstream"
	// SpanRetry is the backoff wait between two attempts at the same
	// upstream — pure retry overhead on the serving path.
	SpanRetry = "retry"
	// SpanOrigin is the origin server handling one fetch.
	SpanOrigin = "origin"
)

// SpanKinds lists the canonical span kinds in display order.
var SpanKinds = []string{SpanServe, SpanHealth, SpanFailover, SpanUpstream, SpanRetry, SpanOrigin}

// Span is one timed operation in a trace, serialized to the same JSONL
// stream as Events (the "span" field discriminates the two record
// types). Trace and span IDs use the W3C trace-context lengths — 32 and
// 16 lowercase hex digits — so the Traceparent header value is a direct
// concatenation.
type Span struct {
	// Trace identifies the request tree this span belongs to; every
	// span of one client request shares it, across servers.
	Trace string `json:"trace"`
	// Span is this span's unique ID; Parent is the ID of the enclosing
	// span ("" for a root).
	Span   string `json:"span"`
	Parent string `json:"parent,omitempty"`
	// Kind is one of the Span* constants.
	Kind string `json:"kind"`
	// Edge is the component recording the span: the edge server ID, or
	// the site ID for SpanOrigin.
	Edge int `json:"edge"`
	// Site and Object identify the requested web object.
	Site   int `json:"site"`
	Object int `json:"object"`
	// StartUs is the span's start time in microseconds — wall-clock
	// Unix time in the HTTP cluster, virtual time in the simulator.
	StartUs int64 `json:"start_us"`
	// DurUs is the span's duration in microseconds.
	DurUs int64 `json:"dur_us"`
	// Attrs carries kind-specific detail: target ("edge:3"/"origin:2"),
	// hop, attempt, outcome, source, skipped-ejected counts, ...
	Attrs map[string]string `json:"attrs,omitempty"`
}

// EndUs is the span's end time in microseconds.
func (s Span) EndUs() int64 { return s.StartUs + s.DurUs }

// idState seeds span/trace ID generation: an atomic counter mixed
// through splitmix64, so IDs are unique per process, cheap (no locks,
// no crypto) and never all-zero.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano()) | 1) }

// splitmix64 is the standard 64-bit finalizer; good enough dispersion
// for trace IDs that only need uniqueness, not unpredictability.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

const hexDigits = "0123456789abcdef"

// hex64 renders v as 16 lowercase hex digits.
func hex64(v uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// NewTraceID returns a fresh 32-hex-digit trace ID.
func NewTraceID() string {
	v := idState.Add(1)
	return hex64(splitmix64(v)) + hex64(splitmix64(v^0xdeadbeefcafef00d))
}

// NewSpanID returns a fresh 16-hex-digit span ID.
func NewSpanID() string {
	return hex64(splitmix64(idState.Add(1)))
}

// DeterministicTraceID derives a 32-hex trace ID from a seed — the
// simulator's virtual-time traces use the request ID so sequential and
// parallel runs emit byte-identical spans.
func DeterministicTraceID(seed uint64) string {
	return hex64(splitmix64(seed)) + hex64(splitmix64(^seed))
}

// DeterministicSpanID derives a 16-hex span ID from a seed.
func DeterministicSpanID(seed uint64) string {
	return hex64(splitmix64(seed * 0x9e3779b97f4a7c15))
}

// TraceparentHeader is the HTTP header propagating trace context
// between CDN components, in the W3C trace-context format.
const TraceparentHeader = "Traceparent"

// Traceparent renders the header value "00-<trace>-<span>-01" linking a
// downstream request to the given span.
func Traceparent(trace, span string) string {
	return "00-" + trace + "-" + span + "-01"
}

// ParseTraceparent extracts (trace, parent-span) from a traceparent
// header value; ok is false for missing or malformed values.
func ParseTraceparent(v string) (trace, span string, ok bool) {
	// "00-" + 32 + "-" + 16 + "-01" = 55 bytes.
	if len(v) != 55 || v[0] != '0' || v[1] != '0' || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return "", "", false
	}
	trace, span = v[3:35], v[36:52]
	if !isHex(trace) || !isHex(span) {
		return "", "", false
	}
	return trace, span, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// EmitSpan appends one span to the JSONL stream. Like Emit, a sticky
// write error turns subsequent calls into counted drops.
func (t *Tracer) EmitSpan(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(s)
}

// traceLine is the union shape used to split a mixed JSONL stream back
// into events and spans: span records carry a "span" field, event
// records do not.
type traceLine struct {
	SpanID *string `json:"span"`
}

// ReadTrace parses a mixed JSONL stream of Events and Spans — the
// inverse of Emit/EmitSpan, for cmd/cdntrace and tests.
func ReadTrace(r io.Reader) (events []Event, spans []Span, err error) {
	dec := json.NewDecoder(r)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				return events, spans, nil
			}
			return events, spans, err
		}
		var probe traceLine
		if err := json.Unmarshal(raw, &probe); err != nil {
			return events, spans, err
		}
		if probe.SpanID != nil {
			var s Span
			if err := json.Unmarshal(raw, &s); err != nil {
				return events, spans, err
			}
			spans = append(spans, s)
		} else {
			var e Event
			if err := json.Unmarshal(raw, &e); err != nil {
				return events, spans, err
			}
			events = append(events, e)
		}
	}
}

// ReadSpans parses only the spans out of a mixed JSONL stream.
func ReadSpans(r io.Reader) ([]Span, error) {
	_, spans, err := ReadTrace(r)
	return spans, err
}

// ValidateSpan reports a schema violation in one span record, or nil.
// cmd/cdntrace -check runs every record through it.
func ValidateSpan(s Span) error {
	switch {
	case len(s.Trace) != 32 || !isHex(s.Trace):
		return fmt.Errorf("obs: span trace ID %q is not 32 hex digits", s.Trace)
	case len(s.Span) != 16 || !isHex(s.Span):
		return fmt.Errorf("obs: span ID %q is not 16 hex digits", s.Span)
	case s.Parent != "" && (len(s.Parent) != 16 || !isHex(s.Parent)):
		return fmt.Errorf("obs: span parent ID %q is not 16 hex digits", s.Parent)
	case s.Kind == "":
		return fmt.Errorf("obs: span %s has no kind", s.Span)
	case s.DurUs < 0:
		return fmt.Errorf("obs: span %s has negative duration %d", s.Span, s.DurUs)
	}
	for _, k := range SpanKinds {
		if s.Kind == k {
			return nil
		}
	}
	return fmt.Errorf("obs: span %s has unknown kind %q", s.Span, s.Kind)
}
