package obs

import (
	"bytes"
	"io"
	"math"
	"sync"
	"testing"
)

// TestConcurrentIncrements hammers every metric kind from many
// goroutines; run under `go test -race` it doubles as the data-race
// proof that instrumentation can stay always-on in the serving path.
func TestConcurrentIncrements(t *testing.T) {
	const goroutines, perG = 8, 10000
	reg := NewRegistry()
	tr := NewTracer(io.Discard)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Get-or-create races with other goroutines on purpose.
			c := reg.Counter("race_total", "", nil)
			gauge := reg.Gauge("race_gauge", "", nil)
			h := reg.Histogram("race_hist", "", nil, []float64{1, 10, 100})
			for i := 0; i < perG; i++ {
				c.Inc()
				gauge.Add(1)
				h.Observe(float64(i % 150))
				if i%1000 == 0 {
					tr.Emit(Event{Req: tr.NextID(), Edge: g, Source: SourceCache})
				}
			}
		}(g)
	}
	// Concurrent renders must also be safe.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b bytes.Buffer
			for i := 0; i < 50; i++ {
				b.Reset()
				if err := reg.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
				if err := reg.WriteJSON(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	const total = goroutines * perG
	if got := reg.Counter("race_total", "", nil).Value(); got != total {
		t.Errorf("counter = %d, want %d (lost updates)", got, total)
	}
	if got := reg.Gauge("race_gauge", "", nil).Value(); got != total {
		t.Errorf("gauge = %d, want %d", got, total)
	}
	h := reg.Histogram("race_hist", "", nil, []float64{1, 10, 100})
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	var wantSum float64
	for i := 0; i < perG; i++ {
		wantSum += float64(i % 150)
	}
	wantSum *= goroutines
	if math.Abs(h.Sum()-wantSum) > 1e-6*wantSum {
		t.Errorf("histogram sum = %v, want %v (lost CAS updates)", h.Sum(), wantSum)
	}
	if err := tr.Flush(); err != nil {
		t.Errorf("tracer error: %v", err)
	}
}
