// Warm-start incremental re-placement. The control plane re-solves
// Hybrid every reconcile round, but between rounds the EWMA demand
// matrix usually moves only a little, and a cold run spends almost all
// of its time on work the previous round already did: building N
// predictors (~20% of a large run) and evaluating the LRU model behind
// the benefit matrix and the per-row shrink caches (~70%). Incremental
// reuses the previous round's WarmState instead:
//
//   - Rows whose demand moved less than DriftThreshold (relative L1)
//     keep their predictor, hit ratios, visible mass and m×m
//     shrink-term cache — all the model state. Their benefit cells are
//     re-derived arithmetically (fill=false) against the live demand
//     and nearest-replica tables, so cross-row staleness (another
//     row's demand or hit ratios changed) never accumulates; the only
//     approximation is the kept model state itself, off by at most the
//     sub-threshold demand drift of its own row.
//
//   - Dirty rows are rebuilt exactly: new predictor (against the
//     SHARED hit-ratio table, so grid points memoized in earlier
//     rounds are reused bit for bit), fresh hit ratios and visible
//     mass under the carried-over placement, full row rescore with a
//     shrink-cache refill.
//
//   - The previous placement is carried over and the heap run resumes
//     from it, so a quiet round does no selection work at all: every
//     remaining candidate was already non-positive when the previous
//     round terminated. Greedy replica creation is monotone — a warm
//     round can add replicas but never remove one the demand shift no
//     longer justifies — which is why large drift falls back to a
//     cold run: when more than MaxDirtyFrac of the rows are dirty (or
//     the topology changed), the carried-over placement itself is
//     suspect and Incremental re-solves from scratch.
//
// With unchanged demand the warm round reproduces the cold solution
// exactly (test-enforced in internal/control): nothing is dirty,
// nothing has positive benefit, the placement passes through.
package placement

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/lrumodel"
)

// Default thresholds for IncrementalConfig; chosen so that EWMA noise
// on a stationary workload stays warm while a genuine hot-spot shift
// (the fault-injection and flash-crowd scenarios) goes cold.
const (
	DefaultWarmDriftThreshold = 0.05
	DefaultWarmMaxDirtyFrac   = 0.25
)

// WarmState is the reusable solver state captured from a hybrid run:
// the solution placement plus every piece of model state the next
// round can carry over. It is produced and consumed by Incremental
// (and seeded by a cold run through it); treat it as opaque.
type WarmState struct {
	placement *core.Placement
	model     lrumodel.ModelKind
	preds     []lrumodel.Model
	shared    *lrumodel.SharedTable
	h         [][]float64
	visMass   []float64
	ben       [][]float64
	hShrink   [][]float64
	steps     []Step
	// demand is the per-row demand snapshot the kept model state was
	// built against; row drift is measured against it.
	demand [][]float64
	// sys is the system the state was captured on; topology changes
	// against it force a cold run.
	sys *core.System
}

// Steps returns the full replica-creation recipe of the warm solution
// (all rounds' steps, in order).
func (w *WarmState) Steps() []Step { return w.steps }

// Shared returns the cross-round hit-ratio table (nil before any heap
// run). Callers can pass it to PredictCostOpts so repeated cost probes
// reuse the solver's memoized grid points.
func (w *WarmState) Shared() *lrumodel.SharedTable {
	if w == nil {
		return nil
	}
	return w.shared
}

// SharedStats exposes the cross-round hit-ratio table's traffic.
func (w *WarmState) SharedStats() lrumodel.SharedTableStats {
	if w == nil || w.shared == nil {
		return lrumodel.SharedTableStats{}
	}
	return w.shared.Stats()
}

// IncrementalConfig parameterizes Incremental.
type IncrementalConfig struct {
	HybridConfig
	// DriftThreshold is the relative L1 demand drift above which a
	// server's row is rebuilt exactly (predictor, hit ratios, shrink
	// cache). 0 means DefaultWarmDriftThreshold; negative disables the
	// tolerance (every row with any drift is dirty).
	DriftThreshold float64
	// MaxDirtyFrac is the dirty-row fraction above which the warm path
	// is abandoned for a cold run. 0 means DefaultWarmMaxDirtyFrac;
	// negative forces cold on any dirty row.
	MaxDirtyFrac float64
}

func (cfg IncrementalConfig) driftThreshold() float64 {
	if cfg.DriftThreshold == 0 {
		return DefaultWarmDriftThreshold
	}
	return math.Max(cfg.DriftThreshold, 0)
}

func (cfg IncrementalConfig) maxDirtyFrac() float64 {
	if cfg.MaxDirtyFrac == 0 {
		return DefaultWarmMaxDirtyFrac
	}
	return math.Max(cfg.MaxDirtyFrac, 0)
}

// IncrementalStats reports what an Incremental call did.
type IncrementalStats struct {
	// Warm is true when the previous state was repaired in place;
	// false means a cold solve ran (Reason says why).
	Warm bool `json:"warm"`
	// Reason labels a cold run: "cold-start", "topology-changed",
	// "drift-too-large", "model-changed". Empty on warm rounds.
	Reason string `json:"reason,omitempty"`
	// DirtyRows / TotalRows is the measured drift extent; MaxRowDrift
	// is the largest relative L1 row drift observed.
	DirtyRows   int     `json:"dirty_rows"`
	TotalRows   int     `json:"total_rows"`
	MaxRowDrift float64 `json:"max_row_drift"`
	// PredictorsReused counts rows that kept their model state.
	PredictorsReused int `json:"predictors_reused"`
	// StepsAdded counts replicas the round created on top of the
	// carried-over placement (warm) or in total (cold).
	StepsAdded int `json:"steps_added"`
	// Shared is the cross-round hit-ratio table after the round.
	Shared lrumodel.SharedTableStats `json:"shared"`
}

// rowDriftL1 is the relative L1 distance between a row's old and new
// demand: Σ_j |new−old| / Σ_j old (1.0 when the old row was all-zero
// and the new one is not).
func rowDriftL1(old, new []float64) float64 {
	var num, den float64
	for j := range old {
		num += math.Abs(new[j] - old[j])
		den += old[j]
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return 1
	}
	return num / den
}

// sameTopology reports whether everything except Demand matches between
// the warm state's system and the new one — the precondition for
// carrying the placement and the per-row model state across.
func sameTopology(a, b *core.System) bool {
	if a == b {
		return true
	}
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for i := range a.Capacity {
		if a.Capacity[i] != b.Capacity[i] {
			return false
		}
	}
	for j := range a.SiteBytes {
		if a.SiteBytes[j] != b.SiteBytes[j] {
			return false
		}
	}
	for i := range a.CostServer {
		for k := range a.CostServer[i] {
			if a.CostServer[i][k] != b.CostServer[i][k] {
				return false
			}
		}
		for j := range a.CostOrigin[i] {
			if a.CostOrigin[i][j] != b.CostOrigin[i][j] {
				return false
			}
		}
	}
	return true
}

// Incremental re-solves the hybrid placement for sys (whose Demand is
// the new EWMA matrix), warm-starting from prev when the drift allows
// it. prev == nil runs cold. The returned WarmState feeds the next
// round; prev must not be used again after the call (its buffers are
// consumed by the repair).
func Incremental(prev *WarmState, sys *core.System, cfg IncrementalConfig) (*Result, *WarmState, IncrementalStats, error) {
	n := sys.N()
	stats := IncrementalStats{TotalRows: n}

	kind, err := lrumodel.ParseModelKind(cfg.Model)
	if err != nil {
		return nil, nil, stats, err
	}

	cold := func(reason string) (*Result, *WarmState, IncrementalStats, error) {
		stats.Warm = false
		stats.Reason = reason
		var shared *lrumodel.SharedTable
		if prev != nil {
			shared = prev.shared // grid points survive even a cold fallback
			// (entries are keyed by model kind, so this is safe across
			// a model change too)
		}
		res, warm, err := hybridColdCaptured(sys, cfg.HybridConfig, shared)
		if err != nil {
			return nil, nil, stats, err
		}
		stats.StepsAdded = len(res.Steps)
		stats.Shared = warm.SharedStats()
		return res, warm, stats, nil
	}

	if prev == nil {
		return cold("cold-start")
	}
	if !sameTopology(prev.sys, sys) {
		return cold("topology-changed")
	}
	if prev.model != kind {
		// The carried-over benefit matrices, hit ratios and the greedy
		// placement itself were all derived under a different model;
		// none of it is valid warm-start state.
		return cold("model-changed")
	}

	// Measure per-row drift against the snapshot the kept model state
	// was built on.
	thresh := cfg.driftThreshold()
	dirty := make([]bool, n)
	for i := 0; i < n; i++ {
		d := rowDriftL1(prev.demand[i], sys.Demand[i])
		if d > stats.MaxRowDrift {
			stats.MaxRowDrift = d
		}
		if d > thresh {
			dirty[i] = true
			stats.DirtyRows++
		}
	}
	if float64(stats.DirtyRows) > cfg.maxDirtyFrac()*float64(n) {
		return cold("drift-too-large")
	}
	stats.Warm = true
	stats.PredictorsReused = n - stats.DirtyRows

	// Carry the placement onto the new system (same topology, so every
	// replica still fits and the nearest-replica tables rebuild to the
	// same entries).
	p, err := prev.placement.RebuildOn(sys)
	if err != nil {
		return nil, nil, stats, fmt.Errorf("placement: warm rebuild: %w", err)
	}

	st := &hybridState{
		sys:         sys,
		cfg:         cfg.HybridConfig,
		p:           p,
		model:       kind,
		preds:       prev.preds,
		shared:      prev.shared,
		h:           prev.h,
		visMass:     prev.visMass,
		workers:     normWorkers(cfg.Parallelism, n),
		n:           n,
		m:           sys.M(),
		engine:      EngineLazy,
		engineLabel: "warm",
		ben:         prev.ben,
		hShrink:     prev.hShrink,
		baseSteps:   prev.steps,
		captureWarm: true,
	}
	if cfg.Epsilon > 0 {
		st.engine = EngineApprox
	}

	// Repair: dirty rows rebuild their model state exactly; every row
	// re-derives its benefit cells against the live demand (clean rows
	// from their kept shrink caches, fill=false — pure arithmetic).
	m := st.m
	fanOutRows(n, st.workers, func(i int) {
		if dirty[i] {
			st.preds[i] = mustModel(kind, cfg.Specs, sys.Demand[i], cfg.AvgObjectBytes, sys.Capacity[i], st.shared)
			vm := 1.0
			visible := make([]bool, m) // per-row: rows fan out concurrently
			for j := 0; j < m; j++ {
				visible[j] = !p.Has(i, j)
				if !visible[j] {
					vm -= st.preds[i].SitePopularity(j)
				}
			}
			st.h[i] = st.preds[i].HitRatiosCond(visible, p.Free(i))
			st.visMass[i] = vm
		}
		for j := 0; j < m; j++ {
			st.ben[i][j] = st.evalBenCached(i, j, st.hShrink[i], dirty[i])
		}
	})

	res := hybridHeapRun(st, maxf(cfg.Epsilon, 0))
	stats.StepsAdded = len(res.Steps) - len(prev.steps)
	next := captureWarmState(st, res, prev.demand, dirty)
	stats.Shared = next.SharedStats()
	return res, next, stats, nil
}

// hybridColdCaptured is a cold hybrid solve that also captures the
// WarmState for the next round. It always runs the heap engine (the
// warm state is the heap engine's matrices), honoring Epsilon; shared
// may carry a previous round's hit-ratio table.
func hybridColdCaptured(sys *core.System, cfg HybridConfig, shared *lrumodel.SharedTable) (*Result, *WarmState, error) {
	// Force a heap engine: the scanning engine maintains no reusable
	// state. cfg.Scan would rebuild per-predictor memos, so clear it.
	cfg.Scan = false
	if cfg.Engine == EngineAuto || cfg.Engine == EngineScan {
		if cfg.Epsilon > 0 {
			cfg.Engine = EngineApprox
		} else {
			cfg.Engine = EngineLazy
		}
	}
	st, err := newHybridState(sys, cfg)
	if err != nil {
		return nil, nil, err
	}
	if shared != nil {
		// Rebuild the predictors against the carried-over table (the
		// state constructor made a fresh one).
		st.shared = shared
		for i := 0; i < st.n; i++ {
			st.preds[i] = mustModel(st.model, cfg.Specs, sys.Demand[i], cfg.AvgObjectBytes, sys.Capacity[i], shared)
		}
	}
	st.captureWarm = true
	st.prepareCold()
	res := hybridHeapRun(st, maxf(cfg.Epsilon, 0))
	return res, captureWarmState(st, res, nil, nil), nil
}

// mustModel builds a model for one server row, panicking on invalid
// input — the warm paths only rebuild rows for configurations a cold
// run has already validated, so an error here is a programming bug.
func mustModel(kind lrumodel.ModelKind, specs []lrumodel.SiteSpec, weights []float64, avgObjBytes float64, maxCacheBytes int64, shared *lrumodel.SharedTable) lrumodel.Model {
	m, err := lrumodel.New(lrumodel.ModelConfig{
		Kind:           kind,
		Specs:          specs,
		Weights:        weights,
		AvgObjectBytes: avgObjBytes,
		MaxCacheBytes:  maxCacheBytes,
		Shared:         shared,
	})
	if err != nil {
		panic(err.Error())
	}
	return m
}

// captureWarmState snapshots the finished run's solver state (the run
// was started with captureWarm, so the shrink caches are consistent
// with the final placement). A row's drift baseline is the demand its
// model state was BUILT against, not this round's: clean rows keep
// prevDemand[i] so sub-threshold drift accumulates across rounds until
// the row is rebuilt, instead of resetting to zero every round.
// rebuilt == nil means every row was built fresh this round.
func captureWarmState(st *hybridState, res *Result, prevDemand [][]float64, rebuilt []bool) *WarmState {
	demand := make([][]float64, st.n)
	for i := range demand {
		if rebuilt != nil && !rebuilt[i] {
			demand[i] = prevDemand[i] // prev is consumed; aliasing is safe
			continue
		}
		demand[i] = append([]float64(nil), st.sys.Demand[i]...)
	}
	return &WarmState{
		placement: st.p,
		model:     st.model,
		preds:     st.preds,
		shared:    st.shared,
		h:         st.h,
		visMass:   st.visMass,
		ben:       st.ben,
		hShrink:   st.hShrink,
		steps:     res.Steps,
		demand:    demand,
		sys:       st.sys,
	}
}
