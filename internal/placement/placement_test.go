package placement

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lrumodel"
	"repro/internal/xrand"
)

// lineSystem builds a system with n servers at unit spacing on a line and
// m sites with unit-size objects (SiteBytes = objects). Origins sit at
// configurable distances; demand rows are supplied by the caller.
func lineSystem(n int, siteObjects []int, originCost [][]float64, demand [][]float64, capacity []int64) *core.System {
	sys := &core.System{
		CostServer: make([][]float64, n),
		CostOrigin: originCost,
		Demand:     demand,
		SiteBytes:  make([]int64, len(siteObjects)),
		Capacity:   capacity,
	}
	for j, L := range siteObjects {
		sys.SiteBytes[j] = int64(L)
	}
	for i := 0; i < n; i++ {
		sys.CostServer[i] = make([]float64, n)
		for k := 0; k < n; k++ {
			sys.CostServer[i][k] = math.Abs(float64(i - k))
		}
	}
	return sys
}

func specsFor(siteObjects []int, theta, lambda float64) []lrumodel.SiteSpec {
	specs := make([]lrumodel.SiteSpec, len(siteObjects))
	for j, L := range siteObjects {
		specs[j] = lrumodel.SiteSpec{Objects: L, Theta: theta, Lambda: lambda}
	}
	return specs
}

// randomSystem builds a random valid metric system for stress tests.
func randomSystem(r *xrand.Source, n, m int, capFrac float64) (*core.System, []lrumodel.SiteSpec) {
	pos := make([]float64, n)
	for i := range pos {
		pos[i] = r.Float64() * 20
	}
	siteObjects := make([]int, m)
	var totalBytes int64
	sys := &core.System{
		CostServer: make([][]float64, n),
		CostOrigin: make([][]float64, n),
		Demand:     make([][]float64, n),
		SiteBytes:  make([]int64, m),
		Capacity:   make([]int64, n),
	}
	originPos := make([]float64, m)
	for j := range originPos {
		originPos[j] = r.Float64() * 20
		siteObjects[j] = 50 + r.Intn(150)
		sys.SiteBytes[j] = int64(siteObjects[j])
		totalBytes += sys.SiteBytes[j]
	}
	for i := 0; i < n; i++ {
		sys.CostServer[i] = make([]float64, n)
		sys.CostOrigin[i] = make([]float64, m)
		sys.Demand[i] = make([]float64, m)
		sys.Capacity[i] = int64(capFrac * float64(totalBytes))
		for k := 0; k < n; k++ {
			sys.CostServer[i][k] = math.Round(math.Abs(pos[i] - pos[k]))
		}
		for j := 0; j < m; j++ {
			sys.CostOrigin[i][j] = math.Round(math.Abs(pos[i]-originPos[j])) + 2
			sys.Demand[i][j] = r.Float64() / float64(n*m)
		}
	}
	return sys, specsFor(siteObjects, 1.0, 0)
}

func TestGreedyGlobalPicksBestFirst(t *testing.T) {
	// Two servers, one site. Server 0 has 90% of the demand and the
	// origin is far from both; the first replica must land on server 0.
	sys := lineSystem(2,
		[]int{100},
		[][]float64{{10}, {10}},
		[][]float64{{0.9}, {0.1}},
		[]int64{100, 100},
	)
	res := GreedyGlobal(sys)
	if len(res.Steps) == 0 {
		t.Fatal("greedy placed nothing")
	}
	if res.Steps[0].Server != 0 || res.Steps[0].Site != 0 {
		t.Fatalf("first step %+v, want server 0 site 0", res.Steps[0])
	}
	// With both servers holding a replica the cost must be 0.
	if res.Placement.Replicas() != 2 || res.PredictedCost != 0 {
		t.Fatalf("replicas=%d cost=%v, want 2 replicas at cost 0",
			res.Placement.Replicas(), res.PredictedCost)
	}
}

func TestGreedyGlobalRespectsCapacity(t *testing.T) {
	// Capacity fits exactly one of the two sites per server.
	sys := lineSystem(2,
		[]int{100, 100},
		[][]float64{{5, 5}, {5, 5}},
		[][]float64{{0.3, 0.2}, {0.2, 0.3}},
		[]int64{100, 100},
	)
	res := GreedyGlobal(sys)
	if err := res.Placement.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if res.Placement.Replicas() != 2 {
		t.Fatalf("replicas %d, want 2 (one per server)", res.Placement.Replicas())
	}
}

func TestGreedyGlobalCostMonotone(t *testing.T) {
	sys, _ := randomSystem(xrand.New(3), 10, 6, 0.2)
	res := GreedyGlobal(sys)
	prev := core.NewPlacement(sys).Cost(core.ZeroHitRatio)
	for _, s := range res.Steps {
		if s.PredictedCost > prev+1e-9 {
			t.Fatalf("cost rose: %v -> %v", prev, s.PredictedCost)
		}
		if s.Benefit <= 0 {
			t.Fatalf("non-positive benefit step %+v", s)
		}
		prev = s.PredictedCost
	}
	if math.Abs(res.PredictedCost-prev) > 1e-9 {
		t.Fatalf("final cost %v != last step cost %v", res.PredictedCost, prev)
	}
}

func TestGreedyGlobalBeatsRandomAndPopularity(t *testing.T) {
	// Greedy-global "achieves very good solution quality" [14]; it must
	// dominate the naive baselines on average. Allow one seed to tie.
	wins := 0
	const trials = 5
	for seed := uint64(0); seed < trials; seed++ {
		sys, _ := randomSystem(xrand.New(seed), 12, 8, 0.25)
		g := GreedyGlobal(sys).PredictedCost
		rnd := Random(sys, xrand.New(seed+100)).PredictedCost
		pop := Popularity(sys).PredictedCost
		if g <= rnd+1e-9 && g <= pop+1e-9 {
			wins++
		}
	}
	if wins < trials-1 {
		t.Fatalf("greedy won only %d/%d trials", wins, trials)
	}
}

func TestHybridBenefitIsExactModelDelta(t *testing.T) {
	// The paper derives b_ij as the exact decrease of the model
	// objective; verify by replaying each hybrid step and comparing
	// PredictCost before/after.
	siteObjects := []int{80, 80, 80}
	specs := specsFor(siteObjects, 1.0, 0)
	sys := lineSystem(3,
		siteObjects,
		[][]float64{{6, 5, 7}, {5, 6, 6}, {7, 7, 5}},
		[][]float64{{0.2, 0.1, 0.05}, {0.1, 0.15, 0.1}, {0.05, 0.1, 0.15}},
		[]int64{160, 160, 160},
	)
	res, err := Hybrid(sys, HybridConfig{Specs: specs, AvgObjectBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	replay := core.NewPlacement(sys)
	prev := PredictCost(replay, specs, 1)
	for _, s := range res.Steps {
		if err := replay.Replicate(s.Server, s.Site); err != nil {
			t.Fatal(err)
		}
		cur := PredictCost(replay, specs, 1)
		got := prev - cur
		if math.Abs(got-s.Benefit) > 0.02*math.Abs(s.Benefit)+1e-6 {
			t.Fatalf("step (%d,%d): benefit %v but model delta %v",
				s.Server, s.Site, s.Benefit, got)
		}
		prev = cur
	}
}

func TestHybridNoWorseThanPureCachingUnderModel(t *testing.T) {
	// Every hybrid step has positive model benefit, so the final model
	// cost is <= the pure-caching model cost.
	for seed := uint64(0); seed < 5; seed++ {
		sys, specs := randomSystem(xrand.New(seed), 8, 6, 0.15)
		res, err := Hybrid(sys, HybridConfig{Specs: specs, AvgObjectBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		pure := PredictCost(core.NewPlacement(sys), specs, 1)
		if res.PredictedCost > pure+1e-9 {
			t.Fatalf("seed %d: hybrid model cost %v > pure caching %v",
				seed, res.PredictedCost, pure)
		}
		if err := res.Placement.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHybridPredictedCostMatchesPredictCost(t *testing.T) {
	sys, specs := randomSystem(xrand.New(11), 6, 5, 0.2)
	res, err := Hybrid(sys, HybridConfig{Specs: specs, AvgObjectBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	recomputed := PredictCost(res.Placement, specs, 1)
	if math.Abs(res.PredictedCost-recomputed) > 0.02*recomputed+1e-6 {
		t.Fatalf("reported %v vs recomputed %v", res.PredictedCost, recomputed)
	}
}

func TestHybridDegeneratesToGreedyWhenCacheUseless(t *testing.T) {
	// With an average object size far larger than any server's storage
	// the cache holds B=0 objects, every hit ratio is 0, and the hybrid
	// benefit reduces to the greedy-global benefit.
	sys, specs := randomSystem(xrand.New(13), 8, 6, 0.2)
	res, err := Hybrid(sys, HybridConfig{Specs: specs, AvgObjectBytes: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	g := GreedyGlobal(sys)
	if math.Abs(res.PredictedCost-g.PredictedCost) > 1e-9 {
		t.Fatalf("hybrid-with-useless-cache cost %v != greedy cost %v",
			res.PredictedCost, g.PredictedCost)
	}
	if res.Placement.Replicas() != g.Placement.Replicas() {
		t.Fatalf("replica counts differ: %d vs %d",
			res.Placement.Replicas(), g.Placement.Replicas())
	}
}

func TestHybridKeepsCacheWhenReplicasWorthless(t *testing.T) {
	// One server, one site, origin adjacent (cost 1), capacity equal to
	// the site. Caching absorbs most requests at zero extra cost, so
	// replication (benefit = (1-h)*r*1 minus losing the entire cache)
	// competes with h already near 1 — but replicating removes ALL
	// remaining cost, so the model may still pick it. Use two sites so
	// replication of one destroys the cache of the other.
	siteObjects := []int{100, 100}
	specs := specsFor(siteObjects, 1.0, 0)
	sys := lineSystem(1,
		siteObjects,
		[][]float64{{1, 1}},
		[][]float64{{0.5, 0.5}},
		[]int64{100},
	)
	res, err := Hybrid(sys, HybridConfig{Specs: specs, AvgObjectBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Either decision is defensible a priori; what must hold is that
	// the hybrid choice is no worse than both pure alternatives.
	pureCache := PredictCost(core.NewPlacement(sys), specs, 1)
	rep := core.NewPlacement(sys)
	if err := rep.Replicate(0, 0); err != nil {
		t.Fatal(err)
	}
	oneReplica := PredictCost(rep, specs, 1)
	best := math.Min(pureCache, oneReplica)
	if res.PredictedCost > best+1e-6 {
		t.Fatalf("hybrid %v worse than best pure option %v", res.PredictedCost, best)
	}
}

func TestHybridObserver(t *testing.T) {
	sys, specs := randomSystem(xrand.New(17), 6, 4, 0.3)
	var seen []Step
	res, err := Hybrid(sys, HybridConfig{
		Specs:          specs,
		AvgObjectBytes: 1,
		Observer:       func(s Step) { seen = append(seen, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Steps) {
		t.Fatalf("observer saw %d steps, result has %d", len(seen), len(res.Steps))
	}
}

func TestHybridErrors(t *testing.T) {
	sys, specs := randomSystem(xrand.New(19), 4, 3, 0.2)
	if _, err := Hybrid(sys, HybridConfig{Specs: specs[:2], AvgObjectBytes: 1}); err == nil {
		t.Fatal("spec-count mismatch accepted")
	}
	if _, err := Hybrid(sys, HybridConfig{Specs: specs, AvgObjectBytes: 0}); err == nil {
		t.Fatal("zero object size accepted")
	}
}

func TestNone(t *testing.T) {
	sys, _ := randomSystem(xrand.New(23), 5, 4, 0.2)
	res := None(sys)
	if res.Placement.Replicas() != 0 {
		t.Fatal("None created replicas")
	}
	for i := 0; i < sys.N(); i++ {
		if res.Placement.Free(i) != sys.Capacity[i] {
			t.Fatal("None consumed storage")
		}
	}
}

func TestAdHocReservesCache(t *testing.T) {
	sys, _ := randomSystem(xrand.New(29), 8, 6, 0.3)
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		res, err := AdHoc(sys, frac)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < sys.N(); i++ {
			used := sys.Capacity[i] - res.Placement.Free(i)
			budget := int64(float64(sys.Capacity[i]) * (1 - frac))
			if used > budget {
				t.Fatalf("frac %v server %d: replicas use %d > budget %d",
					frac, i, used, budget)
			}
			if res.Placement.Free(i) < sys.Capacity[i]-budget {
				t.Fatalf("frac %v server %d: cache %d below reserved share",
					frac, i, res.Placement.Free(i))
			}
		}
		if err := res.Placement.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAdHocExtremes(t *testing.T) {
	sys, _ := randomSystem(xrand.New(31), 6, 4, 0.3)
	// frac=1: everything is cache; identical to None.
	all, err := AdHoc(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if all.Placement.Replicas() != 0 {
		t.Fatal("AdHoc(1) created replicas")
	}
	// frac=0: identical to GreedyGlobal.
	none, err := AdHoc(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := GreedyGlobal(sys)
	if math.Abs(none.PredictedCost-g.PredictedCost) > 1e-9 {
		t.Fatalf("AdHoc(0) cost %v != greedy %v", none.PredictedCost, g.PredictedCost)
	}
	if _, err := AdHoc(sys, -0.1); err == nil {
		t.Fatal("negative fraction accepted")
	}
	if _, err := AdHoc(sys, 1.5); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	sys, _ := randomSystem(xrand.New(37), 8, 6, 0.25)
	a := Random(sys, xrand.New(1))
	b := Random(sys, xrand.New(1))
	if a.PredictedCost != b.PredictedCost || len(a.Steps) != len(b.Steps) {
		t.Fatal("Random not deterministic for equal seeds")
	}
}

func TestPopularityPrefersHotSites(t *testing.T) {
	// Server 0 demands site 1 overwhelmingly; with room for one site,
	// popularity must pick site 1.
	sys := lineSystem(1,
		[]int{100, 100},
		[][]float64{{5, 5}},
		[][]float64{{0.1, 0.9}},
		[]int64{100},
	)
	res := Popularity(sys)
	if !res.Placement.Has(0, 1) {
		t.Fatal("popularity did not replicate the hottest site")
	}
	if res.Placement.Has(0, 0) {
		t.Fatal("popularity replicated the cold site without space")
	}
}

func TestSortSitesByDemand(t *testing.T) {
	got := sortSitesByDemand([]float64{0.1, 0.5, 0.3, 0.5})
	if got[0] != 1 && got[0] != 3 {
		t.Fatalf("order %v: first must be one of the 0.5 sites", got)
	}
	d := []float64{0.1, 0.5, 0.3, 0.5}
	for i := 1; i < len(got); i++ {
		if d[got[i]] > d[got[i-1]] {
			t.Fatalf("order %v not descending", got)
		}
	}
}

func BenchmarkGreedyGlobalPaperScale(b *testing.B) {
	sys, _ := randomSystem(xrand.New(1), 50, 20, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyGlobal(sys)
	}
}

func BenchmarkHybridPaperScale(b *testing.B) {
	sys, specs := randomSystem(xrand.New(1), 50, 20, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Hybrid(sys, HybridConfig{Specs: specs, AvgObjectBytes: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
