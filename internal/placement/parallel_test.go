package placement

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/xrand"
)

// hasMatrix snapshots a placement as a boolean replica matrix so two
// placements from different runs can be compared structurally.
func hasMatrix(r *Result) [][]bool {
	sys := r.Placement.System()
	m := make([][]bool, sys.N())
	for i := range m {
		m[i] = make([]bool, sys.M())
		for j := range m[i] {
			m[i][j] = r.Placement.Has(i, j)
		}
	}
	return m
}

// requireSameResult asserts two placement runs made bit-identical
// decisions: same step sequence (including float Benefit and
// PredictedCost), same final objective, same replica matrix.
func requireSameResult(t *testing.T, label string, serial, parallel *Result) {
	t.Helper()
	if !reflect.DeepEqual(serial.Steps, parallel.Steps) {
		t.Errorf("%s: step sequences differ\nserial:   %+v\nparallel: %+v",
			label, serial.Steps, parallel.Steps)
	}
	if serial.PredictedCost != parallel.PredictedCost {
		t.Errorf("%s: predicted cost %v (serial) vs %v (parallel)",
			label, serial.PredictedCost, parallel.PredictedCost)
	}
	if !reflect.DeepEqual(hasMatrix(serial), hasMatrix(parallel)) {
		t.Errorf("%s: replica matrices differ", label)
	}
}

// TestGreedyGlobalOptsParallelMatchesSerial: every benefit cell is a pure
// function of the placement and the argmax stays sequential, so any
// worker count must reproduce the serial step sequence exactly.
func TestGreedyGlobalOptsParallelMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{1, 5, 9} {
		sys, _ := randomSystem(xrand.New(seed), 12, 8, 0.25)
		serial := GreedyGlobalOpts(sys, GreedyConfig{Parallelism: 1})
		if len(serial.Steps) == 0 {
			t.Fatalf("seed %d: degenerate run, no steps", seed)
		}
		for _, par := range []int{0, 2, 7} {
			got := GreedyGlobalOpts(sys, GreedyConfig{Parallelism: par})
			requireSameResult(t, fmt.Sprintf("seed=%d parallelism=%d", seed, par), serial, got)
		}
	}
}

// TestGreedyGlobalOptsParallelMatchesSerialUpdates repeats the check
// under the read-plus-update FAP objective.
func TestGreedyGlobalOptsParallelMatchesSerialUpdates(t *testing.T) {
	sys, _ := randomSystem(xrand.New(21), 10, 6, 0.2)
	r := xrand.New(22)
	updates := make([]float64, sys.M())
	for j := range updates {
		updates[j] = r.Float64() * 0.05
	}
	serial := GreedyGlobalOpts(sys, GreedyConfig{UpdateRates: updates, Parallelism: 1})
	got := GreedyGlobalOpts(sys, GreedyConfig{UpdateRates: updates, Parallelism: 4})
	requireSameResult(t, "updates", serial, got)
}

// TestHybridParallelMatchesSerial: hybrid rows each own one lrumodel
// predictor (memoizing, not concurrency-safe), so parallelism is
// row-granular — and therefore decision-identical to the serial path.
func TestHybridParallelMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{2, 8} {
		// Engine forced: below the auto crossover the heap engine (whose
		// row fan-out this test exercises) would not be selected.
		sys, specs := randomSystem(xrand.New(seed), 10, 7, 0.2)
		cfg := HybridConfig{Specs: specs, AvgObjectBytes: 1, Parallelism: 1, Engine: EngineLazy}
		serial, err := Hybrid(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(serial.Steps) == 0 {
			t.Fatalf("seed %d: degenerate run, no steps", seed)
		}
		for _, par := range []int{0, 3, 8} {
			cfg.Parallelism = par
			got, err := Hybrid(sys, cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, fmt.Sprintf("seed=%d parallelism=%d", seed, par), serial, got)
		}
	}
}

// TestHybridParallelMatchesSerialUpdates covers the hybrid algorithm
// with update propagation costs in play.
func TestHybridParallelMatchesSerialUpdates(t *testing.T) {
	sys, specs := randomSystem(xrand.New(31), 8, 6, 0.2)
	r := xrand.New(32)
	updates := make([]float64, sys.M())
	for j := range updates {
		updates[j] = r.Float64() * 0.05
	}
	serial, err := Hybrid(sys, HybridConfig{
		Specs: specs, AvgObjectBytes: 1, UpdateRates: updates, Parallelism: 1, Engine: EngineLazy,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Hybrid(sys, HybridConfig{
		Specs: specs, AvgObjectBytes: 1, UpdateRates: updates, Parallelism: 4, Engine: EngineLazy,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "updates", serial, got)
}
