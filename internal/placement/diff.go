package placement

import (
	"repro/internal/core"
)

// Replica identifies one (server, site) replica in a diff.
type Replica struct {
	Server int `json:"server"`
	Site   int `json:"site"`
}

// DiffResult describes how to turn one placement into another: the
// replicas to create, the replicas to drop, and the transfer volume the
// creations cost. Drops are free — §2.1's migration expense is all in
// hauling site bytes to the new holder.
type DiffResult struct {
	Created []Replica `json:"created"`
	Dropped []Replica `json:"dropped"`
	// TransferGBHops is Σ o_j·C(i, SP_j) over Created, in GB·hops:
	// each new replica fetches the whole site from its primary copy.
	TransferGBHops float64 `json:"transfer_gb_hops"`
}

// Empty reports whether the diff changes nothing.
func (d DiffResult) Empty() bool { return len(d.Created) == 0 && len(d.Dropped) == 0 }

// Diff compares two placements of same-shaped systems and returns the
// replica creations and drops that turn old into new, with the transfer
// cost of the creations priced on new's system (derived epoch systems
// share cost matrices with their base, so the price is the same either
// way). A nil old means "from scratch": every replica of new is a
// creation. Both internal/dynamic and internal/control account replica
// movement through this one helper.
func Diff(old, new *core.Placement) DiffResult {
	sys := new.System()
	var d DiffResult
	for i := 0; i < sys.N(); i++ {
		for j := 0; j < sys.M(); j++ {
			has, had := new.Has(i, j), old != nil && old.Has(i, j)
			switch {
			case has && !had:
				d.Created = append(d.Created, Replica{Server: i, Site: j})
				d.TransferGBHops += float64(sys.SiteBytes[j]) * sys.CostOrigin[i][j] / 1e9
			case !has && had:
				d.Dropped = append(d.Dropped, Replica{Server: i, Site: j})
			}
		}
	}
	return d
}

// HybridWithDemand re-runs the hybrid algorithm against fresh demand on
// an unchanged deployment: base supplies the costs, capacities and site
// sizes; demand replaces base.Demand. This is the re-placement entry
// point of the online control loop, which estimates demand from the
// live request stream and cannot touch the topology.
func HybridWithDemand(base *core.System, demand [][]float64, cfg HybridConfig) (*Result, error) {
	sys, err := base.WithDemand(demand)
	if err != nil {
		return nil, err
	}
	return Hybrid(sys, cfg)
}
