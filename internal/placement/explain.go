package placement

// ExplainStep is one replica-creation decision annotated with the
// engine work that produced it — the audit trail behind a placement
// run. The JSON tags match what cmd/cdntrace and the control plane's
// /debug/control/audit serve.
type ExplainStep struct {
	// Iter is the 0-based decision index within the run.
	Iter int `json:"iter"`
	// Server and Site identify the replica created.
	Server int `json:"server"`
	Site   int `json:"site"`
	// Benefit is the winning candidate's marginal benefit (the heap key
	// or scan maximum that selected it).
	Benefit float64 `json:"benefit"`
	// PredictedCost is the objective D after applying the step, under
	// the engine's own cost model.
	PredictedCost float64 `json:"predicted_cost"`
	// HeapPops counts heap pops since the previous step (lazy engines;
	// 0 for the Scan reference engines).
	HeapPops int `json:"heap_pops,omitempty"`
	// StaleReevals counts popped entries whose key was out of date and
	// had to be re-evaluated against the live state.
	StaleReevals int `json:"stale_reevals,omitempty"`
	// Superseded counts popped entries discarded because a newer entry
	// for the same cell was already live (hybrid lazy deletion).
	Superseded int `json:"superseded,omitempty"`
	// Infeasible counts popped candidates that no longer fit.
	Infeasible int `json:"infeasible,omitempty"`
	// Engine labels the selection engine that produced the step:
	// "scan", "lazy", "approx" or "warm" (incremental repair).
	Engine string `json:"engine,omitempty"`
	// Model labels the analytical hit-ratio model the benefit terms
	// were evaluated under ("eq1", "che", "closedform", "random";
	// empty for the model-free greedy engines).
	Model string `json:"model,omitempty"`
	// RowsDeferred counts row re-evaluations the approximate engine
	// deferred since the previous step (ε > 0 only); each deferral
	// grows the row's drift bound instead of paying the re-evaluation.
	RowsDeferred int `json:"rows_deferred,omitempty"`
	// RowsCaughtUp counts deferred rows re-evaluated exactly since the
	// previous step, either to restore headroom when the drift budget
	// ran out or during the final drain sweep.
	RowsCaughtUp int `json:"rows_caught_up,omitempty"`
	// CellsVerified counts optimistic seed cells whose exact value was
	// computed since the previous step — the cell surfaced at the top
	// of the heap, so the engine filled its m-entry shrink slice (the
	// lazy cold start defers the m×m row fills entirely and pays only
	// these slices; ε > 0 only).
	CellsVerified int `json:"cells_verified,omitempty"`
	// DriftAccepts counts selections accepted under drift uncertainty:
	// the winning entry's gap to the runner-up did not cover the
	// outstanding drift bounds, and the worst-case loss was charged to
	// the ε budget instead of re-evaluating.
	DriftAccepts int `json:"drift_accepts,omitempty"`
	// DriftBudgetUsed is the cumulative fraction of the ε budget
	// consumed up to and including this step (0..1).
	DriftBudgetUsed float64 `json:"drift_budget_used,omitempty"`
}

// ExplainWriter receives one record per replica creation. A nil writer
// disables explain at zero cost: the engines keep plain integer
// counters on their existing paths and only materialize an ExplainStep
// inside a nil check.
type ExplainWriter func(ExplainStep)
