package placement

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lrumodel"
	"repro/internal/xrand"
)

// hybridReference is the literal Figure 2 loop: every candidate's
// benefit re-evaluated from scratch at every iteration. The production
// Hybrid maintains the benefit matrix incrementally; this reference
// pins down that the optimization is exact.
func hybridReference(sys *core.System, specs []lrumodel.SiteSpec, avgObj float64) []Step {
	n, m := sys.N(), sys.M()
	p := core.NewPlacement(sys)
	preds := make([]lrumodel.Model, n)
	h := make([][]float64, n)
	visMass := make([]float64, n)
	for i := 0; i < n; i++ {
		preds[i] = mustModel(lrumodel.ModelEq1, specs, sys.Demand[i], avgObj, sys.Capacity[i], nil)
		h[i] = preds[i].HitRatios(p.Free(i))
		visMass[i] = 1
	}
	var steps []Step
	for {
		bestB := 0.0
		bestI, bestJ := -1, -1
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				if !p.CanReplicate(i, j) {
					continue
				}
				b := hybridBenefit(sys, p, preds, h, visMass, i, j)
				if b > bestB {
					bestB, bestI, bestJ = b, i, j
				}
			}
		}
		if bestI < 0 {
			break
		}
		mustReplicate(p, bestI, bestJ)
		visMass[bestI] -= preds[bestI].SitePopularity(bestJ)
		visible := make([]bool, m)
		for k := 0; k < m; k++ {
			visible[k] = !p.Has(bestI, k)
		}
		copy(h[bestI], preds[bestI].HitRatiosCond(visible, p.Free(bestI)))
		steps = append(steps, Step{Server: bestI, Site: bestJ, Benefit: bestB})
	}
	return steps
}

// TestHybridIncrementalMatchesReference verifies that the incremental
// benefit maintenance reproduces the naive algorithm decision for
// decision on randomized systems.
func TestHybridIncrementalMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		sys, specs := randomSystem(xrand.New(seed), 8, 6, 0.3)
		fast, err := Hybrid(sys, HybridConfig{Specs: specs, AvgObjectBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := hybridReference(sys, specs, 1)
		if len(fast.Steps) != len(want) {
			t.Fatalf("seed %d: %d steps vs reference %d", seed, len(fast.Steps), len(want))
		}
		for si := range want {
			g, w := fast.Steps[si], want[si]
			if g.Server != w.Server || g.Site != w.Site {
				t.Fatalf("seed %d step %d: picked (%d,%d), reference (%d,%d)",
					seed, si, g.Server, g.Site, w.Server, w.Site)
			}
			if diff := g.Benefit - w.Benefit; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("seed %d step %d: benefit %v vs reference %v",
					seed, si, g.Benefit, w.Benefit)
			}
		}
	}
}

// TestGreedyIncrementalMatchesReference does the same for greedy-global.
func TestGreedyIncrementalMatchesReference(t *testing.T) {
	for seed := uint64(10); seed < 16; seed++ {
		sys, _ := randomSystem(xrand.New(seed), 10, 7, 0.3)
		fast := GreedyGlobal(sys)

		// Naive reference.
		p := core.NewPlacement(sys)
		var want []Step
		for {
			bestB := 0.0
			bestI, bestJ := -1, -1
			for i := 0; i < sys.N(); i++ {
				for j := 0; j < sys.M(); j++ {
					if !p.CanReplicate(i, j) {
						continue
					}
					if b := greedyBenefit(sys, p, i, j); b > bestB {
						bestB, bestI, bestJ = b, i, j
					}
				}
			}
			if bestI < 0 {
				break
			}
			mustReplicate(p, bestI, bestJ)
			want = append(want, Step{Server: bestI, Site: bestJ, Benefit: bestB})
		}

		if len(fast.Steps) != len(want) {
			t.Fatalf("seed %d: %d steps vs reference %d", seed, len(fast.Steps), len(want))
		}
		for si := range want {
			g, w := fast.Steps[si], want[si]
			if g.Server != w.Server || g.Site != w.Site {
				t.Fatalf("seed %d step %d: picked (%d,%d), reference (%d,%d)",
					seed, si, g.Server, g.Site, w.Server, w.Site)
			}
		}
	}
}
