package placement

import (
	"repro/internal/core"
)

// GreedyExchange refines a greedy-global placement with the
// back-tracking idea of [12] (§2.2: "a greedy [heuristic] that performs
// back tracking offers the better results"): repeatedly try to replace
// one placed replica with a not-placed one at the same server whenever
// the swap lowers the no-cache objective, until no single swap improves.
//
// The placement is rebuilt from scratch on every trial swap — the SN
// tables are incremental-add only — so this is O(swaps·N·M·(N+M));
// fine at the paper's scale, and the refinement typically converges in
// a handful of swaps.
func GreedyExchange(sys *core.System) *Result {
	base := GreedyGlobal(sys)
	chosen := make(map[[2]int]bool, len(base.Steps))
	for _, s := range base.Steps {
		chosen[[2]int{s.Server, s.Site}] = true
	}
	cost := base.PredictedCost

	improved := true
	for improved {
		improved = false
		for old := range chosen {
			i := old[0]
			for j := 0; j < sys.M(); j++ {
				cand := [2]int{i, j}
				if chosen[cand] {
					continue
				}
				delete(chosen, old)
				chosen[cand] = true
				if p, ok := rebuild(sys, chosen); ok {
					if c := p.Cost(core.ZeroHitRatio); c < cost-1e-12 {
						cost = c
						improved = true
						break
					}
				}
				delete(chosen, cand)
				chosen[old] = true
			}
			if improved {
				break
			}
		}
	}

	final, ok := rebuild(sys, chosen)
	if !ok {
		// Cannot happen: the loop only commits feasible swaps.
		return base
	}
	res := &Result{Placement: final, PredictedCost: final.Cost(core.ZeroHitRatio)}
	for pair := range chosen {
		res.Steps = append(res.Steps, Step{Server: pair[0], Site: pair[1]})
	}
	return res
}

// rebuild constructs a placement holding exactly the given replicas; ok
// is false if the set violates a capacity constraint.
func rebuild(sys *core.System, replicas map[[2]int]bool) (*core.Placement, bool) {
	p := core.NewPlacement(sys)
	for pair := range replicas {
		if !p.CanReplicate(pair[0], pair[1]) {
			return nil, false
		}
		if err := p.Replicate(pair[0], pair[1]); err != nil {
			return nil, false
		}
	}
	return p, true
}
