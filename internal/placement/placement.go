// Package placement implements the replica placement algorithms of the
// paper: the greedy-global baseline of [13, 15, 23] (§2.2, §5.2) and the
// hybrid algorithm of Figure 2 (§4) that weighs every candidate replica
// against the LRU cache space it would consume. Ad-hoc fixed-split,
// random and local-popularity heuristics are included for the Figure 5
// comparison and for ablations.
package placement

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/lrumodel"
	"repro/internal/xrand"
)

// normWorkers resolves a Parallelism knob: 0 means GOMAXPROCS, anything
// below 1 is clamped to serial, and more workers than rows is pointless.
func normWorkers(parallelism, rows int) int {
	w := parallelism
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if w > rows {
		w = rows
	}
	return w
}

// fanOutRows evaluates f(i) for every i in [0, n), striding rows across
// at most workers goroutines. Each row is evaluated by exactly one
// goroutine — the granularity that keeps per-server state (the lrumodel
// predictors' memo tables) unshared — and every cell is a pure function
// of the placement, so parallel evaluation is bit-identical to serial.
// workers <= 1 evaluates inline.
func fanOutRows(n, workers int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				f(i)
			}
		}(w)
	}
	wg.Wait()
}

// Engine selects the selection machinery behind a placement run. The
// zero value (EngineAuto) picks the cheapest engine for the instance:
// the scanning reference below the measured crossover size, the exact
// lazy heap above it, and the approximate heap whenever an ε budget is
// configured. Explicit values force one engine; EngineLazy ignores
// Epsilon, EngineApprox honors it (ε=0 reproduces the exact lazy run
// byte for byte).
type Engine int

const (
	EngineAuto Engine = iota
	EngineScan
	EngineLazy
	EngineApprox
)

// String returns the engine label used in ExplainStep.Engine and the
// control plane's audit records.
func (e Engine) String() string {
	switch e {
	case EngineScan:
		return "scan"
	case EngineLazy:
		return "lazy"
	case EngineApprox:
		return "approx"
	default:
		return "auto"
	}
}

// hybridScanCrossoverCells is the instance size (n·m benefit cells)
// below which the scanning hybrid engine is at least as fast as the
// lazy heap and EngineAuto selects it. Measured on the scale suite:
// at 1000 cells (paper scale, n=50 m=20) the two engines are within
// noise of each other (0.95×–1.07× across runs), while at 4000 cells
// (×2, n=100 m=40) the lazy engine is already 1.6× faster; the heap
// only loses below the paper instance, where the eager maintenance is
// cheap and heap churn dominates.
const hybridScanCrossoverCells = 1024

// Step records one replica creation decision.
type Step struct {
	Server, Site int
	// Benefit is the algorithm's estimated cost reduction for the
	// step (model-predicted for Hybrid, exact for GreedyGlobal).
	Benefit float64
	// PredictedCost is the objective D after applying the step, under
	// the algorithm's own cost model.
	PredictedCost float64
}

// Result is the outcome of a placement algorithm.
type Result struct {
	Placement *core.Placement
	// PredictedCost is the final objective D under the algorithm's
	// cost model (with caching for Hybrid, without for the others).
	PredictedCost float64
	Steps         []Step
}

// GreedyGlobal is the stand-alone replica placement baseline: during each
// iteration all server-site pairs are compared and the one producing the
// largest benefit is replicated; it terminates when servers are full or
// the best remaining benefit is non-positive. No caching is assumed
// (h = 0 everywhere).
func GreedyGlobal(sys *core.System) *Result {
	return GreedyGlobalOpts(sys, GreedyConfig{})
}

// GreedyGlobalUpdates is GreedyGlobal under the read-plus-update FAP
// objective (§2.2, [19, 28]): each candidate replica's benefit is
// reduced by the update-propagation cost u_j·C(i, SP_j) it would incur.
// nil updateRates means read-only (= GreedyGlobal).
func GreedyGlobalUpdates(sys *core.System, updateRates []float64) *Result {
	return GreedyGlobalOpts(sys, GreedyConfig{UpdateRates: updateRates})
}

// GreedyConfig parameterizes GreedyGlobalOpts.
type GreedyConfig struct {
	// UpdateRates, if non-nil, adds the read-plus-update FAP objective
	// (see GreedyGlobalUpdates).
	UpdateRates []float64
	// Parallelism is the worker count the benefit-matrix evaluation
	// fans out across (0 = GOMAXPROCS, 1 = serial). Every matrix cell
	// is a pure function of the current placement and the selection
	// stays sequential, so parallel and serial runs produce identical
	// step sequences.
	Parallelism int
	// Scan selects the reference engine: a full O(n·m) argmax scan over
	// the benefit matrix per iteration, with every cell of the placed
	// site's column eagerly re-evaluated. The default (false) is the
	// lazy-greedy (CELF-style) heap engine, which defers column
	// re-evaluation until a stale entry surfaces at the heap top. Both
	// engines produce bit-identical step sequences (test-enforced); the
	// knob exists for verification and benchmarking. Equivalent to
	// Engine: EngineScan; honored only when Engine is EngineAuto.
	Scan bool
	// Engine forces a specific selection engine; EngineAuto (the zero
	// value) picks the lazy heap, or the approximate heap when
	// Epsilon > 0 (the greedy heap wins at every measured size, so there
	// is no scan crossover here).
	Engine Engine
	// Epsilon is the approximate engine's relative drift budget: stale
	// heap entries may be accepted without re-evaluation as long as the
	// total worst-case selection loss stays within Epsilon of the
	// initial objective. 0 reproduces the exact lazy engine byte for
	// byte; negative values are treated as 0.
	Epsilon float64
	// Explain, if non-nil, receives one ExplainStep per replica created
	// (nil-cost when disabled; see ExplainWriter).
	Explain ExplainWriter
}

// resolveEngine maps the Auto/Scan/Epsilon knobs to a concrete engine.
func (cfg GreedyConfig) resolveEngine() Engine {
	if cfg.Engine != EngineAuto {
		return cfg.Engine
	}
	if cfg.Scan {
		return EngineScan
	}
	if cfg.Epsilon > 0 {
		return EngineApprox
	}
	return EngineLazy
}

// GreedyGlobalOpts is the greedy-global algorithm with explicit options.
func GreedyGlobalOpts(sys *core.System, cfg GreedyConfig) *Result {
	switch cfg.resolveEngine() {
	case EngineScan:
		return greedyScan(sys, cfg)
	case EngineApprox:
		return greedyLazy(sys, cfg, maxf(cfg.Epsilon, 0), EngineApprox)
	default:
		return greedyLazy(sys, cfg, 0, EngineLazy)
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// greedyScan is the reference engine: the literal "compare all
// server-site pairs each iteration" loop, kept as the provenance anchor
// the lazy engine is verified against.
func greedyScan(sys *core.System, cfg GreedyConfig) *Result {
	updateRates := cfg.UpdateRates
	p := core.NewPlacement(sys)
	res := &Result{Placement: p}
	n, m := sys.N(), sys.M()
	workers := normWorkers(cfg.Parallelism, n)
	objective := func() float64 {
		c := p.Cost(core.ZeroHitRatio)
		if updateRates != nil {
			c += p.UpdateCost(updateRates)
		}
		return c
	}
	// Cached benefit matrix with exact invalidation: placing (i*, j*)
	// only changes SN entries of site j*, so only column j* needs
	// recomputation (greedyBenefit depends on the placement solely
	// through NearestCost(·, j) and Has(·, j)). Rows are independent
	// given the read-only placement, so the initial fill fans out.
	ben := make([][]float64, n)
	fanOutRows(n, workers, func(i int) {
		ben[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			ben[i][j] = greedyBenefit(sys, p, i, j) - updatePenalty(sys, updateRates, i, j)
		}
	})
	for {
		bestB := 0.0
		bestI, bestJ := -1, -1
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				if ben[i][j] > bestB && p.CanReplicate(i, j) {
					bestB, bestI, bestJ = ben[i][j], i, j
				}
			}
		}
		if bestI < 0 {
			break
		}
		mustReplicate(p, bestI, bestJ)
		fanOutRows(n, workers, func(i int) {
			ben[i][bestJ] = greedyBenefit(sys, p, i, bestJ) - updatePenalty(sys, updateRates, i, bestJ)
		})
		cost := objective()
		res.Steps = append(res.Steps, Step{
			Server:        bestI,
			Site:          bestJ,
			Benefit:       bestB,
			PredictedCost: cost,
		})
		if cfg.Explain != nil {
			cfg.Explain(ExplainStep{
				Iter: len(res.Steps) - 1, Server: bestI, Site: bestJ,
				Benefit: bestB, PredictedCost: cost,
				Engine: EngineScan.String(),
			})
		}
	}
	res.PredictedCost = objective()
	return res
}

// greedyBenefit is the no-cache benefit of replica (i, j): the local
// redirection cost removed plus the improvement for every other server
// whose nearest replica of j gets closer.
func greedyBenefit(sys *core.System, p *core.Placement, i, j int) float64 {
	b := sys.Demand[i][j] * p.NearestCost(i, j)
	for k := 0; k < sys.N(); k++ {
		if k == i || p.Has(k, j) {
			continue
		}
		if dc := p.NearestCost(k, j) - sys.CostServer[k][i]; dc > 0 {
			b += dc * sys.Demand[k][j]
		}
	}
	return b
}

// updatePenalty is the update-propagation cost a new replica (i, j)
// would add: u_j · C(i, SP_j).
func updatePenalty(sys *core.System, updateRates []float64, i, j int) float64 {
	if updateRates == nil {
		return 0
	}
	return updateRates[j] * sys.CostOrigin[i][j]
}

// HybridConfig parameterizes the hybrid algorithm.
type HybridConfig struct {
	// Specs carries the object-level statistics of every site for the
	// analytical cache model (λ included).
	Specs []lrumodel.SiteSpec
	// AvgObjectBytes is ō, used to convert cache bytes to LRU slots.
	AvgObjectBytes float64
	// Model selects the analytical hit-ratio model the benefit terms
	// are evaluated under: "eq1" (the paper's Equations (1)/(2), the
	// default), "che", "closedform" or "random" (for FIFO/RANDOM
	// fleets) — see lrumodel.ModelKinds. Empty means eq1, which is
	// byte-identical to the pre-interface engine.
	Model string
	// Observer, if non-nil, is invoked after every replica creation;
	// used by the step-by-step example and by tests.
	Observer func(Step)
	// UpdateRates, if non-nil, adds the read-plus-update FAP objective
	// ([19, 28]): a candidate replica of site j at server i pays
	// UpdateRates[j]·C(i, SP_j) in update propagation. Caches are
	// invalidation-maintained and pay nothing here (their freshness
	// cost is the λ term of §3.3).
	UpdateRates []float64
	// Parallelism is the worker count the benefit-matrix evaluation
	// fans out across (0 = GOMAXPROCS, 1 = serial). Work is distributed
	// at row (server) granularity, so each server's lrumodel predictor
	// — which memoizes internally and is not safe for concurrent use —
	// is only ever touched by one goroutine, and every evaluated cell
	// is a pure function of the placement: parallel and serial runs
	// produce identical step sequences.
	Parallelism int
	// Scan selects the reference engine: a full O(n·m) argmax scan over
	// the benefit matrix per iteration, re-deriving every model value it
	// needs from the lrumodel predictors. The default (false) is the
	// lazy-greedy heap engine, which replaces the scan with a max-heap
	// whose stale entries are refreshed when they surface at the top and
	// serves repeated shrink-term model lookups from a per-row cache
	// keyed by the row's cache state. Both engines produce bit-identical
	// step sequences (test-enforced); the knob exists for verification
	// and benchmarking. Equivalent to Engine: EngineScan; honored only
	// when Engine is EngineAuto.
	Scan bool
	// Engine forces a specific selection engine. EngineAuto (the zero
	// value) picks the scanning engine below hybridScanCrossoverCells,
	// the approximate heap when Epsilon > 0, and the exact lazy heap
	// otherwise, so the default entry point is never a pessimization.
	Engine Engine
	// Epsilon is the approximate engine's relative drift budget: row
	// re-evaluations after a replica creation may be deferred, with
	// per-row drift bounds tracked as replicas are created, as long as
	// the total worst-case selection loss stays within Epsilon of the
	// starting objective — so the final predicted cost lands within
	// Epsilon of the exact lazy engine's (test-enforced for
	// ε ∈ {1e-3, 1e-2}). 0 reproduces the exact lazy engine byte for
	// byte; negative values are treated as 0. See approx.go for the
	// drift-bound invariant.
	Epsilon float64
	// Explain, if non-nil, receives one ExplainStep per replica created
	// (nil-cost when disabled; see ExplainWriter).
	Explain ExplainWriter
}

// resolveEngine maps the Auto/Scan/Epsilon knobs to a concrete engine
// for an n-server, m-site instance.
func (cfg HybridConfig) resolveEngine(n, m int) Engine {
	if cfg.Engine != EngineAuto {
		return cfg.Engine
	}
	if cfg.Scan {
		return EngineScan
	}
	if cfg.Epsilon > 0 {
		return EngineApprox
	}
	if n*m <= hybridScanCrossoverCells {
		return EngineScan
	}
	return EngineLazy
}

// ResolveEngineLabel reports which engine a Hybrid call with this
// config would run on an n-server, m-site instance ("scan", "lazy" or
// "approx") — the label callers record next to a run's results.
func (cfg HybridConfig) ResolveEngineLabel(n, m int) string {
	return cfg.resolveEngine(n, m).String()
}

// Hybrid is the paper's Figure 2 algorithm. It starts from a network
// where all storage is cache, and at each iteration creates the replica
// with the largest net benefit:
//
//	b_ij = (1 − h_j^(i)) · r_j^(i) · C(i, SN_j^(i))              (line 9)
//	     − Σ_{k≠j} Δh_k^(i) · r_k^(i) · C(i, SN_k^(i))           (lines 10–13)
//	     + Σ_{s≠i} max(0, C(s,SN_j^(s)) − C(s,i)) · (1−h_j^(s)) · r_j^(s)   (lines 14–17)
//
// where Δh is the model-predicted hit-ratio loss from shrinking server
// i's cache by o_j bytes. It terminates when no candidate has positive
// benefit or no site fits anywhere.
func Hybrid(sys *core.System, cfg HybridConfig) (*Result, error) {
	st, err := newHybridState(sys, cfg)
	if err != nil {
		return nil, err
	}
	switch st.engine {
	case EngineScan:
		return hybridScan(st), nil
	case EngineApprox:
		if eps := maxf(cfg.Epsilon, 0); eps > 0 {
			// A positive budget also unlocks the lazy cold start: the
			// heap is seeded with cheap optimistic bounds and a row's
			// m×m shrink fill is paid only if one of its cells ever
			// reaches the top (approx.go).
			st.prepareOptimistic()
			return hybridHeapRun(st, eps), nil
		}
		st.prepareCold()
		return hybridHeapRun(st, 0), nil
	default:
		return hybridLazy(st), nil
	}
}

// hybridState is the shared setup of the two hybrid engines: the
// placement under construction, one model per server and the current
// per-server hit ratios and visible cache mass (lines 1–5 of Figure 2).
type hybridState struct {
	sys     *core.System
	cfg     HybridConfig
	p       *core.Placement
	model   lrumodel.ModelKind
	preds   []lrumodel.Model
	shared  *lrumodel.SharedTable
	h       [][]float64
	visMass []float64
	workers int
	n, m    int
	// engine is the resolved selection engine; its String() labels the
	// run's ExplainSteps (overridden to "warm" for incremental repairs).
	engine      Engine
	engineLabel string
	// ben / hShrink are the benefit matrix and per-row shrink-term
	// caches the heap engines run over; prepareCold fills them from an
	// empty placement, Incremental from a reused warm base.
	ben     [][]float64
	hShrink [][]float64
	// baseSteps are replicas already present before the heap run (warm
	// repair only); they are prepended to Result.Steps so the step list
	// stays a complete creation recipe for the final placement.
	baseSteps []Step
	// captureWarm makes the heap run leave the shrink caches consistent
	// with the final placement (refilling rows the approximate engine
	// deferred) so a WarmState can be captured afterwards.
	captureWarm bool
	// optInit marks a prepareOptimistic cold start: ben holds tightened
	// optimistic upper bounds and hShrink rows are allocated lazily, on
	// first cell verification (approx.go). optRefO holds the reference
	// shrink sizes (site-size quantiles), optQ maps each site to its
	// reference slice, optL holds the per-row slice hit-ratio drops and
	// optPenTot the resulting penalty lower-bound totals, maintained
	// arithmetically as nearest-replica costs move and recomputed
	// (optSliceRow) when the row itself receives a replica.
	optInit   bool
	optRefO   []int64
	optQ      []int
	optL      [][]float64
	optPenTot [][]float64
}

func newHybridState(sys *core.System, cfg HybridConfig) (*hybridState, error) {
	n, m := sys.N(), sys.M()
	if len(cfg.Specs) != m {
		return nil, fmt.Errorf("placement: %d specs for %d sites", len(cfg.Specs), m)
	}
	if cfg.AvgObjectBytes <= 0 {
		return nil, fmt.Errorf("placement: AvgObjectBytes = %v", cfg.AvgObjectBytes)
	}
	if cfg.UpdateRates != nil && len(cfg.UpdateRates) != m {
		return nil, fmt.Errorf("placement: %d update rates for %d sites", len(cfg.UpdateRates), m)
	}
	kind, err := lrumodel.ParseModelKind(cfg.Model)
	if err != nil {
		return nil, err
	}
	st := &hybridState{
		sys:     sys,
		cfg:     cfg,
		p:       core.NewPlacement(sys),
		model:   kind,
		workers: normWorkers(cfg.Parallelism, n),
		n:       n,
		m:       m,
	}
	st.engine = cfg.resolveEngine(n, m)
	st.engineLabel = st.engine.String()

	// Lines 1–5: build one model per server and the initial hit
	// ratios with the whole capacity as cache. visMass tracks the
	// summed popularity of the sites still traversing each server's
	// cache; replicating a site removes its traffic from the cache and
	// "the popularity of the rest of the objects is increased
	// accordingly" (§4).
	st.preds = make([]lrumodel.Model, n)
	st.h = make([][]float64, n)
	st.visMass = make([]float64, n)
	// The lazy engine shares one hit-ratio table across all N
	// predictors: the memoized Equation (1) values depend only on the
	// quantized (p, K) grid point, the site's Zipf shape and the model
	// kind, so servers reuse each other's entries bit for bit instead
	// of each paying the O(L) evaluation. The Scan reference engine
	// keeps the seed's per-predictor memos — it is the baseline the
	// speedups are measured against, and the bit-identicality tests
	// double as an end-to-end proof that sharing changes no values.
	if !cfg.Scan {
		st.shared = lrumodel.NewSharedTable()
	}
	for i := 0; i < n; i++ {
		st.preds[i], err = lrumodel.New(lrumodel.ModelConfig{
			Kind:           kind,
			Specs:          cfg.Specs,
			Weights:        sys.Demand[i],
			AvgObjectBytes: cfg.AvgObjectBytes,
			MaxCacheBytes:  sys.Capacity[i],
			Shared:         st.shared,
		})
		if err != nil {
			return nil, err
		}
		st.h[i] = st.preds[i].HitRatios(st.p.Free(i))
		st.visMass[i] = 1
	}
	return st, nil
}

// prepareCold fills the benefit matrix and the per-row shrink caches
// from the empty placement — the heap engines' shared initial state.
func (st *hybridState) prepareCold() {
	n, m := st.n, st.m
	st.ben = make([][]float64, n)
	st.hShrink = make([][]float64, n)
	fanOutRows(n, st.workers, func(i int) {
		st.ben[i] = make([]float64, m)
		st.hShrink[i] = make([]float64, m*m)
		for j := 0; j < m; j++ {
			st.ben[i][j] = st.evalBenCached(i, j, st.hShrink[i], true)
		}
	})
}

// hitFn is the model hit ratio the objective is evaluated under.
func (st *hybridState) hitFn(i, j int) float64 {
	if st.p.Has(i, j) {
		return 0 // irrelevant: C(i,i)=0
	}
	return st.h[i][j]
}

// hybridScan is the reference engine: the eagerly maintained benefit
// matrix with a full argmax scan per iteration, kept as the provenance
// anchor the lazy engine is verified against.
func hybridScan(st *hybridState) *Result {
	sys, p, preds, h, visMass := st.sys, st.p, st.preds, st.h, st.visMass
	n, m, cfg := st.n, st.m, st.cfg
	res := &Result{Placement: p}
	hitFn := st.hitFn

	// Cached benefit matrix with exact invalidation. Placing (i*, j*)
	// changes: (a) server i*'s cache size, visible mass and hit ratios
	// — every candidate in row i*; (b) site j*'s SN table — every
	// candidate in column j*; (c) the remote-benefit term
	// (1 − h_j^(i*)) that other candidates earn from server i*, which
	// shifts by the known Δh of (a) — a pure arithmetic adjustment.
	// Together these reproduce the paper's full per-iteration
	// re-evaluation exactly, at a fraction of the model lookups.
	//
	// Matrix evaluation fans out at row granularity (see
	// HybridConfig.Parallelism): row i only reads preds[i], h, visMass
	// and the read-only placement, so rows never contend.
	workers := st.workers
	ben := make([][]float64, n)
	evalBen := func(i, j int) float64 {
		if !p.CanReplicate(i, j) {
			return 0
		}
		return hybridBenefit(sys, p, preds, h, visMass, i, j) - updatePenalty(sys, cfg.UpdateRates, i, j)
	}
	fanOutRows(n, workers, func(i int) {
		ben[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			ben[i][j] = evalBen(i, j)
		}
	})

	// Per-iteration scratch, hoisted out of the loop: the paper-scale
	// run takes hundreds of iterations and these were the loop's only
	// allocations.
	hOld := make([]float64, m)
	visible := make([]bool, m)
	staleRow := make([]bool, n)

	// Lines 6–25: main loop.
	for {
		bestB := 0.0
		bestI, bestJ := -1, -1
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				if ben[i][j] > bestB && p.CanReplicate(i, j) { // line 8
					bestB, bestI, bestJ = ben[i][j], i, j
				}
			}
		}
		if bestI < 0 { // no candidate with positive benefit
			break
		}
		// Lines 18–25: create the replica and update bookkeeping.
		copy(hOld, h[bestI])
		improved, err := p.ReplicateTracked(bestI, bestJ)
		if err != nil {
			panic(fmt.Sprintf("placement: internal error: %v", err))
		}
		visMass[bestI] -= preds[bestI].SitePopularity(bestJ)
		for k := 0; k < m; k++ {
			visible[k] = !p.Has(bestI, k)
		}
		copy(h[bestI], preds[bestI].HitRatiosCond(visible, p.Free(bestI)))

		// Stale entries after this placement:
		//   - rows of servers whose SN entry for bestJ improved (their
		//     shrink terms weight site bestJ by the new, lower
		//     NearestCost) and the row of bestI (cache shrank);
		//   - column bestJ for everyone (remote terms reference the
		//     improved SN entries);
		//   - the remote-term contribution (1−h_j^(bestI))·r of server
		//     bestI to every other candidate, which shifted by the
		//     known Δh — pure arithmetic, applied to rows not already
		//     re-evaluated.
		for i := range staleRow {
			staleRow[i] = false
		}
		for _, k := range improved {
			staleRow[k] = true
		}
		for j := 0; j < m; j++ {
			if j == bestJ || p.Has(bestI, j) {
				continue
			}
			dh := hOld[j] - h[bestI][j]
			if dh == 0 {
				continue
			}
			snCost := p.NearestCost(bestI, j)
			w := dh * sys.Demand[bestI][j]
			for i := 0; i < n; i++ {
				if i == bestI || staleRow[i] {
					continue
				}
				if dc := snCost - sys.CostServer[bestI][i]; dc > 0 {
					ben[i][j] += dc * w
				}
			}
		}
		// Model re-evaluations — the expensive part of an iteration —
		// fan out across rows: stale rows in full, everyone else only
		// the bestJ column cell.
		fanOutRows(n, workers, func(i int) {
			if staleRow[i] {
				for j := 0; j < m; j++ {
					ben[i][j] = evalBen(i, j)
				}
			} else {
				ben[i][bestJ] = evalBen(i, bestJ)
			}
		})
		step := Step{
			Server:        bestI,
			Site:          bestJ,
			Benefit:       bestB,
			PredictedCost: hybridObjective(p, hitFn, cfg.UpdateRates),
		}
		res.Steps = append(res.Steps, step)
		if cfg.Observer != nil {
			cfg.Observer(step)
		}
		if cfg.Explain != nil {
			cfg.Explain(ExplainStep{
				Iter: len(res.Steps) - 1, Server: bestI, Site: bestJ,
				Benefit: bestB, PredictedCost: step.PredictedCost,
				Engine: EngineScan.String(), Model: string(st.model),
			})
		}
	}
	res.PredictedCost = hybridObjective(p, hitFn, cfg.UpdateRates)
	return res
}

// hybridObjective is the hybrid's full predicted objective: the cached
// read cost plus, when configured, the update-propagation cost.
func hybridObjective(p *core.Placement, hitFn core.HitRatioFunc, updateRates []float64) float64 {
	c := p.Cost(hitFn)
	if updateRates != nil {
		c += p.UpdateCost(updateRates)
	}
	return c
}

// hybridBenefit evaluates lines 9–17 of Figure 2 for candidate (i, j).
func hybridBenefit(sys *core.System, p *core.Placement, preds []lrumodel.Model, h [][]float64, visMass []float64, i, j int) float64 {
	// Line 9: local benefit — the cache was already absorbing h of the
	// redirected requests.
	b := (1 - h[i][j]) * sys.Demand[i][j] * p.NearestCost(i, j)

	// Lines 10–13: cost change for the other cached sites. The cache
	// shrinks by o_j bytes, but site j's traffic also stops traversing
	// it, boosting everyone else's effective popularity.
	newCache := p.Free(i) - sys.SiteBytes[j]
	newMass := visMass[i] - preds[i].SitePopularity(j)
	for k := 0; k < sys.M(); k++ {
		if k == j || p.Has(i, k) {
			continue
		}
		hNew := preds[i].SiteHitRatioCond(k, newMass, newCache)
		if dh := h[i][k] - hNew; dh != 0 {
			b -= dh * sys.Demand[i][k] * p.NearestCost(i, k)
		}
	}

	// Lines 14–17: relative benefit for servers that would redirect to
	// the new, closer replica.
	for s := 0; s < sys.N(); s++ {
		if s == i || p.Has(s, j) {
			continue
		}
		if dc := p.NearestCost(s, j) - sys.CostServer[s][i]; dc > 0 {
			b += dc * (1 - h[s][j]) * sys.Demand[s][j]
		}
	}
	return b
}

// None returns the pure-caching configuration: no replicas, all storage
// free for the cache. Its PredictedCost assumes no caching (callers that
// want the model-predicted cost use PredictCost).
func None(sys *core.System) *Result {
	p := core.NewPlacement(sys)
	return &Result{Placement: p, PredictedCost: p.Cost(core.ZeroHitRatio)}
}

// AdHoc reserves cacheFrac of every server's storage for the cache and
// runs GreedyGlobal on the remainder — the fixed-split strawman of §5.2
// ("what if we allocate a fixed percentage of the storage space to
// caching and run the greedy global replication algorithm for the
// rest?").
func AdHoc(sys *core.System, cacheFrac float64) (*Result, error) {
	if cacheFrac < 0 || cacheFrac > 1 {
		return nil, fmt.Errorf("placement: cacheFrac = %v", cacheFrac)
	}
	shrunk := *sys
	shrunk.Capacity = make([]int64, sys.N())
	for i, c := range sys.Capacity {
		shrunk.Capacity[i] = int64(float64(c) * (1 - cacheFrac))
	}
	inner := GreedyGlobal(&shrunk)

	// Replay the decisions onto a full-capacity placement so that Free
	// reports the true cache space (reserved fraction + slack).
	p := core.NewPlacement(sys)
	for _, s := range inner.Steps {
		mustReplicate(p, s.Server, s.Site)
	}
	return &Result{
		Placement:     p,
		PredictedCost: p.Cost(core.ZeroHitRatio),
		Steps:         inner.Steps,
	}, nil
}

// Random creates replicas at uniformly random feasible (server, site)
// pairs until none fits; an ablation baseline.
func Random(sys *core.System, r *xrand.Source) *Result {
	p := core.NewPlacement(sys)
	res := &Result{Placement: p}
	type pair struct{ i, j int }
	pairs := make([]pair, 0, sys.N()*sys.M())
	for i := 0; i < sys.N(); i++ {
		for j := 0; j < sys.M(); j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	r.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
	for _, pr := range pairs {
		if p.CanReplicate(pr.i, pr.j) {
			mustReplicate(p, pr.i, pr.j)
			res.Steps = append(res.Steps, Step{Server: pr.i, Site: pr.j})
		}
	}
	res.PredictedCost = p.Cost(core.ZeroHitRatio)
	return res
}

// Popularity fills each server with its locally most-requested sites
// first; an ablation baseline that ignores network position.
func Popularity(sys *core.System) *Result {
	p := core.NewPlacement(sys)
	res := &Result{Placement: p}
	for i := 0; i < sys.N(); i++ {
		order := sortSitesByDemand(sys.Demand[i])
		for _, j := range order {
			if p.CanReplicate(i, j) {
				mustReplicate(p, i, j)
				res.Steps = append(res.Steps, Step{Server: i, Site: j})
			}
		}
	}
	res.PredictedCost = p.Cost(core.ZeroHitRatio)
	return res
}

func sortSitesByDemand(demand []float64) []int {
	order := make([]int, len(demand))
	for j := range order {
		order[j] = j
	}
	// Insertion sort by descending demand: M is small (tens).
	for a := 1; a < len(order); a++ {
		for b := a; b > 0 && demand[order[b]] > demand[order[b-1]]; b-- {
			order[b], order[b-1] = order[b-1], order[b]
		}
	}
	return order
}

// CostOptions parameterizes PredictCostOpts.
type CostOptions struct {
	// Specs carries the object-level statistics of every site.
	Specs []lrumodel.SiteSpec
	// AvgObjectBytes is ō, used to convert cache bytes to slots.
	AvgObjectBytes float64
	// Model selects the hit-ratio model ("" = eq1), as in
	// HybridConfig.Model.
	Model string
	// Shared, if non-nil, memoizes grid evaluations across calls:
	// repeated cost probes (the controller prices every candidate
	// placement twice per round) reuse each other's Equation (1) work
	// instead of re-memoizing from scratch. A WarmState's table (see
	// WarmState.Shared) or any long-lived table works; nil builds a
	// fresh private one per call.
	Shared *lrumodel.SharedTable
}

// PredictCostOpts evaluates the objective D of any placement under the
// selected analytical cache model, with each server's free space as
// its cache. This is the "Predicted" series of Figure 6.
func PredictCostOpts(p *core.Placement, opts CostOptions) (float64, error) {
	kind, err := lrumodel.ParseModelKind(opts.Model)
	if err != nil {
		return 0, err
	}
	sys := p.System()
	total := 0.0
	shared := opts.Shared
	if shared == nil {
		shared = lrumodel.NewSharedTable()
	}
	for i := 0; i < sys.N(); i++ {
		pred, err := lrumodel.New(lrumodel.ModelConfig{
			Kind:           kind,
			Specs:          opts.Specs,
			Weights:        sys.Demand[i],
			AvgObjectBytes: opts.AvgObjectBytes,
			MaxCacheBytes:  sys.Capacity[i],
			Shared:         shared,
		})
		if err != nil {
			return 0, err
		}
		visible := make([]bool, sys.M())
		for j := range visible {
			visible[j] = !p.Has(i, j)
		}
		h := pred.HitRatiosCond(visible, p.Free(i))
		for j := 0; j < sys.M(); j++ {
			c := p.NearestCost(i, j)
			if c == 0 {
				continue
			}
			total += (1 - h[j]) * sys.Demand[i][j] * c
		}
	}
	return total, nil
}

// PredictCost is PredictCostOpts under the default eq1 model with a
// fresh memo table — the original fixed-signature entry point. It
// panics on invalid specs, as the predictor constructor always did.
func PredictCost(p *core.Placement, specs []lrumodel.SiteSpec, avgObjectBytes float64) float64 {
	total, err := PredictCostOpts(p, CostOptions{Specs: specs, AvgObjectBytes: avgObjectBytes})
	if err != nil {
		panic(err.Error())
	}
	return total
}

// mustReplicate applies a decision the algorithm has already validated
// with CanReplicate; an error here is a bug in the algorithm.
func mustReplicate(p *core.Placement, i, j int) {
	if err := p.Replicate(i, j); err != nil {
		panic(fmt.Sprintf("placement: internal error: %v", err))
	}
}
