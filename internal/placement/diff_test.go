package placement

import (
	"testing"

	"repro/internal/core"
	"repro/internal/xrand"
)

func TestDiffFromScratch(t *testing.T) {
	sys, _ := randomSystem(xrand.New(3), 6, 5, 0.4)
	res := GreedyGlobal(sys)
	d := Diff(nil, res.Placement)
	if len(d.Dropped) != 0 {
		t.Fatalf("diff from nil dropped %d replicas", len(d.Dropped))
	}
	if len(d.Created) != res.Placement.Replicas() {
		t.Fatalf("diff from nil created %d, placement holds %d", len(d.Created), res.Placement.Replicas())
	}
	var want float64
	for _, r := range d.Created {
		want += float64(sys.SiteBytes[r.Site]) * sys.CostOrigin[r.Server][r.Site] / 1e9
	}
	if d.TransferGBHops != want {
		t.Fatalf("transfer %v, want %v", d.TransferGBHops, want)
	}
}

func TestDiffCreatedDroppedPartition(t *testing.T) {
	sys, _ := randomSystem(xrand.New(7), 8, 6, 0.35)
	old := GreedyGlobal(sys).Placement

	// A second placement with different decisions: random.
	new_ := Random(sys, xrand.New(99)).Placement

	d := Diff(old, new_)
	seen := make(map[Replica]bool)
	for _, r := range d.Created {
		if old.Has(r.Server, r.Site) || !new_.Has(r.Server, r.Site) {
			t.Fatalf("created %+v is not new-only", r)
		}
		seen[r] = true
	}
	for _, r := range d.Dropped {
		if !old.Has(r.Server, r.Site) || new_.Has(r.Server, r.Site) {
			t.Fatalf("dropped %+v is not old-only", r)
		}
		if seen[r] {
			t.Fatalf("replica %+v both created and dropped", r)
		}
	}
	// Identity: no diff against itself, and diff round-trips counts.
	if d2 := Diff(old, old); !d2.Empty() || d2.TransferGBHops != 0 {
		t.Fatalf("self-diff not empty: %+v", d2)
	}
	if got := old.Replicas() - len(d.Dropped) + len(d.Created); got != new_.Replicas() {
		t.Fatalf("replica accounting: %d, want %d", got, new_.Replicas())
	}
}

func TestHybridWithDemandMatchesDirectRun(t *testing.T) {
	sys, specs := randomSystem(xrand.New(11), 8, 6, 0.3)
	cfg := HybridConfig{Specs: specs, AvgObjectBytes: 1}

	direct, err := Hybrid(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rerun, err := HybridWithDemand(sys, sys.Demand, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !Diff(direct.Placement, rerun.Placement).Empty() {
		t.Fatal("HybridWithDemand with identical demand diverged from Hybrid")
	}
	if rerun.PredictedCost != direct.PredictedCost {
		t.Fatalf("cost %v vs %v", rerun.PredictedCost, direct.PredictedCost)
	}

	// Concentrating all demand on one site must change the placement
	// through the rerun entry point.
	skew := make([][]float64, sys.N())
	for i := range skew {
		skew[i] = make([]float64, sys.M())
		skew[i][0] = 1 / float64(sys.N())
	}
	skewed, err := HybridWithDemand(sys, skew, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range Diff(direct.Placement, skewed.Placement).Created {
		if r.Site != 0 {
			t.Fatalf("skewed rerun created replica of site %d", r.Site)
		}
	}
}

func TestRebuildOnPreservesReplicaSet(t *testing.T) {
	sys, _ := randomSystem(xrand.New(5), 6, 5, 0.4)
	p := GreedyGlobal(sys).Placement
	demand := make([][]float64, sys.N())
	for i := range demand {
		demand[i] = make([]float64, sys.M())
		for j := range demand[i] {
			demand[i][j] = 1 / float64(sys.N()*sys.M())
		}
	}
	sys2, err := sys.WithDemand(demand)
	if err != nil {
		t.Fatal(err)
	}
	q, err := p.RebuildOn(sys2)
	if err != nil {
		t.Fatal(err)
	}
	if !Diff(p, q).Empty() {
		t.Fatal("rebuild changed the replica set")
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if q.Cost(core.ZeroHitRatio) == p.Cost(core.ZeroHitRatio) && sysDemandDiffers(sys, demand) {
		t.Log("costs equal under different demand (possible but unusual)")
	}
}

// sysDemandDiffers reports whether demand differs from sys.Demand.
func sysDemandDiffers(sys *core.System, demand [][]float64) bool {
	for i := range demand {
		for j := range demand[i] {
			if demand[i][j] != sys.Demand[i][j] {
				return true
			}
		}
	}
	return false
}
