package placement

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/xrand"
)

func TestGreedyGlobalUpdatesNilMatchesReadOnly(t *testing.T) {
	sys, _ := randomSystem(xrand.New(41), 10, 6, 0.25)
	a := GreedyGlobal(sys)
	b := GreedyGlobalUpdates(sys, nil)
	if a.PredictedCost != b.PredictedCost || a.Placement.Replicas() != b.Placement.Replicas() {
		t.Fatal("nil update rates changed the read-only result")
	}
}

func TestUpdatesShrinkReplicaCount(t *testing.T) {
	sys, specs := randomSystem(xrand.New(43), 10, 6, 0.25)
	// Update rates proportional to read volume.
	mkRates := func(ratio float64) []float64 {
		rates := make([]float64, sys.M())
		for i := range sys.Demand {
			for j, d := range sys.Demand[i] {
				rates[j] += ratio * d
			}
		}
		return rates
	}
	gRead := GreedyGlobal(sys)
	gHeavy := GreedyGlobalUpdates(sys, mkRates(5))
	if gHeavy.Placement.Replicas() >= gRead.Placement.Replicas() {
		t.Fatalf("write-heavy greedy kept %d replicas vs read-only %d",
			gHeavy.Placement.Replicas(), gRead.Placement.Replicas())
	}

	hRead, err := Hybrid(sys, HybridConfig{Specs: specs, AvgObjectBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	hHeavy, err := Hybrid(sys, HybridConfig{
		Specs: specs, AvgObjectBytes: 1, UpdateRates: mkRates(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if hHeavy.Placement.Replicas() > hRead.Placement.Replicas() {
		t.Fatalf("write-heavy hybrid grew replicas: %d vs %d",
			hHeavy.Placement.Replicas(), hRead.Placement.Replicas())
	}
}

func TestGreedyUpdatesBenefitAccounting(t *testing.T) {
	// The steps' PredictedCost must equal the recomputed read+update
	// objective after replaying the steps.
	sys, _ := randomSystem(xrand.New(47), 8, 5, 0.3)
	rates := make([]float64, sys.M())
	for j := range rates {
		rates[j] = 0.02 * float64(j+1)
	}
	res := GreedyGlobalUpdates(sys, rates)
	replay := core.NewPlacement(sys)
	for _, s := range res.Steps {
		if err := replay.Replicate(s.Server, s.Site); err != nil {
			t.Fatal(err)
		}
		want := replay.Cost(core.ZeroHitRatio) + replay.UpdateCost(rates)
		if math.Abs(s.PredictedCost-want) > 1e-9 {
			t.Fatalf("step (%d,%d): cost %v, recomputed %v",
				s.Server, s.Site, s.PredictedCost, want)
		}
	}
}

func TestHybridRejectsBadUpdateRates(t *testing.T) {
	sys, specs := randomSystem(xrand.New(53), 5, 4, 0.2)
	if _, err := Hybrid(sys, HybridConfig{
		Specs: specs, AvgObjectBytes: 1, UpdateRates: []float64{1},
	}); err == nil {
		t.Fatal("wrong-length update rates accepted")
	}
}

func TestUpdateCostPanicsOnLengthMismatch(t *testing.T) {
	sys, _ := randomSystem(xrand.New(59), 4, 3, 0.2)
	p := core.NewPlacement(sys)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	p.UpdateCost([]float64{1})
}

func TestUpdateCostZeroWithoutReplicas(t *testing.T) {
	sys, _ := randomSystem(xrand.New(61), 4, 3, 0.6)
	p := core.NewPlacement(sys)
	rates := []float64{1, 1, 1}
	if got := p.UpdateCost(rates); got != 0 {
		t.Fatalf("empty placement update cost %v", got)
	}
	// Replicate the first site that fits somewhere.
	placedI, placedJ := -1, -1
	for i := 0; i < sys.N() && placedI < 0; i++ {
		for j := 0; j < sys.M(); j++ {
			if p.CanReplicate(i, j) {
				if err := p.Replicate(i, j); err != nil {
					t.Fatal(err)
				}
				placedI, placedJ = i, j
				break
			}
		}
	}
	if placedI < 0 {
		t.Fatal("nothing fits anywhere")
	}
	want := rates[placedJ] * sys.CostOrigin[placedI][placedJ]
	if got := p.UpdateCost(rates); math.Abs(got-want) > 1e-12 {
		t.Fatalf("update cost %v, want %v", got, want)
	}
}
