// Approximate ε-lazy selection for the hybrid engine.
//
// The exact lazy engine (lazy.go) pays two distinct model-evaluation
// bills. The larger one is the cold start: the initial benefit matrix
// fill costs n·m² model evaluations (every row's m×m shrink table) and
// dominates a large run's CPU outright — most of it spent on rows and
// cells that never come close to winning a step. The second is eager
// maintenance: after every replica creation the engine fully
// re-evaluates the row of every server whose nearest-replica table
// improved and refills the chosen server's m×m shrink table.
// hybridHeapRun with eps > 0 defers both.
//
// Lazy cold start (prepareOptimistic): the matrix is seeded with
// OPTIMISTIC UPPER BOUNDS — the exact cell value with the shrink
// penalty replaced by a cheap lower bound built from K reference
// shrink slices per row (see prepareOptimistic for the monotonicity
// argument), at K·m model evaluations per row instead of m². Rows
// live their whole life in this seed regime:
//
//   - When a seed cell surfaces at the top of the heap, the engine
//     VERIFIES just that cell — filling its m-entry shrink slice — and
//     re-keys it at the exact value. Cells that never surface never
//     pay their slice; rows that never surface never even allocate
//     their m×m table.
//
//   - When a row wins a step (its own cache shrinks, invalidating its
//     bound and any verified slices), the engine RE-SLICES the row's
//     reference bounds at the new state — K·m evaluations where the
//     exact engine refills m² — resets its verified set, and restores
//     every seed to an exact-now upper bound. The row carries no
//     drift out of its own accept.
//
// In-loop deferral: the per-row re-evaluations triggered by other
// rows' events are deferred too, and each row instead carries a bound
// on how far its cached values can sit from the truth:
//
//   - SN event (server k's nearest replica of the placed site j* got
//     closer by ΔC): the only stale term in row k is the shrink
//     penalty's weight for site j*, which drops by at most
//     h_k[j*]·r_kj*·ΔC — an exact one-sided bound, so
//     rowDrift[k] += h_k[j*]·r_kj*·ΔC. (In the seed regime the
//     penalty lower-bound totals are re-weighted arithmetically at the
//     same moment, so the bounds themselves stay sound; the same
//     h·r·ΔC drift covers how far the STORED values — seeds and
//     verified cells alike — fall behind, since every slice drop dh
//     is ≤ h. Catching a seed-regime row up is then pure arithmetic:
//     re-tighten seeds, re-run verified cells against their slices.)
//
//   - Cache event (the chosen server i*'s cache shrank; its hit ratios
//     h[i*] are ALWAYS recomputed exactly): in the seed regime this is
//     the re-slice above — no drift at all. In the warm regime (an
//     Incremental repair run, which starts from exact tables) the m×m
//     refill is deferred instead: the stale table entries hNew_j(k)
//     shift by approximately the same amount as the base hit ratios
//     h[i*][k] they are conditioned against, so the row's benefit
//     error is proxied by Σ_k |Δh_k|·r_k·C(i*,SN_k) (which also covers
//     the exact local-term change, its k = j term) plus the removed
//     penalty weight of the placed site, scaled by driftSafety.
//     This proxy is a model-smoothness heuristic, not a theorem; the
//     safety factor and the ε-quality property tests
//     (TestApproxFinalCostWithinEpsilon) are what anchor it.
//
// Drift direction matters: an SN event can only RAISE row k's true
// benefits above their cached values, while a deferred cache event
// moves row i*'s both ways — so each row carries a total bound
// rowDrift (how far above cache the truth can sit) and a downward
// bound downDrift (how far below; deferred cache events only — seeds
// and verified cells are never above the truth, so seed-regime rows
// keep downDrift = 0 and every pop of an unverified seed verifies
// before the entry can be accepted).
//
// Acceptance rule at the heap pop: the popped entry e, matching its
// cell, is worth at least e.key − downDrift[row(e)]. Every OTHER
// candidate — including retired cells whose deferred value may have
// silently risen above zero — is worth at most
//
//	runnerUp = max(k₂, max over drifted rows i of rowMax[i] + rowDrift[i])
//
// where k₂ is the next heap key (covers all undrifted rows exactly)
// and rowMax[i] is the row's cached maximum, maintained by arithmetic
// alone (refreshed in the per-step fan-out, bumped on pushes). This
// per-row combination is the point: a global "k₂ + max drift" bound
// charges every pop for the worst row's drift even when that row's
// candidates are nowhere near the top, which burns the budget
// instantly and degenerates into the exact engine. When
// e.key − downDrift ≥ runnerUp the selection is provably exact and
// free — the issue's "skip re-evaluation when the gap to the
// second-best exceeds the maximum possible drift". Otherwise
// slack = runnerUp + downDrift[row(e)] − e.key is charged against the
// run's budget eps·approxBudgetFrac·C₀; when the budget cannot cover
// a selection, the engine catches up the dominant contributor (the
// runner-up row, or e's own row when its downward drift dominates),
// restoring it to the exact engine's values, and retries. Σ slack ≤
// eps·approxBudgetFrac·C₀ bounds the total benefit shortfall of the
// run and the final predicted cost lands within ε of the exact
// engine's (test-enforced for ε ∈ {1e-3, 1e-2}).
//
// When the heap drains with drift outstanding, a selective sweep
// catches up only the drifted rows whose bound admits a positive
// feasible candidate (max feasible cached value + rowDrift > 0);
// skipping the rest is exact, not approximate, and preserves the
// deferral's savings — a blanket catch-up would re-pay every deferred
// m×m refill at the finish line.
//
// eps == 0 allocates none of the drift machinery and takes exactly the
// exact engine's branches, reproducing its float-op stream — and hence
// Result.Steps — byte for byte (test-enforced).
package placement

import (
	"fmt"
	"sort"
)

// driftSafety scales the cache-event drift proxy (see the package
// comment): the stale shrink-table entries are assumed to move no more
// than driftSafety× the exactly-known base hit-ratio shift.
const driftSafety = 2.0

// approxBudgetFrac scales Epsilon·C₀ down to the internal slack budget,
// leaving headroom between the worst-case charged slack and the
// ε·(exact final cost) bound the quality tests enforce (C₀, the
// starting objective, exceeds the final cost).
const approxBudgetFrac = 0.5

// evalBenOpt is the optimistic cell evaluation behind the lazy cold
// start: evalBenCached with the shrink penalty dropped. The penalty is
// provably non-negative while the row's own cache state is untouched —
// every shrink-conditioned hit ratio sits at or below its base value
// (the model's cache loss dominates the visible-mass relief; verified
// per entry across the scenario family) — so the result upper-bounds
// the exact value using arithmetic only, no model evaluations.
func (st *hybridState) evalBenOpt(i, j int) float64 {
	p := st.p
	if !p.CanReplicate(i, j) {
		return 0
	}
	sys, h := st.sys, st.h
	b := (1 - h[i][j]) * sys.Demand[i][j] * p.NearestCost(i, j)
	for s := 0; s < st.n; s++ {
		if s == i || p.Has(s, j) {
			continue
		}
		if dc := p.NearestCost(s, j) - sys.CostServer[s][i]; dc > 0 {
			b += dc * (1 - h[s][j]) * sys.Demand[s][j]
		}
	}
	return b - updatePenalty(sys, st.cfg.UpdateRates, i, j)
}

// optRefSlices is the number of reference shrink slices per row in the
// lazy cold start. More slices tighten the penalty lower bound (fewer
// cells ever surface) at K·m model evaluations per row; 4 already
// retires the overwhelming majority of cells without a fill.
const optRefSlices = 4

// evalBenOptTight is evalBenOpt minus the row's reference-slice
// penalty lower bound for site j — still an upper bound on the exact
// value, but close enough to it that cells whose true benefit has
// gone negative actually retire instead of haunting the heap.
func (st *hybridState) evalBenOptTight(i, j int) float64 {
	p := st.p
	if !p.CanReplicate(i, j) {
		return 0
	}
	q := st.optQ[j]
	pen := st.optPenTot[i][q] - st.optL[i][q*st.m+j]*st.sys.Demand[i][j]*p.NearestCost(i, j)
	return st.evalBenOpt(i, j) - pen
}

// prepareOptimistic is the approximate engine's cold start: it seeds
// the benefit matrix with tightened optimistic upper bounds and defers
// the m×m shrink-table fills — the dominant cost of a cold run —
// entirely; hybridHeapRun verifies individual cells (one m-entry
// slice each) as they reach the top of the heap. Cells that never
// compete never pay their slice, and rows that never compete never
// even allocate their table.
//
// The tightening: the shrink penalty's model term for cell (i, j) is
// dh(k, j) = h[i][k] − hNew(k | mass − pop_j, cache − o_j), which
// depends on j only through the two scalars (pop_j, o_j) and is
// monotone in both — deeper shrinks lose more, larger mass relief
// loses less. Evaluating one reference slice per o-size quantile, at
// the row's maximum site popularity, therefore lower-bounds dh for
// every site mapped to a reference at or below its own size, at K·m
// model evaluations per row instead of m·m. The weighted totals are
// maintained arithmetically as nearest-replica costs move, so the
// bound stays sound (and keeps tightening) for the run's whole life.
func (st *hybridState) prepareOptimistic() {
	n, m, sys := st.n, st.m, st.sys
	st.ben = make([][]float64, n)
	st.hShrink = make([][]float64, n) // rows allocated on first cell verification
	st.optInit = true

	K := optRefSlices
	if K > m {
		K = m
	}
	order := make([]int, m)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool {
		return sys.SiteBytes[order[a]] < sys.SiteBytes[order[b]]
	})
	st.optRefO = make([]int64, K)
	for q := 0; q < K; q++ {
		st.optRefO[q] = sys.SiteBytes[order[q*m/K]]
	}
	st.optQ = make([]int, m)
	for j := 0; j < m; j++ {
		q := 0
		for t := 1; t < K; t++ {
			if st.optRefO[t] <= sys.SiteBytes[j] {
				q = t
			}
		}
		st.optQ[j] = q
	}
	st.optL = make([][]float64, n)
	st.optPenTot = make([][]float64, n)
	fanOutRows(n, st.workers, func(i int) {
		st.ben[i] = make([]float64, m)
		st.optSliceRow(i)
		for j := 0; j < m; j++ {
			st.ben[i][j] = st.evalBenOptTight(i, j)
		}
	})
}

// optSliceRow (re)computes row i's reference-slice penalty lower bound
// at the CURRENT placement state, at K·m model evaluations. Called per
// row by prepareOptimistic, and again by the approximate engine every
// time the row itself receives a replica — the bound reads the row's
// hit ratios, visible mass and free space, so a replica on the row
// invalidates it. Re-slicing is what lets a row stay in the seed
// regime for the whole run: the exact engine's per-step m×m refill of
// the chosen row is replaced by a K·m re-bound.
func (st *hybridState) optSliceRow(i int) {
	sys, p, m := st.sys, st.p, st.m
	K := len(st.optRefO)
	popMax := 0.0
	for j := 0; j < m; j++ {
		if v := st.preds[i].SitePopularity(j); v > popMax {
			popMax = v
		}
	}
	newMass := st.visMass[i] - popMax
	L := st.optL[i]
	if L == nil {
		L = make([]float64, K*m)
		st.optL[i] = L
	}
	tot := st.optPenTot[i]
	if tot == nil {
		tot = make([]float64, K)
		st.optPenTot[i] = tot
	}
	for q := 0; q < K; q++ {
		newCache := p.Free(i) - st.optRefO[q]
		t := 0.0
		for k := 0; k < m; k++ {
			if p.Has(i, k) {
				// The exact penalty sum skips replicated sites; counting
				// them here would overshoot the bound.
				L[q*m+k] = 0
				continue
			}
			// dh NOT clamped at zero: a negative drop (the mass relief
			// outweighing the reference shrink) must stay negative, or
			// the "lower bound" would overshoot a cell whose true
			// penalty term is negative and the seed would stop being an
			// upper bound.
			dh := st.h[i][k] - st.preds[i].SiteHitRatioCond(k, newMass, newCache)
			L[q*m+k] = dh
			t += dh * sys.Demand[i][k] * p.NearestCost(i, k)
		}
		tot[q] = t
	}
}

// hybridHeapRun is the heap engine behind Hybrid (exact for eps == 0,
// ε-approximate otherwise) and behind Incremental's warm repair. The
// caller prepares st.ben/st.hShrink (prepareCold, prepareOptimistic or
// a warm base) and, for warm runs, st.baseSteps. See the package
// comment for the drift invariant; the exact-mode mechanics are
// documented inline.
func hybridHeapRun(st *hybridState, eps float64) *Result {
	sys, p, preds, h, visMass := st.sys, st.p, st.preds, st.h, st.visMass
	n, m, cfg, workers := st.n, st.m, st.cfg, st.workers
	ben, hShrink := st.ben, st.hShrink
	res := &Result{Placement: p}
	if len(st.baseSteps) > 0 {
		res.Steps = append(res.Steps, st.baseSteps...)
	}

	heapKey := make([][]float64, n) // newest live entry per cell; 0 = none
	hp := benHeap{e: make([]benEntry, 0, n*m)}
	for i := 0; i < n; i++ {
		heapKey[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			if ben[i][j] > 0 {
				hp.push(benEntry{key: ben[i][j], i: int32(i), j: int32(j)})
				heapKey[i][j] = ben[i][j]
			}
		}
	}
	pushIfRaised := func(i, j int) {
		if v := ben[i][j]; v > 0 && v > heapKey[i][j] {
			hp.push(benEntry{key: v, i: int32(i), j: int32(j)})
			heapKey[i][j] = v
		}
	}

	// Per-iteration scratch (see hybridScan). reeval marks the rows
	// fully re-evaluated this iteration: the improved set in exact
	// mode, empty in approximate mode (deferred into rowDrift).
	hOld := make([]float64, m)
	visible := make([]bool, m)
	reeval := make([]bool, n)

	// ε machinery, allocated only when a budget exists; every use is
	// behind an eps > 0 or driftRows > 0 guard, so the eps == 0 run is
	// the exact engine's op stream unchanged.
	var (
		budget, spent      float64
		rowDrift           []float64 // upper drift bound per row (SN + cache events)
		downDrift          []float64 // downward component (cache events only)
		rowMax             []float64 // upper bound on max_j ben[i][j]
		catchNeeded        []bool
		driftRows          int    // rows with rowDrift > 0
		needFill           []bool // row's shrink table is stale (deferred cache event)
		oldCol             []float64
		exactCell          [][]bool // lazy cold start: per-cell "shrink slice filled, value exact" (nil unless optInit)
		deferred, caughtUp int
		driftAccepts       int
		verifiedN          int
	)
	if st.optInit {
		exactCell = make([][]bool, n)
	}
	if eps > 0 {
		budget = eps * approxBudgetFrac * hybridObjective(p, st.hitFn, cfg.UpdateRates)
		rowDrift = make([]float64, n)
		downDrift = make([]float64, n)
		rowMax = make([]float64, n)
		catchNeeded = make([]bool, n)
		needFill = make([]bool, n)
		oldCol = make([]float64, n)
		for i := 0; i < n; i++ {
			mx := 0.0
			for _, v := range ben[i] {
				if v > mx {
					mx = v
				}
			}
			rowMax[i] = mx
		}
	}
	refreshRowMax := func(i int) {
		mx := 0.0
		for _, v := range ben[i] {
			if v > mx {
				mx = v
			}
		}
		rowMax[i] = mx
	}
	// refreshSeedRow restores a lazy-cold-start row to its current
	// bound: verified cells re-run the exact arithmetic against their
	// filled slice, seeds re-tighten against the row's live penalty
	// totals. No model evaluations either way, so clearing a seed row's
	// drift is free of the cost the deferral saved.
	refreshSeedRow := func(i int) {
		ec := exactCell[i]
		for j := 0; j < m; j++ {
			if ec != nil && ec[j] {
				ben[i][j] = st.evalBenCached(i, j, hShrink[i], false)
			} else {
				ben[i][j] = st.evalBenOptTight(i, j)
			}
		}
	}
	catchUpRow := func(i int) {
		if exactCell != nil {
			refreshSeedRow(i)
		} else {
			for j := 0; j < m; j++ {
				ben[i][j] = st.evalBenCached(i, j, hShrink[i], needFill[i])
			}
		}
		needFill[i] = false
		if rowDrift[i] > 0 {
			driftRows--
		}
		rowDrift[i], downDrift[i] = 0, 0
		refreshRowMax(i)
		for j := 0; j < m; j++ {
			pushIfRaised(i, j)
		}
		caughtUp++
	}

	// Engine work counters since the last emitted step; plain ints on
	// the existing paths, so a nil Explain costs nothing.
	var pops, stale, superseded, infeasible int
	for {
		if hp.len() == 0 {
			if driftRows == 0 {
				break
			}
			// Drained with outstanding drift: a deferred row may hold a
			// candidate whose true value rose above zero while its cached
			// value sat retired. Catch up exactly the rows whose bound
			// admits a positive feasible candidate; the rest provably
			// hold nothing (skipping them is exact) and keep their
			// deferred refills unpaid. Rows are independent, so the
			// model refills fan out.
			any := false
			for i := 0; i < n; i++ {
				if rowDrift[i] == 0 {
					continue
				}
				for j := 0; j < m; j++ {
					if ben[i][j]+rowDrift[i] > 0 && p.CanReplicate(i, j) {
						catchNeeded[i] = true
						any = true
						break
					}
				}
			}
			if !any {
				break
			}
			fanOutRows(n, workers, func(i int) {
				if !catchNeeded[i] {
					return
				}
				if exactCell != nil {
					refreshSeedRow(i)
				} else {
					for j := 0; j < m; j++ {
						ben[i][j] = st.evalBenCached(i, j, hShrink[i], needFill[i])
					}
				}
			})
			for i := 0; i < n; i++ {
				if !catchNeeded[i] {
					continue
				}
				catchNeeded[i] = false
				needFill[i] = false
				rowDrift[i], downDrift[i] = 0, 0
				driftRows--
				caughtUp++
				refreshRowMax(i)
				for j := 0; j < m; j++ {
					pushIfRaised(i, j)
				}
			}
			continue
		}
		e := hp.pop()
		pops++
		bestI, bestJ := int(e.i), int(e.j)
		if e.key != heapKey[bestI][bestJ] {
			superseded++
			continue // superseded by a newer entry for the same cell
		}
		if v := ben[bestI][bestJ]; v != e.key {
			// Decayed since pushed: re-key at the current value, or
			// retire the cell if it dropped out.
			stale++
			if v > 0 {
				hp.push(benEntry{key: v, i: e.i, j: e.j})
				heapKey[bestI][bestJ] = v
			} else {
				heapKey[bestI][bestJ] = 0
			}
			continue
		}
		if !p.CanReplicate(bestI, bestJ) {
			// Exact mode: unreachable while the eager maintenance zeroes
			// infeasible cells, kept as a safeguard. Approximate mode:
			// reached for cells of deferred rows that went infeasible
			// when their server's free space shrank (infeasibility is
			// permanent, so retiring the cell is exact).
			infeasible++
			heapKey[bestI][bestJ] = 0
			continue
		}
		if exactCell != nil {
			ec := exactCell[bestI]
			if ec == nil || !ec[bestJ] {
				// An optimistic seed reached the top: verify just this
				// cell — fill its m-entry shrink slice and re-key at the
				// exact value. Cells that never surface never pay their
				// slice, and rows that never surface never even allocate
				// their table.
				if hShrink[bestI] == nil {
					hShrink[bestI] = make([]float64, m*m)
				}
				if ec == nil {
					ec = make([]bool, m)
					exactCell[bestI] = ec
				}
				v := st.evalBenCached(bestI, bestJ, hShrink[bestI], true)
				ec[bestJ] = true
				verifiedN++
				ben[bestI][bestJ] = v
				if v > 0 {
					hp.push(benEntry{key: v, i: e.i, j: e.j})
					heapKey[bestI][bestJ] = v
				} else {
					heapKey[bestI][bestJ] = 0
				}
				continue
			}
			// Verified cell: exact-now value, falls through to the drift
			// gate like any cached candidate (its slice stays valid —
			// the row's own cache state is untouched until it receives a
			// replica, which resets the row's verified set below).
		}
		if driftRows > 0 {
			// Drift gate (see package comment): e is worth at least
			// e.key − downDrift[bestI]; the best alternative at most
			// runnerUp — the next heap key for undrifted rows, or a
			// drifted row's cached max plus its drift bound.
			k2 := 0.0
			if hp.len() > 0 {
				k2 = hp.e[0].key
			}
			runnerUp, runnerRow := k2, -1
			for i := 0; i < n; i++ {
				if i == bestI || rowDrift[i] == 0 {
					continue
				}
				if s := rowMax[i] + rowDrift[i]; s > runnerUp {
					runnerUp, runnerRow = s, i
				}
			}
			if slack := runnerUp + downDrift[bestI] - e.key; slack > 0 {
				if spent+slack <= budget {
					spent += slack
					driftAccepts++
				} else {
					// Budget exhausted: restore the dominant contributor
					// to exactness and retry the selection.
					r := runnerRow
					if r < 0 || downDrift[bestI] >= runnerUp-k2 {
						r = bestI
					}
					catchUpRow(r)
					hp.push(e) // still the cell's newest entry unless the catch-up superseded it
					continue
				}
			}
		}
		bestB := e.key

		// Lines 18–25, identical to the reference engine. h[bestI] is
		// recomputed exactly in every mode — the deferral never touches
		// the hit-ratio state, only the benefit matrix.
		copy(hOld, h[bestI])
		if eps > 0 {
			for k := 0; k < n; k++ {
				oldCol[k] = p.NearestCost(k, bestJ)
			}
		}
		improved, err := p.ReplicateTracked(bestI, bestJ)
		if err != nil {
			panic(fmt.Sprintf("placement: internal error: %v", err))
		}
		visMass[bestI] -= preds[bestI].SitePopularity(bestJ)
		for k := 0; k < m; k++ {
			visible[k] = !p.Has(bestI, k)
		}
		copy(h[bestI], preds[bestI].HitRatiosCond(visible, p.Free(bestI)))

		for i := range reeval {
			reeval[i] = false
		}
		if eps == 0 {
			for _, k := range improved {
				reeval[k] = true
			}
		} else {
			// Defer every row re-evaluation, accumulating drift bounds.
			// SN events only ever raise a row's true benefits above its
			// cache, so they contribute to rowDrift alone.
			for _, k := range improved {
				if k == bestI {
					continue
				}
				// Seed-regime row: the penalty lower-bound total
				// re-weights the placed site's term to the new cost, so
				// the tightened bound itself stays sound; the gap the
				// stored values fall behind it (and behind the truth, for
				// verified cells) is covered by the h·r·ΔC drift below —
				// dh ≤ h bounds both.
				if exactCell != nil {
					w := sys.Demand[k][bestJ] * (p.NearestCost(k, bestJ) - oldCol[k]) // ≤ 0
					for q := range st.optPenTot[k] {
						st.optPenTot[k][q] += st.optL[k][q*m+bestJ] * w
					}
				}
				if d := h[k][bestJ] * sys.Demand[k][bestJ] * (oldCol[k] - p.NearestCost(k, bestJ)); d > 0 {
					if rowDrift[k] == 0 {
						driftRows++
					}
					rowDrift[k] += d
				}
				deferred++
			}
			if exactCell != nil {
				// Cache event, seed regime: the chosen row's own cache
				// shrank, so its reference-slice bound and any verified
				// slices reference the old state. Re-slicing at the new
				// state — K·m model evaluations, against the m·m refill
				// the exact engine pays — restores every seed to an
				// exact-now upper bound, so the row carries no drift or
				// stale table out of its own accept.
				st.optSliceRow(bestI)
				if ec := exactCell[bestI]; ec != nil {
					for j := range ec {
						ec[j] = false
					}
				}
				for j := 0; j < m; j++ {
					ben[bestI][j] = st.evalBenOptTight(bestI, j)
				}
				if rowDrift[bestI] > 0 {
					driftRows--
				}
				rowDrift[bestI], downDrift[bestI] = 0, 0
				refreshRowMax(bestI)
				for j := 0; j < m; j++ {
					pushIfRaised(bestI, j)
				}
			} else {
				// Cache event on bestI: exact |Δh| shift plus the placed
				// site's removed penalty weight, scaled by the safety
				// factor (the proxy for how far the stale shrink table
				// sits from a refill). The shift can move benefits either
				// way, so it lands on both the upper and the downward
				// bound.
				d := hOld[bestJ] * sys.Demand[bestI][bestJ] * oldCol[bestI]
				for k := 0; k < m; k++ {
					if p.Has(bestI, k) {
						continue
					}
					dh := hOld[k] - h[bestI][k]
					if dh < 0 {
						dh = -dh
					}
					if dh != 0 {
						d += dh * sys.Demand[bestI][k] * p.NearestCost(bestI, k)
					}
				}
				if rowDrift[bestI] == 0 {
					driftRows++
				}
				rowDrift[bestI] += driftSafety * d
				downDrift[bestI] += driftSafety * d
				needFill[bestI] = true
				deferred++
			}
		}
		for j := 0; j < m; j++ {
			if j == bestJ || p.Has(bestI, j) {
				continue
			}
			dh := hOld[j] - h[bestI][j]
			if dh == 0 {
				continue
			}
			snCost := p.NearestCost(bestI, j)
			w := dh * sys.Demand[bestI][j]
			for i := 0; i < n; i++ {
				if i == bestI || reeval[i] {
					continue
				}
				if dc := snCost - sys.CostServer[bestI][i]; dc > 0 {
					ben[i][j] += dc * w
					pushIfRaised(i, j)
				}
			}
		}
		// Model re-evaluations fan out across rows: re-evaluated rows in
		// full, everyone else only the bestJ column cell. Only bestI's
		// own cache state changed, so only its shrink cache refills; the
		// other rows re-run their benefit chains against cached model
		// values. (In approximate mode the column refresh of a
		// needFill row reads its stale table — the error is covered by
		// the row's drift bound.)
		fanOutRows(n, workers, func(i int) {
			if reeval[i] {
				fill := i == bestI
				for j := 0; j < m; j++ {
					ben[i][j] = st.evalBenCached(i, j, hShrink[i], fill)
				}
			} else if exactCell != nil {
				// Seed-regime row: refresh the improved column's cell
				// against the verified slice when it has one, or keep the
				// optimistic bound current instead of reading a shrink
				// table that was never built.
				if ec := exactCell[i]; ec != nil && ec[bestJ] {
					ben[i][bestJ] = st.evalBenCached(i, bestJ, hShrink[i], false)
				} else {
					ben[i][bestJ] = st.evalBenOptTight(i, bestJ)
				}
			} else {
				ben[i][bestJ] = st.evalBenCached(i, bestJ, hShrink[i], false)
			}
			if eps > 0 {
				// Keep the drift gate's per-row cached maximum current;
				// pure arithmetic, so the deferral saves model evals
				// without loosening the runner-up bound over time.
				refreshRowMax(i)
			}
		})
		// Heap pushes stay out of the parallel section.
		for i := 0; i < n; i++ {
			if reeval[i] {
				for j := 0; j < m; j++ {
					pushIfRaised(i, j)
				}
			} else {
				pushIfRaised(i, bestJ)
			}
		}
		// Lazy deletion only ever adds entries; rebuild if the garbage
		// outgrows the live set (the argmax is unchanged by a rebuild).
		if hp.len() > 4*n*m {
			hp.e = hp.e[:0]
			for i := 0; i < n; i++ {
				for j := 0; j < m; j++ {
					heapKey[i][j] = 0
					if ben[i][j] > 0 {
						hp.push(benEntry{key: ben[i][j], i: int32(i), j: int32(j)})
						heapKey[i][j] = ben[i][j]
					}
				}
			}
		}
		step := Step{
			Server:        bestI,
			Site:          bestJ,
			Benefit:       bestB,
			PredictedCost: hybridObjective(p, st.hitFn, cfg.UpdateRates),
		}
		res.Steps = append(res.Steps, step)
		if cfg.Observer != nil {
			cfg.Observer(step)
		}
		if cfg.Explain != nil {
			used := 0.0
			if budget > 0 {
				used = spent / budget
			}
			cfg.Explain(ExplainStep{
				Iter: len(res.Steps) - 1, Server: bestI, Site: bestJ,
				Benefit: bestB, PredictedCost: step.PredictedCost,
				HeapPops: pops, StaleReevals: stale,
				Superseded: superseded, Infeasible: infeasible,
				Engine: st.engineLabel, Model: string(st.model),
				RowsDeferred: deferred, RowsCaughtUp: caughtUp,
				CellsVerified: verifiedN,
				DriftAccepts:  driftAccepts, DriftBudgetUsed: used,
			})
		}
		pops, stale, superseded, infeasible = 0, 0, 0, 0
		deferred, caughtUp, driftAccepts, verifiedN = 0, 0, 0, 0
	}
	// Leave the shrink caches consistent with the final placement when
	// a WarmState will be captured: rows with a deferred cache event
	// still hold pre-event tables.
	if st.captureWarm && eps > 0 {
		fanOutRows(n, workers, func(i int) {
			if hShrink[i] == nil {
				hShrink[i] = make([]float64, st.m*st.m)
			}
			if needFill[i] || exactCell != nil {
				for j := 0; j < m; j++ {
					ben[i][j] = st.evalBenCached(i, j, hShrink[i], true)
				}
			}
		})
		for i := range needFill {
			needFill[i] = false
		}
	}
	res.PredictedCost = hybridObjective(p, st.hitFn, cfg.UpdateRates)
	return res
}
