package placement

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/xrand"
)

// The ε-approximate engines carry two contracts: at ε = 0 they are the
// exact lazy engines — same branches, same float-op stream, hence
// byte-identical Result.Steps — and at ε > 0 the final predicted cost
// sits within ε (relative) of the exact engine's. Both are enforced
// here across seeds × scales × parallelism.

// approxGrid is the seeds × scales grid the ε contracts are checked on.
var approxGrid = []struct {
	seed    uint64
	n, m    int
	capFrac float64
}{
	{1, 14, 9, 0.1},
	{2, 14, 9, 0.3},
	{3, 25, 12, 0.1},
	{4, 25, 12, 0.05},
	{5, 40, 16, 0.1},
}

// TestApproxZeroEpsilonByteIdenticalHybrid pins EngineApprox at ε=0 to
// the exact lazy engine, byte for byte.
func TestApproxZeroEpsilonByteIdenticalHybrid(t *testing.T) {
	for _, g := range approxGrid {
		for _, par := range []int{1, 8} {
			name := fmt.Sprintf("seed=%d/n=%d/m=%d/par=%d", g.seed, g.n, g.m, par)
			t.Run(name, func(t *testing.T) {
				sys, specs := randomSystem(xrand.New(g.seed), g.n, g.m, g.capFrac)
				cfg := HybridConfig{Specs: specs, AvgObjectBytes: 1, Parallelism: par, Engine: EngineLazy}
				exact, err := Hybrid(sys, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Engine = EngineApprox // Epsilon left at 0
				approx, err := Hybrid(sys, cfg)
				if err != nil {
					t.Fatal(err)
				}
				requireBitIdentical(t, exact, approx)
			})
		}
	}
}

// TestApproxZeroEpsilonByteIdenticalGreedy is the greedy-engine twin.
func TestApproxZeroEpsilonByteIdenticalGreedy(t *testing.T) {
	for _, g := range approxGrid {
		for _, par := range []int{1, 8} {
			name := fmt.Sprintf("seed=%d/n=%d/m=%d/par=%d", g.seed, g.n, g.m, par)
			t.Run(name, func(t *testing.T) {
				sys, _ := randomSystem(xrand.New(g.seed), g.n, g.m, g.capFrac)
				exact := GreedyGlobalOpts(sys, GreedyConfig{Parallelism: par, Engine: EngineLazy})
				approx := GreedyGlobalOpts(sys, GreedyConfig{Parallelism: par, Engine: EngineApprox})
				requireBitIdentical(t, exact, approx)
			})
		}
	}
}

// TestApproxFinalCostWithinEpsilon enforces the quality guarantee: for
// ε ∈ {1e-3, 1e-2} the approximate final predicted cost exceeds the
// exact engine's by at most ε (relative). The approximate engine can
// also land BELOW the exact engine's cost — greedy is not optimal, and
// a drift-accepted off-order step sometimes helps — so only the upside
// is bounded.
func TestApproxFinalCostWithinEpsilon(t *testing.T) {
	for _, g := range approxGrid {
		for _, eps := range []float64{1e-3, 1e-2} {
			name := fmt.Sprintf("seed=%d/n=%d/m=%d/eps=%v", g.seed, g.n, g.m, eps)
			t.Run(name, func(t *testing.T) {
				sys, specs := randomSystem(xrand.New(g.seed), g.n, g.m, g.capFrac)
				cfg := HybridConfig{Specs: specs, AvgObjectBytes: 1, Engine: EngineLazy}
				exact, err := Hybrid(sys, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Engine = EngineAuto
				cfg.Epsilon = eps // Epsilon > 0 resolves to EngineApprox
				approx, err := Hybrid(sys, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if exact.PredictedCost <= 0 {
					t.Fatalf("degenerate exact cost %v", exact.PredictedCost)
				}
				rel := (approx.PredictedCost - exact.PredictedCost) / exact.PredictedCost
				if rel > eps {
					t.Fatalf("approx cost %v exceeds exact %v by %.3g > eps %v",
						approx.PredictedCost, exact.PredictedCost, rel, eps)
				}
			})
		}
	}
}

// TestApproxGreedyFinalCostWithinEpsilon is the greedy-engine twin of
// the quality guarantee.
func TestApproxGreedyFinalCostWithinEpsilon(t *testing.T) {
	for _, g := range approxGrid {
		for _, eps := range []float64{1e-3, 1e-2} {
			name := fmt.Sprintf("seed=%d/n=%d/m=%d/eps=%v", g.seed, g.n, g.m, eps)
			t.Run(name, func(t *testing.T) {
				sys, _ := randomSystem(xrand.New(g.seed), g.n, g.m, g.capFrac)
				exact := GreedyGlobalOpts(sys, GreedyConfig{Engine: EngineLazy})
				approx := GreedyGlobalOpts(sys, GreedyConfig{Epsilon: eps})
				if exact.PredictedCost <= 0 {
					t.Fatalf("degenerate exact cost %v", exact.PredictedCost)
				}
				rel := (approx.PredictedCost - exact.PredictedCost) / exact.PredictedCost
				if rel > eps {
					t.Fatalf("approx cost %v exceeds exact %v by %.3g > eps %v",
						approx.PredictedCost, exact.PredictedCost, rel, eps)
				}
			})
		}
	}
}

// TestApproxPlacementInvariants checks the approximate engine's output
// is a structurally valid placement whose reported PredictedCost is the
// real objective of the final replica matrix (the cost is always
// computed from live state, never from drifted benefit entries).
func TestApproxPlacementInvariants(t *testing.T) {
	sys, specs := randomSystem(xrand.New(7), 30, 12, 0.1)
	cfg := HybridConfig{Specs: specs, AvgObjectBytes: 1, Epsilon: 1e-2}
	res, err := Hybrid(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Placement.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := PredictCost(res.Placement, cfg.Specs, cfg.AvgObjectBytes)
	if math.Abs(got-res.PredictedCost) > 1e-9*math.Abs(got) {
		t.Fatalf("PredictedCost %v, recomputed %v", res.PredictedCost, got)
	}
}

// TestEngineResolution pins the auto-selection rules: explicit Engine
// wins, Epsilon > 0 selects approx, small systems fall back to the
// scanning engine, large ones to the heap engine.
func TestEngineResolution(t *testing.T) {
	cases := []struct {
		cfg  HybridConfig
		n, m int
		want Engine
	}{
		{HybridConfig{}, 14, 9, EngineScan},                                   // 126 cells, below crossover
		{HybridConfig{}, 60, 20, EngineLazy},                                  // 1200 cells, above crossover
		{HybridConfig{Scan: true}, 60, 20, EngineScan},                        // legacy flag
		{HybridConfig{Epsilon: 1e-2}, 14, 9, EngineApprox},                    // ε > 0
		{HybridConfig{Engine: EngineLazy}, 14, 9, EngineLazy},                 // explicit wins over crossover
		{HybridConfig{Engine: EngineScan, Epsilon: 1e-2}, 60, 20, EngineScan}, // explicit wins over ε
	}
	for i, c := range cases {
		if got := c.cfg.resolveEngine(c.n, c.m); got != c.want {
			t.Errorf("case %d: resolveEngine(%d,%d) = %v, want %v", i, c.n, c.m, got, c.want)
		}
	}
	gcases := []struct {
		cfg  GreedyConfig
		want Engine
	}{
		{GreedyConfig{}, EngineLazy},
		{GreedyConfig{Scan: true}, EngineScan},
		{GreedyConfig{Epsilon: 1e-3}, EngineApprox},
		{GreedyConfig{Engine: EngineScan, Epsilon: 1e-3}, EngineScan},
	}
	for i, c := range gcases {
		if got := c.cfg.resolveEngine(); got != c.want {
			t.Errorf("greedy case %d: resolveEngine() = %v, want %v", i, got, c.want)
		}
	}
}

// TestApproxExplainEngineLabels checks the Explain stream reports the
// engine that actually ran and, for ε > 0, that the drift machinery
// visibly engaged on a system large enough to defer work.
func TestApproxExplainEngineLabels(t *testing.T) {
	sys, specs := randomSystem(xrand.New(3), 30, 12, 0.1)

	var labels []string
	deferredTotal := 0
	cfg := HybridConfig{
		Specs: specs, AvgObjectBytes: 1, Epsilon: 1e-2,
		Explain: func(s ExplainStep) {
			labels = append(labels, s.Engine)
			deferredTotal += s.RowsDeferred
			if s.DriftBudgetUsed < 0 || s.DriftBudgetUsed > 1 {
				t.Errorf("step %d: drift budget used %v out of [0,1]", s.Iter, s.DriftBudgetUsed)
			}
		},
	}
	res, err := Hybrid(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != len(res.Steps) {
		t.Fatalf("%d explain records for %d steps", len(labels), len(res.Steps))
	}
	for _, l := range labels {
		if l != "approx" {
			t.Fatalf("engine label %q, want approx", l)
		}
	}
	if len(res.Steps) > 1 && deferredTotal == 0 {
		t.Fatalf("ε=1e-2 run of %d steps deferred no rows", len(res.Steps))
	}

	// Small system, auto engine: the scanning engine must self-report.
	sysS, specsS := randomSystem(xrand.New(3), 14, 9, 0.1)
	var scanLabels []string
	_, err = Hybrid(sysS, HybridConfig{
		Specs: specsS, AvgObjectBytes: 1,
		Explain: func(s ExplainStep) { scanLabels = append(scanLabels, s.Engine) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range scanLabels {
		if l != "scan" {
			t.Fatalf("engine label %q, want scan", l)
		}
	}
}
