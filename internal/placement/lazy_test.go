package placement

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/xrand"
)

// The lazy-greedy heap engines must reproduce the scanning reference
// engines bit for bit: same Step sequence (servers, sites, float64
// benefits and predicted costs), same final placement, same final
// objective. reflect.DeepEqual on Steps compares the floats exactly —
// any reordering of arithmetic would fail here.

func requireBitIdentical(t *testing.T, scan, lazy *Result) {
	t.Helper()
	if len(scan.Steps) != len(lazy.Steps) {
		t.Fatalf("scan took %d steps, lazy %d", len(scan.Steps), len(lazy.Steps))
	}
	for s := range scan.Steps {
		if scan.Steps[s] != lazy.Steps[s] {
			t.Fatalf("step %d diverges:\n  scan %+v\n  lazy %+v", s, scan.Steps[s], lazy.Steps[s])
		}
	}
	if !reflect.DeepEqual(scan.Steps, lazy.Steps) {
		t.Fatalf("step sequences differ")
	}
	if scan.PredictedCost != lazy.PredictedCost {
		t.Fatalf("predicted cost diverges: scan %v, lazy %v", scan.PredictedCost, lazy.PredictedCost)
	}
	if !reflect.DeepEqual(hasMatrix(scan), hasMatrix(lazy)) {
		t.Fatalf("final placements differ")
	}
}

// TestLazyMatchesScanGreedy pins the CELF engine to the scanning
// reference across seeds, capacity fractions, update rates and worker
// counts.
func TestLazyMatchesScanGreedy(t *testing.T) {
	totalSteps := 0
	for seed := uint64(1); seed <= 6; seed++ {
		for _, capFrac := range []float64{0.05, 0.1, 0.3} {
			for _, withUpdates := range []bool{false, true} {
				for _, par := range []int{1, 8} {
					name := fmt.Sprintf("seed=%d/cap=%v/updates=%v/par=%d", seed, capFrac, withUpdates, par)
					t.Run(name, func(t *testing.T) {
						r := xrand.New(seed)
						sys, _ := randomSystem(r, 14, 9, capFrac)
						var rates []float64
						if withUpdates {
							rates = make([]float64, sys.M())
							for j := range rates {
								rates[j] = 0.3 * r.Float64()
							}
						}
						scan := GreedyGlobalOpts(sys, GreedyConfig{UpdateRates: rates, Parallelism: par, Scan: true})
						lazy := GreedyGlobalOpts(sys, GreedyConfig{UpdateRates: rates, Parallelism: par})
						totalSteps += len(scan.Steps)
						requireBitIdentical(t, scan, lazy)
					})
				}
			}
		}
	}
	if totalSteps == 0 {
		t.Fatal("every grid point degenerated to zero steps")
	}
}

// TestLazyMatchesScanHybrid pins the lazy-deletion heap engine (and its
// per-row model-value cache) to the scanning reference across the same
// grid.
func TestLazyMatchesScanHybrid(t *testing.T) {
	totalSteps := 0
	for seed := uint64(1); seed <= 6; seed++ {
		for _, capFrac := range []float64{0.05, 0.1, 0.3} {
			for _, withUpdates := range []bool{false, true} {
				for _, par := range []int{1, 8} {
					name := fmt.Sprintf("seed=%d/cap=%v/updates=%v/par=%d", seed, capFrac, withUpdates, par)
					t.Run(name, func(t *testing.T) {
						r := xrand.New(seed)
						sys, specs := randomSystem(r, 14, 9, capFrac)
						// Engine forced: this grid sits below the auto
						// crossover, which would otherwise compare the
						// scanning engine against itself.
						cfg := HybridConfig{Specs: specs, AvgObjectBytes: 1, Parallelism: par, Engine: EngineLazy}
						if withUpdates {
							cfg.UpdateRates = make([]float64, sys.M())
							for j := range cfg.UpdateRates {
								cfg.UpdateRates[j] = 0.3 * r.Float64()
							}
						}
						scanCfg := cfg
						scanCfg.Scan = true
						scan, err := Hybrid(sys, scanCfg)
						if err != nil {
							t.Fatal(err)
						}
						lazy, err := Hybrid(sys, cfg)
						if err != nil {
							t.Fatal(err)
						}
						totalSteps += len(scan.Steps)
						requireBitIdentical(t, scan, lazy)
					})
				}
			}
		}
	}
	if totalSteps == 0 {
		t.Fatal("every grid point degenerated to zero steps")
	}
}

// TestLazyMatchesScanPaperScale pins the two engines against each other
// at the paper's evaluation scale (50 servers, 20 sites), the size the
// acceptance bar names explicitly.
func TestLazyMatchesScanPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale comparison is slow")
	}
	r := xrand.New(1)
	sys, specs := randomSystem(r, 50, 20, 0.1)

	scanG := GreedyGlobalOpts(sys, GreedyConfig{Scan: true})
	lazyG := GreedyGlobalOpts(sys, GreedyConfig{})
	requireBitIdentical(t, scanG, lazyG)

	cfg := HybridConfig{Specs: specs, AvgObjectBytes: 1, Engine: EngineLazy}
	scanCfg := cfg
	scanCfg.Engine = EngineAuto
	scanCfg.Scan = true
	scanH, err := Hybrid(sys, scanCfg)
	if err != nil {
		t.Fatal(err)
	}
	lazyH, err := Hybrid(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, scanH, lazyH)
}

// TestLazyHeapOrdering pins the tie-break: equal keys must pop in
// row-major (server, then site) order, matching the scan's strict
// first-maximum rule.
func TestLazyHeapOrdering(t *testing.T) {
	var hp benHeap
	hp.push(benEntry{key: 1, i: 2, j: 1})
	hp.push(benEntry{key: 1, i: 0, j: 3})
	hp.push(benEntry{key: 2, i: 5, j: 5})
	hp.push(benEntry{key: 1, i: 0, j: 1})
	want := []benEntry{
		{key: 2, i: 5, j: 5},
		{key: 1, i: 0, j: 1},
		{key: 1, i: 0, j: 3},
		{key: 1, i: 2, j: 1},
	}
	for _, w := range want {
		if got := hp.pop(); got != w {
			t.Fatalf("pop = %+v, want %+v", got, w)
		}
	}
	if hp.len() != 0 {
		t.Fatalf("heap not drained: %d left", hp.len())
	}
}
