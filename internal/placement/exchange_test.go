package placement

import (
	"testing"

	"repro/internal/core"
	"repro/internal/xrand"
)

func TestGreedyExchangeNeverWorse(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		sys, _ := randomSystem(xrand.New(seed), 10, 7, 0.25)
		g := GreedyGlobal(sys)
		x := GreedyExchange(sys)
		if x.PredictedCost > g.PredictedCost+1e-9 {
			t.Fatalf("seed %d: exchange %v worse than greedy %v",
				seed, x.PredictedCost, g.PredictedCost)
		}
		if err := x.Placement.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Reported cost matches the placement.
		if got := x.Placement.Cost(core.ZeroHitRatio); got != x.PredictedCost {
			t.Fatalf("seed %d: reported %v, placement cost %v", seed, x.PredictedCost, got)
		}
	}
}

func TestGreedyExchangeSometimesImproves(t *testing.T) {
	// Exchange must strictly beat plain greedy on at least one of a
	// batch of random instances — otherwise the refinement is dead
	// code for the scales we care about.
	improved := 0
	for seed := uint64(100); seed < 115; seed++ {
		sys, _ := randomSystem(xrand.New(seed), 10, 7, 0.2)
		g := GreedyGlobal(sys)
		x := GreedyExchange(sys)
		if x.PredictedCost < g.PredictedCost-1e-9 {
			improved++
		}
	}
	if improved == 0 {
		t.Skip("greedy already locally optimal on all sampled instances")
	}
}

func TestRebuildRejectsInfeasible(t *testing.T) {
	sys, _ := randomSystem(xrand.New(3), 4, 3, 0.1)
	// Find a site bigger than a server's capacity and force it.
	for j := 0; j < sys.M(); j++ {
		if sys.SiteBytes[j] > sys.Capacity[0] {
			if _, ok := rebuild(sys, map[[2]int]bool{{0, j}: true}); ok {
				t.Fatal("infeasible set rebuilt")
			}
			return
		}
	}
	t.Skip("all sites fit: nothing to reject")
}
