package placement

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/xrand"
)

// withDemand shallow-copies a system with a fresh demand matrix —
// the shape of a reconcile round: same topology, new EWMA.
func withDemand(sys *core.System, mutate func(d [][]float64)) *core.System {
	next := *sys
	next.Demand = make([][]float64, sys.N())
	for i := range next.Demand {
		next.Demand[i] = append([]float64(nil), sys.Demand[i]...)
	}
	if mutate != nil {
		mutate(next.Demand)
	}
	return &next
}

// TestIncrementalUnchangedDemand: with zero drift the warm round must
// pass the previous solution through — same replica matrix, same
// predicted cost, no steps added, all predictors reused.
func TestIncrementalUnchangedDemand(t *testing.T) {
	sys, specs := randomSystem(xrand.New(11), 20, 10, 0.1)
	cfg := IncrementalConfig{HybridConfig: HybridConfig{Specs: specs, AvgObjectBytes: 1}}

	cold, warm, stats, err := Incremental(nil, sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Warm || stats.Reason != "cold-start" {
		t.Fatalf("first round: stats = %+v, want cold-start", stats)
	}
	if len(cold.Steps) == 0 {
		t.Fatal("degenerate cold run, no steps")
	}

	again, warm2, stats2, err := Incremental(warm, withDemand(sys, nil), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.Warm {
		t.Fatalf("unchanged demand went cold: %+v", stats2)
	}
	if stats2.DirtyRows != 0 || stats2.PredictorsReused != sys.N() {
		t.Fatalf("unchanged demand dirtied rows: %+v", stats2)
	}
	if stats2.StepsAdded != 0 {
		t.Fatalf("unchanged demand added %d steps", stats2.StepsAdded)
	}
	if !placementsEqual(cold.Placement, again.Placement) {
		t.Fatal("warm round changed the placement")
	}
	if again.PredictedCost != cold.PredictedCost {
		t.Fatalf("predicted cost drifted: cold %v, warm %v", cold.PredictedCost, again.PredictedCost)
	}
	if len(again.Steps) != len(cold.Steps) {
		t.Fatalf("step recipe changed length: %d vs %d", len(again.Steps), len(cold.Steps))
	}
	if warm2.SharedStats().Entries == 0 {
		t.Fatal("shared table empty after two rounds")
	}
}

// TestIncrementalSmallDriftStaysWarm: sub-threshold noise on every row
// must repair in place and keep the predicted cost near a cold
// re-solve on the same demand.
func TestIncrementalSmallDriftStaysWarm(t *testing.T) {
	sys, specs := randomSystem(xrand.New(12), 20, 10, 0.1)
	cfg := IncrementalConfig{HybridConfig: HybridConfig{Specs: specs, AvgObjectBytes: 1}}

	_, warm, _, err := Incremental(nil, sys, cfg)
	if err != nil {
		t.Fatal(err)
	}

	r := xrand.New(13)
	drifted := withDemand(sys, func(d [][]float64) {
		for i := range d {
			for j := range d[i] {
				d[i][j] *= 1 + 0.02*(2*r.Float64()-1) // ±2% per cell, below the 5% row threshold
			}
		}
	})
	res, _, stats, err := Incremental(warm, drifted, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Warm {
		t.Fatalf("small drift went cold: %+v", stats)
	}
	coldRes, _, _, err := Incremental(nil, drifted, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(res.PredictedCost-coldRes.PredictedCost) / coldRes.PredictedCost
	if rel > 0.05 {
		t.Fatalf("warm cost %v vs cold %v: rel diff %.3g", res.PredictedCost, coldRes.PredictedCost, rel)
	}
	if err := res.Placement.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalLargeDriftFallsBack: when most rows move, the warm
// path must abandon the carried placement and re-solve cold — the
// result must equal a from-scratch solve exactly.
func TestIncrementalLargeDriftFallsBack(t *testing.T) {
	sys, specs := randomSystem(xrand.New(14), 18, 9, 0.1)
	cfg := IncrementalConfig{HybridConfig: HybridConfig{Specs: specs, AvgObjectBytes: 1}}

	_, warm, _, err := Incremental(nil, sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(15)
	shifted := withDemand(sys, func(d [][]float64) {
		for i := range d {
			for j := range d[i] {
				d[i][j] *= 0.2 + 1.6*r.Float64() // ±80% per cell
			}
		}
	})
	res, _, stats, err := Incremental(warm, shifted, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Warm || stats.Reason != "drift-too-large" {
		t.Fatalf("large drift stayed warm: %+v", stats)
	}
	fresh, err := Hybrid(shifted, HybridConfig{Specs: specs, AvgObjectBytes: 1, Engine: EngineLazy})
	if err != nil {
		t.Fatal(err)
	}
	if !placementsEqual(res.Placement, fresh.Placement) {
		t.Fatal("cold fallback placement differs from a fresh solve")
	}
	if res.PredictedCost != fresh.PredictedCost {
		t.Fatalf("cold fallback cost %v, fresh %v", res.PredictedCost, fresh.PredictedCost)
	}
}

// TestIncrementalTopologyChange: a capacity change invalidates the
// carried state entirely.
func TestIncrementalTopologyChange(t *testing.T) {
	sys, specs := randomSystem(xrand.New(16), 12, 8, 0.1)
	cfg := IncrementalConfig{HybridConfig: HybridConfig{Specs: specs, AvgObjectBytes: 1}}
	_, warm, _, err := Incremental(nil, sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	next := withDemand(sys, nil)
	next.Capacity = append([]int64(nil), sys.Capacity...)
	next.Capacity[0] *= 2
	_, _, stats, err := Incremental(warm, next, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Warm || stats.Reason != "topology-changed" {
		t.Fatalf("topology change not detected: %+v", stats)
	}
}

// TestIncrementalGrowingDemandAddsReplicas: a warm round facing a
// localized hot spot must extend the placement (monotone repair) and
// report the added steps, with the full recipe recreating the result.
func TestIncrementalGrowingDemandAddsReplicas(t *testing.T) {
	sys, specs := randomSystem(xrand.New(17), 20, 10, 0.05)
	cfg := IncrementalConfig{
		HybridConfig:   HybridConfig{Specs: specs, AvgObjectBytes: 1},
		DriftThreshold: 0.5, // keep the hot rows warm so the repair path runs
		MaxDirtyFrac:   1,
	}
	_, warm, _, err := Incremental(nil, sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hot := withDemand(sys, func(d [][]float64) {
		for i := 0; i < 3; i++ {
			d[i][0] *= 4
		}
	})
	res, warm2, stats, err := Incremental(warm, hot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Warm {
		t.Fatalf("hot spot went cold: %+v", stats)
	}
	// Replay the recipe: every step must be a valid creation and the
	// final matrix must match.
	replay := core.NewPlacement(hot)
	for _, s := range res.Steps {
		if err := replay.Replicate(s.Server, s.Site); err != nil {
			t.Fatalf("recipe step (%d,%d): %v", s.Server, s.Site, err)
		}
	}
	if !placementsEqual(replay, res.Placement) {
		t.Fatal("step recipe does not recreate the warm placement")
	}
	if got := len(warm2.Steps()); got != len(res.Steps) {
		t.Fatalf("warm state holds %d steps, result %d", got, len(res.Steps))
	}
	if err := res.Placement.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func placementsEqual(a, b *core.Placement) bool {
	sa, sb := a.System(), b.System()
	if sa.N() != sb.N() || sa.M() != sb.M() {
		return false
	}
	for i := 0; i < sa.N(); i++ {
		for j := 0; j < sa.M(); j++ {
			if a.Has(i, j) != b.Has(i, j) {
				return false
			}
		}
	}
	return true
}
