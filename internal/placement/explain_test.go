package placement

import (
	"testing"

	"repro/internal/xrand"
)

// TestExplainMatchesSteps checks, for all four engines, that the explain
// stream mirrors Result.Steps exactly and that attaching a writer does
// not change the decisions.
func TestExplainMatchesSteps(t *testing.T) {
	sys, specs := randomSystem(xrand.New(21), 10, 8, 0.3)

	check := func(name string, explained []ExplainStep, res *Result, base *Result, lazy bool) {
		t.Helper()
		if len(res.Steps) != len(base.Steps) {
			t.Fatalf("%s: explain writer changed the run: %d vs %d steps",
				name, len(res.Steps), len(base.Steps))
		}
		if len(explained) != len(res.Steps) {
			t.Fatalf("%s: %d explain records for %d steps", name, len(explained), len(res.Steps))
		}
		totalPops := 0
		for k, ex := range explained {
			s, b := res.Steps[k], base.Steps[k]
			if ex.Iter != k || ex.Server != s.Server || ex.Site != s.Site ||
				ex.Benefit != s.Benefit || ex.PredictedCost != s.PredictedCost {
				t.Fatalf("%s: explain %d = %+v does not match step %+v", name, k, ex, s)
			}
			if s != b {
				t.Fatalf("%s: step %d changed under explain: %+v vs %+v", name, k, s, b)
			}
			totalPops += ex.HeapPops
		}
		if lazy && len(explained) > 0 && totalPops < len(explained) {
			t.Fatalf("%s: lazy engine reports %d heap pops over %d steps",
				name, totalPops, len(explained))
		}
	}

	var greedyEx []ExplainStep
	greedyBase := GreedyGlobalOpts(sys, GreedyConfig{})
	greedyRes := GreedyGlobalOpts(sys, GreedyConfig{
		Explain: func(e ExplainStep) { greedyEx = append(greedyEx, e) },
	})
	check("greedy-lazy", greedyEx, greedyRes, greedyBase, true)

	var greedyScanEx []ExplainStep
	greedyScanRes := GreedyGlobalOpts(sys, GreedyConfig{
		Scan:    true,
		Explain: func(e ExplainStep) { greedyScanEx = append(greedyScanEx, e) },
	})
	check("greedy-scan", greedyScanEx, greedyScanRes, greedyBase, false)

	// Engine forced: this instance is below the auto crossover, which
	// would otherwise select the scanning engine for the lazy case.
	hybridCfg := HybridConfig{Specs: specs, AvgObjectBytes: 1, Engine: EngineLazy}
	hybridBase, err := Hybrid(sys, hybridCfg)
	if err != nil {
		t.Fatal(err)
	}
	var hybridEx []ExplainStep
	cfg := hybridCfg
	cfg.Explain = func(e ExplainStep) { hybridEx = append(hybridEx, e) }
	hybridRes, err := Hybrid(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	check("hybrid-lazy", hybridEx, hybridRes, hybridBase, true)

	var hybridScanEx []ExplainStep
	cfg = hybridCfg
	cfg.Engine = EngineAuto
	cfg.Scan = true
	cfg.Explain = func(e ExplainStep) { hybridScanEx = append(hybridScanEx, e) }
	hybridScanRes, err := Hybrid(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	check("hybrid-scan", hybridScanEx, hybridScanRes, hybridBase, false)
}
