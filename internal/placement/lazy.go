// Lazy-greedy selection engines. Both placement algorithms pick, each
// iteration, the feasible (server, site) candidate with the largest
// cached benefit; the reference engines do that with a full O(n·m)
// argmax scan. The engines in this file replace the scan with a
// max-heap ordered by (benefit desc, server asc, site asc) — exactly
// the order the scan's row-major strict-greater comparison induces — so
// the selected step sequence is bit-identical (enforced by
// TestLazyMatchesScan*).
//
// GreedyGlobal benefits are monotone non-increasing as replicas are
// placed (every term of greedyBenefit shrinks pointwise when a column's
// NearestCost entries drop), which admits the textbook CELF form: a
// stale heap entry is an upper bound on the cell's current value, so it
// is re-evaluated only when it surfaces at the heap top, and the eager
// per-iteration column re-evaluation disappears entirely. Re-evaluating
// at the pop reads exactly the state an eager column re-evaluation
// would have read (the column is unchanged since its last event), so
// the floats are bitwise identical to the scanning engine's matrix.
//
// Hybrid benefits can also rise (shrinking server i*'s cache lowers its
// hit ratios, raising the remote term other candidates earn from it),
// so the heap runs in a lazy-deletion form over the same eagerly
// maintained matrix as the scanning engine: any update that raises a
// cell above its live heap key pushes a fresh entry, decayed entries
// are re-pushed at their current value when popped, and the top entry
// whose key matches the live matrix is the exact argmax. The model
// lookups themselves — the dominant cost — are served from a per-row
// cache of shrink-term hit ratios that stays valid until the row's own
// cache state changes (only the chosen server's row per iteration),
// returning the very float64 the predictor memo produced before.
package placement

import (
	"fmt"

	"repro/internal/core"
)

// benEntry is one heap candidate. epoch is the column epoch the entry's
// key was computed at (lazy-greedy engine); the hybrid engine leaves it
// at zero and detects staleness by comparing key against the live
// matrix. snap records the column's accumulated drift bound at push
// time (approximate greedy engine only): colDrift[j] − snap bounds how
// far the entry's key can sit above the cell's current value.
type benEntry struct {
	key   float64
	snap  float64
	i, j  int32
	epoch int32
}

// benHeap is a max-heap of candidates ordered by (key desc, i asc,
// j asc) — the scan's row-major first-maximum order. A hand-rolled
// sift-up/down avoids container/heap's interface boxing on a hot path.
type benHeap struct {
	e []benEntry
}

func benLess(a, b benEntry) bool {
	if a.key != b.key {
		return a.key > b.key
	}
	if a.i != b.i {
		return a.i < b.i
	}
	return a.j < b.j
}

func (h *benHeap) len() int { return len(h.e) }

func (h *benHeap) push(e benEntry) {
	h.e = append(h.e, e)
	i := len(h.e) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !benLess(h.e[i], h.e[parent]) {
			break
		}
		h.e[i], h.e[parent] = h.e[parent], h.e[i]
		i = parent
	}
}

func (h *benHeap) pop() benEntry {
	top := h.e[0]
	last := len(h.e) - 1
	h.e[0] = h.e[last]
	h.e = h.e[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && benLess(h.e[l], h.e[best]) {
			best = l
		}
		if r < last && benLess(h.e[r], h.e[best]) {
			best = r
		}
		if best == i {
			return top
		}
		h.e[i], h.e[best] = h.e[best], h.e[i]
		i = best
	}
}

// greedyLazy is the CELF-style engine behind GreedyGlobalOpts. The
// benefit of candidate (i, j) depends on the placement only through
// column j (NearestCost(·, j) and Has(·, j)), changes only when a
// replica of site j is created, and only ever decreases; feasibility,
// once lost, never returns (free space shrinks monotonically). So every
// heap entry keys an upper bound, a popped stale entry (column epoch
// behind) is re-evaluated against the current — equivalently,
// last-column-event — state and re-pushed, a popped infeasible entry is
// discarded for good, and the first fresh top is the scan's argmax.
//
// With eps > 0 the engine runs in ε-approximate mode: placing (i*, j*)
// lowers the benefit of any cell in column j* by at most
// Σ_{k improved} r_kj*·ΔC_k (each improved server k contributes through
// either the local term, k = i, or its remote term, at weight
// r_kj*·ΔC_k), so colDrift[j] accumulates that per-column bound and a
// popped stale entry whose key can have drifted by at most
// d = colDrift[j] − snap is accepted without re-evaluation when the
// worst-case loss max(0, k₂ + d − key) fits the remaining ε budget:
// every other entry's key upper-bounds its cell, so the true best among
// them is ≤ k₂, while the popped entry's true value is ≥ key − d.
// eps == 0 never charges the (empty) budget and reproduces the exact
// engine's float-op stream unchanged.
func greedyLazy(sys *core.System, cfg GreedyConfig, eps float64, engine Engine) *Result {
	updateRates := cfg.UpdateRates
	p := core.NewPlacement(sys)
	res := &Result{Placement: p}
	n, m := sys.N(), sys.M()
	workers := normWorkers(cfg.Parallelism, n)
	objective := func() float64 {
		c := p.Cost(core.ZeroHitRatio)
		if updateRates != nil {
			c += p.UpdateCost(updateRates)
		}
		return c
	}
	// Initial fill, identical to the reference engine's.
	ben := make([][]float64, n)
	fanOutRows(n, workers, func(i int) {
		ben[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			ben[i][j] = greedyBenefit(sys, p, i, j) - updatePenalty(sys, updateRates, i, j)
		}
	})
	colEpoch := make([]int32, m)
	hp := benHeap{e: make([]benEntry, 0, n*m)}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if ben[i][j] > 0 {
				hp.push(benEntry{key: ben[i][j], i: int32(i), j: int32(j)})
			}
		}
	}
	// ε machinery, inert at eps == 0.
	var (
		budget, spent float64
		colDrift      []float64
		oldCol        []float64
		driftAccepts  int
	)
	if eps > 0 {
		budget = eps * approxBudgetFrac * objective()
		colDrift = make([]float64, m)
		oldCol = make([]float64, n)
	}
	engineLabel := engine.String()
	// Engine work counters since the last emitted step; plain ints on
	// the existing paths, so a nil Explain costs nothing.
	var pops, stale, infeasible int
	for hp.len() > 0 {
		e := hp.pop()
		pops++
		i, j := int(e.i), int(e.j)
		if !p.CanReplicate(i, j) {
			infeasible++
			continue // permanently infeasible: free only shrinks, Has only grows
		}
		if e.epoch != colEpoch[j] {
			// Stale: the column changed since the key was computed.
			accepted := false
			if eps > 0 {
				d := colDrift[j] - e.snap
				k2 := 0.0
				if hp.len() > 0 {
					k2 = hp.e[0].key
				}
				if slack := maxf(0, k2+d-e.key); spent+slack <= budget {
					spent += slack
					driftAccepts++
					accepted = true
				}
			}
			if !accepted {
				// Re-evaluate — bitwise the value the reference engine's
				// eager column re-evaluation holds right now — and re-push
				// unless the candidate dropped out (values never increase,
				// so a non-positive value stays non-positive).
				stale++
				if v := greedyBenefit(sys, p, i, j) - updatePenalty(sys, updateRates, i, j); v > 0 {
					ent := benEntry{key: v, i: e.i, j: e.j, epoch: colEpoch[j]}
					if eps > 0 {
						ent.snap = colDrift[j]
					}
					hp.push(ent)
				}
				continue
			}
		}
		// Fresh top (or a stale entry accepted under the drift budget):
		// the scan's row-major first maximum, exactly or within the
		// charged slack.
		if eps > 0 {
			for k := 0; k < n; k++ {
				oldCol[k] = p.NearestCost(k, j)
			}
			improved, err := p.ReplicateTracked(i, j)
			if err != nil {
				panic(fmt.Sprintf("placement: internal error: %v", err))
			}
			for _, k := range improved {
				colDrift[j] += sys.Demand[k][j] * (oldCol[k] - p.NearestCost(k, j))
			}
		} else {
			mustReplicate(p, i, j)
		}
		colEpoch[j]++
		cost := objective()
		res.Steps = append(res.Steps, Step{
			Server:        i,
			Site:          j,
			Benefit:       e.key,
			PredictedCost: cost,
		})
		if cfg.Explain != nil {
			used := 0.0
			if budget > 0 {
				used = spent / budget
			}
			cfg.Explain(ExplainStep{
				Iter: len(res.Steps) - 1, Server: i, Site: j,
				Benefit: e.key, PredictedCost: cost,
				HeapPops: pops, StaleReevals: stale, Infeasible: infeasible,
				Engine: engineLabel, DriftAccepts: driftAccepts,
				DriftBudgetUsed: used,
			})
		}
		pops, stale, infeasible, driftAccepts = 0, 0, 0, 0
	}
	res.PredictedCost = objective()
	return res
}

// evalBenCached is the lazy hybrid engine's cell evaluation. It is the
// same computation as the reference engine's evalBen — identical
// floating-point chain, hence bitwise-identical values — except that
// the shrink-term model values preds[i].SiteHitRatioCond(k, ·, ·) are
// stored in (fill=true) or served from (fill=false) cache, the row's
// m×m table indexed [candidate j][site k]. The cached inputs (Free(i),
// visMass[i], the row's visibility and h[i]) change only when server i
// itself receives a replica, so a row's table stays valid across the
// many iterations where only its NearestCost column entries move, and
// the predictor memo guarantees a recomputation would return the very
// same float64.
func (st *hybridState) evalBenCached(i, j int, cache []float64, fill bool) float64 {
	p := st.p
	if !p.CanReplicate(i, j) {
		return 0
	}
	sys, h, m := st.sys, st.h, st.m

	// Line 9: local benefit.
	b := (1 - h[i][j]) * sys.Demand[i][j] * p.NearestCost(i, j)

	// Lines 10–13: shrink penalty, model values cached per row epoch.
	// Cells skipped here (k == j, replicated at i, or infeasible j —
	// handled above) are never read back within the same epoch, because
	// the skip conditions only change when the row is refilled.
	row := cache[j*m : (j+1)*m]
	if fill {
		newCache := p.Free(i) - sys.SiteBytes[j]
		newMass := st.visMass[i] - st.preds[i].SitePopularity(j)
		for k := 0; k < m; k++ {
			if k == j || p.Has(i, k) {
				continue
			}
			hNew := st.preds[i].SiteHitRatioCond(k, newMass, newCache)
			row[k] = hNew
			if dh := h[i][k] - hNew; dh != 0 {
				b -= dh * sys.Demand[i][k] * p.NearestCost(i, k)
			}
		}
	} else {
		hi := h[i]
		for k := 0; k < m; k++ {
			if k == j || p.Has(i, k) {
				continue
			}
			if dh := hi[k] - row[k]; dh != 0 {
				b -= dh * sys.Demand[i][k] * p.NearestCost(i, k)
			}
		}
	}

	// Lines 14–17: remote benefit.
	for s := 0; s < st.n; s++ {
		if s == i || p.Has(s, j) {
			continue
		}
		if dc := p.NearestCost(s, j) - sys.CostServer[s][i]; dc > 0 {
			b += dc * (1 - h[s][j]) * sys.Demand[s][j]
		}
	}
	return b - updatePenalty(sys, st.cfg.UpdateRates, i, j)
}

// hybridLazy is the exact heap engine behind Hybrid: the unified heap
// run of approx.go with a zero drift budget, which disables every
// deferral and reproduces the scanning engine's step sequence byte for
// byte (test-enforced). See hybridHeapRun for the loop itself.
func hybridLazy(st *hybridState) *Result {
	st.prepareCold()
	return hybridHeapRun(st, 0)
}
