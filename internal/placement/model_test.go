package placement

import (
	"math"
	"strings"
	"testing"

	"repro/internal/lrumodel"
	"repro/internal/xrand"
)

// TestHybridEmptyModelIsEq1ByteIdentical pins the redesign's
// compatibility contract: HybridConfig.Model = "" and "eq1" run the
// same engine state and produce identical step sequences and costs.
func TestHybridEmptyModelIsEq1ByteIdentical(t *testing.T) {
	sys, specs := randomSystem(xrand.New(31), 10, 8, 0.2)
	base := HybridConfig{Specs: specs, AvgObjectBytes: 1}
	def, err := Hybrid(sys, base)
	if err != nil {
		t.Fatal(err)
	}
	eq1Cfg := base
	eq1Cfg.Model = "eq1"
	eq1, err := Hybrid(sys, eq1Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Steps) != len(eq1.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(def.Steps), len(eq1.Steps))
	}
	for i := range def.Steps {
		if def.Steps[i] != eq1.Steps[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, def.Steps[i], eq1.Steps[i])
		}
	}
	if def.PredictedCost != eq1.PredictedCost {
		t.Fatalf("costs differ: %v vs %v", def.PredictedCost, eq1.PredictedCost)
	}
}

func TestHybridRejectsUnknownModel(t *testing.T) {
	sys, specs := randomSystem(xrand.New(5), 6, 5, 0.2)
	_, err := Hybrid(sys, HybridConfig{Specs: specs, AvgObjectBytes: 1, Model: "lfu"})
	if err == nil {
		t.Fatal("Hybrid accepted an unknown model")
	}
	for _, want := range []string{`"lfu"`, "eq1", "closedform"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestHybridClosedFormTracksEq1Cost is the acceptance bound for the
// fast model: optimizing under closedform must land within 1% of the
// eq1 engine's final predicted cost (both evaluated under eq1, so the
// comparison is apples to apples).
func TestHybridClosedFormTracksEq1Cost(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		sys, specs := randomSystem(xrand.New(seed), 10, 8, 0.2)
		base := HybridConfig{Specs: specs, AvgObjectBytes: 1}
		eq1, err := Hybrid(sys, base)
		if err != nil {
			t.Fatal(err)
		}
		cfCfg := base
		cfCfg.Model = "closedform"
		cf, err := Hybrid(sys, cfCfg)
		if err != nil {
			t.Fatal(err)
		}
		// Price the closedform-optimized placement under eq1.
		cfCost, err := PredictCostOpts(cf.Placement, CostOptions{Specs: specs, AvgObjectBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		eq1Cost, err := PredictCostOpts(eq1.Placement, CostOptions{Specs: specs, AvgObjectBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		if eq1Cost <= 0 {
			t.Fatalf("seed %d: eq1 cost %v", seed, eq1Cost)
		}
		if rel := (cfCost - eq1Cost) / eq1Cost; rel > 0.01 {
			t.Errorf("seed %d: closedform placement costs %.5f vs eq1's %.5f (+%.3f%%)",
				seed, cfCost, eq1Cost, 100*rel)
		}
	}
}

// TestHybridEveryModelProducesValidPlacement: all four kinds drive the
// engine to a feasible, cost-improving placement.
func TestHybridEveryModelProducesValidPlacement(t *testing.T) {
	sys, specs := randomSystem(xrand.New(13), 8, 6, 0.2)
	noneCost := PredictCost(None(sys).Placement, specs, 1)
	for _, kind := range lrumodel.ModelKinds() {
		res, err := Hybrid(sys, HybridConfig{Specs: specs, AvgObjectBytes: 1, Model: string(kind)})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(res.Steps) == 0 {
			t.Errorf("%s: no replicas placed", kind)
		}
		cost, err := PredictCostOpts(res.Placement, CostOptions{Specs: specs, AvgObjectBytes: 1, Model: string(kind)})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if cost > noneCost+1e-9 {
			t.Errorf("%s: placement cost %v above pure caching %v", kind, cost, noneCost)
		}
	}
}

// TestPredictCostOptsMatchesPredictCost: the options entry point under
// defaults is the legacy fixed-signature function, exactly.
func TestPredictCostOptsMatchesPredictCost(t *testing.T) {
	sys, specs := randomSystem(xrand.New(3), 8, 6, 0.2)
	res, err := Hybrid(sys, HybridConfig{Specs: specs, AvgObjectBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := PredictCost(res.Placement, specs, 1)
	got, err := PredictCostOpts(res.Placement, CostOptions{Specs: specs, AvgObjectBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("PredictCostOpts %v != PredictCost %v", got, want)
	}
}

// TestPredictCostOptsSharedTableReuse: repeated probes through one
// SharedTable return identical costs and actually hit the table the
// second time around — the controller's per-round double pricing no
// longer re-memoizes Equation (1) from scratch.
func TestPredictCostOptsSharedTableReuse(t *testing.T) {
	sys, specs := randomSystem(xrand.New(17), 8, 6, 0.2)
	res, err := Hybrid(sys, HybridConfig{Specs: specs, AvgObjectBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := PredictCostOpts(res.Placement, CostOptions{Specs: specs, AvgObjectBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	table := lrumodel.NewSharedTable()
	opts := CostOptions{Specs: specs, AvgObjectBytes: 1, Shared: table}
	first, err := PredictCostOpts(res.Placement, opts)
	if err != nil {
		t.Fatal(err)
	}
	hitsAfterFirst := table.Stats().Hits
	second, err := PredictCostOpts(res.Placement, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first != fresh || second != fresh {
		t.Fatalf("shared-table costs %v, %v != fresh %v", first, second, fresh)
	}
	if table.Stats().Hits <= hitsAfterFirst {
		t.Fatal("second probe did not hit the shared table")
	}
}

// TestIncrementalModelChangeForcesCold: a warm state built under one
// model cannot be repaired under another — the memoized hit-ratio
// surfaces differ — so the reconcile must fall back cold with the
// "model-changed" reason.
func TestIncrementalModelChangeForcesCold(t *testing.T) {
	sys, specs := randomSystem(xrand.New(23), 8, 6, 0.2)
	cfg := IncrementalConfig{HybridConfig: HybridConfig{Specs: specs, AvgObjectBytes: 1}}
	_, state, _, err := Incremental(nil, sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	changed := cfg
	changed.Model = "closedform"
	_, state2, stats, err := Incremental(state, sys, changed)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Warm {
		t.Fatal("reconcile stayed warm across a model change")
	}
	if stats.Reason != "model-changed" {
		t.Fatalf("cold reason %q, want \"model-changed\"", stats.Reason)
	}
	// Same model again: warm repair works on the rebuilt state.
	_, _, stats2, err := Incremental(state2, sys, changed)
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.Warm {
		t.Fatalf("second round under the new model fell back cold (%s)", stats2.Reason)
	}
	// "" and "eq1" are the same model: no spurious cold fallback.
	_, state3, _, err := Incremental(nil, sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eq1 := cfg
	eq1.Model = "eq1"
	_, _, stats3, err := Incremental(state3, sys, eq1)
	if err != nil {
		t.Fatal(err)
	}
	if !stats3.Warm {
		t.Fatalf("\"\" -> \"eq1\" forced a cold run (%s)", stats3.Reason)
	}
}

// TestHybridModelCostMonotonicity is a sanity guard on the cross-model
// deltas BENCH_models.json reports: the relative final-cost difference
// between closedform and eq1 stays tiny, while che and random may
// differ but remain the same order of magnitude.
func TestHybridModelCostMonotonicity(t *testing.T) {
	sys, specs := randomSystem(xrand.New(29), 10, 8, 0.2)
	costs := map[string]float64{}
	for _, kind := range lrumodel.ModelKinds() {
		res, err := Hybrid(sys, HybridConfig{Specs: specs, AvgObjectBytes: 1, Model: string(kind)})
		if err != nil {
			t.Fatal(err)
		}
		costs[string(kind)] = res.PredictedCost
	}
	if rel := math.Abs(costs["closedform"]-costs["eq1"]) / costs["eq1"]; rel > 0.01 {
		t.Errorf("closedform predicted cost drifted %.3f%% from eq1", 100*rel)
	}
	for kind, c := range costs {
		if rel := math.Abs(c-costs["eq1"]) / costs["eq1"]; rel > 0.5 {
			t.Errorf("%s predicted cost %.5f implausibly far from eq1's %.5f", kind, c, costs["eq1"])
		}
	}
}
