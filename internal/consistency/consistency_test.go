package consistency

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func smallScenario() *scenario.Scenario {
	w := workload.DefaultConfig()
	w.Servers = 8
	w.LowSites, w.MediumSites, w.HighSites = 2, 4, 2
	w.ObjectsPerSite = 100
	return scenario.MustBuild(scenario.Config{
		Topology: topology.Config{
			TransitDomains:        1,
			TransitNodesPerDomain: 2,
			StubsPerTransitNode:   2,
			StubNodesPerStub:      5,
			ExtraEdgeProb:         0.3,
		},
		Workload:     w,
		CapacityFrac: 0.15,
		Seed:         1,
	})
}

func fastConfig(mech Mechanism) Config {
	cfg := DefaultConfig()
	cfg.Mechanism = mech
	cfg.Requests = 60000
	cfg.Warmup = 30000
	return cfg
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Mechanism = "bogus" },
		func(c *Config) { c.Mechanism = TTL; c.TTLSeconds = 0 },
		func(c *Config) { c.RequestRate = 0 },
		func(c *Config) { c.ModMinSeconds = 0 },
		func(c *Config) { c.ModMaxSeconds = c.ModMinSeconds - 1 },
		func(c *Config) { c.Requests = 0 },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.FirstHopMs = -1 },
		// The global virtual clock makes the run inherently
		// sequential: sharded execution would reorder the Poisson
		// clock increments, so Parallelism > 1 must be rejected
		// rather than silently producing a different interleaving.
		func(c *Config) { c.Parallelism = 2 },
		func(c *Config) { c.Parallelism = -1 },
	}
	for i, mu := range mutations {
		c := DefaultConfig()
		mu(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	// Parallelism 0 (auto) stays valid: Run simply remains sequential.
	c := DefaultConfig()
	c.Parallelism = 0
	if err := c.Validate(); err != nil {
		t.Errorf("Parallelism=0 rejected: %v", err)
	}
}

func TestInvalidationNeverServesStale(t *testing.T) {
	sc := smallScenario()
	p := core.NewPlacement(sc.Sys)
	m, err := Run(sc, p, fastConfig(Invalidation), xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.StaleServes != 0 {
		t.Fatalf("strong consistency served %d stale documents", m.StaleServes)
	}
	if m.CacheHits == 0 || m.CacheMisses == 0 {
		t.Fatal("degenerate run")
	}
}

func TestTTLTradesFreshnessForLatency(t *testing.T) {
	sc := smallScenario()
	p := core.NewPlacement(sc.Sys)

	short := fastConfig(TTL)
	short.TTLSeconds = 30
	long := fastConfig(TTL)
	long.TTLSeconds = 6 * 3600

	mShort, err := Run(sc, p, short, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	mLong, err := Run(sc, p, long, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Longer TTL: fewer revalidations, more stale serves, lower RT.
	if mLong.Revalidations >= mShort.Revalidations {
		t.Errorf("revalidations did not drop with TTL: %d -> %d",
			mShort.Revalidations, mLong.Revalidations)
	}
	if mLong.StaleServes <= mShort.StaleServes {
		t.Errorf("stale serves did not grow with TTL: %d -> %d",
			mShort.StaleServes, mLong.StaleServes)
	}
	if mLong.MeanRTMs >= mShort.MeanRTMs {
		t.Errorf("mean RT did not drop with TTL: %.2f -> %.2f",
			mShort.MeanRTMs, mLong.MeanRTMs)
	}
}

func TestInvalidationLatencyBetweenTTLExtremes(t *testing.T) {
	sc := smallScenario()
	p := core.NewPlacement(sc.Sys)

	inv, err := Run(sc, p, fastConfig(Invalidation), xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	eager := fastConfig(TTL)
	eager.TTLSeconds = 1 // revalidate almost every hit
	mEager, err := Run(sc, p, eager, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Strong consistency only refetches actually-modified copies, so it
	// must be cheaper than revalidate-always...
	if inv.MeanRTMs >= mEager.MeanRTMs {
		t.Errorf("invalidation %.2f not cheaper than TTL=1s %.2f",
			inv.MeanRTMs, mEager.MeanRTMs)
	}
	// ...and its effective λ must be small when modification intervals
	// (hours) dwarf inter-request times.
	if l := inv.EffectiveLambda(); l <= 0 || l > 0.2 {
		t.Errorf("effective lambda %v implausible", l)
	}
}

func TestReplicasAlwaysFresh(t *testing.T) {
	sc := smallScenario()
	p := core.NewPlacement(sc.Sys)
	// Replicate everything everywhere (give servers room first).
	for i := range sc.Sys.Capacity {
		sc.Sys.Capacity[i] = sc.Work.TotalBytes * 2
	}
	p = core.NewPlacement(sc.Sys)
	for i := 0; i < sc.Sys.N(); i++ {
		for j := 0; j < sc.Sys.M(); j++ {
			if err := p.Replicate(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	m, err := Run(sc, p, fastConfig(TTL), xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if m.StaleServes != 0 || m.Revalidations != 0 {
		t.Fatal("replica serves incurred consistency traffic")
	}
	if m.LocalReplica != int64(m.Requests) {
		t.Fatal("not all requests were replica-local")
	}
	if m.MeanRTMs != 20 {
		t.Fatalf("mean RT %v, want 20", m.MeanRTMs)
	}
}

func TestDeterministic(t *testing.T) {
	sc := smallScenario()
	p := core.NewPlacement(sc.Sys)
	a, err := Run(sc, p, fastConfig(TTL), xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, p, fastConfig(TTL), xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanRTMs != b.MeanRTMs || a.StaleServes != b.StaleServes {
		t.Fatal("identical seeds diverged")
	}
}

func TestRunRejectsForeignPlacement(t *testing.T) {
	a := smallScenario()
	b := scenario.MustBuild(scenario.Config{
		Topology:     a.Cfg.Topology,
		Workload:     a.Cfg.Workload,
		CapacityFrac: a.Cfg.CapacityFrac,
		Seed:         99,
	})
	if _, err := Run(a, core.NewPlacement(b.Sys), fastConfig(TTL), xrand.New(1)); err == nil {
		t.Fatal("foreign placement accepted")
	}
}

func TestModifiedSince(t *testing.T) {
	r := xrand.New(13)
	if modifiedSince(0, 100, r) {
		t.Fatal("zero age reported modified")
	}
	if modifiedSince(-5, 100, r) {
		t.Fatal("negative age reported modified")
	}
	// Empirical frequency must match 1-exp(-age/mean).
	const age, mean = 50.0, 100.0
	want := 1 - math.Exp(-age/mean)
	hits := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if modifiedSince(age, mean, r) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("modification frequency %v, want %v", got, want)
	}
}

func TestMeanModDeterministicAndBounded(t *testing.T) {
	cfg := DefaultConfig()
	for site := 0; site < 5; site++ {
		for obj := 1; obj <= 50; obj++ {
			a := meanMod(cfg, site, obj)
			b := meanMod(cfg, site, obj)
			if a != b {
				t.Fatal("meanMod not deterministic")
			}
			if a < cfg.ModMinSeconds || a > cfg.ModMaxSeconds {
				t.Fatalf("meanMod %v outside [%v,%v]", a, cfg.ModMinSeconds, cfg.ModMaxSeconds)
			}
		}
	}
	if meanMod(cfg, 1, 2) == meanMod(cfg, 2, 1) {
		t.Fatal("meanMod collision for swapped coordinates (suspicious hash)")
	}
}
