// Package consistency implements the cache-consistency mechanisms the
// paper assumes exist but does not build (§3.3): it lets the CDN operator
// check what the λ abstraction ("a fraction λ_j of requests return
// uncacheable/stale documents") corresponds to in a system with real
// object modifications.
//
// Objects are modified by independent Poisson processes; each object's
// mean modification interval is drawn (deterministically, by hash) from a
// configurable range — the paper cites [22]'s observation that "the
// duration between successive modifications of an object is relatively
// large (between one and 24 hours)". Because Poisson modification is
// memoryless, a cached copy fetched at time t0 has been invalidated by
// time t with probability 1 − exp(−(t−t0)/mean): no global modification
// state is needed, the simulator draws the Bernoulli lazily at access
// time.
//
// Two mechanisms are modeled, following the taxonomy in §3.3:
//
//   - Invalidation: strong consistency through server-based invalidation
//     (Liu & Cao [18]). A cached copy that has been modified is never
//     served; the access becomes a miss that refetches from SN. Stale
//     serves are zero by construction.
//   - TTL: weak consistency. A cached copy is served without checking
//     until its time-to-live expires; within the TTL the client may
//     receive a stale document. On expiry the copy is revalidated at SN
//     (paying the redirection latency).
//
// Site replicas are always consistent, as the paper assumes for its
// strong-consistency experiment ("site replicas are always consistent,
// while cached pages must be refreshed").
package consistency

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/xrand"
)

// Mechanism selects the consistency protocol.
type Mechanism string

// The implemented mechanisms.
const (
	// Invalidation is strong consistency via server-based invalidation.
	Invalidation Mechanism = "invalidation"
	// TTL is weak consistency with a fixed time-to-live.
	TTL Mechanism = "ttl"
)

// Config controls one consistency simulation.
type Config struct {
	Mechanism Mechanism
	// TTLSeconds is the time-to-live for the TTL mechanism.
	TTLSeconds float64
	// RequestRate is the global request arrival rate (requests/second)
	// of the Poisson arrival process that drives the virtual clock.
	RequestRate float64
	// ModMinSeconds / ModMaxSeconds bound the per-object mean
	// modification intervals ([22]: one to 24 hours).
	ModMinSeconds, ModMaxSeconds float64
	// Requests / Warmup mirror sim.Config.
	Requests, Warmup int
	// FirstHopMs / PerHopMs mirror sim.Config (20 ms each in §5.1).
	FirstHopMs, PerHopMs float64
	// Parallelism mirrors sim.Config for configuration plumbing, but
	// only the sequential values (0 = auto, 1) are accepted: the run
	// advances one global virtual clock whose per-request Poisson
	// increments order every freshness decision, so server shards
	// cannot be interleaved without changing results. Values above 1
	// are rejected by Validate rather than silently ignored.
	Parallelism int
}

// DefaultConfig returns an hour-scale TTL under the paper's latency
// parameters, with modification intervals of 1–24 hours and a request
// rate high enough that caches see many requests per modification.
func DefaultConfig() Config {
	return Config{
		Mechanism:     TTL,
		TTLSeconds:    3600,
		RequestRate:   2000,
		ModMinSeconds: 3600,
		ModMaxSeconds: 24 * 3600,
		Requests:      300000,
		Warmup:        300000,
		FirstHopMs:    20,
		PerHopMs:      20,
	}
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.Mechanism != Invalidation && c.Mechanism != TTL:
		return fmt.Errorf("consistency: unknown mechanism %q", c.Mechanism)
	case c.Mechanism == TTL && c.TTLSeconds <= 0:
		return fmt.Errorf("consistency: TTLSeconds = %v", c.TTLSeconds)
	case c.RequestRate <= 0:
		return fmt.Errorf("consistency: RequestRate = %v", c.RequestRate)
	case c.ModMinSeconds <= 0 || c.ModMaxSeconds < c.ModMinSeconds:
		return fmt.Errorf("consistency: modification interval [%v, %v]",
			c.ModMinSeconds, c.ModMaxSeconds)
	case c.Requests < 1 || c.Warmup < 0:
		return fmt.Errorf("consistency: Requests=%d Warmup=%d", c.Requests, c.Warmup)
	case c.FirstHopMs < 0 || c.PerHopMs < 0:
		return fmt.Errorf("consistency: negative delay")
	case c.Parallelism > 1:
		return fmt.Errorf("consistency: Run is inherently sequential (global virtual clock), Parallelism = %d", c.Parallelism)
	case c.Parallelism < 0:
		return fmt.Errorf("consistency: Parallelism = %d", c.Parallelism)
	}
	return nil
}

// Metrics aggregates the measured phase of a consistency run.
type Metrics struct {
	Requests int
	// MeanRTMs is the mean response time including revalidations.
	MeanRTMs float64
	// StaleServes counts requests answered with an out-of-date cached
	// copy (only possible under TTL).
	StaleServes int64
	// Revalidations counts cache hits that had to travel to SN anyway
	// (expired TTL, or invalidated copy under strong consistency).
	Revalidations int64
	// CacheHits counts fresh local cache serves; CacheMisses counts
	// cold misses.
	CacheHits, CacheMisses int64
	// LocalReplica counts requests served by local site replicas.
	LocalReplica int64
}

// StaleFraction is the fraction of measured requests served stale.
func (m *Metrics) StaleFraction() float64 {
	if m.Requests == 0 {
		return 0
	}
	return float64(m.StaleServes) / float64(m.Requests)
}

// EffectiveLambda is the fraction of cache accesses that could not be
// served fresh from the cache (revalidations over cache accesses) — the
// quantity the paper's λ abstracts.
func (m *Metrics) EffectiveLambda() float64 {
	accesses := m.CacheHits + m.Revalidations
	if accesses == 0 {
		return 0
	}
	return float64(m.Revalidations) / float64(accesses)
}

// entryMeta tracks freshness state of one cached object at one server.
type entryMeta struct {
	fetchedAt float64 // virtual seconds
}

// Run simulates the consistency mechanism over the scenario and
// placement. Caches use LRU over the placement's free space, exactly as
// the main simulator; on top of that, every cached entry carries its
// fetch time and the mechanism decides whether a hit may be served.
func Run(sc *scenario.Scenario, p *core.Placement, cfg Config, r *xrand.Source) (*Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if p.System() != sc.Sys {
		return nil, fmt.Errorf("consistency: placement belongs to a different system")
	}
	n := sc.Sys.N()
	caches := make([]*cache.LRU, n)
	meta := make([]map[cache.Key]*entryMeta, n)
	for i := 0; i < n; i++ {
		caches[i] = cache.NewLRU(p.Free(i))
		meta[i] = make(map[cache.Key]*entryMeta)
	}

	stream := sc.Stream(r)
	clockRand := r.Split("clock")
	modRand := r.Split("modifications")

	m := &Metrics{}
	var clock, totalRT float64
	total := cfg.Warmup + cfg.Requests
	for t := 0; t < total; t++ {
		clock += clockRand.ExpFloat64() / cfg.RequestRate
		req := stream.Next()
		i, j := req.Server, req.Site
		measured := t >= cfg.Warmup
		if measured {
			m.Requests++
		}

		var rt float64
		switch {
		case p.Has(i, j):
			rt = cfg.FirstHopMs
			if measured {
				m.LocalReplica++
			}
		default:
			key := cache.Key{Site: j, Object: req.Object}
			remote := cfg.FirstHopMs + cfg.PerHopMs*p.NearestCost(i, j)
			if caches[i].Get(key) {
				em := meta[i][key]
				age := clock - em.fetchedAt
				switch cfg.Mechanism {
				case Invalidation:
					if modifiedSince(age, meanMod(cfg, j, req.Object), modRand) {
						// The origin invalidated this copy; refetch.
						rt = remote
						em.fetchedAt = clock
						if measured {
							m.Revalidations++
						}
					} else {
						rt = cfg.FirstHopMs
						if measured {
							m.CacheHits++
						}
					}
				case TTL:
					if age > cfg.TTLSeconds {
						rt = remote
						if modifiedSince(age, meanMod(cfg, j, req.Object), modRand) {
							// Refetch resets freshness either way.
						}
						em.fetchedAt = clock
						if measured {
							m.Revalidations++
						}
					} else {
						rt = cfg.FirstHopMs
						if measured {
							m.CacheHits++
							if modifiedSince(age, meanMod(cfg, j, req.Object), modRand) {
								m.StaleServes++
							}
						}
					}
				}
			} else {
				rt = remote
				caches[i].Put(key, sc.Work.Size(j, req.Object))
				if caches[i].Contains(key) {
					meta[i][key] = &entryMeta{fetchedAt: clock}
				}
				if measured {
					m.CacheMisses++
				}
				// Trim metadata of evicted entries lazily.
				if len(meta[i]) > 2*caches[i].Len()+64 {
					for k := range meta[i] {
						if !caches[i].Contains(k) {
							delete(meta[i], k)
						}
					}
				}
			}
		}
		if measured {
			totalRT += rt
		}
	}
	if m.Requests > 0 {
		m.MeanRTMs = totalRT / float64(m.Requests)
	}
	return m, nil
}

// modifiedSince draws whether a Poisson-modified object changed within
// the given age. Memorylessness makes the lazy draw exact.
func modifiedSince(age, mean float64, r *xrand.Source) bool {
	if age <= 0 {
		return false
	}
	return r.Float64() < 1-math.Exp(-age/mean)
}

// meanMod returns the object's mean modification interval, a
// deterministic hash-based draw from [ModMin, ModMax].
func meanMod(cfg Config, site, object int) float64 {
	u := xrand.Mix(uint64(site)<<32|uint64(object), "modinterval")
	frac := float64(u>>11) / (1 << 53)
	return cfg.ModMinSeconds + frac*(cfg.ModMaxSeconds-cfg.ModMinSeconds)
}
