package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split("workload")
	b := parent.Split("topology")
	equal := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Fatalf("labelled sub-streams collided %d times", equal)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(99), New(99)
	_ = a.Split("x")
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestSplitStableAcrossCallOrder(t *testing.T) {
	p1, p2 := New(5), New(5)
	a1 := p1.Split("a")
	_ = p1.Split("b")
	_ = p2.Split("b")
	a2 := p2.Split("a")
	if a1.Uint64() != a2.Uint64() {
		t.Fatal("Split streams depend on call order")
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(1)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(12345)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %f by >5 sigma", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(8)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	for _, n := range []int{0, 1, 2, 5, 64} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	s := New(19)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestMixStability(t *testing.T) {
	if Mix(1, "a") != Mix(1, "a") {
		t.Fatal("Mix is not deterministic")
	}
	if Mix(1, "a") == Mix(1, "b") {
		t.Fatal("Mix ignores label")
	}
	if Mix(1, "a") == Mix(2, "a") {
		t.Fatal("Mix ignores seed")
	}
}

func TestMul64AgainstBig(t *testing.T) {
	// Property: mul64 agrees with 128-bit multiplication decomposed via
	// 32-bit halves computed independently.
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Reference using math/bits-free recomputation.
		aLo, aHi := a&0xffffffff, a>>32
		bLo, bHi := b&0xffffffff, b>>32
		t0 := aLo * bLo
		t1 := aHi*bLo + t0>>32
		t2 := t1 & 0xffffffff
		t3 := t1 >> 32
		t2 += aLo * bHi
		wantHi := aHi*bHi + t3 + t2>>32
		wantLo := a * b
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
