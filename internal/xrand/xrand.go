// Package xrand provides deterministic, splittable pseudo-random number
// generation for the simulator.
//
// Every stochastic component of the reproduction (topology generation,
// workload synthesis, request sampling) draws from an *xrand.Source seeded
// from a single experiment seed. Sub-streams are derived with Split, which
// mixes a label into the parent seed, so that adding a new consumer of
// randomness does not perturb the streams of existing consumers — a
// property plain sequential rand.Rand sharing does not have.
//
// The generator is SplitMix64 (Steele, Lea, Flood 2014): tiny state, full
// 64-bit period per stream, and statistically strong enough for simulation
// workloads. Only the standard library is used.
package xrand

import "math"

// Source is a deterministic PRNG stream. The zero value is a valid stream
// seeded with 0; prefer New or Split for labelled streams.
type Source struct {
	state uint64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// splitmix64 advances the state and returns the next 64-bit output.
func (s *Source) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix hashes a label into a seed. It is used by Split and is exported so
// that callers can derive stable seeds for externally-owned generators.
func Mix(seed uint64, label string) uint64 {
	// FNV-1a over the label, folded into the seed through SplitMix64's
	// finalizer so that nearby seeds with nearby labels still diverge.
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	z := seed ^ h
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent labelled sub-stream. Two Splits of the same
// parent with different labels produce uncorrelated streams; the parent is
// not advanced.
func (s *Source) Split(label string) *Source {
	return &Source{state: Mix(s.state, label)}
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 { return s.next() }

// Int63 returns a non-negative int64.
func (s *Source) Int63() int64 { return int64(s.next() >> 1) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := s.next()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Source) ExpFloat64() float64 {
	// 1-Float64 avoids log(0).
	return -math.Log(1 - s.Float64())
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
