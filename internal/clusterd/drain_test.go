package clusterd

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/httpcdn"
)

// TestEdgeDrainsUnderLoad pins satellite behavior for rolling restarts:
// requests in flight when Shutdown begins complete with 200 — zero 5xx
// — and requests arriving after the listener closes are refused at the
// transport layer rather than half-served.
//
// The origin is slowed with the latency injector so the in-flight
// requests are guaranteed to still be on the wire when Shutdown is
// called (every request is a miss: distinct objects, cold cache).
func TestEdgeDrainsUnderLoad(t *testing.T) {
	params := Params{Edges: 1, Seed: 5, CapacityFrac: 0.2}
	tc := startCluster(t, params, ControlConfig{Interval: time.Hour})
	e := tc.edges[0]

	const slow = 150 * time.Millisecond
	tc.origin.Injector().Set(fault.ModeLatency, slow)
	defer tc.origin.Injector().Set(fault.ModeOff, 0)

	const inflight = 8
	client := &http.Client{Timeout: 10 * time.Second}
	url := e.URL()
	errs := make([]error, inflight)
	var started, finished sync.WaitGroup
	started.Add(inflight)
	finished.Add(inflight)
	for g := 0; g < inflight; g++ {
		go func(g int) {
			defer finished.Done()
			// Distinct objects of site 0 → all cache misses → all held at
			// the slow origin when the drain starts.
			path := httpcdn.ObjectPath(0, 1+g)
			req, _ := http.NewRequest(http.MethodGet, url+path, nil)
			started.Done()
			resp, err := client.Do(req)
			if err != nil {
				errs[g] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[g] = fmt.Errorf("GET %s during drain: %s", path, resp.Status)
			}
		}(g)
	}
	started.Wait()
	// The goroutines have issued Do; give the requests time to reach the
	// edge and block on the slow origin, then begin the drain.
	time.Sleep(slow / 3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	finished.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("in-flight request %d: %v", g, err)
		}
	}

	// After the drain the listener is closed: new connections fail fast.
	post := &http.Client{Timeout: time.Second}
	if _, err := post.Get(url + httpcdn.ObjectPath(0, 1)); err == nil {
		t.Fatal("request accepted after shutdown")
	}
}
