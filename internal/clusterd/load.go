package clusterd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httpcdn"
	"repro/internal/obs"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// LoadConfig parameterizes a load-generation run against a deployed
// cluster.
type LoadConfig struct {
	// ControlURL is the control plane's base URL; the generator
	// bootstraps its edge roster from GET /cluster/members.
	ControlURL string
	// Requests is the total request count across all workers.
	Requests int
	// Workers is the number of concurrent client workers, each with its
	// own deterministic request stream and latency histogram (0 = 4).
	Workers int
	// Seed derives the per-worker request streams (worker w uses
	// Seed+1000+w), independent of the scenario seed.
	Seed uint64
	// FaultEdge, when >= 0, injects FaultMode into that edge's fault
	// injector once the global request counter passes FaultAt, and
	// clears it after ClearAt — the chaos drill: kill an edge mid-run
	// and require zero lost requests.
	FaultEdge int
	FaultMode string
	FaultAt   int
	ClearAt   int
	// StaleLinkFrac, in [0,1), aims that fraction of requests at sites
	// outside the catalog — the stale-link traffic a churning catalog
	// produces after sites perish. These must come back as clean 404s
	// (counted in LoadResult.NotFound), never as errors.
	StaleLinkFrac float64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// LatencySummary is the merged latency view in milliseconds.
type LatencySummary struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// FaultSummary records the chaos drill a run performed.
type FaultSummary struct {
	Edge    int    `json:"edge"`
	Mode    string `json:"mode"`
	At      int    `json:"at"`
	ClearAt int    `json:"clear_at"`
}

// LoadResult is the measured outcome of a load run — the schema of
// BENCH_cluster.json.
type LoadResult struct {
	Params    Params  `json:"params"`
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	// Steered counts requests that failed on their nearest edge and
	// succeeded on a failover edge.
	Steered int64 `json:"steered"`
	// NotFound counts deliberate stale-link requests (StaleLinkFrac)
	// that the edge answered 404, as it should.
	NotFound   int64            `json:"not_found,omitempty"`
	DurationMs float64          `json:"duration_ms"`
	ReqPerSec  float64          `json:"req_per_sec"`
	Latency    LatencySummary   `json:"latency_ms"`
	BySource   map[string]int64 `json:"by_source"`
	Workers    int              `json:"workers"`
	Edges      int              `json:"edges"`
	Fault      *FaultSummary    `json:"fault,omitempty"`
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	NumCPU     int              `json:"num_cpu"`
}

// WaitMembers polls GET /cluster/members until every expected edge and
// the origin have registered, or ctx expires.
func WaitMembers(ctx context.Context, client *http.Client, controlURL string) (MembersPage, error) {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	var last error
	for {
		var m MembersPage
		err := getJSON(ctx, client, controlURL+"/cluster/members", &m)
		if err == nil && len(m.Edges) == m.Expected && m.OriginURL != "" {
			return m, nil
		}
		if err != nil {
			last = err
		} else {
			last = fmt.Errorf("cluster not ready: %d/%d edges, origin %q", len(m.Edges), m.Expected, m.OriginURL)
		}
		select {
		case <-ctx.Done():
			return MembersPage{}, fmt.Errorf("clusterd: waiting for members: %w (last: %v)", ctx.Err(), last)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// loadWorker is one client's slice of the run.
type loadWorker struct {
	hist     *obs.Histogram
	max      float64
	by       map[string]int64
	errs     int64
	steered  int64
	notFound int64
}

// RunLoad drives Requests Zipf-popular requests at the cluster behind
// ControlURL from Workers concurrent clients over persistent
// connections, optionally running the chaos drill, and returns the
// merged measurements. Each request goes to the edge the workload model
// says the client is nearest to; on failure the client steers to the
// remaining edges cheapest-first, so a single faulted edge costs
// latency, not availability.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("clusterd: %d requests", cfg.Requests)
	}
	if cfg.StaleLinkFrac < 0 || cfg.StaleLinkFrac >= 1 {
		return nil, fmt.Errorf("clusterd: stale-link fraction %v outside [0,1)", cfg.StaleLinkFrac)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Workers > cfg.Requests {
		cfg.Workers = cfg.Requests
	}
	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        4 * cfg.Workers,
			MaxIdleConnsPerHost: cfg.Workers,
			IdleConnTimeout:     30 * time.Second,
		},
	}
	members, err := WaitMembers(ctx, client, cfg.ControlURL)
	if err != nil {
		return nil, err
	}
	sc, err := members.Params.Build()
	if err != nil {
		return nil, err
	}
	edgeURL := make([]string, sc.Sys.N())
	for _, m := range members.Edges {
		if m.ID >= 0 && m.ID < len(edgeURL) {
			edgeURL[m.ID] = m.URL
		}
	}
	// fallback[i] is every other edge ordered by cost from edge i, the
	// same cheapest-first discipline the simulator's failover uses.
	fallback := make([][]int, sc.Sys.N())
	for i := range fallback {
		for k := 0; k < sc.Sys.N(); k++ {
			if k != i {
				fallback[i] = append(fallback[i], k)
			}
		}
		fi := fallback[i]
		sort.Slice(fi, func(a, b int) bool {
			return sc.Sys.CostServer[i][fi[a]] < sc.Sys.CostServer[i][fi[b]]
		})
	}

	var fault *FaultSummary
	if cfg.FaultEdge >= 0 && cfg.FaultMode != "" {
		if cfg.FaultEdge >= len(edgeURL) {
			return nil, fmt.Errorf("clusterd: fault edge %d out of range", cfg.FaultEdge)
		}
		fault = &FaultSummary{Edge: cfg.FaultEdge, Mode: cfg.FaultMode, At: cfg.FaultAt, ClearAt: cfg.ClearAt}
	}

	// 50µs .. ~6.5s in ms, fine enough that p99 interpolation is tight
	// at loopback latencies.
	bounds := obs.ExponentialBuckets(0.05, 1.35, 40)
	workers := make([]*loadWorker, cfg.Workers)
	var seq atomic.Int64 // global request ordinal, drives the fault schedule
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		lw := &loadWorker{hist: obs.NewHistogram(bounds), by: make(map[string]int64)}
		workers[w] = lw
		n := cfg.Requests / cfg.Workers
		if w < cfg.Requests%cfg.Workers {
			n++
		}
		stream := workload.NewStream(sc.Work, xrand.New(cfg.Seed+1000+uint64(w)))
		// staleRNG drives the stale-link coin flips, split off so the
		// object stream stays identical whether or not they are enabled.
		staleRNG := xrand.New(cfg.Seed + 2000 + uint64(w))
		wg.Add(1)
		go func(lw *loadWorker, stream *workload.Stream, n int) {
			defer wg.Done()
			for r := 0; r < n; r++ {
				if ctx.Err() != nil {
					lw.errs += int64(n - r)
					return
				}
				ordinal := int(seq.Add(1))
				if fault != nil {
					if ordinal == fault.At {
						setFault(ctx, client, edgeURL[fault.Edge], fault.Mode)
						if cfg.Logf != nil {
							cfg.Logf("load: request %d: injected %s into edge %d", ordinal, fault.Mode, fault.Edge)
						}
					} else if ordinal == fault.ClearAt {
						setFault(ctx, client, edgeURL[fault.Edge], "off")
						if cfg.Logf != nil {
							cfg.Logf("load: request %d: cleared fault on edge %d", ordinal, fault.Edge)
						}
					}
				}
				req := stream.Next()
				if cfg.StaleLinkFrac > 0 && staleRNG.Float64() < cfg.StaleLinkFrac {
					// A stale link: same client, but the site has left
					// the catalog. The edge must answer 404.
					lw.doStale(ctx, client, sc.Sys.N(), sc.Sys.M(), edgeURL, req)
					continue
				}
				lw.do(ctx, client, sc.Sys.N(), edgeURL, fallback, req)
			}
		}(lw, stream, n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &LoadResult{
		Params:    members.Params,
		Workers:   cfg.Workers,
		Edges:     len(members.Edges),
		Fault:     fault,
		BySource:  make(map[string]int64),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	merged := make([]int64, len(bounds)+1)
	var count int64
	for _, lw := range workers {
		res.Errors += lw.errs
		res.Steered += lw.steered
		res.NotFound += lw.notFound
		for src, n := range lw.by {
			res.BySource[src] += n
		}
		for i, c := range lw.hist.BucketCounts() {
			merged[i] += c
		}
		count += lw.hist.Count()
		if lw.max > res.Latency.Max {
			res.Latency.Max = lw.max
		}
	}
	res.Requests = int64(cfg.Requests)
	res.ErrorRate = float64(res.Errors) / float64(res.Requests)
	res.DurationMs = float64(elapsed.Nanoseconds()) / 1e6
	res.ReqPerSec = float64(res.Requests) / elapsed.Seconds()
	res.Latency.P50 = quantileFromBuckets(bounds, merged, count, 0.50)
	res.Latency.P95 = quantileFromBuckets(bounds, merged, count, 0.95)
	res.Latency.P99 = quantileFromBuckets(bounds, merged, count, 0.99)
	return res, nil
}

// do issues one request, steering across edges cheapest-first until one
// answers. The full attempt chain is timed as one client-visible
// latency observation.
func (lw *loadWorker) do(ctx context.Context, client *http.Client, n int, edgeURL []string, fallback [][]int, req workload.Request) {
	primary := req.Server
	if primary < 0 || primary >= n {
		primary = 0
	}
	t0 := time.Now()
	src, err := fetchObject(ctx, client, edgeURL[primary], req.Site, req.Object)
	if err != nil {
		ok := false
		for _, k := range fallback[primary] {
			if edgeURL[k] == "" {
				continue
			}
			if src, err = fetchObject(ctx, client, edgeURL[k], req.Site, req.Object); err == nil {
				ok = true
				break
			}
		}
		if !ok {
			lw.errs++
			return
		}
		lw.steered++
	}
	ms := float64(time.Since(t0).Nanoseconds()) / 1e6
	lw.hist.Observe(ms)
	if ms > lw.max {
		lw.max = ms
	}
	lw.by[src]++
}

// doStale issues one request for a site outside the catalog and
// requires a 404 — anything else (a 200 for a nonexistent site, a
// transport failure) is an error. The round trip is timed like any
// other request: stale links cost clients real latency.
func (lw *loadWorker) doStale(ctx context.Context, client *http.Client, n, m int, edgeURL []string, req workload.Request) {
	primary := req.Server
	if primary < 0 || primary >= n {
		primary = 0
	}
	if edgeURL[primary] == "" {
		lw.errs++
		return
	}
	t0 := time.Now()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		edgeURL[primary]+httpcdn.ObjectPath(m+req.Site, req.Object), nil)
	if err != nil {
		lw.errs++
		return
	}
	resp, err := client.Do(hreq)
	if err != nil {
		lw.errs++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		lw.errs++
		return
	}
	ms := float64(time.Since(t0).Nanoseconds()) / 1e6
	lw.hist.Observe(ms)
	if ms > lw.max {
		lw.max = ms
	}
	lw.notFound++
}

// fetchObject GETs one object from one edge and verifies the payload
// against the deterministic pattern for the version the ETag declares.
func fetchObject(ctx context.Context, client *http.Client, edgeURL string, site, object int) (source string, err error) {
	if edgeURL == "" {
		return "", fmt.Errorf("clusterd: no url for edge")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, edgeURL+httpcdn.ObjectPath(site, object), nil)
	if err != nil {
		return "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", req.URL, resp.Status)
	}
	version := httpcdn.VersionFromETag(resp.Header.Get("Etag"))
	if !httpcdn.VerifyBody(body, site, object, version) {
		return "", fmt.Errorf("GET %s: corrupt payload (%d bytes)", req.URL, len(body))
	}
	return resp.Header.Get("X-Cdn-Source"), nil
}

// setFault POSTs a fault-injector mode change; best-effort (the drill's
// assertions live in the measurements, not here).
func setFault(ctx context.Context, client *http.Client, edgeURL, mode string) {
	fctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodPost, edgeURL+"/admin/fault?mode="+mode, nil)
	if err != nil {
		return
	}
	if resp, err := client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// quantileFromBuckets is obs.Histogram.Quantile over merged bucket
// counts: linear interpolation within the bucket containing the target
// rank, overflow clamped to the highest finite bound.
func quantileFromBuckets(bounds []float64, counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range bounds {
		n := float64(counts[i])
		if cum+n >= rank && n > 0 {
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			return lo + (bounds[i]-lo)*(rank-cum)/n
		}
		cum += n
	}
	return bounds[len(bounds)-1]
}

// WriteReport writes the result as indented JSON to path ("-" for
// stdout).
func WriteReport(path string, res *LoadResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
