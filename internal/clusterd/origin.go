package clusterd

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/httpcdn"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/serverutil"
)

// OriginConfig parameterizes a standalone origin component.
type OriginConfig struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port).
	Addr string
	// MaxObjectBytes caps synthetic payload sizes (0 = 64 KiB, the
	// httpcdn default).
	MaxObjectBytes int64
	// Metrics receives the origin's serve counters; nil builds a
	// private registry (still served at /metrics).
	Metrics *obs.Registry
	// Logf, when non-nil, receives lifecycle lines.
	Logf func(format string, args ...any)
}

// Origin is one process serving the primary copy of every site. Unlike
// the in-process httpcdn cluster — one httptest server per site — the
// standalone deployment runs a single origin process multiplexing all
// sites by URL path, which is what the path scheme /obj/{site}/{object}
// already encodes.
type Origin struct {
	params Params
	cfg    OriginConfig
	sc     *scenario.Scenario
	inj    *fault.Injector
	srv    *serverutil.Server
	reg    *obs.Registry

	verMu    sync.Mutex
	versions map[cache.Key]int

	served      *obs.Counter
	notModified *obs.Counter
	notFound    *obs.Counter
}

// StartOrigin builds the scenario from params and serves it. Always
// Shutdown a started origin.
func StartOrigin(params Params, cfg OriginConfig) (*Origin, error) {
	sc, err := params.Build()
	if err != nil {
		return nil, err
	}
	if cfg.MaxObjectBytes <= 0 {
		cfg.MaxObjectBytes = 64 << 10
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	o := &Origin{
		params:   params,
		cfg:      cfg,
		sc:       sc,
		inj:      fault.NewInjector(),
		reg:      reg,
		versions: make(map[cache.Key]int),
		served: reg.Counter("cdn_origin_requests_total",
			"Requests served by the origin.", nil),
		notModified: reg.Counter("cdn_origin_not_modified_total",
			"Conditional GETs answered 304.", nil),
		notFound: reg.Counter("cdn_origin_notfound_total",
			"Requests for sites or objects outside the catalog (404s).", nil),
	}

	// /admin/fault and /admin/modify stay outside the injector wrap:
	// a blackholed origin must still accept the call that clears the
	// fault. Everything a peer or prober touches goes through it.
	served := http.NewServeMux()
	served.HandleFunc("/obj/", o.serveObject)
	served.HandleFunc("/admin/ping", servePing)

	mux := serverutil.DebugMux(reg)
	mux.Handle("/obj/", o.inj.Wrap(served))
	mux.Handle("/admin/ping", o.inj.Wrap(served))
	mux.HandleFunc("/admin/fault", serveFault(o.inj))
	mux.HandleFunc("/admin/modify", o.serveModify)

	srv, err := serverutil.Start(serverutil.Config{Addr: cfg.Addr, Handler: mux, Logf: cfg.Logf})
	if err != nil {
		return nil, err
	}
	o.srv = srv
	return o, nil
}

// URL returns the origin's base URL.
func (o *Origin) URL() string { return o.srv.URL() }

// Injector returns the origin's fault injector (the in-process chaos
// hook; remote drivers use POST /admin/fault).
func (o *Origin) Injector() *fault.Injector { return o.inj }

// Registry returns the origin's metrics registry.
func (o *Origin) Registry() *obs.Registry { return o.reg }

// Shutdown drains in-flight requests and stops the server.
func (o *Origin) Shutdown(ctx context.Context) error { return o.srv.Shutdown(ctx) }

// Register announces the origin to the control plane.
func (o *Origin) Register(ctx context.Context, client *http.Client, controlURL string) error {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return postJSON(ctx, client, controlURL+"/cluster/register",
		RegisterRequest{Kind: "origin", ID: -1, URL: o.URL()}, nil)
}

// ModifyObject bumps an object's version, changing its payload and
// invalidating the ETag every cached copy carries.
func (o *Origin) ModifyObject(site, object int) {
	o.verMu.Lock()
	defer o.verMu.Unlock()
	o.versions[cache.Key{Site: site, Object: object}]++
}

func (o *Origin) version(site, object int) int {
	o.verMu.Lock()
	defer o.verMu.Unlock()
	return o.versions[cache.Key{Site: site, Object: object}]
}

// serveObject answers GET /obj/{site}/{object}, honoring conditional
// GETs the way httpcdn's per-site origins do.
func (o *Origin) serveObject(w http.ResponseWriter, r *http.Request) {
	site, object, err := parseObjectPath(o.sc, r.URL.Path)
	if err != nil {
		http.NotFound(w, r)
		o.notFound.Inc()
		return
	}
	o.served.Inc()
	version := o.version(site, object)
	if inm := r.Header.Get("If-None-Match"); inm != "" && inm == httpcdn.ETagFor(site, object, version) {
		o.notModified.Inc()
		w.Header().Set("Etag", httpcdn.ETagFor(site, object, version))
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeObject(w, o.sc, site, object, version, o.cfg.MaxObjectBytes, httpcdn.SourceOrigin)
}

// serveModify answers POST /admin/modify?site=&object=.
func (o *Origin) serveModify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	site, err1 := strconv.Atoi(r.URL.Query().Get("site"))
	object, err2 := strconv.Atoi(r.URL.Query().Get("object"))
	if err1 != nil || err2 != nil || site < 0 || site >= o.sc.Sys.M() {
		http.Error(w, "bad site/object", http.StatusBadRequest)
		return
	}
	o.ModifyObject(site, object)
	fmt.Fprintf(w, "site %d object %d now version %d\n", site, object, o.version(site, object))
}

// parseObjectPath extracts (site, object) from /obj/{site}/{object} and
// validates both against the scenario's catalog.
func parseObjectPath(sc *scenario.Scenario, path string) (site, object int, err error) {
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	if len(parts) != 3 || parts[0] != "obj" {
		return 0, 0, fmt.Errorf("clusterd: bad path %q", path)
	}
	site, err = strconv.Atoi(parts[1])
	if err != nil || site < 0 || site >= sc.Sys.M() {
		return 0, 0, fmt.Errorf("clusterd: bad site in %q", path)
	}
	object, err = strconv.Atoi(parts[2])
	if err != nil || object < 1 || object > len(sc.Work.Sites[site].Objects) {
		return 0, 0, fmt.Errorf("clusterd: bad object in %q", path)
	}
	return site, object, nil
}

// objectSize is the served payload size for (site, object), capped.
func objectSize(sc *scenario.Scenario, site, object int, maxBytes int64) int64 {
	sz := sc.Work.Size(site, object)
	if sz > maxBytes {
		sz = maxBytes
	}
	if sz < 1 {
		sz = 1
	}
	return sz
}

// writeObject streams the deterministic payload with the standard CDN
// response headers.
func writeObject(w http.ResponseWriter, sc *scenario.Scenario, site, object, version int, maxBytes int64, source string) {
	size := objectSize(sc, site, object, maxBytes)
	w.Header().Set("X-Cdn-Source", source)
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.Header().Set("Etag", httpcdn.ETagFor(site, object, version))
	w.WriteHeader(http.StatusOK)
	httpcdn.WritePattern(w, site, object, version, size)
}

// servePing answers the control plane's active health probe. It runs
// behind the fault injector on purpose: an injected fault makes probes
// fail, which is how a "killed" component shows up as ejected.
func servePing(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

// serveFault handles POST /admin/fault?mode=error&latency=200ms — the
// remote chaos hook. It lives outside the injector wrap so a faulted
// component can always be restored.
func serveFault(inj *fault.Injector) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		mode, ok := fault.ParseMode(r.URL.Query().Get("mode"))
		if !ok {
			http.Error(w, "bad mode (want off, error, latency or blackhole)", http.StatusBadRequest)
			return
		}
		var latency time.Duration
		if s := r.URL.Query().Get("latency"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil {
				http.Error(w, "bad latency", http.StatusBadRequest)
				return
			}
			latency = d
		}
		inj.Set(mode, latency)
		fmt.Fprintf(w, "fault %s\n", mode)
	}
}
