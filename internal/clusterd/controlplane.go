package clusterd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/httpcdn"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/serverutil"
)

// Control-plane defaults.
const (
	// DefaultShards is the estimator shard count when ControlConfig
	// leaves it unset.
	DefaultShards = 4
	// DefaultProbeEvery / DefaultProbeTimeout drive the active health
	// prober.
	DefaultProbeEvery   = 500 * time.Millisecond
	DefaultProbeTimeout = time.Second
)

// ControlConfig parameterizes the control-plane component.
type ControlConfig struct {
	// Addr is the listen address.
	Addr string
	// Shards is the estimator shard count (0 = DefaultShards).
	Shards int
	// Interval is the reconcile cadence (0 = 2s).
	Interval time.Duration
	// ReportEvery is the demand-report cadence handed to registering
	// edges (0 = DefaultReportEvery).
	ReportEvery time.Duration
	// ProbeEvery / ProbeTimeout drive the active /admin/ping prober;
	// FailThreshold consecutive probe failures eject a member, EjectFor
	// is informational for the tracker's half-open window (the prober
	// keeps probing regardless).
	ProbeEvery    time.Duration
	ProbeTimeout  time.Duration
	FailThreshold int
	EjectFor      time.Duration
	// Controller knobs, passed through to control.Config.
	Hysteresis     float64
	CooldownRounds int
	Epsilon        float64
	// Model selects the analytical hit-ratio model for the initial
	// placement and every reconcile ("" = eq1).
	Model string
	// Metrics receives the control_* and cluster series; nil builds a
	// private registry.
	Metrics *obs.Registry
	// Logf, when non-nil, receives lifecycle and reconcile lines.
	Logf func(format string, args ...any)
}

// ControlPlane is the deployment's brain: scenario owner, registry of
// members, sharded demand estimator, reconcile loop and active prober.
type ControlPlane struct {
	params Params
	cfg    ControlConfig
	sc     *scenario.Scenario
	reg    *obs.Registry
	est    *control.ShardedEstimator
	ctrl   *control.Controller
	target *pushTarget
	srv    *serverutil.Server
	client *http.Client

	mu        sync.Mutex
	edgeURLs  []string // by edge id; "" until registered
	originURL string

	// trackers[i] is edge i's probe-driven health state.
	trackers []*httpcdn.Tracker

	cancel context.CancelFunc
	done   sync.WaitGroup

	registered  *obs.Gauge
	reports     *obs.Counter
	pushes      *obs.Counter
	pushErrs    *obs.Counter
	probeFails  *obs.Counter
	probeRounds *obs.Counter
}

// StartControl builds the scenario, computes the initial hybrid
// placement, and serves the cluster and debug endpoints. Always
// Shutdown a started control plane.
func StartControl(params Params, cfg ControlConfig) (*ControlPlane, error) {
	sc, err := params.Build()
	if err != nil {
		return nil, err
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.ReportEvery <= 0 {
		cfg.ReportEvery = DefaultReportEvery
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = DefaultProbeEvery
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.EjectFor <= 0 {
		cfg.EjectFor = 2 * time.Second
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}

	// The initial placement is the offline hybrid solution on the
	// scenario's synthetic demand — the same starting point cdnd uses;
	// the estimator's live view takes over from the first reconcile.
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
		Model:          cfg.Model,
	})
	if err != nil {
		return nil, err
	}

	est, err := control.NewShardedEstimator(control.EstimatorConfig{
		Servers: sc.Sys.N(), Sites: sc.Sys.M(),
	}, cfg.Shards, 0)
	if err != nil {
		return nil, err
	}

	cp := &ControlPlane{
		params:   params,
		cfg:      cfg,
		sc:       sc,
		reg:      reg,
		est:      est,
		client:   &http.Client{Timeout: 10 * time.Second},
		edgeURLs: make([]string, sc.Sys.N()),
		registered: reg.Gauge("cdn_cluster_registered_edges",
			"Edges currently registered with the control plane.", nil),
		reports: reg.Counter("cdn_cluster_report_batches_total",
			"Demand report batches received from edges.", nil),
		pushes: reg.Counter("cdn_cluster_placement_pushes_total",
			"Placement documents pushed to edges.", nil),
		pushErrs: reg.Counter("cdn_cluster_placement_push_errors_total",
			"Placement pushes that failed (the edge catches up via pull).", nil),
		probeFails: reg.Counter("cdn_cluster_probe_failures_total",
			"Active health probes that failed.", nil),
		probeRounds: reg.Counter("cdn_cluster_probe_rounds_total",
			"Active health probe sweeps completed.", nil),
	}
	for i := 0; i < sc.Sys.N(); i++ {
		t := &httpcdn.Tracker{}
		l := obs.Labels{"kind": "edge", "id": strconv.Itoa(i)}
		t.Instrument(
			reg.Counter("cdn_health_ejections_total",
				"Components ejected by the probe-driven health tracker.", l),
			reg.Counter("cdn_health_readmissions_total",
				"Ejected components readmitted after a successful probe.", l))
		cp.trackers = append(cp.trackers, t)
	}
	cp.target = &pushTarget{cp: cp, p: res.Placement, version: 1}

	cp.ctrl, err = control.New(control.Config{
		Base:           sc.Sys,
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
		Model:          cfg.Model,
		Target:         cp.target,
		Source:         est,
		Health:         cp,
		Interval:       cfg.Interval,
		Hysteresis:     cfg.Hysteresis,
		CooldownRounds: cfg.CooldownRounds,
		Epsilon:        cfg.Epsilon,
		Metrics:        reg,
		Logf:           cfg.Logf,
	})
	if err != nil {
		return nil, err
	}

	mux := serverutil.DebugMux(reg)
	mux.HandleFunc("/cluster/config", cp.serveConfig)
	mux.HandleFunc("/cluster/register", cp.serveRegister)
	mux.HandleFunc("/cluster/report", cp.serveReport)
	mux.HandleFunc("/cluster/placement", cp.servePlacement)
	mux.HandleFunc("/cluster/members", cp.serveMembers)
	h := control.Handler(cp.ctrl)
	mux.Handle("/debug/control", h)
	mux.Handle("/debug/control/audit", h)
	mux.Handle("/debug/control/reconcile", h)
	mux.HandleFunc("/debug/control/shards", cp.serveShards)
	mux.HandleFunc("/debug/health", cp.serveHealth)

	srv, err := serverutil.Start(serverutil.Config{Addr: cfg.Addr, Handler: mux, Logf: cfg.Logf})
	if err != nil {
		return nil, err
	}
	cp.srv = srv

	ctx, cancel := context.WithCancel(context.Background())
	cp.cancel = cancel
	cp.done.Add(2)
	go func() { defer cp.done.Done(); cp.ctrl.Run(ctx) }()
	go func() { defer cp.done.Done(); cp.probeLoop(ctx) }()
	return cp, nil
}

// URL returns the control plane's base URL.
func (cp *ControlPlane) URL() string { return cp.srv.URL() }

// Controller returns the reconcile controller (tests and debugging).
func (cp *ControlPlane) Controller() *control.Controller { return cp.ctrl }

// Estimator returns the sharded demand estimator.
func (cp *ControlPlane) Estimator() *control.ShardedEstimator { return cp.est }

// Registry returns the control plane's metrics registry.
func (cp *ControlPlane) Registry() *obs.Registry { return cp.reg }

// Placement returns the live placement and its version.
func (cp *ControlPlane) Placement() (*core.Placement, int64) { return cp.target.snapshot() }

// Shutdown stops the reconcile and probe loops, then drains the server.
func (cp *ControlPlane) Shutdown(ctx context.Context) error {
	cp.cancel()
	cp.done.Wait()
	return cp.srv.Shutdown(ctx)
}

// EjectedEdges implements control.HealthView: an edge is excluded from
// placement while it has never registered or while the probe-driven
// tracker holds it ejected.
func (cp *ControlPlane) EjectedEdges() []int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	var out []int
	for i, url := range cp.edgeURLs {
		if url == "" || cp.trackers[i].IsEjected() {
			out = append(out, i)
		}
	}
	return out
}

// probeLoop actively GETs every registered edge's /admin/ping. The
// probe goes through the edge's fault injector, so an injected error or
// blackhole "kills" the edge from the control plane's point of view:
// FailThreshold failed probes eject it (excluding it from the next
// reconcile's placement), and the first successful probe after the
// fault clears readmits it. Transitions unfreeze and kick the
// controller — the failure-reactive path cdnd wires through
// OnHealthChange.
func (cp *ControlPlane) probeLoop(ctx context.Context) {
	t := time.NewTicker(cp.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		cp.mu.Lock()
		targets := append([]string(nil), cp.edgeURLs...)
		cp.mu.Unlock()
		for i, url := range targets {
			if url == "" {
				continue
			}
			cp.probeOne(ctx, i, url)
		}
		cp.probeRounds.Inc()
	}
}

// probeOne probes one edge and feeds the outcome to its tracker.
func (cp *ControlPlane) probeOne(ctx context.Context, id int, url string) {
	pctx, cancel := context.WithTimeout(ctx, cp.cfg.ProbeTimeout)
	defer cancel()
	ok := false
	if req, err := http.NewRequestWithContext(pctx, http.MethodGet, url+"/admin/ping", nil); err == nil {
		if resp, err := cp.client.Do(req); err == nil {
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	t := cp.trackers[id]
	if ok {
		if t.IsEjected() {
			t.Success()
			cp.onHealthChange(id, false)
		} else {
			t.Success()
		}
		return
	}
	cp.probeFails.Inc()
	if t.Failure(cp.cfg.FailThreshold, cp.cfg.EjectFor, time.Now()) {
		cp.onHealthChange(id, true)
	}
}

// onHealthChange reacts to a probe-driven transition: log, unfreeze
// cooldowns on recovery, and reconcile out of band.
func (cp *ControlPlane) onHealthChange(id int, ejected bool) {
	if cp.cfg.Logf != nil {
		if ejected {
			cp.cfg.Logf("control: edge %d ejected (probes failing)", id)
		} else {
			cp.cfg.Logf("control: edge %d readmitted", id)
		}
	}
	if !ejected {
		cp.ctrl.Unfreeze()
	}
	cp.ctrl.Kick()
}

// roster snapshots the member view for wire replies. Caller must not
// hold cp.mu.
func (cp *ControlPlane) roster() (edges []Member, originURL string) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	for i, url := range cp.edgeURLs {
		if url != "" {
			edges = append(edges, Member{ID: i, URL: url})
		}
	}
	return edges, cp.originURL
}

// serveConfig answers GET /cluster/config with the deployment Params.
func (cp *ControlPlane) serveConfig(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, cp.params)
}

// serveRegister admits a component into the roster and hands it the
// scenario, the live placement and the report cadence.
func (cp *ControlPlane) serveRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.URL == "" {
		http.Error(w, "missing url", http.StatusBadRequest)
		return
	}
	switch req.Kind {
	case "edge":
		if req.ID < 0 || req.ID >= cp.sc.Sys.N() {
			http.Error(w, fmt.Sprintf("edge id %d out of range [0,%d)", req.ID, cp.sc.Sys.N()), http.StatusBadRequest)
			return
		}
		cp.mu.Lock()
		fresh := cp.edgeURLs[req.ID] == ""
		cp.edgeURLs[req.ID] = req.URL
		var n int64
		for _, u := range cp.edgeURLs {
			if u != "" {
				n++
			}
		}
		cp.mu.Unlock()
		cp.registered.Set(n)
		if fresh {
			if cp.cfg.Logf != nil {
				cp.cfg.Logf("control: edge %d registered at %s (%d/%d up)", req.ID, req.URL, n, cp.sc.Sys.N())
			}
			// New capacity: re-place without waiting for the tick.
			cp.ctrl.Unfreeze()
			cp.ctrl.Kick()
		}
	case "origin":
		cp.mu.Lock()
		cp.originURL = req.URL
		cp.mu.Unlock()
		if cp.cfg.Logf != nil {
			cp.cfg.Logf("control: origin registered at %s", req.URL)
		}
	default:
		http.Error(w, fmt.Sprintf("unknown kind %q", req.Kind), http.StatusBadRequest)
		return
	}
	edges, originURL := cp.roster()
	p, version := cp.target.snapshot()
	var doc bytes.Buffer
	if err := p.SaveJSON(&doc); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, RegisterResponse{
		Params:           cp.params,
		OriginURL:        originURL,
		Edges:            edges,
		PlacementVersion: version,
		Placement:        doc.Bytes(),
		ReportEveryMs:    cp.cfg.ReportEvery.Milliseconds(),
	})
}

// serveReport ingests an edge's demand deltas into the sharded
// estimator and piggybacks the roster/placement-version refresh.
func (cp *ControlPlane) serveReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var batch ReportBatch
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if batch.Edge < 0 || batch.Edge >= cp.sc.Sys.N() {
		http.Error(w, "bad edge id", http.StatusBadRequest)
		return
	}
	for _, c := range batch.Counts {
		// ObserveN routes each cell to its owning shard; out-of-range
		// sites are dropped there, as estimator taps always are.
		cp.est.ObserveN(batch.Edge, c.Site, c.N)
	}
	cp.reports.Inc()
	edges, originURL := cp.roster()
	_, version := cp.target.snapshot()
	writeJSON(w, ReportResponse{
		PlacementVersion: version,
		OriginURL:        originURL,
		Edges:            edges,
	})
}

// servePlacement answers GET /cluster/placement with the live document.
func (cp *ControlPlane) servePlacement(w http.ResponseWriter, r *http.Request) {
	p, version := cp.target.snapshot()
	var doc bytes.Buffer
	if err := p.SaveJSON(&doc); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, PlacementPush{Version: version, Doc: doc.Bytes()})
}

// serveMembers answers GET /cluster/members.
func (cp *ControlPlane) serveMembers(w http.ResponseWriter, r *http.Request) {
	edges, originURL := cp.roster()
	writeJSON(w, MembersPage{
		Params:    cp.params,
		OriginURL: originURL,
		Edges:     edges,
		Expected:  cp.sc.Sys.N(),
	})
}

// serveShards answers GET /debug/control/shards with the sharded
// estimator's per-shard status (cdnctl's shards subcommand reads it).
func (cp *ControlPlane) serveShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, cp.est.Status())
}

// serveHealth answers GET /debug/health with the probe-driven member
// view in the same shape as cdnd's endpoint: edges that never
// registered report state "unregistered".
func (cp *ControlPlane) serveHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	now := time.Now()
	cp.mu.Lock()
	var rep httpcdn.HealthReport
	for i, t := range cp.trackers {
		s := t.Snapshot("edge", i, now)
		if cp.edgeURLs[i] == "" {
			s.State = "unregistered"
		}
		rep.Edges = append(rep.Edges, s)
	}
	cp.mu.Unlock()
	writeJSON(w, rep)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// pushTarget implements control.Target for the multi-process cluster:
// SwapPlacement stores the new placement under a bumped version and
// pushes the document to every registered edge. A push that fails is
// counted and logged, never fatal — the edge's next report reply
// carries the new version and it pulls the document itself.
type pushTarget struct {
	cp      *ControlPlane
	mu      sync.Mutex
	p       *core.Placement
	version int64
}

// snapshot returns the live placement and version.
func (t *pushTarget) snapshot() (*core.Placement, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.p, t.version
}

// Placement implements control.Target.
func (t *pushTarget) Placement() *core.Placement {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.p
}

// SwapPlacement implements control.Target.
func (t *pushTarget) SwapPlacement(p *core.Placement) error {
	t.mu.Lock()
	t.p = p
	t.version++
	version := t.version
	t.mu.Unlock()

	var doc bytes.Buffer
	if err := p.SaveJSON(&doc); err != nil {
		return err
	}
	push := PlacementPush{Version: version, Doc: doc.Bytes()}
	edges, _ := t.cp.roster()
	for _, m := range edges {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := postJSON(ctx, t.cp.client, m.URL+"/admin/placement", push, nil)
		cancel()
		if err != nil {
			t.cp.pushErrs.Inc()
			if t.cp.cfg.Logf != nil {
				t.cp.cfg.Logf("control: push v%d to edge %d: %v", version, m.ID, err)
			}
			continue
		}
		t.cp.pushes.Inc()
	}
	return nil
}
