package clusterd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sort"
	"testing"
	"time"
)

// The cluster wire documents are consumed by cdnctl (shards), cdnload
// (members) and every joining component (register); these golden key
// sets pin the schemas so a field rename is a visible, deliberate break
// instead of a silent one — the same discipline control's schema test
// applies to /debug/control.

// checkKeys asserts obj carries every required key and nothing outside
// required ∪ optional.
func checkKeys(t *testing.T, what string, obj map[string]json.RawMessage, required, optional []string) {
	t.Helper()
	allowed := map[string]bool{}
	for _, k := range required {
		if _, ok := obj[k]; !ok {
			t.Errorf("%s: required key %q missing", what, k)
		}
		allowed[k] = true
	}
	for _, k := range optional {
		allowed[k] = true
	}
	var extra []string
	for k := range obj {
		if !allowed[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	if len(extra) > 0 {
		t.Errorf("%s: unexpected keys %v — extend the golden schema test if this is deliberate", what, extra)
	}
}

func fetchKeys(t *testing.T, method, url string, body []byte) map[string]json.RawMessage {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %s = %d", method, url, resp.StatusCode)
	}
	var obj map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&obj); err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestShardsPageSchema(t *testing.T) {
	tc := startCluster(t, DefaultParams(), ControlConfig{Interval: time.Hour})

	page := fetchKeys(t, http.MethodGet, tc.control.URL()+"/debug/control/shards", nil)
	checkKeys(t, "/debug/control/shards", page,
		[]string{"shards", "vnodes", "key_space"}, nil)

	var shards []map[string]json.RawMessage
	if err := json.Unmarshal(page["shards"], &shards); err != nil {
		t.Fatal(err)
	}
	if len(shards) != DefaultShards {
		t.Fatalf("%d shards, want %d", len(shards), DefaultShards)
	}
	for _, sh := range shards {
		checkKeys(t, "shards[i]", sh,
			[]string{"shard", "keys", "observed", "rolls", "rate_per_window"}, nil)
	}
}

func TestRegisterResponseSchema(t *testing.T) {
	tc := startCluster(t, DefaultParams(), ControlConfig{Interval: time.Hour})

	// Re-register edge 0 (idempotent) to capture the response document.
	body, err := json.Marshal(RegisterRequest{Kind: "edge", ID: 0, URL: tc.edges[0].URL()})
	if err != nil {
		t.Fatal(err)
	}
	reg := fetchKeys(t, http.MethodPost, tc.control.URL()+"/cluster/register", body)
	checkKeys(t, "/cluster/register response", reg,
		[]string{"params", "edges", "placement_version", "placement", "report_every_ms"},
		[]string{"origin_url"})

	var params map[string]json.RawMessage
	if err := json.Unmarshal(reg["params"], &params); err != nil {
		t.Fatal(err)
	}
	checkKeys(t, "register.params", params,
		[]string{"edges", "seed", "capacity_frac"}, nil)

	// The placement document must be the core.Placement wire format.
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(reg["placement"], &doc); err != nil {
		t.Fatal(err)
	}
	checkKeys(t, "register.placement", doc,
		[]string{"servers", "sites", "replicas"}, nil)
}

func TestMembersPageSchema(t *testing.T) {
	tc := startCluster(t, DefaultParams(), ControlConfig{Interval: time.Hour})

	page := fetchKeys(t, http.MethodGet, tc.control.URL()+"/cluster/members", nil)
	checkKeys(t, "/cluster/members", page,
		[]string{"params", "edges", "expected"},
		[]string{"origin_url"})
	var edges []map[string]json.RawMessage
	if err := json.Unmarshal(page["edges"], &edges); err != nil {
		t.Fatal(err)
	}
	if len(edges) != DefaultParams().Edges {
		t.Fatalf("%d edges registered, want %d", len(edges), DefaultParams().Edges)
	}
	for _, e := range edges {
		checkKeys(t, "members.edges[i]", e, []string{"id", "url"}, nil)
	}
}
