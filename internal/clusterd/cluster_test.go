package clusterd

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// testCluster boots a full in-process deployment on real loopback
// sockets: control plane, origin, and one edge process per scenario
// edge. Shutdown order is edges → origin → control.
type testCluster struct {
	params  Params
	control *ControlPlane
	origin  *Origin
	edges   []*Edge
}

func startCluster(t *testing.T, params Params, ccfg ControlConfig) *testCluster {
	t.Helper()
	ccfg.Addr = "127.0.0.1:0"
	cp, err := StartControl(params, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{params: params, control: cp}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for _, e := range tc.edges {
			e.Shutdown(ctx)
		}
		if tc.origin != nil {
			tc.origin.Shutdown(ctx)
		}
		cp.Shutdown(ctx)
	})

	o, err := StartOrigin(params, OriginConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	tc.origin = o
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := o.Register(ctx, nil, cp.URL()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < params.Edges; i++ {
		e, err := StartEdge(params, EdgeConfig{ID: i, Addr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		tc.edges = append(tc.edges, e)
		if err := e.Register(ctx, cp.URL()); err != nil {
			t.Fatal(err)
		}
	}
	return tc
}

// waitFor polls cond until it returns nil or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() error) {
	t.Helper()
	deadline := time.Now().Add(d)
	var last error
	for time.Now().Before(deadline) {
		if last = cond(); last == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s: %v", what, last)
}

// TestClusterServes boots control+origin+2 edges and drives a small
// load with no chaos: every request must succeed, demand reports must
// reach the sharded estimator, and a reconcile against the live
// estimate must apply.
func TestClusterServes(t *testing.T) {
	params := DefaultParams()
	tc := startCluster(t, params, ControlConfig{
		Interval:    time.Hour, // reconcile manually below
		ReportEvery: 50 * time.Millisecond,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := RunLoad(ctx, LoadConfig{
		ControlURL: tc.control.URL(),
		Requests:   400,
		Workers:    4,
		Seed:       7,
		FaultEdge:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d/%d requests failed", res.Errors, res.Requests)
	}
	if res.ReqPerSec <= 0 || res.Latency.P99 <= 0 || res.Latency.Max < res.Latency.P50 {
		t.Fatalf("degenerate measurements: %+v", res)
	}
	if len(res.BySource) == 0 {
		t.Fatal("no X-Cdn-Source breakdown")
	}

	// Demand flushed by the edges must land in the sharded estimator.
	waitFor(t, 5*time.Second, "demand reports", func() error {
		if tc.control.Estimator().Observed() == 0 {
			return fmt.Errorf("estimator still empty")
		}
		return nil
	})
	page := tc.control.Estimator().Status()
	var keys int
	for _, sh := range page.Shards {
		keys += sh.Keys
	}
	if keys != params.Edges*tc.control.sc.Sys.M() {
		t.Fatalf("shard key counts sum to %d, want %d", keys, params.Edges*tc.control.sc.Sys.M())
	}

	// A manual reconcile over the live estimate must produce a
	// placement and push it to the edges.
	tc.control.Estimator().Roll()
	tc.control.Controller().Unfreeze()
	if _, err := http.Post(tc.control.URL()+"/debug/control/reconcile", "", nil); err != nil {
		t.Fatal(err)
	}
	_, version := tc.control.Placement()
	waitFor(t, 5*time.Second, "placement push", func() error {
		for _, e := range tc.edges {
			if got := e.PlacementVersion(); got < version {
				return fmt.Errorf("edge %d at placement v%d, control at v%d", e.cfg.ID, got, version)
			}
		}
		return nil
	})
}

// TestClusterChaosDrill is the acceptance drill: fault an edge mid-run,
// require zero lost requests (clients steer to the surviving edge), and
// require the control plane's probe loop to eject the edge — recorded
// as an exclusion in the reconcile audit — then readmit it after the
// fault clears.
func TestClusterChaosDrill(t *testing.T) {
	params := Params{Edges: 2, Seed: 1, CapacityFrac: 0.15}
	tc := startCluster(t, params, ControlConfig{
		Interval:    200 * time.Millisecond,
		ReportEvery: 50 * time.Millisecond,
		// The fault window is measured in *requests* (FaultAt..ClearAt
		// below) and a fast loopback run can blow through it in under
		// 100ms of wall clock; probes must be dense enough that at
		// least FailThreshold of them land inside it, or the drill
		// flakes with "never ejected" on fast machines.
		ProbeEvery:     10 * time.Millisecond,
		ProbeTimeout:   250 * time.Millisecond,
		FailThreshold:  2,
		EjectFor:       300 * time.Millisecond,
		Hysteresis:     -1,
		CooldownRounds: -1,
	})
	const faulted = 1

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := RunLoad(ctx, LoadConfig{
		ControlURL: tc.control.URL(),
		Requests:   1500,
		Workers:    4,
		Seed:       11,
		FaultEdge:  faulted,
		FaultMode:  "error",
		FaultAt:    300,
		ClearAt:    900,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("chaos drill lost %d/%d requests", res.Errors, res.Requests)
	}
	if res.Steered == 0 {
		t.Fatal("no requests steered away from the faulted edge — fault never bit")
	}
	if res.Fault == nil || res.Fault.Edge != faulted {
		t.Fatalf("fault summary %+v", res.Fault)
	}

	// The fault is cleared by now, but the probe loop must have seen it:
	// the tracker records an ejection and, after the fault cleared, a
	// readmission.
	waitFor(t, 10*time.Second, "ejection+readmission", func() error {
		st := tc.edgeHealth(t, faulted)
		if st.Ejections == 0 {
			return fmt.Errorf("edge %d never ejected", faulted)
		}
		if st.Readmissions == 0 {
			return fmt.Errorf("edge %d never readmitted", faulted)
		}
		if st.State != "healthy" {
			return fmt.Errorf("edge %d still %s", faulted, st.State)
		}
		return nil
	})

	// The audit ring must hold a reconcile that excluded the faulted
	// edge, and a later one that did not.
	waitFor(t, 10*time.Second, "audit exclusion and readmission", func() error {
		records := tc.control.Controller().Audit()
		sawExcluded, sawReadmitted := false, false
		for _, rec := range records {
			excluded := false
			for _, id := range rec.ExcludedEdges {
				if id == faulted {
					excluded = true
				}
			}
			if excluded {
				sawExcluded = true
			} else if sawExcluded {
				sawReadmitted = true
			}
		}
		if !sawExcluded {
			return fmt.Errorf("no audit record excludes edge %d (%d records)", faulted, len(records))
		}
		if !sawReadmitted {
			return fmt.Errorf("no post-exclusion audit record readmits edge %d", faulted)
		}
		return nil
	})
}

// edgeHealth fetches one edge's row from the control plane's
// /debug/health.
func (tc *testCluster) edgeHealth(t *testing.T, id int) (st struct {
	State        string `json:"state"`
	Ejections    int64  `json:"ejections"`
	Readmissions int64  `json:"readmissions"`
}) {
	t.Helper()
	var rep struct {
		Edges []struct {
			ID           int    `json:"id"`
			State        string `json:"state"`
			Ejections    int64  `json:"ejections"`
			Readmissions int64  `json:"readmissions"`
		} `json:"edges"`
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := getJSON(ctx, http.DefaultClient, tc.control.URL()+"/debug/health", &rep); err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Edges {
		if e.ID == id {
			st.State, st.Ejections, st.Readmissions = e.State, e.Ejections, e.Readmissions
			return st
		}
	}
	t.Fatalf("edge %d missing from /debug/health", id)
	return st
}

// TestClusterBlackholeRestorable pins the admin-mux split: a blackholed
// edge still answers POST /admin/fault, so chaos is always reversible.
func TestClusterBlackholeRestorable(t *testing.T) {
	params := Params{Edges: 1, Seed: 3, CapacityFrac: 0.2}
	tc := startCluster(t, params, ControlConfig{Interval: time.Hour})
	e := tc.edges[0]

	e.Injector().Set(fault.ModeBlackhole, 0)
	client := &http.Client{Timeout: 500 * time.Millisecond}
	if _, err := client.Get(e.URL() + "/admin/ping"); err == nil {
		t.Fatal("blackholed edge answered a ping")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	setFault(ctx, &http.Client{Timeout: 2 * time.Second}, e.URL(), "off")
	if e.Injector().Mode() != fault.ModeOff {
		t.Fatal("/admin/fault did not clear the blackhole")
	}
	resp, err := http.Get(e.URL() + "/admin/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ping after restore: %s", resp.Status)
	}
}

// TestPlacementVersionGate: replayed or stale pushes must not regress
// an edge's placement.
func TestPlacementVersionGate(t *testing.T) {
	params := Params{Edges: 1, Seed: 2, CapacityFrac: 0.2}
	tc := startCluster(t, params, ControlConfig{Interval: time.Hour})
	e := tc.edges[0]
	v := e.PlacementVersion()
	if v < 1 {
		t.Fatalf("registered edge at placement v%d", v)
	}

	// Replay the current document under a stale version: accepted (the
	// push protocol is idempotent) but ignored.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var cur PlacementPush
	if err := getJSON(ctx, http.DefaultClient, tc.control.URL()+"/cluster/placement", &cur); err != nil {
		t.Fatal(err)
	}
	stale := PlacementPush{Version: v - 1, Doc: cur.Doc}
	if err := postJSON(ctx, http.DefaultClient, e.URL()+"/admin/placement", stale, nil); err != nil {
		t.Fatal(err)
	}
	if e.PlacementVersion() != v {
		t.Fatalf("stale push moved version to %d", e.PlacementVersion())
	}
	ahead := PlacementPush{Version: v + 5, Doc: cur.Doc}
	if err := postJSON(ctx, http.DefaultClient, e.URL()+"/admin/placement", ahead, nil); err != nil {
		t.Fatal(err)
	}
	if e.PlacementVersion() != v+5 {
		t.Fatalf("version %d after push v%d", e.PlacementVersion(), v+5)
	}
}

// TestNotFoundCounted pins the 404-attribution fix: a request for a
// path outside the catalog (a stale link to a perished site) must be
// answered 404 and land in the dedicated not-found counters — not in
// cdn_edge_errors_total or the origin's served count.
func TestNotFoundCounted(t *testing.T) {
	params := DefaultParams()
	e, err := StartEdge(params, EdgeConfig{ID: 0, Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	o, err := StartOrigin(params, OriginConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Shutdown(ctx)
		o.Shutdown(ctx)
	})

	bad := []string{"/obj/99999/1", "/obj/x/y", "/obj/0/0", "/obj/0"}
	for _, path := range bad {
		for _, base := range []string{e.URL(), o.URL()} {
			resp, err := http.Get(base + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("GET %s%s = %d, want 404", base, path, resp.StatusCode)
			}
		}
	}

	edgeLabel := obs.Labels{"edge": "0"}
	if got := e.Registry().Counter("cdn_edge_notfound_total", "", edgeLabel).Value(); got != int64(len(bad)) {
		t.Errorf("cdn_edge_notfound_total = %d, want %d", got, len(bad))
	}
	if got := e.Registry().Counter("cdn_edge_errors_total", "", edgeLabel).Value(); got != 0 {
		t.Errorf("cdn_edge_errors_total = %d after out-of-catalog 404s, want 0", got)
	}
	if got := o.Registry().Counter("cdn_origin_notfound_total", "", nil).Value(); got != int64(len(bad)) {
		t.Errorf("cdn_origin_notfound_total = %d, want %d", got, len(bad))
	}
	if got := o.Registry().Counter("cdn_origin_requests_total", "", nil).Value(); got != 0 {
		t.Errorf("origin served %d out-of-catalog requests, want 0", got)
	}
}

// TestLoadStaleLinks drives a run where a quarter of the requests aim
// at out-of-catalog sites: all of them must come back as clean 404s
// (NotFound), none as errors, and the edges must attribute them to the
// not-found counter rather than cdn_edge_errors_total.
func TestLoadStaleLinks(t *testing.T) {
	params := DefaultParams()
	tc := startCluster(t, params, ControlConfig{
		Interval:    time.Hour,
		ReportEvery: 50 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := RunLoad(ctx, LoadConfig{
		ControlURL:    tc.control.URL(),
		Requests:      400,
		Workers:       4,
		Seed:          7,
		FaultEdge:     -1,
		StaleLinkFrac: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d/%d requests failed under stale-link load", res.Errors, res.Requests)
	}
	// ~100 of 400 requests should be stale; the coin flips are seeded,
	// so just require the feature clearly engaged.
	if res.NotFound < 50 || res.NotFound > 150 {
		t.Fatalf("NotFound = %d of %d, want roughly a quarter", res.NotFound, res.Requests)
	}
	var notFound, fails int64
	for _, e := range tc.edges {
		label := obs.Labels{"edge": strconv.Itoa(e.ID())}
		notFound += e.Registry().Counter("cdn_edge_notfound_total", "", label).Value()
		fails += e.Registry().Counter("cdn_edge_errors_total", "", label).Value()
	}
	if notFound != res.NotFound {
		t.Errorf("edges counted %d not-found, load generator saw %d", notFound, res.NotFound)
	}
	if fails != 0 {
		t.Errorf("stale links drove cdn_edge_errors_total to %d, want 0", fails)
	}
	// Rejecting a bad fraction is part of the contract.
	if _, err := RunLoad(ctx, LoadConfig{ControlURL: tc.control.URL(), Requests: 1, StaleLinkFrac: 1}); err == nil {
		t.Error("RunLoad accepted StaleLinkFrac = 1")
	}
}
