// Package clusterd decomposes the single-process cdnd deployment into
// separately deployable components that speak HTTP to each other:
//
//   - a control plane (cmd/cdncontrol) that owns the deployment
//     scenario, shards the demand estimator by consistent-hashed
//     (edge, site) key, runs the reconcile loop against the aggregated
//     estimate, actively probes member health, and pushes placement
//     swaps to the edges;
//   - standalone edges (cmd/cdnedge) that serve the replica → cache →
//     peer/origin path with the same retry/health/trace machinery as
//     the in-process httpcdn cluster, count per-site demand locally,
//     and flush deltas to the control plane;
//   - a standalone origin (cmd/cdnorigin) serving every site's primary
//     copy with conditional-GET support and a fault-injector hook;
//   - a load generator (RunLoad / cmd/cdnload) with persistent
//     connections, concurrent workers, Zipf popularity from
//     internal/workload, per-worker latency histograms and client-side
//     failover across edges.
//
// Every process rebuilds the identical scenario deterministically from
// the shared Params (topology, workload and capacities all derive from
// the seed), so the wire protocol only ever carries the small Params
// struct and placement documents, never cost matrices.
package clusterd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Params is the shared deployment description. It is the only scenario
// state that crosses the wire: Build derives everything else (topology,
// workload, costs, capacities) deterministically.
type Params struct {
	// Edges is N, the number of edge servers the scenario expects; an
	// edge process registers as one of ids 0..Edges-1.
	Edges int `json:"edges"`
	// Seed derives every random stream of the scenario.
	Seed uint64 `json:"seed"`
	// CapacityFrac is per-edge storage as a fraction of total content
	// bytes.
	CapacityFrac float64 `json:"capacity_frac"`
}

// DefaultParams mirrors the cdnd demo scenario at cluster-smoke scale.
func DefaultParams() Params {
	return Params{Edges: 2, Seed: 1, CapacityFrac: 0.15}
}

// Build constructs the deployment scenario from p — the same topology
// and workload shape cmd/cdnd uses, so a cluster run is comparable to a
// single-process run at equal Edges/Seed.
func (p Params) Build() (*scenario.Scenario, error) {
	if p.Edges < 1 {
		return nil, fmt.Errorf("clusterd: %d edges", p.Edges)
	}
	w := workload.DefaultConfig()
	w.Servers = p.Edges
	w.LowSites, w.MediumSites, w.HighSites = 2, 4, 2
	w.ObjectsPerSite = 60
	return scenario.Build(scenario.Config{
		Topology: topology.Config{
			TransitDomains:        1,
			TransitNodesPerDomain: 2,
			StubsPerTransitNode:   3,
			StubNodesPerStub:      4,
			ExtraEdgeProb:         0.3,
		},
		Workload:     w,
		CapacityFrac: p.CapacityFrac,
		Seed:         p.Seed,
	})
}

// Member is one registered component in the control plane's roster.
type Member struct {
	ID  int    `json:"id"`
	URL string `json:"url"`
}

// RegisterRequest is the body of POST /cluster/register.
type RegisterRequest struct {
	// Kind is "edge" or "origin".
	Kind string `json:"kind"`
	// ID is the edge id in 0..Edges-1; origins register with -1.
	ID int `json:"id"`
	// URL is the component's base URL, reachable from the control plane
	// and from every edge.
	URL string `json:"url"`
}

// RegisterResponse hands a joining component everything it needs to
// serve: the scenario parameters, the current roster, the live
// placement and the report cadence.
type RegisterResponse struct {
	Params Params `json:"params"`
	// OriginURL is the origin component's base URL, empty until one
	// registers.
	OriginURL string `json:"origin_url,omitempty"`
	// Edges lists the currently registered edges.
	Edges []Member `json:"edges"`
	// PlacementVersion and Placement carry the live placement document
	// (core.Placement SaveJSON format) and its monotonic version.
	PlacementVersion int64           `json:"placement_version"`
	Placement        json.RawMessage `json:"placement"`
	// ReportEveryMs is the demand-report cadence the control plane asks
	// edges to flush at.
	ReportEveryMs int64 `json:"report_every_ms"`
}

// SiteCount is one (site, requests) demand delta in a report batch.
type SiteCount struct {
	Site int   `json:"site"`
	N    int64 `json:"n"`
}

// ReportBatch is the body of POST /cluster/report: an edge's per-site
// request counts since its previous report. The control plane routes
// each (edge, site) cell to the estimator shard that owns it.
type ReportBatch struct {
	Edge   int         `json:"edge"`
	Counts []SiteCount `json:"counts"`
}

// ReportResponse piggybacks roster and placement-version refresh on the
// report reply, so a steady-state edge needs no extra polling: when
// PlacementVersion is ahead of the edge's local version, the edge pulls
// GET /cluster/placement.
type ReportResponse struct {
	PlacementVersion int64    `json:"placement_version"`
	OriginURL        string   `json:"origin_url,omitempty"`
	Edges            []Member `json:"edges"`
}

// PlacementPush is the placement-swap wire format: the control plane
// POSTs it to each edge's /admin/placement after a reconcile applies,
// and serves it at GET /cluster/placement for pull-based catch-up.
// Version is monotonic; an edge ignores pushes at or below its current
// version, so replayed or reordered pushes are harmless.
type PlacementPush struct {
	Version int64           `json:"version"`
	Doc     json.RawMessage `json:"doc"`
}

// MembersPage is the GET /cluster/members payload — the load
// generator's bootstrap document.
type MembersPage struct {
	Params    Params   `json:"params"`
	OriginURL string   `json:"origin_url,omitempty"`
	Edges     []Member `json:"edges"`
	// Expected is the scenario's edge count; a deployment is fully up
	// when len(Edges) == Expected and OriginURL is set.
	Expected int `json:"expected"`
}

// postJSON POSTs v to url and decodes the JSON reply into out (out may
// be nil to discard).
func postJSON(ctx context.Context, client *http.Client, url string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %s: %s", url, resp.Status, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// getJSON GETs url and decodes the JSON reply into out.
func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, out)
}

// FetchParams retrieves the deployment Params from a control plane —
// the first call every joining component makes.
func FetchParams(ctx context.Context, client *http.Client, controlURL string) (Params, error) {
	var p Params
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	err := getJSON(ctx, client, controlURL+"/cluster/config", &p)
	return p, err
}
