package clusterd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/httpcdn"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/serverutil"
)

// DefaultReportEvery is the demand-report flush cadence an edge falls
// back to when the control plane does not specify one.
const DefaultReportEvery = 500 * time.Millisecond

// EdgeConfig parameterizes a standalone edge component.
type EdgeConfig struct {
	// ID is this edge's id in 0..Params.Edges-1.
	ID int
	// Addr is the listen address.
	Addr string
	// PerHopDelay injects the paper's per-hop latency model before
	// remote fetches (0 for tests).
	PerHopDelay time.Duration
	// MaxObjectBytes caps synthetic payload sizes (0 = 64 KiB).
	MaxObjectBytes int64
	// Retry bounds peer/origin fetches; zero fields take the
	// httpcdn.RetryPolicy defaults.
	Retry httpcdn.RetryPolicy
	// FailThreshold / EjectFor drive the passive upstream health
	// trackers (defaults 3 / 2s, as in httpcdn).
	FailThreshold int
	EjectFor      time.Duration
	// Metrics receives the edge's serve counters; nil builds a private
	// registry.
	Metrics *obs.Registry
	// Tracer, when non-nil, records a serve span per request with
	// upstream-attempt children, stitched across processes by the
	// Traceparent header — the same span schema cdntrace analyzes.
	Tracer *obs.Tracer
	// Logf, when non-nil, receives lifecycle lines.
	Logf func(format string, args ...any)
}

// Edge is one standalone CDN edge: replica set and byte-bounded LRU in
// front of peer/origin fetches, fed placement by the control plane.
type Edge struct {
	params Params
	cfg    EdgeConfig
	sc     *scenario.Scenario
	inj    *fault.Injector
	srv    *serverutil.Server
	reg    *obs.Registry
	client *http.Client

	// pl is the live placement, swapped atomically by placement pushes;
	// plVersion gates out-of-order pushes.
	pl        atomic.Pointer[core.Placement]
	plVersion atomic.Int64

	// roster is the control plane's member view, refreshed by register
	// and report replies.
	rosterMu  sync.RWMutex
	peers     map[int]string // edge id → base URL (includes self)
	originURL string

	// peerHealth[i] tracks edge i as an upstream; originHealth tracks
	// the origin process. Driven passively by fetch outcomes, exactly
	// like httpcdn's in-process trackers.
	peerHealth   []*httpcdn.Tracker
	originHealth *httpcdn.Tracker

	mu        sync.Mutex
	cache     cache.Cache
	cachedVer map[cache.Key]int

	// counts accumulates per-site demand between report flushes.
	counts []atomic.Int64

	// reportCancel/reportDone manage the report loop goroutine.
	loopMu       sync.Mutex
	reportCancel context.CancelFunc
	reportDone   chan struct{}
	reportEvery  time.Duration
	controlURL   string

	served              map[string]*obs.Counter
	hits, misses, fails *obs.Counter
	notFound            *obs.Counter
	reports, reportErrs *obs.Counter
	pulls, swaps        *obs.Counter
}

// StartEdge builds the scenario from params and serves it with an empty
// placement (every request is a cache lookup until the control plane
// pushes one). Always Shutdown a started edge.
func StartEdge(params Params, cfg EdgeConfig) (*Edge, error) {
	if cfg.ID < 0 || cfg.ID >= params.Edges {
		return nil, fmt.Errorf("clusterd: edge id %d of %d", cfg.ID, params.Edges)
	}
	sc, err := params.Build()
	if err != nil {
		return nil, err
	}
	if cfg.MaxObjectBytes <= 0 {
		cfg.MaxObjectBytes = 64 << 10
	}
	cfg.Retry = cfg.Retry.WithDefaults()
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.EjectFor <= 0 {
		cfg.EjectFor = 2 * time.Second
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Edge{
		params:       params,
		cfg:          cfg,
		sc:           sc,
		inj:          fault.NewInjector(),
		reg:          reg,
		client:       &http.Client{Timeout: 30 * time.Second},
		peers:        make(map[int]string),
		cachedVer:    make(map[cache.Key]int),
		counts:       make([]atomic.Int64, sc.Sys.M()),
		originHealth: &httpcdn.Tracker{},
		reportEvery:  DefaultReportEvery,
	}
	for i := 0; i < sc.Sys.N(); i++ {
		t := &httpcdn.Tracker{}
		l := obs.Labels{"kind": "edge", "id": strconv.Itoa(i)}
		t.Instrument(
			reg.Counter("cdn_health_ejections_total",
				"Components ejected by the passive health tracker.", l),
			reg.Counter("cdn_health_readmissions_total",
				"Ejected components readmitted after a successful probe.", l))
		e.peerHealth = append(e.peerHealth, t)
	}
	e.originHealth.Instrument(
		reg.Counter("cdn_health_ejections_total",
			"Components ejected by the passive health tracker.",
			obs.Labels{"kind": "origin", "id": "0"}),
		reg.Counter("cdn_health_readmissions_total",
			"Ejected components readmitted after a successful probe.",
			obs.Labels{"kind": "origin", "id": "0"}))

	edgeLabel := obs.Labels{"edge": strconv.Itoa(cfg.ID)}
	e.served = make(map[string]*obs.Counter, len(obs.Sources))
	for _, src := range obs.Sources {
		e.served[src] = reg.Counter("cdn_edge_requests_total",
			"Requests served by an edge, by source.",
			obs.Labels{"edge": strconv.Itoa(cfg.ID), "source": src})
	}
	e.hits = reg.Counter("cdn_edge_cache_hits_total", "Cache hits at an edge.", edgeLabel)
	e.misses = reg.Counter("cdn_edge_cache_misses_total", "Cache misses at an edge.", edgeLabel)
	e.fails = reg.Counter("cdn_edge_errors_total", "Requests an edge failed to serve.", edgeLabel)
	e.notFound = reg.Counter("cdn_edge_notfound_total", "Requests for sites or objects outside the catalog (404s).", edgeLabel)
	e.reports = reg.Counter("cdn_edge_reports_total", "Demand report batches flushed.", edgeLabel)
	e.reportErrs = reg.Counter("cdn_edge_report_errors_total", "Demand report batches that failed.", edgeLabel)
	e.pulls = reg.Counter("cdn_edge_placement_pulls_total", "Placements pulled after a stale report reply.", edgeLabel)
	e.swaps = reg.Counter("cdn_edge_placement_swaps_total", "Placement documents applied.", edgeLabel)

	// Boot with an empty placement: the cache gets this edge's full
	// capacity until the control plane's document arrives.
	none := placement.None(sc.Sys).Placement
	e.pl.Store(none)
	e.cache = cache.NewLRU(none.Free(cfg.ID))

	// /admin/placement and /admin/fault stay outside the injector wrap
	// (a blackholed edge must still accept a placement and the call
	// that clears the fault); the serving path and the health probe
	// target go through it.
	served := http.NewServeMux()
	served.HandleFunc("/obj/", e.serve)
	served.HandleFunc("/admin/ping", servePing)

	mux := serverutil.DebugMux(reg)
	mux.Handle("/obj/", e.inj.Wrap(served))
	mux.Handle("/admin/ping", e.inj.Wrap(served))
	mux.HandleFunc("/admin/placement", e.servePlacement)
	mux.HandleFunc("/admin/fault", serveFault(e.inj))

	srv, err := serverutil.Start(serverutil.Config{Addr: cfg.Addr, Handler: mux, Logf: cfg.Logf})
	if err != nil {
		return nil, err
	}
	e.srv = srv
	return e, nil
}

// URL returns the edge's base URL.
func (e *Edge) URL() string { return e.srv.URL() }

// ID returns the edge's id.
func (e *Edge) ID() int { return e.cfg.ID }

// Injector returns the edge's fault injector.
func (e *Edge) Injector() *fault.Injector { return e.inj }

// Registry returns the edge's metrics registry.
func (e *Edge) Registry() *obs.Registry { return e.reg }

// PlacementVersion returns the version of the applied placement.
func (e *Edge) PlacementVersion() int64 { return e.plVersion.Load() }

// Shutdown stops the report loop, then drains in-flight requests.
func (e *Edge) Shutdown(ctx context.Context) error {
	e.loopMu.Lock()
	cancel, done := e.reportCancel, e.reportDone
	e.reportCancel, e.reportDone = nil, nil
	e.loopMu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
	return e.srv.Shutdown(ctx)
}

// Register joins the control plane: it announces this edge's URL,
// applies the returned placement and roster, and starts the background
// demand-report loop at the cadence the control plane asked for.
func (e *Edge) Register(ctx context.Context, controlURL string) error {
	var resp RegisterResponse
	err := postJSON(ctx, e.client, controlURL+"/cluster/register",
		RegisterRequest{Kind: "edge", ID: e.cfg.ID, URL: e.URL()}, &resp)
	if err != nil {
		return err
	}
	if resp.Params != e.params {
		return fmt.Errorf("clusterd: control plane runs %+v, this edge was built for %+v", resp.Params, e.params)
	}
	e.setRoster(resp.Edges, resp.OriginURL)
	if len(resp.Placement) > 0 {
		if err := e.applyPlacement(PlacementPush{Version: resp.PlacementVersion, Doc: resp.Placement}); err != nil {
			return err
		}
	}
	every := DefaultReportEvery
	if resp.ReportEveryMs > 0 {
		every = time.Duration(resp.ReportEveryMs) * time.Millisecond
	}

	e.loopMu.Lock()
	defer e.loopMu.Unlock()
	e.controlURL = controlURL
	e.reportEvery = every
	if e.reportCancel == nil {
		lctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		e.reportCancel, e.reportDone = cancel, done
		go e.reportLoop(lctx, done)
	}
	return nil
}

// setRoster replaces the member view.
func (e *Edge) setRoster(edges []Member, originURL string) {
	e.rosterMu.Lock()
	defer e.rosterMu.Unlock()
	for _, m := range edges {
		if m.ID >= 0 && m.ID < e.sc.Sys.N() {
			e.peers[m.ID] = m.URL
		}
	}
	if originURL != "" {
		e.originURL = originURL
	}
}

// reportLoop flushes demand deltas to the control plane and pulls the
// placement when the report reply says the local copy is stale — the
// edge's entire steady-state control traffic.
func (e *Edge) reportLoop(ctx context.Context, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(e.reportEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			e.flushReport(context.Background()) // final flush, best effort
			return
		case <-t.C:
			e.flushReport(ctx)
		}
	}
}

// flushReport sends one report batch (even when empty: the reply
// doubles as the roster/placement refresh).
func (e *Edge) flushReport(ctx context.Context) {
	var batch ReportBatch
	batch.Edge = e.cfg.ID
	for j := range e.counts {
		if n := e.counts[j].Swap(0); n > 0 {
			batch.Counts = append(batch.Counts, SiteCount{Site: j, N: n})
		}
	}
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	var resp ReportResponse
	if err := postJSON(rctx, e.client, e.controlURL+"/cluster/report", batch, &resp); err != nil {
		// Restore the unsent counts so demand is delayed, not lost.
		for _, c := range batch.Counts {
			e.counts[c.Site].Add(c.N)
		}
		e.reportErrs.Inc()
		if e.cfg.Logf != nil {
			e.cfg.Logf("edge %d: report: %v", e.cfg.ID, err)
		}
		return
	}
	e.reports.Inc()
	e.setRoster(resp.Edges, resp.OriginURL)
	if resp.PlacementVersion > e.plVersion.Load() {
		e.pulls.Inc()
		var push PlacementPush
		if err := getJSON(rctx, e.client, e.controlURL+"/cluster/placement", &push); err == nil {
			if err := e.applyPlacement(push); err != nil && e.cfg.Logf != nil {
				e.cfg.Logf("edge %d: placement pull: %v", e.cfg.ID, err)
			}
		}
	}
}

// applyPlacement swaps in a pushed placement document. Pushes at or
// below the applied version are ignored (idempotent replay, reordered
// delivery); the cache is resized to the new replica set's free space.
func (e *Edge) applyPlacement(push PlacementPush) error {
	p, err := core.LoadJSON(e.sc.Sys, bytes.NewReader(push.Doc))
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if push.Version <= e.plVersion.Load() {
		return nil
	}
	e.pl.Store(p)
	e.plVersion.Store(push.Version)
	e.cache.Resize(p.Free(e.cfg.ID))
	e.swaps.Inc()
	return nil
}

// servePlacement handles the control plane's swap push (POST) and
// serves the applied document back (GET) for debugging.
func (e *Edge) servePlacement(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var push PlacementPush
		if err := json.NewDecoder(r.Body).Decode(&push); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := e.applyPlacement(push); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "placement version %d applied\n", e.plVersion.Load())
	case http.MethodGet:
		var doc bytes.Buffer
		if err := e.pl.Load().SaveJSON(&doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(PlacementPush{Version: e.plVersion.Load(), Doc: doc.Bytes()})
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
	}
}

// knownVersion is the newest origin version this edge has learned for
// an object (from fetched ETags); replica serves use it so a replica
// does not silently roll an object back after a peer fetch saw v+1.
func (e *Edge) knownVersion(key cache.Key) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cachedVer[key]
}

// serve handles GET /obj/{site}/{object}: replica → cache →
// peer/origin, the httpcdn serving discipline over real sockets.
func (e *Edge) serve(w http.ResponseWriter, r *http.Request) {
	site, object, err := parseObjectPath(e.sc, r.URL.Path)
	if err != nil {
		// A path outside the catalog is a client-side 404 (stale link,
		// perished site), not an edge failure — keep it out of the
		// error counter so alerts on cdn_edge_errors_total stay honest.
		http.NotFound(w, r)
		e.notFound.Inc()
		return
	}
	internal := r.Header.Get(httpcdn.InternalHeader) != ""
	if !internal {
		// Local demand tap: flushed to the control plane's sharded
		// estimator by the report loop.
		e.counts[site].Add(1)
	}
	trace, parent, _ := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	sp := httpcdn.NewSpan(e.cfg.Tracer, obs.SpanServe, trace, parent, e.cfg.ID, site, object)
	source, ok := e.handle(w, r, site, object, internal, sp)
	if !ok {
		sp.Attr("outcome", "error")
		sp.End()
		e.fails.Inc()
		return
	}
	sp.Attr("source", source)
	sp.Attr("outcome", "ok")
	sp.End()
	e.served[source].Inc()
}

// handle serves one parsed request and reports the source, or writes an
// error response and reports ok=false.
func (e *Edge) handle(w http.ResponseWriter, r *http.Request, site, object int, internal bool, sp *httpcdn.Span) (source string, ok bool) {
	key := cache.Key{Site: site, Object: object}
	pl := e.pl.Load()
	if pl.Has(e.cfg.ID, site) {
		writeObject(w, e.sc, site, object, e.knownVersion(key), e.cfg.MaxObjectBytes, httpcdn.SourceReplica)
		return httpcdn.SourceReplica, true
	}

	e.mu.Lock()
	hit := e.cache.Get(key)
	ver := e.cachedVer[key]
	e.mu.Unlock()
	if hit {
		e.hits.Inc()
		writeObject(w, e.sc, site, object, ver, e.cfg.MaxObjectBytes, httpcdn.SourceCache)
		return httpcdn.SourceCache, true
	}
	e.misses.Inc()

	var body []byte
	var etag string
	var ferr error
	var used upstreamRef
	for _, u := range e.upstreams(pl, site, internal) {
		if e.cfg.PerHopDelay > 0 {
			time.Sleep(time.Duration(u.hops * float64(e.cfg.PerHopDelay)))
		}
		body, etag, ferr = e.fetchWithRetry(r.Context(), u, httpcdn.ObjectPath(site, object), sp)
		if ferr == nil {
			used = u
			break
		}
	}
	if ferr != nil {
		status := http.StatusBadGateway
		if errors.Is(ferr, httpcdn.ErrEdgeTimeout) {
			status = http.StatusGatewayTimeout
		}
		w.Header().Set(httpcdn.ErrorHeader, httpcdn.ErrorClass(ferr))
		http.Error(w, ferr.Error(), status)
		return source, false
	}
	source = httpcdn.SourceOrigin
	if used.kind == "edge" {
		source = httpcdn.SourcePeer
	}

	e.mu.Lock()
	e.cache.Put(key, int64(len(body)))
	if e.cache.Contains(key) {
		e.cachedVer[key] = httpcdn.VersionFromETag(etag)
	}
	if len(e.cachedVer) > 2*e.cache.Len()+64 {
		for k := range e.cachedVer {
			if !e.cache.Contains(k) {
				delete(e.cachedVer, k)
			}
		}
	}
	e.mu.Unlock()

	w.Header().Set("X-Cdn-Source", source)
	w.Header().Set("Etag", etag)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	return source, true
}

// upstreamRef is one candidate source for a miss fetch.
type upstreamRef struct {
	kind string // "edge" or "origin"
	id   int
	url  string
	hops float64
}

// upstreams orders the candidate sources: internal fetches go straight
// to the origin (recursion prevention), client-facing fetches prefer
// the cheapest healthy replica-holding peer from the roster, keeping
// the origin as last resort even while ejected — the same ordering as
// httpcdn.Cluster.upstreams.
func (e *Edge) upstreams(pl *core.Placement, site int, internal bool) []upstreamRef {
	e.rosterMu.RLock()
	originURL := e.originURL
	peers := make(map[int]string, len(e.peers))
	for id, url := range e.peers {
		peers[id] = url
	}
	e.rosterMu.RUnlock()

	orig := upstreamRef{kind: "origin", id: site, url: originURL,
		hops: e.sc.Sys.CostOrigin[e.cfg.ID][site]}
	if internal || originURL == "" && len(peers) == 0 {
		return []upstreamRef{orig}
	}
	now := time.Now()
	best, bestCost := -1, math.Inf(1)
	for k, url := range peers {
		if k == e.cfg.ID || url == "" || !pl.Has(k, site) {
			continue
		}
		if !e.peerHealth[k].Candidate(now) {
			continue
		}
		if cost := e.sc.Sys.CostServer[e.cfg.ID][k]; cost < bestCost {
			best, bestCost = k, cost
		}
	}
	if best < 0 {
		return []upstreamRef{orig}
	}
	peer := upstreamRef{kind: "edge", id: best, url: peers[best], hops: bestCost}
	if orig.hops < peer.hops && e.originHealth.Candidate(now) {
		return []upstreamRef{orig, peer}
	}
	return []upstreamRef{peer, orig}
}

// trackerFor maps an upstream to its health tracker.
func (e *Edge) trackerFor(u upstreamRef) *httpcdn.Tracker {
	if u.kind == "edge" {
		return e.peerHealth[u.id]
	}
	return e.originHealth
}

// fetchWithRetry GETs path from u under the retry policy, feeding the
// outcome into u's passive health tracker.
func (e *Edge) fetchWithRetry(ctx context.Context, u upstreamRef, path string, sp *httpcdn.Span) (body []byte, etag string, err error) {
	t := e.trackerFor(u)
	if !t.AcquireProbe(time.Now()) {
		down := error(httpcdn.ErrOriginDown)
		if u.kind == "edge" {
			down = httpcdn.ErrPeerDown
		}
		return nil, "", fmt.Errorf("%w: %s %d is ejected", down, u.kind, u.id)
	}
	p := e.cfg.Retry
	for attempt := 1; ; attempt++ {
		usp := sp.Child(obs.SpanUpstream)
		usp.AttrInt("attempt", attempt)
		usp.AttrTarget(u.kind, u.id)
		body, etag, err = e.fetchOnce(ctx, u.url+path, usp)
		usp.AttrOutcome(err)
		usp.End()
		if err == nil || attempt >= p.Attempts || ctx.Err() != nil {
			break
		}
		select {
		case <-time.After(p.Backoff(attempt)):
		case <-ctx.Done():
		}
	}
	if err != nil && !errors.Is(err, httpcdn.ErrEdgeTimeout) && !errors.Is(err, httpcdn.ErrUpstreamStatus) {
		down := error(httpcdn.ErrOriginDown)
		if u.kind == "edge" {
			down = httpcdn.ErrPeerDown
		}
		err = fmt.Errorf("%w: %v", down, err)
	}
	if err == nil {
		t.Success()
	} else {
		t.Failure(e.cfg.FailThreshold, e.cfg.EjectFor, time.Now())
	}
	return body, etag, err
}

// fetchOnce performs one upstream attempt under the per-attempt
// timeout, marked internal and trace-stitched.
func (e *Edge) fetchOnce(ctx context.Context, url string, sp *httpcdn.Span) ([]byte, string, error) {
	actx, cancel := context.WithTimeout(ctx, e.cfg.Retry.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, url, nil)
	if err != nil {
		return nil, "", err
	}
	req.Header.Set(httpcdn.InternalHeader, "1")
	if hdr := sp.Header(); hdr != "" {
		req.Header.Set(obs.TraceparentHeader, hdr)
	}
	resp, err := e.client.Do(req)
	if err != nil {
		if actx.Err() != nil {
			return nil, "", fmt.Errorf("%w: %v", httpcdn.ErrEdgeTimeout, err)
		}
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		if actx.Err() != nil {
			return nil, "", fmt.Errorf("%w: %v", httpcdn.ErrEdgeTimeout, err)
		}
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("%w: %d", httpcdn.ErrUpstreamStatus, resp.StatusCode)
	}
	return body, resp.Header.Get("Etag"), nil
}
