package lrumodel

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func buildSmallTable() *Table {
	return BuildTable(200, 1.0, 0.01, 1.0, 10, 2000)
}

func TestBuildTablePanics(t *testing.T) {
	cases := []func(){
		func() { BuildTable(0, 1, 0.01, 1, 10, 100) },
		func() { BuildTable(10, -1, 0.01, 1, 10, 100) },
		func() { BuildTable(10, 1, 0, 1, 10, 100) },
		func() { BuildTable(10, 1, 2, 1, 10, 100) },
		func() { BuildTable(10, 1, 0.01, 1, 0, 100) },
		func() { BuildTable(10, 1, 0.01, 1, 200, 100) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTableMatchesExactOnGridPoints(t *testing.T) {
	tab := buildSmallTable()
	spec := SiteSpec{Objects: 200, Theta: 1.0}
	pred := NewPredictor([]SiteSpec{spec}, []float64{1}, 1, 1)
	z := pred.zipfs[0]
	for _, p := range []float64{0.01, 0.25, 0.5, 1.0} {
		for _, K := range []float64{10, 100, 500, 2000} {
			want := hitRatioExact(p, z, K)
			got := tab.Lookup(p, K)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("grid point (%v, %v): %v vs exact %v", p, K, got, want)
			}
		}
	}
}

func TestTableInterpolatesOffGrid(t *testing.T) {
	tab := buildSmallTable()
	spec := SiteSpec{Objects: 200, Theta: 1.0}
	pred := NewPredictor([]SiteSpec{spec}, []float64{1}, 1, 1)
	z := pred.zipfs[0]
	// Off-grid queries must be close to the exact value (the surface
	// is smooth; bilinear error on this grid is small).
	for _, q := range []struct{ p, K float64 }{
		{0.137, 73}, {0.333, 444}, {0.666, 1337}, {0.05, 15},
	} {
		want := hitRatioExact(q.p, z, q.K)
		got := tab.Lookup(q.p, q.K)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("off-grid (%v, %v): %v vs exact %v", q.p, q.K, got, want)
		}
	}
}

func TestTableLookupEdges(t *testing.T) {
	tab := buildSmallTable()
	if got := tab.Lookup(0, 100); got != 0 {
		t.Fatalf("p=0 gave %v", got)
	}
	if got := tab.Lookup(0.5, 0); got != 0 {
		t.Fatalf("K=0 gave %v", got)
	}
	// Clamping: beyond-grid queries return the boundary value.
	atMax := tab.Lookup(1.0, 2000)
	if got := tab.Lookup(5.0, 1e9); math.Abs(got-atMax) > 1e-12 {
		t.Fatalf("clamped lookup %v, want %v", got, atMax)
	}
	if got := tab.Lookup(0.5, math.Inf(1)); got != tab.Lookup(0.5, 2000) {
		t.Fatalf("K=+Inf lookup %v", got)
	}
}

func TestTableRoundTrip(t *testing.T) {
	tab := buildSmallTable()
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Objects != tab.Objects || got.Theta != tab.Theta ||
		got.PStep != tab.PStep || got.KStep != tab.KStep {
		t.Fatalf("header mismatch: %+v vs %+v", got, tab)
	}
	for _, q := range []struct{ p, K float64 }{{0.1, 50}, {0.9, 1500}, {0.333, 777}} {
		if got.Lookup(q.p, q.K) != tab.Lookup(q.p, q.K) {
			t.Fatalf("lookup mismatch after round trip at (%v, %v)", q.p, q.K)
		}
	}
}

func TestReadTableRejectsGarbage(t *testing.T) {
	if _, err := ReadTable(strings.NewReader("not a table")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadTable(strings.NewReader("LRUT")); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Valid header, truncated values.
	tab := buildSmallTable()
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadTable(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated values accepted")
	}
	// Corrupt a value beyond [0,1].
	var buf2 bytes.Buffer
	if _, err := tab.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	full := buf2.Bytes()
	for i := len(full) - 8; i < len(full); i++ {
		full[i] = 0xff
	}
	if _, err := ReadTable(bytes.NewReader(full)); err == nil {
		t.Fatal("corrupt value accepted")
	}
}

func TestTableMonotoneSurface(t *testing.T) {
	tab := buildSmallTable()
	// h increases in both p and K.
	prev := -1.0
	for p := 0.0; p <= 1.0; p += 0.05 {
		v := tab.Lookup(p, 500)
		if v < prev-1e-12 {
			t.Fatalf("h not increasing in p at %v", p)
		}
		prev = v
	}
	prev = -1.0
	for K := 0.0; K <= 2000; K += 100 {
		v := tab.Lookup(0.4, K)
		if v < prev-1e-12 {
			t.Fatalf("h not increasing in K at %v", K)
		}
		prev = v
	}
}

func BenchmarkTableLookup(b *testing.B) {
	tab := buildSmallTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(float64(i%100)/100, float64(i%2000))
	}
}
