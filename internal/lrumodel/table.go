package lrumodel

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Table is the paper's §4 pre-computation made explicit: "the obvious
// solution to achieving the O(1) complexity is to pre-compute (off-line)
// the hit ratio of each site O_j under different values of p and K. In
// the simulation experiments, the granularity of p for the pre-computed
// values was set to 10^-5, while the granularity of K was set to 5 time
// slots."
//
// A Table holds h(p, K) for one site shape (L, θ) on a regular grid and
// answers queries by bilinear interpolation. Tables serialize to a
// compact binary format so a CDN operator can build them once per site
// shape and ship them to the placement controller.
type Table struct {
	// Objects and Theta identify the site shape the table covers.
	Objects int
	Theta   float64
	// PStep / KStep are the grid granularities.
	PStep, KStep float64
	// PMax / KMax bound the grid.
	PMax, KMax float64
	// values[ki*pCols+pi] = h(pi*PStep, ki*KStep), un-λ-adjusted.
	values []float64
	pCols  int
	kRows  int
}

// BuildTable precomputes h over p ∈ [0, pMax] and K ∈ [0, kMax] with the
// given granularities. It panics on invalid parameters (operator input
// should be validated upstream; these are programming errors).
func BuildTable(objects int, theta, pStep, pMax, kStep, kMax float64) *Table {
	switch {
	case objects < 1:
		panic(fmt.Sprintf("lrumodel: BuildTable objects=%d", objects))
	case theta < 0:
		panic(fmt.Sprintf("lrumodel: BuildTable theta=%v", theta))
	case pStep <= 0 || pMax <= 0 || pStep > pMax:
		panic(fmt.Sprintf("lrumodel: BuildTable p grid [%v..%v]", pStep, pMax))
	case kStep <= 0 || kMax <= 0 || kStep > kMax:
		panic(fmt.Sprintf("lrumodel: BuildTable K grid [%v..%v]", kStep, kMax))
	}
	t := &Table{
		Objects: objects,
		Theta:   theta,
		PStep:   pStep,
		KStep:   kStep,
		PMax:    pMax,
		KMax:    kMax,
	}
	t.pCols = int(pMax/pStep) + 1
	t.kRows = int(kMax/kStep) + 1
	t.values = make([]float64, t.pCols*t.kRows)
	spec := SiteSpec{Objects: objects, Theta: theta}
	pred := NewPredictor([]SiteSpec{spec}, []float64{1}, 1, 1)
	z := pred.zipfs[0]
	for ki := 0; ki < t.kRows; ki++ {
		K := float64(ki) * kStep
		for pi := 0; pi < t.pCols; pi++ {
			p := float64(pi) * pStep
			t.values[ki*t.pCols+pi] = hitRatioExact(p, z, K)
		}
	}
	return t
}

// Lookup returns h(p, K) by bilinear interpolation, clamping inputs to
// the grid. K = +Inf returns the hit ratio at KMax (callers should
// special-case the everything-fits regime themselves, as Predictor
// does).
func (t *Table) Lookup(p, K float64) float64 {
	if p <= 0 || K <= 0 {
		return 0
	}
	if math.IsInf(K, 1) || K > t.KMax {
		K = t.KMax
	}
	if p > t.PMax {
		p = t.PMax
	}
	pf := p / t.PStep
	kf := K / t.KStep
	pi := int(pf)
	ki := int(kf)
	if pi >= t.pCols-1 {
		pi = t.pCols - 2
	}
	if ki >= t.kRows-1 {
		ki = t.kRows - 2
	}
	fp := pf - float64(pi)
	fk := kf - float64(ki)
	v00 := t.values[ki*t.pCols+pi]
	v01 := t.values[ki*t.pCols+pi+1]
	v10 := t.values[(ki+1)*t.pCols+pi]
	v11 := t.values[(ki+1)*t.pCols+pi+1]
	return (v00*(1-fp)+v01*fp)*(1-fk) + (v10*(1-fp)+v11*fp)*fk
}

// tableMagic identifies serialized tables.
const tableMagic = "LRUT"

// WriteTo serializes the table (binary, little endian).
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(tableMagic); err != nil {
		return n, err
	}
	n += 4
	for _, v := range []interface{}{
		int64(t.Objects), t.Theta, t.PStep, t.KStep, t.PMax, t.KMax,
		int64(t.pCols), int64(t.kRows),
	} {
		if err := write(v); err != nil {
			return n, err
		}
	}
	if err := write(t.values); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadTable deserializes a table written by WriteTo.
func ReadTable(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("lrumodel: short table header: %w", err)
	}
	if string(magic) != tableMagic {
		return nil, fmt.Errorf("lrumodel: bad table magic %q", magic)
	}
	t := &Table{}
	var objects, pCols, kRows int64
	for _, v := range []interface{}{
		&objects, &t.Theta, &t.PStep, &t.KStep, &t.PMax, &t.KMax,
		&pCols, &kRows,
	} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("lrumodel: truncated table header: %w", err)
		}
	}
	if objects < 1 || pCols < 2 || kRows < 2 || pCols*kRows > 1<<28 {
		return nil, fmt.Errorf("lrumodel: implausible table dims (%d, %d, %d)", objects, pCols, kRows)
	}
	t.Objects = int(objects)
	t.pCols = int(pCols)
	t.kRows = int(kRows)
	t.values = make([]float64, t.pCols*t.kRows)
	if err := binary.Read(br, binary.LittleEndian, t.values); err != nil {
		return nil, fmt.Errorf("lrumodel: truncated table values: %w", err)
	}
	for _, v := range t.values {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return nil, fmt.Errorf("lrumodel: corrupt table value %v", v)
		}
	}
	return t, nil
}
