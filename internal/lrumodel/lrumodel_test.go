package lrumodel

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func singleSite(L int, theta, lambda float64) ([]SiteSpec, []float64) {
	return []SiteSpec{{Objects: L, Theta: theta, Lambda: lambda}}, []float64{1}
}

func TestKApproxEdgeCases(t *testing.T) {
	if got := kApprox(0, 0.5); got != 0 {
		t.Errorf("K(B=0) = %v, want 0", got)
	}
	if got := kApprox(1, 0.5); got != 1 {
		t.Errorf("K(B=1) = %v, want 1", got)
	}
	if got := kApprox(10, 1); !math.IsInf(got, 1) {
		t.Errorf("K(pB=1) = %v, want +Inf", got)
	}
	// pB=0: every t_i = 1, so K = B.
	if got := kApprox(100, 0); got != 100 {
		t.Errorf("K(pB=0) = %v, want 100", got)
	}
}

func TestKApproxMonotoneInPB(t *testing.T) {
	// Hotter caches hold objects longer: K increases with p_B.
	prev := 0.0
	for _, pB := range []float64{0, 0.2, 0.4, 0.6, 0.8, 0.95} {
		k := kApprox(200, pB)
		if k <= prev {
			t.Fatalf("K not increasing: K(%v)=%v <= %v", pB, k, prev)
		}
		prev = k
	}
}

func TestKApproxAtLeastB(t *testing.T) {
	// Every t_i >= 1, so K >= B always.
	for _, pB := range []float64{0, 0.3, 0.7, 0.9} {
		for _, B := range []int{2, 10, 100, 1000} {
			if k := kApprox(B, pB); k < float64(B) {
				t.Fatalf("K(B=%d,pB=%v)=%v < B", B, pB, k)
			}
		}
	}
}

func TestPredictorPanics(t *testing.T) {
	specs, w := singleSite(10, 1, 0)
	cases := []func(){
		func() { NewPredictor(specs, []float64{1, 2}, 100, 1000) },
		func() { NewPredictor(specs, w, 0, 1000) },
		func() { NewPredictor(specs, []float64{-1}, 100, 1000) },
		func() { NewPredictor([]SiteSpec{{Objects: 0, Theta: 1}}, w, 100, 1000) },
		func() { NewPredictor([]SiteSpec{{Objects: 5, Theta: 1, Lambda: 2}}, w, 100, 1000) },
		func() {
			p := NewPredictor(specs, w, 100, 1000)
			p.SiteHitRatio(3, 100)
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestBConversion(t *testing.T) {
	specs, w := singleSite(100, 1, 0)
	p := NewPredictor(specs, w, 50, 10000)
	if got := p.B(500); got != 10 {
		t.Errorf("B(500) = %d, want 10", got)
	}
	if got := p.B(0); got != 0 {
		t.Errorf("B(0) = %d, want 0", got)
	}
	if got := p.B(-10); got != 0 {
		t.Errorf("B(-10) = %d, want 0", got)
	}
}

func TestTopMassProperties(t *testing.T) {
	specs := []SiteSpec{
		{Objects: 50, Theta: 1},
		{Objects: 50, Theta: 1},
	}
	p := NewPredictor(specs, []float64{3, 1}, 1, 100)
	if got := p.TopMass(0); got != 0 {
		t.Errorf("TopMass(0) = %v", got)
	}
	prev := 0.0
	for b := 1; b <= 100; b++ {
		m := p.TopMass(b)
		if m < prev-1e-12 {
			t.Fatalf("TopMass decreasing at %d", b)
		}
		prev = m
	}
	if got := p.TopMass(100); math.Abs(got-1) > 1e-9 {
		t.Errorf("TopMass(all objects) = %v, want 1", got)
	}
	// The most popular object overall is rank 1 of the 3x hotter site.
	z := stats.NewZipf(50, 1)
	want := 0.75 * z.PMF(1)
	if got := p.TopMass(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("TopMass(1) = %v, want %v", got, want)
	}
}

func TestTopMassMergesSitesByPopularity(t *testing.T) {
	// Site 0 is 9x hotter; its top objects must dominate the prefix.
	specs := []SiteSpec{
		{Objects: 10, Theta: 1},
		{Objects: 10, Theta: 1},
	}
	p := NewPredictor(specs, []float64{9, 1}, 1, 20)
	z := stats.NewZipf(10, 1)
	// First two merged entries: site0 rank1 (0.9*pmf1), then the larger
	// of site0 rank2 (0.9*pmf2) and site1 rank1 (0.1*pmf1).
	want2 := 0.9*z.PMF(1) + math.Max(0.9*z.PMF(2), 0.1*z.PMF(1))
	if got := p.TopMass(2); math.Abs(got-want2) > 1e-12 {
		t.Errorf("TopMass(2) = %v, want %v", got, want2)
	}
}

func TestHitRatioBounds(t *testing.T) {
	specs, w := singleSite(200, 1.0, 0)
	p := NewPredictor(specs, w, 1, 200)
	for _, c := range []int64{0, 1, 10, 50, 100, 150, 199} {
		h := p.SiteHitRatio(0, c)
		if h < 0 || h > 1 {
			t.Fatalf("hit ratio %v out of [0,1] at cache %d", h, c)
		}
	}
	if h := p.SiteHitRatio(0, 0); h != 0 {
		t.Fatalf("hit ratio %v with no cache, want 0", h)
	}
}

func TestHitRatioMonotoneInCacheSize(t *testing.T) {
	specs, w := singleSite(500, 1.0, 0)
	p := NewPredictor(specs, w, 1, 500)
	prev := -1.0
	for c := int64(0); c <= 450; c += 50 {
		h := p.SiteHitRatio(0, c)
		if h < prev-1e-9 {
			t.Fatalf("hit ratio decreased at cache %d: %v < %v", c, h, prev)
		}
		prev = h
	}
}

func TestHitRatioFullCacheApproachesOne(t *testing.T) {
	specs, w := singleSite(100, 1.0, 0)
	p := NewPredictor(specs, w, 1, 100)
	// B >= total objects: the cache never evicts, K = +Inf, h = 1.
	if h := p.SiteHitRatio(0, 100); math.Abs(h-1) > 1e-9 {
		t.Fatalf("hit ratio %v with everything cached, want 1", h)
	}
}

func TestLambdaScalesHitRatio(t *testing.T) {
	specsA, w := singleSite(100, 1.0, 0)
	specsB, _ := singleSite(100, 1.0, 0.3)
	a := NewPredictor(specsA, w, 1, 100)
	b := NewPredictor(specsB, w, 1, 100)
	ha := a.SiteHitRatio(0, 50)
	hb := b.SiteHitRatio(0, 50)
	if math.Abs(hb-0.7*ha) > 1e-9 {
		t.Fatalf("lambda adjustment wrong: %v vs 0.7*%v", hb, ha)
	}
}

func TestPopularSiteHasHigherHitRatio(t *testing.T) {
	specs := []SiteSpec{
		{Objects: 100, Theta: 1},
		{Objects: 100, Theta: 1},
	}
	p := NewPredictor(specs, []float64{8, 2}, 1, 200)
	h0 := p.SiteHitRatio(0, 80)
	h1 := p.SiteHitRatio(1, 80)
	if h0 <= h1 {
		t.Fatalf("hot site hit ratio %v <= cold site %v", h0, h1)
	}
}

func TestOverallHitRatioIsWeightedAverage(t *testing.T) {
	specs := []SiteSpec{
		{Objects: 50, Theta: 1},
		{Objects: 50, Theta: 0.7},
	}
	weights := []float64{3, 1}
	p := NewPredictor(specs, weights, 1, 100)
	const c = 40
	want := 0.75*p.SiteHitRatio(0, c) + 0.25*p.SiteHitRatio(1, c)
	if got := p.OverallHitRatio(c); math.Abs(got-want) > 1e-9 {
		t.Fatalf("overall %v, want %v", got, want)
	}
}

func TestSitePopularityNormalized(t *testing.T) {
	specs := []SiteSpec{{Objects: 5, Theta: 1}, {Objects: 5, Theta: 1}}
	p := NewPredictor(specs, []float64{30, 10}, 1, 10)
	if got := p.SitePopularity(0); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("pop(0) = %v, want 0.75", got)
	}
	if got := p.SitePopularity(1); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("pop(1) = %v, want 0.25", got)
	}
}

func TestHitRatiosConsistentWithSiteHitRatio(t *testing.T) {
	specs := []SiteSpec{
		{Objects: 50, Theta: 1, Lambda: 0.1},
		{Objects: 80, Theta: 0.8},
		{Objects: 30, Theta: 1.2},
	}
	p := NewPredictor(specs, []float64{5, 3, 2}, 1, 120)
	all := p.HitRatios(60)
	for j := range specs {
		if got := p.SiteHitRatio(j, 60); math.Abs(got-all[j]) > 1e-12 {
			t.Fatalf("site %d: HitRatios %v vs SiteHitRatio %v", j, all[j], got)
		}
	}
}

// simulateLRUHitRatio drives a real LRU cache with an IRM request stream
// over unit-size objects and returns per-site hit ratios. This is the
// ground truth the analytical model approximates.
func simulateLRUHitRatio(specs []SiteSpec, weights []float64, slots int, requests int, r *xrand.Source) []float64 {
	c := cache.NewLRU(int64(slots))
	zipfs := make([]*stats.Zipf, len(specs))
	for j, s := range specs {
		zipfs[j] = stats.NewZipf(s.Objects, s.Theta)
	}
	// Site-choice CDF.
	total := 0.0
	for _, w := range weights {
		total += w
	}
	cdf := make([]float64, len(weights))
	cum := 0.0
	for j, w := range weights {
		cum += w / total
		cdf[j] = cum
	}
	hits := make([]float64, len(specs))
	counts := make([]float64, len(specs))
	warmup := requests / 5
	for i := 0; i < requests; i++ {
		u := r.Float64()
		site := 0
		for site < len(cdf)-1 && u > cdf[site] {
			site++
		}
		obj := zipfs[site].Sample(r)
		key := cache.Key{Site: site, Object: obj}
		hit := c.Get(key)
		if !hit {
			c.Put(key, 1)
		}
		if i >= warmup {
			counts[site]++
			if hit {
				hits[site]++
			}
		}
	}
	out := make([]float64, len(specs))
	for j := range out {
		if counts[j] > 0 {
			out[j] = hits[j] / counts[j]
		}
	}
	return out
}

// TestModelMatchesSimulationSingleSite is the paper's core validation
// claim (§3.2, Figure 6): the analytical hit ratio tracks a trace-driven
// LRU simulation closely. The paper reports <7% overall error; we allow a
// slightly looser bound per configuration because our runs are shorter.
func TestModelMatchesSimulationSingleSite(t *testing.T) {
	for _, tc := range []struct {
		L     int
		theta float64
		slots int
	}{
		{500, 1.0, 50},
		{500, 1.0, 100},
		{500, 0.8, 100},
		{1000, 1.2, 150},
		{300, 1.0, 200},
	} {
		specs, w := singleSite(tc.L, tc.theta, 0)
		p := NewPredictor(specs, w, 1, int64(tc.slots))
		predicted := p.SiteHitRatio(0, int64(tc.slots))
		actual := simulateLRUHitRatio(specs, w, tc.slots, 600000, xrand.New(42))[0]
		if math.Abs(predicted-actual) > 0.05 {
			t.Errorf("L=%d theta=%v B=%d: predicted %.4f vs simulated %.4f",
				tc.L, tc.theta, tc.slots, predicted, actual)
		}
	}
}

// TestModelMatchesSimulationMultiSite validates the multi-site case the
// hybrid algorithm relies on: several sites of different popularity
// sharing one cache.
func TestModelMatchesSimulationMultiSite(t *testing.T) {
	specs := []SiteSpec{
		{Objects: 400, Theta: 1.0},
		{Objects: 400, Theta: 1.0},
		{Objects: 400, Theta: 1.0},
		{Objects: 400, Theta: 1.0},
	}
	weights := []float64{8, 4, 2, 1}
	const slots = 200
	p := NewPredictor(specs, weights, 1, slots)
	actual := simulateLRUHitRatio(specs, weights, slots, 1200000, xrand.New(7))
	for j := range specs {
		predicted := p.SiteHitRatio(j, slots)
		if math.Abs(predicted-actual[j]) > 0.07 {
			t.Errorf("site %d: predicted %.4f vs simulated %.4f", j, predicted, actual[j])
		}
	}
	// Overall weighted error should be well under the paper's 7%.
	var predOverall, actOverall, wsum float64
	for j, w := range weights {
		predOverall += w * p.SiteHitRatio(j, slots)
		actOverall += w * actual[j]
		wsum += w
	}
	predOverall /= wsum
	actOverall /= wsum
	if math.Abs(predOverall-actOverall) > 0.05 {
		t.Errorf("overall: predicted %.4f vs simulated %.4f", predOverall, actOverall)
	}
}

func TestMemoizationConsistency(t *testing.T) {
	specs, w := singleSite(300, 1.0, 0)
	p := NewPredictor(specs, w, 1, 300)
	a := p.SiteHitRatio(0, 100)
	b := p.SiteHitRatio(0, 100)
	if a != b {
		t.Fatalf("memoized result differs: %v vs %v", a, b)
	}
	// A fresh predictor must agree with the memoized one.
	q := NewPredictor(specs, w, 1, 300)
	if c := q.SiteHitRatio(0, 100); c != a {
		t.Fatalf("fresh predictor differs: %v vs %v", c, a)
	}
}

func TestKForBMemoized(t *testing.T) {
	specs, w := singleSite(1000, 1.0, 0)
	p := NewPredictor(specs, w, 1, 800)
	k1 := p.KForB(400)
	k2 := p.KForB(400)
	if k1 != k2 {
		t.Fatal("KForB not stable")
	}
	if k1 < 400 {
		t.Fatalf("K=%v < B=400", k1)
	}
}

func TestZeroWeightSite(t *testing.T) {
	specs := []SiteSpec{
		{Objects: 100, Theta: 1},
		{Objects: 100, Theta: 1},
	}
	p := NewPredictor(specs, []float64{1, 0}, 1, 100)
	if h := p.SiteHitRatio(1, 50); h != 0 {
		t.Fatalf("zero-weight site hit ratio %v, want 0", h)
	}
}

func BenchmarkSiteHitRatioMemoized(b *testing.B) {
	specs := make([]SiteSpec, 20)
	weights := make([]float64, 20)
	for j := range specs {
		specs[j] = SiteSpec{Objects: 500, Theta: 1.0}
		weights[j] = float64(1 + j%5)
	}
	p := NewPredictor(specs, weights, 1, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SiteHitRatio(i%20, int64(500+(i%4)*250))
	}
}

func BenchmarkNewPredictor(b *testing.B) {
	specs := make([]SiteSpec, 20)
	weights := make([]float64, 20)
	for j := range specs {
		specs[j] = SiteSpec{Objects: 500, Theta: 1.0}
		weights[j] = float64(1 + j%5)
	}
	for i := 0; i < b.N; i++ {
		NewPredictor(specs, weights, 1, 2000)
	}
}
