package lrumodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func fourSites() ([]SiteSpec, []float64) {
	specs := []SiteSpec{
		{Objects: 200, Theta: 1.0},
		{Objects: 200, Theta: 1.0},
		{Objects: 200, Theta: 0.8},
		{Objects: 200, Theta: 1.2},
	}
	return specs, []float64{4, 3, 2, 1}
}

func TestHitRatiosCondFullVisibilityMatchesHitRatios(t *testing.T) {
	specs, w := fourSites()
	p := NewPredictor(specs, w, 1, 400)
	all := []bool{true, true, true, true}
	a := p.HitRatios(150)
	b := p.HitRatiosCond(all, 150)
	for j := range a {
		if math.Abs(a[j]-b[j]) > 1e-12 {
			t.Fatalf("site %d: %v vs %v", j, a[j], b[j])
		}
	}
}

func TestHitRatiosCondInvisibleSitesZero(t *testing.T) {
	specs, w := fourSites()
	p := NewPredictor(specs, w, 1, 400)
	vis := []bool{true, false, true, false}
	h := p.HitRatiosCond(vis, 150)
	if h[1] != 0 || h[3] != 0 {
		t.Fatalf("invisible sites have hit ratios %v", h)
	}
	if h[0] == 0 || h[2] == 0 {
		t.Fatal("visible sites have zero hit ratios")
	}
}

func TestRenormalizationRaisesHitRatio(t *testing.T) {
	// Removing a site's traffic from the cache makes every remaining
	// site effectively more popular at the same cache size, so its hit
	// ratio must not drop.
	specs, w := fourSites()
	p := NewPredictor(specs, w, 1, 400)
	full := p.HitRatiosCond([]bool{true, true, true, true}, 150)
	part := p.HitRatiosCond([]bool{true, false, true, true}, 150)
	for _, j := range []int{0, 2, 3} {
		if part[j] < full[j]-1e-9 {
			t.Fatalf("site %d hit ratio dropped after renormalization: %v -> %v",
				j, full[j], part[j])
		}
	}
}

func TestSiteHitRatioCondBounds(t *testing.T) {
	specs, w := fourSites()
	p := NewPredictor(specs, w, 1, 400)
	if got := p.SiteHitRatioCond(0, 0, 150); got != 0 {
		t.Fatalf("zero visible mass gave %v", got)
	}
	if got := p.SiteHitRatioCond(0, -1, 150); got != 0 {
		t.Fatalf("negative visible mass gave %v", got)
	}
	// Mass smaller than p_j clamps pEff to 1 instead of exploding.
	small := p.SitePopularity(0) / 2
	if got := p.SiteHitRatioCond(0, small, 150); got < 0 || got > 1 {
		t.Fatalf("clamped hit ratio %v out of [0,1]", got)
	}
}

func TestHitRatiosCondAllInvisible(t *testing.T) {
	specs, w := fourSites()
	p := NewPredictor(specs, w, 1, 400)
	h := p.HitRatiosCond([]bool{false, false, false, false}, 150)
	for j, v := range h {
		if v != 0 {
			t.Fatalf("site %d: %v with nothing visible", j, v)
		}
	}
}

func TestHitRatiosCondPanicsOnLengthMismatch(t *testing.T) {
	specs, w := fourSites()
	p := NewPredictor(specs, w, 1, 400)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	p.HitRatiosCond([]bool{true}, 150)
}

// TestCondMatchesSimulationWithBypassingTraffic is the scenario the
// hybrid algorithm relies on: one site's traffic bypasses the cache (as
// if replicated) and the model predicts the remaining sites' hit ratios
// with renormalized popularity.
func TestCondMatchesSimulationWithBypassingTraffic(t *testing.T) {
	specs := []SiteSpec{
		{Objects: 400, Theta: 1.0},
		{Objects: 400, Theta: 1.0},
		{Objects: 400, Theta: 1.0},
	}
	weights := []float64{5, 3, 2}
	const slots = 150
	p := NewPredictor(specs, weights, 1, slots)

	// Simulate: site 0 is "replicated" — its requests never touch the
	// cache; sites 1 and 2 share the cache.
	actual := simulateLRUHitRatio(specs[1:], weights[1:], slots, 1000000, xrand.New(5))
	vis := []bool{false, true, true}
	pred := p.HitRatiosCond(vis, slots)
	for idx, j := range []int{1, 2} {
		if math.Abs(pred[j]-actual[idx]) > 0.07 {
			t.Errorf("site %d: predicted %.4f vs simulated %.4f", j, pred[j], actual[idx])
		}
	}
}

// TestHitRatioPropertyBounds fuzzes the model surface: any combination of
// visibility, cache size and weights must produce hit ratios in [0,1],
// monotone in cache size.
func TestHitRatioPropertyBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		m := 2 + r.Intn(5)
		specs := make([]SiteSpec, m)
		weights := make([]float64, m)
		vis := make([]bool, m)
		for j := range specs {
			specs[j] = SiteSpec{
				Objects: 20 + r.Intn(200),
				Theta:   r.Float64() * 1.5,
				Lambda:  r.Float64() * 0.5,
			}
			weights[j] = r.Float64() + 0.01
			vis[j] = r.Intn(3) > 0
		}
		total := 0
		for _, s := range specs {
			total += s.Objects
		}
		p := NewPredictor(specs, weights, 1, int64(total))
		prev := make([]float64, m)
		for _, c := range []int64{0, int64(total / 10), int64(total / 3), int64(total)} {
			h := p.HitRatiosCond(vis, c)
			for j := range h {
				if h[j] < 0 || h[j] > 1 {
					return false
				}
				if h[j] < prev[j]-1e-9 {
					return false // must grow with cache size
				}
				prev[j] = h[j]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
