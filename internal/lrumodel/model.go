package lrumodel

import (
	"fmt"
	"strings"
)

// ModelKind names one of the analytical hit-ratio models the package
// implements. All kinds share the same quantized-memoization machinery
// and differ only in the replacement-policy mathematics (how the
// characteristic time is derived from the slot count, and how the
// per-site hit ratio follows from it).
type ModelKind string

const (
	// ModelEq1 is the paper's own model: Equation (2) for K, Equation
	// (1) for the hit ratio. The default everywhere.
	ModelEq1 ModelKind = "eq1"
	// ModelChe is Che's characteristic-time approximation (Che, Tung,
	// Wang 2002): T_C by bisection on the occupancy equation, the same
	// Equation (1) structural form with T_C in place of K.
	ModelChe ModelKind = "che"
	// ModelClosedForm is the Laoutaris-style closed-form LRU model: an
	// O(1) integral form of Equation (2) and a head-exact/quadrature
	// evaluation of Equation (1) that stays O(1) in the catalog size.
	ModelClosedForm ModelKind = "closedform"
	// ModelRandom is the RANDOM/FIFO model (Gelenbe 1973; Gallo et
	// al.): under IRM, RANDOM and FIFO have identical hit ratios
	// q·T/(1+q·T) with T solving the occupancy equation. Use it to
	// place replicas on fleets running the non-LRU cache variants.
	ModelRandom ModelKind = "random"
)

// ModelKinds lists the valid model kinds in presentation order.
func ModelKinds() []ModelKind {
	return []ModelKind{ModelEq1, ModelChe, ModelClosedForm, ModelRandom}
}

// ParseModelKind validates a user-supplied model name. The empty string
// selects the default (eq1). The error message lists the valid names,
// so CLIs can surface it directly from flag validation.
func ParseModelKind(s string) (ModelKind, error) {
	if s == "" {
		return ModelEq1, nil
	}
	for _, k := range ModelKinds() {
		if ModelKind(s) == k {
			return k, nil
		}
	}
	names := make([]string, 0, len(ModelKinds()))
	for _, k := range ModelKinds() {
		names = append(names, string(k))
	}
	return "", fmt.Errorf("lrumodel: unknown model %q (valid: %s)", s, strings.Join(names, ", "))
}

// Model is the hit-ratio surface the placement stack consumes. It is
// the method set the hybrid algorithm and the controller actually use,
// extracted from *Predictor so that any of the ModelKinds (or a test
// double) can stand behind it.
//
// Implementations are not safe for concurrent use unless documented
// otherwise; the placement engines keep one Model per server.
type Model interface {
	// Kind identifies the underlying model.
	Kind() ModelKind
	// B converts a cache size in bytes to buffer slots (B ≈ c/ō, §3.2).
	B(cacheBytes int64) int
	// K returns the model's characteristic time for the cache size:
	// Equation (2)'s K, Che's T_C, or the RANDOM/FIFO T. 0 for an
	// empty cache, +Inf when every object fits.
	K(cacheBytes int64) float64
	// TotalObjects returns Σ_j Objects, frozen at construction.
	TotalObjects() int
	// SitePopularity returns the frozen normalized popularity p_j.
	SitePopularity(j int) float64
	// SiteHitRatio returns site j's λ-adjusted hit ratio with every
	// site visible to the cache.
	SiteHitRatio(j int, cacheBytes int64) float64
	// SiteHitRatioCond is SiteHitRatio with site j's popularity
	// renormalized over the visible mass (§4's conditional form).
	SiteHitRatioCond(j int, visibleMass float64, cacheBytes int64) float64
	// HitRatios returns the λ-adjusted hit ratio of every site.
	HitRatios(cacheBytes int64) []float64
	// HitRatiosCond restricts HitRatios to the visible sites; entries
	// for invisible (replicated) sites are 0.
	HitRatiosCond(visible []bool, cacheBytes int64) []float64
	// OverallHitRatio returns the request-weighted Σ p_j·h_j.
	OverallHitRatio(cacheBytes int64) float64
}

// ModelConfig configures New. Weights[j] is the server's request rate
// for site j (any positive scale; normalized internally).
type ModelConfig struct {
	// Kind selects the model; empty means ModelEq1.
	Kind ModelKind
	// Specs is the site catalog.
	Specs []SiteSpec
	// Weights is the server's per-site request-rate vector.
	Weights []float64
	// AvgObjectBytes is ō, the average object size.
	AvgObjectBytes float64
	// MaxCacheBytes bounds the cache sizes that will ever be queried.
	MaxCacheBytes int64
	// Shared optionally attaches a cross-model memo table. Entries are
	// keyed by model kind as well as grid point, so models of
	// different kinds can share one table without collisions.
	Shared *SharedTable
}

// New builds a Model. It is the single constructor for all model
// kinds; NewPredictor and NewPredictorShared remain as deprecated
// wrappers around the eq1 kind. Unlike those wrappers, New reports
// invalid configuration as an error instead of panicking, so operator
// input (CLI flags, control-plane config) can be validated directly.
func New(cfg ModelConfig) (Model, error) {
	kind, err := ParseModelKind(string(cfg.Kind))
	if err != nil {
		return nil, err
	}
	return newPredictor(kind, cfg.Specs, cfg.Weights, cfg.AvgObjectBytes, cfg.MaxCacheBytes, cfg.Shared)
}

// lawFor maps a validated kind to its replacement-policy mathematics.
func lawFor(kind ModelKind) law {
	switch kind {
	case ModelChe:
		return cheLaw{}
	case ModelClosedForm:
		return closedformLaw{}
	case ModelRandom:
		return randomLaw{}
	default:
		return eq1Law{}
	}
}
