// Package lrumodel implements the paper's analytical model of the LRU
// cache hit ratio (§3.2), the first of its two contributions.
//
// The model considers one CDN server whose cache holds B object slots
// (B = cache bytes / average object size). An object that enters the
// cache and is never requested again is evicted after K subsequent
// requests, where K is approximated by Equation (2):
//
//	K = Σ_{i=1..B} t_i,   t_i = 1 / (1 - (i-1)·p_B/(B-1))
//
// with p_B the cumulative popularity of the B most popular cacheable
// objects. Given K, the steady-state hit ratio of site O_j whose objects
// follow a Zipf-like distribution with parameter θ is Equation (1):
//
//	h_j = Σ_{k=1..L} [1 - (1 - p_j·α/k^θ)^K] · α/k^θ
//
// where p_j is the site's popularity at the server and α the Zipf
// normalization constant. Uncacheable requests (§3.3) scale the result by
// (1 - λ_j).
//
// Following the paper's implementation notes (§4), the merged
// object-popularity list used for p_B is computed once when the predictor
// is built and frozen afterwards ("calculating K during each iteration
// produced the same result as... calculated once at the initialization
// step"), and hit ratios are memoized on a quantized (site, p, K) grid
// so that each lookup inside the placement loop is O(1). The paper quantizes
// K with granularity 5 time slots; so does this package by default.
package lrumodel

import (
	"container/heap"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// SiteSpec carries the per-site statistics the model needs. A "site" is
// whatever unit the placement operates on: a whole web site in the paper,
// or one popularity cluster of a site under the per-cluster extension.
type SiteSpec struct {
	// Objects is L, the number of distinct objects of the unit.
	Objects int
	// Theta is the Zipf-like exponent of object popularity.
	Theta float64
	// Lambda is the fraction of the unit's requests that return
	// uncacheable (or stale, under strong consistency) documents.
	Lambda float64
	// RankOffset shifts the Zipf ranks: the unit's objects occupy
	// global popularity ranks RankOffset+1 .. RankOffset+Objects of
	// their site. Zero (the paper's whole-site case) means ranks start
	// at 1; popularity clusters of a site's tail use larger offsets.
	RankOffset int
}

// DefaultKStep is the K-quantization granularity used for memoization,
// matching the paper's "granularity of K was set to 5 time slots".
const DefaultKStep = 5.0

// DefaultPStep is the popularity-quantization granularity, matching the
// paper's pre-computation "granularity of p ... set to 10^-5".
const DefaultPStep = 1e-5

// Predictor predicts per-site cache hit ratios at a single CDN server.
// It is built from the full site catalog and the server's (fixed) site
// popularity vector; only the cache size varies across queries, which is
// exactly how the hybrid placement algorithm uses it.
//
// One Predictor type backs every ModelKind: the kind's law supplies the
// characteristic-time and hit-ratio mathematics, while the quantized
// memo grid, the frozen popularity prefix and the shared table are
// common machinery. Build one with New; the zero-value kind is eq1.
//
// A Predictor is not safe for concurrent use.
type Predictor struct {
	kind ModelKind
	law  law

	specs  []SiteSpec
	pops   []float64 // p_j: normalized site popularity, frozen
	zipfs  []*stats.Zipf
	avgObj float64 // ō: average object size in bytes

	// prefix[i] = cumulative popularity of the i most popular objects
	// across all sites (frozen at construction), i in 0..len(prefix)-1.
	prefix []float64

	kStep float64
	pStep float64
	kmemo map[int]float64  // B -> K
	hmemo map[hKey]float64 // (quantized p, quantized K) -> unadjusted hit ratio per site

	totalObjects int          // Σ_j Objects, frozen at construction
	shared       *SharedTable // optional cross-predictor memo (may be nil)
}

type hKey struct {
	site int
	pq   int64 // quantized effective popularity bucket
	kq   int64 // quantized K bucket; -1 encodes K = +Inf
}

// law is the pluggable replacement-policy mathematics behind a
// Predictor: how the characteristic time follows from the slot count,
// and how the per-site hit ratio is evaluated at one quantized
// (popularity, characteristic-time) grid point. Everything else — the
// B/K guards, the λ adjustment, the conditional renormalization, the
// private and shared memo tables — is shared across laws.
type law interface {
	// charTime returns the characteristic time for B slots. Callers
	// have already handled B ≤ 0 and the everything-fits regime.
	charTime(p *Predictor, B int) float64
	// siteHit returns the un-λ-adjusted hit ratio of site j when the
	// site's effective popularity is pSite and the characteristic time
	// is K (possibly +Inf).
	siteHit(p *Predictor, j int, pSite, K float64) float64
}

// eq1Law is the paper's own model: Equation (2) for K and Equation (1)
// for the hit ratio. It is the byte-identical default.
type eq1Law struct{}

func (eq1Law) charTime(p *Predictor, B int) float64 { return kApprox(B, p.TopMass(B)) }
func (eq1Law) siteHit(p *Predictor, j int, pSite, K float64) float64 {
	return hitRatioExact(pSite, p.zipfs[j], K)
}

// SharedTable memoizes Equation (1) evaluations on the quantized
// (popularity, K) grid across predictors. The memoized value is a pure
// function of the grid point and the site's Zipf shape (rank offset,
// catalog size, θ) — it does not depend on which server or site asks —
// so predictors built over the same site catalog can share one table:
// this is the paper's "pre-computed at the initialization step" table
// generalized across the N per-server predictors. Sharing changes no
// bits, only who computes each entry first.
//
// A SharedTable is safe for concurrent use. Each predictor still keeps
// its private unsynchronized memo in front of it, so the shared lock is
// only taken on private misses.
type SharedTable struct {
	mu sync.RWMutex
	m  map[sharedKey]float64
	// hits/misses count lookups served from / added to the table,
	// atomically (lookup holds only the read lock). They feed the warm
	// reconcile audit: a warm round that reuses the previous round's
	// table shows up as a high hit fraction here.
	hits, misses atomic.Int64
}

type sharedKey struct {
	kind       ModelKind
	rankOffset int
	objects    int
	theta      float64
	pq, kq     int64
}

// NewSharedTable returns an empty shared hit-ratio table.
func NewSharedTable() *SharedTable {
	return &SharedTable{m: make(map[sharedKey]float64)}
}

// Len returns the number of memoized grid points.
func (t *SharedTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}

// SharedTableStats is a point-in-time snapshot of a table's traffic.
type SharedTableStats struct {
	// Entries is the number of memoized grid points.
	Entries int `json:"entries"`
	// Hits counts lookups served from the table; Misses counts lookups
	// that fell through to an Equation (1) evaluation (each miss stores
	// one entry, so Misses ≥ Entries only via re-stores, which do not
	// occur — the two are equal in practice).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Stats snapshots the table's size and hit/miss counters.
func (t *SharedTable) Stats() SharedTableStats {
	return SharedTableStats{
		Entries: t.Len(),
		Hits:    t.hits.Load(),
		Misses:  t.misses.Load(),
	}
}

func (t *SharedTable) lookup(k sharedKey) (float64, bool) {
	t.mu.RLock()
	h, ok := t.m[k]
	t.mu.RUnlock()
	if ok {
		t.hits.Add(1)
	} else {
		t.misses.Add(1)
	}
	return h, ok
}

func (t *SharedTable) store(k sharedKey, h float64) {
	t.mu.Lock()
	t.m[k] = h
	t.mu.Unlock()
}

// NewPredictor builds an eq1 predictor for one server.
//
// weights[j] is the server's request rate for site j (any positive scale;
// normalized internally — the paper's p_j = r_j/Σ r_k). avgObjBytes is ō.
// maxCacheBytes bounds the cache sizes that will ever be queried (the
// server's total storage capacity); the frozen popularity prefix is
// computed up to the corresponding B.
//
// Deprecated: use New with a ModelConfig, which selects among all
// ModelKinds and reports invalid input as an error. This wrapper keeps
// the original panic-on-bad-input contract.
func NewPredictor(specs []SiteSpec, weights []float64, avgObjBytes float64, maxCacheBytes int64) *Predictor {
	return NewPredictorShared(specs, weights, avgObjBytes, maxCacheBytes, nil)
}

// NewPredictorShared is NewPredictor with a cross-predictor hit-ratio
// table. All predictors attached to the same table must be built over
// the same site catalog semantics (the table is keyed by Zipf shape, so
// mismatched catalogs merely waste entries, they cannot corrupt
// results). A nil table reproduces NewPredictor.
//
// Deprecated: use New with a ModelConfig carrying the Shared table.
func NewPredictorShared(specs []SiteSpec, weights []float64, avgObjBytes float64, maxCacheBytes int64, shared *SharedTable) *Predictor {
	p, err := newPredictor(ModelEq1, specs, weights, avgObjBytes, maxCacheBytes, shared)
	if err != nil {
		panic(err.Error())
	}
	return p
}

// newPredictor is the common constructor behind New and the deprecated
// wrappers. kind must already be validated.
func newPredictor(kind ModelKind, specs []SiteSpec, weights []float64, avgObjBytes float64, maxCacheBytes int64, shared *SharedTable) (*Predictor, error) {
	if len(specs) != len(weights) {
		return nil, fmt.Errorf("lrumodel: %d specs but %d weights", len(specs), len(weights))
	}
	if avgObjBytes <= 0 {
		return nil, fmt.Errorf("lrumodel: avgObjBytes = %v", avgObjBytes)
	}
	p := &Predictor{
		kind:   kind,
		law:    lawFor(kind),
		specs:  specs,
		avgObj: avgObjBytes,
		kStep:  DefaultKStep,
		pStep:  DefaultPStep,
		kmemo:  make(map[int]float64),
		hmemo:  make(map[hKey]float64),
		shared: shared,
	}
	for _, s := range specs {
		p.totalObjects += s.Objects
	}
	total := 0.0
	for j, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("lrumodel: negative weight %v for site %d", w, j)
		}
		total += w
	}
	p.pops = make([]float64, len(weights))
	for j, w := range weights {
		if total > 0 {
			p.pops[j] = w / total
		}
	}
	p.zipfs = make([]*stats.Zipf, len(specs))
	for j, s := range specs {
		if s.Objects < 1 {
			return nil, fmt.Errorf("lrumodel: site %d has %d objects", j, s.Objects)
		}
		if s.Lambda < 0 || s.Lambda > 1 {
			return nil, fmt.Errorf("lrumodel: site %d has lambda %v", j, s.Lambda)
		}
		if s.RankOffset < 0 {
			return nil, fmt.Errorf("lrumodel: site %d has rank offset %d", j, s.RankOffset)
		}
		p.zipfs[j] = stats.NewZipfRange(s.RankOffset+1, s.Objects, s.Theta)
	}
	p.buildPrefix(p.B(maxCacheBytes))
	return p, nil
}

// Kind identifies the model law behind this predictor.
func (p *Predictor) Kind() ModelKind {
	if p.kind == "" {
		return ModelEq1
	}
	return p.kind
}

// buildPrefix merges the per-site object popularity lists (each sorted
// descending by construction: Zipf PMFs decrease in rank) and stores the
// cumulative mass of the top-i objects, for i up to maxB. This is the
// sorted list of §4 used to estimate p_B, built once.
func (p *Predictor) buildPrefix(maxB int) {
	n := maxB
	if n > p.totalObjects {
		n = p.totalObjects
	}
	p.prefix = make([]float64, n+1)

	// k-way merge by popularity using a max-heap over (site, next rank).
	h := &mergeHeap{}
	for j := range p.specs {
		if p.pops[j] > 0 {
			heap.Push(h, mergeItem{
				pop:  p.pops[j] * p.zipfs[j].PMF(1),
				site: j,
				rank: 1,
			})
		}
	}
	cum := 0.0
	for i := 1; i <= n && h.Len() > 0; i++ {
		it := heap.Pop(h).(mergeItem)
		cum += it.pop
		p.prefix[i] = cum
		if it.rank < p.specs[it.site].Objects {
			heap.Push(h, mergeItem{
				pop:  p.pops[it.site] * p.zipfs[it.site].PMF(it.rank+1),
				site: it.site,
				rank: it.rank + 1,
			})
		}
	}
}

// B converts a cache size in bytes to buffer slots: B ≈ c/ō (§3.2).
func (p *Predictor) B(cacheBytes int64) int {
	if cacheBytes <= 0 {
		return 0
	}
	return int(float64(cacheBytes) / p.avgObj)
}

// TotalObjects returns the number of objects across all sites (frozen
// at construction — the placement loop calls this on every K lookup).
func (p *Predictor) TotalObjects() int { return p.totalObjects }

// TopMass returns the frozen p_B: the cumulative popularity of the B most
// popular objects. B values beyond the frozen prefix clamp to its end.
func (p *Predictor) TopMass(B int) float64 {
	if B <= 0 {
		return 0
	}
	if B >= len(p.prefix) {
		return p.prefix[len(p.prefix)-1]
	}
	return p.prefix[B]
}

// K evaluates the model's characteristic time for the cache size in
// bytes — Equation (2) for eq1, Che's T_C, the RANDOM/FIFO T, or the
// closed-form K. It returns 0 for an empty cache and +Inf when every
// object fits (the cache never evicts). Results are memoized per B.
func (p *Predictor) K(cacheBytes int64) float64 {
	return p.KForB(p.B(cacheBytes))
}

// KForB is K for an explicit slot count B.
func (p *Predictor) KForB(B int) float64 {
	if B <= 0 {
		return 0
	}
	if B >= p.TotalObjects() {
		return math.Inf(1)
	}
	if k, ok := p.kmemo[B]; ok {
		return k
	}
	k := p.law.charTime(p, B)
	p.kmemo[B] = k
	return k
}

// kApprox is the raw Equation (2): K = Σ_{i=1..B} 1/(1 - (i-1)·pB/(B-1)).
func kApprox(B int, pB float64) float64 {
	if B <= 0 {
		return 0
	}
	if B == 1 {
		return 1
	}
	if pB >= 1 {
		return math.Inf(1)
	}
	k := 0.0
	step := pB / float64(B-1)
	for i := 0; i < B; i++ {
		denom := 1 - float64(i)*step
		if denom <= 1e-12 {
			return math.Inf(1)
		}
		k += 1 / denom
	}
	return k
}

// SiteHitRatio evaluates Equation (1) for site j with the given cache
// size, adjusted by the uncacheable fraction (×(1-λ_j), §3.3). The
// site's popularity is taken over all sites (visible mass 1) — the
// pure-caching configuration where every site competes for the cache.
func (p *Predictor) SiteHitRatio(j int, cacheBytes int64) float64 {
	return p.siteHitRatioK(j, 1, p.K(cacheBytes))
}

// SiteHitRatioCond is SiteHitRatio with the site's popularity
// renormalized over the sites still visible to the cache: when some sites
// are replicated at the server, their requests no longer traverse the
// cache, so "the popularity of the rest of the objects is increased
// accordingly" (§4). visibleMass is the summed SitePopularity of the
// non-replicated sites (site j included); it must be positive and at
// least p_j.
func (p *Predictor) SiteHitRatioCond(j int, visibleMass float64, cacheBytes int64) float64 {
	if visibleMass <= 0 {
		return 0
	}
	return p.siteHitRatioK(j, visibleMass, p.K(cacheBytes))
}

// SiteHitRatioForK is SiteHitRatio with an explicit K (used by the
// validation tooling to probe the model surface directly).
func (p *Predictor) SiteHitRatioForK(j int, K float64) float64 {
	return p.siteHitRatioK(j, 1, K)
}

func (p *Predictor) siteHitRatioK(j int, visibleMass float64, K float64) float64 {
	if j < 0 || j >= len(p.specs) {
		panic(fmt.Sprintf("lrumodel: site %d out of range", j))
	}
	pEff := p.pops[j] / visibleMass
	if pEff > 1 {
		pEff = 1
	}
	key := hKey{site: j, pq: int64(math.Round(pEff / p.pStep)), kq: int64(-1)}
	if !math.IsInf(K, 1) {
		key.kq = int64(math.Round(K / p.kStep))
	}
	if h, ok := p.hmemo[key]; ok {
		return h * (1 - p.specs[j].Lambda)
	}
	var sk sharedKey
	if p.shared != nil {
		s := p.specs[j]
		sk = sharedKey{kind: p.Kind(), rankOffset: s.RankOffset, objects: s.Objects, theta: s.Theta, pq: key.pq, kq: key.kq}
		if h, ok := p.shared.lookup(sk); ok {
			p.hmemo[key] = h
			return h * (1 - p.specs[j].Lambda)
		}
	}
	// Evaluate at the quantized grid point so the memo is
	// self-consistent (the paper's pre-computed table does the same).
	kEff := K
	if key.kq >= 0 {
		kEff = float64(key.kq) * p.kStep
	}
	h := p.law.siteHit(p, j, float64(key.pq)*p.pStep, kEff)
	p.hmemo[key] = h
	if p.shared != nil {
		p.shared.store(sk, h)
	}
	return h * (1 - p.specs[j].Lambda)
}

// hitRatioExact is the raw Equation (1) for one site: the probability
// that the requested object was requested at least once within the last K
// time slots, averaged over the site's Zipf-distributed object choice.
func hitRatioExact(pSite float64, z *stats.Zipf, K float64) float64 {
	if K <= 0 || pSite <= 0 {
		return 0
	}
	h := 0.0
	for k := 1; k <= z.L; k++ {
		q := z.PMF(k)
		pObj := pSite * q
		var miss float64
		switch {
		case math.IsInf(K, 1):
			miss = 0 // never evicted: always present after first request
		case pObj >= 1:
			miss = 0
		default:
			miss = math.Pow(1-pObj, K)
		}
		h += (1 - miss) * q
	}
	return h
}

// HitRatios returns the λ-adjusted hit ratio of every site at the given
// cache size, with every site visible to the cache.
func (p *Predictor) HitRatios(cacheBytes int64) []float64 {
	out := make([]float64, len(p.specs))
	K := p.K(cacheBytes)
	for j := range p.specs {
		out[j] = p.siteHitRatioK(j, 1, K)
	}
	return out
}

// HitRatiosCond is HitRatios with only the sites where visible[j] is true
// traversing the cache; entries for invisible (replicated) sites are 0.
func (p *Predictor) HitRatiosCond(visible []bool, cacheBytes int64) []float64 {
	if len(visible) != len(p.specs) {
		panic(fmt.Sprintf("lrumodel: %d visibility flags for %d sites", len(visible), len(p.specs)))
	}
	mass := 0.0
	for j, v := range visible {
		if v {
			mass += p.pops[j]
		}
	}
	out := make([]float64, len(p.specs))
	if mass <= 0 {
		return out
	}
	K := p.K(cacheBytes)
	for j := range p.specs {
		if visible[j] {
			out[j] = p.siteHitRatioK(j, mass, K)
		}
	}
	return out
}

// OverallHitRatio returns the request-weighted hit ratio Σ p_j·h_j at the
// given cache size — the fraction of all requests at this server that the
// cache absorbs (all sites visible).
func (p *Predictor) OverallHitRatio(cacheBytes int64) float64 {
	K := p.K(cacheBytes)
	total := 0.0
	for j := range p.specs {
		total += p.pops[j] * p.siteHitRatioK(j, 1, K)
	}
	return total
}

// SitePopularity returns the frozen normalized popularity p_j.
func (p *Predictor) SitePopularity(j int) float64 { return p.pops[j] }

// mergeItem / mergeHeap implement the descending-popularity k-way merge.
type mergeItem struct {
	pop  float64
	site int
	rank int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].pop > h[j].pop }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
