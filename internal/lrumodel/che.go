package lrumodel

import "math"

// This file implements Che's characteristic-time approximation of the
// LRU hit ratio (Che, Tung, Wang, "Hierarchical web caching systems",
// JSAC 2002) as a reference point for the paper's own model. Both take
// identical inputs; comparing them against the trace-driven simulator
// quantifies how much accuracy the paper's simpler Equation (2) gives up
// (see the model-comparison experiment).
//
// Under the independent reference model, Che approximates that an object
// with request probability p is present in an LRU cache of B slots iff
// it was requested within the last T_C time slots, where the
// characteristic time T_C solves
//
//	Σ_k 1 − (1 − p_k)^T_C = B,
//
// i.e. the expected number of distinct objects requested within T_C
// equals the cache size. The per-object hit ratio is then
// 1 − (1 − p_k)^T_C — structurally the paper's Equation (1) with T_C in
// place of the Equation (2) K.

// cheLaw plugs Che's approximation into the Predictor machinery as a
// selectable ModelKind: KForB memoizes the bisection per B, and the
// grid evaluation reuses the Equation (1) structural form with T_C in
// place of K. The standalone Che* methods below remain unmemoized for
// the validation tooling.
type cheLaw struct{}

func (cheLaw) charTime(p *Predictor, B int) float64 { return p.CheK(B) }
func (cheLaw) siteHit(p *Predictor, j int, pSite, K float64) float64 {
	return hitRatioExact(pSite, p.zipfs[j], K)
}

// CheK computes the characteristic time T_C for the predictor's merged
// object population and a cache of B slots, by bisection on the
// monotone occupancy function. It returns +Inf when B covers every
// object with positive probability.
func (p *Predictor) CheK(B int) float64 {
	if B <= 0 {
		return 0
	}
	positive := 0
	for j := range p.specs {
		if p.pops[j] > 0 {
			positive += p.specs[j].Objects
		}
	}
	if B >= positive {
		return math.Inf(1)
	}
	occupied := func(T float64) float64 {
		total := 0.0
		for j := range p.specs {
			if p.pops[j] == 0 {
				continue
			}
			z := p.zipfs[j]
			for k := 1; k <= z.L; k++ {
				q := p.pops[j] * z.PMF(k)
				if q >= 1 {
					total++
					continue
				}
				total += 1 - math.Pow(1-q, T)
			}
		}
		return total
	}
	// Bracket T: occupancy is increasing in T from 0 to `positive`.
	lo, hi := 0.0, float64(B)
	for occupied(hi) < float64(B) {
		hi *= 2
		if hi > 1e15 {
			return math.Inf(1)
		}
	}
	for iter := 0; iter < 200 && hi-lo > 1e-6*hi; iter++ {
		mid := (lo + hi) / 2
		if occupied(mid) < float64(B) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// CheSiteHitRatio predicts site j's hit ratio with Che's approximation
// at the given cache size, λ-adjusted like SiteHitRatio. Results are not
// memoized: the experiment code calls it once per configuration.
func (p *Predictor) CheSiteHitRatio(j int, cacheBytes int64) float64 {
	T := p.CheK(p.B(cacheBytes))
	h := hitRatioExact(p.pops[j], p.zipfs[j], T)
	return h * (1 - p.specs[j].Lambda)
}

// CheOverallHitRatio is the request-weighted Che prediction across all
// sites.
func (p *Predictor) CheOverallHitRatio(cacheBytes int64) float64 {
	T := p.CheK(p.B(cacheBytes))
	total := 0.0
	for j := range p.specs {
		total += p.pops[j] * hitRatioExact(p.pops[j], p.zipfs[j], T) * (1 - p.specs[j].Lambda)
	}
	return total
}
