package lrumodel

import (
	"math"

	"repro/internal/stats"
)

// This file implements the closed-form LRU model in the spirit of
// Laoutaris, "A Closed-Form Method for LRU Replacement under
// Generalized Power-Law Demand": replace the O(B) summation of
// Equation (2) and the O(L) summation of Equation (1) with integral
// forms whose cost is independent of the cache and catalog sizes.
//
// Equation (2) is a Riemann sum of 1/(1-x·s) over x = 0..B-1 with
// s = p_B/(B-1); the midpoint rule gives the closed form
//
//	K ≈ (1/s)·ln( (1 + s/2) / (1 - (B-1/2)·s) ).
//
// Equation (1) is split: the first closedformHeadRanks ranks — which
// carry most of the Zipf mass and where (1-p)^K is far from its
// exponential limit — are summed exactly, and the power-law tail is
// integrated in log-rank space by fixed-order Gauss–Legendre
// quadrature using the continuum approximation (1-p)^K ≈ e^(-K·p)
// (accurate because tail ranks have p « 1). The substitution
// t = ln(rank) turns the integrand into a smooth, nearly-constant-
// curvature function that closedformNodes nodes capture to well under
// the model's own error against simulation.
//
// Validity envelope: the head/tail split is exact for catalogs up to
// closedformExactL objects (the loop is cheaper than quadrature
// there); beyond that the approximation error stays within ~1e-3
// absolute hit ratio for θ ∈ [0, 2] (see TestClosedFormMatchesEq1),
// an order of magnitude below the paper model's own gap to the
// simulator. The closed-form K diverges from Equation (2) only when
// p_B → 1 (both saturate the hit ratio, so the difference does not
// surface in placement decisions).

// closedformExactL is the catalog size below which the exact Equation
// (1) loop is used verbatim: quadrature only pays off once L exceeds
// the head-plus-node work.
const closedformExactL = 64

// closedformHeadRanks is the number of leading ranks summed exactly
// before switching to the tail integral.
const closedformHeadRanks = 32

// closedformNodes is the Gauss–Legendre order used for the tail.
const closedformNodes = 32

// closedformLaw is the ModelClosedForm strategy.
type closedformLaw struct{}

func (closedformLaw) charTime(p *Predictor, B int) float64 { return closedformK(B, p.TopMass(B)) }
func (closedformLaw) siteHit(p *Predictor, j int, pSite, K float64) float64 {
	return closedformHitRatio(pSite, p.zipfs[j], K)
}

// closedformK is the O(1) integral form of Equation (2). It matches
// kApprox's conventions: 0 for an empty cache, 1 for a single slot,
// +Inf when p_B ≥ 1 or the log argument degenerates.
func closedformK(B int, pB float64) float64 {
	switch {
	case B <= 0:
		return 0
	case B == 1:
		return 1
	case pB >= 1:
		return math.Inf(1)
	case pB <= 0:
		return float64(B) // every term is exactly 1
	}
	s := pB / float64(B-1)
	denom := 1 - (float64(B)-0.5)*s
	if denom <= 1e-12 {
		return math.Inf(1)
	}
	return math.Log((1+0.5*s)/denom) / s
}

// glNodes / glWeights are the Gauss–Legendre abscissas and weights on
// [-1, 1], computed once by Newton iteration on the Legendre
// polynomial (no tabulated constants to mistype).
var glNodes, glWeights = gaussLegendre(closedformNodes)

func gaussLegendre(n int) ([]float64, []float64) {
	x := make([]float64, n)
	w := make([]float64, n)
	m := (n + 1) / 2
	for i := 0; i < m; i++ {
		// Chebyshev-based initial guess for the i-th root.
		z := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			p1, p2 := 1.0, 0.0
			for j := 0; j < n; j++ {
				p3 := p2
				p2 = p1
				p1 = ((2*float64(j)+1)*z*p2 - float64(j)*p3) / (float64(j) + 1)
			}
			pp = float64(n) * (z*p1 - p2) / (z*z - 1)
			z1 := z
			z = z1 - p1/pp
			if math.Abs(z-z1) < 1e-15 {
				break
			}
		}
		x[i] = -z
		x[n-1-i] = z
		w[i] = 2 / ((1 - z*z) * pp * pp)
		w[n-1-i] = w[i]
	}
	return x, w
}

// closedformHitRatio evaluates Equation (1)'s structural form with
// cost independent of the catalog size L: exact head sum plus a
// Gauss–Legendre tail integral in log-rank space.
func closedformHitRatio(pSite float64, z *stats.Zipf, K float64) float64 {
	if K <= 0 || pSite <= 0 {
		return 0
	}
	if math.IsInf(K, 1) {
		// Never evicted: every object is present after its first
		// request, so the site hit ratio is the full Zipf mass.
		return 1
	}
	if z.L <= closedformExactL {
		return hitRatioExact(pSite, z, K)
	}

	// Exact head: ranks 1..H carry the bulk of the mass and the
	// largest per-object probabilities, where (1-p)^K must not be
	// replaced by its exponential limit.
	h := 0.0
	head := closedformHeadRanks
	for k := 1; k <= head; k++ {
		q := z.PMF(k)
		pObj := pSite * q
		var miss float64
		if pObj < 1 {
			miss = math.Pow(1-pObj, K)
		}
		h += (1 - miss) * q
	}

	// Tail integral over local ranks k ∈ [H+1, L], midpoint-extended
	// to [H+1/2, L+1/2]. With global rank r = Start+k-1 the PMF is
	// α·r^(-θ); substituting t = ln(r) gives
	//
	//	∫ (1 - e^(-K·pSite·α·e^(-θt))) · α·e^((1-θ)t) dt
	//
	// over t ∈ [ln(Start+H-1/2), ln(Start+L-1/2)].
	alpha := z.Alpha()
	theta := z.Theta
	rLo := float64(z.Start) + float64(head) - 0.5
	rHi := float64(z.Start) + float64(z.L) - 0.5
	tLo := math.Log(rLo)
	tHi := math.Log(rHi)
	mid := 0.5 * (tHi + tLo)
	half := 0.5 * (tHi - tLo)
	tail := 0.0
	for i, xn := range glNodes {
		t := mid + half*xn
		q := alpha * math.Exp(-theta*t)
		tail += glWeights[i] * (1 - math.Exp(-K*pSite*q)) * q * math.Exp(t)
	}
	return h + half*tail
}
