package lrumodel

import (
	"sync"
	"testing"

	"repro/internal/xrand"
)

// TestSharedTableBitIdentical pins the cross-predictor table to the
// private-memo path: every hit ratio a shared predictor returns must be
// bitwise equal to an unshared predictor's, regardless of which
// predictor populated the table first.
func TestSharedTableBitIdentical(t *testing.T) {
	r := xrand.New(7)
	specs := []SiteSpec{
		{Objects: 120, Theta: 0.7, Lambda: 0.1},
		{Objects: 80, Theta: 0.7},
		{Objects: 200, Theta: 0.9, Lambda: 0.3},
		{Objects: 120, Theta: 0.7}, // same shape as site 0, different λ
	}
	shared := NewSharedTable()
	for server := 0; server < 6; server++ {
		w := make([]float64, len(specs))
		for j := range w {
			w[j] = r.Float64() + 0.01
		}
		plain := NewPredictor(specs, w, 1, 150)
		with := NewPredictorShared(specs, w, 1, 150, shared)
		for _, cache := range []int64{0, 10, 40, 150} {
			for j := range specs {
				for _, mass := range []float64{1, 0.8, 0.5} {
					a := plain.SiteHitRatioCond(j, mass, cache)
					b := with.SiteHitRatioCond(j, mass, cache)
					if a != b {
						t.Fatalf("server %d site %d cache %d mass %v: plain %v shared %v",
							server, j, cache, mass, a, b)
					}
				}
			}
		}
	}
	if shared.Len() == 0 {
		t.Fatal("shared table stayed empty")
	}
}

// TestSharedTableConcurrent exercises the table from parallel predictors
// (the placement engines query per-server predictors from worker
// goroutines); run with -race.
func TestSharedTableConcurrent(t *testing.T) {
	specs, _ := singleSite(300, 0.8, 0)
	shared := NewSharedTable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := NewPredictorShared(specs, []float64{1}, 1, 200, shared)
			for c := int64(1); c <= 200; c++ {
				p.SiteHitRatioCond(0, 1-float64(g)*0.05, c)
			}
		}(g)
	}
	wg.Wait()
	ref := NewPredictor(specs, []float64{1}, 1, 200)
	p := NewPredictorShared(specs, []float64{1}, 1, 200, shared)
	for c := int64(1); c <= 200; c++ {
		if a, b := ref.SiteHitRatio(0, c), p.SiteHitRatio(0, c); a != b {
			t.Fatalf("cache %d: plain %v shared %v", c, a, b)
		}
	}
}
