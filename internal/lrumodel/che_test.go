package lrumodel

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestCheKEdgeCases(t *testing.T) {
	specs, w := singleSite(100, 1.0, 0)
	p := NewPredictor(specs, w, 1, 100)
	if got := p.CheK(0); got != 0 {
		t.Fatalf("CheK(0) = %v", got)
	}
	if got := p.CheK(100); !math.IsInf(got, 1) {
		t.Fatalf("CheK(all objects) = %v, want +Inf", got)
	}
}

func TestCheKMonotoneInB(t *testing.T) {
	specs, w := singleSite(500, 1.0, 0)
	p := NewPredictor(specs, w, 1, 500)
	prev := 0.0
	for _, b := range []int{10, 50, 100, 200, 400} {
		k := p.CheK(b)
		if k <= prev {
			t.Fatalf("CheK not increasing at B=%d: %v <= %v", b, k, prev)
		}
		prev = k
	}
}

func TestCheOccupancyFixedPoint(t *testing.T) {
	// At the solved characteristic time, the expected occupancy equals
	// B (that is the defining equation).
	specs, w := singleSite(400, 1.0, 0)
	p := NewPredictor(specs, w, 1, 400)
	const B = 120
	T := p.CheK(B)
	z := p.zipfs[0]
	occ := 0.0
	for k := 1; k <= z.L; k++ {
		occ += 1 - math.Pow(1-z.PMF(k), T)
	}
	if math.Abs(occ-B) > 0.1 {
		t.Fatalf("occupancy at T_C is %v, want %d", occ, B)
	}
}

func TestCheHitRatioBounds(t *testing.T) {
	specs, w := singleSite(300, 1.0, 0.1)
	p := NewPredictor(specs, w, 1, 300)
	prev := -1.0
	for _, c := range []int64{0, 30, 90, 200, 299} {
		h := p.CheSiteHitRatio(0, c)
		if h < 0 || h > 1 {
			t.Fatalf("Che hit ratio %v out of range", h)
		}
		if h < prev-1e-9 {
			t.Fatalf("Che hit ratio decreased at %d", c)
		}
		prev = h
	}
}

// TestCheMatchesSimulation: Che's approximation is known to be extremely
// accurate under IRM; hold it to a tighter tolerance than the paper's
// model.
func TestCheMatchesSimulation(t *testing.T) {
	for _, tc := range []struct {
		L     int
		theta float64
		slots int
	}{
		{500, 1.0, 50},
		{500, 1.0, 200},
		{1000, 0.8, 150},
	} {
		specs, w := singleSite(tc.L, tc.theta, 0)
		p := NewPredictor(specs, w, 1, int64(tc.slots))
		predicted := p.CheSiteHitRatio(0, int64(tc.slots))
		actual := simulateLRUHitRatio(specs, w, tc.slots, 600000, xrand.New(11))[0]
		if math.Abs(predicted-actual) > 0.02 {
			t.Errorf("L=%d θ=%v B=%d: Che %.4f vs sim %.4f",
				tc.L, tc.theta, tc.slots, predicted, actual)
		}
	}
}

// TestPaperModelConservativeVsChe documents the structural relationship:
// the paper's K (Equation 2) underestimates the characteristic time, so
// its hit ratios sit at or below Che's.
func TestPaperModelConservativeVsChe(t *testing.T) {
	specs, w := singleSite(800, 1.0, 0)
	p := NewPredictor(specs, w, 1, 800)
	for _, c := range []int64{50, 100, 200, 400} {
		paper := p.SiteHitRatio(0, c)
		che := p.CheSiteHitRatio(0, c)
		if paper > che+0.01 {
			t.Errorf("cache %d: paper model %.4f above Che %.4f", c, paper, che)
		}
	}
}

func TestCheOverallIsWeightedAverage(t *testing.T) {
	specs := []SiteSpec{
		{Objects: 100, Theta: 1.0},
		{Objects: 100, Theta: 1.0},
	}
	p := NewPredictor(specs, []float64{3, 1}, 1, 200)
	const c = 60
	want := 0.75*p.CheSiteHitRatio(0, c) + 0.25*p.CheSiteHitRatio(1, c)
	if got := p.CheOverallHitRatio(c); math.Abs(got-want) > 1e-9 {
		t.Fatalf("overall %v, want %v", got, want)
	}
}
