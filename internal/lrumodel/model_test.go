package lrumodel

import (
	"math"
	"strings"
	"testing"
)

func TestParseModelKind(t *testing.T) {
	if k, err := ParseModelKind(""); err != nil || k != ModelEq1 {
		t.Fatalf("ParseModelKind(\"\") = %v, %v; want eq1 default", k, err)
	}
	for _, kind := range ModelKinds() {
		k, err := ParseModelKind(string(kind))
		if err != nil || k != kind {
			t.Fatalf("ParseModelKind(%q) = %v, %v", kind, k, err)
		}
	}
	_, err := ParseModelKind("lfu")
	if err == nil {
		t.Fatal("ParseModelKind(\"lfu\") succeeded")
	}
	// CLIs surface this message verbatim from flag validation: it must
	// name the offender and list every valid kind.
	for _, want := range []string{`"lfu"`, "eq1", "che", "closedform", "random"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestNewValidatesConfig(t *testing.T) {
	specs, w := singleSite(100, 1.0, 0)
	good := ModelConfig{Specs: specs, Weights: w, AvgObjectBytes: 1, MaxCacheBytes: 100}

	bad := good
	bad.Kind = "bogus"
	if _, err := New(bad); err == nil {
		t.Fatal("New accepted an unknown kind")
	}

	// Unlike the deprecated panicking constructors, New reports invalid
	// site specs as an error.
	bad = good
	bad.Specs = nil
	if _, err := New(bad); err == nil {
		t.Fatal("New accepted empty specs")
	}
	bad = good
	bad.AvgObjectBytes = 0
	if _, err := New(bad); err == nil {
		t.Fatal("New accepted ō = 0")
	}
}

func TestModelKindRoundTrip(t *testing.T) {
	specs, w := singleSite(100, 1.0, 0)
	for _, kind := range ModelKinds() {
		m, err := New(ModelConfig{Kind: kind, Specs: specs, Weights: w,
			AvgObjectBytes: 1, MaxCacheBytes: 100})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if m.Kind() != kind {
			t.Fatalf("Kind() = %v, want %v", m.Kind(), kind)
		}
	}
}

// TestDeprecatedConstructorsMatchNew pins the compatibility contract:
// the deprecated panicking constructors are thin wrappers over the eq1
// kind, bit-identical to New on every surface the placement uses.
func TestDeprecatedConstructorsMatchNew(t *testing.T) {
	specs := []SiteSpec{
		{Objects: 300, Theta: 1.0},
		{Objects: 500, Theta: 0.8, Lambda: 0.2},
	}
	w := []float64{3, 1}
	old := NewPredictor(specs, w, 1, 800)
	m, err := New(ModelConfig{Specs: specs, Weights: w, AvgObjectBytes: 1, MaxCacheBytes: 800})
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != ModelEq1 {
		t.Fatalf("zero Kind resolved to %v, want eq1", m.Kind())
	}
	for _, c := range []int64{0, 40, 100, 400, 799} {
		for j := range specs {
			if a, b := old.SiteHitRatio(j, c), m.SiteHitRatio(j, c); a != b {
				t.Fatalf("site %d cache %d: deprecated %v != New %v", j, c, a, b)
			}
		}
		if a, b := old.OverallHitRatio(c), m.OverallHitRatio(c); a != b {
			t.Fatalf("cache %d: overall %v != %v", c, a, b)
		}
	}
}

// TestSharedTableIsolatesKinds: models of different kinds can attach
// the same SharedTable without cross-contaminating each other, because
// entries are keyed by kind. Each shared model must agree exactly with
// a private-table model of the same kind.
func TestSharedTableIsolatesKinds(t *testing.T) {
	specs, w := singleSite(2000, 1.0, 0)
	table := NewSharedTable()
	for _, c := range []int64{100, 400, 1000} {
		for _, kind := range ModelKinds() {
			shared, err := New(ModelConfig{Kind: kind, Specs: specs, Weights: w,
				AvgObjectBytes: 1, MaxCacheBytes: 2000, Shared: table})
			if err != nil {
				t.Fatal(err)
			}
			private, err := New(ModelConfig{Kind: kind, Specs: specs, Weights: w,
				AvgObjectBytes: 1, MaxCacheBytes: 2000})
			if err != nil {
				t.Fatal(err)
			}
			if a, b := shared.SiteHitRatio(0, c), private.SiteHitRatio(0, c); a != b {
				t.Fatalf("%s cache %d: shared %v != private %v", kind, c, a, b)
			}
		}
	}
	if st := table.Stats(); st.Entries == 0 {
		t.Fatal("shared table recorded no entries")
	}
}

// TestModelsOrderedBySkewSensitivity spot-checks the cross-model
// ordering at one operating point: all four kinds must produce a
// plausible hit ratio (0 < h < 1) for a mid-size cache, and eq1 must
// stay within a few points of closedform while che/random are free to
// differ (they model different mathematics/policies).
func TestModelsOrderedBySkewSensitivity(t *testing.T) {
	specs, w := singleSite(1000, 1.0, 0)
	h := map[ModelKind]float64{}
	for _, kind := range ModelKinds() {
		m, err := New(ModelConfig{Kind: kind, Specs: specs, Weights: w,
			AvgObjectBytes: 1, MaxCacheBytes: 1000})
		if err != nil {
			t.Fatal(err)
		}
		v := m.OverallHitRatio(150)
		if v <= 0 || v >= 1 {
			t.Fatalf("%s: hit ratio %v out of (0,1)", kind, v)
		}
		h[kind] = v
	}
	if d := math.Abs(h[ModelEq1] - h[ModelClosedForm]); d > 0.005 {
		t.Fatalf("eq1 %v vs closedform %v differ by %v", h[ModelEq1], h[ModelClosedForm], d)
	}
	if h[ModelRandom] > h[ModelChe]+0.01 {
		t.Fatalf("random %v above Che LRU %v", h[ModelRandom], h[ModelChe])
	}
}
