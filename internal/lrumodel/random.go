package lrumodel

import (
	"math"

	"repro/internal/stats"
)

// This file implements the analytical RANDOM/FIFO hit-ratio model
// (Gelenbe 1973; Gallo et al., "Performance evaluation of the random
// replacement policy for networks of caches"). Under the independent
// reference model, RANDOM and FIFO replacement have identical
// steady-state hit ratios: an object requested with probability q is
// present with probability
//
//	h(q) = q·T / (1 + q·T),
//
// where the characteristic time T solves the occupancy equation
//
//	Σ_k q_k·T / (1 + q_k·T) = B.
//
// Structurally this mirrors Che's LRU approximation with the
// exponential 1-(1-q)^T replaced by the RANDOM stationary probability;
// the same bisection bracket applies because occupancy is monotone
// increasing in T. This lets the hybrid placement optimize fleets
// running the FIFO/RANDOM cache variants in internal/cache.

// randomLaw is the ModelRandom strategy.
type randomLaw struct{}

func (randomLaw) charTime(p *Predictor, B int) float64 { return p.randomT(B) }
func (randomLaw) siteHit(p *Predictor, j int, pSite, K float64) float64 {
	return randomSiteHit(pSite, p.zipfs[j], K)
}

// randomT solves the RANDOM/FIFO occupancy equation for T by bisection
// over the predictor's merged object population. It returns +Inf when
// B covers every object with positive request probability.
func (p *Predictor) randomT(B int) float64 {
	if B <= 0 {
		return 0
	}
	positive := 0
	for j := range p.specs {
		if p.pops[j] > 0 {
			positive += p.specs[j].Objects
		}
	}
	if B >= positive {
		return math.Inf(1)
	}
	occupied := func(T float64) float64 {
		total := 0.0
		for j := range p.specs {
			if p.pops[j] == 0 {
				continue
			}
			z := p.zipfs[j]
			for k := 1; k <= z.L; k++ {
				q := p.pops[j] * z.PMF(k)
				total += q * T / (1 + q*T)
			}
		}
		return total
	}
	lo, hi := 0.0, float64(B)
	for occupied(hi) < float64(B) {
		hi *= 2
		if hi > 1e15 {
			return math.Inf(1)
		}
	}
	for iter := 0; iter < 200 && hi-lo > 1e-6*hi; iter++ {
		mid := (lo + hi) / 2
		if occupied(mid) < float64(B) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// randomSiteHit is the per-site RANDOM/FIFO hit ratio: the stationary
// presence probability q·T/(1+q·T), averaged over the site's Zipf
// object choice.
func randomSiteHit(pSite float64, z *stats.Zipf, T float64) float64 {
	if T <= 0 || pSite <= 0 {
		return 0
	}
	if math.IsInf(T, 1) {
		return 1
	}
	h := 0.0
	for k := 1; k <= z.L; k++ {
		q := z.PMF(k)
		pObj := pSite * q
		h += pObj * T / (1 + pObj*T) * q
	}
	return h
}
