package lrumodel

import (
	"math"
	"testing"
)

func TestClosedFormKEdgeCases(t *testing.T) {
	if got := closedformK(0, 0.5); got != 0 {
		t.Fatalf("closedformK(0) = %v", got)
	}
	if got := closedformK(1, 0.5); got != 1 {
		t.Fatalf("closedformK(1) = %v, want 1", got)
	}
	if got := closedformK(100, 1.0); !math.IsInf(got, 1) {
		t.Fatalf("closedformK(pB=1) = %v, want +Inf", got)
	}
	if got := closedformK(100, 0); got != 100 {
		t.Fatalf("closedformK(pB=0) = %v, want B", got)
	}
}

// TestClosedFormKMatchesEq2 holds the midpoint-rule integral against
// Equation (2)'s exact sum. The rule's error concentrates near the
// summand's singularity, so the bound loosens as p_B grows; the
// hit-ratio-level agreement (TestClosedFormMatchesEq1) is the bound
// that matters for placement.
func TestClosedFormKMatchesEq2(t *testing.T) {
	for _, tc := range []struct {
		pB  float64
		tol float64
	}{
		{0.05, 0.002},
		{0.2, 0.01},
		{0.5, 0.03},
		{0.9, 0.10},
	} {
		for _, B := range []int{50, 200, 1000, 10000} {
			exact := kApprox(B, tc.pB)
			cf := closedformK(B, tc.pB)
			if math.IsInf(exact, 1) != math.IsInf(cf, 1) {
				t.Fatalf("B=%d pB=%v: exact %v vs closed form %v", B, tc.pB, exact, cf)
			}
			if math.IsInf(exact, 1) {
				continue
			}
			if rel := math.Abs(cf-exact) / exact; rel > tc.tol {
				t.Errorf("B=%d pB=%v: closed-form K %.4f vs exact %.4f (rel %.4f > %v)",
					B, tc.pB, cf, exact, rel, tc.tol)
			}
		}
	}
}

func TestClosedFormKMonotoneInB(t *testing.T) {
	prev := 0.0
	for _, b := range []int{10, 50, 100, 500, 2000} {
		k := closedformK(b, 0.6)
		if k <= prev {
			t.Fatalf("closedformK not increasing at B=%d: %v <= %v", b, k, prev)
		}
		prev = k
	}
}

// TestClosedFormMatchesEq1 is the validity-envelope claim from
// closedform.go: across θ, catalog layouts and cache sizes, the
// quadrature model's overall hit ratio stays within 5e-3 absolute of
// the exact Equation (1)+(2) evaluation — an order of magnitude below
// the paper model's own gap to simulation.
func TestClosedFormMatchesEq1(t *testing.T) {
	layouts := [][]int{
		{2000},
		{1000, 1000, 1000},
		{500, 2000, 500, 1000},
	}
	for _, theta := range []float64{0.6, 0.8, 1.0, 1.2} {
		for _, layout := range layouts {
			specs := make([]SiteSpec, len(layout))
			weights := make([]float64, len(layout))
			total := 0
			for j, L := range layout {
				specs[j] = SiteSpec{Objects: L, Theta: theta}
				weights[j] = float64(uint(1) << uint(len(layout)-1-j))
				total += L
			}
			eq1, err := New(ModelConfig{Kind: ModelEq1, Specs: specs, Weights: weights,
				AvgObjectBytes: 1, MaxCacheBytes: int64(total)})
			if err != nil {
				t.Fatal(err)
			}
			cf, err := New(ModelConfig{Kind: ModelClosedForm, Specs: specs, Weights: weights,
				AvgObjectBytes: 1, MaxCacheBytes: int64(total)})
			if err != nil {
				t.Fatal(err)
			}
			for _, frac := range []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.4} {
				c := int64(frac * float64(total))
				a, b := eq1.OverallHitRatio(c), cf.OverallHitRatio(c)
				if math.Abs(a-b) > 0.005 {
					t.Errorf("θ=%v layout=%v cache=%d: eq1 %.5f vs closed form %.5f (|Δ|=%.5f)",
						theta, layout, c, a, b, math.Abs(a-b))
				}
			}
		}
	}
}

// TestClosedFormSmallCatalogUsesExactLoop: below closedformExactL the
// law evaluates Equation (1) verbatim, so the only difference from eq1
// is the closed-form K.
func TestClosedFormSmallCatalogUsesExactLoop(t *testing.T) {
	specs, w := singleSite(closedformExactL, 1.0, 0)
	p := NewPredictor(specs, w, 1, int64(closedformExactL))
	z := p.zipfs[0]
	for _, K := range []float64{5, 20, 60} {
		if got, want := closedformHitRatio(1, z, K), hitRatioExact(1, z, K); got != want {
			t.Fatalf("K=%v: %v != exact %v", K, got, want)
		}
	}
}

func TestClosedFormHitRatioEdgeCases(t *testing.T) {
	specs, w := singleSite(500, 1.0, 0)
	p := NewPredictor(specs, w, 1, 500)
	z := p.zipfs[0]
	if got := closedformHitRatio(0.5, z, 0); got != 0 {
		t.Fatalf("K=0: %v, want 0", got)
	}
	if got := closedformHitRatio(0, z, 10); got != 0 {
		t.Fatalf("pSite=0: %v, want 0", got)
	}
	if got := closedformHitRatio(0.5, z, math.Inf(1)); got != 1 {
		t.Fatalf("K=+Inf: %v, want 1", got)
	}
}

func TestClosedFormHitRatioBounds(t *testing.T) {
	specs := []SiteSpec{{Objects: 3000, Theta: 0.9, Lambda: 0.1}}
	m, err := New(ModelConfig{Kind: ModelClosedForm, Specs: specs,
		Weights: []float64{1}, AvgObjectBytes: 1, MaxCacheBytes: 3000})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, c := range []int64{0, 50, 200, 1000, 2999} {
		h := m.SiteHitRatio(0, c)
		if h < 0 || h > 1 {
			t.Fatalf("closed-form hit ratio %v out of range at %d", h, c)
		}
		if h < prev-1e-9 {
			t.Fatalf("closed-form hit ratio decreased at %d", c)
		}
		prev = h
	}
}
