package lrumodel

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func TestRandomTEdgeCases(t *testing.T) {
	specs, w := singleSite(200, 1.0, 0)
	p := NewPredictor(specs, w, 1, 200)
	if got := p.randomT(0); got != 0 {
		t.Fatalf("randomT(0) = %v", got)
	}
	if got := p.randomT(200); !math.IsInf(got, 1) {
		t.Fatalf("randomT(all objects) = %v, want +Inf", got)
	}
	if got := p.randomT(500); !math.IsInf(got, 1) {
		t.Fatalf("randomT(beyond catalog) = %v, want +Inf", got)
	}
}

func TestRandomTMonotoneInB(t *testing.T) {
	specs, w := singleSite(500, 1.0, 0)
	p := NewPredictor(specs, w, 1, 500)
	prev := 0.0
	for _, b := range []int{10, 50, 100, 200, 400} {
		T := p.randomT(b)
		if T <= prev {
			t.Fatalf("randomT not increasing at B=%d: %v <= %v", b, T, prev)
		}
		prev = T
	}
}

func TestRandomOccupancyFixedPoint(t *testing.T) {
	// At the solved characteristic time the expected occupancy
	// Σ q·T/(1+q·T) equals B — that is the defining equation.
	specs, w := singleSite(400, 1.0, 0)
	p := NewPredictor(specs, w, 1, 400)
	const B = 120
	T := p.randomT(B)
	z := p.zipfs[0]
	occ := 0.0
	for k := 1; k <= z.L; k++ {
		q := z.PMF(k)
		occ += q * T / (1 + q*T)
	}
	if math.Abs(occ-B) > 0.1 {
		t.Fatalf("occupancy at T is %v, want %d", occ, B)
	}
}

func TestRandomZeroWeightSiteExcluded(t *testing.T) {
	// A site nobody requests holds no cache space: T must solve the
	// occupancy over the requested population only, so covering it
	// saturates at the requested site's catalog.
	specs := []SiteSpec{
		{Objects: 100, Theta: 1.0},
		{Objects: 100, Theta: 1.0},
	}
	p := NewPredictor(specs, []float64{1, 0}, 1, 200)
	if got := p.randomT(100); !math.IsInf(got, 1) {
		t.Fatalf("randomT(100) with one dead site = %v, want +Inf", got)
	}
}

// TestRandomModelMatchesSimulatedCaches validates the q·T/(1+q·T) model
// against trace-driven runs of both cache variants it covers: under
// IRM, RANDOM and FIFO replacement share the same steady-state hit
// ratio (Gelenbe 1973), so one analytical column must track both
// simulated policies.
func TestRandomModelMatchesSimulatedCaches(t *testing.T) {
	for _, tc := range []struct {
		L     int
		theta float64
		slots int
	}{
		{500, 1.0, 50},
		{500, 1.0, 200},
		{1000, 0.8, 150},
	} {
		specs, w := singleSite(tc.L, tc.theta, 0)
		m, err := New(ModelConfig{Kind: ModelRandom, Specs: specs, Weights: w,
			AvgObjectBytes: 1, MaxCacheBytes: int64(tc.L)})
		if err != nil {
			t.Fatal(err)
		}
		predicted := m.SiteHitRatio(0, int64(tc.slots))
		for _, policy := range []cache.Policy{cache.PolicyRandom, cache.PolicyFIFO} {
			actual := simulatePolicyHitRatio(policy, specs, w, tc.slots, 600000, xrand.New(11))
			if math.Abs(predicted-actual) > 0.03 {
				t.Errorf("L=%d θ=%v B=%d %s: model %.4f vs sim %.4f",
					tc.L, tc.theta, tc.slots, policy, predicted, actual)
			}
		}
	}
}

// TestRandomBelowLRUModel documents the policy ordering under skewed
// demand: RANDOM/FIFO cannot beat LRU under IRM with Zipf popularity,
// so the random model's hit ratio sits at or below Che's LRU estimate.
func TestRandomBelowLRUModel(t *testing.T) {
	specs, w := singleSite(800, 1.0, 0)
	rnd, err := New(ModelConfig{Kind: ModelRandom, Specs: specs, Weights: w,
		AvgObjectBytes: 1, MaxCacheBytes: 800})
	if err != nil {
		t.Fatal(err)
	}
	che, err := New(ModelConfig{Kind: ModelChe, Specs: specs, Weights: w,
		AvgObjectBytes: 1, MaxCacheBytes: 800})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []int64{50, 100, 200, 400} {
		if r, l := rnd.SiteHitRatio(0, c), che.SiteHitRatio(0, c); r > l+0.01 {
			t.Errorf("cache %d: random model %.4f above Che LRU %.4f", c, r, l)
		}
	}
}

// simulatePolicyHitRatio drives a real cache of the given policy with
// an IRM request stream over unit-size objects and returns the overall
// hit ratio after warm-up — ground truth for the RANDOM/FIFO model.
func simulatePolicyHitRatio(policy cache.Policy, specs []SiteSpec, weights []float64, slots, requests int, r *xrand.Source) float64 {
	c := cache.New(policy, int64(slots))
	zipfs := make([]*stats.Zipf, len(specs))
	for j, s := range specs {
		zipfs[j] = stats.NewZipf(s.Objects, s.Theta)
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	cdf := make([]float64, len(weights))
	cum := 0.0
	for j, w := range weights {
		cum += w / total
		cdf[j] = cum
	}
	warmup := requests / 5
	var hits, lookups float64
	for i := 0; i < requests; i++ {
		u := r.Float64()
		site := 0
		for site < len(cdf)-1 && u > cdf[site] {
			site++
		}
		key := cache.Key{Site: site, Object: zipfs[site].Sample(r)}
		hit := c.Get(key)
		if !hit {
			c.Put(key, 1)
		}
		if i >= warmup {
			lookups++
			if hit {
				hits++
			}
		}
	}
	if lookups == 0 {
		return 0
	}
	return hits / lookups
}
