// Package trace defines a compact binary format for CDN request traces.
//
// The paper notes that "no CDN log files exist in the public domain"
// (§5.1), which is why it generates synthetic workloads. This package
// makes those synthetic workloads exportable and replayable: a recorded
// trace can be fed back to the simulator (sim.RunSource), shared between
// runs, or inspected with cmd/tracegen — and a real CDN log, converted
// once to this format, can drive every experiment in the repository in
// place of the SURGE model.
//
// Format (little endian):
//
//	header: magic "CDNT" | version uint16 | servers uint16 |
//	        sites uint16 | reserved uint16 | objectsPerSite uint32
//	record: server uint16 | site uint16 | object uint32 | flags uint8
//
// Records repeat until EOF. Flag bit 0 is "cacheable".
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/workload"
)

// Magic identifies trace files.
const Magic = "CDNT"

// Version is the current format version.
const Version = 1

const (
	headerSize    = 16
	recordSize    = 9
	flagCacheable = 1 << 0
)

// Header carries the trace's dimensions, used for validation on replay.
type Header struct {
	Servers        int
	Sites          int
	ObjectsPerSite int
}

// Writer streams requests to an io.Writer.
type Writer struct {
	w   *bufio.Writer
	h   Header
	n   int64
	err error
}

// NewWriter writes the header and returns a record writer. Call Flush
// when done.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if h.Servers < 1 || h.Servers > 65535 || h.Sites < 1 || h.Sites > 65535 {
		return nil, fmt.Errorf("trace: header out of range: %+v", h)
	}
	bw := bufio.NewWriter(w)
	var buf [headerSize]byte
	copy(buf[0:4], Magic)
	binary.LittleEndian.PutUint16(buf[4:6], Version)
	binary.LittleEndian.PutUint16(buf[6:8], uint16(h.Servers))
	binary.LittleEndian.PutUint16(buf[8:10], uint16(h.Sites))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(h.ObjectsPerSite))
	if _, err := bw.Write(buf[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, h: h}, nil
}

// Write appends one request record.
func (w *Writer) Write(req workload.Request) error {
	if w.err != nil {
		return w.err
	}
	if req.Server < 0 || req.Server >= w.h.Servers ||
		req.Site < 0 || req.Site >= w.h.Sites || req.Object < 1 {
		w.err = fmt.Errorf("trace: request %+v outside header bounds %+v", req, w.h)
		return w.err
	}
	var buf [recordSize]byte
	binary.LittleEndian.PutUint16(buf[0:2], uint16(req.Server))
	binary.LittleEndian.PutUint16(buf[2:4], uint16(req.Site))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(req.Object))
	if req.Cacheable {
		buf[8] = flagCacheable
	}
	if _, err := w.w.Write(buf[:]); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.n }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader streams requests from an io.Reader.
type Reader struct {
	r *bufio.Reader
	h Header
	n int64
}

// NewReader validates the header and returns a record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var buf [headerSize]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(buf[0:4]) != Magic {
		return nil, errors.New("trace: bad magic")
	}
	if v := binary.LittleEndian.Uint16(buf[4:6]); v != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	h := Header{
		Servers:        int(binary.LittleEndian.Uint16(buf[6:8])),
		Sites:          int(binary.LittleEndian.Uint16(buf[8:10])),
		ObjectsPerSite: int(binary.LittleEndian.Uint32(buf[12:16])),
	}
	return &Reader{r: br, h: h}, nil
}

// Header returns the trace header.
func (r *Reader) Header() Header { return r.h }

// Read returns the next request; io.EOF at the end of the trace.
func (r *Reader) Read() (workload.Request, error) {
	var buf [recordSize]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		if err == io.EOF {
			return workload.Request{}, io.EOF
		}
		return workload.Request{}, fmt.Errorf("trace: truncated record %d: %w", r.n, err)
	}
	req := workload.Request{
		Server:    int(binary.LittleEndian.Uint16(buf[0:2])),
		Site:      int(binary.LittleEndian.Uint16(buf[2:4])),
		Object:    int(binary.LittleEndian.Uint32(buf[4:8])),
		Cacheable: buf[8]&flagCacheable != 0,
	}
	if req.Server >= r.h.Servers || req.Site >= r.h.Sites {
		return workload.Request{}, fmt.Errorf("trace: record %d out of header bounds", r.n)
	}
	r.n++
	return req, nil
}

// Next implements sim.Source: it returns ok=false at EOF and panics on a
// corrupt trace (replay of a corrupt file is a programming/data error,
// not a recoverable condition mid-simulation).
func (r *Reader) Next() (workload.Request, bool) {
	req, err := r.Read()
	if err == io.EOF {
		return workload.Request{}, false
	}
	if err != nil {
		panic(err)
	}
	return req, true
}
