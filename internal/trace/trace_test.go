package trace

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func smallScenario() *scenario.Scenario {
	w := workload.DefaultConfig()
	w.Servers = 6
	w.LowSites, w.MediumSites, w.HighSites = 2, 2, 2
	w.ObjectsPerSite = 80
	w.Lambda = 0.1
	return scenario.MustBuild(scenario.Config{
		Topology: topology.Config{
			TransitDomains:        1,
			TransitNodesPerDomain: 2,
			StubsPerTransitNode:   2,
			StubNodesPerStub:      4,
			ExtraEdgeProb:         0.3,
		},
		Workload:     w,
		CapacityFrac: 0.15,
		Seed:         1,
	})
}

func TestRoundTrip(t *testing.T) {
	sc := smallScenario()
	stream := sc.Stream(xrand.New(2))
	h := Header{Servers: 6, Sites: 6, ObjectsPerSite: 80}

	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	var want []workload.Request
	for i := 0; i < 5000; i++ {
		req := stream.Next()
		want = append(want, req)
		if err := w.Write(req); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 5000 {
		t.Fatalf("count %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header() != h {
		t.Fatalf("header %+v, want %+v", r.Header(), h)
	}
	for i, wantReq := range want {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != wantReq {
			t.Fatalf("record %d: %+v != %+v", i, got, wantReq)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestWriterRejectsOutOfBounds(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Servers: 2, Sites: 2, ObjectsPerSite: 10})
	if err != nil {
		t.Fatal(err)
	}
	bad := []workload.Request{
		{Server: 2, Site: 0, Object: 1},
		{Server: 0, Site: 5, Object: 1},
		{Server: 0, Site: 0, Object: 0},
		{Server: -1, Site: 0, Object: 1},
	}
	for i, req := range bad {
		buf.Reset()
		w2, _ := NewWriter(&buf, Header{Servers: 2, Sites: 2, ObjectsPerSite: 10})
		if err := w2.Write(req); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
	_ = w
}

func TestNewWriterRejectsBadHeader(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Header{Servers: 0, Sites: 1}); err == nil {
		t.Fatal("zero servers accepted")
	}
	if _, err := NewWriter(&buf, Header{Servers: 1, Sites: 70000}); err == nil {
		t.Fatal("oversized sites accepted")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(strings.NewReader("not a trace at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := NewReader(strings.NewReader("CD")); err == nil {
		t.Fatal("short header accepted")
	}
	// Right magic, wrong version.
	raw := []byte("CDNT\xff\xff\x02\x00\x02\x00\x00\x00\x0a\x00\x00\x00")
	if _, err := NewReader(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Servers: 2, Sites: 2, ObjectsPerSite: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(workload.Request{Server: 0, Site: 0, Object: 1, Cacheable: true}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Chop the last record in half.
	data := buf.Bytes()[:buf.Len()-4]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

// TestReplayMatchesLiveRun is the point of the package: recording a
// trace and replaying it through sim.RunSource must reproduce the live
// simulation bit for bit.
func TestReplayMatchesLiveRun(t *testing.T) {
	sc := smallScenario()
	p := coreNewPlacement(sc)
	cfg := sim.DefaultConfig()
	cfg.Requests = 20000
	cfg.Warmup = 10000

	// Live run.
	live, err := sim.Run(context.Background(), sc, p, cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}

	// Record the identical stream, then replay.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{
		Servers:        sc.Sys.N(),
		Sites:          sc.Sys.M(),
		ObjectsPerSite: len(sc.Work.Sites[0].Objects),
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := sc.Stream(xrand.New(7))
	for i := 0; i < cfg.Warmup+cfg.Requests; i++ {
		if err := w.Write(stream.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := sim.RunSource(context.Background(), sc, p, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if live.MeanRTMs != replay.MeanRTMs || live.CacheHits != replay.CacheHits ||
		live.MeanHops != replay.MeanHops || live.Bypass != replay.Bypass {
		t.Fatalf("replay diverged: live %+v vs replay %+v", liveSummary(live), liveSummary(replay))
	}
}

func TestRunSourceExhausted(t *testing.T) {
	sc := smallScenario()
	p := coreNewPlacement(sc)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Servers: sc.Sys.N(), Sites: sc.Sys.M(), ObjectsPerSite: 80})
	if err != nil {
		t.Fatal(err)
	}
	stream := sc.Stream(xrand.New(9))
	for i := 0; i < 100; i++ {
		if err := w.Write(stream.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Requests = 200
	cfg.Warmup = 0
	if _, err := sim.RunSource(context.Background(), sc, p, cfg, r); err == nil {
		t.Fatal("exhausted source accepted")
	}
}

func liveSummary(m *sim.Metrics) map[string]interface{} {
	return map[string]interface{}{
		"rt": m.MeanRTMs, "hits": m.CacheHits, "hops": m.MeanHops, "bypass": m.Bypass,
	}
}
