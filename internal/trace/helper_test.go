package trace

import (
	"repro/internal/core"
	"repro/internal/scenario"
)

func coreNewPlacement(sc *scenario.Scenario) *core.Placement {
	return core.NewPlacement(sc.Sys)
}
