package core

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// testSystem builds a small hand-checkable system:
// 3 servers on a line (0-1-2, unit hops), 2 sites.
// Origins: site 0 at distance {4,3,2}, site 1 at distance {1,2,3}.
func testSystem() *System {
	return &System{
		CostServer: [][]float64{
			{0, 1, 2},
			{1, 0, 1},
			{2, 1, 0},
		},
		CostOrigin: [][]float64{
			{4, 1},
			{3, 2},
			{2, 3},
		},
		SiteBytes: []int64{100, 60},
		Capacity:  []int64{150, 150, 150},
		Demand: [][]float64{
			{0.2, 0.1},
			{0.1, 0.2},
			{0.2, 0.2},
		},
	}
}

func TestSystemValidate(t *testing.T) {
	if err := testSystem().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSystemValidateRejects(t *testing.T) {
	mutations := []func(*System){
		func(s *System) { s.Capacity = nil },
		func(s *System) { s.SiteBytes = nil },
		func(s *System) { s.CostServer = s.CostServer[:2] },
		func(s *System) { s.CostServer[0] = s.CostServer[0][:2] },
		func(s *System) { s.CostOrigin[1] = s.CostOrigin[1][:1] },
		func(s *System) { s.Demand[2] = s.Demand[2][:1] },
		func(s *System) { s.CostServer[1][1] = 5 },
		func(s *System) { s.CostServer[0][1] = -1; s.CostServer[1][0] = -1 },
		func(s *System) { s.CostServer[0][1] = 9 }, // asymmetric
		func(s *System) { s.CostOrigin[0][0] = -2 },
		func(s *System) { s.Demand[0][0] = -0.1 },
		func(s *System) { s.Capacity[0] = -1 },
		func(s *System) { s.SiteBytes[0] = 0 },
	}
	for i, m := range mutations {
		s := testSystem()
		m(s)
		if s.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewPlacementInitialState(t *testing.T) {
	sys := testSystem()
	p := NewPlacement(sys)
	for i := 0; i < sys.N(); i++ {
		if p.Free(i) != sys.Capacity[i] {
			t.Fatalf("server %d free %d, want full capacity", i, p.Free(i))
		}
		for j := 0; j < sys.M(); j++ {
			if p.Has(i, j) {
				t.Fatalf("replica (%d,%d) in empty placement", i, j)
			}
			srv, cost := p.Nearest(i, j)
			if srv != Origin || cost != sys.CostOrigin[i][j] {
				t.Fatalf("SN(%d,%d) = (%d,%v), want origin", i, j, srv, cost)
			}
		}
	}
	if p.Replicas() != 0 {
		t.Fatal("fresh placement has replicas")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicateUpdatesNearest(t *testing.T) {
	sys := testSystem()
	p := NewPlacement(sys)
	if err := p.Replicate(1, 0); err != nil {
		t.Fatal(err)
	}
	// Server 1 now serves site 0 locally.
	if srv, cost := p.Nearest(1, 0); srv != 1 || cost != 0 {
		t.Fatalf("SN(1,0) = (%d,%v), want (1,0)", srv, cost)
	}
	// Server 0: replica at 1 costs 1 < origin cost 4.
	if srv, cost := p.Nearest(0, 0); srv != 1 || cost != 1 {
		t.Fatalf("SN(0,0) = (%d,%v), want (1,1)", srv, cost)
	}
	// Server 2: replica at 1 costs 1 < origin cost 2.
	if srv, cost := p.Nearest(2, 0); srv != 1 || cost != 1 {
		t.Fatalf("SN(2,0) = (%d,%v), want (1,1)", srv, cost)
	}
	// Site 1 untouched.
	if srv, _ := p.Nearest(0, 1); srv != Origin {
		t.Fatal("SN for site 1 changed")
	}
	if p.Free(1) != 50 {
		t.Fatalf("free space %d, want 50", p.Free(1))
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicateKeepsCloserOrigin(t *testing.T) {
	sys := testSystem()
	p := NewPlacement(sys)
	// Site 1's origin is at distance 1 from server 0; a replica at
	// server 2 (distance 2) must not displace it.
	if err := p.Replicate(2, 1); err != nil {
		t.Fatal(err)
	}
	if srv, cost := p.Nearest(0, 1); srv != Origin || cost != 1 {
		t.Fatalf("SN(0,1) = (%d,%v), want origin at cost 1", srv, cost)
	}
}

func TestReplicateErrors(t *testing.T) {
	sys := testSystem()
	p := NewPlacement(sys)
	if err := p.Replicate(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Replicate(0, 0); err == nil {
		t.Fatal("duplicate replica accepted")
	}
	// Server 0 has 50 bytes free; site 1 needs 60.
	if err := p.Replicate(0, 1); err == nil {
		t.Fatal("capacity violation accepted")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCanReplicate(t *testing.T) {
	sys := testSystem()
	p := NewPlacement(sys)
	if !p.CanReplicate(0, 0) {
		t.Fatal("feasible replica reported infeasible")
	}
	if err := p.Replicate(0, 0); err != nil {
		t.Fatal(err)
	}
	if p.CanReplicate(0, 0) {
		t.Fatal("existing replica reported feasible")
	}
	if p.CanReplicate(0, 1) {
		t.Fatal("oversized replica reported feasible")
	}
	if !p.CanReplicate(1, 1) {
		t.Fatal("feasible replica reported infeasible")
	}
}

func TestCostNoCaching(t *testing.T) {
	sys := testSystem()
	p := NewPlacement(sys)
	// D = Σ r_ij * C(i, SP_j) initially.
	want := 0.2*4 + 0.1*1 + 0.1*3 + 0.2*2 + 0.2*2 + 0.2*3
	if got := p.Cost(ZeroHitRatio); math.Abs(got-want) > 1e-12 {
		t.Fatalf("initial cost %v, want %v", got, want)
	}
	// Replicating site 0 at server 2 reroutes site-0 demand.
	if err := p.Replicate(2, 0); err != nil {
		t.Fatal(err)
	}
	want = 0.2*2 + 0.1*1 + 0.1*1 + 0.2*2 + 0 + 0.2*3
	if got := p.Cost(ZeroHitRatio); math.Abs(got-want) > 1e-12 {
		t.Fatalf("cost after replica %v, want %v", got, want)
	}
}

func TestCostWithHitRatio(t *testing.T) {
	sys := testSystem()
	p := NewPlacement(sys)
	// A 50% hit ratio everywhere halves the redirection cost.
	full := p.Cost(ZeroHitRatio)
	half := p.Cost(func(i, j int) float64 { return 0.5 })
	if math.Abs(half-full/2) > 1e-12 {
		t.Fatalf("half-hit cost %v, want %v", half, full/2)
	}
	// Perfect caching absorbs everything.
	if got := p.Cost(func(i, j int) float64 { return 1 }); got != 0 {
		t.Fatalf("perfect-cache cost %v, want 0", got)
	}
}

func TestCostMonotoneUnderReplication(t *testing.T) {
	// Adding replicas can never increase the no-cache cost.
	sys := testSystem()
	p := NewPlacement(sys)
	prev := p.Cost(ZeroHitRatio)
	order := []struct{ i, j int }{{0, 0}, {1, 1}, {2, 0}, {2, 1}}
	for _, step := range order {
		if !p.CanReplicate(step.i, step.j) {
			continue
		}
		if err := p.Replicate(step.i, step.j); err != nil {
			t.Fatal(err)
		}
		cur := p.Cost(ZeroHitRatio)
		if cur > prev+1e-12 {
			t.Fatalf("cost rose from %v to %v after replica %v", prev, cur, step)
		}
		prev = cur
	}
}

func TestClone(t *testing.T) {
	sys := testSystem()
	p := NewPlacement(sys)
	if err := p.Replicate(0, 0); err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	if err := q.Replicate(1, 1); err != nil {
		t.Fatal(err)
	}
	if p.Has(1, 1) {
		t.Fatal("clone mutation leaked into original")
	}
	if !q.Has(0, 0) {
		t.Fatal("clone lost existing replica")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if q.Replicas() != 2 || p.Replicas() != 1 {
		t.Fatalf("replica counts %d/%d, want 2/1", q.Replicas(), p.Replicas())
	}
}

// TestRandomizedInvariants drives random feasible replications on random
// systems and checks invariants plus cost monotonicity throughout.
func TestRandomizedInvariants(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		r := xrand.New(seed)
		n, m := 4+r.Intn(8), 3+r.Intn(8)
		sys := randomSystem(r, n, m)
		if err := sys.Validate(); err != nil {
			t.Fatal(err)
		}
		p := NewPlacement(sys)
		prev := p.Cost(ZeroHitRatio)
		for step := 0; step < 200; step++ {
			i, j := r.Intn(n), r.Intn(m)
			if !p.CanReplicate(i, j) {
				continue
			}
			if err := p.Replicate(i, j); err != nil {
				t.Fatal(err)
			}
			cur := p.Cost(ZeroHitRatio)
			if cur > prev+1e-9 {
				t.Fatalf("seed %d: cost increased %v -> %v", seed, prev, cur)
			}
			prev = cur
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// randomSystem builds a random valid system with metric-ish costs derived
// from random points on a line (guarantees symmetry and zero diagonal).
func randomSystem(r *xrand.Source, n, m int) *System {
	pos := make([]float64, n)
	for i := range pos {
		pos[i] = r.Float64() * 10
	}
	sys := &System{
		CostServer: make([][]float64, n),
		CostOrigin: make([][]float64, n),
		Demand:     make([][]float64, n),
		SiteBytes:  make([]int64, m),
		Capacity:   make([]int64, n),
	}
	originPos := make([]float64, m)
	for j := range originPos {
		originPos[j] = r.Float64() * 10
		sys.SiteBytes[j] = int64(10 + r.Intn(90))
	}
	for i := 0; i < n; i++ {
		sys.CostServer[i] = make([]float64, n)
		sys.CostOrigin[i] = make([]float64, m)
		sys.Demand[i] = make([]float64, m)
		sys.Capacity[i] = int64(50 + r.Intn(200))
		for k := 0; k < n; k++ {
			sys.CostServer[i][k] = math.Abs(pos[i] - pos[k])
		}
		for j := 0; j < m; j++ {
			sys.CostOrigin[i][j] = math.Abs(pos[i]-originPos[j]) + 1
			sys.Demand[i][j] = r.Float64()
		}
	}
	return sys
}

func TestWithServersDown(t *testing.T) {
	s := testSystem()
	view, err := s.WithServersDown([]bool{true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if view.Capacity[0] != 0 || view.Capacity[2] != 0 {
		t.Fatalf("down servers kept capacity: %v", view.Capacity)
	}
	if view.Capacity[1] != s.Capacity[1] {
		t.Fatalf("healthy server capacity changed: %d", view.Capacity[1])
	}
	// The original is untouched and the view shares everything else.
	if s.Capacity[0] != 150 {
		t.Fatalf("base system mutated: %v", s.Capacity)
	}
	if &view.Demand[0][0] != &s.Demand[0][0] {
		t.Fatal("demand not shared with the base system")
	}
	if err := view.Validate(); err != nil {
		t.Fatalf("down view does not validate: %v", err)
	}
	if _, err := s.WithServersDown([]bool{true}); err == nil {
		t.Fatal("wrong-length down vector accepted")
	}
}
