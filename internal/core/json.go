package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// placementDoc is the serialized form of a placement decision: just the
// replica list plus the system dimensions it was computed for. A CDN
// operator persists the controller's decision and reloads it at the
// edge; the SN tables and free-space accounting are derived on load.
type placementDoc struct {
	Servers  int      `json:"servers"`
	Sites    int      `json:"sites"`
	Replicas [][2]int `json:"replicas"` // (server, site) pairs
}

// SaveJSON writes the placement's replica set as JSON.
func (p *Placement) SaveJSON(w io.Writer) error {
	doc := placementDoc{Servers: p.sys.N(), Sites: p.sys.M()}
	for i := 0; i < p.sys.N(); i++ {
		for j := 0; j < p.sys.M(); j++ {
			if p.x[i][j] {
				doc.Replicas = append(doc.Replicas, [2]int{i, j})
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadJSON reconstructs a placement over sys from SaveJSON output. It
// verifies dimensions and replays every replica through the capacity
// checks, so a document saved for a different deployment fails loudly
// rather than corrupting state.
func LoadJSON(sys *System, r io.Reader) (*Placement, error) {
	var doc placementDoc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: decoding placement: %w", err)
	}
	if doc.Servers != sys.N() || doc.Sites != sys.M() {
		return nil, fmt.Errorf("core: placement is for a %dx%d system, this one is %dx%d",
			doc.Servers, doc.Sites, sys.N(), sys.M())
	}
	p := NewPlacement(sys)
	for _, pair := range doc.Replicas {
		i, j := pair[0], pair[1]
		if i < 0 || i >= sys.N() || j < 0 || j >= sys.M() {
			return nil, fmt.Errorf("core: replica (%d,%d) out of range", i, j)
		}
		if err := p.Replicate(i, j); err != nil {
			return nil, fmt.Errorf("core: replaying placement: %w", err)
		}
	}
	return p, nil
}
