// Package core implements the paper's system model (§3): N CDN servers
// with storage capacities s(i), M hosted sites with sizes o_j and one
// primary copy each, hop-count communication costs C(i,j), the boolean
// replication matrix X, the nearest-replicator tables SN, and the
// cumulative transfer cost
//
//	D = Σ_i Σ_j (r_j^(i) − l_j^(i)) · C(i, SN_j^(i))
//
// that the replica placement problem minimizes subject to the per-server
// storage constraint Σ_j X_ij·o_j ≤ s(i) (§3.1).
//
// A Placement tracks X incrementally: creating a replica updates the
// nearest-replicator table of every server in O(N) and the remaining free
// space (which the hybrid scheme hands to the LRU cache). The placement
// algorithms in internal/placement drive this type.
package core

import "fmt"

// System is an immutable description of one CDN deployment: topology
// costs, site sizes and per-server demand. Placements reference a System
// and never modify it.
type System struct {
	// CostServer[i][k] is C(i,k) between servers i and k in hops;
	// symmetric with zero diagonal.
	CostServer [][]float64
	// CostOrigin[i][j] is C(i, SP_j): server i to the origin (primary
	// site) of site j.
	CostOrigin [][]float64
	// SiteBytes[j] is o_j.
	SiteBytes []int64
	// Capacity[i] is s(i) in bytes.
	Capacity []int64
	// Demand[i][j] is r_j^(i), the request rate of server i for site
	// j. Any positive scale; the experiments normalize ΣΣ = 1 so that
	// costs read as hops per request.
	Demand [][]float64
}

// N returns the number of CDN servers.
func (s *System) N() int { return len(s.Capacity) }

// M returns the number of hosted sites.
func (s *System) M() int { return len(s.SiteBytes) }

// Validate checks structural consistency; placement algorithms assume a
// valid System and do not re-check.
func (s *System) Validate() error {
	n, m := s.N(), s.M()
	if n == 0 || m == 0 {
		return fmt.Errorf("core: empty system (N=%d, M=%d)", n, m)
	}
	if len(s.CostServer) != n || len(s.CostOrigin) != n || len(s.Demand) != n {
		return fmt.Errorf("core: matrix row counts disagree with N=%d", n)
	}
	for i := 0; i < n; i++ {
		if len(s.CostServer[i]) != n {
			return fmt.Errorf("core: CostServer[%d] has %d cols, want %d", i, len(s.CostServer[i]), n)
		}
		if len(s.CostOrigin[i]) != m {
			return fmt.Errorf("core: CostOrigin[%d] has %d cols, want %d", i, len(s.CostOrigin[i]), m)
		}
		if len(s.Demand[i]) != m {
			return fmt.Errorf("core: Demand[%d] has %d cols, want %d", i, len(s.Demand[i]), m)
		}
		if s.CostServer[i][i] != 0 {
			return fmt.Errorf("core: CostServer[%d][%d] = %v, want 0", i, i, s.CostServer[i][i])
		}
		if s.Capacity[i] < 0 {
			return fmt.Errorf("core: Capacity[%d] = %d", i, s.Capacity[i])
		}
		for k := 0; k < n; k++ {
			if s.CostServer[i][k] < 0 {
				return fmt.Errorf("core: negative cost C(%d,%d)", i, k)
			}
			if s.CostServer[i][k] != s.CostServer[k][i] {
				return fmt.Errorf("core: asymmetric cost C(%d,%d)", i, k)
			}
		}
		for j := 0; j < m; j++ {
			if s.CostOrigin[i][j] < 0 {
				return fmt.Errorf("core: negative origin cost C(%d, SP_%d)", i, j)
			}
			if s.Demand[i][j] < 0 {
				return fmt.Errorf("core: negative demand r_%d^(%d)", j, i)
			}
		}
	}
	for j, o := range s.SiteBytes {
		if o <= 0 {
			return fmt.Errorf("core: SiteBytes[%d] = %d", j, o)
		}
	}
	return nil
}

// WithDemand derives a System that shares this one's costs, site sizes
// and capacities but substitutes the given demand matrix — the entry
// point for re-running a placement algorithm against freshly estimated
// demand on an unchanged deployment (the online control loop does this
// every reconcile round).
func (s *System) WithDemand(demand [][]float64) (*System, error) {
	if len(demand) != s.N() {
		return nil, fmt.Errorf("core: %d demand rows for %d servers", len(demand), s.N())
	}
	for i, row := range demand {
		if len(row) != s.M() {
			return nil, fmt.Errorf("core: demand row %d has %d cols, want %d", i, len(row), s.M())
		}
		for j, r := range row {
			if r < 0 {
				return nil, fmt.Errorf("core: negative demand r_%d^(%d)", j, i)
			}
		}
	}
	return &System{
		CostServer: s.CostServer,
		CostOrigin: s.CostOrigin,
		SiteBytes:  s.SiteBytes,
		Capacity:   s.Capacity,
		Demand:     demand,
	}, nil
}

// WithServersDown derives a System in which the marked servers cannot
// hold replicas: their storage capacity is zeroed. Costs, site sizes and
// demand are shared unchanged — a down server's clients still generate
// demand (the serving layer re-dispatches them), it just must not be a
// replication target. The failure-reactive control loop runs the
// placement algorithm on this view so ejected servers are excluded from
// new plans.
func (s *System) WithServersDown(down []bool) (*System, error) {
	if len(down) != s.N() {
		return nil, fmt.Errorf("core: %d down flags for %d servers", len(down), s.N())
	}
	capacity := append([]int64(nil), s.Capacity...)
	for i, d := range down {
		if d {
			capacity[i] = 0
		}
	}
	return &System{
		CostServer: s.CostServer,
		CostOrigin: s.CostOrigin,
		SiteBytes:  s.SiteBytes,
		Capacity:   capacity,
		Demand:     s.Demand,
	}, nil
}

// Origin is the sentinel "server index" of a site's primary copy in
// nearest-replicator tables.
const Origin = -1

// Placement is the mutable replication state: the X matrix of §3.1 plus
// the derived nearest-replicator (SN) tables and per-server free space.
type Placement struct {
	sys *System
	x   [][]bool
	// nearest[i][j] is SN_j^(i): the server holding the replica of
	// site j closest to server i, or Origin.
	nearest [][]int
	// nearestCost[i][j] is C(i, SN_j^(i)); 0 when X_ij = 1.
	nearestCost [][]float64
	free        []int64
	replicas    int
}

// NewPlacement returns the empty placement: only primary copies exist,
// every SN points at the origin, and all storage is free (the hybrid
// algorithm's "all storage space is given to caching" starting state).
func NewPlacement(sys *System) *Placement {
	n, m := sys.N(), sys.M()
	p := &Placement{
		sys:         sys,
		x:           make([][]bool, n),
		nearest:     make([][]int, n),
		nearestCost: make([][]float64, n),
		free:        make([]int64, n),
	}
	for i := 0; i < n; i++ {
		p.x[i] = make([]bool, m)
		p.nearest[i] = make([]int, m)
		p.nearestCost[i] = make([]float64, m)
		p.free[i] = sys.Capacity[i]
		for j := 0; j < m; j++ {
			p.nearest[i][j] = Origin
			p.nearestCost[i][j] = sys.CostOrigin[i][j]
		}
	}
	return p
}

// System returns the system the placement belongs to.
func (p *Placement) System() *System { return p.sys }

// Has reports X_ij.
func (p *Placement) Has(i, j int) bool { return p.x[i][j] }

// Free returns the unreplicated bytes of server i — the cache space under
// the hybrid scheme.
func (p *Placement) Free(i int) int64 { return p.free[i] }

// Replicas returns the total number of replicas created.
func (p *Placement) Replicas() int { return p.replicas }

// Nearest returns SN_j^(i) (a server index, or Origin) and its cost.
// If X_ij = 1 it returns (i, 0).
func (p *Placement) Nearest(i, j int) (server int, cost float64) {
	return p.nearest[i][j], p.nearestCost[i][j]
}

// NearestCost returns C(i, SN_j^(i)).
func (p *Placement) NearestCost(i, j int) float64 { return p.nearestCost[i][j] }

// CanReplicate reports whether site j fits into server i's free space and
// is not already replicated there.
func (p *Placement) CanReplicate(i, j int) bool {
	return !p.x[i][j] && p.sys.SiteBytes[j] <= p.free[i]
}

// Replicate creates the replica (i, j), updating free space and every
// server's SN entry for site j. It returns an error if the replica
// already exists or violates the capacity constraint.
func (p *Placement) Replicate(i, j int) error {
	_, err := p.ReplicateTracked(i, j)
	return err
}

// ReplicateTracked is Replicate that also reports the servers whose
// SN entry for site j strictly improved (the placement algorithms use
// this for exact incremental benefit maintenance). The slice is freshly
// allocated and always includes i when the call succeeds.
func (p *Placement) ReplicateTracked(i, j int) ([]int, error) {
	if p.x[i][j] {
		return nil, fmt.Errorf("core: replica (%d,%d) already exists", i, j)
	}
	if o := p.sys.SiteBytes[j]; o > p.free[i] {
		return nil, fmt.Errorf("core: site %d (%d bytes) exceeds free space %d at server %d",
			j, o, p.free[i], i)
	}
	p.x[i][j] = true
	p.free[i] -= p.sys.SiteBytes[j]
	p.replicas++
	// The new replica can only improve SN entries for site j.
	var improved []int
	for k := 0; k < p.sys.N(); k++ {
		if c := p.sys.CostServer[k][i]; c < p.nearestCost[k][j] {
			p.nearest[k][j] = i
			p.nearestCost[k][j] = c
			improved = append(improved, k)
		}
	}
	// i itself is always affected (its free space changed) even if its
	// SN entry was already optimal.
	if len(improved) == 0 || improved[0] != i {
		found := false
		for _, k := range improved {
			if k == i {
				found = true
				break
			}
		}
		if !found {
			improved = append(improved, i)
		}
	}
	return improved, nil
}

// Clone deep-copies the placement (the System is shared).
func (p *Placement) Clone() *Placement {
	q := &Placement{sys: p.sys, replicas: p.replicas}
	q.x = make([][]bool, len(p.x))
	q.nearest = make([][]int, len(p.nearest))
	q.nearestCost = make([][]float64, len(p.nearestCost))
	q.free = append([]int64(nil), p.free...)
	for i := range p.x {
		q.x[i] = append([]bool(nil), p.x[i]...)
		q.nearest[i] = append([]int(nil), p.nearest[i]...)
		q.nearestCost[i] = append([]float64(nil), p.nearestCost[i]...)
	}
	return q
}

// RebuildOn replays this placement's replica set onto another System of
// the same shape (typically one derived via WithDemand): the objective
// of an existing placement can then be evaluated under fresh demand.
// The copy is independent of the receiver.
func (p *Placement) RebuildOn(sys *System) (*Placement, error) {
	if sys.N() != p.sys.N() || sys.M() != p.sys.M() {
		return nil, fmt.Errorf("core: rebuild onto %dx%d system, placement is %dx%d",
			sys.N(), sys.M(), p.sys.N(), p.sys.M())
	}
	q := NewPlacement(sys)
	for i := 0; i < p.sys.N(); i++ {
		for j := 0; j < p.sys.M(); j++ {
			if p.x[i][j] {
				if err := q.Replicate(i, j); err != nil {
					return nil, err
				}
			}
		}
	}
	return q, nil
}

// HitRatioFunc supplies the expected local-service fraction h_j^(i) for a
// (server, site) pair under the current cache configuration. The pure
// replication problem uses ZeroHitRatio.
type HitRatioFunc func(i, j int) float64

// ZeroHitRatio models a system without caches: l_j^(i) = 0 everywhere.
func ZeroHitRatio(i, j int) float64 { return 0 }

// Cost evaluates the paper's objective D for this placement:
//
//	D = Σ_i Σ_j (1 − h_j^(i)) · r_j^(i) · C(i, SN_j^(i))
//
// Replicated pairs contribute zero (C(i,i) = 0). With demand normalized
// to 1, D is the expected cost per request in hops.
func (p *Placement) Cost(h HitRatioFunc) float64 {
	total := 0.0
	for i := 0; i < p.sys.N(); i++ {
		for j := 0; j < p.sys.M(); j++ {
			c := p.nearestCost[i][j]
			if c == 0 {
				continue
			}
			total += (1 - h(i, j)) * p.sys.Demand[i][j] * c
		}
	}
	return total
}

// UpdateCost evaluates the update-propagation component of the
// read-plus-update FAP objective (§2.2, [19, 28]): every update to site
// j travels from its primary copy to each replica,
//
//	U = Σ_j u_j · Σ_i X_ij · C(i, SP_j),
//
// where updateRates[j] is u_j on the same scale as the read demand.
// The paper's experiments use u = 0 (read-only); the update-sweep
// extension exercises this term.
func (p *Placement) UpdateCost(updateRates []float64) float64 {
	if len(updateRates) != p.sys.M() {
		panic(fmt.Sprintf("core: %d update rates for %d sites", len(updateRates), p.sys.M()))
	}
	total := 0.0
	for j := 0; j < p.sys.M(); j++ {
		if updateRates[j] == 0 {
			continue
		}
		for i := 0; i < p.sys.N(); i++ {
			if p.x[i][j] {
				total += updateRates[j] * p.sys.CostOrigin[i][j]
			}
		}
	}
	return total
}

// CheckInvariants verifies the internal consistency of the placement
// against a recomputation from scratch; used by tests and enabled in the
// simulator's debug path.
func (p *Placement) CheckInvariants() error {
	for i := 0; i < p.sys.N(); i++ {
		var used int64
		for j := 0; j < p.sys.M(); j++ {
			if p.x[i][j] {
				used += p.sys.SiteBytes[j]
			}
			// Recompute SN_j^(i) from scratch.
			bestSrv, bestCost := Origin, p.sys.CostOrigin[i][j]
			for k := 0; k < p.sys.N(); k++ {
				if p.x[k][j] && p.sys.CostServer[i][k] < bestCost {
					bestSrv, bestCost = k, p.sys.CostServer[i][k]
				}
			}
			if p.nearestCost[i][j] != bestCost {
				return fmt.Errorf("core: SN cost (%d,%d) = %v, recomputed %v",
					i, j, p.nearestCost[i][j], bestCost)
			}
			_ = bestSrv // cost equality is the binding invariant; ties may differ
		}
		if used+p.free[i] != p.sys.Capacity[i] {
			return fmt.Errorf("core: server %d used %d + free %d != capacity %d",
				i, used, p.free[i], p.sys.Capacity[i])
		}
		if p.free[i] < 0 {
			return fmt.Errorf("core: server %d negative free space", i)
		}
	}
	return nil
}
