package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/xrand"
)

func TestPlacementJSONRoundTrip(t *testing.T) {
	sys := testSystem()
	p := NewPlacement(sys)
	if err := p.Replicate(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Replicate(1, 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := LoadJSON(sys, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Replicas() != 2 || !q.Has(0, 0) || !q.Has(1, 1) {
		t.Fatal("replica set lost in round trip")
	}
	// Derived state (SN tables, free space) must be identical.
	for i := 0; i < sys.N(); i++ {
		if q.Free(i) != p.Free(i) {
			t.Fatalf("server %d free space %d vs %d", i, q.Free(i), p.Free(i))
		}
		for j := 0; j < sys.M(); j++ {
			if q.NearestCost(i, j) != p.NearestCost(i, j) {
				t.Fatalf("SN cost (%d,%d) differs", i, j)
			}
		}
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadJSONRejects(t *testing.T) {
	sys := testSystem()
	cases := []string{
		`not json`,
		`{"servers": 99, "sites": 2, "replicas": []}`,
		`{"servers": 3, "sites": 99, "replicas": []}`,
		`{"servers": 3, "sites": 2, "replicas": [[5, 0]]}`,
		`{"servers": 3, "sites": 2, "replicas": [[0, -1]]}`,
		`{"servers": 3, "sites": 2, "replicas": [[0, 0], [0, 0]]}`, // duplicate
		`{"servers": 3, "sites": 2, "unknown": 1, "replicas": []}`,
	}
	for i, raw := range cases {
		if _, err := LoadJSON(sys, strings.NewReader(raw)); err == nil {
			t.Errorf("case %d accepted: %s", i, raw)
		}
	}
}

func TestLoadJSONRejectsOverCapacity(t *testing.T) {
	sys := testSystem()
	// Both sites at server 0 exceed its 150-byte capacity (100+60).
	raw := `{"servers": 3, "sites": 2, "replicas": [[0, 0], [0, 1]]}`
	if _, err := LoadJSON(sys, strings.NewReader(raw)); err == nil {
		t.Fatal("over-capacity placement accepted")
	}
}

func TestJSONRoundTripRandom(t *testing.T) {
	r := xrand.New(5)
	sys := randomSystem(r, 8, 6)
	p := NewPlacement(sys)
	for step := 0; step < 100; step++ {
		i, j := r.Intn(8), r.Intn(6)
		if p.CanReplicate(i, j) {
			if err := p.Replicate(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	var buf bytes.Buffer
	if err := p.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := LoadJSON(sys, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Replicas() != p.Replicas() {
		t.Fatalf("replica count %d vs %d", q.Replicas(), p.Replicas())
	}
	if q.Cost(ZeroHitRatio) != p.Cost(ZeroHitRatio) {
		t.Fatal("cost differs after round trip")
	}
}
