package scenario

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// SmallConfig is a fast, fully wired configuration shared by the scenario
// and simulator tests: 22-node topology, 8 servers, 8 sites.
func SmallConfig() Config {
	w := workload.DefaultConfig()
	w.Servers = 8
	w.LowSites, w.MediumSites, w.HighSites = 2, 4, 2
	w.ObjectsPerSite = 100
	return Config{
		Topology: topology.Config{
			TransitDomains:        1,
			TransitNodesPerDomain: 2,
			StubsPerTransitNode:   2,
			StubNodesPerStub:      5,
			ExtraEdgeProb:         0.3,
		},
		Workload:     w,
		CapacityFrac: 0.15,
		Seed:         1,
	}
}

func TestDefaultBuilds(t *testing.T) {
	sc := MustBuild(Default())
	if sc.Sys.N() != 50 || sc.Sys.M() != 20 {
		t.Fatalf("N=%d M=%d, want 50/20", sc.Sys.N(), sc.Sys.M())
	}
	if got := sc.Topo.G.N(); got < 500 {
		t.Fatalf("topology has %d nodes, want ~560", got)
	}
}

func TestBuildSmall(t *testing.T) {
	cfg := SmallConfig()
	sc := MustBuild(cfg)
	if err := sc.Sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sc.ServerNodes) != 8 || len(sc.OriginNodes) != 8 {
		t.Fatalf("placed %d servers, %d origins", len(sc.ServerNodes), len(sc.OriginNodes))
	}
	// Server and origin nodes must be distinct stub nodes.
	seen := map[int]bool{}
	for _, n := range append(append([]int{}, sc.ServerNodes...), sc.OriginNodes...) {
		if seen[n] {
			t.Fatalf("node %d reused", n)
		}
		if sc.Topo.StubOf[n] < 0 {
			t.Fatalf("node %d is not in a stub domain", n)
		}
		seen[n] = true
	}
}

func TestCapacityFraction(t *testing.T) {
	cfg := SmallConfig()
	sc := MustBuild(cfg)
	want := int64(cfg.CapacityFrac * float64(sc.Work.TotalBytes))
	for i, c := range sc.Sys.Capacity {
		if c != want {
			t.Fatalf("server %d capacity %d, want homogeneous %d", i, c, want)
		}
	}
}

func TestCostsAreGraphDistances(t *testing.T) {
	sc := MustBuild(SmallConfig())
	// Spot-check: recompute a couple of rows with Dijkstra directly.
	d0 := sc.Topo.G.Dijkstra(sc.ServerNodes[0])
	for k, node := range sc.ServerNodes {
		if sc.Sys.CostServer[0][k] != d0[node] {
			t.Fatalf("CostServer[0][%d] = %v, Dijkstra %v", k, sc.Sys.CostServer[0][k], d0[node])
		}
	}
	for j, node := range sc.OriginNodes {
		if sc.Sys.CostOrigin[0][j] != d0[node] {
			t.Fatalf("CostOrigin[0][%d] = %v, Dijkstra %v", j, sc.Sys.CostOrigin[0][j], d0[node])
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := MustBuild(SmallConfig())
	b := MustBuild(SmallConfig())
	for i := range a.Sys.CostServer {
		for k := range a.Sys.CostServer[i] {
			if a.Sys.CostServer[i][k] != b.Sys.CostServer[i][k] {
				t.Fatal("cost matrices differ across identical builds")
			}
		}
	}
	if a.Work.TotalBytes != b.Work.TotalBytes {
		t.Fatal("workloads differ across identical builds")
	}
	cfg := SmallConfig()
	cfg.Seed = 2
	c := MustBuild(cfg)
	same := true
	for i := range a.ServerNodes {
		if a.ServerNodes[i] != c.ServerNodes[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical server placement (suspicious)")
	}
}

func TestHeterogeneousCapacity(t *testing.T) {
	cfg := SmallConfig()
	cfg.CapacitySpread = 0.8
	sc := MustBuild(cfg)
	base := int64(cfg.CapacityFrac * float64(sc.Work.TotalBytes))
	var total int64
	varied := false
	for _, c := range sc.Sys.Capacity {
		if c < 0 {
			t.Fatalf("negative capacity %d", c)
		}
		if c != sc.Sys.Capacity[0] {
			varied = true
		}
		total += c
	}
	if !varied {
		t.Fatal("spread > 0 produced homogeneous capacities")
	}
	// Aggregate capacity is preserved within rounding.
	want := base * int64(len(sc.Sys.Capacity))
	if diff := total - want; diff < -int64(len(sc.Sys.Capacity)) || diff > int64(len(sc.Sys.Capacity)) {
		t.Fatalf("total capacity %d, want ~%d", total, want)
	}
	// Spread 0 stays homogeneous.
	cfg.CapacitySpread = 0
	sc0 := MustBuild(cfg)
	for _, c := range sc0.Sys.Capacity {
		if c != sc0.Sys.Capacity[0] {
			t.Fatal("spread 0 produced heterogeneous capacities")
		}
	}
	cfg.CapacitySpread = -1
	if _, err := Build(cfg); err == nil {
		t.Fatal("negative spread accepted")
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	cfg := SmallConfig()
	cfg.CapacityFrac = -0.1
	if _, err := Build(cfg); err == nil {
		t.Fatal("negative capacity fraction accepted")
	}
	cfg = SmallConfig()
	cfg.Workload.Servers = 0
	if _, err := Build(cfg); err == nil {
		t.Fatal("invalid workload accepted")
	}
	cfg = SmallConfig()
	cfg.Topology.TransitDomains = 0
	if _, err := Build(cfg); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestStream(t *testing.T) {
	sc := MustBuild(SmallConfig())
	s := sc.Stream(xrand.New(3))
	for i := 0; i < 1000; i++ {
		req := s.Next()
		if req.Server < 0 || req.Server >= sc.Sys.N() || req.Site < 0 || req.Site >= sc.Sys.M() {
			t.Fatalf("out-of-range request %+v", req)
		}
	}
}

func TestScale(t *testing.T) {
	base := Default()
	if got := Scale(base, 1); got != base {
		t.Fatalf("Scale ×1 changed the config: %+v", got)
	}
	s4 := Scale(base, 4)
	if s4.Topology.TransitDomains != 4*base.Topology.TransitDomains {
		t.Fatalf("transit domains %d, want ×4", s4.Topology.TransitDomains)
	}
	if s4.Workload.Servers != 4*base.Workload.Servers || s4.Workload.Sites() != 4*base.Workload.Sites() {
		t.Fatalf("workload not ×4: %+v", s4.Workload)
	}
	if s4.CapacityFrac != base.CapacityFrac/4 {
		t.Fatalf("capacity frac %v, want %v", s4.CapacityFrac, base.CapacityFrac/4)
	}
	if err := s4.Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
	// Per-server capacity stays constant in site-equivalents: total
	// bytes grow ~×4 while the fraction shrinks ×4.
	sc := MustBuild(s4)
	if n := sc.Sys.N(); n != 200 {
		t.Fatalf("built %d servers, want 200", n)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Scale(cfg, 0) did not panic")
		}
	}()
	Scale(base, 0)
}
