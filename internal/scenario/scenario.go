// Package scenario assembles a complete experiment instance the way §5.1
// describes: generate a transit–stub topology, place the N CDN servers
// and the M primary sites in randomly selected stub domains, compute
// hop-count shortest paths from every server, synthesize the SURGE-like
// workload, and size the homogeneous server storage as a percentage of
// the cumulative size of all web sites.
package scenario

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Config describes one experiment instance.
type Config struct {
	Topology topology.Config
	Workload workload.Config
	// CapacityFrac is the per-server storage capacity as a fraction of
	// Σ_j o_j (the paper evaluates 5%, 10% and 20%).
	CapacityFrac float64
	// CapacitySpread makes servers heterogeneous: capacities become
	// lognormal with this σ around the homogeneous value, rescaled so
	// the total capacity matches the homogeneous case. 0 reproduces
	// the paper's "homogeneous servers" assumption (§5.1).
	CapacitySpread float64
	// Seed derives every random stream of the instance.
	Seed uint64
}

// Default returns the paper's §5.1 setup: ~560-node transit–stub graph,
// 50 servers, 20 sites, 5% capacity.
func Default() Config {
	return Config{
		Topology:     topology.DefaultConfig(),
		Workload:     workload.DefaultConfig(),
		CapacityFrac: 0.05,
		Seed:         1,
	}
}

// Scale returns cfg grown by an integer factor: factor× the transit
// domains (the topology's node count grows linearly with them), factor×
// the servers and factor× every site-popularity class, with CapacityFrac
// divided by factor so each server's storage stays constant in
// site-equivalents (the paper sizes storage as a percentage of Σ o_j,
// which itself grows with the site count). Scale(cfg, 1) == cfg; the
// 10× paper-scale experiments use Scale(Default(), 10).
func Scale(cfg Config, factor int) Config {
	if factor < 1 {
		panic(fmt.Sprintf("scenario: Scale factor %d", factor))
	}
	out := cfg
	out.Topology.TransitDomains *= factor
	out.Workload.Servers *= factor
	out.Workload.LowSites *= factor
	out.Workload.MediumSites *= factor
	out.Workload.HighSites *= factor
	out.CapacityFrac /= float64(factor)
	return out
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.CapacityFrac < 0 || c.CapacityFrac > 1 {
		return fmt.Errorf("scenario: CapacityFrac = %v", c.CapacityFrac)
	}
	if c.CapacitySpread < 0 {
		return fmt.Errorf("scenario: CapacitySpread = %v", c.CapacitySpread)
	}
	return nil
}

// Scenario is a fully built experiment instance.
type Scenario struct {
	Cfg         Config
	Topo        *topology.Topology
	Work        *workload.Workload
	Sys         *core.System
	ServerNodes []int // graph node of each CDN server
	OriginNodes []int // graph node of each site's primary copy
}

// Build constructs the scenario deterministically from cfg.
func Build(cfg Config) (*Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed)

	topo := topology.Generate(cfg.Topology, root.Split("topology"))
	work, err := workload.Generate(cfg.Workload, root.Split("workload"))
	if err != nil {
		return nil, err
	}

	n := cfg.Workload.Servers
	m := cfg.Workload.Sites()
	nodes := topo.PlaceInStubs(n+m, root.Split("placement"))
	serverNodes := nodes[:n]
	originNodes := nodes[n:]

	// One Dijkstra per server gives both cost matrices (§5.1: "Using
	// Dijkstra's algorithm, we calculated the shortest path (in terms
	// of number of hops) from each server towards every other server
	// and primary site").
	rows := topo.G.ShortestPathsFrom(serverNodes)
	sys := &core.System{
		CostServer: make([][]float64, n),
		CostOrigin: make([][]float64, n),
		Demand:     work.Demand,
		SiteBytes:  work.SiteBytes(),
		Capacity:   make([]int64, n),
	}
	capacities := capacityVector(cfg, work.TotalBytes, n, root.Split("capacity"))
	for i := 0; i < n; i++ {
		sys.CostServer[i] = make([]float64, n)
		sys.CostOrigin[i] = make([]float64, m)
		for k := 0; k < n; k++ {
			sys.CostServer[i][k] = rows[i][serverNodes[k]]
		}
		for j := 0; j < m; j++ {
			sys.CostOrigin[i][j] = rows[i][originNodes[j]]
		}
		sys.Capacity[i] = capacities[i]
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: built an invalid system: %w", err)
	}
	return &Scenario{
		Cfg:         cfg,
		Topo:        topo,
		Work:        work,
		Sys:         sys,
		ServerNodes: serverNodes,
		OriginNodes: originNodes,
	}, nil
}

// capacityVector draws the per-server capacities: homogeneous at
// CapacityFrac·totalBytes, or lognormal around it (rescaled to preserve
// the aggregate) when CapacitySpread > 0.
func capacityVector(cfg Config, totalBytes int64, n int, r *xrand.Source) []int64 {
	base := cfg.CapacityFrac * float64(totalBytes)
	out := make([]int64, n)
	if cfg.CapacitySpread == 0 {
		for i := range out {
			out[i] = int64(base)
		}
		return out
	}
	raw := make([]float64, n)
	sum := 0.0
	for i := range raw {
		raw[i] = math.Exp(cfg.CapacitySpread * r.NormFloat64())
		sum += raw[i]
	}
	for i := range out {
		out[i] = int64(base * float64(n) * raw[i] / sum)
	}
	return out
}

// MustBuild is Build for known-good configurations.
func MustBuild(cfg Config) *Scenario {
	sc, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return sc
}

// Stream returns a fresh request stream over the scenario's workload.
func (s *Scenario) Stream(r *xrand.Source) *workload.Stream {
	return workload.NewStream(s.Work, r)
}
