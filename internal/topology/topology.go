// Package topology generates GT-ITM-style transit–stub network graphs.
//
// The paper's evaluation (§5.1) uses the GT-ITM topology generator to
// build "a random transit-stub graph with a total of 560 nodes", places
// each CDN server and each primary site inside a randomly selected stub
// domain, and derives the communication cost C(i, j) as the hop-count
// shortest path. GT-ITM itself is a C tool; this package reimplements its
// transit–stub construction:
//
//   - a top level of transit domains, internally connected random graphs,
//     joined to each other so the domain-level graph is connected;
//   - per transit node, a number of stub domains — small connected random
//     graphs — each attached to its transit node by an access edge.
//
// All edges have unit weight, so shortest paths are hop counts as in the
// paper. The default configuration yields 544 nodes (16 transit nodes,
// 48 stub domains of 11 nodes), matching the paper's ~560-node scale.
package topology

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Config sizes the transit–stub hierarchy.
type Config struct {
	// TransitDomains is the number of top-level domains.
	TransitDomains int
	// TransitNodesPerDomain is the number of routers per transit domain.
	TransitNodesPerDomain int
	// StubsPerTransitNode is how many stub domains hang off each
	// transit router.
	StubsPerTransitNode int
	// StubNodesPerStub is the number of routers per stub domain.
	StubNodesPerStub int
	// ExtraEdgeProb is the probability of each additional intra-domain
	// edge beyond the spanning tree that guarantees connectivity.
	ExtraEdgeProb float64
	// ExtraTransitEdges is the number of additional random
	// domain-to-domain edges beyond the domain-level spanning tree.
	ExtraTransitEdges int
}

// DefaultConfig reproduces the paper's scale: 4 transit domains of 4
// nodes, 3 stubs per transit node, 11 nodes per stub = 544 nodes total.
func DefaultConfig() Config {
	return Config{
		TransitDomains:        4,
		TransitNodesPerDomain: 4,
		StubsPerTransitNode:   3,
		StubNodesPerStub:      11,
		ExtraEdgeProb:         0.3,
		ExtraTransitEdges:     4,
	}
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.TransitDomains < 1:
		return fmt.Errorf("topology: TransitDomains = %d, need >= 1", c.TransitDomains)
	case c.TransitNodesPerDomain < 1:
		return fmt.Errorf("topology: TransitNodesPerDomain = %d, need >= 1", c.TransitNodesPerDomain)
	case c.StubsPerTransitNode < 1:
		return fmt.Errorf("topology: StubsPerTransitNode = %d, need >= 1", c.StubsPerTransitNode)
	case c.StubNodesPerStub < 1:
		return fmt.Errorf("topology: StubNodesPerStub = %d, need >= 1", c.StubNodesPerStub)
	case c.ExtraEdgeProb < 0 || c.ExtraEdgeProb > 1:
		return fmt.Errorf("topology: ExtraEdgeProb = %v, need [0,1]", c.ExtraEdgeProb)
	case c.ExtraTransitEdges < 0:
		return fmt.Errorf("topology: ExtraTransitEdges = %d, need >= 0", c.ExtraTransitEdges)
	}
	return nil
}

// TotalNodes returns the node count the configuration produces.
func (c Config) TotalNodes() int {
	transit := c.TransitDomains * c.TransitNodesPerDomain
	return transit + transit*c.StubsPerTransitNode*c.StubNodesPerStub
}

// Topology is a generated transit–stub graph plus the structural metadata
// the CDN model needs for placement.
type Topology struct {
	// G is the unit-weight graph; shortest paths are hop counts.
	G *graph.Graph
	// TransitNodes lists the node ids of all transit routers.
	TransitNodes []int
	// StubDomains lists, per stub domain, the node ids it contains.
	StubDomains [][]int
	// StubOf maps a node id to its stub domain index, or -1 for
	// transit nodes.
	StubOf []int
}

// Generate builds a transit–stub topology from cfg using r. The result is
// always connected. It panics on an invalid configuration (use
// cfg.Validate to pre-check user input).
func Generate(cfg Config, r *xrand.Source) *Topology {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	total := cfg.TotalNodes()
	g := graph.New(total)
	t := &Topology{G: g, StubOf: make([]int, total)}
	for i := range t.StubOf {
		t.StubOf[i] = -1
	}

	// Allocate ids: transit nodes first, then stub nodes.
	next := 0
	domains := make([][]int, cfg.TransitDomains)
	for d := range domains {
		domains[d] = make([]int, cfg.TransitNodesPerDomain)
		for i := range domains[d] {
			domains[d][i] = next
			t.TransitNodes = append(t.TransitNodes, next)
			next++
		}
	}

	// Intra-transit-domain connectivity.
	for d := range domains {
		connectRandom(g, domains[d], cfg.ExtraEdgeProb, r)
	}
	// Domain-level spanning tree: join domain d to a random earlier one.
	for d := 1; d < cfg.TransitDomains; d++ {
		e := r.Intn(d)
		u := domains[d][r.Intn(len(domains[d]))]
		v := domains[e][r.Intn(len(domains[e]))]
		g.AddEdge(u, v, 1)
	}
	// Extra inter-domain edges for path diversity.
	if cfg.TransitDomains > 1 {
		for k := 0; k < cfg.ExtraTransitEdges; k++ {
			d := r.Intn(cfg.TransitDomains)
			e := r.Intn(cfg.TransitDomains)
			if d == e {
				continue
			}
			u := domains[d][r.Intn(len(domains[d]))]
			v := domains[e][r.Intn(len(domains[e]))]
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v, 1)
			}
		}
	}

	// Stub domains.
	for _, tn := range t.TransitNodes {
		for s := 0; s < cfg.StubsPerTransitNode; s++ {
			stub := make([]int, cfg.StubNodesPerStub)
			for i := range stub {
				stub[i] = next
				t.StubOf[next] = len(t.StubDomains)
				next++
			}
			connectRandom(g, stub, cfg.ExtraEdgeProb, r)
			// Access link: a random stub router uplinks to the
			// transit node.
			g.AddEdge(stub[r.Intn(len(stub))], tn, 1)
			t.StubDomains = append(t.StubDomains, stub)
		}
	}
	return t
}

// connectRandom wires nodes into a connected random subgraph: a random
// spanning tree, plus each remaining pair with probability extraProb.
func connectRandom(g *graph.Graph, nodes []int, extraProb float64, r *xrand.Source) {
	if len(nodes) <= 1 {
		return
	}
	perm := r.Perm(len(nodes))
	for i := 1; i < len(perm); i++ {
		g.AddEdge(nodes[perm[i]], nodes[perm[r.Intn(i)]], 1)
	}
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if !g.HasEdge(nodes[i], nodes[j]) && r.Float64() < extraProb {
				g.AddEdge(nodes[i], nodes[j], 1)
			}
		}
	}
}

// WriteDOT emits the topology in Graphviz DOT format: transit routers as
// boxes, stub routers as circles colored by stub domain, so the
// transit–stub hierarchy can be rendered with `dot -Tsvg`.
func (t *Topology) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph transitstub {")
	fmt.Fprintln(bw, "  layout=sfdp; overlap=false;")
	for _, tn := range t.TransitNodes {
		fmt.Fprintf(bw, "  n%d [shape=box, style=filled, fillcolor=gray80, label=\"T%d\"];\n", tn, tn)
	}
	for si, stub := range t.StubDomains {
		color := si % 11
		for _, node := range stub {
			fmt.Fprintf(bw, "  n%d [shape=circle, style=filled, colorscheme=spectral11, fillcolor=%d, label=\"\"];\n",
				node, color+1)
		}
	}
	for u := 0; u < t.G.N(); u++ {
		for _, e := range t.G.Neighbors(u) {
			if u < e.To { // undirected: emit once
				fmt.Fprintf(bw, "  n%d -- n%d;\n", u, e.To)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// PlaceInStubs picks n node ids located in stub domains, one per randomly
// selected stub domain while distinct domains remain (the paper places
// "each server and primary site inside a randomly selected stub domain").
// When n exceeds the number of stub domains, placement wraps around and
// domains are reused, still avoiding duplicate node ids until a domain is
// exhausted. It panics if n exceeds the total number of stub nodes.
func (t *Topology) PlaceInStubs(n int, r *xrand.Source) []int {
	totalStubNodes := 0
	for _, s := range t.StubDomains {
		totalStubNodes += len(s)
	}
	if n > totalStubNodes {
		panic(fmt.Sprintf("topology: cannot place %d nodes in %d stub slots", n, totalStubNodes))
	}
	used := make(map[int]bool, n)
	out := make([]int, 0, n)
	order := r.Perm(len(t.StubDomains))
	for round := 0; len(out) < n; round++ {
		progressed := false
		for _, si := range order {
			if len(out) == n {
				break
			}
			stub := t.StubDomains[si]
			// Pick an unused node from this stub, if any.
			start := r.Intn(len(stub))
			for k := 0; k < len(stub); k++ {
				node := stub[(start+k)%len(stub)]
				if !used[node] {
					used[node] = true
					out = append(out, node)
					progressed = true
					break
				}
			}
		}
		if !progressed {
			panic("topology: placement made no progress") // unreachable given the capacity check
		}
	}
	return out
}
