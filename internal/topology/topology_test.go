package topology

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestDefaultConfigScale(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper uses ~560 nodes; the default must be within 10% of that.
	n := cfg.TotalNodes()
	if n < 504 || n > 616 {
		t.Fatalf("default config has %d nodes, want ~560", n)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := DefaultConfig()
	mutations := []func(*Config){
		func(c *Config) { c.TransitDomains = 0 },
		func(c *Config) { c.TransitNodesPerDomain = 0 },
		func(c *Config) { c.StubsPerTransitNode = 0 },
		func(c *Config) { c.StubNodesPerStub = -1 },
		func(c *Config) { c.ExtraEdgeProb = -0.1 },
		func(c *Config) { c.ExtraEdgeProb = 1.1 },
		func(c *Config) { c.ExtraTransitEdges = -1 },
	}
	for i, m := range mutations {
		c := base
		m(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	cfg := DefaultConfig()
	r := xrand.New(1)
	topo := Generate(cfg, r)

	if got := topo.G.N(); got != cfg.TotalNodes() {
		t.Fatalf("graph has %d nodes, want %d", got, cfg.TotalNodes())
	}
	wantTransit := cfg.TransitDomains * cfg.TransitNodesPerDomain
	if len(topo.TransitNodes) != wantTransit {
		t.Fatalf("%d transit nodes, want %d", len(topo.TransitNodes), wantTransit)
	}
	wantStubs := wantTransit * cfg.StubsPerTransitNode
	if len(topo.StubDomains) != wantStubs {
		t.Fatalf("%d stub domains, want %d", len(topo.StubDomains), wantStubs)
	}
	for si, stub := range topo.StubDomains {
		if len(stub) != cfg.StubNodesPerStub {
			t.Fatalf("stub %d has %d nodes, want %d", si, len(stub), cfg.StubNodesPerStub)
		}
		for _, node := range stub {
			if topo.StubOf[node] != si {
				t.Fatalf("StubOf[%d] = %d, want %d", node, topo.StubOf[node], si)
			}
		}
	}
	for _, tn := range topo.TransitNodes {
		if topo.StubOf[tn] != -1 {
			t.Fatalf("transit node %d has StubOf %d", tn, topo.StubOf[tn])
		}
	}
}

func TestGenerateConnected(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		topo := Generate(DefaultConfig(), xrand.New(seed))
		if !topo.G.Connected() {
			t.Fatalf("seed %d: topology disconnected", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(), xrand.New(5))
	b := Generate(DefaultConfig(), xrand.New(5))
	if a.G.M() != b.G.M() {
		t.Fatalf("edge counts differ: %d vs %d", a.G.M(), b.G.M())
	}
	for u := 0; u < a.G.N(); u++ {
		for _, e := range a.G.Neighbors(u) {
			if !b.G.HasEdge(u, e.To) {
				t.Fatalf("edge {%d,%d} present only in first run", u, e.To)
			}
		}
	}
}

func TestDiameterReasonable(t *testing.T) {
	topo := Generate(DefaultConfig(), xrand.New(2))
	d := topo.G.Diameter()
	if math.IsInf(d, 1) {
		t.Fatal("disconnected")
	}
	// Transit-stub graphs are shallow: stub -> transit -> transit ->
	// transit -> stub plus intra-domain hops. Anything above ~25 hops
	// means the hierarchy was wired wrong.
	if d < 3 || d > 25 {
		t.Fatalf("diameter %v outside plausible transit-stub range", d)
	}
}

func TestSmallestConfig(t *testing.T) {
	cfg := Config{
		TransitDomains:        1,
		TransitNodesPerDomain: 1,
		StubsPerTransitNode:   1,
		StubNodesPerStub:      1,
	}
	topo := Generate(cfg, xrand.New(3))
	if topo.G.N() != 2 {
		t.Fatalf("N=%d, want 2", topo.G.N())
	}
	if !topo.G.Connected() {
		t.Fatal("two-node topology disconnected")
	}
}

func TestPlaceInStubsDistinctDomains(t *testing.T) {
	topo := Generate(DefaultConfig(), xrand.New(7))
	r := xrand.New(8)
	n := len(topo.StubDomains) // exactly one per domain
	nodes := topo.PlaceInStubs(n, r)
	if len(nodes) != n {
		t.Fatalf("placed %d, want %d", len(nodes), n)
	}
	seenDomain := make(map[int]bool)
	seenNode := make(map[int]bool)
	for _, node := range nodes {
		d := topo.StubOf[node]
		if d < 0 {
			t.Fatalf("node %d is not a stub node", node)
		}
		if seenDomain[d] {
			t.Fatalf("domain %d used twice with n <= #domains", d)
		}
		if seenNode[node] {
			t.Fatalf("node %d placed twice", node)
		}
		seenDomain[d] = true
		seenNode[node] = true
	}
}

func TestPlaceInStubsWrapsAround(t *testing.T) {
	cfg := Config{
		TransitDomains:        1,
		TransitNodesPerDomain: 2,
		StubsPerTransitNode:   2,
		StubNodesPerStub:      3,
	}
	topo := Generate(cfg, xrand.New(9))
	// 4 stub domains x 3 nodes = 12 stub nodes; request more than the
	// number of domains so wrap-around kicks in.
	nodes := topo.PlaceInStubs(10, xrand.New(10))
	seen := make(map[int]bool)
	for _, n := range nodes {
		if seen[n] {
			t.Fatalf("node %d reused", n)
		}
		seen[n] = true
	}
}

func TestPlaceInStubsPanicsWhenOverfull(t *testing.T) {
	cfg := Config{
		TransitDomains:        1,
		TransitNodesPerDomain: 1,
		StubsPerTransitNode:   1,
		StubNodesPerStub:      2,
	}
	topo := Generate(cfg, xrand.New(11))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when placing more nodes than stub slots")
		}
	}()
	topo.PlaceInStubs(3, xrand.New(12))
}

func TestGenerateConnectedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		cfg := Config{
			TransitDomains:        1 + r.Intn(4),
			TransitNodesPerDomain: 1 + r.Intn(4),
			StubsPerTransitNode:   1 + r.Intn(3),
			StubNodesPerStub:      1 + r.Intn(8),
			ExtraEdgeProb:         r.Float64() * 0.5,
			ExtraTransitEdges:     r.Intn(5),
		}
		topo := Generate(cfg, r)
		return topo.G.Connected() && topo.G.N() == cfg.TotalNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDOT(t *testing.T) {
	topo := Generate(Config{
		TransitDomains:        1,
		TransitNodesPerDomain: 2,
		StubsPerTransitNode:   2,
		StubNodesPerStub:      3,
	}, xrand.New(21))
	var buf bytes.Buffer
	if err := topo.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph transitstub {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("malformed DOT output:\n%s", out)
	}
	// One node statement per node, one edge statement per edge.
	if got := strings.Count(out, "shape="); got != topo.G.N() {
		t.Fatalf("%d node statements for %d nodes", got, topo.G.N())
	}
	if got := strings.Count(out, " -- "); got != topo.G.M() {
		t.Fatalf("%d edge statements for %d edges", got, topo.G.M())
	}
}

func BenchmarkGenerateDefault(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		Generate(cfg, xrand.New(uint64(i)))
	}
}
