package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// HeterogeneityRow is one capacity-spread level of the robustness sweep.
type HeterogeneityRow struct {
	Spread        float64
	ReplicationMs float64
	CachingMs     float64
	HybridMs      float64
}

// HybridGainPct is the hybrid's gain over the better stand-alone
// mechanism at this spread.
func (r HeterogeneityRow) HybridGainPct() float64 {
	best := r.ReplicationMs
	if r.CachingMs < best {
		best = r.CachingMs
	}
	if best == 0 {
		return 0
	}
	return 100 * (best - r.HybridMs) / best
}

// HeterogeneityComparison relaxes the paper's homogeneous-server
// assumption (§5.1: "we consider the case of homogeneous servers"):
// capacities become lognormal with increasing spread (total storage
// fixed) and the three mechanisms are re-run. The hybrid adapts each
// server's replica/cache split to its actual capacity, so its advantage
// should survive — and typically grow — under heterogeneity.
func HeterogeneityComparison(ctx context.Context, opts Options, spreads []float64) ([]HeterogeneityRow, error) {
	rows := make([]HeterogeneityRow, len(spreads))
	err := parallelFor(len(spreads), func(si int) error {
		cfg := opts.Base
		cfg.CapacitySpread = spreads[si]
		sc, err := scenario.Build(cfg)
		if err != nil {
			return err
		}
		row := HeterogeneityRow{Spread: spreads[si]}
		for _, mc := range []struct {
			out  *float64
			mech Mechanism
		}{
			{&row.ReplicationMs, MechReplication},
			{&row.CachingMs, MechCaching},
			{&row.HybridMs, MechHybrid},
		} {
			p, useCache, _, err := buildPlacement(sc, mc.mech, opts.Model)
			if err != nil {
				return err
			}
			simCfg := opts.Sim
			simCfg.UseCache = useCache
			simCfg.KeepResponseTimes = false
			m, err := sim.RunParallel(ctx, sc, p, simCfg, xrand.New(opts.TraceSeed))
			if err != nil {
				return err
			}
			*mc.out = m.MeanRTMs
		}
		rows[si] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatHeterogeneityRows renders the heterogeneity sweep.
func FormatHeterogeneityRows(rows []HeterogeneityRow) string {
	var b strings.Builder
	b.WriteString("§5.1 relaxed — heterogeneous server capacities (mean RT, ms)\n")
	b.WriteString("spread σ   replication    caching     hybrid   hybrid-gain%\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10.2f %11.2f %10.2f %10.2f %13.1f\n",
			r.Spread, r.ReplicationMs, r.CachingMs, r.HybridMs, r.HybridGainPct())
	}
	return b.String()
}
