package experiments

import (
	"context"
	"math"
	"strings"
	"testing"
)

func find(p Panel, m Mechanism) Series {
	for _, s := range p.Series {
		if s.Mechanism == m {
			return s
		}
	}
	panic("mechanism missing: " + string(m))
}

func TestFigure3Shape(t *testing.T) {
	panels, err := Figure3(context.Background(), QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("%d panels, want 2", len(panels))
	}
	for _, p := range panels {
		if len(p.Series) != 3 {
			t.Fatalf("%s: %d series, want 3", p.ID, len(p.Series))
		}
		repl := find(p, MechReplication)
		cach := find(p, MechCaching)
		hyb := find(p, MechHybrid)

		// Headline: hybrid beats both stand-alone mechanisms.
		if hyb.MeanRTMs >= repl.MeanRTMs {
			t.Errorf("%s: hybrid %.2f >= replication %.2f", p.ID, hyb.MeanRTMs, repl.MeanRTMs)
		}
		if hyb.MeanRTMs >= cach.MeanRTMs {
			t.Errorf("%s: hybrid %.2f >= caching %.2f", p.ID, hyb.MeanRTMs, cach.MeanRTMs)
		}

		// Caching signature: a large CDF jump at the 20 ms first hop,
		// well above replication's local fraction.
		if cach.CDF[1].Frac <= repl.CDF[1].Frac {
			t.Errorf("%s: caching CDF@20ms %.3f <= replication %.3f",
				p.ID, cach.CDF[1].Frac, repl.CDF[1].Frac)
		}
		// Hybrid signature: follows caching at small delays...
		if hyb.CDF[1].Frac < 0.8*cach.CDF[1].Frac {
			t.Errorf("%s: hybrid CDF@20ms %.3f far below caching %.3f",
				p.ID, hyb.CDF[1].Frac, cach.CDF[1].Frac)
		}
		// ...and avoids caching's heavy tail at large delays.
		last := len(hyb.CDF) - 2
		if hyb.CDF[last].Frac < cach.CDF[last].Frac-0.02 {
			t.Errorf("%s: hybrid tail CDF %.3f below caching %.3f",
				p.ID, hyb.CDF[last].Frac, cach.CDF[last].Frac)
		}

		// CDFs are monotone and end near 1.
		for _, s := range p.Series {
			prev := 0.0
			for _, pt := range s.CDF {
				if pt.Frac < prev {
					t.Fatalf("%s/%s: CDF decreases", p.ID, s.Mechanism)
				}
				prev = pt.Frac
			}
		}
		// The replication mechanism uses no cache.
		if repl.HitRatio != 0 {
			t.Errorf("%s: replication hit ratio %v", p.ID, repl.HitRatio)
		}
		// Hybrid must actually create replicas AND keep cache space.
		if hyb.Replicas == 0 {
			t.Errorf("%s: hybrid created no replicas", p.ID)
		}
		if hyb.HitRatio == 0 {
			t.Errorf("%s: hybrid cache unused", p.ID)
		}
	}
	// More capacity helps replication: fig3b replication must beat
	// fig3a replication.
	ra := find(panels[0], MechReplication).MeanRTMs
	rb := find(panels[1], MechReplication).MeanRTMs
	if rb >= ra {
		t.Errorf("replication at 10%% (%.2f) not better than at 5%% (%.2f)", rb, ra)
	}
}

func TestFigure4Shape(t *testing.T) {
	panels, err := Figure4(context.Background(), QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range panels {
		if p.Lambda != 0.1 {
			t.Fatalf("%s: lambda %v, want 0.1", p.ID, p.Lambda)
		}
		repl := find(p, MechReplication)
		cach := find(p, MechCaching)
		hyb := find(p, MechHybrid)
		if hyb.MeanRTMs >= repl.MeanRTMs || hyb.MeanRTMs >= cach.MeanRTMs {
			t.Errorf("%s: hybrid %.2f vs repl %.2f / cache %.2f",
				p.ID, hyb.MeanRTMs, repl.MeanRTMs, cach.MeanRTMs)
		}
	}
}

func TestStalenessShiftsGains(t *testing.T) {
	// §5.2: with λ=0.1 the hybrid gain versus caching increases
	// relative to λ=0 (staleness hurts caches, not replicas).
	opts := QuickOptions()
	f3, err := Figure3(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	f4, err := Figure4(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	gain := func(p Panel) float64 {
		c := find(p, MechCaching).MeanRTMs
		h := find(p, MechHybrid).MeanRTMs
		return (c - h) / c
	}
	if gain(f4[0]) <= gain(f3[0]) {
		t.Errorf("gain vs caching did not grow with staleness: λ=0 %.3f, λ=0.1 %.3f",
			gain(f3[0]), gain(f4[0]))
	}
}

func TestFigure5HybridDominatesAdHoc(t *testing.T) {
	panels, err := Figure5(context.Background(), QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("%d panels", len(panels))
	}
	for _, p := range panels {
		hyb := find(p, MechHybrid)
		a20 := find(p, MechAdHoc20)
		a80 := find(p, MechAdHoc80)
		// "The hybrid algorithm constantly outperforms both
		// alternatives" — allow a 1% tolerance for trace noise at
		// this reduced scale.
		if hyb.MeanRTMs > 1.01*a20.MeanRTMs {
			t.Errorf("%s: hybrid %.2f worse than 20%%-cache ad-hoc %.2f",
				p.ID, hyb.MeanRTMs, a20.MeanRTMs)
		}
		if hyb.MeanRTMs > 1.01*a80.MeanRTMs {
			t.Errorf("%s: hybrid %.2f worse than 80%%-cache ad-hoc %.2f",
				p.ID, hyb.MeanRTMs, a80.MeanRTMs)
		}
	}
}

func TestFigure6ModelAccuracy(t *testing.T) {
	rows, err := Figure6(context.Background(), QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Actual <= 0 || r.Predicted <= 0 {
			t.Errorf("(%d%%, %d%%): degenerate costs %+v", r.CapacityPct, r.LambdaPct, r)
			continue
		}
		// Paper: overall error < 7%. Allow more at the reduced test
		// scale, but a >25% miss means the model or sim is wrong.
		if e := math.Abs(r.ErrPct()); e > 25 {
			t.Errorf("(%d%%, %d%%): prediction error %.1f%%", r.CapacityPct, r.LambdaPct, e)
		}
	}
	// More capacity must lower the actual cost.
	if rows[2].Actual >= rows[0].Actual {
		t.Errorf("20%% capacity cost %.3f not below 5%% cost %.3f", rows[2].Actual, rows[0].Actual)
	}
}

func TestSummaryGainsPositive(t *testing.T) {
	rows, err := Summary(context.Background(), QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, g := range rows {
		if g.VsReplicationPct() <= 0 {
			t.Errorf("(%d%%, λ=%d%%): no gain vs replication: %+v", g.CapacityPct, g.LambdaPct, g)
		}
		if g.VsCachingPct() <= 0 {
			t.Errorf("(%d%%, λ=%d%%): no gain vs caching: %+v", g.CapacityPct, g.LambdaPct, g)
		}
	}
}

func TestFormatters(t *testing.T) {
	opts := QuickOptions()
	opts.Sim.Requests = 20000
	opts.Sim.Warmup = 10000
	panels, err := Figure5(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatPanel(panels[0])
	for _, want := range []string{"fig5a", "hybrid", "cache-20%", "mean RT"} {
		if !strings.Contains(out, want) {
			t.Errorf("panel output missing %q:\n%s", want, out)
		}
	}
	rows, err := Figure6(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatFig6(rows); !strings.Contains(out, "predicted") {
		t.Error("fig6 output missing header")
	}
	gains, err := Summary(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatSummary(gains); !strings.Contains(out, "vs-repl%") {
		t.Error("summary output missing header")
	}
}

func TestUnknownMechanism(t *testing.T) {
	opts := QuickOptions()
	cfg := opts.Base
	sc, err := buildScenarioForTest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := buildPlacement(sc, Mechanism("bogus"), ""); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}
