package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// ScaleRow is one growth factor of the scale sweep: the paper's §5.1
// setup multiplied by Factor (servers, sites and transit domains ×Factor,
// per-server capacity held constant in site-equivalents), with the three
// §5.2 mechanisms compared on a shared trace and the engineering
// quantities — scenario build time, hybrid placement time, simulator
// throughput — measured alongside.
type ScaleRow struct {
	Factor  int
	Nodes   int // topology nodes
	Servers int // N
	Sites   int // M

	BuildMs  float64 // scenario build: topology + per-server shortest paths
	PlaceMs  float64 // placement.Hybrid wall time (lazy-greedy engine)
	Replicas int     // replicas the hybrid placed

	ReplicationRTMs float64 // mean response time, greedy-global replication
	CachingRTMs     float64 // mean response time, pure caching
	HybridRTMs      float64 // mean response time, hybrid
	GainPct         float64 // hybrid gain vs the better single mechanism

	SimReqPerSec float64 // hybrid simulation throughput (measured phase)
}

// ScaleComparison grows the scenario by each factor and re-runs the
// Figure 3 mechanism comparison, reporting whether the hybrid's
// advantage survives away from paper scale, together with wall-time
// measurements of the engines. Everything runs sequentially so the
// timings are not polluted by sibling runs; results are deterministic
// for a fixed Options (the timings, of course, are not).
func ScaleComparison(ctx context.Context, opts Options, factors []int) ([]ScaleRow, error) {
	rows := make([]ScaleRow, 0, len(factors))
	for _, f := range factors {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg := scenario.Scale(opts.Base, f)

		t0 := time.Now()
		sc, err := scenario.Build(cfg)
		if err != nil {
			return nil, fmt.Errorf("scale ×%d: %w", f, err)
		}
		buildMs := float64(time.Since(t0)) / float64(time.Millisecond)

		t0 = time.Now()
		hybrid, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
			Specs:          sc.Work.Specs(),
			AvgObjectBytes: sc.Work.AvgObjectBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("scale ×%d: %w", f, err)
		}
		placeMs := float64(time.Since(t0)) / float64(time.Millisecond)

		row := ScaleRow{
			Factor:   f,
			Nodes:    sc.Topo.G.N(),
			Servers:  sc.Sys.N(),
			Sites:    sc.Sys.M(),
			BuildMs:  buildMs,
			PlaceMs:  placeMs,
			Replicas: hybrid.Placement.Replicas(),
		}

		simCfg := opts.Sim
		for _, mech := range []Mechanism{MechReplication, MechCaching} {
			p, useCache, _, err := buildPlacement(sc, mech, opts.Model)
			if err != nil {
				return nil, fmt.Errorf("scale ×%d: %w", f, err)
			}
			runCfg := simCfg
			runCfg.UseCache = useCache
			m, err := sim.RunParallel(ctx, sc, p, runCfg, xrand.New(opts.TraceSeed))
			if err != nil {
				return nil, fmt.Errorf("scale ×%d: %w", f, err)
			}
			switch mech {
			case MechReplication:
				row.ReplicationRTMs = m.MeanRTMs
			case MechCaching:
				row.CachingRTMs = m.MeanRTMs
			}
		}

		runCfg := simCfg
		runCfg.UseCache = true
		t0 = time.Now()
		m, err := sim.RunParallel(ctx, sc, hybrid.Placement, runCfg, xrand.New(opts.TraceSeed))
		if err != nil {
			return nil, fmt.Errorf("scale ×%d: %w", f, err)
		}
		simSec := time.Since(t0).Seconds()
		row.HybridRTMs = m.MeanRTMs
		if simSec > 0 {
			row.SimReqPerSec = float64(simCfg.Warmup+simCfg.Requests) / simSec
		}
		best := row.ReplicationRTMs
		if row.CachingRTMs < best {
			best = row.CachingRTMs
		}
		if best > 0 {
			row.GainPct = 100 * (best - row.HybridRTMs) / best
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatScaleRows renders the scale sweep.
func FormatScaleRows(rows []ScaleRow) string {
	var b strings.Builder
	b.WriteString("scale sweep — paper setup ×factor, capacity constant per server\n")
	b.WriteString("factor  nodes  servers  sites  build(ms)  place(ms)  repl  RT repl  RT cache  RT hybrid  gain%  sim req/s\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %6d %8d %6d %10.1f %10.1f %5d %8.2f %9.2f %10.2f %6.1f %10.0f\n",
			r.Factor, r.Nodes, r.Servers, r.Sites, r.BuildMs, r.PlaceMs, r.Replicas,
			r.ReplicationRTMs, r.CachingRTMs, r.HybridRTMs, r.GainPct, r.SimReqPerSec)
	}
	return b.String()
}
