package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cache"
)

func ablationOptions() Options {
	o := QuickOptions()
	o.Sim.Requests = 60000
	o.Sim.Warmup = 60000
	return o
}

func TestCachePolicyAblation(t *testing.T) {
	rows, err := CachePolicyAblation(context.Background(), ablationOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	byPolicy := map[cache.Policy]PolicyRow{}
	for _, r := range rows {
		if r.HitRatio <= 0 || r.HitRatio >= 1 {
			t.Errorf("%s: hit ratio %v", r.Policy, r.HitRatio)
		}
		byPolicy[r.Policy] = r
	}
	// On a stationary Zipf stream LFU must not lose to FIFO.
	if byPolicy[cache.PolicyLFU].HitRatio < byPolicy[cache.PolicyFIFO].HitRatio {
		t.Errorf("LFU hit ratio %.3f below FIFO %.3f",
			byPolicy[cache.PolicyLFU].HitRatio, byPolicy[cache.PolicyFIFO].HitRatio)
	}
	// LRU must not lose to FIFO either (recency helps under Zipf).
	if byPolicy[cache.PolicyLRU].HitRatio < byPolicy[cache.PolicyFIFO].HitRatio-0.01 {
		t.Errorf("LRU hit ratio %.3f below FIFO %.3f",
			byPolicy[cache.PolicyLRU].HitRatio, byPolicy[cache.PolicyFIFO].HitRatio)
	}
	if out := FormatPolicyRows(rows); !strings.Contains(out, "lru") {
		t.Error("formatting lost the policy names")
	}
}

func TestThetaSweep(t *testing.T) {
	rows, err := ThetaSweep(context.Background(), ablationOptions(), []float64{0.7, 1.0, 1.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// §5.2: the hybrid adapts to θ; it must not lose to either
		// fixed split by more than trace noise.
		if r.HybridMs > 1.02*r.AdHoc20 || r.HybridMs > 1.02*r.AdHoc80 {
			t.Errorf("θ=%.1f: hybrid %.2f vs ad-hoc %.2f/%.2f",
				r.Theta, r.HybridMs, r.AdHoc20, r.AdHoc80)
		}
	}
	// Steeper Zipf makes caching more effective: the hybrid's latency
	// should improve as θ grows.
	if rows[2].HybridMs >= rows[0].HybridMs {
		t.Errorf("hybrid latency did not improve with θ: %.2f (θ=0.7) -> %.2f (θ=1.3)",
			rows[0].HybridMs, rows[2].HybridMs)
	}
	if out := FormatThetaRows(rows); !strings.Contains(out, "theta") {
		t.Error("formatting lost the header")
	}
}

func TestPlacementAblation(t *testing.T) {
	rows, err := PlacementAblation(context.Background(), ablationOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]PlacementRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	hyb := byName["hybrid"]
	if hyb.MeanRTMs == 0 {
		t.Fatal("hybrid row missing")
	}
	// The model-driven placement must beat random placement even when
	// random also gets caches.
	if hyb.MeanRTMs >= byName["random"].MeanRTMs {
		t.Errorf("hybrid %.2f not better than random+cache %.2f",
			hyb.MeanRTMs, byName["random"].MeanRTMs)
	}
	if out := FormatPlacementRows(rows); !strings.Contains(out, "greedy-global") {
		t.Error("formatting lost the names")
	}
}
