package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// AvailabilityRow is one (mechanism, failure level) measurement.
type AvailabilityRow struct {
	Mechanism      Mechanism
	FailedOrigins  int
	FailedServers  int
	Unavailability float64
	StaleRiskFrac  float64
	MeanRTMs       float64
}

// AvailabilityComparison quantifies the paper's §1 availability argument
// ("a generic caching scheme offers no guarantees on content
// availability") by crashing progressively more origins — plus a couple
// of CDN servers — after the caches are warm, and measuring how much
// traffic each mechanism can still serve.
func AvailabilityComparison(ctx context.Context, opts Options, originFailures []int, failedServers int) ([]AvailabilityRow, error) {
	sc, err := scenario.Build(opts.Base)
	if err != nil {
		return nil, err
	}
	mechs := []Mechanism{MechReplication, MechCaching, MechHybrid}
	type job struct {
		mech    Mechanism
		origins int
	}
	var jobs []job
	for _, k := range originFailures {
		for _, mech := range mechs {
			jobs = append(jobs, job{mech, k})
		}
	}
	rows := make([]AvailabilityRow, len(jobs))
	err = parallelFor(len(jobs), func(ji int) error {
		jb := jobs[ji]
		p, useCache, _, err := buildPlacement(sc, jb.mech, opts.Model)
		if err != nil {
			return err
		}
		// The same failure draw for every mechanism at a level, so the
		// comparison is apples to apples.
		fail := sim.RandomFailures(sc, failedServers, jb.origins, xrand.New(opts.TraceSeed+uint64(jb.origins)))
		simCfg := opts.Sim
		simCfg.UseCache = useCache
		simCfg.KeepResponseTimes = false
		m, err := sim.RunWithFailures(ctx, sc, p, simCfg, fail, xrand.New(opts.TraceSeed))
		if err != nil {
			return err
		}
		staleFrac := 0.0
		if m.Requests > 0 {
			staleFrac = float64(m.StaleRisk) / float64(m.Requests)
		}
		rows[ji] = AvailabilityRow{
			Mechanism:      jb.mech,
			FailedOrigins:  jb.origins,
			FailedServers:  failedServers,
			Unavailability: m.Unavailability(),
			StaleRiskFrac:  staleFrac,
			MeanRTMs:       m.MeanRTMs,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatAvailabilityRows renders the availability comparison.
func FormatAvailabilityRows(rows []AvailabilityRow) string {
	var b strings.Builder
	b.WriteString("§1 grounded — availability under origin/server failures\n")
	b.WriteString("mechanism     origins-down  servers-down  unavailable  stale-risk  mean RT (ms)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %12d %13d %12.4f %11.4f %13.2f\n",
			r.Mechanism, r.FailedOrigins, r.FailedServers,
			r.Unavailability, r.StaleRiskFrac, r.MeanRTMs)
	}
	return b.String()
}
