package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestHeterogeneityComparison(t *testing.T) {
	opts := QuickOptions()
	opts.Sim.Requests = 50000
	opts.Sim.Warmup = 50000
	rows, err := HeterogeneityComparison(context.Background(), opts, []float64{0, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.HybridMs <= 0 || r.ReplicationMs <= 0 || r.CachingMs <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		// The hybrid keeps beating both stand-alone mechanisms even
		// with heterogeneous capacities.
		if r.HybridMs >= r.ReplicationMs || r.HybridMs >= r.CachingMs {
			t.Errorf("spread %v: hybrid %.2f vs repl %.2f / cache %.2f",
				r.Spread, r.HybridMs, r.ReplicationMs, r.CachingMs)
		}
		if r.HybridGainPct() <= 0 {
			t.Errorf("spread %v: non-positive hybrid gain", r.Spread)
		}
	}
	if out := FormatHeterogeneityRows(rows); !strings.Contains(out, "spread") {
		t.Error("formatting lost the header")
	}
}
