package experiments

import "repro/internal/scenario"

// buildScenarioForTest keeps the test file free of the scenario import
// dance when only a built scenario is needed.
func buildScenarioForTest(cfg scenario.Config) (*scenario.Scenario, error) {
	return scenario.Build(cfg)
}
