package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestConsistencyComparison(t *testing.T) {
	opts := QuickOptions()
	opts.Sim.Requests = 50000
	opts.Sim.Warmup = 30000
	rows, err := ConsistencyComparison(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	byName := map[string]ConsistencyRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	inv := byName["invalidation (strong)"]
	ttl10 := byName["ttl 10 min"]
	ttl6h := byName["ttl 6 hours"]

	// Strong consistency never serves stale documents.
	if inv.StaleFraction != 0 {
		t.Errorf("invalidation stale fraction %v", inv.StaleFraction)
	}
	// Longer TTLs serve more stale documents but cost less latency.
	if ttl6h.StaleFraction <= ttl10.StaleFraction {
		t.Errorf("stale fraction did not grow with TTL: %v -> %v",
			ttl10.StaleFraction, ttl6h.StaleFraction)
	}
	if ttl6h.MeanRTMs >= ttl10.MeanRTMs {
		t.Errorf("latency did not drop with TTL: %v -> %v",
			ttl10.MeanRTMs, ttl6h.MeanRTMs)
	}
	// Effective λ decreases as revalidation gets lazier.
	if ttl6h.EffectiveLambda >= ttl10.EffectiveLambda {
		t.Errorf("effective lambda did not drop with TTL: %v -> %v",
			ttl10.EffectiveLambda, ttl6h.EffectiveLambda)
	}

	if out := FormatConsistencyRows(rows); !strings.Contains(out, "effective-λ") {
		t.Error("formatting lost the header")
	}
}
