package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestRedirectionComparison(t *testing.T) {
	opts := QuickOptions()
	opts.Sim.Requests = 50000
	opts.Sim.Warmup = 40000
	rows, err := RedirectionComparison(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byPol := map[string]RedirectRow{}
	for _, r := range rows {
		byPol[string(r.Policy)] = r
	}
	near := byPol["nearest"]
	aware := byPol["load-aware"]
	spread := byPol["spread"]

	if near.Detours != 0 {
		t.Error("nearest policy detoured")
	}
	// Load-aware flattens load relative to nearest.
	if aware.ShareCV >= near.ShareCV {
		t.Errorf("load-aware CV %.3f not below nearest %.3f", aware.ShareCV, near.ShareCV)
	}
	// Blind rotation pays hop cost without reducing queueing enough.
	if spread.MeanHops <= near.MeanHops {
		t.Errorf("spread hops %.3f not above nearest %.3f", spread.MeanHops, near.MeanHops)
	}
	if out := FormatRedirectRows(rows); !strings.Contains(out, "share-CV") {
		t.Error("formatting lost the header")
	}
}

func TestKMedianQuality(t *testing.T) {
	opts := QuickOptions()
	rows, err := KMedianQuality(context.Background(), opts, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Sites == 0 {
			t.Fatalf("k=%d: no instances evaluated", r.K)
		}
		if r.MeanGreedyRatio < 1-1e-9 {
			t.Errorf("k=%d: greedy beat the optimum (%v)", r.K, r.MeanGreedyRatio)
		}
		// [14]'s "very good solution quality".
		if r.MeanGreedyRatio > 1.1 {
			t.Errorf("k=%d: greedy averaged %.3fx optimal", r.K, r.MeanGreedyRatio)
		}
		// Swap never loses to greedy.
		if r.MeanSwapRatio > r.MeanGreedyRatio+1e-9 {
			t.Errorf("k=%d: swap (%.4f) worse than greedy (%.4f)",
				r.K, r.MeanSwapRatio, r.MeanGreedyRatio)
		}
	}
	if out := FormatKMedianRows(rows); !strings.Contains(out, "greedy/opt") {
		t.Error("formatting lost the header")
	}
}
