package experiments

import (
	"fmt"
	"strings"
)

// plotGlyphs picks a distinct glyph per series: the first unused letter
// of the mechanism's name, falling back to digits.
func plotGlyphs(series []Series) []byte {
	glyphs := make([]byte, len(series))
	used := map[byte]bool{' ': true, '*': true}
	for si, s := range series {
		g := byte(0)
		for i := 0; i < len(s.Mechanism); i++ {
			c := s.Mechanism[i]
			if c >= 'a' && c <= 'z' && !used[c] {
				g = c
				break
			}
		}
		if g == 0 {
			for c := byte('1'); c <= '9'; c++ {
				if !used[c] {
					g = c
					break
				}
			}
		}
		used[g] = true
		glyphs[si] = g
	}
	return glyphs
}

// FormatPanelPlot renders a panel's CDF curves as an ASCII chart —
// the terminal rendition of the paper's Figures 3–5. The y axis is the
// CDF (0 to 1), the x axis the response-time grid; each mechanism draws
// with its own glyph (first letter of its name where unambiguous).
func FormatPanelPlot(p Panel) string {
	const rows = 20
	if len(p.Series) == 0 || len(p.Series[0].CDF) == 0 {
		return fmt.Sprintf("%s — no data\n", p.ID)
	}
	cols := len(p.Series[0].CDF)
	grid := make([][]byte, rows+1)
	for y := range grid {
		grid[y] = make([]byte, cols)
		for x := range grid[y] {
			grid[y][x] = ' '
		}
	}
	glyphs := plotGlyphs(p.Series)
	for si, s := range p.Series {
		sym := glyphs[si]
		for x, pt := range s.CDF {
			y := int(pt.Frac*float64(rows) + 0.5)
			if y > rows {
				y = rows
			}
			row := rows - y // row 0 is the top (CDF = 1)
			if grid[row][x] == ' ' {
				grid[row][x] = sym
			} else if grid[row][x] != sym {
				grid[row][x] = '*' // overlapping curves
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", p.ID, p.Title)
	for y := 0; y <= rows; y++ {
		frac := float64(rows-y) / float64(rows)
		fmt.Fprintf(&b, "%5.2f |", frac)
		for x := 0; x < cols; x++ {
			b.WriteByte(grid[y][x])
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	b.WriteString("      +")
	b.WriteString(strings.Repeat("--", cols))
	b.WriteByte('\n')
	// x-axis labels every 5 grid points.
	b.WriteString("       ")
	for x := 0; x < cols; x += 5 {
		label := fmt.Sprintf("%.0f", p.Series[0].CDF[x].X)
		b.WriteString(label)
		pad := 10 - len(label) // 5 grid points × 2 chars each
		if pad > 0 && x+5 < cols {
			b.WriteString(strings.Repeat(" ", pad))
		}
	}
	b.WriteString(" ms\n")
	for si, s := range p.Series {
		fmt.Fprintf(&b, "       %c = %s (mean %.1f ms)\n",
			glyphs[si], s.Mechanism, s.MeanRTMs)
	}
	b.WriteString("       * = overlapping curves\n")
	return b.String()
}
