package experiments

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestModelComparison(t *testing.T) {
	opts := QuickOptions()
	rows, err := ModelComparison(context.Background(), opts, []float64{0.02, 0.05, 0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	prevSim := -1.0
	for _, r := range rows {
		for name, h := range map[string]float64{"paper": r.PaperH, "che": r.CheH, "sim": r.SimH} {
			if h < 0 || h > 1 {
				t.Fatalf("B=%d: %s hit ratio %v", r.Slots, name, h)
			}
		}
		if r.SimH < prevSim-0.01 {
			t.Fatalf("simulated hit ratio decreased at B=%d", r.Slots)
		}
		prevSim = r.SimH
		// Che is the tighter approximation under IRM.
		cheErr := math.Abs(r.CheH - r.SimH)
		if cheErr > 0.03 {
			t.Errorf("B=%d: Che error %.4f", r.Slots, cheErr)
		}
		// The paper's model stays within its documented envelope.
		if paperErr := math.Abs(r.PaperH - r.SimH); paperErr > 0.08 {
			t.Errorf("B=%d: paper-model error %.4f", r.Slots, paperErr)
		}
	}
	if out := FormatModelCompareRows(rows); !strings.Contains(out, "che-h") {
		t.Error("formatting lost the header")
	}
}

func TestModelRobustness(t *testing.T) {
	opts := QuickOptions()
	opts.Sim.Requests = 60000
	opts.Sim.Warmup = 60000
	rows, err := ModelRobustness(context.Background(), opts, []float64{0, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Predicted <= 0 || r.Actual <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	// Locality makes real caches perform better than the IRM model
	// expects: the actual cost drops below the IRM-based prediction,
	// so the overestimate grows with the locality level.
	if rows[1].ErrPct() <= rows[0].ErrPct() {
		t.Errorf("model error did not grow with locality: %.2f%% -> %.2f%%",
			rows[0].ErrPct(), rows[1].ErrPct())
	}
	if out := FormatRobustnessRows(rows); !strings.Contains(out, "locality") {
		t.Error("formatting lost the header")
	}
}
