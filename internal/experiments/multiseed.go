package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
)

// GainStats aggregates the §5.2 headline gains over several scenario
// seeds: different topologies, workloads and placements, same
// experimental procedure. The paper reports single-instance numbers;
// this harness adds the dispersion a careful reproduction should check.
type GainStats struct {
	CapacityPct, LambdaPct int
	Seeds                  int
	// Mean and (sample) standard deviation of the gain versus each
	// stand-alone mechanism, in percent.
	VsReplicationMean, VsReplicationStd float64
	VsCachingMean, VsCachingStd         float64
}

// SummaryOverSeeds runs Summary for every seed and aggregates per
// parameter setting. Seeds run sequentially (each Summary already
// parallelizes internally).
func SummaryOverSeeds(ctx context.Context, opts Options, seeds []uint64) ([]GainStats, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: no seeds")
	}
	type acc struct {
		repl, cache []float64
	}
	accs := map[[2]int]*acc{}
	var order [][2]int
	for _, seed := range seeds {
		o := opts
		o.Base.Seed = seed
		o.TraceSeed = opts.TraceSeed + seed
		rows, err := Summary(ctx, o)
		if err != nil {
			return nil, err
		}
		for _, g := range rows {
			key := [2]int{g.CapacityPct, g.LambdaPct}
			a, ok := accs[key]
			if !ok {
				a = &acc{}
				accs[key] = a
				order = append(order, key)
			}
			a.repl = append(a.repl, g.VsReplicationPct())
			a.cache = append(a.cache, g.VsCachingPct())
		}
	}
	var out []GainStats
	for _, key := range order {
		a := accs[key]
		rm, rs := meanStd(a.repl)
		cm, cs := meanStd(a.cache)
		out = append(out, GainStats{
			CapacityPct:       key[0],
			LambdaPct:         key[1],
			Seeds:             len(a.repl),
			VsReplicationMean: rm, VsReplicationStd: rs,
			VsCachingMean: cm, VsCachingStd: cs,
		})
	}
	return out, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)-1))
}

// FormatGainStats renders the multi-seed summary.
func FormatGainStats(rows []GainStats) string {
	var b strings.Builder
	b.WriteString("§5.2 headline over multiple scenario seeds (gain %, mean ± std)\n")
	b.WriteString("capacity%  λ%   seeds    vs-replication      vs-caching\n")
	for _, g := range rows {
		fmt.Fprintf(&b, "%8d %4d %7d %10.1f ± %-5.1f %10.1f ± %-5.1f\n",
			g.CapacityPct, g.LambdaPct, g.Seeds,
			g.VsReplicationMean, g.VsReplicationStd,
			g.VsCachingMean, g.VsCachingStd)
	}
	return b.String()
}
