package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/kmedian"
	"repro/internal/scenario"
)

// KMedianRow aggregates heuristic-vs-optimal quality for one k.
type KMedianRow struct {
	K                int
	MeanGreedyRatio  float64
	WorstGreedyRatio float64
	MeanSwapRatio    float64
	WorstSwapRatio   float64
	Sites            int
}

// KMedianQuality grounds §2.2's discussion of placement heuristics: for
// every site it builds the k-median instance the paper describes (node
// weights = that site's per-server demand, lengths = hop costs, root =
// the primary copy) and measures how close the greedy and swap
// heuristics get to the exact optimum found by enumeration. [14]'s
// finding — greedy achieves very good solution quality — should
// reappear as ratios near 1.
func KMedianQuality(ctx context.Context, opts Options, ks []int) ([]KMedianRow, error) {
	sc, err := scenario.Build(opts.Base)
	if err != nil {
		return nil, err
	}
	n, m := sc.Sys.N(), sc.Sys.M()
	rows := make([]KMedianRow, len(ks))
	err = parallelFor(len(ks), func(ki int) error {
		k := ks[ki]
		row := KMedianRow{K: k, WorstGreedyRatio: 1, WorstSwapRatio: 1}
		var sumG, sumS float64
		for j := 0; j < m; j++ {
			in := &kmedian.Instance{
				Cost:     sc.Sys.CostServer,
				RootCost: make([]float64, n),
				Demand:   make([]float64, n),
			}
			for i := 0; i < n; i++ {
				in.RootCost[i] = sc.Sys.CostOrigin[i][j]
				in.Demand[i] = sc.Sys.Demand[i][j]
			}
			gSet, gCost := in.Greedy(k)
			_, sCost := in.Swap(gSet)
			_, oCost, err := in.BruteForce(k, 0)
			if err != nil {
				return err
			}
			if oCost <= 0 {
				continue
			}
			g := gCost / oCost
			s := sCost / oCost
			sumG += g
			sumS += s
			if g > row.WorstGreedyRatio {
				row.WorstGreedyRatio = g
			}
			if s > row.WorstSwapRatio {
				row.WorstSwapRatio = s
			}
			row.Sites++
		}
		if row.Sites > 0 {
			row.MeanGreedyRatio = sumG / float64(row.Sites)
			row.MeanSwapRatio = sumS / float64(row.Sites)
		}
		rows[ki] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatKMedianRows renders the heuristic-quality table.
func FormatKMedianRows(rows []KMedianRow) string {
	var b strings.Builder
	b.WriteString("§2.2 grounded — k-median heuristic quality vs exact optimum (per-site instances)\n")
	b.WriteString("k   sites   greedy/opt (mean)  greedy/opt (worst)  swap/opt (mean)  swap/opt (worst)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-3d %5d %18.4f %19.4f %16.4f %17.4f\n",
			r.K, r.Sites, r.MeanGreedyRatio, r.WorstGreedyRatio, r.MeanSwapRatio, r.WorstSwapRatio)
	}
	return b.String()
}
