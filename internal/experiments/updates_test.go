package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestUpdateSweep(t *testing.T) {
	opts := QuickOptions()
	opts.Sim.Requests = 50000
	opts.Sim.Warmup = 50000
	rows, err := UpdateSweep(context.Background(), opts, []float64{0, 0.2, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Read-only: no update cost anywhere.
	if rows[0].HybridUpdateHops != 0 || rows[0].GreedyUpdateHops != 0 {
		t.Error("update cost at ratio 0")
	}
	// Write-heavy traffic must push both algorithms to fewer replicas.
	if rows[2].HybridReplicas > rows[0].HybridReplicas {
		t.Errorf("hybrid replicas grew with writes: %d -> %d",
			rows[0].HybridReplicas, rows[2].HybridReplicas)
	}
	if rows[2].GreedyReplicas >= rows[0].GreedyReplicas {
		t.Errorf("greedy replicas did not shrink with writes: %d -> %d",
			rows[0].GreedyReplicas, rows[2].GreedyReplicas)
	}
	// The hybrid's total cost beats update-aware greedy at every level:
	// it can fall back on caching, greedy cannot.
	for _, r := range rows {
		if r.HybridTotal() >= r.GreedyTotal() {
			t.Errorf("ratio %v: hybrid total %.3f not below greedy %.3f",
				r.UpdateRatio, r.HybridTotal(), r.GreedyTotal())
		}
	}
	// The caching baseline is the same in every row.
	if rows[0].CachingReadHops != rows[2].CachingReadHops {
		t.Error("caching baseline varied with update ratio")
	}
	if out := FormatUpdateRows(rows); !strings.Contains(out, "caching") {
		t.Error("formatting lost the header")
	}
}
