package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

func TestChurnComparison(t *testing.T) {
	opts := QuickOptions()
	opts.Sim.Requests = 50000
	opts.Sim.Warmup = 50000
	cfg := ChurnConfig{ServerCrashes: 2, OriginCrashes: 2, DowntimeFrac: 0.25}
	rows, err := ChurnComparison(context.Background(), opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	get := func(m Mechanism) ChurnRow {
		for _, r := range rows {
			if r.Mechanism == m {
				return r
			}
		}
		t.Fatalf("row %s missing", m)
		return ChurnRow{}
	}

	for _, r := range rows {
		if r.Served < 0 || r.Served > 1 || r.WorstPhaseServed < 0 || r.WorstPhaseServed > 1 {
			t.Fatalf("%s: fractions out of range: %+v", r.Mechanism, r)
		}
		if r.WorstPhaseServed > r.Served+1e-9 {
			// The worst phase can't serve a larger fraction than the run
			// does overall... unless every phase is perfect.
			if r.Served != 1 {
				t.Fatalf("%s: worst phase %.4f above overall %.4f", r.Mechanism, r.WorstPhaseServed, r.Served)
			}
		}
		if len(r.Phases) < 2 {
			t.Fatalf("%s: %d phases; churn events produced no phase boundaries", r.Mechanism, len(r.Phases))
		}
	}

	// The acceptance criterion: under churn the hybrid serves at least
	// the fraction pure replication does — replicas ride out origin
	// deaths, caches absorb what replication can't hold.
	repl, cach, hyb := get(MechReplication), get(MechCaching), get(MechHybrid)
	if hyb.Served < repl.Served {
		t.Errorf("hybrid served %.4f < replication %.4f under churn", hyb.Served, repl.Served)
	}
	if cach.Served == 1 {
		t.Error("pure caching rode through dead origins untouched (suspicious)")
	}
	// Replication holds no caches, so it never serves at stale risk.
	if repl.StaleRiskFrac != 0 {
		t.Error("pure replication reported stale-risk serves")
	}

	// Same options, same schedule, same trace: the experiment is
	// deterministic end to end.
	again, err := ChurnComparison(context.Background(), opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, again) {
		t.Error("identical churn runs diverged")
	}

	out := FormatChurnRows(rows)
	if !strings.Contains(out, "worst-phase") || !strings.Contains(out, "hybrid") {
		t.Errorf("formatting lost content:\n%s", out)
	}
}
