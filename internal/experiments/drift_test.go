package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dynamic"
)

func TestDriftComparison(t *testing.T) {
	opts := QuickOptions()
	cfg := dynamic.DefaultConfig()
	cfg.Epochs = 4
	cfg.RequestsPerEpoch = 30000
	cfg.Warmup = 30000
	rows, err := DriftComparison(context.Background(), opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byStrat := map[dynamic.Strategy]DriftRow{}
	for _, r := range rows {
		if r.MeanRTMs <= 0 {
			t.Fatalf("%s: empty row", r.Strategy)
		}
		byStrat[r.Strategy] = r
	}
	// Caching pays zero transfer; every replica strategy pays some.
	if byStrat[dynamic.Caching].TotalTransferGBHops != 0 {
		t.Error("caching paid transfer")
	}
	if byStrat[dynamic.StaticHybrid].TotalTransferGBHops <= 0 {
		t.Error("static hybrid paid no transfer")
	}
	// Adaptive re-placement hauls strictly more bytes than static.
	if byStrat[dynamic.AdaptiveHybrid].TotalTransferGBHops <= byStrat[dynamic.StaticHybrid].TotalTransferGBHops {
		t.Error("adaptive hybrid transfer not above static hybrid")
	}
	// The hybrid family beats pure static replication on latency.
	if byStrat[dynamic.StaticHybrid].MeanRTMs >= byStrat[dynamic.StaticReplication].MeanRTMs {
		t.Errorf("static hybrid %.2f not better than static replication %.2f",
			byStrat[dynamic.StaticHybrid].MeanRTMs, byStrat[dynamic.StaticReplication].MeanRTMs)
	}

	if out := FormatDriftRows(rows, cfg); !strings.Contains(out, "transfer") {
		t.Error("formatting lost the header")
	}
}
