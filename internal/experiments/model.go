package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/lrumodel"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// ModelCompareRow is one cache size of the model-comparison sweep.
type ModelCompareRow struct {
	Slots   int
	PaperH  float64 // Equations (1)+(2)
	CheH    float64 // Che's characteristic-time approximation
	ClosedH float64 // Laoutaris closed-form evaluation
	SimH    float64 // trace-driven LRU ground truth
}

// modelSweepInputs collapses the configured site mix onto one shared
// cache with unit-size objects, the setting in which the analytical
// models are defined.
func modelSweepInputs(opts Options) ([]lrumodel.SiteSpec, []float64, int, error) {
	wcfg := opts.Base.Workload
	w, err := workload.Generate(wcfg, xrand.New(opts.Base.Seed))
	if err != nil {
		return nil, nil, 0, err
	}
	specs := w.Specs()
	weights := make([]float64, len(w.Sites))
	for j, s := range w.Sites {
		weights[j] = s.Weight
	}
	return specs, weights, wcfg.Sites() * wcfg.ObjectsPerSite, nil
}

// ModelComparison sweeps a single shared LRU cache over sizes and
// compares the analytical hit-ratio models — the paper's Equations (1)
// and (2), Che's characteristic-time approximation and the Laoutaris
// closed form — against a trace-driven simulation, a model ablation the
// paper does not run.
func ModelComparison(ctx context.Context, opts Options, slotFracs []float64) ([]ModelCompareRow, error) {
	specs, weights, totalObjects, err := modelSweepInputs(opts)
	if err != nil {
		return nil, err
	}
	kinds := []lrumodel.ModelKind{lrumodel.ModelEq1, lrumodel.ModelChe, lrumodel.ModelClosedForm}
	models := make([]lrumodel.Model, len(kinds))
	for ki, kind := range kinds {
		models[ki], err = lrumodel.New(lrumodel.ModelConfig{
			Kind:           kind,
			Specs:          specs,
			Weights:        weights,
			AvgObjectBytes: 1,
			MaxCacheBytes:  int64(totalObjects),
		})
		if err != nil {
			return nil, err
		}
	}

	// Models are not safe for concurrent use (private memo maps), so the
	// analytical columns fill sequentially; only the simulations fan out.
	rows := make([]ModelCompareRow, len(slotFracs))
	for fi := range slotFracs {
		slots := int(slotFracs[fi] * float64(totalObjects))
		if slots < 1 {
			slots = 1
		}
		rows[fi] = ModelCompareRow{
			Slots:   slots,
			PaperH:  models[0].OverallHitRatio(int64(slots)),
			CheH:    models[1].OverallHitRatio(int64(slots)),
			ClosedH: models[2].OverallHitRatio(int64(slots)),
		}
	}
	err = parallelFor(len(slotFracs), func(fi int) error {
		rows[fi].SimH = simulateShared(cache.PolicyLRU, specs, weights, rows[fi].Slots, 800000,
			xrand.New(opts.TraceSeed+uint64(fi)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// simulateShared measures the overall hit ratio of one cache of the
// given replacement policy fed by the IRM mixture of all sites
// (unit-size objects).
func simulateShared(policy cache.Policy, specs []lrumodel.SiteSpec, weights []float64, slots, requests int, r *xrand.Source) float64 {
	c := cache.New(policy, int64(slots))
	zipfs := make([]*stats.Zipf, len(specs))
	for j, s := range specs {
		zipfs[j] = stats.NewZipf(s.Objects, s.Theta)
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	cdf := make([]float64, len(weights))
	cum := 0.0
	for j, w := range weights {
		cum += w / total
		cdf[j] = cum
	}
	warm := requests / 4
	var hits, lookups float64
	for i := 0; i < requests; i++ {
		u := r.Float64()
		site := 0
		for site < len(cdf)-1 && u > cdf[site] {
			site++
		}
		key := cache.Key{Site: site, Object: zipfs[site].Sample(r)}
		hit := c.Get(key)
		if !hit {
			c.Put(key, 1)
		}
		if i >= warm {
			lookups++
			if hit {
				hits++
			}
		}
	}
	return hits / lookups
}

// FormatModelCompareRows renders the model-comparison sweep.
func FormatModelCompareRows(rows []ModelCompareRow) string {
	var b strings.Builder
	b.WriteString("Model ablation — Eq.(1)+(2) vs Che vs closed form vs simulated LRU\n")
	b.WriteString("slots B     paper-h      che-h   closed-h      sim-h   paper-err    che-err  closed-err\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9d %9.4f %10.4f %10.4f %10.4f %+11.4f %+10.4f %+11.4f\n",
			r.Slots, r.PaperH, r.CheH, r.ClosedH, r.SimH,
			r.PaperH-r.SimH, r.CheH-r.SimH, r.ClosedH-r.SimH)
	}
	return b.String()
}

// PolicyModelRow is one (policy, cache size) cell of the
// non-LRU-policy validation sweep: the analytical RANDOM/FIFO model's
// prediction against a trace-driven simulation of the real cache
// variant.
type PolicyModelRow struct {
	Policy cache.Policy
	Slots  int
	ModelH float64 // analytical RANDOM/FIFO model (Gelenbe/Gallo)
	SimH   float64 // trace-driven ground truth for this policy
}

// ModelPolicyComparison validates the analytical RANDOM/FIFO model
// against the real FIFO and RANDOM cache variants on the same shared
// IRM mixture ModelComparison uses. Under IRM both policies share one
// analytical hit ratio (q·T/(1+q·T)), so one model column serves both
// simulated policies — the table shows how tight that claim is.
func ModelPolicyComparison(ctx context.Context, opts Options, slotFracs []float64) ([]PolicyModelRow, error) {
	specs, weights, totalObjects, err := modelSweepInputs(opts)
	if err != nil {
		return nil, err
	}
	model, err := lrumodel.New(lrumodel.ModelConfig{
		Kind:           lrumodel.ModelRandom,
		Specs:          specs,
		Weights:        weights,
		AvgObjectBytes: 1,
		MaxCacheBytes:  int64(totalObjects),
	})
	if err != nil {
		return nil, err
	}
	policies := []cache.Policy{cache.PolicyFIFO, cache.PolicyRandom}
	rows := make([]PolicyModelRow, len(policies)*len(slotFracs))
	for ri := range rows {
		slots := int(slotFracs[ri%len(slotFracs)] * float64(totalObjects))
		if slots < 1 {
			slots = 1
		}
		rows[ri] = PolicyModelRow{
			Policy: policies[ri/len(slotFracs)],
			Slots:  slots,
			ModelH: model.OverallHitRatio(int64(slots)),
		}
	}
	err = parallelFor(len(rows), func(ri int) error {
		rows[ri].SimH = simulateShared(rows[ri].Policy, specs, weights, rows[ri].Slots, 800000,
			xrand.New(opts.TraceSeed+uint64(ri)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatPolicyModelRows renders the RANDOM/FIFO validation sweep.
func FormatPolicyModelRows(rows []PolicyModelRow) string {
	var b strings.Builder
	b.WriteString("RANDOM/FIFO model — analytical q·T/(1+q·T) vs simulated cache variants\n")
	b.WriteString("policy    slots B    model-h      sim-h        err\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-9d %9.4f %10.4f %+10.4f\n",
			r.Policy, r.Slots, r.ModelH, r.SimH, r.ModelH-r.SimH)
	}
	return b.String()
}

// RobustnessRow is one locality level of the IRM-assumption stress test.
type RobustnessRow struct {
	LocalityProb float64
	Predicted    float64 // hybrid's model-predicted cost (IRM assumption)
	Actual       float64 // simulated cost under the correlated workload
}

// ErrPct is the relative prediction error in percent.
func (r RobustnessRow) ErrPct() float64 {
	if r.Actual == 0 {
		return 0
	}
	return 100 * (r.Predicted - r.Actual) / r.Actual
}

// ModelRobustness stresses the model's independent-reference assumption:
// the workload gains temporal locality (requests repeat recent objects)
// while the hybrid algorithm keeps planning with the IRM model. The
// growing gap between predicted and simulated cost bounds how far the
// paper's approach can be trusted on correlated traffic.
func ModelRobustness(ctx context.Context, opts Options, probs []float64) ([]RobustnessRow, error) {
	rows := make([]RobustnessRow, len(probs))
	err := parallelFor(len(probs), func(pi int) error {
		cfg := opts.Base
		cfg.Workload.LocalityProb = probs[pi]
		sc, err := scenario.Build(cfg)
		if err != nil {
			return err
		}
		res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
			Specs:          sc.Work.Specs(),
			AvgObjectBytes: sc.Work.AvgObjectBytes,
			Model:          opts.Model,
		})
		if err != nil {
			return err
		}
		simCfg := opts.Sim
		simCfg.UseCache = true
		simCfg.KeepResponseTimes = false
		m, err := sim.RunParallel(ctx, sc, res.Placement, simCfg, xrand.New(opts.TraceSeed))
		if err != nil {
			return err
		}
		rows[pi] = RobustnessRow{
			LocalityProb: probs[pi],
			Predicted:    res.PredictedCost,
			Actual:       m.MeanHops,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatRobustnessRows renders the IRM stress test.
func FormatRobustnessRows(rows []RobustnessRow) string {
	var b strings.Builder
	b.WriteString("IRM stress — model accuracy under temporal locality (hops/request)\n")
	b.WriteString("locality    predicted     actual      err%\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10.2f %10.3f %10.3f %9.2f\n",
			r.LocalityProb, r.Predicted, r.Actual, r.ErrPct())
	}
	return b.String()
}
